// Package activerbac is an event-driven authorization engine: a Go
// reproduction of "Active Authorization Rules for Enforcing Role-Based
// Access Control and its Extensions" (Adaikkalavan & Chakravarthy, ICDE
// 2005).
//
// A System is built from a high-level policy specification (the .acp
// language). The policy compiles into an access specification graph and
// from it into a pool of OWTE (On-When-Then-Else) active authorization
// rules running on a Sentinel+-style event engine. Every request —
// session creation, role activation, access check — is an event; the
// generated rules evaluate the NIST RBAC standard (core, hierarchies,
// static and dynamic separation of duty) plus the paper's extensions
// (GTRBAC temporal constraints, control-flow dependencies, privacy-aware
// RBAC) and vote on a decision. Active-security rules watch the outcome
// stream and react to attack patterns without operator intervention.
//
// Basic use:
//
//	sys, err := activerbac.Open(policySource, nil)
//	sid, err := sys.CreateSession("bob")
//	err = sys.AddActiveRole("bob", sid, "PC")
//	ok  := sys.CheckAccess(sid, activerbac.Permission{Operation: "write", Object: "po.dat"})
//
// Policy changes go through ApplyPolicy, which regenerates exactly the
// affected rules (the paper's central manageability claim).
package activerbac

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/core"
	"activerbac/internal/event"
	"activerbac/internal/obs"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
	"activerbac/internal/rulegen"
	"activerbac/internal/security"
	"activerbac/internal/sentinel"
	"activerbac/internal/store"
)

// Re-exported identifier types, so callers need no internal imports.
type (
	// UserID identifies a user.
	UserID = rbac.UserID
	// RoleID identifies a role.
	RoleID = rbac.RoleID
	// SessionID identifies a session.
	SessionID = rbac.SessionID
	// Permission is an operation on an object.
	Permission = rbac.Permission
	// RuleInfo is a read-only view of one generated rule.
	RuleInfo = core.RuleInfo
	// Alert is one fired active-security alert.
	Alert = security.Alert
	// Report summarizes an incremental policy regeneration.
	Report = rulegen.Report
	// SystemReport is one periodic monitoring snapshot (the `report`
	// policy statement).
	SystemReport = rulegen.SystemReport
	// Clock abstracts time; pass a simulated clock in tests.
	Clock = clock.Clock
	// Params carries event parameters for external events.
	Params = event.Params
	// TraceData is one retained decision trace: the full OWTE cascade of
	// a single enforcement request.
	TraceData = obs.TraceData
	// TraceStep is one step of a decision trace.
	TraceStep = obs.Step
	// TraceID is the 16-byte request-scoped trace identity minted at the
	// edge and carried with a traced check across HTTP and the wire
	// protocol.
	TraceID = obs.TraceID
	// SlowRecord is the structured capture of one decision that exceeded
	// Options.SlowThreshold.
	SlowRecord = obs.SlowRecord
)

// NewTraceID mints a random 16-byte trace id.
func NewTraceID() TraceID { return obs.NewTraceID() }

// ParseTraceID parses a 32-hex-character trace id.
func ParseTraceID(s string) (TraceID, error) { return obs.ParseTraceID(s) }

// Sentinel errors re-exported for errors.Is classification.
var (
	ErrDenied      = rbac.ErrDenied
	ErrNotFound    = rbac.ErrNotFound
	ErrExists      = rbac.ErrExists
	ErrSSD         = rbac.ErrSSD
	ErrDSD         = rbac.ErrDSD
	ErrCardinality = rbac.ErrCardinality
	ErrUserLocked  = rbac.ErrUserLocked
)

// NewSimClock returns a deterministic simulated clock started at the
// given instant; the returned *clock.Sim satisfies Clock and exposes
// Advance/AdvanceTo for driving time in tests and experiments.
func NewSimClock(start time.Time) *clock.Sim { return clock.NewSim(start) }

// DenialError is returned by state-changing calls when the rule pool
// denies the request; Reason carries the alternative-action message
// (e.g. "Access Denied Cannot Activate").
type DenialError struct {
	// Op names the denied operation.
	Op string
	// Reason is the rule's error message.
	Reason string
}

// Error implements error.
func (e *DenialError) Error() string {
	return fmt.Sprintf("activerbac: %s denied: %s", e.Op, e.Reason)
}

// Unwrap makes errors.Is(err, ErrDenied) true.
func (e *DenialError) Unwrap() error { return ErrDenied }

// LanesAuto selects one enforcement lane per CPU.
const LanesAuto = -1

// LaneStat is a snapshot of one enforcement lane's counters.
type LaneStat = event.LaneStat

// Options configures Open.
type Options struct {
	// Clock drives all temporal behaviour; defaults to the real clock.
	Clock Clock
	// AuditPath, when set, opens an append-only audit log recording
	// every rule firing and alert.
	AuditPath string
	// Lanes sets the enforcement lane count. 0 or 1 (the default)
	// serializes all enforcement through one lane — the paper's single
	// Sentinel+ detector thread, and the mode with fully deterministic
	// event ordering. LanesAuto (or any n > 1) shards scope-local
	// enforcement (per-session activation and access checks) over
	// parallel lanes, keeping globalized rules (SoD, cardinality,
	// temporal, security) on a single ordered global lane.
	Lanes int
	// Metrics enables the metrics registry: decision latency, lane
	// queueing, rule firings, operator matches, audit latency — rendered
	// in Prometheus text format by WriteMetrics. Off by default (the
	// engine then runs its zero-overhead path).
	Metrics bool
	// TraceBuffer, when > 0, retains that many completed decision
	// traces in a ring buffer (RecentTraces / TraceByID) and records the
	// full OWTE cascade of every decision — or, when TraceSample is also
	// set, of the sampled subset. Implies Metrics.
	TraceBuffer int
	// TraceSample, when > 0, samples tracing instead of tracing every
	// decision: each decision is traced with this probability (clamped to
	// [0,1]), and unsampled decisions keep the full fast path. Client-
	// requested traces (CheckAccessTupleTraced and friends) are always
	// honoured regardless of the sample rate. Requires TraceBuffer > 0 to
	// have any effect.
	TraceSample float64
	// TraceRateLimit caps sampled traces per second (approximate fixed
	// window). 0 means no cap beyond the probability.
	TraceRateLimit float64
	// SlowThreshold, when > 0, captures every decision slower than this
	// duration into a slow-decision ring (SlowDecisions), with the full
	// cascade trace attached when the decision was traced. Implies
	// Metrics.
	SlowThreshold time.Duration
	// SlowBuffer sizes the slow-decision ring; 0 means 64.
	SlowBuffer int
	// AuditSyncEveryAppend flushes and fsyncs the audit log on every
	// append instead of buffering. Durable but slower; the buffered
	// default should be paired with periodic SyncAudit calls (rbacd's
	// -audit-sync flag) to bound crash loss.
	AuditSyncEveryAppend bool
	// FastPath enables the read-mostly decision fast path: repeat ALLOW
	// verdicts of cacheable access checks are served from an
	// epoch-tagged cache invalidated on every policy, rule or session
	// change, and the engine runs its allocation diet (occurrence
	// pooling). Audit-enabled systems register an outcome listener,
	// which automatically forces every decision back onto the full
	// cascade, so audit completeness is unaffected. Off by default.
	FastPath bool
}

func (o *Options) laneCount() int {
	switch {
	case o.Lanes == LanesAuto:
		return runtime.NumCPU()
	case o.Lanes < 1:
		return 1
	default:
		return o.Lanes
	}
}

// System is the assembled authorization engine. All methods are safe
// for concurrent use.
type System struct {
	gen   *rulegen.Generator
	audit *store.AuditLog
	obs   *obs.Observer // nil = observability off

	// srcMu guards source. Engine state has its own locking; the policy
	// source string needs its own because replication exports read it
	// concurrently with ApplyPolicy, outside any caller-side swap lock.
	srcMu  sync.RWMutex
	source string
}

// Open parses a policy, builds the engine and generates the rule pool.
func Open(policySource string, opts *Options) (*System, error) {
	spec, err := policy.ParseString(policySource)
	if err != nil {
		return nil, err
	}
	return openSpec(spec, policySource, opts)
}

// OpenFile is Open reading the policy from a file.
func OpenFile(path string, opts *Options) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Open(string(data), opts)
}

func openSpec(spec *policy.Spec, source string, opts *Options) (*System, error) {
	if opts == nil {
		opts = &Options{}
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	engOpts := []sentinel.EngineOption{sentinel.WithLanes(opts.laneCount())}
	if opts.FastPath {
		engOpts = append(engOpts, sentinel.WithFastPath())
	}
	var observer *obs.Observer
	if opts.Metrics || opts.TraceBuffer > 0 || opts.SlowThreshold > 0 {
		observer = obs.NewObserver(opts.TraceBuffer)
		if opts.TraceSample > 0 && opts.TraceBuffer > 0 {
			observer.Sampler = obs.NewSampler(opts.TraceSample, opts.TraceRateLimit)
		}
		if opts.SlowThreshold > 0 {
			slowBuf := opts.SlowBuffer
			if slowBuf <= 0 {
				slowBuf = 64
			}
			observer.Slow = obs.NewSlowRing(slowBuf, opts.SlowThreshold)
		}
		engOpts = append(engOpts, sentinel.WithObserver(observer))
	}
	eng := sentinel.NewEngine(clk, engOpts...)
	gen, err := rulegen.New(eng)
	if err != nil {
		return nil, err
	}
	if err := gen.Load(spec); err != nil {
		return nil, err
	}
	sys := &System{gen: gen, source: source, obs: observer}
	if observer != nil {
		// Active-security counters are owned by the monitor; mirror them
		// into the registry at scrape time like the engine's own counters.
		observer.Registry.OnScrape(func() {
			observer.SecurityDenials.Set(float64(gen.Security().Denials()))
			observer.SecurityAlerts.Set(float64(len(gen.Security().Alerts())))
		})
	}
	if opts.AuditPath != "" {
		audit, err := store.OpenAudit(opts.AuditPath)
		if err != nil {
			return nil, err
		}
		sys.audit = audit
		if opts.AuditSyncEveryAppend {
			audit.SetSyncEveryAppend(true)
		}
		if observer != nil {
			audit.SetInstruments(&store.AuditInstruments{
				Append:  observer.AuditAppend.Observe,
				Flush:   observer.AuditFlush.Observe,
				Records: observer.AuditRecords.Inc,
			})
		}
		eng.Pool().OnOutcome(func(o core.Outcome) {
			detail := o.FailedCond
			if o.CondErr != nil {
				detail = o.CondErr.Error()
			}
			user, _ := o.Event.Params["user"].(string)
			_, _ = audit.Append(store.AuditRecord{
				At: o.At, Kind: "decision", Rule: o.Rule, Event: o.Event.Event,
				User: user, Allowed: o.Allowed, Detail: detail,
			})
		})
		gen.Security().OnAlert(func(a security.Alert) {
			_, _ = audit.Append(store.AuditRecord{
				At: a.At, Kind: "alert", User: a.Subject, Allowed: false,
				Detail: a.String(),
			})
		})
	}
	return sys, nil
}

// Quiesce blocks until every enforcement lane is idle: all in-flight
// decisions, rule cascades and deferred work have been processed. Used
// by graceful shutdown and by tests that assert on cross-lane state.
func (s *System) Quiesce() { s.gen.Engine().Quiesce() }

// Lanes returns the configured enforcement lane count.
func (s *System) Lanes() int { return s.gen.Engine().Detector().Lanes() }

// LaneStats snapshots per-lane depth and throughput counters (global
// lane first) for status endpoints and benchmarks.
func (s *System) LaneStats() []LaneStat { return s.gen.Engine().LaneStats() }

// ErrObservabilityOff is returned by the metrics and trace accessors
// when the System was opened without Options.Metrics or
// Options.TraceBuffer.
var ErrObservabilityOff = errors.New("activerbac: observability not enabled")

// Observer exposes the metric catalog for transports that instrument
// themselves (the wire server counts requests/errors/in-flight per
// opcode). Returns nil when observability is off.
func (s *System) Observer() *obs.Observer { return s.obs }

// WriteMetrics renders the metric registry in Prometheus text
// exposition format (0.0.4). Requires Options.Metrics or
// Options.TraceBuffer.
func (s *System) WriteMetrics(w io.Writer) error {
	if s.obs == nil {
		return ErrObservabilityOff
	}
	return s.obs.Registry.WritePrometheus(w)
}

// RecentTraces returns the n most recently completed decision traces,
// newest first (n <= 0 means all retained). Requires
// Options.TraceBuffer > 0.
func (s *System) RecentTraces(n int) ([]TraceData, error) {
	if s.obs == nil || s.obs.Traces == nil {
		return nil, ErrObservabilityOff
	}
	return s.obs.Traces.Recent(n), nil
}

// TraceByID returns one retained decision trace; ok is false when the
// id has been evicted from the ring or never existed.
func (s *System) TraceByID(id uint64) (TraceData, bool, error) {
	if s.obs == nil || s.obs.Traces == nil {
		return TraceData{}, false, ErrObservabilityOff
	}
	td, ok := s.obs.Traces.Get(id)
	return td, ok, nil
}

// TraceByTraceID returns the retained decision trace carrying the given
// client-minted trace id; ok is false when no retained trace carries it
// (evicted, never traced, or zero id).
func (s *System) TraceByTraceID(tid TraceID) (TraceData, bool, error) {
	if s.obs == nil || s.obs.Traces == nil {
		return TraceData{}, false, ErrObservabilityOff
	}
	td, ok := s.obs.Traces.GetByTraceID(tid)
	return td, ok, nil
}

// SlowDecisions returns the n most recent slow-decision captures,
// newest first (n <= 0 means all retained). Requires
// Options.SlowThreshold > 0.
func (s *System) SlowDecisions(n int) ([]SlowRecord, error) {
	if s.obs == nil || s.obs.Slow == nil {
		return nil, ErrObservabilityOff
	}
	return s.obs.Slow.Recent(n), nil
}

// FastPathStats is a snapshot of the decision fast path's counters.
type FastPathStats = sentinel.FastPathStats

// ErrFastPathOff is returned by FastPathStats when the System was
// opened without Options.FastPath.
var ErrFastPathOff = errors.New("activerbac: fast path not enabled")

// FastPathStats snapshots the decision cache counters. Requires
// Options.FastPath.
func (s *System) FastPathStats() (FastPathStats, error) {
	fp := s.gen.Engine().FastPath()
	if fp == nil {
		return FastPathStats{}, ErrFastPathOff
	}
	return fp.Stats(), nil
}

// SnapshotEpoch reports the policy epoch of the RBAC store's published
// copy-on-write snapshot (bumped by every policy-grade mutation).
func (s *System) SnapshotEpoch() uint64 { return s.gen.Engine().Store().Epoch() }

// SyncAudit flushes buffered audit records to disk (a no-op without an
// audit log). Servers running the buffered audit mode call this on a
// timer to bound crash loss.
func (s *System) SyncAudit() error {
	if s.audit == nil {
		return nil
	}
	return s.audit.Sync()
}

// Close releases resources (the audit log, if any) after quiescing the
// enforcement lanes, so buffered audit records for in-flight decisions
// are not lost.
func (s *System) Close() error {
	s.Quiesce()
	if s.audit != nil {
		return s.audit.Close()
	}
	return nil
}

// PolicySource returns the currently loaded policy text.
func (s *System) PolicySource() string {
	s.srcMu.RLock()
	defer s.srcMu.RUnlock()
	return s.source
}

// ---------------------------------------------------------------------------
// Enforcement API (implements the baseline.Enforcer request surface)

// decide routes a request event through the rule pool.
func (s *System) decide(op, ev string, p event.Params) error {
	dec, err := s.gen.Engine().Decide(ev, p)
	if err != nil {
		return err
	}
	if allowed, reason := dec.Verdict(); !allowed {
		return &DenialError{Op: op, Reason: reason}
	}
	return nil
}

// CreateSession creates a session for the user through the
// administrative rule (denied for unknown or locked users).
func (s *System) CreateSession(user UserID) (SessionID, error) {
	dec, err := s.gen.Engine().Decide(rulegen.EvCreateSession, event.Params{"user": string(user)})
	if err != nil {
		return "", err
	}
	if allowed, reason := dec.Verdict(); !allowed {
		return "", &DenialError{Op: "createSession", Reason: reason}
	}
	sid, _ := dec.Result().(string)
	return SessionID(sid), nil
}

// DeleteSession ends a session.
func (s *System) DeleteSession(sid SessionID) error {
	return s.decide("deleteSession", rulegen.EvDeleteSession, event.Params{"session": string(sid)})
}

// AddActiveRole activates a role in a session; the generated AAR rule
// variant for the role enforces every applicable constraint.
func (s *System) AddActiveRole(user UserID, sid SessionID, role RoleID) error {
	return s.decide("addActiveRole", rulegen.EvAddActiveRole(role),
		event.Params{"user": string(user), "session": string(sid)})
}

// DropActiveRole deactivates a role in a session.
func (s *System) DropActiveRole(user UserID, sid SessionID, role RoleID) error {
	return s.decide("dropActiveRole", rulegen.EvDropActiveRole(role),
		event.Params{"user": string(user), "session": string(sid)})
}

// CheckAccess asks whether the session may perform the operation; the
// rule CA1 decides, and denials feed the active-security monitors.
func (s *System) CheckAccess(sid SessionID, p Permission) bool {
	return s.CheckAccessTuple(string(sid), p.Operation, p.Object)
}

// CheckAccessTuple is CheckAccess for callers that already hold the
// check as plain strings — rbacd's GET /v1/check handler and the wire
// server. It skips the SessionID/Permission wrappers so a fast-path
// cache hit stays allocation-free end to end: the Params map is only
// built if the cascade actually runs.
func (s *System) CheckAccessTuple(session, operation, object string) bool {
	user, _ := s.gen.Engine().Store().SessionUser(SessionID(session))
	dec, err := s.gen.Engine().DecideCheck(rulegen.EvCheckAccess,
		string(user), session, operation, object)
	return err == nil && dec.Allowed()
}

// CheckAccessTupleCacheable is CheckAccessTuple plus the cacheability
// classification an embedded client cache needs: cacheable is true only
// for allowed verdicts of the pure-snapshot checkAccess shape (the
// fastpath CA1 classification — sole scoped subscriber, CacheSafe rules
// only, no outcome listeners), i.e. verdicts that stay valid until the
// next push-epoch bump. Time- or history-dependent decisions and
// denials are never cacheable.
func (s *System) CheckAccessTupleCacheable(session, operation, object string) (allowed, cacheable bool) {
	allowed = s.CheckAccessTuple(session, operation, object)
	return allowed, allowed && s.gen.Engine().CacheableEvent(rulegen.EvCheckAccess)
}

// PushEpoch reports the engine's push epoch: a monotonic counter
// bumped by every change that can invalidate a cached verdict —
// policy-grade mutations (like SnapshotEpoch) and session-grade ones
// (role drops, session deletes) alike. Epoch-push subscribers and
// client.Cache key on it.
func (s *System) PushEpoch() uint64 { return s.gen.Engine().PushEpoch() }

// OnEpochBump installs fn to be called with the new push epoch after
// every bump. fn runs under engine-internal locks and must not block
// (atomics and non-blocking channel work only); rbacd wires it to the
// wire server's subscriber fan-out. Installing replaces any previous
// hook; nil clears it.
func (s *System) OnEpochBump(fn func(epoch uint64)) { s.gen.Engine().SetPushHook(fn) }

// CheckAccessTupleTraced is CheckAccessTuple with a client-minted trace
// id: the decision always runs the full cascade (never the fast-path
// cache), its trace is retained under tid, and TraceByTraceID resolves
// it afterwards. Requires Options.TraceBuffer > 0 for the trace to be
// retained; without it the check still decides correctly.
func (s *System) CheckAccessTupleTraced(session, operation, object string, tid TraceID) bool {
	user, _ := s.gen.Engine().Store().SessionUser(SessionID(session))
	dec, err := s.gen.Engine().DecideCheckTraced(rulegen.EvCheckAccess,
		string(user), session, operation, object, tid)
	return err == nil && dec.Allowed()
}

// BatchCheck is one access check of a CheckAccessBatch call, as plain
// strings (the wire and HTTP batch endpoints decode straight into it).
type BatchCheck struct {
	Session   string `json:"session"`
	Operation string `json:"operation"`
	Object    string `json:"object"`
}

// CheckAccessBatch decides every check in one batch-native engine pass:
// the engine captures its snapshot/epoch pair once, probes the fast
// path for the whole batch, and crosses each lane boundary once per
// scope group (see sentinel.Engine.DecideCheckBatch and DESIGN.md
// §5.6). Verdicts come back in input order, appended to the passed
// slice (reused when capacity allows). Each check is decided exactly as
// CheckAccessTuple would decide it; an undefined check event fails
// closed for the whole batch.
func (s *System) CheckAccessBatch(checks []BatchCheck, verdicts []bool) []bool {
	return s.checkAccessBatch(checks, verdicts, false, TraceID{})
}

// CheckAccessBatchTraced is CheckAccessBatch with a client-minted trace
// id: the batch's first tuple runs a fully traced cascade retained
// under tid (see sentinel.Engine.DecideCheckBatchTraced); the rest of
// the batch stays on the batch-native path.
func (s *System) CheckAccessBatchTraced(checks []BatchCheck, verdicts []bool, tid TraceID) []bool {
	return s.checkAccessBatch(checks, verdicts, true, tid)
}

func (s *System) checkAccessBatch(checks []BatchCheck, verdicts []bool, traced bool, tid TraceID) []bool {
	verdicts = verdicts[:0]
	if len(checks) == 0 {
		return verdicts
	}
	eng := s.gen.Engine()
	store := eng.Store()
	bb := batchBufPool.Get().(*batchBuf)
	tuples := bb.tuples[:0]
	// Session→user resolution is a lock-free view read; memoizing the
	// previous session still saves the lookup for the common run of
	// same-session checks within a batch.
	var lastSession string
	var lastUser string
	for i, c := range checks {
		user := lastUser
		if i == 0 || c.Session != lastSession {
			u, _ := store.SessionUser(SessionID(c.Session))
			user = string(u)
			lastSession, lastUser = c.Session, user
		}
		tuples = append(tuples, sentinel.CheckTuple{
			User: user, Session: c.Session,
			Operation: c.Operation, Object: c.Object,
		})
	}
	var vds []sentinel.Verdict
	var err error
	if traced {
		vds, err = eng.DecideCheckBatchTraced(rulegen.EvCheckAccess, tuples, bb.vds[:0], tid)
	} else {
		vds, err = eng.DecideCheckBatch(rulegen.EvCheckAccess, tuples, bb.vds[:0])
	}
	if err != nil {
		bb.reset(tuples, vds)
		for range checks {
			verdicts = append(verdicts, false)
		}
		return verdicts
	}
	for i := range vds {
		verdicts = append(verdicts, vds[i].Allowed)
	}
	bb.reset(tuples, vds)
	return verdicts
}

// batchBuf is the facade's pooled batch staging: the tuple slice handed
// to the engine and the verdict slice it fills.
type batchBuf struct {
	tuples []sentinel.CheckTuple
	vds    []sentinel.Verdict
}

func (b *batchBuf) reset(tuples []sentinel.CheckTuple, vds []sentinel.Verdict) {
	for i := range tuples {
		tuples[i] = sentinel.CheckTuple{}
	}
	b.tuples = tuples[:0]
	b.vds = vds[:0]
	batchBufPool.Put(b)
}

var batchBufPool = sync.Pool{New: func() any {
	return &batchBuf{tuples: make([]sentinel.CheckTuple, 0, 256)}
}}

// Vote is one rule's verdict within a decision.
type Vote = sentinel.Vote

// Explanation is the full account of one access decision: the aggregate
// verdict, the deny reason (if any), and every rule vote in firing
// order — the audit-grade answer to "why was this allowed/denied?".
type Explanation struct {
	Allowed bool
	Reason  string
	Votes   []Vote
}

// ExplainAccess runs the same decision as CheckAccess but returns the
// rule-by-rule account instead of a bare verdict.
func (s *System) ExplainAccess(sid SessionID, p Permission) Explanation {
	user, _ := s.gen.Engine().Store().SessionUser(sid)
	dec, err := s.gen.Engine().Decide(rulegen.EvCheckAccess, event.Params{
		"user": string(user), "session": string(sid),
		"operation": p.Operation, "object": p.Object,
	})
	if err != nil {
		return Explanation{Reason: err.Error()}
	}
	allowed, reason := dec.Verdict()
	return Explanation{Allowed: allowed, Reason: reason, Votes: dec.Votes()}
}

// CheckAccessForPurpose is the privacy-aware decision (rule CAP1): core
// RBAC plus purpose bindings and consent.
func (s *System) CheckAccessForPurpose(sid SessionID, p Permission, purpose string) bool {
	user, _ := s.gen.Engine().Store().SessionUser(sid)
	dec, err := s.gen.Engine().Decide(rulegen.EvCheckPurposeAccess, event.Params{
		"user": string(user), "session": string(sid),
		"operation": p.Operation, "object": p.Object, "purpose": purpose,
	})
	return err == nil && dec.Allowed()
}

// AssignUser assigns a role through the administrative rule (static SoD
// enforced).
func (s *System) AssignUser(user UserID, role RoleID) error {
	return s.decide("assignUser", rulegen.EvAssignUser,
		event.Params{"user": string(user), "role": string(role)})
}

// DeassignUser removes an assignment.
func (s *System) DeassignUser(user UserID, role RoleID) error {
	return s.decide("deassignUser", rulegen.EvDeassignUser,
		event.Params{"user": string(user), "role": string(role)})
}

// EnableRole enables a role (administrator action).
func (s *System) EnableRole(role RoleID) error {
	return s.decide("enableRole", rulegen.EvEnableRole(role), nil)
}

// DisableRole disables a role, subject to disabling-time SoD.
func (s *System) DisableRole(role RoleID) error {
	return s.decide("disableRole", rulegen.EvDisableRole(role), nil)
}

// AddUser registers a user at runtime (outside the policy file).
func (s *System) AddUser(user UserID) error {
	return s.gen.Engine().Store().AddUser(user)
}

// GrantConsent records data-subject consent for an object and purpose.
func (s *System) GrantConsent(object, purpose string) error {
	return s.gen.Privacy().GrantConsent(object, purpose)
}

// RevokeConsent withdraws consent.
func (s *System) RevokeConsent(object, purpose string) error {
	return s.gen.Privacy().RevokeConsent(object, purpose)
}

// SetContext reports an environmental change (a sensor reading, a
// network-state probe) as a context-update event: the value is stored
// and every role whose context requirement stops holding is deactivated
// across all sessions, within the same cascade.
func (s *System) SetContext(key, value string) error {
	return s.decide("setContext", rulegen.EvContextUpdate,
		event.Params{"key": key, "value": value})
}

// GetContext reads the current value of an environmental key.
func (s *System) GetContext(key string) (string, bool) {
	return s.gen.Engine().Env().Get(key)
}

// RaiseExternal injects an external (sensor) event; the event must have
// been registered with RegisterExternal.
func (s *System) RaiseExternal(name string, p Params) error {
	return s.gen.Engine().Monitor().Inject(name, p)
}

// RegisterExternal declares an external event source.
func (s *System) RegisterExternal(name string) error {
	return s.gen.Engine().Monitor().Register(name)
}

// ---------------------------------------------------------------------------
// Policy lifecycle

// ApplyPolicy transitions to a new policy, regenerating exactly the
// affected rules, and returns what changed.
func (s *System) ApplyPolicy(policySource string) (Report, error) {
	spec, err := policy.ParseString(policySource)
	if err != nil {
		return Report{}, err
	}
	rep, err := s.gen.Apply(spec)
	if err != nil {
		return rep, err
	}
	s.srcMu.Lock()
	s.source = policySource
	s.srcMu.Unlock()
	return rep, nil
}

// CheckPolicy validates a policy without loading it and returns the
// findings as strings (errors first).
func CheckPolicy(policySource string) ([]string, error) {
	spec, err := policy.ParseString(policySource)
	if err != nil {
		return nil, err
	}
	issues := policy.Check(spec)
	out := make([]string, len(issues))
	for i, is := range issues {
		out[i] = is.String()
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Introspection

// OnReport registers a listener for periodic monitoring reports
// (`report NAME every DUR` statements). Listeners run on the engine's
// drain goroutine and must not block.
func (s *System) OnReport(fn func(SystemReport)) { s.gen.OnReport(fn) }

// Rules returns a snapshot of the generated rule pool, sorted by name.
func (s *System) Rules() []RuleInfo { return s.gen.Engine().Pool().Snapshot() }

// Alerts returns every active-security alert fired so far.
func (s *System) Alerts() []Alert { return s.gen.Security().Alerts() }

// SessionRoles lists the active roles of a session.
func (s *System) SessionRoles(sid SessionID) ([]RoleID, error) {
	return s.gen.Engine().Store().SessionRoles(sid)
}

// AssignedRoles lists a user's directly assigned roles.
func (s *System) AssignedRoles(user UserID) ([]RoleID, error) {
	return s.gen.Engine().Store().AssignedRoles(user)
}

// AuthorizedRoles lists every role a user may activate (assignments
// plus hierarchy).
func (s *System) AuthorizedRoles(user UserID) ([]RoleID, error) {
	return s.gen.Engine().Store().AuthorizedRoles(user)
}

// UserLocked reports whether active security has locked the user.
func (s *System) UserLocked(user UserID) bool {
	return s.gen.Engine().Store().UserLocked(user)
}

// UnlockUser clears an active-security lock.
func (s *System) UnlockUser(user UserID) error {
	return s.gen.Engine().Store().SetUserLocked(user, false)
}

// RoleEnabled reports GTRBAC enabling state.
func (s *System) RoleEnabled(role RoleID) bool {
	return s.gen.Engine().Store().RoleEnabled(role)
}

// CheckInvariants audits the underlying RBAC state; a healthy system
// returns nil.
func (s *System) CheckInvariants() []error {
	return s.gen.Engine().Store().CheckInvariants()
}

// VerifyRules audits the generated rule pool against the loaded policy
// (the paper's future-work item): a healthy system returns nil; a
// non-nil result means the pool no longer matches the policy.
func (s *System) VerifyRules() []error { return s.gen.Verify() }

// SaveState writes a snapshot (state + policy source) to path.
func (s *System) SaveState(path string) error {
	return store.SaveSnapshot(path, s.PolicySource(), s.gen.Engine().Store().Snapshot())
}

// OpenSnapshot rebuilds a System from a snapshot file: the policy
// regenerates the rule pool, then the state (assignments made at
// runtime, sessions, locks) is restored over it.
func OpenSnapshot(path string, opts *Options) (*System, error) {
	f, err := store.LoadSnapshot(path)
	if err != nil {
		return nil, err
	}
	sys, err := Open(f.Policy, opts)
	if err != nil {
		return nil, err
	}
	if err := sys.gen.Engine().Store().Restore(f.State); err != nil {
		sys.Close()
		return nil, err
	}
	if errs := sys.CheckInvariants(); len(errs) != 0 {
		sys.Close()
		return nil, errors.Join(errs...)
	}
	return sys, nil
}

// Stats summarizes the engine for dashboards.
type Stats struct {
	Rules      int
	Events     int
	Users      int
	Roles      int
	Sessions   int
	Detections uint64
	Denials    uint64
	Alerts     int
}

// Stats returns engine counters.
func (s *System) Stats() Stats {
	eng := s.gen.Engine()
	es := eng.Detector().Stats()
	c := eng.Store().Count()
	return Stats{
		Rules: eng.Pool().Len(), Events: es.Events,
		Users: c.Users, Roles: c.Roles, Sessions: c.Sessions,
		Detections: es.Detected,
		Denials:    s.gen.Security().Denials(),
		Alerts:     len(s.gen.Security().Alerts()),
	}
}
