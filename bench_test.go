package activerbac_test

// The benchmark harness: one benchmark family per experiment in
// DESIGN.md (F1, E1-E8). `go test -bench=. -benchmem` regenerates every
// series; cmd/bench prints the same data as paper-style tables.

import (
	"fmt"
	"testing"
	"time"

	"activerbac"
	"activerbac/internal/baseline"
	"activerbac/internal/clock"
	"activerbac/internal/event"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
	"activerbac/internal/security"
	"activerbac/internal/workload"
)

var benchEpoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// openSynthetic builds an OWTE system for a synthetic enterprise.
func openSynthetic(b *testing.B, cfg workload.EnterpriseConfig) (*activerbac.System, *policy.Spec, *clock.Sim) {
	b.Helper()
	spec := workload.MustEnterprise(cfg)
	sim := clock.NewSim(benchEpoch)
	sys, err := openFromSpec(spec, sim)
	if err != nil {
		b.Fatal(err)
	}
	return sys, spec, sim
}

// openFromSpec round-trips the spec through its canonical text: the
// facade consumes policy sources.
func openFromSpec(spec *policy.Spec, clk activerbac.Clock) (*activerbac.System, error) {
	return activerbac.Open(policySourceOf(spec), &activerbac.Options{Clock: clk})
}

// --------------------------------------------------------------------------
// F1: Figure 1 — policy specification to rule generation (enterprise XYZ)

func BenchmarkF1_GenerateXYZ(b *testing.B) {
	src := policySourceOf(workload.XYZ())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
		if err != nil {
			b.Fatal(err)
		}
		if len(sys.Rules()) == 0 {
			b.Fatal("no rules generated")
		}
		sys.Close()
	}
}

// --------------------------------------------------------------------------
// E1: CheckAccess latency, OWTE vs baseline, vs role count

func benchmarkCheckAccess(b *testing.B, roles int, owte bool) {
	cfg := workload.EnterpriseConfig{
		Roles: roles, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	}
	spec := workload.MustEnterprise(cfg)
	sim := clock.NewSim(benchEpoch)
	var enf baseline.Enforcer
	if owte {
		sys, err := openFromSpec(spec, sim)
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		enf = sys
	} else {
		eng, err := baseline.New(sim, spec)
		if err != nil {
			b.Fatal(err)
		}
		enf = eng
	}
	drv := workload.NewDriver(enf)
	// Warm up: one activation per user so checks exercise real state.
	warm := workload.Stream(spec, workload.ActivateHeavyMix, 4*len(spec.Users), 2)
	if err := drv.Run(warm); err != nil {
		b.Fatal(err)
	}
	reqs := workload.Stream(spec, workload.CheckOnlyMix, 4096, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drv.Do(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_CheckAccess(b *testing.B) {
	for _, roles := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("owte/roles=%d", roles), func(b *testing.B) {
			benchmarkCheckAccess(b, roles, true)
		})
		b.Run(fmt.Sprintf("baseline/roles=%d", roles), func(b *testing.B) {
			benchmarkCheckAccess(b, roles, false)
		})
	}
}

// E1b: the same decision path under parallel callers. The detector
// serializes rule execution (one drain at a time, as in Sentinel's
// single event-detector thread), so this measures queueing overhead
// under contention, not speedup.
func BenchmarkE1_CheckAccessParallel(b *testing.B) {
	spec := workload.MustEnterprise(workload.EnterpriseConfig{
		Roles: 64, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	})
	sys, err := openFromSpec(spec, clock.NewSim(benchEpoch))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	user := activerbac.UserID(spec.Users[0].Name)
	role := activerbac.RoleID(spec.Users[0].Roles[0])
	sid, err := sys.CreateSession(user)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.AddActiveRole(user, sid, role); err != nil {
		b.Fatal(err)
	}
	p := activerbac.Permission{Operation: spec.Permissions[0].Operation, Object: spec.Permissions[0].Object}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sys.CheckAccess(sid, p)
		}
	})
}

// --------------------------------------------------------------------------
// E2: composite event detection throughput per operator and mode

func BenchmarkE2_Operators(b *testing.B) {
	ops := []struct {
		name string
		expr string
	}{
		{"SEQ", "SEQ(a, b)"},
		{"AND", "AND(a, b)"},
		{"OR", "OR(a, b)"},
		{"NOT", "NOT(a, x, b)"},
		{"APERIODIC", "APERIODIC(a, b, x)"},
	}
	modes := []event.Mode{event.Recent, event.Chronicle, event.Continuous, event.Cumulative}
	for _, op := range ops {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%s", op.name, mode), func(b *testing.B) {
				sim := clock.NewSim(benchEpoch)
				det := event.New(sim)
				det.MustPrimitive("a")
				det.MustPrimitive("b")
				det.MustPrimitive("x")
				expr := event.MustParse(op.expr)
				det.MustDefine("c", event.WithMode(expr, mode))
				n := 0
				if _, err := det.Subscribe("c", func(*event.Occurrence) { n++ }); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sim.Advance(time.Second)
					// Balanced initiator/terminator/closer stream keeps
					// operator buffers bounded, so per-op cost reflects
					// steady state rather than unbounded buffer growth.
					switch i % 3 {
					case 0:
						det.MustRaise("a", nil)
					case 1:
						det.MustRaise("b", nil)
					default:
						det.MustRaise("x", nil)
					}
				}
			})
		}
	}
}

func BenchmarkE2_PlusTimerLoad(b *testing.B) {
	sim := clock.NewSim(benchEpoch)
	det := event.New(sim)
	det.MustPrimitive("open")
	det.MustDefine("timeout", event.WithMode(event.Plus(event.NameExpr("open"), time.Hour), event.Chronicle))
	fired := 0
	if _, err := det.Subscribe("timeout", func(*event.Occurrence) { fired++ }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.MustRaise("open", nil)
		sim.Advance(time.Minute)
	}
	b.StopTimer()
	sim.Advance(2 * time.Hour)
}

// --------------------------------------------------------------------------
// E3: rule generation time vs enterprise size

func BenchmarkE3_Generate(b *testing.B) {
	for _, roles := range []int{10, 100, 400} {
		for _, ssd := range []float64{0, 0.3} {
			cfg := workload.EnterpriseConfig{
				Roles: roles, Shape: workload.XYZShape, Branch: 8,
				SSDFraction: ssd, Users: roles, PermsPerRole: 2, Seed: 4,
			}
			src := policySourceOf(workload.MustEnterprise(cfg))
			b.Run(fmt.Sprintf("roles=%d/ssd=%.1f", roles, ssd), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
					if err != nil {
						b.Fatal(err)
					}
					sys.Close()
				}
			})
		}
	}
}

// --------------------------------------------------------------------------
// E4: regeneration cost after a one-role policy edit — incremental vs full

func BenchmarkE4_Regenerate(b *testing.B) {
	for _, roles := range []int{10, 100, 400} {
		cfg := workload.EnterpriseConfig{
			Roles: roles, Shape: workload.XYZShape, Branch: 8,
			SSDFraction: 0.3, Users: roles, PermsPerRole: 2, Seed: 4,
		}
		base := policySourceOf(workload.MustEnterprise(cfg))
		// The paper's running change: add/adjust a shift on one role.
		v1 := base + "shift r001 08:00:00-16:00:00\n"
		v2 := base + "shift r001 09:00:00-17:00:00\n"

		b.Run(fmt.Sprintf("incremental/roles=%d", roles), func(b *testing.B) {
			sys, err := activerbac.Open(v1, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := v2
				if i%2 == 1 {
					next = v1
				}
				rep, err := sys.ApplyPolicy(next)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Touched() != 1 {
					b.Fatalf("touched %d roles, want 1", rep.Touched())
				}
			}
		})
		b.Run(fmt.Sprintf("full/roles=%d", roles), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := v2
				if i%2 == 1 {
					src = v1
				}
				sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
				if err != nil {
					b.Fatal(err)
				}
				sys.Close()
			}
		})
	}
}

// --------------------------------------------------------------------------
// E5: active security monitor overhead and detection

func BenchmarkE5_ActiveSecurity(b *testing.B) {
	for _, thresholds := range []int{0, 1, 8} {
		b.Run(fmt.Sprintf("thresholds=%d", thresholds), func(b *testing.B) {
			sim := clock.NewSim(benchEpoch)
			mon := security.NewMonitor(sim)
			for i := 0; i < thresholds; i++ {
				if err := mon.AddThreshold(fmt.Sprintf("t%d", i), 100, time.Minute, "alert"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Advance(time.Millisecond)
				mon.RecordDenial(fmt.Sprintf("user%d", i%32))
			}
		})
	}
}

// --------------------------------------------------------------------------
// E6: activation throughput per AAR variant

func BenchmarkE6_Activate(b *testing.B) {
	variants := []struct {
		name string
		src  string
		role string
	}{
		{"AAR1-core", "policy \"p\"\nrole R\nuser u: R\n", "R"},
		{"AAR2-hierarchy", "policy \"p\"\nrole Top\nrole R\nhierarchy Top > R\nuser u: Top\n", "R"},
		{"AAR3-dsd", "policy \"p\"\nrole R\nrole S\ndsd d 2: R, S\nuser u: R\n", "R"},
		{"AAR4-dsd-hierarchy", "policy \"p\"\nrole Top\nrole R\nrole S\nhierarchy Top > R\ndsd d 2: R, S\nuser u: Top\n", "R"},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			sys, err := activerbac.Open(v.src, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			sid, err := sys.CreateSession("u")
			if err != nil {
				b.Fatal(err)
			}
			role := activerbac.RoleID(v.role)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.AddActiveRole("u", sid, role); err != nil {
					b.Fatal(err)
				}
				if err := sys.DropActiveRole("u", sid, role); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE6_ActivateBaseline(b *testing.B) {
	spec := workload.MustEnterprise(workload.EnterpriseConfig{Roles: 1, Shape: workload.Flat, Users: 1, Seed: 1})
	sim := clock.NewSim(benchEpoch)
	eng, err := baseline.New(sim, spec)
	if err != nil {
		b.Fatal(err)
	}
	user := rbac.UserID(spec.Users[0].Name)
	role := rbac.RoleID(spec.Users[0].Roles[0])
	sid, err := eng.CreateSession(user)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.AddActiveRole(user, sid, role); err != nil {
			b.Fatal(err)
		}
		if err := eng.DropActiveRole(user, sid, role); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------------------------
// E7: temporal machinery — duration timers under load

func BenchmarkE7_TemporalTimers(b *testing.B) {
	for _, pending := range []int{100, 10000} {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			src := "policy \"p\"\nrole R\nduration * R 1h\n"
			for i := 0; i < pending; i++ {
				src += fmt.Sprintf("user u%04d: R\n", i)
			}
			sim := clock.NewSim(benchEpoch)
			sys, err := activerbac.Open(src, &activerbac.Options{Clock: sim})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			// Arm `pending` duration timers.
			for i := 0; i < pending; i++ {
				u := activerbac.UserID(fmt.Sprintf("u%04d", i))
				sid, err := sys.CreateSession(u)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.AddActiveRole(u, sid, "R"); err != nil {
					b.Fatal(err)
				}
			}
			// Measure activation/deactivation with the timer population
			// armed.
			sid, err := sys.CreateSession("u0000")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.AddActiveRole("u0000", sid, "R"); err != nil {
					b.Fatal(err)
				}
				if err := sys.DropActiveRole("u0000", sid, "R"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE7_TimerFireThroughput(b *testing.B) {
	sim := clock.NewSim(benchEpoch)
	fired := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AfterFunc(time.Duration(i%1000)*time.Millisecond, func() { fired++ })
	}
	sim.Advance(time.Second)
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// --------------------------------------------------------------------------
// E8: CFD coupling overhead

func BenchmarkE8_CFD(b *testing.B) {
	b.Run("coupled", func(b *testing.B) {
		src := "policy \"p\"\nrole A\nrole B\ncouple A -> B\n"
		sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.DisableRole("B"); err != nil {
				b.Fatal(err)
			}
			if err := sys.EnableRole("A"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncoupled", func(b *testing.B) {
		src := "policy \"p\"\nrole A\nrole B\n"
		sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.DisableRole("B"); err != nil {
				b.Fatal(err)
			}
			if err := sys.EnableRole("A"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --------------------------------------------------------------------------
// Ablations (design-choice validations from DESIGN.md)

// A1: rule dispatch must be O(1) in total pool size — rules bind to
// events through a per-event index, so unrelated rules cost nothing.
func BenchmarkA1_DispatchVsPoolSize(b *testing.B) {
	for _, roles := range []int{4, 64, 512} {
		b.Run(fmt.Sprintf("roles=%d", roles), func(b *testing.B) {
			cfg := workload.EnterpriseConfig{
				Roles: roles, Shape: workload.Flat, Users: 4, PermsPerRole: 1, Seed: 9,
			}
			spec := workload.MustEnterprise(cfg)
			sys, err := openFromSpec(spec, clock.NewSim(benchEpoch))
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			user := activerbac.UserID(spec.Users[0].Name)
			role := activerbac.RoleID(spec.Users[0].Roles[0])
			sid, err := sys.CreateSession(user)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.AddActiveRole(user, sid, role); err != nil {
					b.Fatal(err)
				}
				if err := sys.DropActiveRole(user, sid, role); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A2: decomposition of the OWTE decision overhead — the same check as
// a bare store call, as an event raise with no rules, and as the full
// ruled decision.
func BenchmarkA2_DecisionOverhead(b *testing.B) {
	spec := workload.MustEnterprise(workload.EnterpriseConfig{
		Roles: 8, Shape: workload.Flat, Users: 1, PermsPerRole: 2, Seed: 9,
	})
	sim := clock.NewSim(benchEpoch)
	eng, err := baseline.New(sim, spec)
	if err != nil {
		b.Fatal(err)
	}
	user := rbac.UserID(spec.Users[0].Name)
	role := rbac.RoleID(spec.Users[0].Roles[0])
	sid, err := eng.CreateSession(user)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.AddActiveRole(user, sid, role); err != nil {
		b.Fatal(err)
	}
	perm := rbac.Permission{Operation: spec.Permissions[0].Operation, Object: spec.Permissions[0].Object}

	b.Run("store-call", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Store().CheckAccess(sid, perm)
		}
	})
	b.Run("raise-no-rules", func(b *testing.B) {
		det := event.New(clock.NewSim(benchEpoch))
		det.MustPrimitive("probe")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			det.MustRaise("probe", nil)
		}
	})
	b.Run("full-decision", func(b *testing.B) {
		sys, err := openFromSpec(spec, clock.NewSim(benchEpoch))
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		sid2, err := sys.CreateSession(activerbac.UserID(user))
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.AddActiveRole(activerbac.UserID(user), sid2, activerbac.RoleID(role)); err != nil {
			b.Fatal(err)
		}
		p := activerbac.Permission{Operation: perm.Operation, Object: perm.Object}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.CheckAccess(sid2, p)
		}
	})
}

// A3: incremental regeneration with no actual change (pure diff cost).
func BenchmarkA3_ApplyNoChange(b *testing.B) {
	cfg := workload.EnterpriseConfig{
		Roles: 100, Shape: workload.XYZShape, Branch: 8,
		SSDFraction: 0.3, Users: 100, PermsPerRole: 2, Seed: 4,
	}
	src := policySourceOf(workload.MustEnterprise(cfg))
	sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(benchEpoch)})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.ApplyPolicy(src)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Touched() != 0 {
			b.Fatal("no-op apply touched roles")
		}
	}
}

// --------------------------------------------------------------------------
// helpers

// policySourceOf renders a spec back to .acp text. The workload
// generator builds policy.Spec values; the facade consumes sources, so
// benchmarks serialize through the canonical writer.
func policySourceOf(spec *policy.Spec) string { return policy.Format(spec) }
