package activerbac_test

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"activerbac"
	"activerbac/internal/store"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

const xyzPolicy = `
policy "enterprise-xyz"
role PM
role PC
role AM
role AC
role Clerk
hierarchy PM > PC > Clerk
hierarchy AM > AC > Clerk
ssd purchase-approval 2: PC, AC
permission PC: write purchase-order.dat
permission Clerk: read lobby.txt
user bob: PC
user alice: PM
user carol: AC
cardinality PM 1
`

func openXYZ(t *testing.T) *activerbac.System {
	t.Helper()
	sys, err := activerbac.Open(xyzPolicy, &activerbac.Options{Clock: activerbac.NewSimClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := openXYZ(t)
	sid, err := sys.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	if !sys.CheckAccess(sid, activerbac.Permission{Operation: "write", Object: "purchase-order.dat"}) {
		t.Fatal("write denied")
	}
	if !sys.CheckAccess(sid, activerbac.Permission{Operation: "read", Object: "lobby.txt"}) {
		t.Fatal("inherited read denied")
	}
	if sys.CheckAccess(sid, activerbac.Permission{Operation: "approve", Object: "purchase-order.dat"}) {
		t.Fatal("approve allowed")
	}
	roles, err := sys.SessionRoles(sid)
	if err != nil || len(roles) != 1 || roles[0] != "PC" {
		t.Fatalf("SessionRoles = %v, %v", roles, err)
	}
	if err := sys.DropActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeleteSession(sid); err != nil {
		t.Fatal(err)
	}
	if errs := sys.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

func TestDenialErrorsClassify(t *testing.T) {
	sys := openXYZ(t)
	sid, err := sys.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	err = sys.AddActiveRole("bob", sid, "AM")
	if err == nil {
		t.Fatal("unauthorized activation allowed")
	}
	if !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	var de *activerbac.DenialError
	if !errors.As(err, &de) || de.Reason == "" || !strings.Contains(de.Error(), "denied") {
		t.Fatalf("DenialError = %#v", err)
	}
	// SSD through the assignment rule.
	if err := sys.AssignUser("carol", "PC"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("SSD assignment: %v", err)
	}
	// Unknown user session.
	if _, err := sys.CreateSession("ghost"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("ghost session: %v", err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := activerbac.Open("syntactically wrong", nil); err == nil {
		t.Fatal("bad syntax accepted")
	}
	if _, err := activerbac.Open("role A\nrole A", nil); err == nil {
		t.Fatal("inconsistent policy accepted")
	}
	if _, err := activerbac.OpenFile("/does/not/exist.acp", nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckPolicy(t *testing.T) {
	issues, err := activerbac.CheckPolicy("role A\nrole A")
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0], "error") {
		t.Fatalf("issues = %v", issues)
	}
	if issues, err := activerbac.CheckPolicy("role A"); err != nil || len(issues) != 0 {
		t.Fatalf("clean policy: %v %v", issues, err)
	}
	if _, err := activerbac.CheckPolicy("nonsense statement"); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestApplyPolicyRegenerates(t *testing.T) {
	sys := openXYZ(t)
	rep, err := sys.ApplyPolicy(strings.Replace(xyzPolicy, "cardinality PM 1", "cardinality PM 3", 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Touched() != 1 || len(rep.RolesRegenerated) != 1 || rep.RolesRegenerated[0] != "PM" {
		t.Fatalf("report = %+v", rep)
	}
	if sys.PolicySource() == xyzPolicy {
		t.Fatal("PolicySource not updated")
	}
	if _, err := sys.ApplyPolicy("role A\nrole A"); err == nil {
		t.Fatal("bad policy accepted by ApplyPolicy")
	}
}

func TestRulesIntrospection(t *testing.T) {
	sys := openXYZ(t)
	rules := sys.Rules()
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	names := make(map[string]bool, len(rules))
	for _, r := range rules {
		names[r.Name] = true
	}
	for _, want := range []string{"AAR2.PC", "CA1", "ADM.assignUser", "CC1.PM"} {
		if !names[want] {
			t.Errorf("missing rule %q", want)
		}
	}
	st := sys.Stats()
	if st.Rules != len(rules) || st.Roles != 5 || st.Users != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if errs := sys.VerifyRules(); len(errs) != 0 {
		t.Fatalf("VerifyRules: %v", errs)
	}
}

func TestReviewHelpers(t *testing.T) {
	sys := openXYZ(t)
	ar, err := sys.AssignedRoles("alice")
	if err != nil || len(ar) != 1 || ar[0] != "PM" {
		t.Fatalf("AssignedRoles = %v, %v", ar, err)
	}
	auth, err := sys.AuthorizedRoles("alice")
	if err != nil || len(auth) != 3 {
		t.Fatalf("AuthorizedRoles = %v, %v", auth, err)
	}
	if err := sys.AddUser("newbie"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignUser("newbie", "Clerk"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeassignUser("newbie", "Clerk"); err != nil {
		t.Fatal(err)
	}
}

func TestActiveSecurityThroughFacade(t *testing.T) {
	src := xyzPolicy + "threshold intrusions 3 in 5m: lock-user\n"
	sys, err := activerbac.Open(src, &activerbac.Options{Clock: activerbac.NewSimClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sid, _ := sys.CreateSession("bob")
	for i := 0; i < 3; i++ {
		sys.CheckAccess(sid, activerbac.Permission{Operation: "steal", Object: "secrets"})
	}
	if !sys.UserLocked("bob") {
		t.Fatal("user not locked after threshold")
	}
	if len(sys.Alerts()) != 1 {
		t.Fatalf("Alerts = %v", sys.Alerts())
	}
	if err := sys.UnlockUser("bob"); err != nil {
		t.Fatal(err)
	}
	if sys.UserLocked("bob") {
		t.Fatal("unlock failed")
	}
}

func TestEnableDisableThroughFacade(t *testing.T) {
	sys := openXYZ(t)
	if !sys.RoleEnabled("PC") {
		t.Fatal("PC should start enabled")
	}
	if err := sys.DisableRole("PC"); err != nil {
		t.Fatal(err)
	}
	if sys.RoleEnabled("PC") {
		t.Fatal("PC still enabled")
	}
	sid, _ := sys.CreateSession("bob")
	if err := sys.AddActiveRole("bob", sid, "PC"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("activation of disabled role: %v", err)
	}
	if err := sys.EnableRole("PC"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
}

func TestPurposeAccessThroughFacade(t *testing.T) {
	src := `
policy "clinic"
role Doctor
user dora: Doctor
permission Doctor: read patient.dat
purpose treatment
bind Doctor read patient.dat for treatment
consent-required patient.dat
`
	sys, err := activerbac.Open(src, &activerbac.Options{Clock: activerbac.NewSimClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sid, _ := sys.CreateSession("dora")
	if err := sys.AddActiveRole("dora", sid, "Doctor"); err != nil {
		t.Fatal(err)
	}
	p := activerbac.Permission{Operation: "read", Object: "patient.dat"}
	if sys.CheckAccessForPurpose(sid, p, "treatment") {
		t.Fatal("allowed without consent")
	}
	if err := sys.GrantConsent("patient.dat", "treatment"); err != nil {
		t.Fatal(err)
	}
	if !sys.CheckAccessForPurpose(sid, p, "treatment") {
		t.Fatal("denied with consent")
	}
	if err := sys.RevokeConsent("patient.dat", "treatment"); err != nil {
		t.Fatal(err)
	}
	if sys.CheckAccessForPurpose(sid, p, "treatment") {
		t.Fatal("allowed after revocation")
	}
}

func TestExternalEvents(t *testing.T) {
	sys := openXYZ(t)
	if err := sys.RegisterExternal("sensor.location"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RaiseExternal("sensor.location", activerbac.Params{"room": "ICU"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RaiseExternal("sensor.unknown", nil); err == nil {
		t.Fatal("unknown external event accepted")
	}
}

func TestExplainAccess(t *testing.T) {
	sys := openXYZ(t)
	sid, err := sys.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	ex := sys.ExplainAccess(sid, activerbac.Permission{Operation: "write", Object: "purchase-order.dat"})
	if !ex.Allowed || ex.Reason != "" {
		t.Fatalf("allowed explanation = %+v", ex)
	}
	if len(ex.Votes) != 1 || ex.Votes[0].Rule != "CA1" || !ex.Votes[0].Allow {
		t.Fatalf("votes = %+v", ex.Votes)
	}
	ex = sys.ExplainAccess(sid, activerbac.Permission{Operation: "approve", Object: "purchase-order.dat"})
	if ex.Allowed || ex.Reason != "Permission Denied" {
		t.Fatalf("denied explanation = %+v", ex)
	}
	if len(ex.Votes) != 1 || ex.Votes[0].Allow {
		t.Fatalf("votes = %+v", ex.Votes)
	}
	// A voteless decision explains itself too.
	ex = sys.ExplainAccess("ghost-session", activerbac.Permission{Operation: "x", Object: "y"})
	if ex.Allowed || ex.Reason == "" {
		t.Fatalf("ghost explanation = %+v", ex)
	}
}

func TestContextThroughFacade(t *testing.T) {
	src := `
policy "pervasive"
role WardNurse
user nina: WardNurse
context WardNurse requires location = ward
`
	sys, err := activerbac.Open(src, &activerbac.Options{Clock: activerbac.NewSimClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sid, err := sys.CreateSession("nina")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("nina", sid, "WardNurse"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("activation outside context: %v", err)
	}
	if err := sys.SetContext("location", "ward"); err != nil {
		t.Fatal(err)
	}
	if v, ok := sys.GetContext("location"); !ok || v != "ward" {
		t.Fatalf("GetContext = %q,%v", v, ok)
	}
	if err := sys.AddActiveRole("nina", sid, "WardNurse"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetContext("location", "lobby"); err != nil {
		t.Fatal(err)
	}
	roles, err := sys.SessionRoles(sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(roles) != 0 {
		t.Fatalf("roles after context change: %v", roles)
	}
}

func TestPeriodicReportsThroughFacade(t *testing.T) {
	sim := activerbac.NewSimClock(t0)
	sys, err := activerbac.Open(xyzPolicy+"report pulse every 15m\n",
		&activerbac.Options{Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var got []activerbac.SystemReport
	sys.OnReport(func(r activerbac.SystemReport) { got = append(got, r) })
	sim.Advance(time.Hour + time.Second)
	if len(got) != 4 {
		t.Fatalf("reports = %d, want 4", len(got))
	}
	if got[3].Tick != 4 || got[3].Roles != 5 {
		t.Fatalf("last report %+v", got[3])
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	sys := openXYZ(t)
	sid, _ := sys.CreateSession("bob")
	if err := sys.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveState(path); err != nil {
		t.Fatal(err)
	}
	restored, err := activerbac.OpenSnapshot(path, &activerbac.Options{Clock: activerbac.NewSimClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	// The restored system has the session with PC active and the full
	// rule pool.
	if !restored.CheckAccess(sid, activerbac.Permission{Operation: "write", Object: "purchase-order.dat"}) {
		t.Fatal("restored session lost access")
	}
	if len(restored.Rules()) != len(sys.Rules()) {
		t.Fatal("rule pool not regenerated")
	}
	if _, err := activerbac.OpenSnapshot(filepath.Join(dir, "missing.json"), nil); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

// Concurrency smoke: the facade must serve overlapping enforcement
// traffic from many goroutines without races or invariant damage (run
// with -race in CI).
func TestConcurrentFacadeTraffic(t *testing.T) {
	sys := openXYZ(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := activerbac.UserID("bob")
			if g%2 == 1 {
				user = "alice"
			}
			sid, err := sys.CreateSession(user)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 60; i++ {
				_ = sys.AddActiveRole(user, sid, "PC")
				sys.CheckAccess(sid, activerbac.Permission{Operation: "write", Object: "purchase-order.dat"})
				_ = sys.DropActiveRole(user, sid, "PC")
			}
			if err := sys.DeleteSession(sid); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if errsInv := sys.CheckInvariants(); len(errsInv) != 0 {
		t.Fatalf("invariants: %v", errsInv)
	}
	if errsV := sys.VerifyRules(); len(errsV) != 0 {
		t.Fatalf("verify: %v", errsV)
	}
}

func TestAuditLogIntegration(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.log")
	sys, err := activerbac.Open(xyzPolicy, &activerbac.Options{
		Clock:     activerbac.NewSimClock(t0),
		AuditPath: auditPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	sid, _ := sys.CreateSession("bob")
	sys.AddActiveRole("bob", sid, "PC")
	sys.CheckAccess(sid, activerbac.Permission{Operation: "write", Object: "purchase-order.dat"})
	sys.CheckAccess(sid, activerbac.Permission{Operation: "steal", Object: "x"})
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	var recs []store.AuditRecord
	if err := store.Replay(auditPath, func(r store.AuditRecord) { recs = append(recs, r) }); err != nil {
		t.Fatal(err)
	}
	if len(recs) < 4 {
		t.Fatalf("audit records = %d, want >= 4", len(recs))
	}
	sawDeny := false
	for _, r := range recs {
		if r.Kind == "decision" && !r.Allowed && r.Rule == "CA1" {
			sawDeny = true
		}
	}
	if !sawDeny {
		t.Fatal("denied CheckAccess not audited")
	}
}
