package activerbac

import (
	"errors"
	"fmt"

	"activerbac/internal/store"
)

// ---------------------------------------------------------------------------
// Replication: export-state-at-epoch and install-synced-state. These
// are the facade halves of internal/replicate — the leader exports, a
// replica installs — both speaking the same snapshot envelope the disk
// persistence uses (store.EncodeSnapshot), so a replica ends up in
// exactly the state a restart from SaveState would produce.

// exportRetries bounds the epoch-stability loop of ExportSyncSnapshot.
const exportRetries = 8

// ExportSyncSnapshot serializes the policy source plus the full
// compiled state (users, roles, sessions, SoD tallies, locks) behind
// the push epoch the bytes are valid at. The export races concurrent
// mutations, so it re-reads the push epoch after encoding and retries
// while the two disagree; if churn outlasts the retry budget it
// returns the epoch read *before* the snapshot. Under-claiming is
// safe: the replica records an older epoch than it may actually hold
// and simply resyncs once more on the next push it observes — a
// harmless extra transfer, never a missed one.
func (s *System) ExportSyncSnapshot() (epoch uint64, data []byte, err error) {
	for i := 0; i < exportRetries; i++ {
		before := s.PushEpoch()
		encoded, eerr := store.EncodeSnapshot(s.PolicySource(), s.gen.Engine().Store().Snapshot())
		if eerr != nil {
			return 0, nil, eerr
		}
		if s.PushEpoch() == before || i == exportRetries-1 {
			return before, encoded, nil
		}
	}
	panic("unreachable")
}

// SyncSnapshotPolicy extracts the policy source from an encoded sync
// snapshot without installing anything — the hook rbacd uses to run a
// synced policy through its analyze/verify gates before the install.
func SyncSnapshotPolicy(data []byte) (string, error) {
	f, err := store.DecodeSnapshot(data)
	if err != nil {
		return "", err
	}
	return f.Policy, nil
}

// InstallSyncSnapshot installs an encoded sync snapshot over the live
// system: the policy is applied (regenerating exactly the affected
// rules), the state restored over it, and the invariants checked.
// Callers must verify the transfer's content hash first — this method
// trusts its input to be a complete envelope. A decode or policy
// failure leaves the system untouched; a state-restore failure leaves
// a clean empty store (rbac.Store's restore contract), which the next
// successful sync repairs.
func (s *System) InstallSyncSnapshot(data []byte) error {
	f, err := store.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	if _, err := s.ApplyPolicy(f.Policy); err != nil {
		return fmt.Errorf("sync install: apply policy: %w", err)
	}
	if err := s.gen.Engine().Store().Restore(f.State); err != nil {
		return fmt.Errorf("sync install: restore state: %w", err)
	}
	if errs := s.CheckInvariants(); len(errs) != 0 {
		return fmt.Errorf("sync install: invariants: %w", errors.Join(errs...))
	}
	return nil
}
