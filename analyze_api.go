package activerbac

import (
	"time"

	"activerbac/internal/analyze"
	"activerbac/internal/clock"
	"activerbac/internal/policy"
)

// Finding is one static-analysis result (code, severity, subject,
// message); String() renders the stable one-line greppable form.
type Finding = analyze.Finding

// Finding severities.
const (
	AnalysisWarn  = analyze.Warn
	AnalysisError = analyze.Error
)

// HasAnalysisErrors reports whether any finding is error severity —
// the gate policyc -analyze and rbacd -analyze=strict fail on.
func HasAnalysisErrors(fs []Finding) bool { return analyze.HasErrors(fs) }

// Analyze runs the static analyzer over the live system: the loaded
// policy, the generated rule pool and the detector's event registry.
// Findings are also counted into the metrics registry by code and
// severity when observability is on.
func (s *System) Analyze() []Finding {
	eng := s.gen.Engine()
	fs := analyze.Analyze(analyze.Input{
		Spec:   s.gen.Spec(),
		Rules:  eng.Pool().Snapshot(),
		Events: eng.Detector().Events(),
		Anchor: eng.Clock().Now(),
	})
	if s.obs != nil {
		for _, f := range fs {
			s.obs.AnalyzeFindings.With(f.Code, f.Severity.String()).Inc()
		}
	}
	return fs
}

// AnalyzePolicy statically analyzes a policy before installation: it
// parses the source, runs the consistency checker (checker errors come
// back as RV000 findings), and — when the policy is loadable — builds a
// scratch engine on a simulated clock to generate the rule pool and run
// the rule-graph analyses. The live system is never touched; this is
// the pre-install gate rbacd's hot-reload path and policyc use.
//
// at anchors the temporal analyses; the zero value selects the
// analyzer's fixed deterministic epoch.
func AnalyzePolicy(policySource string, at time.Time) ([]Finding, error) {
	spec, err := policy.ParseString(policySource)
	if err != nil {
		return nil, err
	}
	issues := policy.Check(spec)
	if policy.HasErrors(issues) {
		fs := analyze.Analyze(analyze.Input{Spec: spec, Anchor: at})
		for _, is := range issues {
			if is.Severity == policy.Error {
				fs = append(fs, Finding{
					Code: "RV000", Severity: analyze.Error,
					Subject: "policy:" + spec.Name, Msg: is.Msg,
				})
			}
		}
		return fs, nil
	}
	start := at
	if start.IsZero() {
		start = time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	scratch, err := openSpec(spec, policySource, &Options{Clock: clock.NewSim(start)})
	if err != nil {
		// Loadability was vetted by Check; a generation failure is itself
		// a pre-install finding rather than an analysis breakdown.
		fs := analyze.Analyze(analyze.Input{Spec: spec, Anchor: at})
		fs = append(fs, Finding{
			Code: "RV000", Severity: analyze.Error,
			Subject: "policy:" + spec.Name, Msg: "rule generation failed: " + err.Error(),
		})
		return fs, nil
	}
	defer scratch.Close()
	eng := scratch.gen.Engine()
	return analyze.Analyze(analyze.Input{
		Spec:   spec,
		Rules:  eng.Pool().Snapshot(),
		Events: eng.Detector().Events(),
		Anchor: at,
	}), nil
}
