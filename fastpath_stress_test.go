package activerbac_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activerbac"
	"activerbac/internal/clock"
)

// stressPolicy builds the differential-stress policy: eight flat worker
// roles with one permission each and 64 users spread across them, plus
// two churn roles the mutator goroutines flip without ever changing a
// worker verdict — C0 carries a GTRBAC shift window so clock advances
// cross enable/disable boundaries, C1 is enabled/disabled directly.
func stressPolicy(windowStart string) string {
	var b strings.Builder
	for r := 0; r < 8; r++ {
		fmt.Fprintf(&b, "role W%d\n", r)
		fmt.Fprintf(&b, "permission W%d: op%d obj%d\n", r, r, r)
	}
	b.WriteString("role C0\nrole C1\n")
	fmt.Fprintf(&b, "shift C0 %s-17:00:00\n", windowStart)
	for u := 0; u < 64; u++ {
		fmt.Fprintf(&b, "user u%02d: W%d\n", u, u%8)
	}
	return b.String()
}

// TestFastPathDifferentialStress runs the same deterministic per-worker
// operation sequence against two systems — fast path on and off — under
// heavy interleaved churn (equivalent policy hot-reloads, enable/disable
// of an unrelated role, GTRBAC window flips via simulated time, and
// per-worker session drop/recreate), asserting after every single check
// that the cached and full-cascade verdicts are identical and equal to
// the worker's own model. Run with -race this doubles as the memory-
// safety proof for the copy-on-write snapshot protocol.
//
// The state is partitioned so verdicts stay deterministic under
// concurrency: each of the 64 workers owns its user and sessions on
// both systems and only ever asserts about them, while the churn
// goroutines touch nothing a worker verdict depends on — they exist to
// hammer the invalidation paths between a worker's capture of the epoch
// pair and its cache store.
func TestFastPathDifferentialStress(t *testing.T) {
	epoch := time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC) // inside C0's shift
	simOn := clock.NewSim(epoch)
	simOff := clock.NewSim(epoch)
	src := stressPolicy("09:00:00")

	sysOn, err := activerbac.Open(src, &activerbac.Options{Clock: simOn, FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sysOn.Close()
	sysOff, err := activerbac.Open(src, &activerbac.Options{Clock: simOff})
	if err != nil {
		t.Fatal(err)
	}
	defer sysOff.Close()

	iters := 150
	if testing.Short() {
		iters = 40
	}

	var stop atomic.Bool
	var churn, workers sync.WaitGroup

	// Churn 1: hot-reload between two policies that differ only in the
	// churn role's shift window — regenerates C0's rules, publishes the
	// pool and bumps the fast-path epoch, worker rules untouched.
	altA, altB := stressPolicy("09:00:00"), stressPolicy("08:30:00")
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			next := altA
			if i%2 == 0 {
				next = altB
			}
			for _, sys := range []*activerbac.System{sysOn, sysOff} {
				if _, err := sys.ApplyPolicy(next); err != nil {
					t.Errorf("ApplyPolicy: %v", err)
					return
				}
			}
		}
	}()

	// Churn 2: flip the unrelated role C1 — policy-grade store publishes
	// and epoch bumps on every flip.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			for _, sys := range []*activerbac.System{sysOn, sysOff} {
				var err error
				if i%2 == 0 {
					err = sys.DisableRole("C1")
				} else {
					err = sys.EnableRole("C1")
				}
				if err != nil {
					t.Errorf("role flip: %v", err)
					return
				}
			}
		}
	}()

	// Churn 3: advance both simulated clocks in lockstep so C0's GTRBAC
	// window enables and disables it over and over.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for !stop.Load() {
			simOn.Advance(4 * time.Hour)
			simOff.Advance(4 * time.Hour)
		}
	}()

	// Workers: each owns user u%02d with role W(i%8) on both systems.
	for w := 0; w < 64; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			user := activerbac.UserID(fmt.Sprintf("u%02d", w))
			role := activerbac.RoleID(fmt.Sprintf("W%d", w%8))
			own := activerbac.Permission{Operation: fmt.Sprintf("op%d", w%8), Object: fmt.Sprintf("obj%d", w%8)}
			other := activerbac.Permission{Operation: fmt.Sprintf("op%d", (w+1)%8), Object: fmt.Sprintf("obj%d", (w+1)%8)}

			open := func() (onSid, offSid activerbac.SessionID, ok bool) {
				onSid, err := sysOn.CreateSession(user)
				if err != nil {
					t.Errorf("worker %d: CreateSession(on): %v", w, err)
					return "", "", false
				}
				offSid, err = sysOff.CreateSession(user)
				if err != nil {
					t.Errorf("worker %d: CreateSession(off): %v", w, err)
					return "", "", false
				}
				if err := sysOn.AddActiveRole(user, onSid, role); err != nil {
					t.Errorf("worker %d: AddActiveRole(on): %v", w, err)
					return "", "", false
				}
				if err := sysOff.AddActiveRole(user, offSid, role); err != nil {
					t.Errorf("worker %d: AddActiveRole(off): %v", w, err)
					return "", "", false
				}
				return onSid, offSid, true
			}
			expect := func(onSid, offSid activerbac.SessionID, p activerbac.Permission, want bool, what string) bool {
				gotOn := sysOn.CheckAccess(onSid, p)
				gotOff := sysOff.CheckAccess(offSid, p)
				if gotOn != gotOff {
					t.Errorf("worker %d: %s: fast path %v, full cascade %v — verdicts diverged", w, what, gotOn, gotOff)
					return false
				}
				if gotOn != want {
					t.Errorf("worker %d: %s: verdict %v, model says %v", w, what, gotOn, want)
					return false
				}
				return true
			}

			onSid, offSid, ok := open()
			if !ok {
				return
			}
			for i := 0; i < iters; i++ {
				if !expect(onSid, offSid, own, true, "own permission, role active") ||
					!expect(onSid, offSid, other, false, "foreign permission") {
					return
				}
				if i%10 == 9 {
					// Flip the worker's own role off and on: the session-
					// grade invalidation must stop the stale ALLOW.
					if err := sysOn.DropActiveRole(user, onSid, role); err != nil {
						t.Errorf("worker %d: DropActiveRole(on): %v", w, err)
						return
					}
					if err := sysOff.DropActiveRole(user, offSid, role); err != nil {
						t.Errorf("worker %d: DropActiveRole(off): %v", w, err)
						return
					}
					if !expect(onSid, offSid, own, false, "own permission, role dropped") {
						return
					}
					if err := sysOn.AddActiveRole(user, onSid, role); err != nil {
						t.Errorf("worker %d: AddActiveRole(on): %v", w, err)
						return
					}
					if err := sysOff.AddActiveRole(user, offSid, role); err != nil {
						t.Errorf("worker %d: AddActiveRole(off): %v", w, err)
						return
					}
				}
				if i%50 == 49 {
					// Recreate the sessions entirely.
					if err := sysOn.DeleteSession(onSid); err != nil {
						t.Errorf("worker %d: DeleteSession(on): %v", w, err)
						return
					}
					if err := sysOff.DeleteSession(offSid); err != nil {
						t.Errorf("worker %d: DeleteSession(off): %v", w, err)
						return
					}
					if !expect(onSid, offSid, own, false, "own permission, session deleted") {
						return
					}
					if onSid, offSid, ok = open(); !ok {
						return
					}
				}
			}
		}(w)
	}

	// The churn runs exactly as long as the workers need it.
	workers.Wait()
	stop.Store(true)
	churn.Wait()

	st, err := sysOn.FastPathStats()
	if err != nil {
		t.Fatalf("FastPathStats: %v", err)
	}
	if st.Hits == 0 {
		t.Error("stress never hit the cache; the fast path was not exercised")
	}
	if st.Invalidations == 0 {
		t.Error("stress never invalidated the cache; the churn was not exercised")
	}
	t.Logf("fastpath stats: hits=%d misses=%d bypass=%d invalidations=%d epoch=%d",
		st.Hits, st.Misses, st.Bypass, st.Invalidations, st.Epoch)
}
