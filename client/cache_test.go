package client

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"activerbac/internal/wire"
)

// cacheTestBackend allows operation "read" and classifies everything
// cacheable except object "volatile". Every backend decision is
// counted, so tests can prove which checks were served locally.
type cacheTestBackend struct {
	epoch  atomic.Uint64
	checks atomic.Int64
}

func (b *cacheTestBackend) Check(session, operation, object string) bool {
	b.checks.Add(1)
	return operation == "read"
}

func (b *cacheTestBackend) PolicyEpoch() uint64 { return b.epoch.Load() }
func (b *cacheTestBackend) PushEpoch() uint64   { return b.epoch.Load() }

func (b *cacheTestBackend) CheckCacheable(session, operation, object string) (allowed, cacheable bool) {
	allowed = b.Check(session, operation, object)
	return allowed, allowed && object != "volatile"
}

// startServer serves a wire server for b on a fresh loopback listener;
// the returned stop closes it (also registered as cleanup).
func startServer(t *testing.T, b *cacheTestBackend, addr string) (*wire.Server, string, func()) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := wire.NewServer(b, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != wire.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	var once atomic.Bool
	stop := func() {
		if once.CompareAndSwap(false, true) {
			srv.Close()
			<-done
		}
	}
	t.Cleanup(stop)
	return srv, ln.Addr().String(), stop
}

func TestCacheHitMiss(t *testing.T) {
	b := &cacheTestBackend{}
	b.epoch.Store(1)
	_, addr, _ := startServer(t, b, "")
	var hits, misses atomic.Int64
	c, err := New(addr, &Options{
		Timeout: 5 * time.Second,
		Instruments: &Instruments{
			Hit:  func() { hits.Add(1) },
			Miss: func() { misses.Add(1) },
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if !c.Subscribed() {
		t.Fatal("cache did not subscribe eagerly")
	}

	// First check misses and seeds the cache; the repeat is served
	// locally — the backend sees exactly one decision.
	for i := 0; i < 3; i++ {
		allowed, err := c.Check("s1", "read", "doc")
		if err != nil || !allowed {
			t.Fatalf("check %d = (%v, %v), want (true, nil)", i, allowed, err)
		}
	}
	if n := b.checks.Load(); n != 1 {
		t.Fatalf("backend decisions = %d, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
	if hits.Load() != 2 || misses.Load() != 1 {
		t.Fatalf("instruments = %d hits / %d misses, want 2 / 1", hits.Load(), misses.Load())
	}

	// Denials are never cached: every repeat goes remote.
	before := b.checks.Load()
	for i := 0; i < 2; i++ {
		allowed, err := c.Check("s1", "write", "doc")
		if err != nil || allowed {
			t.Fatalf("deny check = (%v, %v), want (false, nil)", allowed, err)
		}
	}
	if n := b.checks.Load() - before; n != 2 {
		t.Fatalf("backend decisions for denials = %d, want 2", n)
	}

	// Allowed-but-uncacheable verdicts are never cached either.
	before = b.checks.Load()
	for i := 0; i < 2; i++ {
		allowed, err := c.Check("s1", "read", "volatile")
		if err != nil || !allowed {
			t.Fatalf("volatile check = (%v, %v), want (true, nil)", allowed, err)
		}
	}
	if n := b.checks.Load() - before; n != 2 {
		t.Fatalf("backend decisions for uncacheable allows = %d, want 2", n)
	}
}

func TestCachePushInvalidates(t *testing.T) {
	b := &cacheTestBackend{}
	b.epoch.Store(1)
	srv, addr, _ := startServer(t, b, "")
	c, err := New(addr, &Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	if _, err := c.Check("s1", "read", "doc"); err != nil {
		t.Fatalf("seed check: %v", err)
	}
	if _, err := c.Check("s1", "read", "doc"); err != nil {
		t.Fatalf("repeat check: %v", err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats before push = %+v, want 1 hit", st)
	}

	// A policy change bumps the epoch and pushes: once the push arrives,
	// the cached allow must not be served again.
	b.epoch.Store(2)
	srv.NotifyEpoch(2)
	for i := 0; c.Epoch() != 2; i++ {
		if i > 5000 {
			t.Fatal("push never reached the cache")
		}
		time.Sleep(time.Millisecond)
	}
	before := b.checks.Load()
	if _, err := c.Check("s1", "read", "doc"); err != nil {
		t.Fatalf("check after push: %v", err)
	}
	if n := b.checks.Load() - before; n != 1 {
		t.Fatalf("backend decisions after push = %d, want 1 (entry must be retired)", n)
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

// TestCacheLossAndResubscribe: when the server goes away the cache
// stops serving locally; once the server is back, the maintenance loop
// re-subscribes and local serving resumes with a dropped cache.
func TestCacheLossAndResubscribe(t *testing.T) {
	b := &cacheTestBackend{}
	b.epoch.Store(1)
	_, addr, stop := startServer(t, b, "")
	c, err := New(addr, &Options{Timeout: 2 * time.Second, PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if _, err := c.Check("s1", "read", "doc"); err != nil {
		t.Fatalf("seed check: %v", err)
	}

	stop()
	for i := 0; c.Subscribed(); i++ {
		if i > 5000 {
			t.Fatal("subscription loss never observed")
		}
		time.Sleep(time.Millisecond)
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatal("loss did not count an invalidation")
	}

	// Same address, new server, new epoch (a restart may even reuse old
	// epoch numbers — the cache must have dropped everything regardless).
	b2 := &cacheTestBackend{}
	b2.epoch.Store(1)
	startServer(t, b2, addr)
	for i := 0; !c.Subscribed(); i++ {
		if i > 10000 {
			t.Fatal("cache never re-subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	// The pre-loss entry must not be served against the new server.
	before := b2.checks.Load()
	allowed, err := c.Check("s1", "read", "doc")
	if err != nil || !allowed {
		t.Fatalf("check after resubscribe = (%v, %v), want (true, nil)", allowed, err)
	}
	if n := b2.checks.Load() - before; n != 1 {
		t.Fatalf("backend decisions after resubscribe = %d, want 1 (old entries must be dropped)", n)
	}
}

// TestCachePassthroughWithoutPush: against a server whose backend does
// not push epochs, the cache degrades to a plain remote client — every
// check goes to the server, nothing is ever served stale.
func TestCachePassthroughWithoutPush(t *testing.T) {
	type plainBackend struct{ cacheTestBackend }
	// Only promote Check/PolicyEpoch: wrap so the Push/Cache upgrades are
	// not visible to the server's interface assertions.
	b := &plainBackend{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := wire.NewServer(struct {
		wire.Backend
	}{&b.cacheTestBackend}, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != wire.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})

	c, err := New(ln.Addr().String(), &Options{Timeout: 5 * time.Second, PollInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if c.Subscribed() {
		t.Fatal("subscribed against a push-less backend")
	}
	for i := 0; i < 3; i++ {
		allowed, err := c.Check("s1", "read", "doc")
		if err != nil || !allowed {
			t.Fatalf("check = (%v, %v), want (true, nil)", allowed, err)
		}
	}
	if n := b.checks.Load(); n != 3 {
		t.Fatalf("backend decisions = %d, want 3 (no local serving without a subscription)", n)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 0 hits / 3 misses", st)
	}
}
