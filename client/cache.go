// Package client is the embeddable decision cache: a wire-protocol
// client that serves repeat ALLOW verdicts locally, deleting the
// network round trip for read-heavy enforcement points.
//
// Cache extends the engine's born-stale epoch discipline (DESIGN §5.4)
// across the network. Every cached entry is tagged with the push epoch
// captured before its remote check was issued; a lookup hits only while
// that tag still equals the current epoch. The server pushes every
// epoch bump to the subscribed connection (wire EPOCH_PUSH), so one
// atomic epoch store invalidates the whole cache the moment any
// policy-, session-, detector- or rule-grade change lands. Only
// verdicts the server marks cacheable are stored — the same
// pure-snapshot classification the in-process fast path uses — and only
// allows: denials always re-ask, keeping the active-security denial
// monitors fed.
//
// Safety does not degrade when the subscription drops: the cache stops
// serving entirely (every check goes remote), hard-drops its entries —
// a restarted server may reuse old epoch numbers — and a background
// loop polls POLICY_VERSION for liveness and re-subscribes; local
// serving resumes only once pushes flow again.
package client

import (
	"encoding/binary"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"activerbac/internal/wire"
)

// Options tunes a Cache; the zero value selects the defaults.
type Options struct {
	// Conns is the wire connection-pool size. Default 1.
	Conns int
	// MaxFrame bounds one received frame. Default wire.DefaultMaxFrame.
	MaxFrame int
	// Timeout bounds dialing and each remote round trip. Default 10s.
	Timeout time.Duration
	// PollInterval paces the fallback loop that, while the subscription
	// is down, polls POLICY_VERSION for liveness and retries SUBSCRIBE.
	// Default 1s.
	PollInterval time.Duration
	// Instruments hooks cache metrics (e.g. the
	// activerbac_client_cache_* families); nil disables. The callbacks
	// run on check and push paths and must be cheap.
	Instruments *Instruments
}

// Instruments are optional metric hooks; any field may be nil.
type Instruments struct {
	// Hit is called once per check served from the local cache.
	Hit func()
	// Miss is called once per check that went to the server (including
	// all checks while the subscription is down).
	Miss func()
	// Invalidation is called once per wholesale invalidation: every
	// epoch push and every subscription loss.
	Invalidation func()
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	return o
}

// Stats is a snapshot of a Cache's counters.
type Stats struct {
	// Hits counts checks served locally; Misses counts checks that went
	// to the server.
	Hits, Misses uint64
	// Invalidations counts wholesale drops: epoch pushes and
	// subscription losses.
	Invalidations uint64
}

const numShards = 64

// shard is one lock-striped slice of the verdict cache: tuple key →
// the push epoch the allow was stored under.
type shard struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Cache is a wire client with an embedded epoch-tagged verdict cache.
// All methods are safe for concurrent use.
type Cache struct {
	cl   *wire.Client
	opts Options

	// epoch is the local view of the server's push epoch; a cached
	// entry hits only while its tag equals it. active gates local
	// serving on a live subscription. gen counts activation
	// transitions, fencing in-flight stores against a drop-and-
	// reactivate (a restarted server may reuse epoch numbers).
	// All three are written only under mu.
	mu     sync.Mutex
	epoch  atomic.Uint64
	active atomic.Bool
	gen    atomic.Uint64

	shards [numShards]shard
	seed   maphash.Seed

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64

	lost   chan struct{} // coalescing resubscribe-now signal
	closed chan struct{}
	once   sync.Once
}

// New dials addr and returns a Cache wrapping the connection pool. It
// subscribes eagerly; if the subscription cannot be established (the
// server predates epoch push, or the subscriber cap is reached) the
// Cache still works — every check goes remote — and keeps retrying in
// the background.
func New(addr string, opts *Options) (*Cache, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	c := &Cache{
		opts:   o.withDefaults(),
		seed:   maphash.MakeSeed(),
		lost:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	for i := range c.shards {
		c.shards[i].m = map[string]uint64{}
	}
	cl, err := wire.Dial(addr, &wire.ClientOptions{
		Conns:              o.Conns,
		MaxFrame:           o.MaxFrame,
		Timeout:            c.opts.Timeout,
		OnEpochPush:        c.onPush,
		OnSubscriptionLost: c.onLost,
	})
	if err != nil {
		return nil, err
	}
	c.cl = cl
	if epoch, err := cl.Subscribe(); err == nil {
		c.activate(epoch)
	}
	go c.maintain()
	return c, nil
}

// Check decides one access check, serving repeat allows locally while
// the subscription is live. Denials, non-cacheable verdicts and every
// check while unsubscribed go to the server.
func (c *Cache) Check(session, operation, object string) (bool, error) {
	if !c.active.Load() {
		c.misses.Add(1)
		if ins := c.opts.Instruments; ins != nil && ins.Miss != nil {
			ins.Miss()
		}
		return c.cl.Check(session, operation, object)
	}
	// Born-stale: capture epoch and generation before anything else. An
	// entry stored under this epoch is already invalid if a push lands
	// before the store — the tag mismatch silently retires it.
	e := c.epoch.Load()
	g := c.gen.Load()
	key := cacheKey(session, operation, object)
	sh := &c.shards[maphash.String(c.seed, key)%numShards]
	sh.mu.Lock()
	tag, ok := sh.m[key]
	sh.mu.Unlock()
	if ok && tag == e {
		c.hits.Add(1)
		if ins := c.opts.Instruments; ins != nil && ins.Hit != nil {
			ins.Hit()
		}
		return true, nil // allow-only: a stored entry is an allow
	}
	c.misses.Add(1)
	if ins := c.opts.Instruments; ins != nil && ins.Miss != nil {
		ins.Miss()
	}
	allowed, cacheable, err := c.cl.CheckCacheable(session, operation, object)
	if err != nil {
		return false, err
	}
	if allowed && cacheable {
		sh.mu.Lock()
		// The generation fence keeps a check that straddled a
		// deactivate/reactivate from seeding the fresh map with an
		// old-world verdict whose epoch tag could collide after a
		// server restart.
		if c.gen.Load() == g {
			sh.m[key] = e
		}
		sh.mu.Unlock()
	}
	return allowed, nil
}

// Epoch reports the local view of the server's push epoch.
func (c *Cache) Epoch() uint64 { return c.epoch.Load() }

// Subscribed reports whether the cache currently serves locally (a
// live epoch-push subscription backs it).
func (c *Cache) Subscribed() bool { return c.active.Load() }

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Client exposes the underlying wire client for calls the cache does
// not mediate (batches, pings, traced checks).
func (c *Cache) Client() *wire.Client { return c.cl }

// Close stops the background loop and closes the connection pool.
func (c *Cache) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.cl.Close()
}

// onPush is the wire client's epoch-push callback: one atomic store
// retires every entry tagged with an older epoch.
func (c *Cache) onPush(epoch uint64) {
	c.mu.Lock()
	if c.epoch.Load() != epoch {
		c.epoch.Store(epoch)
		c.invalidations.Add(1)
		if ins := c.opts.Instruments; ins != nil && ins.Invalidation != nil {
			ins.Invalidation()
		}
	}
	c.mu.Unlock()
}

// onLost is the wire client's subscription-loss callback: local
// serving stops immediately — pushes may already have been missed —
// and the maintenance loop takes over.
func (c *Cache) onLost() {
	c.deactivate()
	select {
	case c.lost <- struct{}{}:
	default:
	}
}

// activate installs a fresh subscription: bump the generation, drop
// every entry (a restarted server may reuse epoch numbers, so nothing
// stored under the old subscription may survive), then enable local
// serving at the subscribed epoch. A push racing this and landing
// first is not lost: its epoch overwrite is undone here, but the
// entries it would have retired were just dropped wholesale, and any
// verdict cached afterwards was computed after that push's bump.
func (c *Cache) activate(epoch uint64) {
	c.mu.Lock()
	c.gen.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = map[string]uint64{}
		sh.mu.Unlock()
	}
	c.epoch.Store(epoch)
	c.active.Store(true)
	c.mu.Unlock()
}

// deactivate stops local serving and hard-drops the entries.
func (c *Cache) deactivate() {
	c.mu.Lock()
	if c.active.Load() {
		c.active.Store(false)
		c.invalidations.Add(1)
		if ins := c.opts.Instruments; ins != nil && ins.Invalidation != nil {
			ins.Invalidation()
		}
	}
	c.gen.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = map[string]uint64{}
		sh.mu.Unlock()
	}
	c.mu.Unlock()
}

// maintain is the fallback loop: while the subscription is down it
// polls POLICY_VERSION (liveness — is the server back?) and retries
// SUBSCRIBE each PollInterval, resuming local serving on success.
func (c *Cache) maintain() {
	t := time.NewTicker(c.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-c.lost:
		case <-t.C:
		}
		if c.active.Load() {
			continue
		}
		if _, err := c.cl.PolicyVersion(); err != nil {
			continue
		}
		epoch, err := c.cl.Subscribe()
		if err != nil {
			continue
		}
		c.activate(epoch)
	}
}

// cacheKey builds the length-prefixed tuple key; prefixes keep
// ("a","b\x00c") and ("a\x00b","c") from colliding.
func cacheKey(session, operation, object string) string {
	b := make([]byte, 0, len(session)+len(operation)+len(object)+3*binary.MaxVarintLen32)
	b = binary.AppendUvarint(b, uint64(len(session)))
	b = append(b, session...)
	b = binary.AppendUvarint(b, uint64(len(operation)))
	b = append(b, operation...)
	b = binary.AppendUvarint(b, uint64(len(object)))
	b = append(b, object...)
	return string(b)
}
