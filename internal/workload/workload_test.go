package workload

import (
	"testing"
	"time"

	"activerbac/internal/baseline"
	"activerbac/internal/clock"
	"activerbac/internal/policy"
)

func TestXYZMatchesPaper(t *testing.T) {
	s := XYZ()
	if len(s.Roles) != 5 || len(s.Hierarchy) != 4 || len(s.SSD) != 1 || len(s.Users) != 3 {
		t.Fatalf("XYZ spec: %s", s)
	}
	if issues := policy.Check(s); len(issues) != 0 {
		t.Fatalf("XYZ inconsistent: %v", issues)
	}
}

func TestEnterpriseShapesConsistent(t *testing.T) {
	shapes := []Shape{Flat, Chain, Tree, XYZShape}
	for _, shape := range shapes {
		for _, roles := range []int{1, 2, 5, 17, 64} {
			cfg := EnterpriseConfig{
				Roles: roles, Shape: shape, Branch: 3,
				SSDFraction: 1, DSDFraction: 0.5,
				Users: roles * 2, PermsPerRole: 2, CardinalityEvery: 5, Seed: 42,
			}
			s := Enterprise(cfg)
			if issues := policy.Check(s); policy.HasErrors(issues) {
				t.Fatalf("%s/%d inconsistent: %v", shape, roles, issues)
			}
			if len(s.Roles) != roles {
				t.Fatalf("%s/%d: got %d roles", shape, roles, len(s.Roles))
			}
		}
	}
}

func TestEnterpriseDeterministic(t *testing.T) {
	cfg := EnterpriseConfig{Roles: 20, Shape: XYZShape, SSDFraction: 1, Users: 10, PermsPerRole: 2, Seed: 7}
	a := Enterprise(cfg)
	b := Enterprise(cfg)
	if a.String() != b.String() || len(a.SSD) != len(b.SSD) || len(a.Users) != len(b.Users) {
		t.Fatal("same seed produced different specs")
	}
}

func TestEnterpriseShapeProperties(t *testing.T) {
	chain := Enterprise(EnterpriseConfig{Roles: 10, Shape: Chain, Seed: 1})
	if len(chain.Hierarchy) != 9 {
		t.Fatalf("chain edges = %d", len(chain.Hierarchy))
	}
	flat := Enterprise(EnterpriseConfig{Roles: 10, Shape: Flat, Seed: 1})
	if len(flat.Hierarchy) != 0 {
		t.Fatalf("flat edges = %d", len(flat.Hierarchy))
	}
	tree := Enterprise(EnterpriseConfig{Roles: 10, Shape: Tree, Branch: 2, Seed: 1})
	if len(tree.Hierarchy) != 9 {
		t.Fatalf("tree edges = %d", len(tree.Hierarchy))
	}
	xyz := Enterprise(EnterpriseConfig{Roles: 11, Shape: XYZShape, Branch: 2, SSDFraction: 1, Seed: 1})
	if len(xyz.SSD) == 0 {
		t.Fatal("xyz shape produced no SSD sets at fraction 1")
	}
}

func TestMustEnterprise(t *testing.T) {
	// Smoke: the generator must hold its consistency promise across a
	// seed sweep.
	for seed := int64(0); seed < 20; seed++ {
		MustEnterprise(EnterpriseConfig{
			Roles: 30, Shape: XYZShape, Branch: 4,
			SSDFraction: 1, DSDFraction: 1, Users: 50, PermsPerRole: 3,
			CardinalityEvery: 7, Seed: seed,
		})
	}
}

func TestStreamDeterministicAndMixed(t *testing.T) {
	spec := MustEnterprise(EnterpriseConfig{Roles: 10, Shape: Tree, Users: 20, PermsPerRole: 2, Seed: 3})
	a := Stream(spec, DefaultMix, 500, 9)
	b := Stream(spec, DefaultMix, 500, 9)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("stream lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	counts := map[RequestKind]int{}
	for _, r := range a {
		counts[r.Kind]++
	}
	if counts[CheckAccess] == 0 || counts[Activate] == 0 || counts[Drop] == 0 {
		t.Fatalf("mix not represented: %v", counts)
	}
}

func TestStreamEmptyUsers(t *testing.T) {
	spec := &policy.Spec{Roles: []string{"a"}}
	if got := Stream(spec, DefaultMix, 10, 1); got != nil {
		t.Fatalf("stream for userless spec: %v", got)
	}
}

func TestDriverAgainstBaseline(t *testing.T) {
	spec := MustEnterprise(EnterpriseConfig{
		Roles: 12, Shape: XYZShape, Branch: 3, SSDFraction: 1,
		Users: 30, PermsPerRole: 2, Seed: 5,
	})
	sim := clock.NewSim(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
	eng, err := baseline.New(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(eng)
	if err := d.Run(Stream(spec, DefaultMix, 2000, 11)); err != nil {
		t.Fatal(err)
	}
	if d.Allowed == 0 || d.Denied == 0 {
		t.Fatalf("unbalanced outcomes: allowed=%d denied=%d", d.Allowed, d.Denied)
	}
	// The store must stay consistent under the whole stream.
	if errs := eng.Store().CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants after stream: %v", errs)
	}
}

func TestKindAndShapeStrings(t *testing.T) {
	for k, want := range map[RequestKind]string{
		CheckAccess: "check", Activate: "activate", Drop: "drop",
		Assign: "assign", Deassign: "deassign",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	for s, want := range map[Shape]string{Flat: "flat", Chain: "chain", Tree: "tree", XYZShape: "xyz"} {
		if s.String() != want {
			t.Errorf("shape String = %q, want %q", s.String(), want)
		}
	}
}
