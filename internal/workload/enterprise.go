// Package workload generates the synthetic enterprises and request
// streams the benchmark harness runs. The paper evaluates on a single
// 5-role example (enterprise XYZ, Figure 1); the generator reproduces
// that exact policy and scales the same *shape* — parallel department
// branches over a shared bottom role, with static SoD between branches —
// up to hundreds of roles, plus plain chain/tree/flat shapes for
// hierarchy-depth sweeps. Everything is deterministically seeded.
package workload

import (
	"fmt"
	"math/rand"

	"activerbac/internal/policy"
)

// Shape selects the role-hierarchy topology of a generated enterprise.
type Shape int

// Hierarchy shapes.
const (
	// Flat has no hierarchy edges.
	Flat Shape = iota
	// Chain is a single seniority chain r0 > r1 > ... > rn.
	Chain
	// Tree is a uniform tree with the configured branching factor.
	Tree
	// XYZShape generalizes the paper's Figure 1: several department
	// branches of equal depth over one shared bottom role, with static
	// SoD between the clerk level of adjacent branches.
	XYZShape
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Flat:
		return "flat"
	case Chain:
		return "chain"
	case Tree:
		return "tree"
	case XYZShape:
		return "xyz"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// EnterpriseConfig parameterizes Enterprise.
type EnterpriseConfig struct {
	// Roles is the total number of roles (minimum 1; shapes round as
	// needed).
	Roles int
	// Shape selects the hierarchy topology.
	Shape Shape
	// Branch is the tree branching factor (Tree) or the number of
	// department branches (XYZShape). Defaults to 2.
	Branch int
	// SSDFraction is the fraction of eligible role pairs that get a
	// static SoD relation (XYZShape and Flat only; hierarchic shapes
	// would make SSD unsatisfiable).
	SSDFraction float64
	// DSDFraction is the fraction of eligible pairs that get a dynamic
	// SoD relation.
	DSDFraction float64
	// Users is the number of users, assigned round-robin to roles
	// (XYZShape assigns within a single branch so SSD holds).
	Users int
	// PermsPerRole grants this many distinct permissions per role.
	PermsPerRole int
	// CardinalityEvery gives every n-th role an activation bound of 1;
	// 0 disables.
	CardinalityEvery int
	// Seed drives all pseudo-random choices.
	Seed int64
}

// XYZ returns the paper's enterprise XYZ exactly (5 roles, 2 branches,
// SSD between PC and AC, PM cardinality 1, three users).
func XYZ() *policy.Spec {
	spec, err := policy.ParseString(`
policy "enterprise-xyz"
role PM
role PC
role AM
role AC
role Clerk
hierarchy PM > PC > Clerk
hierarchy AM > AC > Clerk
ssd purchase-approval 2: PC, AC
permission PC: write purchase-order.dat
permission AC: approve purchase-order.dat
permission Clerk: read lobby.txt
user bob: PC
user carol: AC
user alice: PM
cardinality PM 1
`)
	if err != nil {
		panic(err) // static text
	}
	return spec
}

// Enterprise generates a synthetic policy spec. The result always
// passes policy.Check.
func Enterprise(cfg EnterpriseConfig) *policy.Spec {
	if cfg.Roles < 1 {
		cfg.Roles = 1
	}
	if cfg.Branch < 2 {
		cfg.Branch = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &policy.Spec{Name: fmt.Sprintf("synthetic-%s-%d", cfg.Shape, cfg.Roles)}

	roleName := func(i int) string { return fmt.Sprintf("r%03d", i) }
	for i := 0; i < cfg.Roles; i++ {
		s.Roles = append(s.Roles, roleName(i))
	}

	// branchOf[i] tracks the department of each role under XYZShape so
	// users can be confined to one branch.
	branchOf := make([]int, cfg.Roles)
	var ssdEligible [][2]int

	switch cfg.Shape {
	case Flat:
		for i := 0; i+1 < cfg.Roles; i += 2 {
			ssdEligible = append(ssdEligible, [2]int{i, i + 1})
		}
	case Chain:
		for i := 0; i+1 < cfg.Roles; i++ {
			s.Hierarchy = append(s.Hierarchy, policy.Edge{Senior: roleName(i), Junior: roleName(i + 1)})
		}
	case Tree:
		for i := 1; i < cfg.Roles; i++ {
			parent := (i - 1) / cfg.Branch
			s.Hierarchy = append(s.Hierarchy, policy.Edge{Senior: roleName(parent), Junior: roleName(i)})
		}
	case XYZShape:
		// Role 0 is the shared bottom (Clerk). The rest split into
		// Branch branches, each a seniority chain ending at the bottom.
		branches := cfg.Branch
		per := (cfg.Roles - 1) / branches
		if per < 1 {
			per = 1
		}
		idx := 1
		var clerkLevel []int // the most junior role of each branch
		for b := 0; b < branches && idx < cfg.Roles; b++ {
			prev := -1
			var last int
			for d := 0; d < per && idx < cfg.Roles; d++ {
				branchOf[idx] = b + 1
				if prev >= 0 {
					s.Hierarchy = append(s.Hierarchy, policy.Edge{Senior: roleName(prev), Junior: roleName(idx)})
				}
				prev = idx
				last = idx
				idx++
			}
			// Branch bottom inherits the shared clerk role.
			s.Hierarchy = append(s.Hierarchy, policy.Edge{Senior: roleName(last), Junior: roleName(0)})
			clerkLevel = append(clerkLevel, last)
		}
		for i := 0; i+1 < len(clerkLevel); i++ {
			ssdEligible = append(ssdEligible, [2]int{clerkLevel[i], clerkLevel[i+1]})
		}
	}

	// SoD relations over eligible pairs.
	nssd := int(cfg.SSDFraction * float64(len(ssdEligible)))
	for i := 0; i < nssd; i++ {
		p := ssdEligible[i]
		s.SSD = append(s.SSD, policy.SoD{
			Name:  fmt.Sprintf("ssd%03d", i),
			Roles: []string{roleName(p[0]), roleName(p[1])},
			N:     2,
		})
	}
	ndsd := int(cfg.DSDFraction * float64(len(ssdEligible)))
	for i := 0; i < ndsd; i++ {
		p := ssdEligible[i]
		s.DSD = append(s.DSD, policy.SoD{
			Name:  fmt.Sprintf("dsd%03d", i),
			Roles: []string{roleName(p[0]), roleName(p[1])},
			N:     2,
		})
	}

	// Permissions.
	for i := 0; i < cfg.Roles; i++ {
		for p := 0; p < cfg.PermsPerRole; p++ {
			s.Permissions = append(s.Permissions, policy.Perm{
				Role:      roleName(i),
				Operation: fmt.Sprintf("op%d", p%4),
				Object:    fmt.Sprintf("obj-%03d-%d", i, p),
			})
		}
	}

	// Cardinality bounds.
	if cfg.CardinalityEvery > 0 {
		for i := 0; i < cfg.Roles; i += cfg.CardinalityEvery {
			s.Cardinalities = append(s.Cardinalities, policy.Cardinality{Role: roleName(i), N: 1 + rng.Intn(3)})
		}
	}

	// Users. Under XYZShape and with SSD under Flat, a user must not be
	// authorized for two conflicting roles, so each user gets exactly
	// one role; conflicted pairs take users on one side only.
	conflicted := make(map[string]bool)
	for _, set := range s.SSD {
		for _, r := range set.Roles[1:] {
			conflicted[r] = true
		}
	}
	assignable := make([]string, 0, cfg.Roles)
	for i := 0; i < cfg.Roles; i++ {
		r := roleName(i)
		if cfg.Shape == XYZShape && i != 0 && branchOf[i] == 0 {
			continue
		}
		// Ancestors of conflicted roles are excluded under shapes with
		// hierarchy only when they cover both sides; branch confinement
		// already guarantees that for XYZShape, and Flat has no
		// ancestors, so excluding direct members of the "second side"
		// suffices.
		if conflicted[r] {
			continue
		}
		assignable = append(assignable, r)
	}
	if len(assignable) == 0 {
		assignable = []string{roleName(0)}
	}
	for u := 0; u < cfg.Users; u++ {
		s.Users = append(s.Users, policy.User{
			Name:  fmt.Sprintf("u%04d", u),
			Roles: []string{assignable[u%len(assignable)]},
		})
	}
	return s
}

// MustEnterprise generates and validates; it panics if the generator
// ever produces an inconsistent spec (a generator bug).
func MustEnterprise(cfg EnterpriseConfig) *policy.Spec {
	s := Enterprise(cfg)
	if issues := policy.Check(s); policy.HasErrors(issues) {
		panic(fmt.Sprintf("workload: generated inconsistent spec: %v", issues))
	}
	return s
}
