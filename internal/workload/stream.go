package workload

import (
	"fmt"
	"math/rand"

	"activerbac/internal/baseline"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
)

// RequestKind enumerates the operations a request stream issues.
type RequestKind int

// Request kinds.
const (
	// CheckAccess asks whether the user's session may perform an
	// operation on an object.
	CheckAccess RequestKind = iota
	// Activate adds a role to the user's session.
	Activate
	// Drop removes a role from the user's session.
	Drop
	// Assign and Deassign churn user-role assignments.
	Assign
	Deassign
)

// String implements fmt.Stringer.
func (k RequestKind) String() string {
	switch k {
	case CheckAccess:
		return "check"
	case Activate:
		return "activate"
	case Drop:
		return "drop"
	case Assign:
		return "assign"
	case Deassign:
		return "deassign"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Request is one operation in a stream.
type Request struct {
	Kind      RequestKind
	User      rbac.UserID
	Role      rbac.RoleID
	Operation string
	Object    string
}

// Mix sets the relative weights of request kinds in a stream.
type Mix struct {
	Check, Activate, Drop, Assign, Deassign int
}

// DefaultMix is a read-heavy enterprise profile.
var DefaultMix = Mix{Check: 70, Activate: 12, Drop: 10, Assign: 4, Deassign: 4}

// CheckOnlyMix measures the pure decision path.
var CheckOnlyMix = Mix{Check: 1}

// ActivateHeavyMix stresses the activation pipeline.
var ActivateHeavyMix = Mix{Check: 20, Activate: 40, Drop: 40}

func (m Mix) total() int { return m.Check + m.Activate + m.Drop + m.Assign + m.Deassign }

// Stream generates n deterministic requests against the users, roles
// and permissions of spec. Requests target the user's own assigned role
// most of the time and a random role (often unauthorized — exercising
// the deny path) the rest.
func Stream(spec *policy.Spec, mix Mix, n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	if mix.total() == 0 {
		mix = DefaultMix
	}
	users := spec.Users
	if len(users) == 0 {
		return nil
	}
	reqs := make([]Request, 0, n)
	pick := func() RequestKind {
		v := rng.Intn(mix.total())
		switch {
		case v < mix.Check:
			return CheckAccess
		case v < mix.Check+mix.Activate:
			return Activate
		case v < mix.Check+mix.Activate+mix.Drop:
			return Drop
		case v < mix.Check+mix.Activate+mix.Drop+mix.Assign:
			return Assign
		default:
			return Deassign
		}
	}
	for i := 0; i < n; i++ {
		u := users[rng.Intn(len(users))]
		req := Request{Kind: pick(), User: rbac.UserID(u.Name)}
		ownRole := ""
		if len(u.Roles) > 0 {
			ownRole = u.Roles[rng.Intn(len(u.Roles))]
		}
		targetRole := ownRole
		if targetRole == "" || rng.Intn(10) == 0 { // 10%: foreign role
			targetRole = spec.Roles[rng.Intn(len(spec.Roles))]
		}
		req.Role = rbac.RoleID(targetRole)
		if req.Kind == CheckAccess {
			if len(spec.Permissions) > 0 && rng.Intn(10) != 0 {
				p := spec.Permissions[rng.Intn(len(spec.Permissions))]
				req.Operation, req.Object = p.Operation, p.Object
			} else { // 10%: unknown permission (deny path)
				req.Operation, req.Object = "op-none", "obj-none"
			}
		}
		reqs = append(reqs, req)
	}
	return reqs
}

// Driver executes request streams against any Enforcer, keeping one
// session per user (created on demand), and tallies outcomes. The same
// driver runs the OWTE engine and the baseline, so benchmark
// comparisons measure the engines, not the harness.
type Driver struct {
	enf      baseline.Enforcer
	sessions map[rbac.UserID]rbac.SessionID

	// Allowed / Denied tally CheckAccess outcomes; Errors tallies
	// failed state-changing requests (activation denials and similar).
	Allowed, Denied, Errors uint64
}

// NewDriver wraps an enforcer.
func NewDriver(enf baseline.Enforcer) *Driver {
	return &Driver{enf: enf, sessions: make(map[rbac.UserID]rbac.SessionID)}
}

// Session returns the user's session, creating it on first use.
func (d *Driver) Session(u rbac.UserID) (rbac.SessionID, error) {
	if sid, ok := d.sessions[u]; ok {
		return sid, nil
	}
	sid, err := d.enf.CreateSession(u)
	if err != nil {
		return "", err
	}
	d.sessions[u] = sid
	return sid, nil
}

// Run executes the requests in order.
func (d *Driver) Run(reqs []Request) error {
	for _, r := range reqs {
		if err := d.Do(r); err != nil {
			return err
		}
	}
	return nil
}

// Do executes one request. Only harness-level failures (e.g. session
// creation for an unknown user) return an error; authorization denials
// are tallied.
func (d *Driver) Do(r Request) error {
	sid, err := d.Session(r.User)
	if err != nil {
		return fmt.Errorf("workload: session for %s: %w", r.User, err)
	}
	switch r.Kind {
	case CheckAccess:
		if d.enf.CheckAccess(sid, rbac.Permission{Operation: r.Operation, Object: r.Object}) {
			d.Allowed++
		} else {
			d.Denied++
		}
	case Activate:
		if err := d.enf.AddActiveRole(r.User, sid, r.Role); err != nil {
			d.Errors++
		}
	case Drop:
		if err := d.enf.DropActiveRole(r.User, sid, r.Role); err != nil {
			d.Errors++
		}
	case Assign:
		if err := d.enf.AssignUser(r.User, r.Role); err != nil {
			d.Errors++
		}
	case Deassign:
		if err := d.enf.DeassignUser(r.User, r.Role); err != nil {
			d.Errors++
		}
	}
	return nil
}
