package workload

import (
	"fmt"
	"testing"
	"time"

	"activerbac"
	"activerbac/internal/baseline"
	"activerbac/internal/clock"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
)

// Differential testing: the OWTE rule engine and the direct-check
// baseline implement the same authorization semantics, so on identical
// request streams they must produce identical outcome tallies and
// identical final state. This is the strongest correctness check in the
// repository — any divergence in SSD/DSD/hierarchy/cardinality handling
// between the generated rules and the imperative pipeline shows up
// here.

// diffConfig keeps to the feature set with identical semantics across
// the engines (no durations/shifts: the baseline sweeps lazily, the
// OWTE engine uses timers, so mid-stream timing could differ).
func diffSpec(seed int64, shape Shape) *policy.Spec {
	return MustEnterprise(EnterpriseConfig{
		Roles: 16, Shape: shape, Branch: 3,
		SSDFraction: 1, DSDFraction: 0.5,
		Users: 24, PermsPerRole: 2, CardinalityEvery: 4, Seed: seed,
	})
}

func runBoth(t *testing.T, spec *policy.Spec, reqs []Request) (owte, base *Driver, sys *activerbac.System, eng *baseline.Engine) {
	t.Helper()
	epoch := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	sys, err := activerbac.Open(policy.Format(spec), &activerbac.Options{
		Clock: clock.NewSim(epoch),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	eng, err = baseline.New(clock.NewSim(epoch), spec)
	if err != nil {
		t.Fatal(err)
	}

	owte = NewDriver(sys)
	base = NewDriver(eng)
	if err := owte.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := base.Run(reqs); err != nil {
		t.Fatal(err)
	}
	return owte, base, sys, eng
}

func TestDifferentialOutcomes(t *testing.T) {
	for _, shape := range []Shape{Flat, Chain, Tree, XYZShape} {
		for seed := int64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", shape, seed), func(t *testing.T) {
				spec := diffSpec(seed, shape)
				reqs := Stream(spec, DefaultMix, 1500, seed*31+7)
				owte, base, sys, eng := runBoth(t, spec, reqs)

				if owte.Allowed != base.Allowed || owte.Denied != base.Denied {
					t.Fatalf("CheckAccess tallies diverge: owte=%d/%d baseline=%d/%d",
						owte.Allowed, owte.Denied, base.Allowed, base.Denied)
				}
				if owte.Errors != base.Errors {
					t.Fatalf("state-change error tallies diverge: owte=%d baseline=%d",
						owte.Errors, base.Errors)
				}

				// Final state: identical assignments and identical
				// active role sets, user by user.
				for _, u := range spec.Users {
					user := rbac.UserID(u.Name)
					oAssigned, err := sys.AssignedRoles(user)
					if err != nil {
						t.Fatal(err)
					}
					bAssigned, err := eng.Store().AssignedRoles(user)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(oAssigned) != fmt.Sprint(bAssigned) {
						t.Fatalf("assignments diverge for %s: owte=%v baseline=%v",
							user, oAssigned, bAssigned)
					}
					oSid, bSid := owte.sessions[user], base.sessions[user]
					if (oSid == "") != (bSid == "") {
						t.Fatalf("session existence diverges for %s", user)
					}
					if oSid == "" {
						continue
					}
					oRoles, err := sys.SessionRoles(oSid)
					if err != nil {
						t.Fatal(err)
					}
					bRoles, err := eng.Store().SessionRoles(bSid)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(oRoles) != fmt.Sprint(bRoles) {
						t.Fatalf("active roles diverge for %s: owte=%v baseline=%v",
							user, oRoles, bRoles)
					}
				}

				// Both stores stay internally consistent.
				if errs := sys.CheckInvariants(); len(errs) != 0 {
					t.Fatalf("OWTE invariants: %v", errs)
				}
				if errs := eng.Store().CheckInvariants(); len(errs) != 0 {
					t.Fatalf("baseline invariants: %v", errs)
				}
			})
		}
	}
}

// TestDifferentialDecisionByDecision replays a stream one request at a
// time and compares each CheckAccess verdict individually, catching
// divergences that cancel out in aggregate tallies.
func TestDifferentialDecisionByDecision(t *testing.T) {
	spec := diffSpec(99, XYZShape)
	reqs := Stream(spec, Mix{Check: 60, Activate: 25, Drop: 15}, 800, 123)
	epoch := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	sys, err := activerbac.Open(policy.Format(spec), &activerbac.Options{Clock: clock.NewSim(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	eng, err := baseline.New(clock.NewSim(epoch), spec)
	if err != nil {
		t.Fatal(err)
	}
	owte := NewDriver(sys)
	base := NewDriver(eng)

	for i, r := range reqs {
		oBefore := owte.Allowed
		bBefore := base.Allowed
		if err := owte.Do(r); err != nil {
			t.Fatal(err)
		}
		if err := base.Do(r); err != nil {
			t.Fatal(err)
		}
		if r.Kind == CheckAccess {
			oVerdict := owte.Allowed > oBefore
			bVerdict := base.Allowed > bBefore
			if oVerdict != bVerdict {
				t.Fatalf("request %d (%+v): owte allowed=%v baseline allowed=%v",
					i, r, oVerdict, bVerdict)
			}
		}
	}
}
