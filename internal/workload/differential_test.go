package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"activerbac"
	"activerbac/internal/baseline"
	"activerbac/internal/clock"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
)

// Differential testing: the OWTE rule engine and the direct-check
// baseline implement the same authorization semantics, so on identical
// request streams they must produce identical outcome tallies and
// identical final state. This is the strongest correctness check in the
// repository — any divergence in SSD/DSD/hierarchy/cardinality handling
// between the generated rules and the imperative pipeline shows up
// here.

// diffConfig keeps to the feature set with identical semantics across
// the engines (no durations/shifts: the baseline sweeps lazily, the
// OWTE engine uses timers, so mid-stream timing could differ).
func diffSpec(seed int64, shape Shape) *policy.Spec {
	return MustEnterprise(EnterpriseConfig{
		Roles: 16, Shape: shape, Branch: 3,
		SSDFraction: 1, DSDFraction: 0.5,
		Users: 24, PermsPerRole: 2, CardinalityEvery: 4, Seed: seed,
	})
}

func runBoth(t *testing.T, spec *policy.Spec, reqs []Request) (owte, base *Driver, sys *activerbac.System, eng *baseline.Engine) {
	t.Helper()
	epoch := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	sys, err := activerbac.Open(policy.Format(spec), &activerbac.Options{
		Clock: clock.NewSim(epoch),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	eng, err = baseline.New(clock.NewSim(epoch), spec)
	if err != nil {
		t.Fatal(err)
	}

	owte = NewDriver(sys)
	base = NewDriver(eng)
	if err := owte.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := base.Run(reqs); err != nil {
		t.Fatal(err)
	}
	return owte, base, sys, eng
}

func TestDifferentialOutcomes(t *testing.T) {
	for _, shape := range []Shape{Flat, Chain, Tree, XYZShape} {
		for seed := int64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", shape, seed), func(t *testing.T) {
				spec := diffSpec(seed, shape)
				reqs := Stream(spec, DefaultMix, 1500, seed*31+7)
				owte, base, sys, eng := runBoth(t, spec, reqs)

				if owte.Allowed != base.Allowed || owte.Denied != base.Denied {
					t.Fatalf("CheckAccess tallies diverge: owte=%d/%d baseline=%d/%d",
						owte.Allowed, owte.Denied, base.Allowed, base.Denied)
				}
				if owte.Errors != base.Errors {
					t.Fatalf("state-change error tallies diverge: owte=%d baseline=%d",
						owte.Errors, base.Errors)
				}

				// Final state: identical assignments and identical
				// active role sets, user by user.
				for _, u := range spec.Users {
					user := rbac.UserID(u.Name)
					oAssigned, err := sys.AssignedRoles(user)
					if err != nil {
						t.Fatal(err)
					}
					bAssigned, err := eng.Store().AssignedRoles(user)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(oAssigned) != fmt.Sprint(bAssigned) {
						t.Fatalf("assignments diverge for %s: owte=%v baseline=%v",
							user, oAssigned, bAssigned)
					}
					oSid, bSid := owte.sessions[user], base.sessions[user]
					if (oSid == "") != (bSid == "") {
						t.Fatalf("session existence diverges for %s", user)
					}
					if oSid == "" {
						continue
					}
					oRoles, err := sys.SessionRoles(oSid)
					if err != nil {
						t.Fatal(err)
					}
					bRoles, err := eng.Store().SessionRoles(bSid)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(oRoles) != fmt.Sprint(bRoles) {
						t.Fatalf("active roles diverge for %s: owte=%v baseline=%v",
							user, oRoles, bRoles)
					}
				}

				// Both stores stay internally consistent.
				if errs := sys.CheckInvariants(); len(errs) != 0 {
					t.Fatalf("OWTE invariants: %v", errs)
				}
				if errs := eng.Store().CheckInvariants(); len(errs) != 0 {
					t.Fatalf("baseline invariants: %v", errs)
				}
			})
		}
	}
}

// TestDifferentialDecisionByDecision replays a stream one request at a
// time and compares each CheckAccess verdict individually, catching
// divergences that cancel out in aggregate tallies.
func TestDifferentialDecisionByDecision(t *testing.T) {
	spec := diffSpec(99, XYZShape)
	reqs := Stream(spec, Mix{Check: 60, Activate: 25, Drop: 15}, 800, 123)
	epoch := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	sys, err := activerbac.Open(policy.Format(spec), &activerbac.Options{Clock: clock.NewSim(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	eng, err := baseline.New(clock.NewSim(epoch), spec)
	if err != nil {
		t.Fatal(err)
	}
	owte := NewDriver(sys)
	base := NewDriver(eng)

	for i, r := range reqs {
		oBefore := owte.Allowed
		bBefore := base.Allowed
		if err := owte.Do(r); err != nil {
			t.Fatal(err)
		}
		if err := base.Do(r); err != nil {
			t.Fatal(err)
		}
		if r.Kind == CheckAccess {
			oVerdict := owte.Allowed > oBefore
			bVerdict := base.Allowed > bBefore
			if oVerdict != bVerdict {
				t.Fatalf("request %d (%+v): owte allowed=%v baseline allowed=%v",
					i, r, oVerdict, bVerdict)
			}
		}
	}
}

// TestConcurrentStressDifferential hammers the public System from 64
// goroutines — one per user, each owning one session and a
// deterministic mixed CreateSession / AddActiveRole / DropActiveRole /
// CheckAccess sequence — on a lane-sharded engine, then replays every
// sequence serially into the direct-check baseline and compares the
// per-session outcome sequences op by op. The spec keeps to features
// whose verdicts are per-session (DSD, hierarchy, SSD without
// assignment churn) so outcomes cannot depend on goroutine
// interleaving; the test is a -race workout for the lane machinery as
// much as a semantic check.
func TestConcurrentStressDifferential(t *testing.T) {
	const (
		nUsers = 64
		nOps   = 150
	)
	spec := MustEnterprise(EnterpriseConfig{
		Roles: 16, Shape: XYZShape, Branch: 4,
		SSDFraction: 1, DSDFraction: 0.5,
		Users: nUsers, PermsPerRole: 2, Seed: 11,
	})
	epoch := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	sys, err := activerbac.Open(policy.Format(spec), &activerbac.Options{
		Clock: clock.NewSim(epoch), Lanes: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Lanes() != 8 {
		t.Fatalf("lanes = %d, want 8", sys.Lanes())
	}

	type op struct {
		kind              RequestKind
		role              rbac.RoleID
		operation, object string
	}
	genOps := func(u policy.User, seed int64) []op {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]op, 0, nOps)
		for i := 0; i < nOps; i++ {
			role := spec.Roles[rng.Intn(len(spec.Roles))]
			if len(u.Roles) > 0 && rng.Intn(8) != 0 { // mostly own roles, sometimes foreign (deny path)
				role = u.Roles[rng.Intn(len(u.Roles))]
			}
			switch rng.Intn(5) {
			case 0, 1:
				ops = append(ops, op{kind: Activate, role: rbac.RoleID(role)})
			case 2:
				ops = append(ops, op{kind: Drop, role: rbac.RoleID(role)})
			default:
				p := spec.Permissions[rng.Intn(len(spec.Permissions))]
				ops = append(ops, op{kind: CheckAccess, operation: p.Operation, object: p.Object})
			}
		}
		return ops
	}
	runSeq := func(enf baseline.Enforcer, u policy.User, ops []op) ([]bool, error) {
		user := rbac.UserID(u.Name)
		sid, err := enf.CreateSession(user)
		if err != nil {
			return nil, err
		}
		out := make([]bool, len(ops))
		for i, o := range ops {
			switch o.kind {
			case Activate:
				out[i] = enf.AddActiveRole(user, sid, o.role) == nil
			case Drop:
				out[i] = enf.DropActiveRole(user, sid, o.role) == nil
			default:
				out[i] = enf.CheckAccess(sid, rbac.Permission{Operation: o.operation, Object: o.object})
			}
		}
		return out, nil
	}

	allOps := make([][]op, nUsers)
	for i, u := range spec.Users {
		allOps[i] = genOps(u, int64(i)*977+13)
	}

	got := make([][]bool, nUsers)
	errs := make([]error, nUsers)
	var wg sync.WaitGroup
	for i := range spec.Users {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = runSeq(sys, spec.Users[i], allOps[i])
		}(i)
	}
	wg.Wait()
	sys.Quiesce()

	eng, err := baseline.New(clock.NewSim(epoch), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range spec.Users {
		if errs[i] != nil {
			t.Fatalf("goroutine %d (%s): %v", i, u.Name, errs[i])
		}
		want, err := runSeq(eng, u, allOps[i])
		if err != nil {
			t.Fatalf("baseline replay %s: %v", u.Name, err)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("user %s op %d (%+v): concurrent=%v baseline=%v",
					u.Name, j, allOps[i][j], got[i][j], want[j])
			}
		}
	}

	if errsI := sys.CheckInvariants(); len(errsI) != 0 {
		t.Fatalf("invariants after stress: %v", errsI)
	}
	// The sharded lanes must actually have carried traffic: session-
	// scoped requests route past the global lane.
	stats := sys.LaneStats()
	if len(stats) != 9 {
		t.Fatalf("lane stats = %d entries, want 9", len(stats))
	}
	var scoped uint64
	for _, ls := range stats[1:] {
		if ls.Depth != 0 {
			t.Fatalf("lane %s not drained after Quiesce: %+v", ls.Lane, ls)
		}
		scoped += ls.Processed
	}
	if scoped == 0 {
		t.Fatal("no occurrences processed on scope lanes")
	}
}
