// Package store persists the authorization system: JSON snapshots of
// the RBAC database together with the policy source that generated it,
// and an append-only audit log (write-ahead-log style framing with CRC
// checks) recording every rule firing for later replay and forensics.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"activerbac/internal/rbac"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// SnapshotFile is the on-disk snapshot envelope: the RBAC state plus the
// policy source it was generated from, so a restarted system can both
// restore state and regenerate its rule pool.
type SnapshotFile struct {
	Version int           `json:"version"`
	Policy  string        `json:"policy"`
	State   rbac.Snapshot `json:"state"`
}

// EncodeSnapshot serializes a snapshot envelope. The same encoding
// backs the on-disk snapshot and the wire SYNC payload, so a replica
// installs exactly what a restart would load; rbac.Snapshot's sorted
// field order makes the bytes — and therefore a content hash over
// them — stable for identical state.
func EncodeSnapshot(policySource string, state rbac.Snapshot) ([]byte, error) {
	data, err := json.MarshalIndent(SnapshotFile{
		Version: snapshotVersion,
		Policy:  policySource,
		State:   state,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: marshal snapshot: %w", err)
	}
	return data, nil
}

// DecodeSnapshot parses and version-checks an encoded snapshot
// envelope, wherever it came from (disk or a SYNC transfer).
func DecodeSnapshot(data []byte) (*SnapshotFile, error) {
	var f SnapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("store: snapshot version %d, want %d", f.Version, snapshotVersion)
	}
	return &f, nil
}

// SaveSnapshot writes the snapshot atomically (temp file + rename).
func SaveSnapshot(path string, policySource string, state rbac.Snapshot) error {
	data, err := EncodeSnapshot(policySource, state)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads and validates a snapshot file.
func LoadSnapshot(path string) (*SnapshotFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}
