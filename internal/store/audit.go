package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// AuditRecord is one entry in the audit log: a rule firing, an alert, or
// an administrative action.
type AuditRecord struct {
	// Seq is assigned by the log, monotonically.
	Seq uint64 `json:"seq"`
	// At is the engine-clock instant of the event.
	At time.Time `json:"at"`
	// Kind classifies the record ("decision", "alert", "admin").
	Kind string `json:"kind"`
	// Rule is the firing rule's name (decisions).
	Rule string `json:"rule,omitempty"`
	// Event is the triggering event name.
	Event string `json:"event,omitempty"`
	// User is the requesting subject.
	User string `json:"user,omitempty"`
	// Allowed is the verdict (decisions).
	Allowed bool `json:"allowed"`
	// Detail carries free-form context (deny reason, alert text).
	Detail string `json:"detail,omitempty"`
}

// ErrCorrupt reports a torn or bit-flipped record during replay.
var ErrCorrupt = errors.New("store: corrupt audit record")

// AuditInstruments carries the log's optional latency/throughput hooks.
// A nil *AuditInstruments disables them all behind one pointer check;
// individual fields may also be nil.
type AuditInstruments struct {
	// Append observes the latency, in seconds, of one buffered append.
	Append func(seconds float64)
	// Flush observes the latency, in seconds, of one flush + fsync.
	Flush func(seconds float64)
	// Records counts appended records.
	Records func()
}

// AuditLog is an append-only log of AuditRecords. Records are framed as
//
//	uint32 length | uint32 crc32(payload) | payload (JSON)
//
// so replay detects torn tails and corruption. Appends are buffered by
// default; call Sync (or Close) to force them to disk, or enable
// SetSyncEveryAppend to pay a flush+fsync per record. Servers that keep
// the buffered mode should run a periodic Sync (rbacd's -audit-sync
// flag) to bound how much audit trail a crash can lose.
type AuditLog struct {
	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	seq       uint64
	path      string
	syncEvery bool
	ins       *AuditInstruments
}

// OpenAudit opens (creating if needed) an audit log and positions the
// sequence counter after the last valid record.
func OpenAudit(path string) (*AuditLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open audit log: %w", err)
	}
	log := &AuditLog{f: f, w: bufio.NewWriter(f), path: path}

	// Scan existing records to find the next sequence number and the
	// end of the valid prefix; truncate any torn tail.
	validEnd := int64(0)
	err = replayFrom(f, func(rec AuditRecord, end int64) {
		log.seq = rec.Seq
		validEnd = end
	})
	if err != nil && !errors.Is(err, ErrCorrupt) {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek audit log: %w", err)
	}
	return log, nil
}

// SetSyncEveryAppend switches the log between buffered appends (false,
// the default) and flush+fsync per record (true). Durable mode trades
// append latency for zero crash loss.
func (l *AuditLog) SetSyncEveryAppend(on bool) {
	l.mu.Lock()
	l.syncEvery = on
	l.mu.Unlock()
}

// SetInstruments installs the latency/throughput hooks. Call before
// traffic starts; appends read the pointer under the log mutex.
func (l *AuditLog) SetInstruments(ins *AuditInstruments) {
	l.mu.Lock()
	l.ins = ins
	l.mu.Unlock()
}

// Append writes one record, assigning its sequence number, and returns
// it. In sync-every-append mode the record is flushed and fsynced
// before Append returns.
func (l *AuditLog) Append(rec AuditRecord) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t0 time.Time
	if l.ins != nil {
		t0 = time.Now()
	}
	l.seq++
	rec.Seq = l.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("store: marshal audit record: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("store: append audit record: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("store: append audit record: %w", err)
	}
	if l.syncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if ins := l.ins; ins != nil {
		if ins.Append != nil {
			ins.Append(time.Since(t0).Seconds())
		}
		if ins.Records != nil {
			ins.Records()
		}
	}
	return rec.Seq, nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *AuditLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// syncLocked flushes and fsyncs; caller holds l.mu.
func (l *AuditLog) syncLocked() error {
	var t0 time.Time
	ins := l.ins
	if ins != nil && ins.Flush != nil {
		t0 = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("store: flush audit log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: sync audit log: %w", err)
	}
	if ins != nil && ins.Flush != nil {
		ins.Flush(time.Since(t0).Seconds())
	}
	return nil
}

// Close flushes and closes the log.
func (l *AuditLog) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Seq reports the sequence number of the last appended record.
func (l *AuditLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Replay reads every valid record from the log file at path in order.
// It stops silently at a torn tail (the normal crash case) and returns
// ErrCorrupt only for a mid-file CRC mismatch.
func Replay(path string, fn func(AuditRecord)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open audit log: %w", err)
	}
	defer f.Close()
	return replayFrom(f, func(rec AuditRecord, _ int64) { fn(rec) })
}

// replayFrom scans records from r's start, calling fn with each record
// and the offset just past it.
func replayFrom(f *os.File, fn func(AuditRecord, int64)) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek audit log: %w", err)
	}
	br := bufio.NewReader(f)
	offset := int64(0)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return nil // torn header: treat as end of valid prefix
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<24 {
			return fmt.Errorf("%w: implausible record length %d at %d", ErrCorrupt, length, offset)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return fmt.Errorf("%w: crc mismatch at %d", ErrCorrupt, offset)
		}
		var rec AuditRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w: bad payload at %d: %v", ErrCorrupt, offset, err)
		}
		offset += 8 + int64(length)
		fn(rec, offset)
	}
}
