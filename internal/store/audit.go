package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// AuditRecord is one entry in the audit log: a rule firing, an alert, or
// an administrative action.
type AuditRecord struct {
	// Seq is assigned by the log, monotonically.
	Seq uint64 `json:"seq"`
	// At is the engine-clock instant of the event.
	At time.Time `json:"at"`
	// Kind classifies the record ("decision", "alert", "admin").
	Kind string `json:"kind"`
	// Rule is the firing rule's name (decisions).
	Rule string `json:"rule,omitempty"`
	// Event is the triggering event name.
	Event string `json:"event,omitempty"`
	// User is the requesting subject.
	User string `json:"user,omitempty"`
	// Allowed is the verdict (decisions).
	Allowed bool `json:"allowed"`
	// Detail carries free-form context (deny reason, alert text).
	Detail string `json:"detail,omitempty"`
}

// ErrCorrupt reports a torn or bit-flipped record during replay.
var ErrCorrupt = errors.New("store: corrupt audit record")

// AuditLog is an append-only log of AuditRecords. Records are framed as
//
//	uint32 length | uint32 crc32(payload) | payload (JSON)
//
// so replay detects torn tails and corruption. Appends are buffered;
// call Sync (or Close) to force them to disk.
type AuditLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	path string
}

// OpenAudit opens (creating if needed) an audit log and positions the
// sequence counter after the last valid record.
func OpenAudit(path string) (*AuditLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open audit log: %w", err)
	}
	log := &AuditLog{f: f, w: bufio.NewWriter(f), path: path}

	// Scan existing records to find the next sequence number and the
	// end of the valid prefix; truncate any torn tail.
	validEnd := int64(0)
	err = replayFrom(f, func(rec AuditRecord, end int64) {
		log.seq = rec.Seq
		validEnd = end
	})
	if err != nil && !errors.Is(err, ErrCorrupt) {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek audit log: %w", err)
	}
	return log, nil
}

// Append writes one record, assigning its sequence number, and returns
// it.
func (l *AuditLog) Append(rec AuditRecord) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	rec.Seq = l.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("store: marshal audit record: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("store: append audit record: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("store: append audit record: %w", err)
	}
	return rec.Seq, nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *AuditLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("store: flush audit log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: sync audit log: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (l *AuditLog) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Seq reports the sequence number of the last appended record.
func (l *AuditLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Replay reads every valid record from the log file at path in order.
// It stops silently at a torn tail (the normal crash case) and returns
// ErrCorrupt only for a mid-file CRC mismatch.
func Replay(path string, fn func(AuditRecord)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open audit log: %w", err)
	}
	defer f.Close()
	return replayFrom(f, func(rec AuditRecord, _ int64) { fn(rec) })
}

// replayFrom scans records from r's start, calling fn with each record
// and the offset just past it.
func replayFrom(f *os.File, fn func(AuditRecord, int64)) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek audit log: %w", err)
	}
	br := bufio.NewReader(f)
	offset := int64(0)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return nil // torn header: treat as end of valid prefix
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<24 {
			return fmt.Errorf("%w: implausible record length %d at %d", ErrCorrupt, length, offset)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return fmt.Errorf("%w: crc mismatch at %d", ErrCorrupt, offset)
		}
		var rec AuditRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w: bad payload at %d: %v", ErrCorrupt, offset, err)
		}
		offset += 8 + int64(length)
		fn(rec, offset)
	}
}
