package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"activerbac/internal/rbac"
)

func buildState(t *testing.T) *rbac.Store {
	t.Helper()
	s := rbac.NewStore()
	for _, r := range []rbac.RoleID{"PM", "PC", "Clerk"} {
		if err := s.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddInheritance("PM", "PC"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInheritance("PC", "Clerk"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("PC", rbac.Permission{Operation: "write", Object: "po.dat"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoleCardinality("PM", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoleEnabled("Clerk", false); err != nil {
		t.Fatal(err)
	}
	if err := s.AddUser("bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUser("bob", "PC"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUserMaxActiveRoles("bob", 3); err != nil {
		t.Fatal(err)
	}
	sid, err := s.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSSD(rbac.SoDSet{Name: "x", Roles: []rbac.RoleID{"PC", "Clerk"}, N: 2}); err == nil {
		// PC inherits Clerk -> unsatisfiable; expected to fail. Use a
		// disjoint pair instead.
		t.Fatal("unexpected SSD success")
	}
	return s
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := buildState(t)
	snap := s.Snapshot()

	restored := rbac.NewStore()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if errs := restored.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("restored store inconsistent: %v", errs)
	}
	snap2 := restored.Snapshot()
	if len(snap2.Users) != len(snap.Users) || len(snap2.Roles) != len(snap.Roles) ||
		len(snap2.Sessions) != len(snap.Sessions) {
		t.Fatalf("round trip mismatch: %+v vs %+v", snap, snap2)
	}
	// Behaviour carries over: session still has PC active, inheritance
	// intact, role enablement preserved.
	sid := snap.Sessions[0].ID
	if !restored.CheckSessionRole(sid, "PC") {
		t.Fatal("active role lost")
	}
	if !restored.CheckAccess(sid, rbac.Permission{Operation: "write", Object: "po.dat"}) {
		t.Fatal("permission lost")
	}
	if restored.RoleEnabled("Clerk") {
		t.Fatal("enabled flag lost")
	}
	// Session sequence continues without collision.
	sid2, err := restored.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if sid2 == sid {
		t.Fatal("session id collision after restore")
	}
}

func TestRestoreRejectsBadSnapshot(t *testing.T) {
	bad := rbac.Snapshot{
		Users: []rbac.UserSnapshot{{Name: "bob", Assigned: []rbac.RoleID{"ghost"}}},
	}
	s := rbac.NewStore()
	if err := s.Restore(bad); err == nil {
		t.Fatal("snapshot with dangling role accepted")
	}
	// The failed restore must leave a clean store.
	if len(s.Users()) != 0 {
		t.Fatal("failed restore left partial state")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	s := buildState(t)
	if err := SaveSnapshot(path, "role PM\n", s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	f, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Policy != "role PM\n" || f.Version != snapshotVersion {
		t.Fatalf("envelope: %+v", f)
	}
	restored := rbac.NewStore()
	if err := restored.Restore(f.State); err != nil {
		t.Fatal(err)
	}
	if errs := restored.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

func TestLoadSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
	wrongVer := filepath.Join(dir, "ver.json")
	if err := os.WriteFile(wrongVer, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(wrongVer); err == nil {
		t.Fatal("wrong version accepted")
	}

	// A file cut mid-write (crash during save) must be rejected, not
	// half-loaded.
	whole := filepath.Join(dir, "whole.json")
	if err := SaveSnapshot(whole, "role PM\n", buildState(t).Snapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(truncated); err == nil {
		t.Fatal("truncated file accepted")
	}
}

// TestEncodeDecodeSnapshot covers the byte-level halves disk
// persistence and wire replication share: the envelope round-trips,
// and every malformed-input class errors.
func TestEncodeDecodeSnapshot(t *testing.T) {
	s := buildState(t)
	data, err := EncodeSnapshot("role PM\n", s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Policy != "role PM\n" || f.Version != snapshotVersion {
		t.Fatalf("envelope: %+v", f)
	}
	restored := rbac.NewStore()
	if err := restored.Restore(f.State); err != nil {
		t.Fatal(err)
	}

	// Determinism: the same state encodes to the same bytes — what makes
	// the replication protocol's content hash stable.
	again, err := EncodeSnapshot("role PM\n", s.Snapshot())
	if err != nil || string(again) != string(data) {
		t.Fatalf("encode not deterministic (%v)", err)
	}

	for name, bad := range map[string][]byte{
		"empty":        {},
		"not json":     []byte("{nope"),
		"wrong ver":    []byte(`{"version":99}`),
		"truncated":    data[:len(data)/3],
		"array body":   []byte(`[]`),
		"null version": []byte(`{"policy":"x"}`),
	} {
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("DecodeSnapshot(%s) accepted", name)
		}
	}
}

// --------------------------------------------------------------------------
// Audit log

func auditPath(t *testing.T) string {
	return filepath.Join(t.TempDir(), "audit.log")
}

func TestAuditAppendReplay(t *testing.T) {
	path := auditPath(t)
	log, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if _, err := log.Append(AuditRecord{
			At: at, Kind: "decision", Rule: "CA1", User: "bob",
			Allowed: i%2 == 0, Detail: "test",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if log.Seq() != 10 {
		t.Fatalf("Seq = %d", log.Seq())
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	var got []AuditRecord
	if err := Replay(path, func(r AuditRecord) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d records", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Rule != "CA1" || !r.At.Equal(at) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

func TestAuditReopenContinuesSeq(t *testing.T) {
	path := auditPath(t)
	log, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(AuditRecord{Kind: "a"})
	log.Append(AuditRecord{Kind: "b"})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	log2, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := log2.Append(AuditRecord{Kind: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq after reopen = %d, want 3", seq)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, func(AuditRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d", n)
	}
}

func TestAuditTornTailTruncated(t *testing.T) {
	path := auditPath(t)
	log, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(AuditRecord{Kind: "good"})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage half-record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00})
	f.Close()

	// Replay stops at the torn tail.
	n := 0
	if err := Replay(path, func(AuditRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d, want 1", n)
	}
	// Reopen truncates and appends cleanly.
	log2, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq, _ := log2.Append(AuditRecord{Kind: "after-crash"}); seq != 2 {
		t.Fatalf("seq = %d, want 2", seq)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := Replay(path, func(AuditRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d after recovery, want 2", n)
	}
}

func TestAuditCorruptionDetected(t *testing.T) {
	path := auditPath(t)
	log, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(AuditRecord{Kind: "a", Detail: "aaaaaaaaaaaaaaaa"})
	log.Append(AuditRecord{Kind: "b", Detail: "bbbbbbbbbbbbbbbb"})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST record (mid-file corruption).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = Replay(path, func(AuditRecord) {})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay = %v, want ErrCorrupt", err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "none.log"), func(AuditRecord) {}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestAuditSyncEveryAppendDurable(t *testing.T) {
	path := auditPath(t)
	log, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	log.SetSyncEveryAppend(true)
	if _, err := log.Append(AuditRecord{Kind: "decision", Rule: "r1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(AuditRecord{Kind: "decision", Rule: "r2"}); err != nil {
		t.Fatal(err)
	}
	// Without Close or Sync — the crash case — both records must already
	// be on disk.
	var got []string
	if err := Replay(path, func(rec AuditRecord) { got = append(got, rec.Rule) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Fatalf("replay after unsynced crash = %v, want [r1 r2]", got)
	}
	log.Close()
}

func TestAuditBufferedNeedsSync(t *testing.T) {
	path := auditPath(t)
	log, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(AuditRecord{Kind: "decision", Rule: "r1"}); err != nil {
		t.Fatal(err)
	}
	// Buffered mode: nothing reaches the file until Sync.
	n := 0
	if err := Replay(path, func(AuditRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replay before Sync saw %d records, want 0", n)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(AuditRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replay after Sync saw %d records, want 1", n)
	}
	log.Close()
}

func TestAuditInstruments(t *testing.T) {
	path := auditPath(t)
	log, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	var appends, flushes, records int
	log.SetInstruments(&AuditInstruments{
		Append:  func(s float64) { appends++; _ = s },
		Flush:   func(s float64) { flushes++; _ = s },
		Records: func() { records++ },
	})
	log.SetSyncEveryAppend(true)
	log.Append(AuditRecord{Kind: "a"})
	log.Append(AuditRecord{Kind: "b"})
	log.Sync()
	if appends != 2 || records != 2 {
		t.Fatalf("appends=%d records=%d, want 2/2", appends, records)
	}
	if flushes != 3 { // two per-append syncs plus the explicit Sync
		t.Fatalf("flushes=%d, want 3", flushes)
	}
	log.Close()
}
