package rbac

import (
	"errors"
	"fmt"
	"testing"
)

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func mustErr(t *testing.T, err, want error) {
	t.Helper()
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// newXYZ builds the paper's enterprise XYZ (Section 5): hierarchies
// PM -> PC -> Clerk and AM -> AC -> Clerk, with static SoD between PC
// and AC.
func newXYZ(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	for _, r := range []RoleID{"PM", "PC", "AM", "AC", "Clerk"} {
		mustOK(t, s.AddRole(r))
	}
	mustOK(t, s.AddInheritance("PM", "PC"))
	mustOK(t, s.AddInheritance("PC", "Clerk"))
	mustOK(t, s.AddInheritance("AM", "AC"))
	mustOK(t, s.AddInheritance("AC", "Clerk"))
	mustOK(t, s.CreateSSD(SoDSet{Name: "purchase-approval", Roles: []RoleID{"PC", "AC"}, N: 2}))
	return s
}

func TestAddDeleteUser(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddUser("bob"))
	mustErr(t, s.AddUser("bob"), ErrExists)
	if !s.UserExists("bob") || s.UserExists("jane") {
		t.Fatal("UserExists wrong")
	}
	mustOK(t, s.DeleteUser("bob"))
	mustErr(t, s.DeleteUser("bob"), ErrNotFound)
}

func TestAddDeleteRole(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("r1"))
	mustErr(t, s.AddRole("r1"), ErrExists)
	if !s.RoleExists("r1") {
		t.Fatal("RoleExists wrong")
	}
	if !s.RoleEnabled("r1") {
		t.Fatal("new role should be enabled")
	}
	mustOK(t, s.DeleteRole("r1"))
	mustErr(t, s.DeleteRole("r1"), ErrNotFound)
}

func TestDeleteRoleDetachesEverything(t *testing.T) {
	s := newXYZ(t)
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "PC"))
	sid, err := s.CreateSession("bob")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	mustOK(t, s.DeleteRole("PC"))
	if errs := s.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants after DeleteRole: %v", errs)
	}
	roles, err := s.AssignedRoles("bob")
	mustOK(t, err)
	if len(roles) != 0 {
		t.Fatalf("assignment survived role deletion: %v", roles)
	}
	// The SSD set shrank below its cardinality and must be pruned.
	if sets := s.SSDSets(); len(sets) != 0 {
		t.Fatalf("SSD sets after delete: %v", sets)
	}
}

func TestAssignDeassign(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AddRole("r1"))
	mustErr(t, s.AssignUser("ghost", "r1"), ErrNotFound)
	mustErr(t, s.AssignUser("bob", "ghost"), ErrNotFound)
	mustOK(t, s.AssignUser("bob", "r1"))
	mustErr(t, s.AssignUser("bob", "r1"), ErrExists)
	if !s.CheckAssigned("bob", "r1") {
		t.Fatal("CheckAssigned false after assign")
	}
	mustOK(t, s.DeassignUser("bob", "r1"))
	mustErr(t, s.DeassignUser("bob", "r1"), ErrNotFound)
	if s.CheckAssigned("bob", "r1") {
		t.Fatal("CheckAssigned true after deassign")
	}
}

func TestDeassignDropsActiveRole(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AddRole("r1"))
	mustOK(t, s.AssignUser("bob", "r1"))
	sid, err := s.CreateSession("bob")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("bob", sid, "r1"))
	mustOK(t, s.DeassignUser("bob", "r1"))
	if s.CheckSessionRole(sid, "r1") {
		t.Fatal("active role survived deassignment")
	}
	if n := s.RoleActiveCount("r1"); n != 0 {
		t.Fatalf("activeCount = %d, want 0", n)
	}
}

func TestGrantRevokePermission(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("r1"))
	p := Permission{Operation: "read", Object: "patient.dat"}
	mustOK(t, s.GrantPermission("r1", p))
	mustErr(t, s.GrantPermission("r1", p), ErrExists)
	mustErr(t, s.GrantPermission("ghost", p), ErrNotFound)
	perms, err := s.RolePermissions("r1")
	mustOK(t, err)
	if len(perms) != 1 || perms[0] != p {
		t.Fatalf("RolePermissions = %v", perms)
	}
	mustOK(t, s.RevokePermission("r1", p))
	mustErr(t, s.RevokePermission("r1", p), ErrNotFound)
}

func TestPermissionString(t *testing.T) {
	p := Permission{Operation: "read", Object: "f.dat"}
	if p.String() != "read(f.dat)" {
		t.Fatalf("String = %q", p.String())
	}
}

// --------------------------------------------------------------------------
// Hierarchy

func TestHierarchyInheritance(t *testing.T) {
	s := newXYZ(t)
	mustOK(t, s.AddUser("alice"))
	mustOK(t, s.AssignUser("alice", "PM"))

	// Senior acquires juniors' permissions.
	mustOK(t, s.GrantPermission("Clerk", Permission{"read", "lobby.txt"}))
	mustOK(t, s.GrantPermission("PC", Permission{"write", "po.dat"}))
	perms, err := s.EffectivePermissions("PM")
	mustOK(t, err)
	if len(perms) != 2 {
		t.Fatalf("PM effective permissions %v, want clerk+pc perms", perms)
	}

	// Junior acquires seniors' user membership.
	users, err := s.AuthorizedUsers("Clerk")
	mustOK(t, err)
	if len(users) != 1 || users[0] != "alice" {
		t.Fatalf("AuthorizedUsers(Clerk) = %v", users)
	}

	// Authorized roles of alice = PM + junior closure.
	roles, err := s.AuthorizedRoles("alice")
	mustOK(t, err)
	if fmt.Sprint(roles) != "[Clerk PC PM]" {
		t.Fatalf("AuthorizedRoles = %v", roles)
	}
}

func TestHierarchyCycleRejected(t *testing.T) {
	s := NewStore()
	for _, r := range []RoleID{"a", "b", "c"} {
		mustOK(t, s.AddRole(r))
	}
	mustOK(t, s.AddInheritance("a", "b"))
	mustOK(t, s.AddInheritance("b", "c"))
	mustErr(t, s.AddInheritance("c", "a"), ErrCycle)
	mustErr(t, s.AddInheritance("a", "a"), ErrCycle)
	mustErr(t, s.AddInheritance("a", "b"), ErrExists)
	mustErr(t, s.AddInheritance("a", "ghost"), ErrNotFound)
	mustErr(t, s.AddInheritance("ghost", "a"), ErrNotFound)
}

func TestDeleteInheritance(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("a"))
	mustOK(t, s.AddRole("b"))
	mustOK(t, s.AddInheritance("a", "b"))
	mustOK(t, s.DeleteInheritance("a", "b"))
	mustErr(t, s.DeleteInheritance("a", "b"), ErrNotFound)
	juniors, err := s.ImmediateJuniors("a")
	mustOK(t, err)
	if len(juniors) != 0 {
		t.Fatalf("juniors after delete: %v", juniors)
	}
}

func TestAscendantsDescendants(t *testing.T) {
	s := newXYZ(t)
	desc, err := s.Descendants("PM")
	mustOK(t, err)
	if fmt.Sprint(desc) != "[Clerk PC PM]" {
		t.Fatalf("Descendants(PM) = %v", desc)
	}
	asc, err := s.Ascendants("Clerk")
	mustOK(t, err)
	if fmt.Sprint(asc) != "[AC AM Clerk PC PM]" {
		t.Fatalf("Ascendants(Clerk) = %v", asc)
	}
}

func TestImmediateSeniorsAndSessionsWithRole(t *testing.T) {
	s := newXYZ(t)
	seniors, err := s.ImmediateSeniors("Clerk")
	mustOK(t, err)
	if fmt.Sprint(seniors) != "[AC PC]" {
		t.Fatalf("ImmediateSeniors(Clerk) = %v", seniors)
	}
	if _, err := s.ImmediateSeniors("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("ghost accepted")
	}
	if _, err := s.ImmediateJuniors("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("ghost accepted")
	}
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "PC"))
	s1, _ := s.CreateSession("bob")
	s2, _ := s.CreateSession("bob")
	mustOK(t, s.AddActiveRole("bob", s1, "PC"))
	mustOK(t, s.AddActiveRole("bob", s2, "PC"))
	if got := s.SessionsWithRole("PC"); fmt.Sprint(got) != fmt.Sprint([]SessionID{s1, s2}) {
		t.Fatalf("SessionsWithRole = %v", got)
	}
	if got := s.SessionsWithRole("AM"); len(got) != 0 {
		t.Fatalf("SessionsWithRole(AM) = %v", got)
	}
}

func TestDSDSetsListing(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("a"))
	mustOK(t, s.AddRole("b"))
	mustOK(t, s.CreateDSD(SoDSet{Name: "d", Roles: []RoleID{"a", "b"}, N: 2}))
	sets := s.DSDSets()
	if len(sets) != 1 || sets[0].Name != "d" || len(sets[0].Roles) != 2 {
		t.Fatalf("DSDSets = %v", sets)
	}
	// The returned slice is a copy: mutating it must not corrupt state.
	sets[0].Roles[0] = "zzz"
	if s.DSDSets()[0].Roles[0] != "a" {
		t.Fatal("DSDSets returned shared storage")
	}
}

// --------------------------------------------------------------------------
// Static SoD

func TestSSDBlocksDirectConflict(t *testing.T) {
	s := newXYZ(t)
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "PC"))
	mustErr(t, s.AssignUser("bob", "AC"), ErrSSD)
	if s.CheckSSDAssign("bob", "AC") {
		t.Fatal("CheckSSDAssign should be false")
	}
	if !s.CheckSSDAssign("bob", "Clerk") {
		t.Fatal("CheckSSDAssign(Clerk) should be true")
	}
}

func TestSSDInheritedThroughHierarchy(t *testing.T) {
	// Paper Section 5: "a user assigned to the role PM cannot be
	// assigned to the role AM or AC" because PM inherits PC's conflict.
	s := newXYZ(t)
	mustOK(t, s.AddUser("alice"))
	mustOK(t, s.AssignUser("alice", "PM"))
	mustErr(t, s.AssignUser("alice", "AC"), ErrSSD)
	mustErr(t, s.AssignUser("alice", "AM"), ErrSSD)
	// Clerk is below both but not itself in conflict.
	mustOK(t, s.AssignUser("alice", "Clerk"))
}

func TestSSDOnHierarchyEdit(t *testing.T) {
	// Adding a hierarchy edge that would make an existing user
	// authorized for a conflicting pair must be rejected.
	s := NewStore()
	for _, r := range []RoleID{"top", "x", "y"} {
		mustOK(t, s.AddRole(r))
	}
	mustOK(t, s.CreateSSD(SoDSet{Name: "xy", Roles: []RoleID{"x", "y"}, N: 2}))
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "top"))
	mustOK(t, s.AddInheritance("top", "x"))
	mustErr(t, s.AddInheritance("top", "y"), ErrSSD)
	// The rejected edge must not persist.
	juniors, _ := s.ImmediateJuniors("top")
	if fmt.Sprint(juniors) != "[x]" {
		t.Fatalf("juniors after rejected edge: %v", juniors)
	}
}

func TestCreateSSDValidation(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("a"))
	mustOK(t, s.AddRole("b"))
	mustErr(t, s.CreateSSD(SoDSet{Name: "", Roles: []RoleID{"a", "b"}, N: 2}), ErrNotFound)
	mustErr(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "b"}, N: 1}), ErrInvariant)
	mustErr(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "b"}, N: 3}), ErrInvariant)
	mustErr(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "ghost"}, N: 2}), ErrNotFound)
	mustErr(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "a"}, N: 2}), ErrExists)
	mustOK(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "b"}, N: 2}))
	mustErr(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "b"}, N: 2}), ErrExists)
	mustOK(t, s.DeleteSSD("s"))
	mustErr(t, s.DeleteSSD("s"), ErrNotFound)
}

func TestCreateSSDRejectsExistingViolation(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("a"))
	mustOK(t, s.AddRole("b"))
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "a"))
	mustOK(t, s.AssignUser("bob", "b"))
	mustErr(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "b"}, N: 2}), ErrSSD)
	if len(s.SSDSets()) != 0 {
		t.Fatal("violated SSD set persisted")
	}
}

func TestSSDWithCardinalityThree(t *testing.T) {
	// N=3: any two of the set are fine, three is a violation.
	s := NewStore()
	for _, r := range []RoleID{"a", "b", "c"} {
		mustOK(t, s.AddRole(r))
	}
	mustOK(t, s.CreateSSD(SoDSet{Name: "s", Roles: []RoleID{"a", "b", "c"}, N: 3}))
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "a"))
	mustOK(t, s.AssignUser("bob", "b"))
	mustErr(t, s.AssignUser("bob", "c"), ErrSSD)
}

// --------------------------------------------------------------------------
// Counts and reviews

func TestCounts(t *testing.T) {
	s := newXYZ(t)
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "PC"))
	mustOK(t, s.GrantPermission("PC", Permission{"write", "po.dat"}))
	c := s.Count()
	if c.Users != 1 || c.Roles != 5 || c.SSD != 1 || c.Assignments != 1 ||
		c.Permissions != 1 || c.HierarchyEdges != 4 {
		t.Fatalf("Count = %+v", c)
	}
}

func TestReviewFunctions(t *testing.T) {
	s := newXYZ(t)
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AddUser("alice"))
	mustOK(t, s.AssignUser("bob", "PC"))
	mustOK(t, s.AssignUser("alice", "PM"))

	users, err := s.AssignedUsers("PC")
	mustOK(t, err)
	if fmt.Sprint(users) != "[bob]" {
		t.Fatalf("AssignedUsers = %v", users)
	}
	auth, err := s.AuthorizedUsers("PC")
	mustOK(t, err)
	if fmt.Sprint(auth) != "[alice bob]" {
		t.Fatalf("AuthorizedUsers = %v", auth)
	}
	if _, err := s.AssignedUsers("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("AssignedUsers(ghost) should fail")
	}
	if _, err := s.AssignedRoles("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("AssignedRoles(ghost) should fail")
	}
	if got := s.Roles(); fmt.Sprint(got) != "[AC AM Clerk PC PM]" {
		t.Fatalf("Roles = %v", got)
	}
	if got := s.Users(); fmt.Sprint(got) != "[alice bob]" {
		t.Fatalf("Users = %v", got)
	}
}

func TestUserPermissions(t *testing.T) {
	s := newXYZ(t)
	mustOK(t, s.AddUser("alice"))
	mustOK(t, s.AssignUser("alice", "PM"))
	mustOK(t, s.GrantPermission("Clerk", Permission{"read", "lobby"}))
	mustOK(t, s.GrantPermission("PC", Permission{"write", "po"}))
	mustOK(t, s.GrantPermission("AC", Permission{"approve", "po"})) // not authorized
	perms, err := s.UserPermissions("alice")
	mustOK(t, err)
	if len(perms) != 2 {
		t.Fatalf("UserPermissions = %v, want 2", perms)
	}
}
