package rbac

import (
	"errors"
	"fmt"
	"testing"
)

func newSessionFixture(t *testing.T) (*Store, SessionID) {
	t.Helper()
	s := newXYZ(t)
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "PC"))
	sid, err := s.CreateSession("bob")
	mustOK(t, err)
	return s, sid
}

func TestCreateDeleteSession(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddUser("bob"))
	sid, err := s.CreateSession("bob")
	mustOK(t, err)
	if !s.SessionExists(sid) {
		t.Fatal("session missing after create")
	}
	owner, err := s.SessionUser(sid)
	mustOK(t, err)
	if owner != "bob" {
		t.Fatalf("owner = %q", owner)
	}
	if !s.CheckUserSession("bob", sid) || s.CheckUserSession("jane", sid) {
		t.Fatal("CheckUserSession wrong")
	}
	mustOK(t, s.DeleteSession(sid))
	mustErr(t, s.DeleteSession(sid), ErrNotFound)
	if _, err := s.CreateSession("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("CreateSession for unknown user accepted")
	}
}

func TestSessionIDsUnique(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddUser("bob"))
	seen := map[SessionID]bool{}
	for i := 0; i < 100; i++ {
		sid, err := s.CreateSession("bob")
		mustOK(t, err)
		if seen[sid] {
			t.Fatalf("duplicate session id %q", sid)
		}
		seen[sid] = true
	}
}

func TestDeleteUserEndsSessions(t *testing.T) {
	s, sid := newSessionFixture(t)
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	mustOK(t, s.DeleteUser("bob"))
	if s.SessionExists(sid) {
		t.Fatal("session survived user deletion")
	}
	if n := s.RoleActiveCount("PC"); n != 0 {
		t.Fatalf("activeCount = %d after user deletion", n)
	}
}

func TestAddActiveRolePipeline(t *testing.T) {
	s, sid := newSessionFixture(t)
	// Unknown user / session / role.
	mustErr(t, s.AddActiveRole("ghost", sid, "PC"), ErrNotFound)
	mustErr(t, s.AddActiveRole("bob", "zzz", "PC"), ErrNotFound)
	mustErr(t, s.AddActiveRole("bob", sid, "ghost"), ErrNotFound)
	// Wrong owner.
	mustOK(t, s.AddUser("jane"))
	mustErr(t, s.AddActiveRole("jane", sid, "PC"), ErrNotOwner)
	// Not assigned.
	mustErr(t, s.AddActiveRole("bob", sid, "AM"), ErrNotAssigned)
	// Happy path.
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	// Duplicate activation.
	mustErr(t, s.AddActiveRole("bob", sid, "PC"), ErrActive)
	roles, err := s.SessionRoles(sid)
	mustOK(t, err)
	if fmt.Sprint(roles) != "[PC]" {
		t.Fatalf("SessionRoles = %v", roles)
	}
}

func TestActivateViaHierarchyAuthorization(t *testing.T) {
	// A user assigned to PM may activate PC (AAR2 semantics).
	s := newXYZ(t)
	mustOK(t, s.AddUser("alice"))
	mustOK(t, s.AssignUser("alice", "PM"))
	sid, err := s.CreateSession("alice")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("alice", sid, "PC"))
	mustOK(t, s.AddActiveRole("alice", sid, "Clerk"))
	if !s.CheckAuthorized("alice", "Clerk") {
		t.Fatal("CheckAuthorized(Clerk) false")
	}
	if s.CheckAuthorized("alice", "AC") {
		t.Fatal("CheckAuthorized(AC) true")
	}
}

func TestDisabledRoleCannotActivate(t *testing.T) {
	s, sid := newSessionFixture(t)
	mustOK(t, s.SetRoleEnabled("PC", false))
	mustErr(t, s.AddActiveRole("bob", sid, "PC"), ErrRoleDisabled)
	if s.RoleEnabled("PC") {
		t.Fatal("RoleEnabled true after disable")
	}
	mustOK(t, s.SetRoleEnabled("PC", true))
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	mustErr(t, s.SetRoleEnabled("ghost", true), ErrNotFound)
}

func TestLockedUser(t *testing.T) {
	s, sid := newSessionFixture(t)
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	mustOK(t, s.GrantPermission("PC", Permission{"write", "po"}))
	mustOK(t, s.SetUserLocked("bob", true))
	if !s.UserLocked("bob") {
		t.Fatal("UserLocked false")
	}
	if _, err := s.CreateSession("bob"); !errors.Is(err, ErrUserLocked) {
		t.Fatal("locked user created session")
	}
	mustErr(t, s.AddActiveRole("bob", sid, "Clerk"), ErrUserLocked)
	if s.CheckAccess(sid, Permission{"write", "po"}) {
		t.Fatal("locked user passed CheckAccess")
	}
	mustOK(t, s.SetUserLocked("bob", false))
	if !s.CheckAccess(sid, Permission{"write", "po"}) {
		t.Fatal("unlocked user denied")
	}
}

func TestDynamicSoDBlocksActivation(t *testing.T) {
	s := NewStore()
	for _, r := range []RoleID{"teller", "auditor"} {
		mustOK(t, s.AddRole(r))
	}
	mustOK(t, s.CreateDSD(SoDSet{Name: "bank", Roles: []RoleID{"teller", "auditor"}, N: 2}))
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "teller"))
	mustOK(t, s.AssignUser("bob", "auditor")) // assignment OK (DSD, not SSD)
	sid, err := s.CreateSession("bob")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("bob", sid, "teller"))
	mustErr(t, s.AddActiveRole("bob", sid, "auditor"), ErrDSD)
	if s.CheckDynamicSoD(sid, "auditor") {
		t.Fatal("CheckDynamicSoD should be false")
	}
	// Dropping teller frees auditor.
	mustOK(t, s.DropActiveRole("bob", sid, "teller"))
	mustOK(t, s.AddActiveRole("bob", sid, "auditor"))
	// A second session may activate the other role (DSD is per session).
	sid2, err := s.CreateSession("bob")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("bob", sid2, "teller"))
}

func TestDynamicSoDCountsHierarchy(t *testing.T) {
	// Activating a senior role implicitly activates its juniors for DSD
	// purposes.
	s := NewStore()
	for _, r := range []RoleID{"boss", "teller", "auditor"} {
		mustOK(t, s.AddRole(r))
	}
	mustOK(t, s.AddInheritance("boss", "teller"))
	mustOK(t, s.CreateDSD(SoDSet{Name: "bank", Roles: []RoleID{"teller", "auditor"}, N: 2}))
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "boss"))
	mustOK(t, s.AssignUser("bob", "auditor"))
	sid, err := s.CreateSession("bob")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("bob", sid, "boss"))
	mustErr(t, s.AddActiveRole("bob", sid, "auditor"), ErrDSD)
}

func TestDSDCreationValidation(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("a"))
	mustOK(t, s.AddRole("b"))
	mustOK(t, s.AddUser("bob"))
	mustOK(t, s.AssignUser("bob", "a"))
	mustOK(t, s.AssignUser("bob", "b"))
	sid, err := s.CreateSession("bob")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("bob", sid, "a"))
	mustOK(t, s.AddActiveRole("bob", sid, "b"))
	// Both active: installing the DSD now must fail.
	mustErr(t, s.CreateDSD(SoDSet{Name: "d", Roles: []RoleID{"a", "b"}, N: 2}), ErrDSD)
	mustOK(t, s.DropActiveRole("bob", sid, "b"))
	mustOK(t, s.CreateDSD(SoDSet{Name: "d", Roles: []RoleID{"a", "b"}, N: 2}))
	mustErr(t, s.CreateDSD(SoDSet{Name: "d", Roles: []RoleID{"a", "b"}, N: 2}), ErrExists)
	mustOK(t, s.DeleteDSD("d"))
	mustErr(t, s.DeleteDSD("d"), ErrNotFound)
}

func TestRoleCardinality(t *testing.T) {
	// Paper Rule 4: at most N users active in a role at once.
	s := NewStore()
	mustOK(t, s.AddRole("president"))
	mustOK(t, s.SetRoleCardinality("president", 1))
	for _, u := range []UserID{"u1", "u2"} {
		mustOK(t, s.AddUser(u))
		mustOK(t, s.AssignUser(u, "president"))
	}
	s1, err := s.CreateSession("u1")
	mustOK(t, err)
	s2, err := s.CreateSession("u2")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("u1", s1, "president"))
	if s.CheckRoleCardinality("president") {
		t.Fatal("CheckRoleCardinality should be false at limit")
	}
	mustErr(t, s.AddActiveRole("u2", s2, "president"), ErrCardinality)
	// Deactivation frees the slot.
	mustOK(t, s.DropActiveRole("u1", s1, "president"))
	mustOK(t, s.AddActiveRole("u2", s2, "president"))
	// Session deletion frees it too.
	mustOK(t, s.DeleteSession(s2))
	if n := s.RoleActiveCount("president"); n != 0 {
		t.Fatalf("activeCount = %d", n)
	}
	mustErr(t, s.SetRoleCardinality("ghost", 1), ErrNotFound)
}

func TestUserMaxActiveRoles(t *testing.T) {
	// Paper scenario 1: Jane is restricted to five active roles; here 2.
	s := NewStore()
	mustOK(t, s.AddUser("jane"))
	for i := 0; i < 3; i++ {
		r := RoleID(fmt.Sprintf("r%d", i))
		mustOK(t, s.AddRole(r))
		mustOK(t, s.AssignUser("jane", r))
	}
	mustOK(t, s.SetUserMaxActiveRoles("jane", 2))
	sid, err := s.CreateSession("jane")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("jane", sid, "r0"))
	mustOK(t, s.AddActiveRole("jane", sid, "r1"))
	if s.CheckUserActiveBudget(sid) {
		t.Fatal("CheckUserActiveBudget should be false at limit")
	}
	mustErr(t, s.AddActiveRole("jane", sid, "r2"), ErrCardinality)
	mustOK(t, s.DropActiveRole("jane", sid, "r0"))
	mustOK(t, s.AddActiveRole("jane", sid, "r2"))
	mustErr(t, s.SetUserMaxActiveRoles("ghost", 2), ErrNotFound)
}

func TestCheckAccess(t *testing.T) {
	s, sid := newSessionFixture(t)
	read := Permission{"read", "po.dat"}
	write := Permission{"write", "po.dat"}
	mustOK(t, s.GrantPermission("PC", write))
	mustOK(t, s.GrantPermission("Clerk", read))

	if s.CheckAccess(sid, write) {
		t.Fatal("access granted with no active role")
	}
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	if !s.CheckAccess(sid, write) {
		t.Fatal("direct permission denied")
	}
	// PC inherits Clerk's read.
	if !s.CheckAccess(sid, read) {
		t.Fatal("inherited permission denied")
	}
	if s.CheckAccess(sid, Permission{"approve", "po.dat"}) {
		t.Fatal("unknown permission granted")
	}
	if s.CheckAccess("zzz", write) {
		t.Fatal("unknown session granted")
	}
	mustOK(t, s.DropActiveRole("bob", sid, "PC"))
	if s.CheckAccess(sid, write) {
		t.Fatal("access granted after deactivation")
	}
}

func TestSessionPermissions(t *testing.T) {
	s, sid := newSessionFixture(t)
	mustOK(t, s.GrantPermission("PC", Permission{"write", "po"}))
	mustOK(t, s.GrantPermission("Clerk", Permission{"read", "lobby"}))
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	perms, err := s.SessionPermissions(sid)
	mustOK(t, err)
	if len(perms) != 2 {
		t.Fatalf("SessionPermissions = %v, want 2 (direct + inherited)", perms)
	}
	if _, err := s.SessionPermissions("zzz"); !errors.Is(err, ErrNotFound) {
		t.Fatal("SessionPermissions(zzz) should fail")
	}
}

func TestRawMutators(t *testing.T) {
	s, sid := newSessionFixture(t)
	// Raw mutators skip checks: activating an unassigned role succeeds.
	mustOK(t, s.RawAddSessionRole(sid, "AM"))
	if !s.CheckSessionRole(sid, "AM") {
		t.Fatal("raw add missing")
	}
	if n := s.RoleActiveCount("AM"); n != 1 {
		t.Fatalf("activeCount = %d", n)
	}
	mustErr(t, s.RawAddSessionRole(sid, "AM"), ErrActive)
	mustOK(t, s.RawDropSessionRole(sid, "AM"))
	mustErr(t, s.RawDropSessionRole(sid, "AM"), ErrNotFound)
	mustErr(t, s.RawAddSessionRole("zzz", "AM"), ErrNotFound)
	mustErr(t, s.RawAddSessionRole(sid, "ghost"), ErrNotFound)
	// RawAssignUser skips SSD.
	mustOK(t, s.RawAssignUser("bob", "AC"))
	if !s.CheckAssigned("bob", "AC") {
		t.Fatal("raw assign missing")
	}
}

func TestDropActiveRoleErrors(t *testing.T) {
	s, sid := newSessionFixture(t)
	mustErr(t, s.DropActiveRole("bob", sid, "PC"), ErrNotFound) // not active
	mustErr(t, s.DropActiveRole("bob", "zzz", "PC"), ErrNotFound)
	mustOK(t, s.AddUser("jane"))
	mustOK(t, s.AddActiveRole("bob", sid, "PC"))
	mustErr(t, s.DropActiveRole("jane", sid, "PC"), ErrNotOwner)
}

// Regression (found by differential testing against the baseline):
// deassigning a senior role must also drop active roles that were only
// authorized *through* it.
func TestDeassignSeniorDropsHierarchyActivations(t *testing.T) {
	s := newXYZ(t)
	mustOK(t, s.AddUser("alice"))
	mustOK(t, s.AssignUser("alice", "PM"))
	sid, err := s.CreateSession("alice")
	mustOK(t, err)
	// PC and Clerk activated via PM's seniority.
	mustOK(t, s.AddActiveRole("alice", sid, "PC"))
	mustOK(t, s.AddActiveRole("alice", sid, "Clerk"))
	mustOK(t, s.DeassignUser("alice", "PM"))
	roles, err := s.SessionRoles(sid)
	mustOK(t, err)
	if len(roles) != 0 {
		t.Fatalf("hierarchy-authorized activations survived deassignment: %v", roles)
	}
	if errs := s.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
	if n := s.RoleActiveCount("PC"); n != 0 {
		t.Fatalf("activeCount = %d", n)
	}
}

// Regression: removing a hierarchy edge must revoke activations that
// relied on it, for every user.
func TestDeleteInheritancePrunesActivations(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("senior"))
	mustOK(t, s.AddRole("junior"))
	mustOK(t, s.AddInheritance("senior", "junior"))
	mustOK(t, s.AddUser("u"))
	mustOK(t, s.AssignUser("u", "senior"))
	sid, err := s.CreateSession("u")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("u", sid, "junior"))
	mustOK(t, s.DeleteInheritance("senior", "junior"))
	if s.CheckSessionRole(sid, "junior") {
		t.Fatal("activation survived the edge it was authorized through")
	}
	// The directly assigned senior role would have survived.
	mustOK(t, s.AddActiveRole("u", sid, "senior"))
	if errs := s.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

// Regression: deleting a mid-hierarchy role revokes activations that
// were authorized through it.
func TestDeleteRolePrunesTransitiveActivations(t *testing.T) {
	s := NewStore()
	for _, r := range []RoleID{"top", "mid", "leaf"} {
		mustOK(t, s.AddRole(r))
	}
	mustOK(t, s.AddInheritance("top", "mid"))
	mustOK(t, s.AddInheritance("mid", "leaf"))
	mustOK(t, s.AddUser("u"))
	mustOK(t, s.AssignUser("u", "top"))
	sid, err := s.CreateSession("u")
	mustOK(t, err)
	mustOK(t, s.AddActiveRole("u", sid, "leaf"))
	// Deleting mid severs the only authorization path to leaf.
	mustOK(t, s.DeleteRole("mid"))
	if s.CheckSessionRole(sid, "leaf") {
		t.Fatal("leaf activation survived the loss of its authorization path")
	}
	if errs := s.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

func TestUserSessions(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddUser("bob"))
	s1, _ := s.CreateSession("bob")
	s2, _ := s.CreateSession("bob")
	sids, err := s.UserSessions("bob")
	mustOK(t, err)
	if len(sids) != 2 || sids[0] != s1 || sids[1] != s2 {
		t.Fatalf("UserSessions = %v", sids)
	}
	if _, err := s.UserSessions("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("UserSessions(ghost) should fail")
	}
}
