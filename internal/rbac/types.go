// Package rbac implements the NIST RBAC reference model (ANSI INCITS
// 359-2004): core RBAC (users, roles, permissions, sessions), general
// role hierarchies, and static and dynamic separation-of-duty relations,
// together with the review functions the standard requires.
//
// The Store exposes three layers, mirroring how the paper splits
// enforcement between Sentinel+ objects and OWTE rules:
//
//  1. Predicates (CheckAssigned, CheckAuthorized, DSDSatisfied, ...) —
//     the condition functions that OWTE rule "When" clauses call.
//  2. Raw mutators (RawAssignUser, RawAddSessionRole, ...) — the action
//     functions rule "Then" clauses call after conditions verified; they
//     skip constraint checks exactly like the paper's addSessionRoleR1.
//  3. Enforcing methods (AssignUser, AddActiveRole, CheckAccess, ...) —
//     the ANSI functional specification, composing 1+2 directly. The
//     baseline (non-ECA) engine used in benchmarks is built on this
//     layer.
package rbac

import (
	"errors"
	"fmt"
)

// UserID identifies a user (an instance of entity U in the paper).
type UserID string

// RoleID identifies a role (an instance of entity R).
type RoleID string

// SessionID identifies a user session.
type SessionID string

// Permission is an approval to perform an operation on an object.
type Permission struct {
	Operation string
	Object    string
}

// String renders op(obj).
func (p Permission) String() string { return fmt.Sprintf("%s(%s)", p.Operation, p.Object) }

// Sentinel errors. All Store errors wrap one of these, so callers can
// classify failures with errors.Is.
var (
	// ErrNotFound reports a reference to an unknown user, role, session,
	// permission or SoD set.
	ErrNotFound = errors.New("rbac: not found")
	// ErrExists reports creation of an entity that already exists.
	ErrExists = errors.New("rbac: already exists")
	// ErrSSD reports a static separation-of-duty violation.
	ErrSSD = errors.New("rbac: static SoD violation")
	// ErrDSD reports a dynamic separation-of-duty violation.
	ErrDSD = errors.New("rbac: dynamic SoD violation")
	// ErrCardinality reports a role- or user-cardinality violation.
	ErrCardinality = errors.New("rbac: cardinality limit reached")
	// ErrRoleDisabled reports activation of a disabled role.
	ErrRoleDisabled = errors.New("rbac: role disabled")
	// ErrNotAssigned reports activation of a role the user is neither
	// assigned to nor authorized for.
	ErrNotAssigned = errors.New("rbac: user not assigned to role")
	// ErrUserLocked reports an operation by a locked user (active
	// security response).
	ErrUserLocked = errors.New("rbac: user locked")
	// ErrCycle reports a role-hierarchy edge that would create a cycle.
	ErrCycle = errors.New("rbac: hierarchy cycle")
	// ErrActive reports adding a role that is already active in the
	// session.
	ErrActive = errors.New("rbac: role already active in session")
	// ErrNotOwner reports a session operation by a non-owner.
	ErrNotOwner = errors.New("rbac: session not owned by user")
	// ErrDenied reports a failed access check.
	ErrDenied = errors.New("rbac: permission denied")
	// ErrInvariant reports a consistency-check failure.
	ErrInvariant = errors.New("rbac: invariant violated")
)

// SoDSet is one separation-of-duty relation: a named role set with a
// cardinality N. For static SoD no user may be *assigned* (authorized,
// under hierarchies) to N or more of the roles; for dynamic SoD no
// session may have N or more of them *active* at once. The standard
// requires 2 <= N <= |Roles|.
type SoDSet struct {
	Name  string
	Roles []RoleID
	N     int
}
