package rbac

import "fmt"

// Supporting system functions (ANSI 359-2004 §6.1.2): session creation,
// role activation and the access-check decision function.

// CreateSession creates a session for user u and returns its id.
// Locked users cannot create sessions.
func (s *Store) CreateSession(u UserID) (SessionID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	us, ok := s.users[u]
	if !ok {
		return "", fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	if us.locked {
		return "", fmt.Errorf("user %q: %w", u, ErrUserLocked)
	}
	s.sessionSeq++
	sid := SessionID(fmt.Sprintf("s%d", s.sessionSeq))
	s.sessions[sid] = &sessionState{user: u, active: roleSet{}}
	us.sessions[sid] = struct{}{}
	s.publishSessionLocked(sid)
	return sid, nil
}

// DeleteSession ends a session, releasing role-cardinality slots.
func (s *Store) DeleteSession(sid SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[sid]; !ok {
		return fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	s.deleteSessionLocked(sid)
	s.publishSessionLocked(sid)
	return nil
}

func (s *Store) deleteSessionLocked(sid SessionID) {
	sess := s.sessions[sid]
	for r := range sess.active {
		if rs, ok := s.roles[r]; ok {
			rs.activeCount--
		}
	}
	if us, ok := s.users[sess.user]; ok {
		delete(us.sessions, sid)
	}
	delete(s.sessions, sid)
}

// SessionExists reports whether sid names a live session (the paper's
// "sessionId IN sessionL"). Reads the published view: lock-free.
func (s *Store) SessionExists(sid SessionID) bool {
	_, ok := s.view.Load().sessions[sid]
	return ok
}

// SessionUser returns the owner of a session. Reads the published view:
// lock-free.
func (s *Store) SessionUser(sid SessionID) (UserID, error) {
	sv, ok := s.view.Load().sessions[sid]
	if !ok {
		return "", fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	return sv.user, nil
}

// CheckUserSession is the paper's "sessionId IN checkUserSessions(user)":
// it reports whether sid is a live session owned by u. Reads the
// published view: lock-free.
func (s *Store) CheckUserSession(u UserID, sid SessionID) bool {
	sv, ok := s.view.Load().sessions[sid]
	return ok && sv.user == u
}

// UserExists reports whether u is a known user (the paper's
// "user IN userL").
func (s *Store) UserExists(u UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.users[u]
	return ok
}

// RoleExists reports whether r is a known role.
func (s *Store) RoleExists(r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.roles[r]
	return ok
}

// ---------------------------------------------------------------------------
// Predicates used as OWTE rule conditions

// CheckAssigned is the paper's checkAssignedR1(user): direct assignment
// only (core RBAC, rule AAR1).
func (s *Store) CheckAssigned(u UserID, r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	us, ok := s.users[u]
	if !ok {
		return false
	}
	return us.assigned.has(r)
}

// CheckAuthorized is the paper's checkAuthorizationR1(user): assignment
// to the role or to any of its seniors (hierarchical RBAC, rule AAR2).
func (s *Store) CheckAuthorized(u UserID, r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	us, ok := s.users[u]
	if !ok {
		return false
	}
	if _, ok := s.roles[r]; !ok {
		return false
	}
	if us.assigned.has(r) {
		return true
	}
	for senior := range s.seniorsClosureLocked(r) {
		if us.assigned.has(senior) {
			return true
		}
	}
	return false
}

// CheckSessionRole is the paper's "R1 NOT IN checkSessionRoles(user)"
// inverted: it reports whether r is currently active in sid.
func (s *Store) CheckSessionRole(sid SessionID, r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[sid]
	return ok && sess.active.has(r)
}

// CheckRoleCardinality is the paper's CardinalityR1(INCR) predicate
// half: it reports whether one more activation of r stays within the
// role's cardinality bound.
func (s *Store) CheckRoleCardinality(r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs, ok := s.roles[r]
	if !ok {
		return false
	}
	return rs.cardinality == 0 || rs.activeCount < rs.cardinality
}

// CheckUserActiveBudget reports whether the session can hold one more
// active role under the owner's max-active-roles bound.
func (s *Store) CheckUserActiveBudget(sid SessionID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return false
	}
	limit := s.maxActiveRoles[sess.user]
	return limit == 0 || len(sess.active) < limit
}

// RoleActiveCount reports how many sessions have r active.
func (s *Store) RoleActiveCount(r RoleID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs, ok := s.roles[r]
	if !ok {
		return 0
	}
	return rs.activeCount
}

// ---------------------------------------------------------------------------
// Raw mutators used as OWTE rule actions

// RawAddSessionRole is the paper's addSessionRoleR1(sessionId): it adds
// r to the session's active role set and bumps the role's activation
// counter, without re-checking constraints.
func (s *Store) RawAddSessionRole(sid SessionID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	if sess.active.has(r) {
		return fmt.Errorf("role %q in session %q: %w", r, sid, ErrActive)
	}
	sess.active.add(r)
	rs.activeCount++
	s.publishSessionLocked(sid)
	return nil
}

// RawDropSessionRole is the paper's removeSessionRoleR1(sessionId).
func (s *Store) RawDropSessionRole(sid SessionID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	if !sess.active.has(r) {
		return fmt.Errorf("role %q not active in session %q: %w", r, sid, ErrNotFound)
	}
	sess.active.del(r)
	rs.activeCount--
	s.publishSessionLocked(sid)
	return nil
}

// ---------------------------------------------------------------------------
// Enforcing (ANSI functional specification) layer

// AddActiveRole activates r in session sid, enforcing the full
// activation pipeline the paper's AAR rules implement: session/user
// validity, lock state, role enabling, assignment or authorization
// (hierarchies), duplicate activation, dynamic SoD, role cardinality and
// the user's active-role budget.
func (s *Store) AddActiveRole(u UserID, sid SessionID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	us, ok := s.users[u]
	if !ok {
		return fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	if us.locked {
		return fmt.Errorf("user %q: %w", u, ErrUserLocked)
	}
	sess, ok := s.sessions[sid]
	if !ok {
		return fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	if sess.user != u {
		return fmt.Errorf("session %q owned by %q not %q: %w", sid, sess.user, u, ErrNotOwner)
	}
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	if !rs.enabled {
		return fmt.Errorf("role %q: %w", r, ErrRoleDisabled)
	}
	if sess.active.has(r) {
		return fmt.Errorf("role %q in session %q: %w", r, sid, ErrActive)
	}
	authorized := us.assigned.has(r)
	if !authorized {
		for senior := range s.seniorsClosureLocked(r) {
			if us.assigned.has(senior) {
				authorized = true
				break
			}
		}
	}
	if !authorized {
		return fmt.Errorf("user %q role %q: %w", u, r, ErrNotAssigned)
	}
	if !s.dsdSatisfiedLocked(sess, r) {
		return fmt.Errorf("activating %q in session %q: %w", r, sid, ErrDSD)
	}
	if rs.cardinality != 0 && rs.activeCount >= rs.cardinality {
		return fmt.Errorf("role %q at cardinality %d: %w", r, rs.cardinality, ErrCardinality)
	}
	if limit := s.maxActiveRoles[u]; limit != 0 && len(sess.active) >= limit {
		return fmt.Errorf("user %q at max active roles %d: %w", u, limit, ErrCardinality)
	}
	sess.active.add(r)
	rs.activeCount++
	s.publishSessionLocked(sid)
	return nil
}

// DropActiveRole deactivates r in session sid.
func (s *Store) DropActiveRole(u UserID, sid SessionID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	if sess.user != u {
		return fmt.Errorf("session %q owned by %q not %q: %w", sid, sess.user, u, ErrNotOwner)
	}
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	if !sess.active.has(r) {
		return fmt.Errorf("role %q not active in session %q: %w", r, sid, ErrNotFound)
	}
	sess.active.del(r)
	rs.activeCount--
	s.publishSessionLocked(sid)
	return nil
}

// CheckAccess is the ANSI decision function: whether the session may
// perform operation on object. An active role grants its own
// permissions plus those of every role it inherits from. Reads the
// published view — one atomic load, no lock, no allocation — so
// concurrent decisions scale with cores.
func (s *Store) CheckAccess(sid SessionID, p Permission) bool {
	sv, ok := s.view.Load().sessions[sid]
	if !ok || sv.locked {
		return false
	}
	for _, eff := range sv.perms {
		if _, ok := eff[p]; ok {
			return true
		}
	}
	return false
}
