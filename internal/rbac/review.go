package rbac

import (
	"fmt"
	"sort"
)

// Review functions (ANSI 359-2004 §6.1.3 and the advanced review
// functions of §6.2/§6.3). All results are sorted for deterministic
// output in tests and tools.

// Users returns all user ids, sorted.
func (s *Store) Users() []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]UserID, 0, len(s.users))
	for u := range s.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roles returns all role ids, sorted.
func (s *Store) Roles() []RoleID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RoleID, 0, len(s.roles))
	for r := range s.roles {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sessions returns all live session ids, sorted.
func (s *Store) Sessions() []SessionID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SessionID, 0, len(s.sessions))
	for sid := range s.sessions {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AssignedUsers returns the users directly assigned to role r.
func (s *Store) AssignedUsers(r RoleID) ([]UserID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.roles[r]; !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	var out []UserID
	for u, us := range s.users {
		if us.assigned.has(r) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// AssignedRoles returns the roles directly assigned to user u.
func (s *Store) AssignedRoles(u UserID) ([]RoleID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	us, ok := s.users[u]
	if !ok {
		return nil, fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	return us.assigned.sorted(), nil
}

// AuthorizedUsers returns the users assigned to r or to any senior of r
// (hierarchical review function).
func (s *Store) AuthorizedUsers(r RoleID) ([]UserID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.roles[r]; !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	seniors := s.seniorsClosureLocked(r)
	var out []UserID
	for u, us := range s.users {
		for sr := range seniors {
			if us.assigned.has(sr) {
				out = append(out, u)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// AuthorizedRoles returns every role user u is authorized for: assigned
// roles plus everything they inherit from.
func (s *Store) AuthorizedRoles(u UserID) ([]RoleID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.users[u]; !ok {
		return nil, fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	return s.authorizedRolesLocked(u).sorted(), nil
}

// RolePermissions returns the permissions granted directly to r.
func (s *Store) RolePermissions(r RoleID) ([]Permission, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs, ok := s.roles[r]
	if !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	return sortPerms(rs.perms), nil
}

// EffectivePermissions returns the permissions of r plus everything
// inherited from its juniors (hierarchical review function).
func (s *Store) EffectivePermissions(r RoleID) ([]Permission, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.roles[r]; !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	acc := make(map[Permission]struct{})
	for j := range s.juniorsClosureLocked(r) {
		for p := range s.roles[j].perms {
			acc[p] = struct{}{}
		}
	}
	return sortPerms(acc), nil
}

// UserPermissions returns every permission u can obtain through some
// authorized role.
func (s *Store) UserPermissions(u UserID) ([]Permission, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.users[u]; !ok {
		return nil, fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	acc := make(map[Permission]struct{})
	for r := range s.authorizedRolesLocked(u) {
		for p := range s.roles[r].perms {
			acc[p] = struct{}{}
		}
	}
	return sortPerms(acc), nil
}

// SessionRoles returns the roles active in session sid (the paper's
// getSessionRoles).
func (s *Store) SessionRoles(sid SessionID) ([]RoleID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return nil, fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	return sess.active.sorted(), nil
}

// SessionPermissions returns the permissions available to the session
// through its active roles (including inherited permissions).
func (s *Store) SessionPermissions(sid SessionID) ([]Permission, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return nil, fmt.Errorf("session %q: %w", sid, ErrNotFound)
	}
	acc := make(map[Permission]struct{})
	for r := range sess.active {
		for j := range s.juniorsClosureLocked(r) {
			for p := range s.roles[j].perms {
				acc[p] = struct{}{}
			}
		}
	}
	return sortPerms(acc), nil
}

// SessionsWithRole returns the live sessions in which role r is active,
// sorted.
func (s *Store) SessionsWithRole(r RoleID) []SessionID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []SessionID
	for sid, sess := range s.sessions {
		if sess.active.has(r) {
			out = append(out, sid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UserSessions returns the live sessions owned by u.
func (s *Store) UserSessions(u UserID) ([]SessionID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	us, ok := s.users[u]
	if !ok {
		return nil, fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	out := make([]SessionID, 0, len(us.sessions))
	for sid := range us.sessions {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func sortPerms(m map[Permission]struct{}) []Permission {
	out := make([]Permission, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Operation < out[j].Operation
	})
	return out
}

// Counts summarizes store sizes for tools and experiments.
type Counts struct {
	Users, Roles, Sessions, SSD, DSD int
	Assignments, Permissions         int
	HierarchyEdges                   int
}

// Count returns store sizes.
func (s *Store) Count() Counts {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := Counts{
		Users: len(s.users), Roles: len(s.roles), Sessions: len(s.sessions),
		SSD: len(s.ssd), DSD: len(s.dsd),
	}
	for _, us := range s.users {
		c.Assignments += len(us.assigned)
	}
	for _, rs := range s.roles {
		c.Permissions += len(rs.perms)
		c.HierarchyEdges += len(rs.juniors)
	}
	return c
}
