package rbac

// Copy-on-write read path. The hot enforcement predicates — CheckAccess
// and the session lookups the CA1 rule and the facade issue per request
// — read an immutable accessView published through an atomic pointer:
// one pointer load, no lock traffic, no allocation. Mutators rebuild
// the view under the store mutex before returning.
//
// Two publication grades keep writer cost proportional to the change:
//
//   - policy mutations (users, roles, permissions, hierarchy, SoD,
//     locks, restore) recompute the per-role effective-permission maps
//     and every session projection, and bump the view epoch — the
//     decision fast path invalidates its cache wholesale on the bump;
//   - session mutations (create/delete session, role (de)activation)
//     copy the session map and rebuild only the touched session,
//     reusing the effective-permission maps; the epoch is unchanged
//     and the fast path invalidates just that session.

// accessView is the immutable read-side projection of the store. Fields
// are written only by the builders below and never after publication.
//
// rbacvet:snapshot
type accessView struct {
	// epoch counts policy publications; the fast path tags cache
	// entries with it.
	epoch uint64
	// perms maps each role to its effective permission set: the union
	// of the role's own permissions and those of every junior it
	// inherits. Maps are freshly built per policy publication and never
	// alias the store's canonical maps.
	perms map[RoleID]map[Permission]struct{}
	// sessions projects each live session for the access decision.
	sessions map[SessionID]*sessionView
}

// sessionView is one session's projection: the owner, the owner's lock
// state, and the effective permission set of each active role. Written
// only by the accessView builders.
//
// rbacvet:snapshot
type sessionView struct {
	user   UserID
	locked bool
	perms  []map[Permission]struct{}
}

// SetChangeHook installs a callback run after every view publication:
// policy=true with an empty sid for policy-grade changes, policy=false
// with the touched session for session-grade changes. The hook runs
// under the store mutex and must not block or call back into the
// store; the decision fast path uses it for cache invalidation.
// Install once during engine assembly.
func (s *Store) SetChangeHook(fn func(policy bool, sid SessionID)) {
	s.mu.Lock()
	s.chook = fn
	s.mu.Unlock()
}

// Epoch reports the current policy epoch of the published view.
func (s *Store) Epoch() uint64 { return s.view.Load().epoch }

// publishPolicyLocked rebuilds the whole view — effective permissions
// and all session projections — and bumps the epoch. Caller holds s.mu
// (write side).
func (s *Store) publishPolicyLocked() {
	old := s.view.Load()
	v := &accessView{
		epoch:    old.epoch + 1,
		perms:    make(map[RoleID]map[Permission]struct{}, len(s.roles)),
		sessions: make(map[SessionID]*sessionView, len(s.sessions)),
	}
	for r := range s.roles {
		eff := make(map[Permission]struct{})
		for j := range s.juniorsClosureLocked(r) {
			for p := range s.roles[j].perms {
				eff[p] = struct{}{}
			}
		}
		v.perms[r] = eff
	}
	for sid := range s.sessions {
		v.sessions[sid] = s.sessionViewLocked(sid, v.perms)
	}
	s.view.Store(v)
	if h := s.chook; h != nil {
		h(true, "")
	}
}

// publishSessionLocked republishes the view with only sid's projection
// rebuilt (or removed), reusing the effective-permission maps and
// keeping the epoch. Caller holds s.mu (write side).
func (s *Store) publishSessionLocked(sid SessionID) {
	old := s.view.Load()
	v := &accessView{
		epoch:    old.epoch,
		perms:    old.perms,
		sessions: make(map[SessionID]*sessionView, len(s.sessions)+1),
	}
	for id, sv := range old.sessions {
		if id != sid {
			v.sessions[id] = sv
		}
	}
	if _, live := s.sessions[sid]; live {
		v.sessions[sid] = s.sessionViewLocked(sid, old.perms)
	}
	s.view.Store(v)
	if h := s.chook; h != nil {
		h(false, sid)
	}
}

// sessionViewLocked projects one live session against the given
// effective-permission maps. Caller holds s.mu.
func (s *Store) sessionViewLocked(sid SessionID, perms map[RoleID]map[Permission]struct{}) *sessionView {
	sess := s.sessions[sid]
	sv := &sessionView{user: sess.user}
	if us, ok := s.users[sess.user]; ok {
		sv.locked = us.locked
	}
	if len(sess.active) > 0 {
		sv.perms = make([]map[Permission]struct{}, 0, len(sess.active))
		for r := range sess.active {
			if eff, ok := perms[r]; ok {
				sv.perms = append(sv.perms, eff)
			}
		}
	}
	return sv
}
