package rbac

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// roleSet is a set of roles.
type roleSet map[RoleID]struct{}

func (s roleSet) add(r RoleID)      { s[r] = struct{}{} }
func (s roleSet) has(r RoleID) bool { _, ok := s[r]; return ok }
func (s roleSet) del(r RoleID)      { delete(s, r) }
func (s roleSet) sorted() []RoleID  { return sortRoles(s) }

func sortRoles(s roleSet) []RoleID {
	out := make([]RoleID, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// userState holds per-user state.
type userState struct {
	assigned roleSet
	sessions map[SessionID]struct{}
	locked   bool
}

// roleState holds per-role state.
type roleState struct {
	perms map[Permission]struct{}
	// juniors and seniors are the *immediate* hierarchy relation: this
	// role inherits (is senior to) each role in juniors.
	juniors roleSet
	seniors roleSet
	// enabled is GTRBAC role-enabling state; a disabled role cannot be
	// activated (default enabled).
	enabled bool
	// cardinality limits how many sessions may have the role active at
	// once; 0 means unlimited (paper Rule 4).
	cardinality int
	// activeCount tracks how many sessions currently have the role
	// active.
	activeCount int
}

// sessionState holds per-session state.
type sessionState struct {
	user   UserID
	active roleSet
}

// Store is the RBAC database: element sets, assignment relations, the
// role hierarchy, SoD relations and live sessions. It is safe for
// concurrent use.
type Store struct {
	mu       sync.RWMutex
	users    map[UserID]*userState
	roles    map[RoleID]*roleState
	sessions map[SessionID]*sessionState
	ssd      map[string]*SoDSet
	dsd      map[string]*SoDSet
	// maxActiveRoles bounds active roles per session per user; 0 means
	// unlimited.
	maxActiveRoles map[UserID]int
	sessionSeq     int
	// view is the published read-side projection (see view.go); chook is
	// notified after every publication.
	view  atomic.Pointer[accessView]
	chook func(policy bool, sid SessionID)
}

// NewStore returns an empty RBAC store.
func NewStore() *Store {
	s := &Store{
		users:          make(map[UserID]*userState),
		roles:          make(map[RoleID]*roleState),
		sessions:       make(map[SessionID]*sessionState),
		ssd:            make(map[string]*SoDSet),
		dsd:            make(map[string]*SoDSet),
		maxActiveRoles: make(map[UserID]int),
	}
	s.view.Store(&accessView{
		perms:    map[RoleID]map[Permission]struct{}{},
		sessions: map[SessionID]*sessionView{},
	})
	return s
}

// ---------------------------------------------------------------------------
// Administrative commands: element sets

// AddUser creates a user.
func (s *Store) AddUser(u UserID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[u]; ok {
		return fmt.Errorf("user %q: %w", u, ErrExists)
	}
	s.users[u] = &userState{assigned: roleSet{}, sessions: map[SessionID]struct{}{}}
	s.publishPolicyLocked()
	return nil
}

// DeleteUser removes a user, its assignments and its sessions.
func (s *Store) DeleteUser(u UserID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	us, ok := s.users[u]
	if !ok {
		return fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	for sid := range us.sessions {
		s.deleteSessionLocked(sid)
	}
	delete(s.users, u)
	delete(s.maxActiveRoles, u)
	s.publishPolicyLocked()
	return nil
}

// AddRole creates a role (enabled, no permissions, no hierarchy edges).
func (s *Store) AddRole(r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roles[r]; ok {
		return fmt.Errorf("role %q: %w", r, ErrExists)
	}
	s.roles[r] = &roleState{
		perms:   make(map[Permission]struct{}),
		juniors: roleSet{},
		seniors: roleSet{},
		enabled: true,
	}
	s.publishPolicyLocked()
	return nil
}

// DeleteRole removes a role, detaching it from users, sessions, the
// hierarchy and SoD sets.
func (s *Store) DeleteRole(r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	for _, us := range s.users {
		us.assigned.del(r)
	}
	for _, sess := range s.sessions {
		if sess.active.has(r) {
			sess.active.del(r)
		}
	}
	for j := range rs.juniors {
		s.roles[j].seniors.del(r)
	}
	for sr := range rs.seniors {
		s.roles[sr].juniors.del(r)
	}
	pruneSoD(s.ssd, r)
	pruneSoD(s.dsd, r)
	delete(s.roles, r)
	// Removing the role removed hierarchy paths; activations that relied
	// on them are no longer authorized.
	s.pruneUnauthorizedAllLocked()
	s.publishPolicyLocked()
	return nil
}

// pruneSoD drops r from every SoD set, deleting sets that the removal
// makes malformed (fewer members than the set's cardinality requires).
func pruneSoD(sets map[string]*SoDSet, r RoleID) {
	for name, set := range sets {
		set.Roles = removeRole(set.Roles, r)
		if len(set.Roles) < set.N || len(set.Roles) < 2 {
			delete(sets, name)
		}
	}
}

func removeRole(roles []RoleID, r RoleID) []RoleID {
	out := roles[:0]
	for _, x := range roles {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Administrative commands: relations

// AssignUser assigns user u to role r, enforcing static SoD.
func (s *Store) AssignUser(u UserID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	us, rErr := s.userRoleLocked(u, r)
	if rErr != nil {
		return rErr
	}
	if us.assigned.has(r) {
		return fmt.Errorf("user %q already assigned to %q: %w", u, r, ErrExists)
	}
	if name, ok := s.ssdViolationLocked(u, r); !ok {
		return fmt.Errorf("assigning %q to %q violates SSD set %q: %w", u, r, name, ErrSSD)
	}
	us.assigned.add(r)
	s.publishPolicyLocked()
	return nil
}

// RawAssignUser assigns without constraint checks (rule action layer).
func (s *Store) RawAssignUser(u UserID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	us, rErr := s.userRoleLocked(u, r)
	if rErr != nil {
		return rErr
	}
	us.assigned.add(r)
	s.publishPolicyLocked()
	return nil
}

// DeassignUser removes the assignment and drops from the user's
// sessions every active role the user is no longer authorized for —
// including roles that had been activated through the deassigned role's
// seniority (ANSI requires active roles to stay a subset of authorized
// roles).
func (s *Store) DeassignUser(u UserID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	us, rErr := s.userRoleLocked(u, r)
	if rErr != nil {
		return rErr
	}
	if !us.assigned.has(r) {
		return fmt.Errorf("user %q not assigned to %q: %w", u, r, ErrNotFound)
	}
	us.assigned.del(r)
	s.pruneUnauthorizedUserLocked(u, us)
	s.publishPolicyLocked()
	return nil
}

// pruneUnauthorizedUserLocked drops active roles the user is no longer
// authorized for from all of the user's sessions.
func (s *Store) pruneUnauthorizedUserLocked(u UserID, us *userState) {
	auth := s.authorizedRolesLocked(u)
	for sid := range us.sessions {
		sess := s.sessions[sid]
		for r := range sess.active {
			if !auth.has(r) {
				sess.active.del(r)
				if rs, ok := s.roles[r]; ok {
					rs.activeCount--
				}
			}
		}
	}
}

// pruneUnauthorizedAllLocked re-validates every session's active roles;
// used after hierarchy or role-set edits, which can shrink authorized
// sets for any user.
func (s *Store) pruneUnauthorizedAllLocked() {
	for u, us := range s.users {
		if len(us.sessions) > 0 {
			s.pruneUnauthorizedUserLocked(u, us)
		}
	}
}

func (s *Store) userRoleLocked(u UserID, r RoleID) (*userState, error) {
	us, ok := s.users[u]
	if !ok {
		return nil, fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	if _, ok := s.roles[r]; !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	return us, nil
}

// GrantPermission grants (operation, object) to role r.
func (s *Store) GrantPermission(r RoleID, p Permission) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	if _, dup := rs.perms[p]; dup {
		return fmt.Errorf("permission %v on %q: %w", p, r, ErrExists)
	}
	rs.perms[p] = struct{}{}
	s.publishPolicyLocked()
	return nil
}

// RevokePermission revokes (operation, object) from role r.
func (s *Store) RevokePermission(r RoleID, p Permission) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	if _, ok := rs.perms[p]; !ok {
		return fmt.Errorf("permission %v on %q: %w", p, r, ErrNotFound)
	}
	delete(rs.perms, p)
	s.publishPolicyLocked()
	return nil
}

// ---------------------------------------------------------------------------
// Role enabling, locking, cardinality knobs

// SetRoleEnabled flips GTRBAC role-enabling state. A disabled role
// cannot be activated; existing activations are untouched (temporal
// rules deactivate explicitly when the policy says so).
func (s *Store) SetRoleEnabled(r RoleID, enabled bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	rs.enabled = enabled
	s.publishPolicyLocked()
	return nil
}

// RoleEnabled reports GTRBAC role-enabling state.
func (s *Store) RoleEnabled(r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs, ok := s.roles[r]
	return ok && rs.enabled
}

// SetRoleCardinality bounds concurrent activations of r (0 = unlimited).
func (s *Store) SetRoleCardinality(r RoleID, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.roles[r]
	if !ok {
		return fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	rs.cardinality = n
	s.publishPolicyLocked()
	return nil
}

// SetUserMaxActiveRoles bounds active roles per session for user u
// (0 = unlimited) — the paper's "Jane may hold at most five active
// roles" specialized constraint.
func (s *Store) SetUserMaxActiveRoles(u UserID, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[u]; !ok {
		return fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	s.maxActiveRoles[u] = n
	s.publishPolicyLocked()
	return nil
}

// SetUserLocked locks or unlocks a user (active-security response). A
// locked user cannot create sessions, activate roles or pass access
// checks.
func (s *Store) SetUserLocked(u UserID, locked bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	us, ok := s.users[u]
	if !ok {
		return fmt.Errorf("user %q: %w", u, ErrNotFound)
	}
	us.locked = locked
	s.publishPolicyLocked()
	return nil
}

// UserLocked reports whether u is locked.
func (s *Store) UserLocked(u UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	us, ok := s.users[u]
	return ok && us.locked
}
