package rbac

import (
	"fmt"
	"sort"
)

// Separation-of-duty relations (ANSI 359-2004 §6.3, §6.4). A static SoD
// set (Roles, N) forbids any user from being authorized for N or more of
// the member roles; a dynamic SoD set forbids any single session from
// having N or more of them active at once. Hierarchies count: a user
// assigned to a senior role is authorized for its juniors, so the
// paper's enterprise XYZ inherits the (PC, AC) conflict up to PM and AM.

// validateSoD checks the standard's well-formedness requirements.
func (s *Store) validateSoDLocked(set SoDSet) error {
	if set.Name == "" {
		return fmt.Errorf("SoD set with empty name: %w", ErrNotFound)
	}
	if set.N < 2 || set.N > len(set.Roles) {
		return fmt.Errorf("SoD set %q: cardinality %d outside [2,%d]: %w",
			set.Name, set.N, len(set.Roles), ErrInvariant)
	}
	seen := roleSet{}
	for _, r := range set.Roles {
		if _, ok := s.roles[r]; !ok {
			return fmt.Errorf("SoD set %q references role %q: %w", set.Name, r, ErrNotFound)
		}
		if seen.has(r) {
			return fmt.Errorf("SoD set %q repeats role %q: %w", set.Name, r, ErrExists)
		}
		seen.add(r)
	}
	return nil
}

// CreateSSD installs a static SoD relation after verifying that no
// existing user assignment already violates it.
func (s *Store) CreateSSD(set SoDSet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validateSoDLocked(set); err != nil {
		return err
	}
	if _, dup := s.ssd[set.Name]; dup {
		return fmt.Errorf("SSD set %q: %w", set.Name, ErrExists)
	}
	cp := set
	cp.Roles = append([]RoleID(nil), set.Roles...)
	s.ssd[set.Name] = &cp
	for u := range s.users {
		if s.countAuthorizedInLocked(u, &cp) >= cp.N {
			delete(s.ssd, set.Name)
			return fmt.Errorf("SSD set %q already violated by user %q: %w", set.Name, u, ErrSSD)
		}
	}
	s.publishPolicyLocked()
	return nil
}

// DeleteSSD removes a static SoD relation.
func (s *Store) DeleteSSD(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ssd[name]; !ok {
		return fmt.Errorf("SSD set %q: %w", name, ErrNotFound)
	}
	delete(s.ssd, name)
	s.publishPolicyLocked()
	return nil
}

// CreateDSD installs a dynamic SoD relation after verifying no live
// session already violates it.
func (s *Store) CreateDSD(set SoDSet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validateSoDLocked(set); err != nil {
		return err
	}
	if _, dup := s.dsd[set.Name]; dup {
		return fmt.Errorf("DSD set %q: %w", set.Name, ErrExists)
	}
	cp := set
	cp.Roles = append([]RoleID(nil), set.Roles...)
	for sid, sess := range s.sessions {
		if s.countActiveInLocked(sess, &cp) >= cp.N {
			return fmt.Errorf("DSD set %q already violated by session %q: %w", set.Name, sid, ErrDSD)
		}
	}
	s.dsd[set.Name] = &cp
	s.publishPolicyLocked()
	return nil
}

// DeleteDSD removes a dynamic SoD relation.
func (s *Store) DeleteDSD(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dsd[name]; !ok {
		return fmt.Errorf("DSD set %q: %w", name, ErrNotFound)
	}
	delete(s.dsd, name)
	s.publishPolicyLocked()
	return nil
}

// SSDSets returns the static SoD relations, sorted by name.
func (s *Store) SSDSets() []SoDSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return copySets(s.ssd)
}

// DSDSets returns the dynamic SoD relations, sorted by name.
func (s *Store) DSDSets() []SoDSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return copySets(s.dsd)
}

func copySets(m map[string]*SoDSet) []SoDSet {
	out := make([]SoDSet, 0, len(m))
	for _, set := range m {
		cp := *set
		cp.Roles = append([]RoleID(nil), set.Roles...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// countAuthorizedInLocked counts how many of the set's roles user u is
// authorized for (assigned or inherited through seniority).
func (s *Store) countAuthorizedInLocked(u UserID, set *SoDSet) int {
	auth := s.authorizedRolesLocked(u)
	n := 0
	for _, r := range set.Roles {
		if auth.has(r) {
			n++
		}
	}
	return n
}

// countActiveInLocked counts how many of the set's roles the session has
// active, counting a senior active role as activating its juniors.
func (s *Store) countActiveInLocked(sess *sessionState, set *SoDSet) int {
	covered := roleSet{}
	for r := range sess.active {
		for j := range s.juniorsClosureLocked(r) {
			covered.add(j)
		}
	}
	n := 0
	for _, r := range set.Roles {
		if covered.has(r) {
			n++
		}
	}
	return n
}

// ssdViolationLocked reports whether assigning role r to user u would
// keep every SSD set satisfied; on failure it names the violated set.
func (s *Store) ssdViolationLocked(u UserID, r RoleID) (string, bool) {
	if len(s.ssd) == 0 {
		return "", true
	}
	// Authorized roles after the assignment = current U juniors*(r).
	auth := s.authorizedRolesLocked(u)
	for j := range s.juniorsClosureLocked(r) {
		auth.add(j)
	}
	for name, set := range s.ssd {
		n := 0
		for _, m := range set.Roles {
			if auth.has(m) {
				n++
			}
		}
		if n >= set.N {
			return name, false
		}
	}
	return "", true
}

// ssdGloballyOKLocked re-verifies every SSD set against every user;
// used after hierarchy edits which can extend authorized sets.
func (s *Store) ssdGloballyOKLocked() (string, bool) {
	for name, set := range s.ssd {
		for u := range s.users {
			if s.countAuthorizedInLocked(u, set) >= set.N {
				return name, false
			}
		}
	}
	return "", true
}

// CheckSSDAssign is the predicate form of the SSD assignment check: it
// reports whether assigning r to u keeps every SSD set satisfied (the
// condition an administrative OWTE rule evaluates).
func (s *Store) CheckSSDAssign(u UserID, r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.users[u]; !ok {
		return false
	}
	if _, ok := s.roles[r]; !ok {
		return false
	}
	_, ok := s.ssdViolationLocked(u, r)
	return ok
}

// CheckDynamicSoD is the paper's checkDynamicSoDSet(user, role): it
// reports whether adding role r to the session's active role set keeps
// every DSD set satisfied.
func (s *Store) CheckDynamicSoD(sid SessionID, r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return false
	}
	if _, ok := s.roles[r]; !ok {
		return false
	}
	return s.dsdSatisfiedLocked(sess, r)
}

func (s *Store) dsdSatisfiedLocked(sess *sessionState, r RoleID) bool {
	if len(s.dsd) == 0 {
		return true
	}
	covered := roleSet{}
	for ar := range sess.active {
		for j := range s.juniorsClosureLocked(ar) {
			covered.add(j)
		}
	}
	for j := range s.juniorsClosureLocked(r) {
		covered.add(j)
	}
	for _, set := range s.dsd {
		n := 0
		for _, m := range set.Roles {
			if covered.has(m) {
				n++
			}
		}
		if n >= set.N {
			return false
		}
	}
	return true
}
