package rbac

import (
	"fmt"
)

// CheckInvariants verifies the model's global consistency conditions and
// returns every violation found (nil when consistent). It is used by
// property-based tests — after any sequence of successful operations the
// store must stay consistent — and exposed so operators can audit a
// running system.
//
// Invariants checked:
//
//  1. Referential integrity: assignments, sessions and SoD sets
//     reference existing users and roles.
//  2. Active roles are a subset of the session owner's authorized roles.
//  3. Role activation counters equal the number of sessions with the
//     role active.
//  4. The role hierarchy is acyclic.
//  5. Every SSD set holds for every user (over authorized roles).
//  6. Every DSD set holds for every session (over active roles and
//     their junior closures).
//  7. SoD sets are well-formed (2 <= N <= |Roles|).
func (s *Store) CheckInvariants() []error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format+": %w", append(args, ErrInvariant)...))
	}

	// 1 + 2 + 3: users, assignments, sessions.
	activeCounts := make(map[RoleID]int)
	for u, us := range s.users {
		for r := range us.assigned {
			if _, ok := s.roles[r]; !ok {
				fail("user %q assigned to missing role %q", u, r)
			}
		}
		for sid := range us.sessions {
			sess, ok := s.sessions[sid]
			if !ok {
				fail("user %q lists missing session %q", u, sid)
				continue
			}
			if sess.user != u {
				fail("session %q listed by %q but owned by %q", sid, u, sess.user)
			}
		}
	}
	for sid, sess := range s.sessions {
		us, ok := s.users[sess.user]
		if !ok {
			fail("session %q owned by missing user %q", sid, sess.user)
			continue
		}
		if _, listed := us.sessions[sid]; !listed {
			fail("session %q not listed by owner %q", sid, sess.user)
		}
		auth := s.authorizedRolesLocked(sess.user)
		for r := range sess.active {
			if _, ok := s.roles[r]; !ok {
				fail("session %q activates missing role %q", sid, r)
				continue
			}
			activeCounts[r]++
			if !auth.has(r) {
				fail("session %q has %q active but owner %q is not authorized", sid, r, sess.user)
			}
		}
	}
	for r, rs := range s.roles {
		if rs.activeCount != activeCounts[r] {
			fail("role %q activeCount=%d but %d sessions have it active", r, rs.activeCount, activeCounts[r])
		}
		if rs.activeCount < 0 {
			fail("role %q negative activeCount %d", r, rs.activeCount)
		}
		if rs.cardinality != 0 && rs.activeCount > rs.cardinality {
			fail("role %q activeCount %d exceeds cardinality %d", r, rs.activeCount, rs.cardinality)
		}
	}

	// 4: hierarchy symmetry and acyclicity.
	for r, rs := range s.roles {
		for j := range rs.juniors {
			jr, ok := s.roles[j]
			if !ok {
				fail("role %q junior edge to missing role %q", r, j)
				continue
			}
			if !jr.seniors.has(r) {
				fail("asymmetric hierarchy edge %q -> %q", r, j)
			}
		}
	}
	if cyc := s.findCycleLocked(); cyc != "" {
		fail("hierarchy cycle through %q", cyc)
	}

	// 5 + 7: SSD.
	for name, set := range s.ssd {
		if err := s.validateSoDLocked(*set); err != nil {
			fail("SSD set %q malformed: %v", name, err)
			continue
		}
		for u := range s.users {
			if n := s.countAuthorizedInLocked(u, set); n >= set.N {
				fail("SSD set %q violated: user %q authorized for %d of %v", name, u, n, set.Roles)
			}
		}
	}
	// 6 + 7: DSD.
	for name, set := range s.dsd {
		if err := s.validateSoDLocked(*set); err != nil {
			fail("DSD set %q malformed: %v", name, err)
			continue
		}
		for sid, sess := range s.sessions {
			if n := s.countActiveInLocked(sess, set); n >= set.N {
				fail("DSD set %q violated: session %q has %d of %v active", name, sid, n, set.Roles)
			}
		}
	}
	return errs
}

// findCycleLocked returns a role on a hierarchy cycle, or "" if acyclic.
func (s *Store) findCycleLocked() RoleID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[RoleID]int, len(s.roles))
	var visit func(RoleID) RoleID
	visit = func(r RoleID) RoleID {
		color[r] = gray
		for j := range s.roles[r].juniors {
			switch color[j] {
			case gray:
				return j
			case white:
				if c := visit(j); c != "" {
					return c
				}
			}
		}
		color[r] = black
		return ""
	}
	for r := range s.roles {
		if color[r] == white {
			if c := visit(r); c != "" {
				return c
			}
		}
	}
	return ""
}
