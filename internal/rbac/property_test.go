package rbac

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// The central safety property of the model: no sequence of API calls —
// whether they succeed or fail — may leave the store violating its
// invariants. Raw mutators are excluded (they exist precisely to skip
// checks and are driven by the rule layer, which performs the checks as
// conditions first).

// randomOps drives n pseudo-random operations against s.
func randomOps(s *Store, rng *rand.Rand, n int) {
	users := []UserID{"u0", "u1", "u2", "u3"}
	roles := []RoleID{"r0", "r1", "r2", "r3", "r4", "r5"}
	var sessions []SessionID
	perm := func() Permission {
		return Permission{
			Operation: fmt.Sprintf("op%d", rng.Intn(3)),
			Object:    fmt.Sprintf("obj%d", rng.Intn(3)),
		}
	}
	for i := 0; i < n; i++ {
		u := users[rng.Intn(len(users))]
		r := roles[rng.Intn(len(roles))]
		r2 := roles[rng.Intn(len(roles))]
		switch rng.Intn(16) {
		case 0:
			_ = s.AddUser(u)
		case 1:
			_ = s.AddRole(r)
		case 2:
			_ = s.AssignUser(u, r)
		case 3:
			_ = s.DeassignUser(u, r)
		case 4:
			_ = s.AddInheritance(r, r2)
		case 5:
			_ = s.DeleteInheritance(r, r2)
		case 6:
			_ = s.GrantPermission(r, perm())
		case 7:
			_ = s.RevokePermission(r, perm())
		case 8:
			if sid, err := s.CreateSession(u); err == nil {
				sessions = append(sessions, sid)
			}
		case 9:
			if len(sessions) > 0 {
				sid := sessions[rng.Intn(len(sessions))]
				if owner, err := s.SessionUser(sid); err == nil {
					_ = s.AddActiveRole(owner, sid, r)
				}
			}
		case 10:
			if len(sessions) > 0 {
				sid := sessions[rng.Intn(len(sessions))]
				if owner, err := s.SessionUser(sid); err == nil {
					_ = s.DropActiveRole(owner, sid, r)
				}
			}
		case 11:
			if len(sessions) > 0 {
				_ = s.DeleteSession(sessions[rng.Intn(len(sessions))])
			}
		case 12:
			_ = s.CreateSSD(SoDSet{
				Name:  fmt.Sprintf("ssd%d", rng.Intn(3)),
				Roles: []RoleID{r, r2},
				N:     2,
			})
		case 13:
			_ = s.CreateDSD(SoDSet{
				Name:  fmt.Sprintf("dsd%d", rng.Intn(3)),
				Roles: []RoleID{r, r2},
				N:     2,
			})
		case 14:
			_ = s.DeleteRole(r)
		case 15:
			_ = s.DeleteUser(u)
		}
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		s := NewStore()
		randomOps(s, rand.New(rand.NewSource(seed)), 400)
		errs := s.CheckInvariants()
		if len(errs) != 0 {
			t.Logf("seed %d: %v", seed, errs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CheckAccess never grants a permission the session owner is
// not authorized for through some authorized role.
func TestCheckAccessSoundness(t *testing.T) {
	f := func(seed int64) bool {
		s := NewStore()
		rng := rand.New(rand.NewSource(seed))
		randomOps(s, rng, 300)
		for _, sid := range s.Sessions() {
			owner, err := s.SessionUser(sid)
			if err != nil {
				return false
			}
			userPerms, err := s.UserPermissions(owner)
			if err != nil {
				return false
			}
			allowed := make(map[Permission]bool, len(userPerms))
			for _, p := range userPerms {
				allowed[p] = true
			}
			for op := 0; op < 3; op++ {
				for obj := 0; obj < 3; obj++ {
					p := Permission{Operation: fmt.Sprintf("op%d", op), Object: fmt.Sprintf("obj%d", obj)}
					if s.CheckAccess(sid, p) && !allowed[p] {
						t.Logf("seed %d: session %s granted %v beyond owner's permissions", seed, sid, p)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: session permissions are always a subset of the owner's user
// permissions (active roles ⊆ authorized roles).
func TestSessionPermissionsSubset(t *testing.T) {
	f := func(seed int64) bool {
		s := NewStore()
		randomOps(s, rand.New(rand.NewSource(seed)), 300)
		for _, sid := range s.Sessions() {
			owner, _ := s.SessionUser(sid)
			up, err := s.UserPermissions(owner)
			if err != nil {
				return false
			}
			set := make(map[Permission]bool, len(up))
			for _, p := range up {
				set[p] = true
			}
			sp, err := s.SessionPermissions(sid)
			if err != nil {
				return false
			}
			for _, p := range sp {
				if !set[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	// Sanity-check the checker itself: corrupt internal state and make
	// sure it is reported.
	s := NewStore()
	mustOK(t, s.AddRole("a"))
	mustOK(t, s.AddRole("b"))
	// Build an asymmetric edge by hand.
	s.mu.Lock()
	s.roles["a"].juniors.add("b")
	s.mu.Unlock()
	if errs := s.CheckInvariants(); len(errs) == 0 {
		t.Fatal("asymmetric hierarchy edge not detected")
	}
	// Fix symmetry but corrupt the activeCount.
	s.mu.Lock()
	s.roles["b"].seniors.add("a")
	s.roles["b"].activeCount = 7
	s.mu.Unlock()
	if errs := s.CheckInvariants(); len(errs) == 0 {
		t.Fatal("activeCount drift not detected")
	}
}

func TestInvariantCheckerDetectsCycle(t *testing.T) {
	s := NewStore()
	mustOK(t, s.AddRole("a"))
	mustOK(t, s.AddRole("b"))
	s.mu.Lock()
	s.roles["a"].juniors.add("b")
	s.roles["b"].seniors.add("a")
	s.roles["b"].juniors.add("a")
	s.roles["a"].seniors.add("b")
	s.mu.Unlock()
	if errs := s.CheckInvariants(); len(errs) == 0 {
		t.Fatal("hierarchy cycle not detected")
	}
}
