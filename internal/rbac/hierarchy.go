package rbac

import "fmt"

// General role hierarchies (ANSI 359-2004 §6.2): a partial order where
// senior roles acquire the permissions of their juniors and junior roles
// acquire the user membership of their seniors.

// AddInheritance makes senior inherit from junior (senior >= junior),
// rejecting self-edges, duplicates, cycles, and — when the edge would
// make a user authorized for an SSD-conflicting role set — static SoD
// violations.
func (s *Store) AddInheritance(senior, junior RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.roles[senior]
	if !ok {
		return fmt.Errorf("role %q: %w", senior, ErrNotFound)
	}
	jr, ok := s.roles[junior]
	if !ok {
		return fmt.Errorf("role %q: %w", junior, ErrNotFound)
	}
	if senior == junior {
		return fmt.Errorf("self-inheritance on %q: %w", senior, ErrCycle)
	}
	if sr.juniors.has(junior) {
		return fmt.Errorf("inheritance %q -> %q: %w", senior, junior, ErrExists)
	}
	// A cycle would exist iff senior is already (transitively) junior to
	// junior.
	if s.inClosureLocked(junior, senior, func(r *roleState) roleSet { return r.juniors }) {
		return fmt.Errorf("inheritance %q -> %q: %w", senior, junior, ErrCycle)
	}
	// Adding the edge extends every senior-side user's authorized role
	// set by junior's junior-closure; verify SSD still holds.
	sr.juniors.add(junior)
	jr.seniors.add(senior)
	if name, ok := s.ssdGloballyOKLocked(); !ok {
		sr.juniors.del(junior)
		jr.seniors.del(senior)
		return fmt.Errorf("inheritance %q -> %q violates SSD set %q: %w", senior, junior, name, ErrSSD)
	}
	s.publishPolicyLocked()
	return nil
}

// DeleteInheritance removes the immediate edge senior -> junior.
func (s *Store) DeleteInheritance(senior, junior RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.roles[senior]
	if !ok {
		return fmt.Errorf("role %q: %w", senior, ErrNotFound)
	}
	if _, ok := s.roles[junior]; !ok {
		return fmt.Errorf("role %q: %w", junior, ErrNotFound)
	}
	if !sr.juniors.has(junior) {
		return fmt.Errorf("inheritance %q -> %q: %w", senior, junior, ErrNotFound)
	}
	sr.juniors.del(junior)
	s.roles[junior].seniors.del(senior)
	// Authorized sets shrank; activations made through the removed edge
	// must not survive it.
	s.pruneUnauthorizedAllLocked()
	s.publishPolicyLocked()
	return nil
}

// inClosureLocked reports whether target is reachable from start via the
// step function (juniors for downward closure, seniors for upward).
func (s *Store) inClosureLocked(start, target RoleID, step func(*roleState) roleSet) bool {
	if start == target {
		return true
	}
	seen := roleSet{start: struct{}{}}
	stack := []RoleID{start}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range step(s.roles[r]) {
			if next == target {
				return true
			}
			if !seen.has(next) {
				seen.add(next)
				stack = append(stack, next)
			}
		}
	}
	return false
}

// closureLocked returns start plus everything reachable via step.
func (s *Store) closureLocked(start RoleID, step func(*roleState) roleSet) roleSet {
	out := roleSet{start: struct{}{}}
	stack := []RoleID{start}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range step(s.roles[r]) {
			if !out.has(next) {
				out.add(next)
				stack = append(stack, next)
			}
		}
	}
	return out
}

// juniorsClosureLocked returns r and all roles r inherits from.
func (s *Store) juniorsClosureLocked(r RoleID) roleSet {
	return s.closureLocked(r, func(st *roleState) roleSet { return st.juniors })
}

// seniorsClosureLocked returns r and all roles that inherit from r.
func (s *Store) seniorsClosureLocked(r RoleID) roleSet {
	return s.closureLocked(r, func(st *roleState) roleSet { return st.seniors })
}

// authorizedRolesLocked returns the authorized role set of u: every role
// some assigned role is senior to (including the assigned roles).
func (s *Store) authorizedRolesLocked(u UserID) roleSet {
	us, ok := s.users[u]
	if !ok {
		return roleSet{}
	}
	out := roleSet{}
	for r := range us.assigned {
		for j := range s.juniorsClosureLocked(r) {
			out.add(j)
		}
	}
	return out
}

// ImmediateJuniors returns the direct juniors of r, sorted.
func (s *Store) ImmediateJuniors(r RoleID) ([]RoleID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs, ok := s.roles[r]
	if !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	return rs.juniors.sorted(), nil
}

// ImmediateSeniors returns the direct seniors of r, sorted.
func (s *Store) ImmediateSeniors(r RoleID) ([]RoleID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs, ok := s.roles[r]
	if !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	return rs.seniors.sorted(), nil
}

// Descendants returns r plus every role r inherits from (junior
// closure), sorted.
func (s *Store) Descendants(r RoleID) ([]RoleID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.roles[r]; !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	return s.juniorsClosureLocked(r).sorted(), nil
}

// Ascendants returns r plus every role that inherits from r (senior
// closure), sorted.
func (s *Store) Ascendants(r RoleID) ([]RoleID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.roles[r]; !ok {
		return nil, fmt.Errorf("role %q: %w", r, ErrNotFound)
	}
	return s.seniorsClosureLocked(r).sorted(), nil
}
