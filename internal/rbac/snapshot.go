package rbac

import (
	"fmt"
	"sort"
)

// Snapshot is a point-in-time, serialization-friendly copy of the whole
// RBAC database. Field order and slice sorting are deterministic so
// snapshots diff and hash stably.
type Snapshot struct {
	Users      []UserSnapshot    `json:"users"`
	Roles      []RoleSnapshot    `json:"roles"`
	Sessions   []SessionSnapshot `json:"sessions"`
	SSD        []SoDSet          `json:"ssd,omitempty"`
	DSD        []SoDSet          `json:"dsd,omitempty"`
	SessionSeq int               `json:"sessionSeq"`
}

// UserSnapshot serializes one user.
type UserSnapshot struct {
	Name           UserID   `json:"name"`
	Assigned       []RoleID `json:"assigned,omitempty"`
	Locked         bool     `json:"locked,omitempty"`
	MaxActiveRoles int      `json:"maxActiveRoles,omitempty"`
}

// RoleSnapshot serializes one role.
type RoleSnapshot struct {
	Name        RoleID       `json:"name"`
	Permissions []Permission `json:"permissions,omitempty"`
	Juniors     []RoleID     `json:"juniors,omitempty"`
	Enabled     bool         `json:"enabled"`
	Cardinality int          `json:"cardinality,omitempty"`
}

// SessionSnapshot serializes one live session.
type SessionSnapshot struct {
	ID     SessionID `json:"id"`
	User   UserID    `json:"user"`
	Active []RoleID  `json:"active,omitempty"`
}

// Snapshot copies the store's full state.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := Snapshot{SessionSeq: s.sessionSeq}

	for u, us := range s.users {
		snap.Users = append(snap.Users, UserSnapshot{
			Name:           u,
			Assigned:       us.assigned.sorted(),
			Locked:         us.locked,
			MaxActiveRoles: s.maxActiveRoles[u],
		})
	}
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].Name < snap.Users[j].Name })

	for r, rs := range s.roles {
		snap.Roles = append(snap.Roles, RoleSnapshot{
			Name:        r,
			Permissions: sortPerms(rs.perms),
			Juniors:     rs.juniors.sorted(),
			Enabled:     rs.enabled,
			Cardinality: rs.cardinality,
		})
	}
	sort.Slice(snap.Roles, func(i, j int) bool { return snap.Roles[i].Name < snap.Roles[j].Name })

	for sid, sess := range s.sessions {
		snap.Sessions = append(snap.Sessions, SessionSnapshot{
			ID: sid, User: sess.user, Active: sess.active.sorted(),
		})
	}
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].ID < snap.Sessions[j].ID })

	snap.SSD = copySets(s.ssd)
	snap.DSD = copySets(s.dsd)
	return snap
}

// Restore replaces the store's state with the snapshot's. On error the
// store is left empty (the snapshot was internally inconsistent).
func (s *Store) Restore(snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// State is replaced wholesale on every path out of here — success or
	// the fail() cleanup — so republish unconditionally.
	defer s.publishPolicyLocked()
	s.users = make(map[UserID]*userState, len(snap.Users))
	s.roles = make(map[RoleID]*roleState, len(snap.Roles))
	s.sessions = make(map[SessionID]*sessionState, len(snap.Sessions))
	s.ssd = make(map[string]*SoDSet, len(snap.SSD))
	s.dsd = make(map[string]*SoDSet, len(snap.DSD))
	s.maxActiveRoles = make(map[UserID]int)
	s.sessionSeq = snap.SessionSeq

	fail := func(format string, args ...any) error {
		// Leave a clean store rather than a half-restored one.
		s.users = make(map[UserID]*userState)
		s.roles = make(map[RoleID]*roleState)
		s.sessions = make(map[SessionID]*sessionState)
		s.ssd = make(map[string]*SoDSet)
		s.dsd = make(map[string]*SoDSet)
		return fmt.Errorf("rbac: restore: "+format, args...)
	}

	for _, r := range snap.Roles {
		if _, dup := s.roles[r.Name]; dup {
			return fail("duplicate role %q", r.Name)
		}
		rs := &roleState{
			perms:       make(map[Permission]struct{}, len(r.Permissions)),
			juniors:     roleSet{},
			seniors:     roleSet{},
			enabled:     r.Enabled,
			cardinality: r.Cardinality,
		}
		for _, p := range r.Permissions {
			rs.perms[p] = struct{}{}
		}
		s.roles[r.Name] = rs
	}
	for _, r := range snap.Roles {
		for _, j := range r.Juniors {
			jr, ok := s.roles[j]
			if !ok {
				return fail("role %q lists unknown junior %q", r.Name, j)
			}
			s.roles[r.Name].juniors.add(j)
			jr.seniors.add(r.Name)
		}
	}
	for _, u := range snap.Users {
		if _, dup := s.users[u.Name]; dup {
			return fail("duplicate user %q", u.Name)
		}
		us := &userState{assigned: roleSet{}, sessions: map[SessionID]struct{}{}, locked: u.Locked}
		for _, r := range u.Assigned {
			if _, ok := s.roles[r]; !ok {
				return fail("user %q assigned to unknown role %q", u.Name, r)
			}
			us.assigned.add(r)
		}
		s.users[u.Name] = us
		if u.MaxActiveRoles > 0 {
			s.maxActiveRoles[u.Name] = u.MaxActiveRoles
		}
	}
	for _, sess := range snap.Sessions {
		us, ok := s.users[sess.User]
		if !ok {
			return fail("session %q owned by unknown user %q", sess.ID, sess.User)
		}
		st := &sessionState{user: sess.User, active: roleSet{}}
		for _, r := range sess.Active {
			rs, ok := s.roles[r]
			if !ok {
				return fail("session %q activates unknown role %q", sess.ID, r)
			}
			st.active.add(r)
			rs.activeCount++
		}
		s.sessions[sess.ID] = st
		us.sessions[sess.ID] = struct{}{}
	}
	for _, set := range snap.SSD {
		cp := set
		cp.Roles = append([]RoleID(nil), set.Roles...)
		if err := s.validateSoDLocked(cp); err != nil {
			return fail("SSD %q: %v", set.Name, err)
		}
		s.ssd[set.Name] = &cp
	}
	for _, set := range snap.DSD {
		cp := set
		cp.Roles = append([]RoleID(nil), set.Roles...)
		if err := s.validateSoDLocked(cp); err != nil {
			return fail("DSD %q: %v", set.Name, err)
		}
		s.dsd[set.Name] = &cp
	}
	return nil
}
