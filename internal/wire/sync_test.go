package wire

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// SYNC payload codecs

func TestSyncRequestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		replica string
		applied uint64
	}{
		{"replica-1", 0},
		{"eu-west", 1<<64 - 1},
		{"", 7}, // empty name is a server-side policy error, not a codec error
	} {
		b := AppendSyncRequest(nil, tc.replica, tc.applied)
		r2, a2, err := ConsumeSyncRequest(b)
		if err != nil || r2 != tc.replica || a2 != tc.applied {
			t.Fatalf("round trip (%q %d) -> (%q %d, %v)", tc.replica, tc.applied, r2, a2, err)
		}
	}
	if _, _, err := ConsumeSyncRequest(AppendSyncRequest(nil, "r", 9)[:4]); err == nil {
		t.Fatal("truncated sync request decoded")
	}
	if _, _, err := ConsumeSyncRequest(append(AppendSyncRequest(nil, "r", 9), 0)); err == nil {
		t.Fatal("sync request with trailing bytes decoded")
	}
}

func TestSyncStateRoundTrip(t *testing.T) {
	st := SyncState{Epoch: 42, Data: []byte("snapshot payload")}
	for i := range st.Hash {
		st.Hash[i] = byte(i * 7)
	}
	b := AppendSyncState(nil, st)
	got, err := ConsumeSyncState(b)
	if err != nil || got.Epoch != st.Epoch || got.Hash != st.Hash || !bytes.Equal(got.Data, st.Data) {
		t.Fatalf("round trip -> (%+v, %v)", got, err)
	}
	// The decoded Data must be a copy, not a view of the decode buffer.
	b[len(b)-1] ^= 0xFF
	if !bytes.Equal(got.Data, st.Data) {
		t.Fatal("decoded sync data aliases the input buffer")
	}

	// Ack shape: current epoch, zero hash, no data.
	ack, err := ConsumeSyncState(AppendSyncState(nil, SyncState{Epoch: 9}))
	if err != nil || ack.Epoch != 9 || len(ack.Data) != 0 {
		t.Fatalf("ack round trip -> (%+v, %v)", ack, err)
	}

	for _, bad := range [][]byte{
		b[:4],                                // truncated epoch
		b[:8+SyncHashSize-1],                 // truncated hash
		b[:len(b)-3],                         // truncated data
		append(append([]byte(nil), b...), 1), // trailing bytes
	} {
		if _, err := ConsumeSyncState(bad); err == nil {
			t.Fatalf("malformed sync state (%d bytes) decoded", len(bad))
		}
	}
}

// ---------------------------------------------------------------------------
// SYNC over a live server

// syncTestBackend upgrades pushTestBackend to a SyncBackend plus
// ReplicaTracker, recording every request and disconnect.
type syncTestBackend struct {
	*pushTestBackend

	mu           sync.Mutex
	requests     []string
	applieds     []uint64
	disconnected []string
	state        SyncState
	err          error
}

func newSyncTestBackend() *syncTestBackend {
	return &syncTestBackend{pushTestBackend: newPushTestBackend()}
}

func (sb *syncTestBackend) SyncSnapshot(replica string, applied uint64) (SyncState, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.requests = append(sb.requests, replica)
	sb.applieds = append(sb.applieds, applied)
	return sb.state, sb.err
}

func (sb *syncTestBackend) ReplicaDisconnected(replica string) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.disconnected = append(sb.disconnected, replica)
}

func TestSyncOverWire(t *testing.T) {
	sb := newSyncTestBackend()
	sb.state = SyncState{Epoch: 12, Data: []byte(`{"version":1}`)}
	sb.state.Hash[0] = 0xAB
	_, addr := startPushServer(t, sb, nil)

	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}

	st, err := cl.Sync("site-a", 3)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st.Epoch != 12 || st.Hash != sb.state.Hash || !bytes.Equal(st.Data, sb.state.Data) {
		t.Fatalf("Sync = %+v, want %+v", st, sb.state)
	}
	sb.mu.Lock()
	if len(sb.requests) != 1 || sb.requests[0] != "site-a" || sb.applieds[0] != 3 {
		t.Fatalf("backend saw requests %v applieds %v", sb.requests, sb.applieds)
	}
	sb.mu.Unlock()

	// An empty replica name is rejected without dropping the connection.
	if _, err := cl.Sync("", 0); err == nil {
		t.Fatal("empty replica name accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection died after rejected sync: %v", err)
	}

	// Closing the connection reports the replica name the conn last used.
	cl.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		sb.mu.Lock()
		n := len(sb.disconnected)
		sb.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ReplicaDisconnected never called")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sb.mu.Lock()
	if sb.disconnected[0] != "site-a" {
		t.Fatalf("disconnected %v, want [site-a]", sb.disconnected)
	}
	sb.mu.Unlock()
}

func TestSyncBackendError(t *testing.T) {
	sb := newSyncTestBackend()
	sb.err = errors.New("export failed")
	_, addr := startPushServer(t, sb, nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Sync("site-a", 0); err == nil {
		t.Fatal("backend error not surfaced")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection died after backend error: %v", err)
	}
}

func TestSyncUnsupportedBackend(t *testing.T) {
	// A backend without SyncSnapshot (a replica's own wire listener)
	// answers SYNC with ERROR(unsupported) and keeps the connection.
	_, addr := startPushServer(t, newPushTestBackend(), nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	_, err = cl.Sync("site-a", 0)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != ErrCodeUnsupported {
		t.Fatalf("Sync on plain backend = %v, want unsupported remote error", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection died after unsupported sync: %v", err)
	}
}
