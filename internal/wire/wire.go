// Package wire implements the pipelined binary decision protocol: a
// dependency-free, length-prefixed frame format that carries
// authorization checks between an enforcement point and the engine at a
// fraction of the HTTP/JSON cost. The engine's in-process check path
// runs in nanoseconds (DESIGN §5.4); this package is the transport that
// keeps up with it — and the substrate internal/replicate's
// leader/replica policy distribution rides on.
//
// # Frame layout
//
// Every message is one frame: a fixed 12-byte header followed by an
// opcode-specific payload. All integers are big-endian.
//
//	offset  size  field
//	0       2     magic 0xAC 0x77
//	2       1     protocol version (currently 1)
//	3       1     opcode (response frames set bit 0x80)
//	4       4     request id (chosen by the requester, echoed verbatim)
//	8       4     payload length
//	12      n     payload
//
// Strings inside payloads are uvarint-length-prefixed UTF-8. A CHECK
// request carries (session, operation, object); the server resolves the
// session's user itself, exactly like GET /v1/check. A CHECK_BATCH
// request carries a uvarint count then that many triples; its response
// carries the count then one verdict byte per check, in request order.
// PING echoes its payload. POLICY_VERSION responds with the 8-byte
// policy snapshot epoch. SUBSCRIBE (empty payload) registers the
// connection for epoch pushes and responds with the current 8-byte push
// epoch. EPOCH_PUSH is the one server-originated frame: unsolicited,
// request id 0, RespFlag clear, payload the new 8-byte push epoch —
// sent to every subscribed connection whenever a policy- or
// session-grade change invalidates cached verdicts. SYNC is the
// replication pull: the request carries the replica's name and its
// applied epoch, the response the leader's epoch, a 32-byte SHA-256 of
// the snapshot payload, and the uvarint-length-prefixed payload itself
// (the serialized policy source + compiled state); a replica verifies
// the hash before installing anything, so a truncated or corrupted
// transfer is structurally un-appliable. ERROR (0xFF, response-only)
// carries a code byte and a message string, tagged with the failing
// request's id.
//
// CHECK and CHECK_BATCH requests may additionally set the TRACE bit
// (0x40) on the opcode byte; the payload is then prefixed with a raw
// 16-byte trace id, and the server — when tracing is configured —
// retains the decision's cascade trace under that id for later
// retrieval (/v1/traces/{id}). The response echoes the flagged opcode
// with RespFlag set and is otherwise shaped exactly like the unflagged
// response: the trace stays server-side. Within a traced CHECK_BATCH
// only the first tuple is traced; the remainder keeps the batch-native
// path.
//
// A CHECK request may instead set the CACHE bit (0x20): the request
// payload is unchanged, but the response verdict byte becomes a flag
// pair — bit 0 allow, bit 1 cacheable — where cacheable means the
// verdict depends only on the published policy/session state tagged by
// the push epoch (the fastpath CA1 classification), so an embedded
// client cache may serve it locally until the next EPOCH_PUSH.
//
// # Versioning rules
//
// The magic pair and version byte are validated on every frame. A
// reader that sees an unknown version (or bad magic, or a frame larger
// than its configured maximum) cannot resynchronize a byte stream it no
// longer understands, so it must drop the connection; version
// negotiation is "reconnect speaking an older version". Adding opcodes
// is backward compatible (unknown opcodes get an ERROR response and the
// connection survives); changing the header or an existing payload
// shape requires a version bump.
//
// # Pipelining and backpressure
//
// Connections are full-duplex pipes of frames: a requester may keep
// many request ids in flight and responses may arrive in any order —
// the request id, not arrival order, correlates them. The server bounds
// the damage a fast or hostile client can do with three controls:
// a per-connection in-flight cap (the reader stops consuming frames
// until responses drain, pushing back through TCP), a read deadline
// covering each whole frame (a trickling writer is disconnected), and
// a write deadline per flush.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	magic0 = 0xAC
	magic1 = 0x77

	// Version is the protocol revision this package speaks. Frames
	// carrying any other version are rejected and the connection dropped.
	Version = 1

	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 12
)

// Opcodes. Response frames carry the request opcode with RespFlag set;
// OpError is response-only.
const (
	// OpCheck is one access check: payload (session, operation, object),
	// response payload a single verdict byte (1 allow, 0 deny).
	OpCheck byte = 0x01
	// OpCheckBatch is many access checks in one frame: payload a uvarint
	// count then count triples, response the count then one verdict byte
	// per check in request order.
	OpCheckBatch byte = 0x02
	// OpPing is a liveness and latency probe; the payload is echoed.
	OpPing byte = 0x03
	// OpPolicyVersion asks for the policy snapshot epoch; the response
	// payload is the epoch as 8 big-endian bytes.
	OpPolicyVersion byte = 0x04
	// OpSubscribe registers the connection for epoch pushes: empty
	// request payload, response the current push epoch as 8 big-endian
	// bytes. The registration lives as long as the connection.
	OpSubscribe byte = 0x05
	// OpEpochPush is the unsolicited server-to-client push a subscribed
	// connection receives on every epoch bump: request id 0, RespFlag
	// clear, payload the new push epoch as 8 big-endian bytes.
	OpEpochPush byte = 0x06
	// OpSync pulls a policy-sync snapshot from a leader: request payload
	// the replica's name then its applied epoch, response payload the
	// leader's epoch, the snapshot's SHA-256, and the length-prefixed
	// snapshot bytes. Answered UNSUPPORTED by non-leader backends.
	OpSync byte = 0x07

	// RespFlag marks a frame as the response to the request opcode in
	// the low bits.
	RespFlag byte = 0x80

	// TraceFlag, set on a CHECK or CHECK_BATCH request opcode, prefixes
	// the payload with a raw 16-byte trace id the server records the
	// decision's cascade trace under. Adding the flag is an additive
	// protocol change: servers predating it answer flagged opcodes with
	// an UnknownOp ERROR and the connection survives.
	TraceFlag byte = 0x40

	// CacheFlag, set on a CHECK request opcode, widens the response
	// verdict byte to a flag pair: bit 0 allow, bit 1 cacheable (safe
	// for an epoch-tagged client cache until the next EPOCH_PUSH). Like
	// TraceFlag this is additive: servers predating it answer with an
	// UnknownOp ERROR and the connection survives.
	CacheFlag byte = 0x20

	// OpError is the response to a request the server could not serve:
	// payload one code byte then a message string.
	OpError byte = 0xFF
)

// TraceIDSize is the raw trace-id length a TraceFlag payload prefix
// carries.
const TraceIDSize = 16

// Error codes carried by OpError payloads.
const (
	// ErrCodeBadRequest: the request payload did not decode.
	ErrCodeBadRequest byte = 1
	// ErrCodeUnknownOp: the request opcode is not known to this server.
	ErrCodeUnknownOp byte = 2
	// ErrCodeUnsupported: the opcode is known but this server's backend
	// cannot serve it (e.g. SUBSCRIBE without a push-capable backend).
	ErrCodeUnsupported byte = 3
	// ErrCodeSubscribeLimit: the server's subscriber cap is reached.
	ErrCodeSubscribeLimit byte = 4
)

// Limits.
const (
	// DefaultMaxFrame bounds a frame (header + payload) unless
	// configured otherwise.
	DefaultMaxFrame = 1 << 20
	// MaxBatch bounds the check count of one CHECK_BATCH frame.
	MaxBatch = 8192
	// maxStringLen bounds one payload string; identifiers are short.
	maxStringLen = 1 << 16

	// MaxSyncData bounds the snapshot payload of one SYNC response —
	// well past DefaultMaxFrame, because a full policy + session state
	// snapshot legitimately outgrows a check frame. Sync endpoints must
	// therefore configure their frame limit to at least
	// MaxSyncData + SyncHashSize + HeaderSize + some slack.
	MaxSyncData = 1 << 26

	// SyncHashSize is the content-hash length of a SYNC response
	// (SHA-256).
	SyncHashSize = 32
)

// Codec errors. Decoder errors other than io errors mean the stream is
// unusable and the connection must be dropped; payload Consume errors
// condemn only the one frame.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrVersion       = errors.New("wire: unsupported protocol version")
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadPayload    = errors.New("wire: malformed payload")
)

// OpName returns the stable label of an opcode (response, trace and
// cache flags ignored) for metrics and logs.
func OpName(op byte) string {
	if op == OpError {
		return "error"
	}
	switch op &^ (RespFlag | TraceFlag | CacheFlag) {
	case OpCheck:
		return "check"
	case OpCheckBatch:
		return "check_batch"
	case OpPing:
		return "ping"
	case OpPolicyVersion:
		return "policy_version"
	case OpSubscribe:
		return "subscribe"
	case OpEpochPush:
		return "epoch_push"
	case OpSync:
		return "sync"
	}
	return "unknown"
}

// Frame is one decoded protocol frame. Payload aliases the Decoder's
// internal buffer and is valid only until the next call to Next.
type Frame struct {
	Op      byte
	ID      uint32
	Payload []byte
}

// AppendFrame appends a complete frame (header + payload) to dst and
// returns the extended slice.
func AppendFrame(dst []byte, op byte, id uint32, payload []byte) []byte {
	dst = append(dst, magic0, magic1, Version, op)
	dst = binary.BigEndian.AppendUint32(dst, id)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// Decoder reads frames from a byte stream, reusing one payload buffer
// across frames (the returned Frame.Payload is only valid until the
// next call).
type Decoder struct {
	r   io.Reader
	max int
	buf []byte
	hdr [HeaderSize]byte
}

// NewDecoder wraps r with a frame decoder enforcing maxFrame (<= 0
// means DefaultMaxFrame). r should be buffered by the caller if the
// underlying stream is a socket.
func NewDecoder(r io.Reader, maxFrame int) *Decoder {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Decoder{r: r, max: maxFrame}
}

// Next reads and validates one frame. io.EOF is returned only on a
// clean boundary (no partial frame); a frame cut short decodes to
// io.ErrUnexpectedEOF. Any non-io error means the stream is
// desynchronized or hostile and the connection should be closed.
func (d *Decoder) Next() (Frame, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		// ReadFull returns io.EOF only at a clean frame boundary (zero
		// bytes read) and io.ErrUnexpectedEOF for a cut-off header.
		return Frame{}, err
	}
	if d.hdr[0] != magic0 || d.hdr[1] != magic1 {
		return Frame{}, ErrBadMagic
	}
	if d.hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, d.hdr[2], Version)
	}
	n := binary.BigEndian.Uint32(d.hdr[8:12])
	if uint64(n)+HeaderSize > uint64(d.max) {
		return Frame{}, fmt.Errorf("%w: %d payload bytes (max frame %d)", ErrFrameTooLarge, n, d.max)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	buf := d.buf[:n]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{
		Op:      d.hdr[3],
		ID:      binary.BigEndian.Uint32(d.hdr[4:8]),
		Payload: buf,
	}, nil
}

// ---------------------------------------------------------------------------
// Payload codecs

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ConsumeString decodes one length-prefixed string from the front of b
// and returns the remainder.
func ConsumeString(b []byte) (s string, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > maxStringLen {
		return "", nil, ErrBadPayload
	}
	b = b[w:]
	if uint64(len(b)) < n {
		return "", nil, ErrBadPayload
	}
	return string(b[:n]), b[n:], nil
}

// CheckRequest is one access check as carried on the wire.
type CheckRequest struct {
	Session   string
	Operation string
	Object    string
}

// AppendCheck appends a CHECK request payload.
func AppendCheck(dst []byte, session, operation, object string) []byte {
	dst = AppendString(dst, session)
	dst = AppendString(dst, operation)
	return AppendString(dst, object)
}

// ConsumeCheck decodes a CHECK request payload; trailing bytes are an
// error.
func ConsumeCheck(b []byte) (session, operation, object string, err error) {
	if session, b, err = ConsumeString(b); err != nil {
		return "", "", "", err
	}
	if operation, b, err = ConsumeString(b); err != nil {
		return "", "", "", err
	}
	if object, b, err = ConsumeString(b); err != nil {
		return "", "", "", err
	}
	if len(b) != 0 {
		return "", "", "", ErrBadPayload
	}
	return session, operation, object, nil
}

// AppendCheckBatch appends a CHECK_BATCH request payload.
func AppendCheckBatch(dst []byte, reqs []CheckRequest) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(reqs)))
	for _, r := range reqs {
		dst = AppendCheck(dst, r.Session, r.Operation, r.Object)
	}
	return dst
}

// ConsumeCheckBatch decodes a CHECK_BATCH request payload, appending
// the requests to into (reused when capacity allows).
func ConsumeCheckBatch(b []byte, into []CheckRequest) ([]CheckRequest, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > MaxBatch {
		return nil, ErrBadPayload
	}
	b = b[w:]
	reqs := into[:0]
	for i := uint64(0); i < n; i++ {
		var r CheckRequest
		var err error
		if r.Session, b, err = ConsumeString(b); err != nil {
			return nil, err
		}
		if r.Operation, b, err = ConsumeString(b); err != nil {
			return nil, err
		}
		if r.Object, b, err = ConsumeString(b); err != nil {
			return nil, err
		}
		reqs = append(reqs, r)
	}
	if len(b) != 0 {
		return nil, ErrBadPayload
	}
	return reqs, nil
}

// AppendVerdicts appends a CHECK_BATCH response payload: the count then
// one byte per verdict.
func AppendVerdicts(dst []byte, verdicts []bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(verdicts)))
	for _, v := range verdicts {
		if v {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// ConsumeVerdicts decodes a CHECK_BATCH response payload, appending
// the verdicts to into (reused when capacity allows).
func ConsumeVerdicts(b []byte, into []bool) ([]bool, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > MaxBatch {
		return nil, ErrBadPayload
	}
	b = b[w:]
	if uint64(len(b)) != n {
		return nil, ErrBadPayload
	}
	verdicts := into[:0]
	for _, v := range b {
		if v > 1 {
			return nil, ErrBadPayload
		}
		verdicts = append(verdicts, v == 1)
	}
	return verdicts, nil
}

// AppendTraceID appends the raw 16-byte trace-id prefix a TraceFlag
// payload starts with.
func AppendTraceID(dst []byte, tid [TraceIDSize]byte) []byte {
	return append(dst, tid[:]...)
}

// ConsumeTraceID splits the 16-byte trace-id prefix off a TraceFlag
// payload.
func ConsumeTraceID(b []byte) (tid [TraceIDSize]byte, rest []byte, err error) {
	if len(b) < TraceIDSize {
		return tid, nil, ErrBadPayload
	}
	copy(tid[:], b)
	return tid, b[TraceIDSize:], nil
}

// AppendErrorPayload appends an ERROR response payload.
func AppendErrorPayload(dst []byte, code byte, msg string) []byte {
	dst = append(dst, code)
	return AppendString(dst, msg)
}

// ConsumeErrorPayload decodes an ERROR response payload.
func ConsumeErrorPayload(b []byte) (code byte, msg string, err error) {
	if len(b) < 1 {
		return 0, "", ErrBadPayload
	}
	code = b[0]
	msg, rest, err := ConsumeString(b[1:])
	if err != nil {
		return 0, "", err
	}
	if len(rest) != 0 {
		return 0, "", ErrBadPayload
	}
	return code, msg, nil
}

// AppendEpoch appends an 8-byte epoch payload, as carried by
// POLICY_VERSION and SUBSCRIBE responses and EPOCH_PUSH frames.
func AppendEpoch(dst []byte, epoch uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, epoch)
}

// ConsumeEpoch decodes an 8-byte epoch payload.
func ConsumeEpoch(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, ErrBadPayload
	}
	return binary.BigEndian.Uint64(b), nil
}

// Cache-verdict flag bits, as carried in the one-byte response payload
// of a CacheFlag CHECK.
const (
	cacheVerdictAllow     byte = 1 << 0
	cacheVerdictCacheable byte = 1 << 1
)

// AppendCacheVerdict appends a CacheFlag CHECK response payload: one
// byte with bit 0 allow, bit 1 cacheable.
func AppendCacheVerdict(dst []byte, allowed, cacheable bool) []byte {
	var v byte
	if allowed {
		v |= cacheVerdictAllow
	}
	if cacheable {
		v |= cacheVerdictCacheable
	}
	return append(dst, v)
}

// ConsumeCacheVerdict decodes a CacheFlag CHECK response payload.
func ConsumeCacheVerdict(b []byte) (allowed, cacheable bool, err error) {
	if len(b) != 1 || b[0] > cacheVerdictAllow|cacheVerdictCacheable {
		return false, false, ErrBadPayload
	}
	return b[0]&cacheVerdictAllow != 0, b[0]&cacheVerdictCacheable != 0, nil
}

// AppendSyncRequest appends a SYNC request payload: the replica's name
// and the epoch it has applied (0 when it has never synced).
func AppendSyncRequest(dst []byte, replica string, applied uint64) []byte {
	dst = AppendString(dst, replica)
	return AppendEpoch(dst, applied)
}

// ConsumeSyncRequest decodes a SYNC request payload; trailing bytes are
// an error.
func ConsumeSyncRequest(b []byte) (replica string, applied uint64, err error) {
	replica, b, err = ConsumeString(b)
	if err != nil {
		return "", 0, err
	}
	applied, err = ConsumeEpoch(b)
	if err != nil {
		return "", 0, err
	}
	return replica, applied, nil
}

// SyncState is a SYNC response: one policy-sync snapshot pinned to the
// push epoch it was exported at, content-addressed by its SHA-256.
type SyncState struct {
	Epoch uint64
	Hash  [SyncHashSize]byte
	Data  []byte
}

// AppendSyncState appends a SYNC response payload: the epoch, the
// 32-byte content hash, then the uvarint-length-prefixed snapshot.
func AppendSyncState(dst []byte, st SyncState) []byte {
	dst = AppendEpoch(dst, st.Epoch)
	dst = append(dst, st.Hash[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(st.Data)))
	return append(dst, st.Data...)
}

// ConsumeSyncState decodes a SYNC response payload. The snapshot bytes
// are copied out of b (frame payloads alias a reused decode buffer and
// a snapshot outlives the frame that carried it); trailing bytes are an
// error. The hash is NOT verified here — the replica applies that check
// against the copied bytes before installing.
func ConsumeSyncState(b []byte) (SyncState, error) {
	var st SyncState
	if len(b) < 8+SyncHashSize {
		return SyncState{}, ErrBadPayload
	}
	var err error
	if st.Epoch, err = ConsumeEpoch(b[:8]); err != nil {
		return SyncState{}, err
	}
	copy(st.Hash[:], b[8:8+SyncHashSize])
	rest := b[8+SyncHashSize:]
	n, w := binary.Uvarint(rest)
	if w <= 0 || n > MaxSyncData {
		return SyncState{}, ErrBadPayload
	}
	rest = rest[w:]
	if uint64(len(rest)) != n {
		return SyncState{}, ErrBadPayload
	}
	st.Data = append([]byte(nil), rest...)
	return st, nil
}

// RemoteError is an ERROR frame surfaced to the caller.
type RemoteError struct {
	Code byte
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error %d: %s", e.Code, e.Msg)
}
