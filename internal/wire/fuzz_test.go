package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecoder feeds arbitrary byte streams to the frame decoder: it
// must either yield valid frames or error, and must never panic, hang,
// or over-read. Seeds cover valid frames, every rejection class, and
// back-to-back frames.
func FuzzDecoder(f *testing.F) {
	f.Add(AppendFrame(nil, OpCheck, 1, AppendCheck(nil, "sid", "read", "doc")))
	f.Add(AppendFrame(nil, OpPing, 2, nil))
	f.Add(AppendFrame(nil, OpPolicyVersion|RespFlag, 3, AppendEpoch(nil, 42)))
	f.Add(AppendFrame(AppendFrame(nil, OpPing, 4, []byte("a")), OpPing, 5, []byte("b")))
	bad := AppendFrame(nil, OpCheck, 6, []byte("x"))
	bad[0] = 0 // magic
	f.Add(append([]byte(nil), bad...))
	bad = AppendFrame(nil, OpCheck, 7, []byte("x"))
	bad[2] = 9 // version
	f.Add(append([]byte(nil), bad...))
	f.Add(AppendFrame(nil, OpCheck, 8, make([]byte, 300))[:40])                         // truncated payload
	f.Add([]byte{magic0, magic1, Version})                                              // truncated header
	f.Add([]byte{magic0, magic1, Version, OpCheck, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}) // huge declared length
	f.Add(AppendFrame(nil, OpSubscribe, 9, nil))
	f.Add(AppendFrame(nil, OpEpochPush, 0, AppendEpoch(nil, 42)))
	f.Add(AppendFrame(nil, OpEpochPush, 0, AppendEpoch(nil, 42))[:HeaderSize+3])    // truncated push epoch
	f.Add(AppendFrame(nil, OpCheck|CacheFlag, 10, AppendCheck(nil, "s", "r", "o"))) // CACHE-flagged check
	f.Add(AppendFrame(nil, OpSubscribe|RespFlag|TraceFlag|CacheFlag, 11, nil))      // corrupted flag soup
	f.Add(AppendFrame(nil, OpSync, 12, AppendSyncRequest(nil, "replica-1", 7)))
	syncSt := SyncState{Epoch: 8, Data: []byte(`{"version":1}`)}
	f.Add(AppendFrame(nil, OpSync|RespFlag, 12, AppendSyncState(nil, syncSt)))
	f.Add(AppendFrame(nil, OpSync|RespFlag, 13, AppendSyncState(nil, syncSt))[:HeaderSize+10]) // truncated sync state

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), 1<<12)
		for i := 0; ; i++ {
			frame, err := dec.Next()
			if err != nil {
				if err == io.EOF && i == 0 && len(data) > 0 {
					t.Fatalf("io.EOF with %d unconsumed bytes", len(data))
				}
				return
			}
			if len(frame.Payload) > 1<<12 {
				t.Fatalf("frame payload %d exceeds the decoder limit", len(frame.Payload))
			}
			if i > len(data)/HeaderSize {
				t.Fatalf("decoded more frames (%d) than the input can hold", i)
			}
		}
	})
}

// FuzzPayloadCodecs throws arbitrary bytes at every payload Consume
// function: errors are fine, panics are not, and anything that decodes
// must survive a re-encode/re-decode with the same value. (Byte-exact
// re-encoding is NOT required — uvarint accepts non-minimal input like
// 0x80 0x00 for zero, which re-encodes shorter.)
func FuzzPayloadCodecs(f *testing.F) {
	f.Add(AppendCheck(nil, "sid", "read", "doc"))
	f.Add(AppendCheckBatch(nil, []CheckRequest{{Session: "a", Operation: "b", Object: "c"}, {}}))
	f.Add(AppendVerdicts(nil, []bool{true, false, true}))
	f.Add(AppendErrorPayload(nil, ErrCodeBadRequest, "bad"))
	f.Add(AppendEpoch(nil, 99))
	f.Add(AppendCacheVerdict(nil, true, true))
	f.Add([]byte{7}) // cache verdict with reserved bits set
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // uvarint overflow
	f.Add(AppendSyncRequest(nil, "replica-1", 7))
	syncSt := SyncState{Epoch: 9, Data: []byte(`{"version":1,"policy":""}`)}
	for i := range syncSt.Data {
		syncSt.Hash[0] += syncSt.Data[i] // any nonzero hash; content is opaque here
	}
	f.Add(AppendSyncState(nil, syncSt))
	corrupt := AppendSyncState(nil, syncSt)
	corrupt[8+3] ^= 0xFF // flip a hash byte: decodes fine, install must reject
	f.Add(corrupt)
	f.Add(AppendSyncState(nil, SyncState{Epoch: 0, Data: syncSt.Data, Hash: syncSt.Hash})) // epoch regression (new leader incarnation)
	f.Add(AppendSyncState(nil, syncSt)[:12])                                               // truncated mid-hash

	f.Fuzz(func(t *testing.T, data []byte) {
		if sess, op, obj, err := ConsumeCheck(data); err == nil {
			s2, o2, b2, err := ConsumeCheck(AppendCheck(nil, sess, op, obj))
			if err != nil || s2 != sess || o2 != op || b2 != obj {
				t.Fatalf("CHECK re-decode mismatch: (%q %q %q) -> (%q %q %q, %v)",
					sess, op, obj, s2, o2, b2, err)
			}
		}
		if reqs, err := ConsumeCheckBatch(data, nil); err == nil {
			got, err := ConsumeCheckBatch(AppendCheckBatch(nil, reqs), nil)
			if err != nil || len(got) != len(reqs) {
				t.Fatalf("CHECK_BATCH re-decode: len %d -> %d, %v", len(reqs), len(got), err)
			}
			for i := range reqs {
				if got[i] != reqs[i] {
					t.Fatalf("CHECK_BATCH re-decode req %d: %+v -> %+v", i, reqs[i], got[i])
				}
			}
		}
		if vs, err := ConsumeVerdicts(data, nil); err == nil {
			got, err := ConsumeVerdicts(AppendVerdicts(nil, vs), nil)
			if err != nil || len(got) != len(vs) {
				t.Fatalf("verdicts re-decode: len %d -> %d, %v", len(vs), len(got), err)
			}
			for i := range vs {
				if got[i] != vs[i] {
					t.Fatalf("verdicts re-decode %d: %v -> %v", i, vs[i], got[i])
				}
			}
		}
		if code, msg, err := ConsumeErrorPayload(data); err == nil {
			c2, m2, err := ConsumeErrorPayload(AppendErrorPayload(nil, code, msg))
			if err != nil || c2 != code || m2 != msg {
				t.Fatalf("error re-decode mismatch: (%d %q) -> (%d %q, %v)", code, msg, c2, m2, err)
			}
		}
		if epoch, err := ConsumeEpoch(data); err == nil {
			e2, err := ConsumeEpoch(AppendEpoch(nil, epoch))
			if err != nil || e2 != epoch {
				t.Fatalf("epoch re-decode mismatch: %d -> (%d, %v)", epoch, e2, err)
			}
		}
		if allowed, cacheable, err := ConsumeCacheVerdict(data); err == nil {
			a2, c2, err := ConsumeCacheVerdict(AppendCacheVerdict(nil, allowed, cacheable))
			if err != nil || a2 != allowed || c2 != cacheable {
				t.Fatalf("cache-verdict re-decode mismatch: (%v %v) -> (%v %v, %v)",
					allowed, cacheable, a2, c2, err)
			}
		}
		if replica, applied, err := ConsumeSyncRequest(data); err == nil {
			r2, a2, err := ConsumeSyncRequest(AppendSyncRequest(nil, replica, applied))
			if err != nil || r2 != replica || a2 != applied {
				t.Fatalf("sync-request re-decode mismatch: (%q %d) -> (%q %d, %v)",
					replica, applied, r2, a2, err)
			}
		}
		if st, err := ConsumeSyncState(data); err == nil {
			st2, err := ConsumeSyncState(AppendSyncState(nil, st))
			if err != nil || st2.Epoch != st.Epoch || st2.Hash != st.Hash || !bytes.Equal(st2.Data, st.Data) {
				t.Fatalf("sync-state re-decode mismatch: epoch %d hash %x %d bytes -> (epoch %d hash %x %d bytes, %v)",
					st.Epoch, st.Hash[:4], len(st.Data), st2.Epoch, st2.Hash[:4], len(st2.Data), err)
			}
		}
		if tid, rest, err := ConsumeTraceID(data); err == nil {
			t2, rest2, err := ConsumeTraceID(AppendTraceID(nil, tid))
			if err != nil || t2 != tid || len(rest2) != 0 {
				t.Fatalf("trace-id re-decode mismatch: %v -> (%v, %d rest, %v)", tid, t2, len(rest2), err)
			}
			if len(rest) != len(data)-TraceIDSize {
				t.Fatalf("trace-id rest length %d, want %d", len(rest), len(data)-TraceIDSize)
			}
		}
	})
}

// FuzzCheckRoundTrip fuzzes the structured direction: any triple of
// strings within the length limit must survive encode/decode exactly —
// bare, framed as a CACHE-flagged CHECK, and interleaved with an
// EPOCH_PUSH frame derived from the same input.
func FuzzCheckRoundTrip(f *testing.F) {
	f.Add("sid", "read", "doc")
	f.Add("", "", "")
	f.Add("s\x00id", "op\xFF", "obj with spaces and é")
	f.Fuzz(func(t *testing.T, session, operation, object string) {
		if len(session) > maxStringLen || len(operation) > maxStringLen || len(object) > maxStringLen {
			t.Skip()
		}
		b := AppendCheck(nil, session, operation, object)
		s2, op2, obj2, err := ConsumeCheck(b)
		if err != nil {
			t.Fatalf("ConsumeCheck(%x): %v", b, err)
		}
		if s2 != session || op2 != operation || obj2 != object {
			t.Fatalf("round trip (%q %q %q) -> (%q %q %q)", session, operation, object, s2, op2, obj2)
		}
		// The same tuple framed as a CACHE-flagged check, preceded by an
		// unsolicited EPOCH_PUSH — the stream shape a subscribed client's
		// reader sees — must decode back frame for frame.
		epoch := uint64(len(session))<<32 | uint64(len(operation))<<16 | uint64(len(object))
		stream := AppendFrame(nil, OpEpochPush, 0, AppendEpoch(nil, epoch))
		stream = AppendFrame(stream, OpCheck|CacheFlag, 1, b)
		dec := NewDecoder(bytes.NewReader(stream), 0)
		push, err := dec.Next()
		if err != nil || push.Op != OpEpochPush {
			t.Fatalf("push frame: (%#x, %v)", push.Op, err)
		}
		if e2, err := ConsumeEpoch(push.Payload); err != nil || e2 != epoch {
			t.Fatalf("push epoch = (%d, %v), want %d", e2, err, epoch)
		}
		chk, err := dec.Next()
		if err != nil || chk.Op != OpCheck|CacheFlag || chk.ID != 1 {
			t.Fatalf("check frame: (%#x id %d, %v)", chk.Op, chk.ID, err)
		}
		if s3, o3, b3, err := ConsumeCheck(chk.Payload); err != nil ||
			s3 != session || o3 != operation || b3 != object {
			t.Fatalf("framed round trip -> (%q %q %q, %v)", s3, o3, b3, err)
		}
		// A SYNC exchange derived from the same input: the request names a
		// replica, the response carries the object bytes as snapshot data.
		// Both must survive framing and re-decode exactly.
		st := SyncState{Epoch: epoch, Data: []byte(object)}
		st.Hash[0], st.Hash[SyncHashSize-1] = byte(epoch), byte(epoch>>8)
		stream = AppendFrame(nil, OpSync, 2, AppendSyncRequest(nil, session, epoch))
		stream = AppendFrame(stream, OpSync|RespFlag, 2, AppendSyncState(nil, st))
		dec = NewDecoder(bytes.NewReader(stream), 0)
		req, err := dec.Next()
		if err != nil || req.Op != OpSync {
			t.Fatalf("sync request frame: (%#x, %v)", req.Op, err)
		}
		if r2, a2, err := ConsumeSyncRequest(req.Payload); err != nil || r2 != session || a2 != epoch {
			t.Fatalf("sync request -> (%q %d, %v), want (%q %d)", r2, a2, err, session, epoch)
		}
		resp, err := dec.Next()
		if err != nil || resp.Op != OpSync|RespFlag {
			t.Fatalf("sync response frame: (%#x, %v)", resp.Op, err)
		}
		if st2, err := ConsumeSyncState(resp.Payload); err != nil ||
			st2.Epoch != st.Epoch || st2.Hash != st.Hash || !bytes.Equal(st2.Data, st.Data) {
			t.Fatalf("sync state round trip: epoch %d -> (%+v, %v)", epoch, st2.Epoch, err)
		}
	})
}
