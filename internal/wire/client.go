package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ClientOptions tunes a Client; the zero value selects the defaults.
type ClientOptions struct {
	// Conns is the connection-pool size. Every connection is fully
	// pipelined, so one connection already supports many concurrent
	// callers; more connections spread the per-connection write lock
	// and the server's per-connection in-flight cap. Default 1.
	Conns int
	// MaxFrame bounds one received frame. Default DefaultMaxFrame.
	MaxFrame int
	// Timeout bounds dialing and each request round trip. Default 10s.
	Timeout time.Duration
	// OnEpochPush, when set, is called with the pushed epoch whenever
	// an EPOCH_PUSH frame arrives on any pooled connection (after a
	// Subscribe). It runs on the connection's read goroutine and must
	// not block.
	OnEpochPush func(epoch uint64)
	// OnSubscriptionLost, when set, is called whenever a connection
	// that carried a successful Subscribe dies: pushes may have been
	// missed from that instant and any push-derived state is stale
	// until a new Subscribe succeeds. It must not block.
	OnSubscriptionLost func()
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	return o
}

// ErrClientClosed is returned by calls on a closed Client.
var ErrClientClosed = errors.New("wire: client closed")

// ErrBackoff is returned (wrapped) when a request lands on a dead pool
// slot whose redial is still backing off; retry after the reported
// wait.
var ErrBackoff = errors.New("wire: redial backing off")

// Redial backoff bounds: the first redial after a failure waits
// redialBase, doubling per consecutive failure up to redialCap, plus
// up to 50% jitter so pooled clients don't reconnect in lockstep.
const (
	redialBase = 10 * time.Millisecond
	redialCap  = time.Second
)

// Client is a connection-pooled, pipelined wire-protocol client. All
// methods are safe for concurrent use; concurrent calls share pooled
// connections and their responses are correlated by request id, so no
// caller ever waits behind another caller's round trip.
type Client struct {
	addr   string
	opts   ClientOptions
	next   atomic.Uint32
	closed atomic.Bool
	slots  []*clientSlot
	// dial is the connection factory, a field so tests can count and
	// refuse dials; Dial installs the TCP default.
	dial func() (net.Conn, error)
}

// clientSlot is one pool slot; the mutex covers (re)dialing and the
// backoff bookkeeping.
type clientSlot struct {
	mu sync.Mutex
	cc *clientConn
	// fails counts consecutive dial failures; nextDial is the earliest
	// instant the next redial may be attempted.
	fails    int
	nextDial time.Time
}

// Dial builds a client for addr and eagerly dials the first pooled
// connection so configuration errors surface immediately; the
// remaining connections dial lazily on first use.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	var o ClientOptions
	if opts != nil {
		o = *opts
	}
	c := &Client{addr: addr, opts: o.withDefaults()}
	c.dial = func() (net.Conn, error) {
		return net.DialTimeout("tcp", c.addr, c.opts.Timeout)
	}
	c.slots = make([]*clientSlot, c.opts.Conns)
	for i := range c.slots {
		c.slots[i] = &clientSlot{}
	}
	if _, err := c.conn(c.slots[0]); err != nil {
		return nil, err
	}
	return c, nil
}

// Check runs one access check.
func (c *Client) Check(session, operation, object string) (bool, error) {
	payload := AppendCheck(make([]byte, 0, 64), session, operation, object)
	resp, err := c.roundTrip(OpCheck, payload)
	if err != nil {
		return false, err
	}
	if len(resp) != 1 || resp[0] > 1 {
		return false, fmt.Errorf("wire: bad CHECK response: %w", ErrBadPayload)
	}
	return resp[0] == 1, nil
}

// CheckTraced runs one access check with the TRACE flag set: the
// decision's cascade trace is retained server-side under tid for later
// retrieval via /v1/traces/{id}.
func (c *Client) CheckTraced(session, operation, object string, tid [TraceIDSize]byte) (bool, error) {
	payload := AppendTraceID(make([]byte, 0, 64+TraceIDSize), tid)
	payload = AppendCheck(payload, session, operation, object)
	resp, err := c.roundTrip(OpCheck|TraceFlag, payload)
	if err != nil {
		return false, err
	}
	if len(resp) != 1 || resp[0] > 1 {
		return false, fmt.Errorf("wire: bad CHECK response: %w", ErrBadPayload)
	}
	return resp[0] == 1, nil
}

// CheckMany runs a batch of access checks in one frame and returns the
// verdicts in request order.
func (c *Client) CheckMany(reqs []CheckRequest) ([]bool, error) {
	return c.checkMany(reqs, OpCheckBatch, nil)
}

// CheckManyTraced is CheckMany with the TRACE flag set: the server
// traces the batch's first tuple under tid.
func (c *Client) CheckManyTraced(reqs []CheckRequest, tid [TraceIDSize]byte) ([]bool, error) {
	prefix := AppendTraceID(make([]byte, 0, TraceIDSize), tid)
	return c.checkMany(reqs, OpCheckBatch|TraceFlag, prefix)
}

func (c *Client) checkMany(reqs []CheckRequest, op byte, prefix []byte) ([]bool, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) > MaxBatch {
		return nil, fmt.Errorf("wire: batch of %d exceeds MaxBatch %d", len(reqs), MaxBatch)
	}
	payload := append(prefix, AppendCheckBatch(make([]byte, 0, 16+64*len(reqs)), reqs)...)
	resp, err := c.roundTrip(op, payload)
	if err != nil {
		return nil, err
	}
	verdicts, err := ConsumeVerdicts(resp, make([]bool, 0, len(reqs)))
	if err != nil {
		return nil, err
	}
	if len(verdicts) != len(reqs) {
		return nil, fmt.Errorf("wire: CHECK_BATCH answered %d of %d checks: %w",
			len(verdicts), len(reqs), ErrBadPayload)
	}
	return verdicts, nil
}

// CheckCacheable runs one access check with the CACHE flag set: the
// server additionally reports whether the verdict is safe for an
// epoch-tagged local cache until the next EPOCH_PUSH.
func (c *Client) CheckCacheable(session, operation, object string) (allowed, cacheable bool, err error) {
	payload := AppendCheck(make([]byte, 0, 64), session, operation, object)
	resp, err := c.roundTrip(OpCheck|CacheFlag, payload)
	if err != nil {
		return false, false, err
	}
	allowed, cacheable, cerr := ConsumeCacheVerdict(resp)
	if cerr != nil {
		return false, false, fmt.Errorf("wire: bad CHECK response: %w", cerr)
	}
	return allowed, cacheable, nil
}

// Subscribe registers one pooled connection for epoch pushes and
// returns the push epoch current at registration. Pushes arrive via
// ClientOptions.OnEpochPush; if the subscribed connection later dies,
// ClientOptions.OnSubscriptionLost fires and the caller must Subscribe
// again (redials do not re-subscribe themselves).
func (c *Client) Subscribe() (uint64, error) {
	slot := c.slots[int(c.next.Add(1))%len(c.slots)]
	cc, err := c.conn(slot)
	if err != nil {
		return 0, err
	}
	// Marked before the round trip: if the connection dies mid-flight
	// the loss callback still fires, so the caller can never believe a
	// half-made subscription is live.
	cc.subscribed.Store(true)
	res, err := cc.roundTrip(OpSubscribe, nil, c.opts.Timeout)
	if err != nil {
		cc.subscribed.Store(false)
		return 0, err
	}
	if res.op == OpError {
		cc.subscribed.Store(false)
		code, msg, perr := ConsumeErrorPayload(res.payload)
		if perr != nil {
			return 0, perr
		}
		return 0, &RemoteError{Code: code, Msg: msg}
	}
	if res.op != OpSubscribe|RespFlag {
		cc.subscribed.Store(false)
		return 0, fmt.Errorf("wire: response opcode %#x for SUBSCRIBE: %w", res.op, ErrBadPayload)
	}
	epoch, err := ConsumeEpoch(res.payload)
	if err != nil {
		cc.subscribed.Store(false)
		return 0, err
	}
	return epoch, nil
}

// Sync pulls a policy-sync snapshot from a leader: the replica's name
// and its applied epoch go up, the leader's epoch, content hash and
// snapshot bytes come back. The caller verifies the hash before
// installing anything. Replication clients must configure MaxFrame
// well past DefaultMaxFrame (see MaxSyncData) — a full snapshot
// legitimately outgrows a check frame — and a Timeout sized for the
// transfer, not for a check round trip.
func (c *Client) Sync(replica string, applied uint64) (SyncState, error) {
	payload := AppendSyncRequest(make([]byte, 0, 32+len(replica)), replica, applied)
	resp, err := c.roundTrip(OpSync, payload)
	if err != nil {
		return SyncState{}, err
	}
	st, err := ConsumeSyncState(resp)
	if err != nil {
		return SyncState{}, fmt.Errorf("wire: bad SYNC response: %w", err)
	}
	return st, nil
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(OpPing, nil)
	return err
}

// PolicyVersion fetches the server's policy snapshot epoch.
func (c *Client) PolicyVersion() (uint64, error) {
	resp, err := c.roundTrip(OpPolicyVersion, nil)
	if err != nil {
		return 0, err
	}
	return ConsumeEpoch(resp)
}

// Close closes every pooled connection; in-flight calls fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, slot := range c.slots {
		slot.mu.Lock()
		if slot.cc != nil {
			slot.cc.fail(ErrClientClosed)
			slot.cc = nil
		}
		slot.mu.Unlock()
	}
	return nil
}

// conn returns the slot's live connection, redialing if missing or
// dead. Redials follow an exponential backoff with jitter (capped at
// redialCap): while the slot is backing off the call fails fast with
// ErrBackoff instead of dialing, so a fleet of pooled clients cannot
// hammer a restarting server with a reconnect storm.
func (c *Client) conn(slot *clientSlot) (*clientConn, error) {
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if cc := slot.cc; cc != nil && !cc.dead() {
		return cc, nil
	}
	if wait := time.Until(slot.nextDial); wait > 0 {
		return nil, fmt.Errorf("wire: slot redial in %v: %w",
			wait.Round(time.Millisecond), ErrBackoff)
	}
	nc, err := c.dial()
	if err != nil {
		slot.fails++
		backoff := redialBase
		for i := 1; i < slot.fails && backoff < redialCap; i++ {
			backoff *= 2
		}
		if backoff > redialCap {
			backoff = redialCap
		}
		backoff += time.Duration(rand.Int64N(int64(backoff)/2 + 1))
		slot.nextDial = time.Now().Add(backoff)
		return nil, err
	}
	slot.fails = 0
	slot.nextDial = time.Time{}
	cc := &clientConn{c: nc, pending: map[uint32]chan result{},
		onPush: c.opts.OnEpochPush, onLost: c.opts.OnSubscriptionLost}
	go cc.readLoop(c.opts.MaxFrame)
	slot.cc = cc
	return cc, nil
}

// roundTrip sends one request on a pooled connection and waits for its
// response, unwrapping ERROR frames into *RemoteError.
func (c *Client) roundTrip(op byte, payload []byte) ([]byte, error) {
	slot := c.slots[int(c.next.Add(1))%len(c.slots)]
	cc, err := c.conn(slot)
	if err != nil {
		return nil, err
	}
	res, err := cc.roundTrip(op, payload, c.opts.Timeout)
	if err != nil {
		return nil, err
	}
	if res.op == OpError {
		code, msg, perr := ConsumeErrorPayload(res.payload)
		if perr != nil {
			return nil, perr
		}
		return nil, &RemoteError{Code: code, Msg: msg}
	}
	if res.op != op|RespFlag {
		return nil, fmt.Errorf("wire: response opcode %#x for request %#x: %w", res.op, op, ErrBadPayload)
	}
	return res.payload, nil
}

// result is one response delivered to a waiting caller. payload is an
// owned copy.
type result struct {
	op      byte
	payload []byte
}

// clientConn is one pipelined connection: writes are serialized under
// wmu (one syscall per frame, the frame built in a reused buffer), a
// background reader correlates responses to waiters by request id.
type clientConn struct {
	c net.Conn

	// onPush and onLost are the owning client's push callbacks;
	// subscribed marks a connection that carried a successful
	// SUBSCRIBE, so its death reports the subscription as lost.
	onPush     func(epoch uint64)
	onLost     func()
	subscribed atomic.Bool

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	pending map[uint32]chan result
	nextID  uint32
	err     error
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// fail marks the connection dead and wakes every waiter with err.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pending := cc.pending
	cc.pending = map[uint32]chan result{}
	cc.mu.Unlock()
	cc.c.Close()
	for _, ch := range pending {
		close(ch) // a closed channel signals "connection failed"
	}
	// A dead subscribed connection means pushes may have been missed
	// from this instant; tell the owner so push-derived caches can
	// stop serving before the gap widens.
	if cc.subscribed.Swap(false) && cc.onLost != nil {
		cc.onLost()
	}
}

// readLoop delivers response frames to their waiters until the
// connection dies.
func (cc *clientConn) readLoop(maxFrame int) {
	dec := NewDecoder(bufio.NewReaderSize(cc.c, 32<<10), maxFrame)
	for {
		f, err := dec.Next()
		if err != nil {
			cc.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		if f.Op == OpEpochPush {
			// Unsolicited server push, intercepted before the pending-id
			// correlation (its id is always 0). A push that does not
			// decode means invalidations may be lost: kill the
			// connection so the subscription loss is reported rather
			// than silently serving stale state.
			epoch, perr := ConsumeEpoch(f.Payload)
			if perr != nil {
				cc.fail(fmt.Errorf("wire: bad EPOCH_PUSH payload: %w", perr))
				return
			}
			if cc.onPush != nil {
				cc.onPush(epoch)
			}
			continue
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.ID]
		if ok {
			delete(cc.pending, f.ID)
		}
		cc.mu.Unlock()
		if !ok {
			continue // response to a timed-out request; drop it
		}
		// The payload aliases the decoder buffer: copy before handoff.
		var p []byte
		if len(f.Payload) > 0 {
			p = append([]byte(nil), f.Payload...)
		}
		ch <- result{op: f.Op, payload: p}
	}
}

func (cc *clientConn) roundTrip(op byte, payload []byte, timeout time.Duration) (result, error) {
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return result{}, err
	}
	id := cc.nextID
	cc.nextID++
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	cc.wbuf = AppendFrame(cc.wbuf[:0], op, id, payload)
	cc.c.SetWriteDeadline(time.Now().Add(timeout))
	_, werr := cc.c.Write(cc.wbuf)
	cc.wmu.Unlock()
	if werr != nil {
		cc.fail(fmt.Errorf("wire: write: %w", werr))
		cc.forget(id)
		return result{}, werr
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res, ok := <-ch:
		if !ok {
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = errors.New("wire: connection failed")
			}
			return result{}, err
		}
		return res, nil
	case <-timer.C:
		cc.forget(id)
		return result{}, fmt.Errorf("wire: request %s timed out after %v", OpName(op), timeout)
	}
}

// forget abandons a pending request id (timeout or write failure); a
// late response for it is dropped by readLoop.
func (cc *clientConn) forget(id uint32) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}
