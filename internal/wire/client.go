package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ClientOptions tunes a Client; the zero value selects the defaults.
type ClientOptions struct {
	// Conns is the connection-pool size. Every connection is fully
	// pipelined, so one connection already supports many concurrent
	// callers; more connections spread the per-connection write lock
	// and the server's per-connection in-flight cap. Default 1.
	Conns int
	// MaxFrame bounds one received frame. Default DefaultMaxFrame.
	MaxFrame int
	// Timeout bounds dialing and each request round trip. Default 10s.
	Timeout time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	return o
}

// ErrClientClosed is returned by calls on a closed Client.
var ErrClientClosed = errors.New("wire: client closed")

// Client is a connection-pooled, pipelined wire-protocol client. All
// methods are safe for concurrent use; concurrent calls share pooled
// connections and their responses are correlated by request id, so no
// caller ever waits behind another caller's round trip.
type Client struct {
	addr   string
	opts   ClientOptions
	next   atomic.Uint32
	closed atomic.Bool
	slots  []*clientSlot
}

// clientSlot is one pool slot; the mutex covers (re)dialing only.
type clientSlot struct {
	mu sync.Mutex
	cc *clientConn
}

// Dial builds a client for addr and eagerly dials the first pooled
// connection so configuration errors surface immediately; the
// remaining connections dial lazily on first use.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	var o ClientOptions
	if opts != nil {
		o = *opts
	}
	c := &Client{addr: addr, opts: o.withDefaults()}
	c.slots = make([]*clientSlot, c.opts.Conns)
	for i := range c.slots {
		c.slots[i] = &clientSlot{}
	}
	if _, err := c.conn(c.slots[0]); err != nil {
		return nil, err
	}
	return c, nil
}

// Check runs one access check.
func (c *Client) Check(session, operation, object string) (bool, error) {
	payload := AppendCheck(make([]byte, 0, 64), session, operation, object)
	resp, err := c.roundTrip(OpCheck, payload)
	if err != nil {
		return false, err
	}
	if len(resp) != 1 || resp[0] > 1 {
		return false, fmt.Errorf("wire: bad CHECK response: %w", ErrBadPayload)
	}
	return resp[0] == 1, nil
}

// CheckTraced runs one access check with the TRACE flag set: the
// decision's cascade trace is retained server-side under tid for later
// retrieval via /v1/traces/{id}.
func (c *Client) CheckTraced(session, operation, object string, tid [TraceIDSize]byte) (bool, error) {
	payload := AppendTraceID(make([]byte, 0, 64+TraceIDSize), tid)
	payload = AppendCheck(payload, session, operation, object)
	resp, err := c.roundTrip(OpCheck|TraceFlag, payload)
	if err != nil {
		return false, err
	}
	if len(resp) != 1 || resp[0] > 1 {
		return false, fmt.Errorf("wire: bad CHECK response: %w", ErrBadPayload)
	}
	return resp[0] == 1, nil
}

// CheckMany runs a batch of access checks in one frame and returns the
// verdicts in request order.
func (c *Client) CheckMany(reqs []CheckRequest) ([]bool, error) {
	return c.checkMany(reqs, OpCheckBatch, nil)
}

// CheckManyTraced is CheckMany with the TRACE flag set: the server
// traces the batch's first tuple under tid.
func (c *Client) CheckManyTraced(reqs []CheckRequest, tid [TraceIDSize]byte) ([]bool, error) {
	prefix := AppendTraceID(make([]byte, 0, TraceIDSize), tid)
	return c.checkMany(reqs, OpCheckBatch|TraceFlag, prefix)
}

func (c *Client) checkMany(reqs []CheckRequest, op byte, prefix []byte) ([]bool, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) > MaxBatch {
		return nil, fmt.Errorf("wire: batch of %d exceeds MaxBatch %d", len(reqs), MaxBatch)
	}
	payload := append(prefix, AppendCheckBatch(make([]byte, 0, 16+64*len(reqs)), reqs)...)
	resp, err := c.roundTrip(op, payload)
	if err != nil {
		return nil, err
	}
	verdicts, err := ConsumeVerdicts(resp, make([]bool, 0, len(reqs)))
	if err != nil {
		return nil, err
	}
	if len(verdicts) != len(reqs) {
		return nil, fmt.Errorf("wire: CHECK_BATCH answered %d of %d checks: %w",
			len(verdicts), len(reqs), ErrBadPayload)
	}
	return verdicts, nil
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(OpPing, nil)
	return err
}

// PolicyVersion fetches the server's policy snapshot epoch.
func (c *Client) PolicyVersion() (uint64, error) {
	resp, err := c.roundTrip(OpPolicyVersion, nil)
	if err != nil {
		return 0, err
	}
	return ConsumeEpoch(resp)
}

// Close closes every pooled connection; in-flight calls fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, slot := range c.slots {
		slot.mu.Lock()
		if slot.cc != nil {
			slot.cc.fail(ErrClientClosed)
			slot.cc = nil
		}
		slot.mu.Unlock()
	}
	return nil
}

// conn returns the slot's live connection, dialing if missing or dead.
func (c *Client) conn(slot *clientSlot) (*clientConn, error) {
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if cc := slot.cc; cc != nil && !cc.dead() {
		return cc, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.Timeout)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{c: nc, pending: map[uint32]chan result{}}
	go cc.readLoop(c.opts.MaxFrame)
	slot.cc = cc
	return cc, nil
}

// roundTrip sends one request on a pooled connection and waits for its
// response, unwrapping ERROR frames into *RemoteError.
func (c *Client) roundTrip(op byte, payload []byte) ([]byte, error) {
	slot := c.slots[int(c.next.Add(1))%len(c.slots)]
	cc, err := c.conn(slot)
	if err != nil {
		return nil, err
	}
	res, err := cc.roundTrip(op, payload, c.opts.Timeout)
	if err != nil {
		return nil, err
	}
	if res.op == OpError {
		code, msg, perr := ConsumeErrorPayload(res.payload)
		if perr != nil {
			return nil, perr
		}
		return nil, &RemoteError{Code: code, Msg: msg}
	}
	if res.op != op|RespFlag {
		return nil, fmt.Errorf("wire: response opcode %#x for request %#x: %w", res.op, op, ErrBadPayload)
	}
	return res.payload, nil
}

// result is one response delivered to a waiting caller. payload is an
// owned copy.
type result struct {
	op      byte
	payload []byte
}

// clientConn is one pipelined connection: writes are serialized under
// wmu (one syscall per frame, the frame built in a reused buffer), a
// background reader correlates responses to waiters by request id.
type clientConn struct {
	c net.Conn

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	pending map[uint32]chan result
	nextID  uint32
	err     error
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// fail marks the connection dead and wakes every waiter with err.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pending := cc.pending
	cc.pending = map[uint32]chan result{}
	cc.mu.Unlock()
	cc.c.Close()
	for _, ch := range pending {
		close(ch) // a closed channel signals "connection failed"
	}
}

// readLoop delivers response frames to their waiters until the
// connection dies.
func (cc *clientConn) readLoop(maxFrame int) {
	dec := NewDecoder(bufio.NewReaderSize(cc.c, 32<<10), maxFrame)
	for {
		f, err := dec.Next()
		if err != nil {
			cc.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.ID]
		if ok {
			delete(cc.pending, f.ID)
		}
		cc.mu.Unlock()
		if !ok {
			continue // response to a timed-out request; drop it
		}
		// The payload aliases the decoder buffer: copy before handoff.
		var p []byte
		if len(f.Payload) > 0 {
			p = append([]byte(nil), f.Payload...)
		}
		ch <- result{op: f.Op, payload: p}
	}
}

func (cc *clientConn) roundTrip(op byte, payload []byte, timeout time.Duration) (result, error) {
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return result{}, err
	}
	id := cc.nextID
	cc.nextID++
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	cc.wbuf = AppendFrame(cc.wbuf[:0], op, id, payload)
	cc.c.SetWriteDeadline(time.Now().Add(timeout))
	_, werr := cc.c.Write(cc.wbuf)
	cc.wmu.Unlock()
	if werr != nil {
		cc.fail(fmt.Errorf("wire: write: %w", werr))
		cc.forget(id)
		return result{}, werr
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res, ok := <-ch:
		if !ok {
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = errors.New("wire: connection failed")
			}
			return result{}, err
		}
		return res, nil
	case <-timer.C:
		cc.forget(id)
		return result{}, fmt.Errorf("wire: request %s timed out after %v", OpName(op), timeout)
	}
}

// forget abandons a pending request id (timeout or write failure); a
// late response for it is dropped by readLoop.
func (cc *clientConn) forget(id uint32) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}
