package wire

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Codec

func TestCacheVerdictRoundTrip(t *testing.T) {
	for _, tc := range []struct{ allowed, cacheable bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	} {
		b := AppendCacheVerdict(nil, tc.allowed, tc.cacheable)
		allowed, cacheable, err := ConsumeCacheVerdict(b)
		if err != nil || allowed != tc.allowed || cacheable != tc.cacheable {
			t.Fatalf("round trip %+v = (%v, %v, %v)", tc, allowed, cacheable, err)
		}
	}
	if _, _, err := ConsumeCacheVerdict(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty: err = %v, want ErrBadPayload", err)
	}
	if _, _, err := ConsumeCacheVerdict([]byte{1, 0}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("long: err = %v, want ErrBadPayload", err)
	}
	if _, _, err := ConsumeCacheVerdict([]byte{4}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("reserved bits: err = %v, want ErrBadPayload", err)
	}
}

// ---------------------------------------------------------------------------
// Push latch

// TestNotifyPushCoalesces: the per-connection latch holds one pending
// push carrying the newest epoch, however many bumps land before the
// writer drains it.
func TestNotifyPushCoalesces(t *testing.T) {
	sc := &srvConn{pushCh: make(chan struct{}, 1)}
	for e := uint64(1); e <= 100; e++ {
		sc.notifyPush(e)
	}
	if n := len(sc.pushCh); n != 1 {
		t.Fatalf("pending pushes = %d, want 1", n)
	}
	if e := sc.pushEpoch.Load(); e != 100 {
		t.Fatalf("latched epoch = %d, want 100", e)
	}
	<-sc.pushCh
	sc.notifyPush(101)
	if n := len(sc.pushCh); n != 1 {
		t.Fatalf("re-armed pending pushes = %d, want 1", n)
	}
}

// ---------------------------------------------------------------------------
// SUBSCRIBE / EPOCH_PUSH / CacheFlag integration

// pushTestBackend upgrades testBackend with the push-epoch and
// cacheability interfaces: the push epoch is test-controlled, and
// verdicts on object "volatile" are allowed but never cacheable.
type pushTestBackend struct {
	*testBackend
	push atomic.Uint64
}

func newPushTestBackend() *pushTestBackend {
	return &pushTestBackend{testBackend: newTestBackend()}
}

func (pb *pushTestBackend) PushEpoch() uint64 { return pb.push.Load() }

func (pb *pushTestBackend) CheckCacheable(session, operation, object string) (allowed, cacheable bool) {
	allowed = pb.Check(session, operation, object)
	return allowed, allowed && object != "volatile"
}

// startPushServer is startServer for any backend shape.
func startPushServer(t *testing.T, b Backend, opts *ServerOptions) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(b, opts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

func TestSubscribeDeliversPushes(t *testing.T) {
	pb := newPushTestBackend()
	pb.push.Store(7)
	var pushed, subGauge atomic.Int64
	ins := &Instruments{
		Push:        func() { pushed.Add(1) },
		Subscribers: func(d float64) { subGauge.Add(int64(d)) },
	}
	srv, addr := startPushServer(t, pb, &ServerOptions{Instruments: ins})

	got := make(chan uint64, 256)
	cl, err := Dial(addr, &ClientOptions{
		Timeout:     5 * time.Second,
		OnEpochPush: func(e uint64) { got <- e },
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	epoch, err := cl.Subscribe()
	if err != nil || epoch != 7 {
		t.Fatalf("Subscribe = (%d, %v), want (7, nil)", epoch, err)
	}
	if g := subGauge.Load(); g != 1 {
		t.Fatalf("subscriber gauge = %d, want 1", g)
	}
	// Re-subscribing the same connection is idempotent (rbacd restarts of
	// the client loop must not leak registrations).
	if epoch, err := cl.Subscribe(); err != nil || epoch != 7 {
		t.Fatalf("re-Subscribe = (%d, %v), want (7, nil)", epoch, err)
	}
	if g := subGauge.Load(); g != 1 {
		t.Fatalf("subscriber gauge after re-subscribe = %d, want 1", g)
	}

	pb.push.Store(8)
	srv.NotifyEpoch(8)
	select {
	case e := <-got:
		if e != 8 {
			t.Fatalf("pushed epoch = %d, want 8", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no push after NotifyEpoch")
	}

	// A burst of bumps must deliver the newest epoch; intermediate pushes
	// may be coalesced away but never reordered past the latest.
	for e := uint64(9); e <= 40; e++ {
		pb.push.Store(e)
		srv.NotifyEpoch(e)
	}
	deadline := time.After(5 * time.Second)
	var last uint64
	for last != 40 {
		select {
		case e := <-got:
			if e < last {
				t.Fatalf("push went backwards: %d after %d", e, last)
			}
			last = e
		case <-deadline:
			t.Fatalf("latest epoch never arrived; last push = %d", last)
		}
	}
	if p := pushed.Load(); p < 2 || p > 33 {
		t.Fatalf("push instrument = %d, want between 2 and 33", p)
	}

	// Closing the subscribed connection must release the registration.
	cl.Close()
	for i := 0; subGauge.Load() != 0; i++ {
		if i > 1000 {
			t.Fatalf("subscriber gauge stuck at %d after close", subGauge.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubscribeUnsupportedBackend(t *testing.T) {
	tb := newTestBackend() // no PushEpoch, no CheckCacheable
	_, addr := startServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	var re *RemoteError
	if _, err := cl.Subscribe(); !errors.As(err, &re) || re.Code != ErrCodeUnsupported {
		t.Fatalf("Subscribe err = %v, want RemoteError code %d", err, ErrCodeUnsupported)
	}
	re = nil
	if _, _, err := cl.CheckCacheable("s", "read", "o"); !errors.As(err, &re) || re.Code != ErrCodeUnsupported {
		t.Fatalf("CheckCacheable err = %v, want RemoteError code %d", err, ErrCodeUnsupported)
	}
	// The connection survives both refusals.
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping after unsupported requests: %v", err)
	}
}

func TestSubscribeLimit(t *testing.T) {
	pb := newPushTestBackend()
	_, addr := startPushServer(t, pb, &ServerOptions{MaxSubscribers: 1})

	cl1, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial 1: %v", err)
	}
	defer cl1.Close()
	if _, err := cl1.Subscribe(); err != nil {
		t.Fatalf("first Subscribe: %v", err)
	}

	cl2, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	defer cl2.Close()
	var re *RemoteError
	if _, err := cl2.Subscribe(); !errors.As(err, &re) || re.Code != ErrCodeSubscribeLimit {
		t.Fatalf("second Subscribe err = %v, want RemoteError code %d", err, ErrCodeSubscribeLimit)
	}
}

// TestSubscribePayloadRejected: SUBSCRIBE carries no payload; a frame
// with one gets ErrCodeBadRequest and the connection survives.
func TestSubscribePayloadRejected(t *testing.T) {
	pb := newPushTestBackend()
	_, addr := startPushServer(t, pb, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write(AppendFrame(nil, OpSubscribe, 5, []byte("x"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := NewDecoder(bufio.NewReader(nc), 0).Next()
	if err != nil {
		t.Fatalf("response: %v", err)
	}
	if f.Op != OpError || f.ID != 5 {
		t.Fatalf("response = op %#x id %d, want ERROR id 5", f.Op, f.ID)
	}
	code, _, err := ConsumeErrorPayload(f.Payload)
	if err != nil || code != ErrCodeBadRequest {
		t.Fatalf("error payload = (%d, %v), want code %d", code, err, ErrCodeBadRequest)
	}
}

func TestCheckCacheable(t *testing.T) {
	pb := newPushTestBackend()
	_, addr := startPushServer(t, pb, nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	for _, tc := range []struct {
		op, obj            string
		allowed, cacheable bool
	}{
		{"read", "doc", true, true},
		{"write", "doc", false, false},
		{"read", "volatile", true, false}, // allowed but classified uncacheable
	} {
		allowed, cacheable, err := cl.CheckCacheable("s", tc.op, tc.obj)
		if err != nil {
			t.Fatalf("CheckCacheable(%s %s): %v", tc.op, tc.obj, err)
		}
		if allowed != tc.allowed || cacheable != tc.cacheable {
			t.Fatalf("CheckCacheable(%s %s) = (%v, %v), want (%v, %v)",
				tc.op, tc.obj, allowed, cacheable, tc.allowed, tc.cacheable)
		}
	}
}

// TestSubscriptionLostOnDrop: when the subscribed connection dies, the
// loss callback fires so push-derived caches can stop serving.
func TestSubscriptionLostOnDrop(t *testing.T) {
	pb := newPushTestBackend()
	srv, addr := startPushServer(t, pb, nil)
	lost := make(chan struct{}, 1)
	cl, err := Dial(addr, &ClientOptions{
		Timeout:            5 * time.Second,
		OnSubscriptionLost: func() { lost <- struct{}{} },
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	srv.Close()
	select {
	case <-lost:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription loss never reported")
	}
}

// TestBadPushKillsConn: an EPOCH_PUSH that does not decode means
// invalidations may be lost — the client must kill the connection and
// report the subscription lost rather than serve stale state.
func TestBadPushKillsConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		dec := NewDecoder(bufio.NewReader(c), 0)
		f, err := dec.Next() // the SUBSCRIBE
		if err != nil {
			return
		}
		c.Write(AppendFrame(nil, OpSubscribe|RespFlag, f.ID, AppendEpoch(nil, 1)))
		c.Write(AppendFrame(nil, OpEpochPush, 0, []byte{1, 2, 3})) // truncated epoch
		dec.Next()                                                 // hold the conn open until the client drops it
	}()
	lost := make(chan struct{}, 1)
	cl, err := Dial(ln.Addr().String(), &ClientOptions{
		Timeout:            5 * time.Second,
		OnSubscriptionLost: func() { lost <- struct{}{} },
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Subscribe(); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	select {
	case <-lost:
	case <-time.After(5 * time.Second):
		t.Fatal("bad push did not kill the connection")
	}
}

// ---------------------------------------------------------------------------
// Redial backoff

// TestRedialBackoff: a dead slot redials under exponential backoff —
// while backing off, requests fast-fail with ErrBackoff instead of
// dialing, and a successful dial resets the schedule.
func TestRedialBackoff(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, nil)

	// A listener that is closed immediately: its port actively refuses
	// connections for the failure phase.
	refusing, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	refusedAddr := refusing.Addr().String()
	refusing.Close()

	cl, err := Dial(addr, &ClientOptions{Timeout: time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	var dials atomic.Int32
	target := atomic.Pointer[string]{}
	target.Store(&refusedAddr)
	cl.dial = func() (net.Conn, error) {
		dials.Add(1)
		return net.DialTimeout("tcp", *target.Load(), time.Second)
	}

	// Kill the live connection so the next request must redial.
	slot := cl.slots[0]
	slot.mu.Lock()
	slot.cc.fail(errors.New("test: drop"))
	slot.mu.Unlock()

	// First attempt dials the refusing listener and fails.
	if err := cl.Ping(); err == nil {
		t.Fatal("ping against refusing listener succeeded")
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("dials after first failure = %d, want 1", n)
	}
	// An immediate retry must fast-fail inside the backoff window without
	// touching the network.
	if err := cl.Ping(); !errors.Is(err, ErrBackoff) {
		t.Fatalf("retry inside backoff: err = %v, want ErrBackoff", err)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("dials after fast-fail = %d, want 1 (backoff must not dial)", n)
	}

	// After the first window (redialBase + <=50% jitter) the slot dials
	// again; consecutive failures widen the window.
	time.Sleep(redialBase + redialBase/2 + 5*time.Millisecond)
	if err := cl.Ping(); err == nil || errors.Is(err, ErrBackoff) {
		t.Fatalf("second dial attempt: err = %v, want a dial error", err)
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("dials after second window = %d, want 2", n)
	}
	slot.mu.Lock()
	fails, next := slot.fails, slot.nextDial
	slot.mu.Unlock()
	if fails != 2 || !next.After(time.Now()) {
		t.Fatalf("slot after 2 failures: fails=%d nextDial=%v", fails, next)
	}

	// Point the dialer back at the live server: once the backoff window
	// passes, the redial succeeds and the schedule resets.
	target.Store(&addr)
	var lastErr error
	for i := 0; i < 400; i++ {
		if lastErr = cl.Ping(); lastErr == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("ping after recovery: %v", lastErr)
	}
	slot.mu.Lock()
	fails, next = slot.fails, slot.nextDial
	slot.mu.Unlock()
	if fails != 0 || !next.IsZero() {
		t.Fatalf("slot after recovery: fails=%d nextDial=%v, want reset", fails, next)
	}
}
