package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Backend is what a wire server enforces against. Implementations must
// be safe for concurrent use; rbacd adapts *activerbac.System.
type Backend interface {
	// Check decides one access check for the session's user, resolving
	// the user from the session exactly like GET /v1/check.
	Check(session, operation, object string) bool
	// PolicyEpoch reports the published policy snapshot epoch.
	PolicyEpoch() uint64
}

// BatchBackend is optionally implemented by a Backend that can decide a
// whole CHECK_BATCH natively — one engine pass for the frame instead of
// a per-tuple fan-out. The server detects it once at construction; a
// plain Backend keeps the per-tuple loop.
type BatchBackend interface {
	Backend
	// CheckBatch decides every request of one batch, appending one
	// verdict per request to vs in request order and returning the
	// extended slice (reused when capacity allows).
	CheckBatch(reqs []CheckRequest, vs []bool) []bool
}

// TraceBackend is optionally implemented by a Backend that can run a
// client-traced check: the decision's cascade trace is retained under
// the supplied 16-byte id. A plain Backend serves TraceFlag CHECKs as
// ordinary checks (the id is dropped).
type TraceBackend interface {
	Backend
	// CheckTraced is Check with the decision traced under tid.
	CheckTraced(session, operation, object string, tid [TraceIDSize]byte) bool
}

// BatchTraceBackend is optionally implemented by a BatchBackend that
// can decide a TraceFlag CHECK_BATCH natively: the first tuple's trace
// is retained under tid, the rest stays batch-native.
type BatchTraceBackend interface {
	BatchBackend
	// CheckBatchTraced is CheckBatch with the first tuple traced under
	// tid.
	CheckBatchTraced(reqs []CheckRequest, vs []bool, tid [TraceIDSize]byte) []bool
}

// PushBackend is optionally implemented by a Backend whose epoch bumps
// the server can push to subscribers. PushEpoch reports the current
// push epoch — unlike PolicyEpoch it covers session-grade changes
// (role drops, session deletes) as well as policy-grade ones, so a
// bump means any cached verdict may have changed. The server detects
// the upgrade once at construction; without it SUBSCRIBE answers an
// ErrCodeUnsupported ERROR. The server owns no epoch state of its own:
// the backend's owner calls Server.NotifyEpoch on every bump.
type PushBackend interface {
	Backend
	// PushEpoch reports the current push epoch.
	PushEpoch() uint64
}

// SyncBackend is optionally implemented by a Backend that can serve
// policy-sync snapshots — the leader side of the replication protocol.
// Without it a SYNC request answers an ErrCodeUnsupported ERROR, which
// is how a replica discovers it dialed something that is not a leader.
type SyncBackend interface {
	Backend
	// SyncSnapshot returns the current snapshot for a replica that has
	// applied the given epoch (0 when it has never synced). The
	// implementation owns caching — a fleet resyncing after one push
	// should serialize once, not once per replica.
	SyncSnapshot(replica string, applied uint64) (SyncState, error)
}

// ReplicaTracker is optionally implemented by a SyncBackend that keeps
// a replica registry: the server reports when a connection that issued
// SYNC requests closes, so the registry can mark the replica
// disconnected.
type ReplicaTracker interface {
	ReplicaDisconnected(replica string)
}

// CacheBackend is optionally implemented by a Backend that classifies
// verdict cacheability (the fastpath CA1 shape: the verdict depends
// only on state tagged by the push epoch). Without it a CacheFlag
// CHECK answers an ErrCodeUnsupported ERROR.
type CacheBackend interface {
	Backend
	// CheckCacheable is Check plus whether the verdict is safe for an
	// epoch-tagged client cache until the next push.
	CheckCacheable(session, operation, object string) (allowed, cacheable bool)
}

// Instruments are optional transport metrics hooks; any field may be
// nil. rbacd wires them to the activerbac_wire_* metric families.
type Instruments struct {
	// Request is called once per decoded request frame, labelled by
	// opcode.
	Request func(opcode string)
	// Error is called once per ERROR frame sent, labelled by the
	// offending request's opcode.
	Error func(opcode string)
	// Inflight tracks the server-wide in-flight request delta (+1 on
	// admit, -1 after the response is written).
	Inflight func(delta float64)
	// RTT observes the server-side round trip of one request frame —
	// decode to response write — in seconds, labelled by opcode. Wiring
	// it costs two wall-clock reads per request.
	RTT func(opcode string, seconds float64)
	// Push is called once per EPOCH_PUSH frame written to a subscriber.
	Push func()
	// Subscribers tracks the server-wide subscriber-count delta (+1 on
	// subscribe, -1 when a subscribed connection closes).
	Subscribers func(delta float64)
}

// ServerOptions tunes a Server; the zero value selects the defaults.
type ServerOptions struct {
	// MaxFrame bounds one frame (header + payload); larger frames drop
	// the connection. Default DefaultMaxFrame.
	MaxFrame int
	// MaxInFlight caps requests admitted but not yet responded to, per
	// connection: once reached the reader stops consuming frames and
	// the kernel's TCP window pushes back on the client. Default 256.
	MaxInFlight int
	// ReadTimeout bounds how long one whole frame may take to arrive
	// (it doubles as the idle timeout; pipelined clients ping to keep
	// quiet connections alive). Default 3 minutes; <= 0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write. Default 10 seconds;
	// <= 0 disables.
	WriteTimeout time.Duration
	// Workers is the per-connection handler pool executing CHECK and
	// CHECK_BATCH, and therefore the out-of-order window of one
	// connection. Default min(GOMAXPROCS, MaxInFlight).
	Workers int
	// MaxSubscribers caps connections registered for epoch pushes;
	// SUBSCRIBE past the cap answers an ErrCodeSubscribeLimit ERROR.
	// <= 0 means unlimited.
	MaxSubscribers int
	// Instruments hooks transport metrics; nil disables.
	Instruments *Instruments
}

const (
	defaultMaxInFlight  = 256
	defaultReadTimeout  = 3 * time.Minute
	defaultWriteTimeout = 10 * time.Second
)

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = defaultMaxInFlight
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = defaultReadTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.MaxInFlight {
		o.Workers = o.MaxInFlight
	}
	return o
}

// ErrServerClosed is returned by Serve after Close or Shutdown.
var ErrServerClosed = errors.New("wire: server closed")

// Server speaks the wire protocol on any number of listeners. All
// methods are safe for concurrent use.
type Server struct {
	backend Backend
	// batch is backend's BatchBackend upgrade, asserted once at
	// construction; nil keeps the per-tuple CHECK_BATCH fan-out.
	batch BatchBackend
	// trace and btrace are the trace-capable upgrades, asserted once at
	// construction; nil serves TraceFlag requests untraced.
	trace  TraceBackend
	btrace BatchTraceBackend
	// push and cache are the epoch-push upgrades, asserted once at
	// construction; nil answers SUBSCRIBE / CacheFlag CHECKs with
	// ErrCodeUnsupported.
	push  PushBackend
	cache CacheBackend
	// syncb is the replication upgrade, asserted once at construction;
	// nil answers SYNC with ErrCodeUnsupported. tracker is its optional
	// replica-registry refinement.
	syncb   SyncBackend
	tracker ReplicaTracker
	opts    ServerOptions

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*srvConn]struct{}
	subs   map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server around backend; opts may be nil.
func NewServer(backend Backend, opts *ServerOptions) *Server {
	var o ServerOptions
	if opts != nil {
		o = *opts
	}
	batch, _ := backend.(BatchBackend)
	trace, _ := backend.(TraceBackend)
	btrace, _ := backend.(BatchTraceBackend)
	push, _ := backend.(PushBackend)
	cache, _ := backend.(CacheBackend)
	syncb, _ := backend.(SyncBackend)
	tracker, _ := backend.(ReplicaTracker)
	return &Server{
		backend: backend,
		batch:   batch,
		trace:   trace,
		btrace:  btrace,
		push:    push,
		cache:   cache,
		syncb:   syncb,
		tracker: tracker,
		opts:    o.withDefaults(),
		lns:     map[net.Listener]struct{}{},
		conns:   map[*srvConn]struct{}{},
		subs:    map[*srvConn]struct{}{},
	}
}

// NotifyEpoch fans the new push epoch out to every subscribed
// connection. Delivery is coalescing and non-blocking — each
// subscriber holds a one-slot pending-push latch carrying only the
// latest epoch, so a burst of bumps collapses into one frame and a
// slow subscriber can never block the caller (it is bounded by the
// write deadline and disconnected if it cannot drain). Safe to call
// from policy-mutation hooks.
func (s *Server) NotifyEpoch(epoch uint64) {
	s.mu.Lock()
	for sc := range s.subs {
		sc.notifyPush(epoch)
	}
	s.mu.Unlock()
}

// Serve accepts connections on ln until Close or Shutdown, then
// returns ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		sc := &srvConn{srv: s, c: c, pushCh: make(chan struct{}, 1)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go sc.run()
	}
}

// Shutdown stops accepting connections and lets every admitted request
// finish: each connection stops reading new frames, drains its
// in-flight work, flushes the responses and closes. It returns when
// all connections have drained or ctx expires (remaining connections
// are then closed hard). Mirrors http.Server.Shutdown for rbacd's
// signal path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.stopReading()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return errors.New("wire: shutdown deadline exceeded")
	}
}

// Close stops the server immediately: listeners and connections are
// closed, in-flight requests are abandoned.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	s.mu.Unlock()
	s.closeConns()
	s.wg.Wait()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.c.Close()
	}
}

// srvConn is one accepted connection: a reader decoding frames and
// enforcing the in-flight cap, a worker pool executing checks (the
// source of out-of-order responses), and a single writer serializing
// and coalescing response frames.
type srvConn struct {
	srv *Server
	c   net.Conn
	// stopped, set by stopReading, makes the next (or current) blocking
	// frame read fail without closing the socket, so drained responses
	// still flush.
	stopped atomic.Bool
	// pushEpoch and pushCh are the pending-push latch: NotifyEpoch
	// stores the latest epoch and arms the one-slot channel, the writer
	// drains it and emits one EPOCH_PUSH frame. A burst of bumps
	// between two writer wakeups collapses into one push carrying the
	// newest epoch.
	pushEpoch atomic.Uint64
	pushCh    chan struct{}
	// replicaName is the name carried by the last SYNC request on this
	// connection; written only by the read loop and read only after it
	// returns (connection teardown), so it needs no lock.
	replicaName string
}

// notifyPush latches epoch for the writer without ever blocking.
func (sc *srvConn) notifyPush(epoch uint64) {
	sc.pushEpoch.Store(epoch)
	select {
	case sc.pushCh <- struct{}{}:
	default: // a push is already pending; it will carry the new epoch
	}
}

// request is one decoded unit of work handed to the worker pool.
type request struct {
	op     byte
	id     uint32
	check  CheckRequest   // OpCheck
	batch  []CheckRequest // OpCheckBatch
	traced bool           // TraceFlag was set on the request opcode
	tid    [TraceIDSize]byte
	start  time.Time // decode instant; zero unless the RTT hook is wired
}

// response is one frame queued for the writer.
type response struct {
	op      byte
	id      uint32
	payload []byte
	start   time.Time // propagated request.start for the RTT hook
}

// Static single-verdict payloads (read-only).
var (
	verdictAllow = []byte{1}
	verdictDeny  = []byte{0}
	// cacheVerdicts indexes the four CacheFlag verdict bytes by their
	// flag-pair value (bit 0 allow, bit 1 cacheable).
	cacheVerdicts = [4][]byte{{0}, {1}, {2}, {3}}
)

func (sc *srvConn) stopReading() {
	sc.stopped.Store(true)
	sc.c.SetReadDeadline(time.Now())
}

func (sc *srvConn) run() {
	opts := sc.srv.opts
	ins := opts.Instruments
	defer sc.srv.wg.Done()
	defer func() {
		sc.srv.mu.Lock()
		delete(sc.srv.conns, sc)
		_, wasSub := sc.srv.subs[sc]
		delete(sc.srv.subs, sc)
		sc.srv.mu.Unlock()
		if wasSub && ins != nil && ins.Subscribers != nil {
			ins.Subscribers(-1)
		}
		if sc.replicaName != "" && sc.srv.tracker != nil {
			sc.srv.tracker.ReplicaDisconnected(sc.replicaName)
		}
		sc.c.Close()
	}()

	// sem admits at most MaxInFlight requests between decode and
	// response write; out has the same capacity, so enqueues below
	// never block longer than the writer takes to drain.
	sem := make(chan struct{}, opts.MaxInFlight)
	out := make(chan response, opts.MaxInFlight)
	work := make(chan request, opts.MaxInFlight)

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		sc.writeLoop(out, sem, ins)
	}()
	var workerWG sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for req := range work {
				out <- sc.execute(req)
			}
		}()
	}

	sc.readLoop(sem, out, work, ins)

	// Drain: no more frames will be admitted; let the workers finish
	// what was, then let the writer flush it.
	close(work)
	workerWG.Wait()
	close(out)
	writerWG.Wait()
}

// readLoop decodes frames, admits them against the in-flight cap and
// dispatches: cheap opcodes answered inline onto out, checks handed to
// the worker pool. Returns on any read or protocol error.
func (sc *srvConn) readLoop(sem chan struct{}, out chan<- response, work chan<- request, ins *Instruments) {
	opts := sc.srv.opts
	dec := NewDecoder(bufio.NewReaderSize(sc.c, 32<<10), opts.MaxFrame)
	for {
		if opts.ReadTimeout > 0 {
			sc.c.SetReadDeadline(time.Now().Add(opts.ReadTimeout))
		}
		// Checked after arming the deadline: a concurrent stopReading
		// either is observed here or has already expired the deadline,
		// so the read below cannot outlive a drain request.
		if sc.stopped.Load() {
			return
		}
		f, err := dec.Next()
		if err != nil {
			// Clean EOF, deadline, protocol garbage: all end the reading
			// half. Responses already admitted still drain and flush.
			return
		}
		if ins != nil && ins.Request != nil {
			ins.Request(OpName(f.Op))
		}
		// Backpressure: block until a response slot frees up. The writer
		// releases one slot per response written, so a stalled or slow
		// client throttles its own request stream via TCP.
		sem <- struct{}{}
		if ins != nil && ins.Inflight != nil {
			ins.Inflight(+1)
		}
		var start time.Time
		if ins != nil && ins.RTT != nil {
			start = time.Now()
		}
		switch f.Op {
		case OpPing:
			// Echo. The payload aliases the decoder buffer; copy it.
			var echo []byte
			if len(f.Payload) > 0 {
				echo = append([]byte(nil), f.Payload...)
			}
			out <- response{op: OpPing | RespFlag, id: f.ID, payload: echo, start: start}
		case OpPolicyVersion:
			out <- response{op: OpPolicyVersion | RespFlag, id: f.ID,
				payload: AppendEpoch(nil, sc.srv.backend.PolicyEpoch()), start: start}
		case OpSubscribe:
			out <- sc.subscribe(f, start, ins)
		case OpSync:
			out <- sc.syncResponse(f, start, ins)
		case OpCheck, OpCheck | TraceFlag, OpCheck | CacheFlag:
			payload := f.Payload
			req := request{op: f.Op, id: f.ID, start: start}
			if f.Op&CacheFlag != 0 && sc.srv.cache == nil {
				out <- sc.errorResponse(f, ErrCodeUnsupported,
					errors.New("wire: backend does not classify verdict cacheability"), ins)
				continue
			}
			if f.Op&TraceFlag != 0 {
				var err error
				if req.tid, payload, err = ConsumeTraceID(payload); err != nil {
					out <- sc.errorResponse(f, ErrCodeBadRequest, err, ins)
					continue
				}
				req.traced = true
			}
			session, operation, object, err := ConsumeCheck(payload)
			if err != nil {
				out <- sc.errorResponse(f, ErrCodeBadRequest, err, ins)
				continue
			}
			req.check = CheckRequest{Session: session, Operation: operation, Object: object}
			work <- req
		case OpCheckBatch, OpCheckBatch | TraceFlag:
			payload := f.Payload
			req := request{op: f.Op, id: f.ID, start: start}
			if f.Op&TraceFlag != 0 {
				var err error
				if req.tid, payload, err = ConsumeTraceID(payload); err != nil {
					out <- sc.errorResponse(f, ErrCodeBadRequest, err, ins)
					continue
				}
				req.traced = true
			}
			batch, err := ConsumeCheckBatch(payload, nil)
			if err != nil {
				out <- sc.errorResponse(f, ErrCodeBadRequest, err, ins)
				continue
			}
			req.batch = batch
			work <- req
		default:
			out <- sc.errorResponse(f, ErrCodeUnknownOp,
				errors.New("wire: unknown opcode"), ins)
		}
	}
}

func (sc *srvConn) errorResponse(f Frame, code byte, err error, ins *Instruments) response {
	if ins != nil && ins.Error != nil {
		ins.Error(OpName(f.Op))
	}
	return response{op: OpError, id: f.ID, payload: AppendErrorPayload(nil, code, err.Error())}
}

// subscribe registers the connection for epoch pushes and answers with
// the current push epoch. Registration happens before the epoch is
// read, so a bump landing in between is delivered as a push as well —
// the subscriber can observe an epoch twice but never miss one.
func (sc *srvConn) subscribe(f Frame, start time.Time, ins *Instruments) response {
	if len(f.Payload) != 0 {
		return sc.errorResponse(f, ErrCodeBadRequest,
			errors.New("wire: SUBSCRIBE carries no payload"), ins)
	}
	pb := sc.srv.push
	if pb == nil {
		return sc.errorResponse(f, ErrCodeUnsupported,
			errors.New("wire: backend does not push epochs"), ins)
	}
	sc.srv.mu.Lock()
	_, already := sc.srv.subs[sc]
	if !already && sc.srv.opts.MaxSubscribers > 0 &&
		len(sc.srv.subs) >= sc.srv.opts.MaxSubscribers {
		limit := sc.srv.opts.MaxSubscribers
		sc.srv.mu.Unlock()
		return sc.errorResponse(f, ErrCodeSubscribeLimit,
			fmt.Errorf("wire: subscriber limit %d reached", limit), ins)
	}
	sc.srv.subs[sc] = struct{}{}
	sc.srv.mu.Unlock()
	if !already && ins != nil && ins.Subscribers != nil {
		ins.Subscribers(+1)
	}
	return response{op: OpSubscribe | RespFlag, id: f.ID,
		payload: AppendEpoch(nil, pb.PushEpoch()), start: start}
}

// syncResponse serves one SYNC request inline on the read loop: the
// backend caches the encoded snapshot per epoch, so the cost here is
// one payload copy, and ordering sync responses with the frames around
// them keeps the protocol simple. Backend failures condemn the request,
// not the connection.
func (sc *srvConn) syncResponse(f Frame, start time.Time, ins *Instruments) response {
	sb := sc.srv.syncb
	if sb == nil {
		return sc.errorResponse(f, ErrCodeUnsupported,
			errors.New("wire: backend does not serve policy sync"), ins)
	}
	replica, applied, err := ConsumeSyncRequest(f.Payload)
	if err != nil {
		return sc.errorResponse(f, ErrCodeBadRequest, err, ins)
	}
	if replica == "" {
		return sc.errorResponse(f, ErrCodeBadRequest,
			errors.New("wire: SYNC needs a replica name"), ins)
	}
	sc.replicaName = replica
	st, err := sb.SyncSnapshot(replica, applied)
	if err != nil {
		return sc.errorResponse(f, ErrCodeBadRequest, err, ins)
	}
	return response{op: OpSync | RespFlag, id: f.ID, payload: AppendSyncState(nil, st), start: start}
}

// verdictBufPool recycles the batch verdict staging slices; workers run
// concurrently, so the buffer cannot live on the connection.
var verdictBufPool = sync.Pool{New: func() any {
	b := make([]bool, 0, 256)
	return &b
}}

// execute runs one check request against the backend. Responses echo
// the request opcode (trace flag included) with RespFlag set; a traced
// response payload is shaped exactly like the untraced one — the trace
// is retained server-side under the request's id.
func (sc *srvConn) execute(req request) response {
	switch req.op &^ (TraceFlag | CacheFlag) {
	case OpCheck:
		if req.op&CacheFlag != 0 {
			// readLoop admits CacheFlag only when the upgrade exists.
			allowed, cacheable := sc.srv.cache.CheckCacheable(
				req.check.Session, req.check.Operation, req.check.Object)
			var v byte
			if allowed {
				v |= cacheVerdictAllow
			}
			if cacheable {
				v |= cacheVerdictCacheable
			}
			return response{op: req.op | RespFlag, id: req.id, payload: cacheVerdicts[v], start: req.start}
		}
		allowed := false
		if tb := sc.srv.trace; req.traced && tb != nil {
			allowed = tb.CheckTraced(req.check.Session, req.check.Operation, req.check.Object, req.tid)
		} else {
			allowed = sc.srv.backend.Check(req.check.Session, req.check.Operation, req.check.Object)
		}
		p := verdictDeny
		if allowed {
			p = verdictAllow
		}
		return response{op: req.op | RespFlag, id: req.id, payload: p, start: req.start}
	default: // OpCheckBatch
		payload := make([]byte, 0, len(req.batch)+binary.MaxVarintLen64)
		if bb := sc.srv.batch; bb != nil {
			// Batch-native: one engine pass decides the whole frame and
			// one append encodes it.
			vb := verdictBufPool.Get().(*[]bool)
			var vs []bool
			if tb := sc.srv.btrace; req.traced && tb != nil {
				vs = tb.CheckBatchTraced(req.batch, (*vb)[:0], req.tid)
			} else {
				vs = bb.CheckBatch(req.batch, (*vb)[:0])
			}
			payload = AppendVerdicts(payload, vs)
			*vb = vs[:0]
			verdictBufPool.Put(vb)
		} else {
			payload = binary.AppendUvarint(payload, uint64(len(req.batch)))
			for i, r := range req.batch {
				v := byte(0)
				allowed := false
				if tb := sc.srv.trace; req.traced && i == 0 && tb != nil {
					allowed = tb.CheckTraced(r.Session, r.Operation, r.Object, req.tid)
				} else {
					allowed = sc.srv.backend.Check(r.Session, r.Operation, r.Object)
				}
				if allowed {
					v = 1
				}
				payload = append(payload, v)
			}
		}
		return response{op: req.op | RespFlag, id: req.id, payload: payload, start: req.start}
	}
}

// writeLoop serializes responses and epoch pushes onto the socket,
// flushing only when both queues run dry (write coalescing across
// pipelined responses), and releases one in-flight slot per response.
// Pushes ride the same writer, so they interleave with — never
// corrupt — pipelined responses, and a subscriber too slow to drain
// them hits the write deadline and is disconnected like any other
// stalled client.
func (sc *srvConn) writeLoop(out <-chan response, sem <-chan struct{}, ins *Instruments) {
	opts := sc.srv.opts
	bw := bufio.NewWriterSize(sc.c, 32<<10)
	var fbuf []byte
	var pbuf [8]byte
	var werr error
	write := func(op byte, id uint32, payload []byte) {
		if werr != nil {
			return
		}
		if opts.WriteTimeout > 0 {
			sc.c.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		}
		fbuf = AppendFrame(fbuf[:0], op, id, payload)
		if _, werr = bw.Write(fbuf); werr == nil && len(out) == 0 && len(sc.pushCh) == 0 {
			werr = bw.Flush()
		}
		if werr != nil {
			// The socket is dead: unblock the reader (it may be
			// parked on the in-flight cap) and discard the rest.
			sc.c.Close()
		}
	}
	for {
		select {
		case resp, ok := <-out:
			if !ok {
				if werr == nil {
					bw.Flush()
				}
				return
			}
			write(resp.op, resp.id, resp.payload)
			if ins != nil && ins.RTT != nil && !resp.start.IsZero() {
				ins.RTT(OpName(resp.op), time.Since(resp.start).Seconds())
			}
			if ins != nil && ins.Inflight != nil {
				ins.Inflight(-1)
			}
			<-sem
		case <-sc.pushCh:
			// The latch holds the newest epoch; bumps since it was armed
			// collapsed into this one frame.
			write(OpEpochPush, 0, AppendEpoch(pbuf[:0], sc.pushEpoch.Load()))
			if werr == nil && ins != nil && ins.Push != nil {
				ins.Push()
			}
		}
	}
}
