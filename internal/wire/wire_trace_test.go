package wire

import (
	"net"
	"sync"
	"testing"
	"time"
)

// tracedBackend upgrades testBackend with the trace interfaces,
// recording every trace id it is handed.
type tracedBackend struct {
	*testBackend

	mu   sync.Mutex
	tids [][TraceIDSize]byte
}

func (tb *tracedBackend) CheckTraced(session, operation, object string, tid [TraceIDSize]byte) bool {
	tb.mu.Lock()
	tb.tids = append(tb.tids, tid)
	tb.mu.Unlock()
	return tb.Check(session, operation, object)
}

func (tb *tracedBackend) CheckBatch(reqs []CheckRequest, vs []bool) []bool {
	for _, r := range reqs {
		vs = append(vs, tb.Check(r.Session, r.Operation, r.Object))
	}
	return vs
}

func (tb *tracedBackend) CheckBatchTraced(reqs []CheckRequest, vs []bool, tid [TraceIDSize]byte) []bool {
	tb.mu.Lock()
	tb.tids = append(tb.tids, tid)
	tb.mu.Unlock()
	return tb.CheckBatch(reqs, vs)
}

func (tb *tracedBackend) seen() [][TraceIDSize]byte {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return append([][TraceIDSize]byte(nil), tb.tids...)
}

// startTracedServer mirrors startServer for the upgraded backend.
func startTracedServer(t *testing.T, tb *tracedBackend, opts *ServerOptions) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(tb, opts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

func TestTraceIDPayloadRoundTrip(t *testing.T) {
	tid := [TraceIDSize]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	b := AppendTraceID(nil, tid)
	b = AppendCheck(b, "s", "read", "doc")
	got, rest, err := ConsumeTraceID(b)
	if err != nil {
		t.Fatalf("ConsumeTraceID: %v", err)
	}
	if got != tid {
		t.Fatalf("tid = %v, want %v", got, tid)
	}
	s, op, obj, err := ConsumeCheck(rest)
	if err != nil || s != "s" || op != "read" || obj != "doc" {
		t.Fatalf("ConsumeCheck after tid = (%q,%q,%q,%v)", s, op, obj, err)
	}
	if _, _, err := ConsumeTraceID(make([]byte, TraceIDSize-1)); err == nil {
		t.Fatal("ConsumeTraceID accepted a short prefix")
	}
}

func TestOpNameFlags(t *testing.T) {
	cases := map[byte]string{
		OpCheck:                             "check",
		OpCheck | TraceFlag:                 "check",
		OpCheck | TraceFlag | RespFlag:      "check",
		OpCheckBatch | TraceFlag:            "check_batch",
		OpCheckBatch | TraceFlag | RespFlag: "check_batch",
		OpError:                             "error",
		OpPing:                              "ping",
	}
	for op, want := range cases {
		if got := OpName(op); got != want {
			t.Errorf("OpName(%#x) = %q, want %q", op, got, want)
		}
	}
}

func TestCheckTraced(t *testing.T) {
	tb := &tracedBackend{testBackend: newTestBackend()}
	_, addr := startTracedServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tid := [TraceIDSize]byte{0xAB, 1: 0xCD, 15: 0xEF}
	allowed, err := cl.CheckTraced("s1", "read", "doc", tid)
	if err != nil || !allowed {
		t.Fatalf("CheckTraced = (%v, %v), want (true, nil)", allowed, err)
	}
	allowed, err = cl.CheckTraced("s1", "write", "doc", tid)
	if err != nil || allowed {
		t.Fatalf("CheckTraced write = (%v, %v), want (false, nil)", allowed, err)
	}

	btid := [TraceIDSize]byte{7: 0x42}
	verdicts, err := cl.CheckManyTraced([]CheckRequest{
		{Session: "s1", Operation: "read", Object: "a"},
		{Session: "s1", Operation: "write", Object: "b"},
	}, btid)
	if err != nil {
		t.Fatalf("CheckManyTraced: %v", err)
	}
	if len(verdicts) != 2 || !verdicts[0] || verdicts[1] {
		t.Fatalf("verdicts = %v, want [true false]", verdicts)
	}

	seen := tb.seen()
	if len(seen) != 3 || seen[0] != tid || seen[1] != tid || seen[2] != btid {
		t.Fatalf("backend saw tids %v, want [%v %v %v]", seen, tid, tid, btid)
	}
}

// A plain backend must serve TraceFlag requests as ordinary checks:
// the flag is additive, not a hard capability requirement.
func TestCheckTracedPlainBackendDegrades(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tid := [TraceIDSize]byte{1}
	allowed, err := cl.CheckTraced("s1", "read", "doc", tid)
	if err != nil || !allowed {
		t.Fatalf("CheckTraced on plain backend = (%v, %v), want (true, nil)", allowed, err)
	}
	verdicts, err := cl.CheckManyTraced([]CheckRequest{
		{Session: "s1", Operation: "read", Object: "a"},
	}, tid)
	if err != nil || len(verdicts) != 1 || !verdicts[0] {
		t.Fatalf("CheckManyTraced on plain backend = (%v, %v)", verdicts, err)
	}
}

// A truncated trace-id prefix must condemn only the frame, not the
// connection.
func TestTracedBadPrefixKeepsConn(t *testing.T) {
	tb := &tracedBackend{testBackend: newTestBackend()}
	_, addr := startTracedServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// Hand-roll a TraceFlag CHECK whose payload is shorter than a trace
	// id.
	if _, err := cl.roundTrip(OpCheck|TraceFlag, []byte{1, 2, 3}); err == nil {
		t.Fatal("short traced payload did not error")
	} else if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("want *RemoteError, got %T: %v", err, err)
	}
	// The connection must still serve ordinary requests.
	if allowed, err := cl.Check("s1", "read", "doc"); err != nil || !allowed {
		t.Fatalf("Check after bad traced frame = (%v, %v)", allowed, err)
	}
}
