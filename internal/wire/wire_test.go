package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"context"
)

// ---------------------------------------------------------------------------
// Codec

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frame")
	buf := AppendFrame(nil, OpCheck, 42, payload)
	if len(buf) != HeaderSize+len(payload) {
		t.Fatalf("frame length = %d, want %d", len(buf), HeaderSize+len(payload))
	}
	dec := NewDecoder(bytes.NewReader(buf), 0)
	f, err := dec.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Op != OpCheck || f.ID != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("decoded frame = %+v", f)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameRoundTripEmptyPayload(t *testing.T) {
	buf := AppendFrame(nil, OpPing, 7, nil)
	f, err := NewDecoder(bytes.NewReader(buf), 0).Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Op != OpPing || f.ID != 7 || len(f.Payload) != 0 {
		t.Fatalf("decoded frame = %+v", f)
	}
}

func TestDecoderRejects(t *testing.T) {
	good := AppendFrame(nil, OpPing, 1, []byte("x"))

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 0x00
		if _, err := NewDecoder(bytes.NewReader(b), 0).Next(); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[2] = Version + 1
		if _, err := NewDecoder(bytes.NewReader(b), 0).Next(); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		b := AppendFrame(nil, OpCheck, 1, make([]byte, 100))
		if _, err := NewDecoder(bytes.NewReader(b), HeaderSize+50).Next(); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := NewDecoder(bytes.NewReader(good[:5]), 0).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, err := NewDecoder(bytes.NewReader(good[:len(good)-1]), 0).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
		}
	})
}

func TestCheckPayloadRoundTrip(t *testing.T) {
	b := AppendCheck(nil, "sid-1", "approve", "order#9")
	sess, op, obj, err := ConsumeCheck(b)
	if err != nil {
		t.Fatalf("ConsumeCheck: %v", err)
	}
	if sess != "sid-1" || op != "approve" || obj != "order#9" {
		t.Fatalf("got (%q %q %q)", sess, op, obj)
	}
	if _, _, _, err := ConsumeCheck(append(b, 0)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing byte: err = %v, want ErrBadPayload", err)
	}
	if _, _, _, err := ConsumeCheck(b[:len(b)-2]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated: err = %v, want ErrBadPayload", err)
	}
}

func TestCheckBatchRoundTrip(t *testing.T) {
	reqs := []CheckRequest{
		{Session: "s1", Operation: "read", Object: "a"},
		{Session: "s2", Operation: "write", Object: "b"},
		{Session: "", Operation: "", Object: ""},
	}
	b := AppendCheckBatch(nil, reqs)
	got, err := ConsumeCheckBatch(b, nil)
	if err != nil {
		t.Fatalf("ConsumeCheckBatch: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("len = %d, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("req %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
	if _, err := ConsumeCheckBatch(append(b, 9), nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing byte: err = %v, want ErrBadPayload", err)
	}
}

func TestVerdictsRoundTrip(t *testing.T) {
	vs := []bool{true, false, true, true}
	b := AppendVerdicts(nil, vs)
	got, err := ConsumeVerdicts(b, nil)
	if err != nil {
		t.Fatalf("ConsumeVerdicts: %v", err)
	}
	if len(got) != len(vs) {
		t.Fatalf("len = %d, want %d", len(got), len(vs))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("verdict %d = %v, want %v", i, got[i], vs[i])
		}
	}
	b[1] = 7 // a verdict byte other than 0/1
	if _, err := ConsumeVerdicts(b, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("bad verdict byte: err = %v, want ErrBadPayload", err)
	}
}

func TestErrorPayloadRoundTrip(t *testing.T) {
	b := AppendErrorPayload(nil, ErrCodeBadRequest, "nope")
	code, msg, err := ConsumeErrorPayload(b)
	if err != nil {
		t.Fatalf("ConsumeErrorPayload: %v", err)
	}
	if code != ErrCodeBadRequest || msg != "nope" {
		t.Fatalf("got (%d %q)", code, msg)
	}
	if _, _, err := ConsumeErrorPayload(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty: err = %v, want ErrBadPayload", err)
	}
}

func TestEpochRoundTrip(t *testing.T) {
	b := AppendEpoch(nil, 0xDEADBEEF01)
	e, err := ConsumeEpoch(b)
	if err != nil || e != 0xDEADBEEF01 {
		t.Fatalf("got (%d, %v)", e, err)
	}
	if _, err := ConsumeEpoch(b[:7]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short: err = %v, want ErrBadPayload", err)
	}
}

// ---------------------------------------------------------------------------
// Server + client integration

// testBackend is a deterministic Backend: session "blocked" parks until
// release is closed (for pipelining and drain tests), any other check
// allows iff operation == "read".
type testBackend struct {
	epoch   atomic.Uint64
	release chan struct{}
	parked  atomic.Int32
}

func newTestBackend() *testBackend {
	tb := &testBackend{release: make(chan struct{})}
	tb.epoch.Store(3)
	return tb
}

func (tb *testBackend) Check(session, operation, object string) bool {
	if session == "blocked" {
		tb.parked.Add(1)
		<-tb.release
	}
	return operation == "read"
}

func (tb *testBackend) PolicyEpoch() uint64 { return tb.epoch.Load() }

// startServer runs a wire server on a loopback listener and returns its
// address plus a cleanup-registered handle.
func startServer(t *testing.T, tb *testBackend, opts *ServerOptions) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(tb, opts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

func TestClientServerBasics(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Conns: 2, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	allowed, err := cl.Check("s1", "read", "doc")
	if err != nil || !allowed {
		t.Fatalf("Check read = (%v, %v), want (true, nil)", allowed, err)
	}
	allowed, err = cl.Check("s1", "write", "doc")
	if err != nil || allowed {
		t.Fatalf("Check write = (%v, %v), want (false, nil)", allowed, err)
	}
	epoch, err := cl.PolicyVersion()
	if err != nil || epoch != 3 {
		t.Fatalf("PolicyVersion = (%d, %v), want (3, nil)", epoch, err)
	}
	verdicts, err := cl.CheckMany([]CheckRequest{
		{Session: "s1", Operation: "read", Object: "a"},
		{Session: "s1", Operation: "write", Object: "b"},
		{Session: "s2", Operation: "read", Object: "c"},
	})
	if err != nil {
		t.Fatalf("CheckMany: %v", err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if verdicts[i] != want[i] {
			t.Fatalf("verdicts = %v, want %v", verdicts, want)
		}
	}
}

func TestClientConcurrent(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Conns: 2, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				op := "read"
				want := true
				if (g+i)%2 == 1 {
					op, want = "write", false
				}
				got, err := cl.Check("s", op, "o")
				if err != nil {
					t.Errorf("Check: %v", err)
					return
				}
				if got != want {
					t.Errorf("Check(%q) = %v, want %v", op, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPipeliningOutOfOrder proves responses are correlated by id, not
// arrival order: a check parked in the backend must not block a ping
// issued after it on the same connection.
func TestPipeliningOutOfOrder(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Conns: 1, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	checkDone := make(chan error, 1)
	go func() {
		_, err := cl.Check("blocked", "read", "doc")
		checkDone <- err
	}()
	// Wait until the check is parked inside the backend.
	for i := 0; tb.parked.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("check never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}
	// The ping is issued after the parked check on the same connection;
	// it can only complete if the server responds out of order.
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping behind parked check: %v", err)
	}
	select {
	case err := <-checkDone:
		t.Fatalf("check finished before release (err=%v)", err)
	default:
	}
	close(tb.release)
	if err := <-checkDone; err != nil {
		t.Fatalf("released check: %v", err)
	}
}

// TestBackpressureMaxInFlight asserts the server never admits more than
// MaxInFlight requests on one connection, observed via the Inflight
// instrument while the backend is parked.
func TestBackpressureMaxInFlight(t *testing.T) {
	tb := newTestBackend()
	var inflight, peak atomic.Int64
	ins := &Instruments{Inflight: func(d float64) {
		cur := inflight.Add(int64(d))
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
	}}
	const cap = 4
	_, addr := startServer(t, tb, &ServerOptions{MaxInFlight: cap, Workers: 8, Instruments: ins})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// Fire 32 parked checks at a server capped at 4 in flight.
	var buf []byte
	for id := uint32(0); id < 32; id++ {
		buf = AppendFrame(buf, OpCheck, id, AppendCheck(nil, "blocked", "read", "doc"))
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Give the reader ample time to over-admit if it were going to.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && tb.parked.Load() < cap {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if p := peak.Load(); p > cap {
		t.Fatalf("peak in-flight = %d, want <= %d", p, cap)
	}
	close(tb.release)
	// All 32 responses must still arrive.
	dec := NewDecoder(bufio.NewReader(nc), 0)
	seen := map[uint32]bool{}
	for len(seen) < 32 {
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := dec.Next()
		if err != nil {
			t.Fatalf("after %d responses: %v", len(seen), err)
		}
		if f.Op != OpCheck|RespFlag {
			t.Fatalf("op = %#x", f.Op)
		}
		seen[f.ID] = true
	}
}

// TestOversizedFrameDropsConn: a frame above MaxFrame must kill the
// connection (the stream cannot be resynchronized).
func TestOversizedFrameDropsConn(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, &ServerOptions{MaxFrame: 256})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write(AppendFrame(nil, OpPing, 1, make([]byte, 1024))); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("expected clean close, got read error %v", err)
	}
}

// TestUnknownOpcodeKeepsConn: unknown opcodes get an ERROR frame and the
// connection keeps serving.
func TestUnknownOpcodeKeepsConn(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	var buf []byte
	buf = AppendFrame(buf, 0x6E, 9, nil) // unknown opcode
	buf = AppendFrame(buf, OpPing, 10, []byte("still here"))
	if _, err := nc.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	dec := NewDecoder(bufio.NewReader(nc), 0)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := dec.Next()
	if err != nil {
		t.Fatalf("first response: %v", err)
	}
	if f.Op != OpError || f.ID != 9 {
		t.Fatalf("first response = op %#x id %d, want ERROR id 9", f.Op, f.ID)
	}
	code, _, err := ConsumeErrorPayload(f.Payload)
	if err != nil || code != ErrCodeUnknownOp {
		t.Fatalf("error payload = (%d, %v), want code %d", code, err, ErrCodeUnknownOp)
	}
	f, err = dec.Next()
	if err != nil {
		t.Fatalf("second response: %v", err)
	}
	if f.Op != OpPing|RespFlag || f.ID != 10 || string(f.Payload) != "still here" {
		t.Fatalf("second response = %+v", f)
	}
}

// TestBadPayloadError: a CHECK with a garbage payload gets an ERROR
// carrying its request id and the connection survives.
func TestBadPayloadError(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write(AppendFrame(nil, OpCheck, 77, []byte{0xFF, 0xFF})); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := NewDecoder(bufio.NewReader(nc), 0).Next()
	if err != nil {
		t.Fatalf("response: %v", err)
	}
	if f.Op != OpError || f.ID != 77 {
		t.Fatalf("response = op %#x id %d, want ERROR id 77", f.Op, f.ID)
	}
	code, _, err := ConsumeErrorPayload(f.Payload)
	if err != nil || code != ErrCodeBadRequest {
		t.Fatalf("error payload = (%d, %v), want code %d", code, err, ErrCodeBadRequest)
	}
}

// TestClientRemoteError: the client surfaces ERROR frames as *RemoteError.
func TestClientRemoteError(t *testing.T) {
	// A raw server that answers everything with ERROR.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		dec := NewDecoder(bufio.NewReader(c), 0)
		for {
			f, err := dec.Next()
			if err != nil {
				return
			}
			c.Write(AppendFrame(nil, OpError, f.ID, AppendErrorPayload(nil, ErrCodeUnknownOp, "go away")))
		}
	}()
	cl, err := Dial(ln.Addr().String(), &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	_, err = cl.Check("s", "read", "o")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != ErrCodeUnknownOp || re.Msg != "go away" {
		t.Fatalf("err = %v, want RemoteError{2, go away}", err)
	}
}

// TestServerReadTimeout: a client that trickles (or goes silent) is
// disconnected once the per-frame read deadline expires.
func TestServerReadTimeout(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, &ServerOptions{ReadTimeout: 100 * time.Millisecond})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// Send half a header, then stall.
	if _, err := nc.Write([]byte{magic0, magic1, Version}); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("expected server to close cleanly, got %v", err)
	}
}

// TestShutdownDrains: Shutdown must let an admitted (parked) check
// finish and flush its response before the connection closes.
func TestShutdownDrains(t *testing.T) {
	tb := newTestBackend()
	srv, addr := startServer(t, tb, nil)
	cl, err := Dial(addr, &ClientOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	checkDone := make(chan error, 1)
	var allowed atomic.Bool
	go func() {
		ok, err := cl.Check("blocked", "read", "doc")
		allowed.Store(ok)
		checkDone <- err
	}()
	for i := 0; tb.parked.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("check never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown reach the drain wait
	close(tb.release)

	if err := <-checkDone; err != nil {
		t.Fatalf("in-flight check during shutdown: %v", err)
	}
	if !allowed.Load() {
		t.Fatal("in-flight check verdict lost during shutdown")
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestClientRedial: the client replaces a connection the server dropped.
func TestClientRedial(t *testing.T) {
	tb := newTestBackend()
	_, addr := startServer(t, tb, &ServerOptions{MaxFrame: 256})
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second, MaxFrame: 1 << 20})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	// Provoke a server-side drop: this frame exceeds the server's max.
	big := make([]byte, 512)
	if _, err := cl.roundTrip(OpPing, big); err == nil {
		t.Fatal("oversized ping unexpectedly succeeded")
	}
	// The pool must redial and keep working.
	var lastErr error
	for i := 0; i < 50; i++ {
		if lastErr = cl.Ping(); lastErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("ping after redial: %v", lastErr)
	}
}

// TestInstrumentsCounts: Request and Error hooks fire per frame.
func TestInstrumentsCounts(t *testing.T) {
	tb := newTestBackend()
	var reqs, errs sync.Map // opcode -> *atomic.Int64
	count := func(m *sync.Map, op string) {
		v, _ := m.LoadOrStore(op, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	ins := &Instruments{
		Request: func(op string) { count(&reqs, op) },
		Error:   func(op string) { count(&errs, op) },
	}
	_, addr := startServer(t, tb, &ServerOptions{Instruments: ins})
	cl, err := Dial(addr, &ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	cl.Ping()
	cl.Check("s", "read", "o")
	cl.CheckMany([]CheckRequest{{Session: "s", Operation: "read", Object: "o"}})
	cl.PolicyVersion()
	got := func(m *sync.Map, op string) int64 {
		v, ok := m.Load(op)
		if !ok {
			return 0
		}
		return v.(*atomic.Int64).Load()
	}
	for _, op := range []string{"ping", "check", "check_batch", "policy_version"} {
		if n := got(&reqs, op); n != 1 {
			t.Errorf("requests[%s] = %d, want 1", op, n)
		}
	}
	if n := got(&errs, "check"); n != 0 {
		t.Errorf("errors[check] = %d, want 0", n)
	}
}
