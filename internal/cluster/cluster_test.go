package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"activerbac"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

const basePolicy = `
policy "global"
role PM
role PC
hierarchy PM > PC
permission PC: write po.dat
user bob: PC
`

func opts() *activerbac.Options {
	return &activerbac.Options{Clock: activerbac.NewSimClock(t0)}
}

func newCluster(t *testing.T, followers ...string) *Cluster {
	t.Helper()
	c, err := New("hq", basePolicy, opts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, f := range followers {
		if _, err := c.AddFollower(f, opts()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClusterConvergesOnCreation(t *testing.T) {
	c := newCluster(t, "eu", "apac")
	if !c.Converged() {
		t.Fatalf("fresh cluster not converged: %v", c.Status())
	}
	if len(c.Nodes()) != 3 || c.Nodes()[0].Name != "hq" {
		t.Fatalf("Nodes = %v", c.Nodes())
	}
	st := c.Status()
	if st["hq"] != st["eu"] || st["eu"] != st["apac"] {
		t.Fatalf("Status = %v", st)
	}
}

func TestClusterFollowerValidation(t *testing.T) {
	c := newCluster(t, "eu")
	if _, err := c.AddFollower("eu", opts()); err == nil {
		t.Fatal("duplicate follower accepted")
	}
	if _, err := c.AddFollower("hq", opts()); err == nil {
		t.Fatal("follower named like primary accepted")
	}
	if _, err := c.AddFollower("", opts()); err == nil {
		t.Fatal("empty follower name accepted")
	}
	if err := c.RemoveFollower("nope"); err == nil {
		t.Fatal("removing unknown follower accepted")
	}
	if err := c.RemoveFollower("eu"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Follower("eu"); ok {
		t.Fatal("removed follower still registered")
	}
}

func TestClusterPropagatesPolicy(t *testing.T) {
	c := newCluster(t, "eu", "apac")
	edited := basePolicy + "cardinality PM 1\n"
	rep, err := c.ApplyPolicy(edited)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Touched() != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !c.Converged() {
		t.Fatalf("not converged after apply: %v", c.Status())
	}
	if c.Version() != VersionOf(edited) {
		t.Fatal("cluster version not updated")
	}
	// The new constraint is live on every node independently.
	for _, n := range c.Nodes() {
		sys := n.System
		user := activerbac.UserID("u-" + n.Name)
		if err := sys.AddUser(user); err != nil {
			t.Fatal(err)
		}
		if err := sys.AssignUser(user, "PM"); err != nil {
			t.Fatal(err)
		}
		sid, err := sys.CreateSession(user)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AddActiveRole(user, sid, "PM"); err != nil {
			t.Fatalf("node %s: %v", n.Name, err)
		}
		// Cardinality 1 per node: a second local activation is denied.
		if err := sys.AssignUser("bob", "PM"); err != nil {
			t.Fatal(err)
		}
		sid2, err := sys.CreateSession("bob")
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AddActiveRole("bob", sid2, "PM"); !errors.Is(err, activerbac.ErrDenied) {
			t.Fatalf("node %s: second PM activation: %v", n.Name, err)
		}
	}
}

func TestClusterSessionsStayLocal(t *testing.T) {
	c := newCluster(t, "eu")
	hq := c.Primary().System
	eu, _ := c.Follower("eu")
	sid, err := hq.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := hq.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	// The session exists only at HQ.
	if eu.System.CheckAccess(sid, activerbac.Permission{Operation: "write", Object: "po.dat"}) {
		t.Fatal("session leaked to the follower")
	}
	if !hq.CheckAccess(sid, activerbac.Permission{Operation: "write", Object: "po.dat"}) {
		t.Fatal("primary session broken")
	}
}

func TestClusterPrimaryRejectionStopsPropagation(t *testing.T) {
	c := newCluster(t, "eu")
	before := c.Version()
	if _, err := c.ApplyPolicy("role A\nrole A\n"); err == nil {
		t.Fatal("inconsistent policy accepted")
	}
	if c.Version() != before {
		t.Fatal("version changed after rejected apply")
	}
	if !c.Converged() {
		t.Fatal("cluster diverged after rejected apply")
	}
}

func TestClusterLaggingFollowerReconciles(t *testing.T) {
	c := newCluster(t, "eu")
	// Sabotage the follower so the next propagation fails: purposes are
	// append-only, so a follower that already has an extra purpose will
	// reject a policy without it.
	eu, _ := c.Follower("eu")
	if _, err := eu.System.ApplyPolicy(basePolicy + "purpose rogue\n"); err != nil {
		t.Fatal(err)
	}
	edited := basePolicy + "cardinality PM 1\n"
	_, err := c.ApplyPolicy(edited)
	if err == nil {
		t.Fatal("lagging follower not reported")
	}
	if !strings.Contains(err.Error(), `"eu"`) {
		t.Fatalf("error does not name the follower: %v", err)
	}
	if c.Converged() {
		t.Fatal("cluster reports converged with a lagging follower")
	}
	// Reconcile still fails (the rogue purpose persists).
	if still := c.Reconcile(); len(still) != 1 || still[0] != "eu" {
		t.Fatalf("Reconcile = %v", still)
	}
	// Operator remediation: replace the follower, then reconcile.
	if err := c.RemoveFollower("eu"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFollower("eu", opts()); err != nil {
		t.Fatal(err)
	}
	if still := c.Reconcile(); len(still) != 0 {
		t.Fatalf("Reconcile after replacement = %v", still)
	}
	if !c.Converged() {
		t.Fatalf("not converged after replacement: %v", c.Status())
	}
}

func TestVersionOfStable(t *testing.T) {
	a := VersionOf("role A\n")
	b := VersionOf("role A\n")
	if a != b || a == VersionOf("role B\n") || len(a) != 16 {
		t.Fatalf("VersionOf unstable: %q %q", a, b)
	}
}
