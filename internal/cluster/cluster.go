// Package cluster implements the paper's future-work item "to provide
// distributed access control for enterprises": one logical policy
// enforced by many enforcement points. A Cluster owns a primary
// authorization System and any number of followers; policy changes are
// applied on the primary and propagated to every follower, each of
// which regenerates its own rule pool incrementally. Sessions and
// activations stay local to the node that created them (as in any
// distributed RBAC deployment); the *policy* — roles, hierarchy, SoD,
// constraints — is what the cluster keeps consistent.
//
// Version identifiers are content hashes of the policy source, so
// operators can verify convergence without comparing full texts.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"activerbac"
)

// Version identifies a policy revision by content hash.
type Version string

// VersionOf computes the policy version of a source text.
func VersionOf(policySource string) Version {
	sum := sha256.Sum256([]byte(policySource))
	return Version(hex.EncodeToString(sum[:8]))
}

// Node is one enforcement point in the cluster.
type Node struct {
	// Name identifies the node (e.g. a site or availability zone).
	Name string
	// System is the node's authorization engine.
	System *activerbac.System
}

// Version reports the node's current policy version.
func (n *Node) Version() Version { return VersionOf(n.System.PolicySource()) }

// Cluster distributes one policy across enforcement points.
type Cluster struct {
	mu        sync.Mutex
	primary   *Node
	followers map[string]*Node
	source    string
	// lagging records followers whose last propagation failed; they are
	// retried on the next ApplyPolicy or Reconcile.
	lagging map[string]error
}

// New builds a cluster around a primary node built from policySource.
func New(primaryName, policySource string, opts *activerbac.Options) (*Cluster, error) {
	sys, err := activerbac.Open(policySource, opts)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		primary:   &Node{Name: primaryName, System: sys},
		followers: make(map[string]*Node),
		source:    policySource,
		lagging:   make(map[string]error),
	}, nil
}

// Primary returns the primary node.
func (c *Cluster) Primary() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// AddFollower creates a follower enforcement point from the current
// policy and registers it.
func (c *Cluster) AddFollower(name string, opts *activerbac.Options) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == "" || name == c.primary.Name {
		return nil, fmt.Errorf("cluster: invalid follower name %q", name)
	}
	if _, dup := c.followers[name]; dup {
		return nil, fmt.Errorf("cluster: follower %q already registered", name)
	}
	sys, err := activerbac.Open(c.source, opts)
	if err != nil {
		return nil, err
	}
	n := &Node{Name: name, System: sys}
	c.followers[name] = n
	return n, nil
}

// RemoveFollower detaches and closes a follower.
func (c *Cluster) RemoveFollower(name string) error {
	c.mu.Lock()
	n, ok := c.followers[name]
	if ok {
		delete(c.followers, name)
		delete(c.lagging, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: follower %q not registered", name)
	}
	return n.System.Close()
}

// Follower returns a registered follower.
func (c *Cluster) Follower(name string) (*Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.followers[name]
	return n, ok
}

// Nodes lists every node, primary first, followers sorted by name.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, 1+len(c.followers))
	out = append(out, c.primary)
	names := make([]string, 0, len(c.followers))
	for n := range c.followers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, c.followers[n])
	}
	return out
}

// Version reports the cluster's target policy version (the primary's).
func (c *Cluster) Version() Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	return VersionOf(c.source)
}

// ApplyPolicy validates the new policy on the primary, then propagates
// it to every follower. The primary is authoritative: if it rejects the
// change, nothing is propagated. A follower that fails to apply is
// marked lagging and retried by Reconcile; the error is joined into the
// returned error (the primary's report is still returned).
func (c *Cluster) ApplyPolicy(policySource string) (activerbac.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, err := c.primary.System.ApplyPolicy(policySource)
	if err != nil {
		return rep, err
	}
	c.source = policySource
	var errs []error
	for name, n := range c.followers {
		if _, err := n.System.ApplyPolicy(policySource); err != nil {
			c.lagging[name] = err
			errs = append(errs, fmt.Errorf("cluster: follower %q: %w", name, err))
		} else {
			delete(c.lagging, name)
		}
	}
	return rep, errors.Join(errs...)
}

// Reconcile retries lagging followers against the current policy and
// returns the names still lagging afterwards.
func (c *Cluster) Reconcile() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var still []string
	for name := range c.lagging {
		n, ok := c.followers[name]
		if !ok {
			delete(c.lagging, name)
			continue
		}
		if _, err := n.System.ApplyPolicy(c.source); err != nil {
			c.lagging[name] = err
			still = append(still, name)
			continue
		}
		delete(c.lagging, name)
	}
	sort.Strings(still)
	return still
}

// Converged reports whether every node is at the cluster version.
func (c *Cluster) Converged() bool {
	target := c.Version()
	for _, n := range c.Nodes() {
		if n.Version() != target {
			return false
		}
	}
	return true
}

// Status summarizes per-node versions for operators.
func (c *Cluster) Status() map[string]Version {
	out := make(map[string]Version)
	for _, n := range c.Nodes() {
		out[n.Name] = n.Version()
	}
	return out
}

// Close shuts down every node.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	if err := c.primary.System.Close(); err != nil {
		errs = append(errs, err)
	}
	for _, n := range c.followers {
		if err := n.System.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
