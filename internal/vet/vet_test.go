package vet

import (
	"strings"
	"testing"
)

// runOn parses one source file attributed to package path rel and runs
// the given analyzer over it.
func runOn(t *testing.T, a *Analyzer, rel, src string) []Diagnostic {
	t.Helper()
	pkg, err := ParseSource(rel, "src.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Run([]Package{pkg}, []*Analyzer{a})
}

func wantDiags(t *testing.T, diags []Diagnostic, want int) {
	t.Helper()
	if len(diags) != want {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), want, diags)
	}
}

// --- engineclock ---------------------------------------------------

// TestEngineClockFlagsWallClock reproduces the pre-fix state of
// engine.go/lane.go: wall-clock reads inside the enforcement path.
func TestEngineClockFlagsWallClock(t *testing.T) {
	src := `package sentinel

import "time"

func (e *Engine) observe() {
	t0 := time.Now()
	_ = time.Since(t0)
	_ = time.Until(t0)
}
`
	diags := runOn(t, EngineClock, "internal/sentinel", src)
	wantDiags(t, diags, 3)
	for _, d := range diags {
		if !strings.Contains(d.Message, "engine clock") {
			t.Errorf("diagnostic should point at the engine clock, got %q", d.Message)
		}
	}
}

// TestEngineClockHonorsImportRename: renaming the time package must not
// hide the call.
func TestEngineClockHonorsImportRename(t *testing.T) {
	src := `package event

import stdtime "time"

func stamp() { _ = stdtime.Now() }
`
	wantDiags(t, runOn(t, EngineClock, "internal/event", src), 1)
}

// TestEngineClockAllowsEngineClockAndOtherPackages: clk.Now() is the
// sanctioned form, time.Time values are fine, and packages outside the
// enforcement path may use wall clocks freely.
func TestEngineClockAllowsEngineClockAndOtherPackages(t *testing.T) {
	clean := `package sentinel

import "time"

func (e *Engine) observe() {
	t0 := e.clk.Now()
	var d time.Duration
	_ = e.clk.Now().Sub(t0)
	_ = d
}
`
	wantDiags(t, runOn(t, EngineClock, "internal/sentinel", clean), 0)

	elsewhere := `package audit

import "time"

func stamp() { _ = time.Now() }
`
	wantDiags(t, runOn(t, EngineClock, "internal/audit", elsewhere), 0)
}

// TestEngineClockCoversCore: per-rule evaluation timing lives in
// internal/core now, so a wall-clock read there is a violation; the
// injected-clock form (p.det.Clock().Now()) passes.
func TestEngineClockCoversCore(t *testing.T) {
	dirty := `package core

import "time"

func (p *Pool) runRule() { _ = time.Now() }
`
	wantDiags(t, runOn(t, EngineClock, "internal/core", dirty), 1)

	clean := `package core

func (p *Pool) runRule() { _ = p.det.Clock().Now() }
`
	wantDiags(t, runOn(t, EngineClock, "internal/core", clean), 0)
}

// --- obsnil --------------------------------------------------------

// TestObsNilFlagsUnguardedDeref: touching e.obs.Decisions without a nil
// check crashes every system built without an Observer.
func TestObsNilFlagsUnguardedDeref(t *testing.T) {
	src := `package sentinel

func (e *Engine) count() {
	e.obs.Decisions.Inc()
}
`
	diags := runOn(t, ObsNil, "internal/sentinel", src)
	wantDiags(t, diags, 1)
	if !strings.Contains(diags[0].Message, "nil") {
		t.Errorf("diagnostic should mention the missing nil check, got %q", diags[0].Message)
	}
}

// TestObsNilAcceptsGuardedIdioms covers the three guard shapes used in
// the codebase: direct compare, snapshot-into-local, and if-scoped
// assignment.
func TestObsNilAcceptsGuardedIdioms(t *testing.T) {
	src := `package sentinel

func (e *Engine) direct() {
	if e.obs != nil {
		e.obs.Decisions.Inc()
	}
}

func (e *Engine) snapshot() {
	o := e.obs
	if o != nil {
		o.Decisions.Inc()
	}
	if o.Traces != nil {
		o.Traces.Start()
	}
}

func (ln *lane) scoped() {
	if ins := ln.d.ins; ins != nil {
		ins.LaneWait("g", 0)
	}
}
`
	wantDiags(t, runOn(t, ObsNil, "internal/sentinel", src), 0)
}

// TestObsNilCoversSamplerAndSlow: the telemetry pointers added with
// sampled tracing and slow-decision capture are optional like the trace
// ring — unguarded chains through them are violations, guarded ones
// pass.
func TestObsNilCoversSamplerAndSlow(t *testing.T) {
	dirty := `package sentinel

func (e *Engine) sample(o *Observer) {
	_ = o.Sampler.Sample(e.clk.Now())
	o.Slow.Record(rec)
}
`
	wantDiags(t, runOn(t, ObsNil, "internal/sentinel", dirty), 2)

	clean := `package sentinel

func (e *Engine) sample(o *Observer) {
	if s := o.Sampler; s != nil {
		_ = s.Sample(e.clk.Now())
	}
	if sl := o.Slow; sl != nil && sl.Exceeds(d) {
		sl.Record(rec)
	}
}
`
	wantDiags(t, runOn(t, ObsNil, "internal/sentinel", clean), 0)
}

// TestObsNilIgnoresOtherPackages: the rule only applies to the four
// hot-path packages that treat observability as optional.
func TestObsNilIgnoresOtherPackages(t *testing.T) {
	src := `package rbacd

func run(s *server) { s.obs.Decisions.Inc() }
`
	wantDiags(t, runOn(t, ObsNil, "cmd/rbacd", src), 0)
}

// --- lockorder -----------------------------------------------------

// TestLockOrderFlagsInversion: taking emu while qmu is held inverts the
// documented order and can deadlock against drain().
func TestLockOrderFlagsInversion(t *testing.T) {
	src := `package event

func (ln *lane) bad() {
	ln.qmu.Lock()
	ln.emu.Lock()
	ln.emu.Unlock()
	ln.qmu.Unlock()
}
`
	diags := runOn(t, LockOrder, "internal/event", src)
	wantDiags(t, diags, 1)
	if !strings.Contains(diags[0].Message, "qmu") {
		t.Errorf("diagnostic should name the held mutex, got %q", diags[0].Message)
	}
}

// TestLockOrderAcceptsDocumentedOrder mirrors drain(): emu first, qmu
// taken and released repeatedly inside.
func TestLockOrderAcceptsDocumentedOrder(t *testing.T) {
	src := `package event

func (ln *lane) drain() {
	ln.emu.Lock()
	for {
		ln.qmu.Lock()
		ln.qmu.Unlock()
		break
	}
	ln.emu.Unlock()
}

func (ln *lane) sequential() {
	ln.qmu.Lock()
	ln.qmu.Unlock()
	ln.emu.Lock()
	ln.emu.Unlock()
}
`
	wantDiags(t, runOn(t, LockOrder, "internal/event", src), 0)
}

// TestLockOrderSkipsDefer: a deferred emu.Lock runs at function exit,
// after the linear body released qmu; the scan must not misread it.
func TestLockOrderSkipsDefer(t *testing.T) {
	src := `package event

func (ln *lane) deferred() {
	ln.qmu.Lock()
	defer func() { ln.emu.Lock(); ln.emu.Unlock() }()
	ln.qmu.Unlock()
}
`
	wantDiags(t, runOn(t, LockOrder, "internal/event", src), 0)
}

// --- snapimmut -----------------------------------------------------

// TestSnapImmutFlagsPublishedWrites: mutating a snapshot that arrived
// through a receiver, parameter or package variable is the race the
// copy-on-write protocol exists to prevent.
func TestSnapImmutFlagsPublishedWrites(t *testing.T) {
	src := `package rbac

// accessView is the published policy snapshot.
//
// rbacvet:snapshot
type accessView struct {
	epoch    int
	sessions map[string]int
}

var current accessView

func patchParam(v *accessView) {
	v.epoch = 7
	v.sessions["s"] = 1
}

func patchGlobal() {
	current.epoch++
}
`
	diags := runOn(t, SnapImmut, "internal/rbac", src)
	wantDiags(t, diags, 3)
	for _, d := range diags {
		if !strings.Contains(d.Message, "immutable") {
			t.Errorf("diagnostic should explain the immutability invariant, got %q", d.Message)
		}
	}
}

// TestSnapImmutAllowsBuilders mirrors publishPolicyLocked and
// sessionViewLocked: composite-literal construction plus population in
// the same function is the sanctioned shape, and rebinding a local to a
// fresh snapshot is not a write through one.
func TestSnapImmutAllowsBuilders(t *testing.T) {
	src := `package rbac

// rbacvet:snapshot
type accessView struct {
	epoch    int
	sessions map[string]int
}

func build(old *accessView) *accessView {
	nv := &accessView{epoch: old.epoch + 1, sessions: map[string]int{}}
	nv.sessions["s"] = 1
	nv.epoch++
	var zero accessView
	zero.epoch = 1
	old = nv // rebinding, not a field write
	return old
}
`
	wantDiags(t, runOn(t, SnapImmut, "internal/rbac", src), 0)
}

// TestSnapImmutIgnoresUnmarkedTypes: only structs carrying the doc
// marker participate; ordinary mutable state is untouched.
func TestSnapImmutIgnoresUnmarkedTypes(t *testing.T) {
	src := `package rbac

type scratch struct{ n int }

func bump(s *scratch) { s.n++ }
`
	wantDiags(t, runOn(t, SnapImmut, "internal/rbac", src), 0)
}

// --- framework -----------------------------------------------------

// TestDiagnosticFormat pins the go-vet-style rendering the driver and
// editors rely on.
// --- batchsnap -----------------------------------------------------

// TestBatchSnapFlagsPerTupleRecapture: eligibility checks and epoch
// loads inside a batch function's per-tuple loop revert the batch to
// per-tuple snapshot cost and must be flagged.
func TestBatchSnapFlagsPerTupleRecapture(t *testing.T) {
	src := `package sentinel

func (e *Engine) DecideCheckBatch(tuples []CheckTuple) {
	for i := range tuples {
		_ = e.cacheable("ev")
		_ = e.fp.epoch.Load()
		_, _ = e.det.SoleScopedSub("ev")
		_ = e.store.Epoch()
		_ = i
	}
}
`
	diags := runOn(t, BatchSnap, "internal/sentinel", src)
	wantDiags(t, diags, 4)
	for _, d := range diags {
		if !strings.Contains(d.Message, "once per batch") {
			t.Errorf("diagnostic should demand one capture per batch, got %q", d.Message)
		}
	}
}

// TestBatchSnapAcceptsOneCapturePerBatch mirrors the real batch path:
// captures before the loops, per-session generation reads and stores
// inside them.
func TestBatchSnapAcceptsOneCapturePerBatch(t *testing.T) {
	clean := `package sentinel

func (e *Engine) DecideCheckBatch(tuples []CheckTuple) {
	fp := e.fp
	cacheable := fp != nil && e.cacheable("ev")
	var epoch uint64
	if cacheable {
		epoch = fp.epoch.Load()
	}
	for i := range tuples {
		_ = fp.sgen(tuples[i].Session) // per-session state: allowed
		fp.store(nil, nil, epoch, 0)
	}
}
`
	wantDiags(t, runOn(t, BatchSnap, "internal/sentinel", clean), 0)
}

// TestBatchSnapScope: non-batch functions and other packages are out of
// scope, and nested loops report each violation exactly once.
func TestBatchSnapScope(t *testing.T) {
	nonBatch := `package sentinel

func (e *Engine) decideCached() {
	for i := 0; i < 3; i++ {
		_ = e.cacheable("ev")
		_ = i
	}
}
`
	wantDiags(t, runOn(t, BatchSnap, "internal/sentinel", nonBatch), 0)

	otherPkg := `package wire

func (s *Server) CheckBatch(reqs []int) {
	for range reqs {
		_ = s.cacheable("ev")
	}
}
`
	wantDiags(t, runOn(t, BatchSnap, "internal/wire", otherPkg), 0)

	nested := `package sentinel

func (e *Engine) DecideCheckBatch(groups [][]int) {
	for _, g := range groups {
		for range g {
			_ = e.fp.epoch.Load()
		}
	}
}
`
	wantDiags(t, runOn(t, BatchSnap, "internal/sentinel", nested), 1)
}

// --- poolreturn ----------------------------------------------------

// TestPoolReturnFlagsEarlyReturnLeak: the classic shape — an error
// return between Get and Put drops the buffer.
func TestPoolReturnFlagsEarlyReturnLeak(t *testing.T) {
	src := `package sentinel

func decide(fail bool) error {
	b := bufPool.Get().(*buf)
	if fail {
		return errBad
	}
	use(b)
	bufPool.Put(b)
	return nil
}
`
	diags := runOn(t, PoolReturn, "internal/sentinel", src)
	wantDiags(t, diags, 1)
	if !strings.Contains(diags[0].Message, "bufPool") {
		t.Errorf("diagnostic should name the pool, got %q", diags[0].Message)
	}
}

// TestPoolReturnFlagsFallOffEnd: a void function that never puts the
// buffer back leaks on its implicit return.
func TestPoolReturnFlagsFallOffEnd(t *testing.T) {
	src := `package sentinel

func fill() {
	b := keyPool.Get().(*[]byte)
	_ = len(*b)
}
`
	wantDiags(t, runOn(t, PoolReturn, "internal/sentinel", src), 1)
}

// TestPoolReturnAcceptsCoveredPaths: deferred Put covers every path;
// Put or a hand-off before the return covers that path.
func TestPoolReturnAcceptsCoveredPaths(t *testing.T) {
	for _, src := range []string{
		// Deferred Put covers the early return.
		`package sentinel

func decide(fail bool) error {
	b := bufPool.Get().(*buf)
	defer bufPool.Put(b)
	if fail {
		return errBad
	}
	return nil
}
`,
		// Put before the early return.
		`package sentinel

func decide(fail bool) error {
	b := bufPool.Get().(*buf)
	if fail {
		bufPool.Put(b)
		return errBad
	}
	bufPool.Put(b)
	return nil
}
`,
		// Hand-off: the buffer escapes into the verdict before returning,
		// so ownership moved with it.
		`package sentinel

func decide() *buf {
	b := bufPool.Get().(*buf)
	return b
}
`,
		// Hand-off to a releasing helper, PR 6 carrier style.
		`package sentinel

func decide(fail bool) error {
	b := bufPool.Get().(*buf)
	release(b)
	if fail {
		return errBad
	}
	return nil
}
`,
		// Hand-off into a field.
		`package sentinel

func attach(v *verdict) {
	b := bufPool.Get().(*buf)
	v.scratch = b
}
`,
	} {
		wantDiags(t, runOn(t, PoolReturn, "internal/sentinel", src), 0)
	}
}

// TestPoolReturnIgnoresNonPools: Get on something not pool-named is out
// of scope.
func TestPoolReturnIgnoresNonPools(t *testing.T) {
	src := `package sentinel

func load(fail bool) error {
	v := cache.Get().(*entry)
	if fail {
		return errBad
	}
	_ = v
	return nil
}
`
	wantDiags(t, runOn(t, PoolReturn, "internal/sentinel", src), 0)
}

func TestDiagnosticFormat(t *testing.T) {
	diags := runOn(t, EngineClock, "internal/sentinel", `package sentinel

import "time"

func f() { _ = time.Now() }
`)
	wantDiags(t, diags, 1)
	s := diags[0].String()
	if !strings.HasPrefix(s, "src.go:5:") || !strings.Contains(s, "engineclock:") {
		t.Errorf("diagnostic format = %q, want file:line:col: pass: message", s)
	}
}

// TestAnalyzersRegistry: the driver must ship every pass.
func TestAnalyzersRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	for _, want := range []string{"engineclock", "obsnil", "lockorder", "snapimmut", "batchsnap", "poolreturn"} {
		if !names[want] {
			t.Errorf("registry missing analyzer %q", want)
		}
	}
}
