package vet

import (
	"go/ast"
)

// EngineClock forbids reading the wall clock inside the enforcement
// engine. All temporal behaviour — timers, trace timestamps, latency
// observations, lane-wait stamps — must flow through the injected
// clock.Clock so simulated time in tests and benchmarks is the *only*
// time the engine ever sees. A stray time.Now() silently decouples one
// observable from the rest (the two pre-fix violations skewed latency
// histograms against trace timestamps under a Sim clock).
var EngineClock = &Analyzer{
	Name: "engineclock",
	Doc:  "forbid time.Now/Since/Until in the engine packages; use the injected clock.Clock",
	Run:  runEngineClock,
}

// engineClockPackages are the packages the invariant covers. The clock
// package itself is exempt: it is where the real clock lives; the wire
// package is exempt too (transport RTT is wall-clock by design).
// internal/core joined when per-rule evaluation timing landed there —
// that timing must read the detector's injected clock, never the wall.
var engineClockPackages = map[string]bool{
	"internal/sentinel": true,
	"internal/event":    true,
	"internal/core":     true,
}

// engineClockBanned are the time functions that read the wall clock.
var engineClockBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

func runEngineClock(pass *Pass) {
	if !engineClockPackages[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		timeName := importName(f, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !engineClockBanned[sel.Sel.Name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock inside %s; route it through the engine clock (internal/clock)",
				sel.Sel.Name, pass.Path)
			return true
		})
	}
}
