package vet

import (
	"go/ast"
	"go/token"
	"strings"
)

// PoolReturn enforces the buffer-recycling discipline around sync.Pool
// (and pool-shaped slab helpers): a function that takes a buffer out of
// a pool must not have a return path that neither puts the buffer back
// nor hands it off. The classic leak looks like
//
//	b := bufPool.Get().(*buf)
//	if err != nil {
//	    return err // leak: b never returns to the pool
//	}
//	...
//	bufPool.Put(b)
//
// The pass is purely syntactic. It recognises a pool by name — an
// identifier or selector chain whose last segment is "pool" or ends in
// "Pool" — and tracks variables bound by `v := pool.Get()` (with or
// without a type assertion). A return path is covered when one of the
// following appears before it in source order, or anywhere as a defer:
//
//   - pool.Put(...) on the same pool
//   - a hand-off: v passed as a call argument (including &v), returned,
//     sent on a channel, or stored into a field/element/map
//
// Source order approximates path order; that is exact for the
// straight-line early-return shape above and errs toward silence for
// exotic control flow, which keeps the pass useful without a CFG.
var PoolReturn = &Analyzer{
	Name: "poolreturn",
	Doc:  "a value taken from a sync.Pool must be put back or handed off on every return path",
	Run:  runPoolReturn,
}

func runPoolReturn(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolReturnFunc(pass, fn)
		}
	}
}

// poolGet is one tracked `v := pool.Get()` binding.
type poolGet struct {
	varName string
	pool    string // rendered pool chain, e.g. "batchBufPool" or "sh.pool"
	pos     token.Pos
}

func checkPoolReturnFunc(pass *Pass, fn *ast.FuncDecl) {
	gets := collectPoolGets(fn.Body)
	if len(gets) == 0 {
		return
	}

	// Covering events per tracked get: Put calls on its pool and
	// hand-offs of its variable, by source position. Deferred events
	// cover every return path regardless of position.
	type cover struct {
		positions []token.Pos
		deferred  bool
	}
	covers := make([]cover, len(gets))
	record := func(i int, pos token.Pos, inDefer bool) {
		if inDefer {
			covers[i].deferred = true
			return
		}
		covers[i].positions = append(covers[i].positions, pos)
	}

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.DeferStmt:
				// The deferred call and everything inside a deferred
				// closure runs on every exit path.
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
					if p := render(sel.X); p != "" {
						for i, g := range gets {
							if g.pool == p {
								record(i, x.Pos(), inDefer)
							}
						}
					}
				}
				if id, ok := x.Fun.(*ast.Ident); ok && nonRetainingBuiltin[id.Name] {
					return true
				}
				for _, arg := range x.Args {
					for i, g := range gets {
						if usesVar(arg, g.varName) {
							record(i, x.Pos(), inDefer)
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					for i, g := range gets {
						if usesVar(res, g.varName) {
							record(i, x.Pos(), inDefer)
						}
					}
				}
			case *ast.SendStmt:
				for i, g := range gets {
					if usesVar(x.Value, g.varName) {
						record(i, x.Pos(), inDefer)
					}
				}
			case *ast.AssignStmt:
				// Storing the buffer into a field, element or map hands
				// ownership to the containing structure.
				for j, rhs := range x.Rhs {
					for i, g := range gets {
						if !usesVar(rhs, g.varName) {
							continue
						}
						lhs := x.Lhs[0]
						if len(x.Lhs) == len(x.Rhs) {
							lhs = x.Lhs[j]
						}
						switch lhs.(type) {
						case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
							record(i, x.Pos(), inDefer)
						}
					}
				}
			}
			return true
		})
	}
	walk(fn.Body, false)

	coveredAt := func(i int, pos token.Pos) bool {
		if covers[i].deferred {
			return true
		}
		for _, p := range covers[i].positions {
			if p < pos {
				return true
			}
		}
		return false
	}

	report := func(i int, pos token.Pos) {
		g := gets[i]
		pass.Reportf(pos,
			"return path drops %q taken from pool %s at %s without Put or hand-off",
			g.varName, g.pool, pass.Fset.Position(g.pos))
	}

	// Every explicit return after the Get must be covered.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures have their own exit paths
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, g := range gets {
			if ret.Pos() > g.pos && !coveredAt(i, ret.Pos()) && !usesVar(retExprs(ret), g.varName) {
				report(i, ret.Pos())
			}
		}
		return true
	})

	// A function body that can fall off the end is one more exit path.
	if fn.Type.Results == nil {
		end := fn.Body.Rbrace
		for i := range gets {
			if !coveredAt(i, end) {
				report(i, end)
			}
		}
	}
}

// nonRetainingBuiltin lists builtins whose arguments never escape into
// a longer-lived owner — passing the buffer to these is not a hand-off.
var nonRetainingBuiltin = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"clear": true, "min": true, "max": true, "print": true, "println": true,
}

// collectPoolGets finds `v := pool.Get()` bindings (with or without a
// trailing type assertion) for pool-named receivers in top-level
// statements of the function, skipping closures.
func collectPoolGets(body *ast.BlockStmt) []poolGet {
	var gets []poolGet
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if pool, ok := poolGetExpr(as.Rhs[0]); ok {
			gets = append(gets, poolGet{varName: id.Name, pool: pool, pos: as.Pos()})
		}
		return true
	})
	return gets
}

// poolGetExpr matches `pool.Get()` and `pool.Get().(T)` where the
// rendered pool chain is pool-named, returning the chain.
func poolGetExpr(e ast.Expr) (string, bool) {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return "", false
	}
	chain := render(sel.X)
	if chain == "" {
		return "", false
	}
	last := chain
	if i := strings.LastIndex(chain, "."); i >= 0 {
		last = chain[i+1:]
	}
	if last != "pool" && !strings.HasSuffix(last, "Pool") {
		return "", false
	}
	return chain, true
}

// retExprs bundles a return's results into one expression tree for
// usesVar; nil-safe for bare returns.
func retExprs(ret *ast.ReturnStmt) ast.Expr {
	if len(ret.Results) == 1 {
		return ret.Results[0]
	}
	// Multiple results: usesVar walks each via a synthetic call-free
	// container. A composite literal keeps the walker happy.
	return &ast.CompositeLit{Elts: ret.Results}
}

// usesVar reports whether the expression mentions the identifier (bare
// or under &).
func usesVar(e ast.Expr, name string) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
