package vet

import (
	"go/ast"
	"strings"
)

// BatchSnap enforces the one-snapshot-per-batch invariant of the batch
// decision path (DESIGN §5.6): inside internal/sentinel, a function on
// the batch path (its name contains "Batch") must capture fast-path
// eligibility and the cache/store epoch exactly once, before its
// per-tuple loops — never re-capture them per tuple. A per-tuple
// re-capture silently reverts the batch to per-tuple snapshot cost and,
// worse, lets tuples of one batch observe different epochs, breaking
// the batch-wide born-stale store protocol.
//
// The pass is syntactic: within any for/range statement of a
// batch-path function it flags calls whose callee is one of the
// capture functions (cacheable, SoleScopedSub, CacheVerdictSafe) or a
// selector chain ending in the epoch reads (.epoch.Load, .Epoch).
// Session-generation reads (sgen) are exempt — they are per-session
// state, legitimately captured per tuple.
var BatchSnap = &Analyzer{
	Name: "batchsnap",
	Doc:  "forbid per-tuple snapshot/epoch re-capture inside batch-path loops in internal/sentinel",
	Run:  runBatchSnap,
}

// batchSnapCallees are banned callee names (method or function) inside
// batch-path loops.
var batchSnapCallees = map[string]bool{
	"cacheable":        true,
	"SoleScopedSub":    true,
	"CacheVerdictSafe": true,
	"Epoch":            true,
}

func runBatchSnap(pass *Pass) {
	if pass.Path != "internal/sentinel" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.Contains(fd.Name.Name, "Batch") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				checkBatchLoop(pass, fd.Name.Name, body)
				return true
			})
		}
	}
}

// checkBatchLoop flags snapshot/epoch captures anywhere inside one loop
// body (nested loops are also inspected from the top-level Inspect;
// duplicate reports are avoided by only descending one level here).
func checkBatchLoop(pass *Pass, fn string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Don't re-enter nested loops: the outer Inspect visits them
		// and would double-report.
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if batchSnapCallees[fun.Name] {
				pass.Reportf(call.Pos(),
					"%s re-captures the snapshot (%s) inside a per-tuple loop; capture once per batch before the loop",
					fn, fun.Name)
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if batchSnapCallees[name] {
				pass.Reportf(call.Pos(),
					"%s re-captures the snapshot (%s) inside a per-tuple loop; capture once per batch before the loop",
					fn, name)
				return true
			}
			// Epoch loads: any chain ending ".epoch.Load(...)".
			if name == "Load" {
				if base := render(fun.X); base == "epoch" || strings.HasSuffix(base, ".epoch") {
					pass.Reportf(call.Pos(),
						"%s re-reads the fast-path epoch inside a per-tuple loop; capture it once per batch before the loop",
						fn)
				}
			}
		}
		return true
	})
}
