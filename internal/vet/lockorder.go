package vet

import (
	"go/ast"
)

// LockOrder enforces the lane locking discipline documented in
// internal/event/lane.go: emu (drain execution) is acquired before qmu
// (queue + drain ownership), never the other way around. post() takes
// qmu alone and must release it before calling drain(), which takes
// emu then qmu inside its loop; a path that acquires emu while still
// holding qmu inverts the order and can deadlock against a concurrent
// drain. The check is a straight-line statement scan per function —
// the granularity at which the lane code takes these locks.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lane mutexes must be acquired in the documented order: emu before qmu",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	if pass.Path != "internal/event" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			qmuHeld := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				// A deferred unlock does not release within the scan.
				if _, isDefer := n.(*ast.DeferStmt); isDefer {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				mutex, method := lockCall(call)
				switch {
				case mutex == "qmu" && method == "Lock":
					qmuHeld = true
				case mutex == "qmu" && method == "Unlock":
					qmuHeld = false
				case mutex == "emu" && method == "Lock" && qmuHeld:
					pass.Reportf(call.Pos(),
						"emu.Lock while qmu is held inverts the documented lane lock order (emu before qmu)")
				}
				return true
			})
		}
	}
}

// lockCall matches X.<mutex>.Lock/Unlock calls, returning the mutex
// field name and the method ("", "" otherwise).
func lockCall(call *ast.CallExpr) (mutex, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return "", ""
	}
	base, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		// Also match a bare ident receiver (qmu.Lock() on a local).
		if id, isIdent := sel.X.(*ast.Ident); isIdent {
			return id.Name, sel.Sel.Name
		}
		return "", ""
	}
	return base.Sel.Name, sel.Sel.Name
}
