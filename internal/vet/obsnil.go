package vet

import (
	"go/ast"
	"go/token"
)

// ObsNil enforces the observability fast-path discipline: the optional
// instrument pointers (an engine's obs observer, a detector's ins
// hooks, an observer's Traces ring, its Sampler and its Slow ring)
// default to nil, and hot paths must check that before dereferencing.
// The idiomatic shapes —
//
//	o := e.obs; if o != nil { ... }            (alias then guard)
//	if ins := ln.d.ins; ins != nil { ... }     (guard in the if init)
//	if o.Traces != nil { o.Traces.Start(...) } (guard the chain itself)
//
// all pass, because the rule is: a selector chain that *continues past*
// one of the optional fields (x.obs.Y, x.ins.Y, x.Traces.Y) is a
// violation unless the enclosing function nil-checks that exact chain
// prefix somewhere.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "optional observability pointers (obs, ins, Traces) must be nil-checked before deref in hot paths",
	Run:  runObsNil,
}

// obsNilPackages are the hot-path packages the invariant covers.
var obsNilPackages = map[string]bool{
	"internal/sentinel": true,
	"internal/event":    true,
	"internal/core":     true,
	"internal/store":    true,
}

// obsNilFields are the optional-pointer field names. Sampler and Slow
// joined with the telemetry work: both stay nil unless sampled tracing
// or slow-decision capture is configured, so every hot-path use must
// guard them like the trace ring.
var obsNilFields = map[string]bool{
	"obs": true, "ins": true, "Traces": true, "Sampler": true, "Slow": true,
}

func runObsNil(pass *Pass) {
	if !obsNilPackages[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkObsNilFunc(pass, fn)
		}
	}
}

func checkObsNilFunc(pass *Pass, fn *ast.FuncDecl) {
	// Collect every expression compared against nil in the function.
	guarded := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isNil(be.Y) {
			if s := render(be.X); s != "" {
				guarded[s] = true
			}
		}
		if isNil(be.X) {
			if s := render(be.Y); s != "" {
				guarded[s] = true
			}
		}
		return true
	})
	// Flag selector chains continuing past an optional field whose
	// chain prefix is never nil-checked in this function.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.SelectorExpr)
		if !ok || !obsNilFields[base.Sel.Name] {
			return true
		}
		prefix := render(base)
		if prefix == "" || guarded[prefix] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s dereferences optional pointer %q without a nil check of %s in this function",
			prefix+"."+sel.Sel.Name, base.Sel.Name, prefix)
		return true
	})
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
