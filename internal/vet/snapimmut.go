package vet

import (
	"go/ast"
	"go/token"
	"strings"
)

// SnapImmut enforces the copy-on-write snapshot discipline behind the
// read-mostly fast path: a struct whose doc comment carries an
// `rbacvet:snapshot` marker (graphView, fireView, accessView,
// sessionView) is immutable once published through an atomic pointer —
// readers index it lock-free, so any later field write is a data race
// the race detector only catches if a test happens to interleave it.
//
// The rule is construction-only mutation: writing a snapshot field (or
// storing into a map or slice reached through one) is legal solely on a
// value built from a composite literal, or declared, within the same
// function — the builder still owns it. A snapshot that arrived from
// anywhere else — a receiver, parameter, named result, or package
// variable — is assumed published and must not be written.
//
// The pass is purely syntactic: it sees snapshot-typed identifiers
// through declared types (receivers, params, results, var decls) and
// composite literals. A value obtained through an untyped channel such
// as `v := p.view.Load()` is invisible to it — acceptable, because
// loads from the atomic pointer sit on read-only hot paths and every
// builder in the codebase names its types.
var SnapImmut = &Analyzer{
	Name: "snapimmut",
	Doc:  "rbacvet:snapshot structs are immutable after publication; field writes only on values the function itself constructed",
	Run:  runSnapImmut,
}

// snapMarker is the doc-comment tag that opts a struct into the check.
const snapMarker = "rbacvet:snapshot"

func runSnapImmut(pass *Pass) {
	// First pass: the package's marked snapshot types.
	snap := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := ts.Type.(*ast.StructType); !ok {
					continue
				}
				if hasSnapMarker(gd.Doc) || hasSnapMarker(ts.Doc) {
					snap[ts.Name.Name] = true
				}
			}
		}
	}
	if len(snap) == 0 {
		return
	}
	// Package-level snapshot-typed variables count as published in every
	// function.
	pkgVars := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || !snap[baseTypeName(vs.Type)] {
					continue
				}
				for _, name := range vs.Names {
					pkgVars[name.Name] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSnapFunc(pass, fn, snap, pkgVars)
		}
	}
}

func hasSnapMarker(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), snapMarker)
}

// baseTypeName unwraps pointers and parens down to the named type.
func baseTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// snapComposite reports whether e is a composite literal (possibly
// behind &) of one of the snapshot types.
func snapComposite(e ast.Expr, snap map[string]bool) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	cl, ok := e.(*ast.CompositeLit)
	return ok && snap[baseTypeName(cl.Type)]
}

// writeRoot walks a write target's selector/index/deref chain down to
// its base identifier, reporting whether the chain actually dereferences
// into the value (a bare `v = ...` rebinding is not a snapshot write).
func writeRoot(e ast.Expr) (string, bool) {
	deref := false
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e, deref = x.X, true
		case *ast.IndexExpr:
			e, deref = x.X, true
		case *ast.StarExpr:
			e, deref = x.X, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return x.Name, deref
		default:
			return "", false
		}
	}
}

func checkSnapFunc(pass *Pass, fn *ast.FuncDecl, snap, pkgVars map[string]bool) {
	// Snapshot-typed identifiers that arrived from outside the function:
	// receiver, parameters, named results and package variables.
	published := map[string]bool{}
	for name := range pkgVars {
		published[name] = true
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if !snap[baseTypeName(f.Type)] {
				continue
			}
			for _, name := range f.Names {
				published[name.Name] = true
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)

	// Identifiers the function itself constructs: composite literals and
	// zero-value var declarations. Construction overrides the published
	// set — `sv := &sessionView{...}` shadows any like-named parameter
	// for the purposes of this (scope-blind) scan, erring toward silence.
	constructed := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && snapComposite(st.Rhs[i], snap) {
					constructed[id.Name] = true
				}
			}
		case *ast.GenDecl:
			if st.Tok != token.VAR {
				return true
			}
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				local := snap[baseTypeName(vs.Type)]
				for i, name := range vs.Names {
					if local || (i < len(vs.Values) && snapComposite(vs.Values[i], snap)) {
						constructed[name.Name] = true
					}
				}
			}
		}
		return true
	})

	flag := func(target ast.Expr) {
		root, deref := writeRoot(target)
		if !deref || root == "" || !published[root] || constructed[root] {
			return
		}
		pass.Reportf(target.Pos(),
			"write through snapshot value %q received from outside this function; rbacvet:snapshot structs are immutable once published — build a fresh value and swap the atomic pointer instead",
			root)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(st.X)
		}
		return true
	})
}
