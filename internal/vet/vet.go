// Package vet is a small go/analysis-style framework for the repo's
// own invariants, built on the standard library's go/ast and go/parser
// only (the module is dependency-free by policy, so golang.org/x/tools
// is out of reach). cmd/rbacvet is the driver.
//
// The passes are purely syntactic: they need no type information, which
// keeps the driver a plain parse-and-walk with no importer. Each pass
// receives one package (a directory of non-test files) at a time,
// together with its module-relative path so package-scoped invariants
// ("no time.Now in internal/sentinel") can key off it.
package vet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the pass name ("engineclock").
	Name string
	// Doc states the invariant the pass enforces.
	Doc string
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass)
}

// Pass is the per-package execution context handed to an Analyzer.
type Pass struct {
	// Analyzer is the running check.
	Analyzer *Analyzer
	// Fset resolves token positions for the package's files.
	Fset *token.FileSet
	// Path is the package path relative to the module root
	// ("internal/event").
	Path string
	// Files are the package's parsed non-test files.
	Files []*ast.File

	diags *[]Diagnostic
}

// Reportf records one violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the go-vet-style "file:line:col: pass: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one parsed package ready for analysis.
type Package struct {
	// Path is the module-relative package path.
	Path string
	// Fset positions the files.
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
}

// Analyzers returns the repo's invariant checks.
func Analyzers() []*Analyzer {
	return []*Analyzer{EngineClock, ObsNil, LockOrder, SnapImmut, BatchSnap, PoolReturn}
}

// Run executes the analyzers over the packages and returns every
// diagnostic, sorted by position.
func Run(pkgs []Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Fset: pkg.Fset, Path: pkg.Path, Files: pkg.Files, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// LoadPackage parses the non-test .go files of dir into a Package with
// the given module-relative path. ok is false when the directory holds
// no non-test Go files.
func LoadPackage(dir, rel string) (Package, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Package{}, false, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return Package{}, false, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return Package{}, false, nil
	}
	return Package{Path: rel, Fset: fset, Files: files}, true, nil
}

// ParseSource builds a single-file Package from source text — the test
// entry point.
func ParseSource(rel, filename, src string) (Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return Package{}, err
	}
	return Package{Path: rel, Fset: fset, Files: []*ast.File{f}}, nil
}

// importName returns the local identifier the file binds the given
// import path to ("" when not imported or blank/dot-imported).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		// Default name: the last path element.
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// render flattens a selector chain ("e.obs.Traces") for comparison;
// non-chain expressions render as "".
func render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := render(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return render(x.X)
	}
	return ""
}
