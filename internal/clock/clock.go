// Package clock provides the time substrate for the active authorization
// system: an abstract Clock that can be backed either by the operating
// system's wall clock or by a deterministic simulated clock, plus the
// Generalized Temporal RBAC periodic expressions ("24h:mi:ss/mm/dd/yyyy"
// calendar patterns and <[begin,end], P> intervals) used by temporal
// constraints.
//
// Every temporal event operator in the event engine (PLUS, PERIODIC,
// absolute events) schedules through a Clock, so experiments that would
// need hours of wall time in the paper's Sentinel+ prototype run in
// microseconds of simulated time while exercising the same code paths.
package clock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Timer is a handle to a pending callback scheduled on a Clock.
type Timer interface {
	// Stop cancels the timer. It reports whether the timer was still
	// pending (true) or had already fired or been stopped (false).
	Stop() bool
}

// Clock abstracts the passage of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// AfterFunc schedules fn to run once d has elapsed.
	AfterFunc(d time.Duration, fn func()) Timer
	// At schedules fn to run at instant t. If t is not after Now, fn is
	// scheduled to run immediately (but never synchronously inside At).
	At(t time.Time, fn func()) Timer
}

// ---------------------------------------------------------------------------
// Real clock

// Real is a Clock backed by the operating system clock.
type Real struct{}

// NewReal returns a Clock backed by the operating system clock.
func NewReal() *Real { return &Real{} }

// Now implements Clock.
func (*Real) Now() time.Time { return time.Now() }

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// AfterFunc implements Clock.
func (*Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

// At implements Clock.
func (c *Real) At(t time.Time, fn func()) Timer {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	return realTimer{time.AfterFunc(d, fn)}
}

// ---------------------------------------------------------------------------
// Simulated clock

// simTimer is one pending callback in a Sim clock.
type simTimer struct {
	when    time.Time
	seq     uint64 // tie-break so equal instants fire in schedule order
	fn      func()
	stopped bool
	index   int         // heap index; -2 once fired
	owner   *sync.Mutex // the owning Sim's mutex, guards stopped/index
}

func (t *simTimer) Stop() bool {
	t.owner.Lock()
	defer t.owner.Unlock()
	if t.stopped || t.index == -2 {
		return false
	}
	t.stopped = true
	return true
}

// Sim is a deterministic simulated Clock. Time only moves when Advance or
// AdvanceTo is called; due callbacks run synchronously inside Advance, on
// the caller's goroutine, in timestamp order (FIFO among equal
// timestamps). Callbacks may schedule further timers, including timers
// due within the window being advanced over.
type Sim struct {
	mtx sync.Mutex
	now time.Time
	pq  timerQueue
	seq uint64

	// nowA mirrors now so Now() is a single atomic load on the hot
	// path (Decide reads the clock per decision). Writers update it
	// under mtx; the published *time.Time is never mutated.
	nowA atomic.Pointer[time.Time]
}

// NewSim returns a simulated clock whose current instant is start.
func NewSim(start time.Time) *Sim {
	s := &Sim{now: start}
	s.nowA.Store(&start)
	return s
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	return *s.nowA.Load()
}

// setNowLocked advances the canonical instant and republishes the
// lock-free mirror. Callers hold mtx.
func (s *Sim) setNowLocked(t time.Time) {
	s.now = t
	s.nowA.Store(&t)
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	s.mtx.Lock()
	defer s.mtx.Unlock()
	return s.scheduleLocked(s.now.Add(d), fn)
}

// At implements Clock.
func (s *Sim) At(t time.Time, fn func()) Timer {
	s.mtx.Lock()
	defer s.mtx.Unlock()
	if t.Before(s.now) {
		t = s.now
	}
	return s.scheduleLocked(t, fn)
}

func (s *Sim) scheduleLocked(when time.Time, fn func()) Timer {
	s.seq++
	t := &simTimer{when: when, seq: s.seq, fn: fn, owner: &s.mtx}
	heap.Push(&s.pq, t)
	return t
}

// Advance moves simulated time forward by d, firing every timer that
// falls due in (now, now+d] in order. It returns the number of callbacks
// fired.
func (s *Sim) Advance(d time.Duration) int {
	s.mtx.Lock()
	target := s.now.Add(d)
	s.mtx.Unlock()
	return s.AdvanceTo(target)
}

// AdvanceTo moves simulated time forward to target (no-op if target is
// not after the current instant), firing due timers in order. It returns
// the number of callbacks fired.
func (s *Sim) AdvanceTo(target time.Time) int {
	fired := 0
	for {
		s.mtx.Lock()
		if len(s.pq) == 0 || s.pq[0].when.After(target) {
			if target.After(s.now) {
				s.setNowLocked(target)
			}
			s.mtx.Unlock()
			return fired
		}
		t := heap.Pop(&s.pq).(*simTimer)
		t.index = -2 // mark fired for Stop
		if t.stopped {
			s.mtx.Unlock()
			continue
		}
		if t.when.After(s.now) {
			s.setNowLocked(t.when)
		}
		fn := t.fn
		s.mtx.Unlock()
		fn()
		fired++
	}
}

// Pending returns the number of timers that are scheduled and not yet
// fired or stopped.
func (s *Sim) Pending() int {
	s.mtx.Lock()
	defer s.mtx.Unlock()
	n := 0
	for _, t := range s.pq {
		if !t.stopped {
			n++
		}
	}
	return n
}

// NextDeadline reports the instant of the earliest pending timer. ok is
// false when no timer is pending.
func (s *Sim) NextDeadline() (t time.Time, ok bool) {
	s.mtx.Lock()
	defer s.mtx.Unlock()
	for _, tm := range s.pq {
		if tm.stopped {
			continue
		}
		if !ok || tm.when.Before(t) {
			t, ok = tm.when, true
		}
	}
	return t, ok
}

// RunUntilIdle fires timers (advancing time as needed) until no pending
// timer remains or limit callbacks have run. It returns the number fired.
// A limit <= 0 means no limit beyond an internal safety bound.
func (s *Sim) RunUntilIdle(limit int) int {
	const safety = 1 << 22
	if limit <= 0 || limit > safety {
		limit = safety
	}
	fired := 0
	for fired < limit {
		next, ok := s.NextDeadline()
		if !ok {
			break
		}
		fired += s.AdvanceTo(next)
	}
	return fired
}

// ---------------------------------------------------------------------------
// Timer heap

type timerQueue []*simTimer

func (q timerQueue) Len() int { return len(q) }

func (q timerQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}

func (q timerQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *timerQueue) Push(x any) {
	t := x.(*simTimer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
