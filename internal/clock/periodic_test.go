package clock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestParsePattern(t *testing.T) {
	tests := []struct {
		in      string
		want    Pattern
		wantErr bool
	}{
		{"10:00:00/*/*/*", Pattern{10, 0, 0, Wild, Wild, Wild}, false},
		{"17:30:05/12/25/2026", Pattern{17, 30, 5, 12, 25, 2026}, false},
		{"*:*:*/*/*/*", Pattern{Wild, Wild, Wild, Wild, Wild, Wild}, false},
		{"08:00:00", Pattern{8, 0, 0, Wild, Wild, Wild}, false},
		{"08:00:00/6", Pattern{8, 0, 0, 6, Wild, Wild}, false},
		{"24:00:00/*/*/*", Pattern{}, true},  // hour out of range
		{"10:60:00/*/*/*", Pattern{}, true},  // minute out of range
		{"10:00:00/13/*/*", Pattern{}, true}, // month out of range
		{"10:00:00/*/32/*", Pattern{}, true}, // day out of range
		{"10:00/*/*/*", Pattern{}, true},     // missing seconds
		{"10:00:00/*/*/*/*", Pattern{}, true},
		{"abc", Pattern{}, true},
	}
	for _, tc := range tests {
		got, err := ParsePattern(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePattern(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePattern(%q) error: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePattern(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	for _, s := range []string{"10:00:00/*/*/*", "17:30:05/12/25/2026", "*:*:*/*/*/*"} {
		p := MustPattern(s)
		rt, err := ParsePattern(p.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", p.String(), err)
		}
		if rt != p {
			t.Errorf("String round trip: %q -> %+v -> %+v", s, p, rt)
		}
	}
}

func TestMustPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPattern on bad input did not panic")
		}
	}()
	MustPattern("bogus")
}

func TestPatternMatches(t *testing.T) {
	ten := MustPattern("10:00:00/*/*/*")
	if !ten.Matches(time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)) {
		t.Error("10:00:00 pattern should match 10:00:00")
	}
	if ten.Matches(time.Date(2026, 7, 6, 10, 0, 1, 0, time.UTC)) {
		t.Error("10:00:00 pattern should not match 10:00:01")
	}
	xmas := MustPattern("00:00:00/12/25/*")
	if !xmas.Matches(time.Date(2030, 12, 25, 0, 0, 0, 0, time.UTC)) {
		t.Error("xmas pattern should match any year")
	}
}

func TestPatternNext(t *testing.T) {
	base := time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC)
	tests := []struct {
		pat   string
		after time.Time
		want  time.Time
	}{
		{"10:00:00/*/*/*", base, time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)},
		// Already past today's occurrence -> tomorrow.
		{"09:00:00/*/*/*", base, time.Date(2026, 7, 7, 9, 0, 0, 0, time.UTC)},
		// Exactly at an occurrence -> strictly after, so next day.
		{"09:30:00/*/*/*", base, time.Date(2026, 7, 7, 9, 30, 0, 0, time.UTC)},
		// Concrete date in the future.
		{"00:00:00/12/25/2026", base, time.Date(2026, 12, 25, 0, 0, 0, 0, time.UTC)},
		// Feb 29: next leap year after 2026 is 2028.
		{"12:00:00/2/29/*", base, time.Date(2028, 2, 29, 12, 0, 0, 0, time.UTC)},
		// Wild seconds: next second.
		{"*:*:*/*/*/*", base, base.Add(time.Second)},
	}
	for _, tc := range tests {
		got, ok := MustPattern(tc.pat).Next(tc.after)
		if !ok {
			t.Errorf("Next(%q, %v): no occurrence", tc.pat, tc.after)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("Next(%q, %v) = %v, want %v", tc.pat, tc.after, got, tc.want)
		}
	}
}

func TestPatternNextNone(t *testing.T) {
	base := time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC)
	for _, pat := range []string{
		"00:00:00/1/1/2020", // concrete past year
		"00:00:00/2/30/*",   // impossible date
	} {
		if got, ok := MustPattern(pat).Next(base); ok {
			t.Errorf("Next(%q) = %v, want none", pat, got)
		}
	}
}

func TestPatternPrev(t *testing.T) {
	base := time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC)
	tests := []struct {
		pat    string
		before time.Time
		want   time.Time
	}{
		{"10:00:00/*/*/*", base, time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)},
		{"09:00:00/*/*/*", base, time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)},
		// Prev is inclusive of the instant itself.
		{"09:30:00/*/*/*", base, base},
		{"12:00:00/2/29/*", base, time.Date(2024, 2, 29, 12, 0, 0, 0, time.UTC)},
	}
	for _, tc := range tests {
		got, ok := MustPattern(tc.pat).Prev(tc.before)
		if !ok {
			t.Errorf("Prev(%q, %v): no occurrence", tc.pat, tc.before)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("Prev(%q, %v) = %v, want %v", tc.pat, tc.before, got, tc.want)
		}
	}
}

// Property: Next always returns an instant strictly after its argument
// that Matches, and Prev(Next(t)) == Next(t).
func TestPatternNextProperties(t *testing.T) {
	patterns := []Pattern{
		MustPattern("10:00:00/*/*/*"),
		MustPattern("*:00:00/*/*/*"),
		MustPattern("17:30:*/*/*/*"),
		MustPattern("00:00:00/1/*/*"),
		MustPattern("*:*:*/*/15/*"),
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(patIdx uint8, offsetSec uint32) bool {
		p := patterns[int(patIdx)%len(patterns)]
		at := base.Add(time.Duration(offsetSec%(400*24*3600)) * time.Second)
		next, ok := p.Next(at)
		if !ok {
			return false
		}
		if !next.After(at) || !p.Matches(next) {
			return false
		}
		prev, ok := p.Prev(next)
		return ok && prev.Equal(next)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestWindowContains(t *testing.T) {
	w, err := ParseWindow("10:00:00/*/*/*", "17:00:00/*/*/*", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	day := func(h, m int) time.Time { return time.Date(2026, 7, 6, h, m, 0, 0, time.UTC) }
	tests := []struct {
		at   time.Time
		want bool
	}{
		{day(9, 59), false},
		{day(10, 0), true}, // start boundary inclusive
		{day(12, 0), true},
		{day(16, 59), true},
		{day(17, 0), false}, // stop boundary exclusive
		{day(20, 0), false},
	}
	for _, tc := range tests {
		if got := w.Contains(tc.at); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestWindowBounds(t *testing.T) {
	begin := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2026, 7, 31, 23, 59, 59, 0, time.UTC)
	w, err := ParseWindow("10:00:00/*/*/*", "17:00:00/*/*/*", begin, end)
	if err != nil {
		t.Fatal(err)
	}
	if w.Contains(time.Date(2026, 6, 15, 12, 0, 0, 0, time.UTC)) {
		t.Error("window contains instant before Begin")
	}
	if w.Contains(time.Date(2026, 8, 15, 12, 0, 0, 0, time.UTC)) {
		t.Error("window contains instant after End")
	}
	if !w.Contains(time.Date(2026, 7, 15, 12, 0, 0, 0, time.UTC)) {
		t.Error("window missing in-bounds in-window instant")
	}
}

func TestWindowNextStartStop(t *testing.T) {
	w, _ := ParseWindow("10:00:00/*/*/*", "17:00:00/*/*/*", time.Time{}, time.Time{})
	at := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	s, ok := w.NextStart(at)
	if !ok || !s.Equal(time.Date(2026, 7, 7, 10, 0, 0, 0, time.UTC)) {
		t.Errorf("NextStart = %v,%v", s, ok)
	}
	e, ok := w.NextStop(at)
	if !ok || !e.Equal(time.Date(2026, 7, 6, 17, 0, 0, 0, time.UTC)) {
		t.Errorf("NextStop = %v,%v", e, ok)
	}
}

func TestWindowNextStartRespectsBegin(t *testing.T) {
	begin := time.Date(2026, 7, 10, 0, 0, 0, 0, time.UTC)
	w, _ := ParseWindow("10:00:00/*/*/*", "17:00:00/*/*/*", begin, time.Time{})
	at := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	s, ok := w.NextStart(at)
	if !ok || !s.Equal(time.Date(2026, 7, 10, 10, 0, 0, 0, time.UTC)) {
		t.Errorf("NextStart = %v,%v, want first start at/after Begin", s, ok)
	}
}

func TestWindowNextStopFallsBackToEnd(t *testing.T) {
	end := time.Date(2026, 7, 6, 15, 0, 0, 0, time.UTC)
	w, _ := ParseWindow("10:00:00/*/*/*", "17:00:00/*/*/*", time.Time{}, end)
	at := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	e, ok := w.NextStop(at)
	if !ok || !e.Equal(end) {
		t.Errorf("NextStop = %v,%v, want End %v", e, ok, end)
	}
}

// Night shifts wrap midnight: the window 22:00-06:00 is inside from
// late evening through early morning, outside during the day.
func TestWindowWrapsMidnight(t *testing.T) {
	w, err := ParseWindow("22:00:00/*/*/*", "06:00:00/*/*/*", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	at := func(d, h, m int) time.Time { return time.Date(2026, 7, 6+d, h, m, 0, 0, time.UTC) }
	tests := []struct {
		at   time.Time
		want bool
	}{
		{at(0, 21, 59), false},
		{at(0, 22, 0), true},  // shift starts
		{at(0, 23, 30), true}, // before midnight
		{at(1, 0, 30), true},  // after midnight
		{at(1, 5, 59), true},
		{at(1, 6, 0), false}, // shift ends
		{at(1, 12, 0), false},
	}
	for _, tc := range tests {
		if got := w.Contains(tc.at); got != tc.want {
			t.Errorf("night shift Contains(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// Property: the window alternates start/stop — for any instant inside,
// the next stop precedes the next start.
func TestWindowAlternationProperty(t *testing.T) {
	w, _ := ParseWindow("10:00:00/*/*/*", "17:00:00/*/*/*", time.Time{}, time.Time{})
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(offsetSec uint32) bool {
		at := base.Add(time.Duration(offsetSec%(90*24*3600)) * time.Second)
		stop, ok1 := w.NextStop(at)
		start, ok2 := w.NextStart(at)
		if !ok1 || !ok2 {
			return false
		}
		if w.Contains(at) {
			return stop.Before(start)
		}
		return start.Before(stop)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
