package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func TestSimNowAdvance(t *testing.T) {
	s := NewSim(epoch)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	s.Advance(90 * time.Minute)
	if got, want := s.Now(), epoch.Add(90*time.Minute); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestSimAfterFuncFiresInOrder(t *testing.T) {
	s := NewSim(epoch)
	var got []int
	s.AfterFunc(3*time.Second, func() { got = append(got, 3) })
	s.AfterFunc(1*time.Second, func() { got = append(got, 1) })
	s.AfterFunc(2*time.Second, func() { got = append(got, 2) })
	if n := s.Advance(5 * time.Second); n != 3 {
		t.Fatalf("Advance fired %d, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("fire order %v, want [1 2 3]", got)
		}
	}
}

func TestSimEqualDeadlinesFIFO(t *testing.T) {
	s := NewSim(epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	s.Advance(time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-deadline order %v, want ascending", got)
		}
	}
}

func TestSimTimerSeesOwnDeadlineAsNow(t *testing.T) {
	s := NewSim(epoch)
	var at time.Time
	s.AfterFunc(42*time.Second, func() { at = s.Now() })
	s.Advance(time.Hour)
	if want := epoch.Add(42 * time.Second); !at.Equal(want) {
		t.Fatalf("callback observed Now=%v, want %v", at, want)
	}
	if want := epoch.Add(time.Hour); !s.Now().Equal(want) {
		t.Fatalf("after Advance Now=%v, want %v", s.Now(), want)
	}
}

func TestSimStop(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	tm := s.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSimStopAfterFire(t *testing.T) {
	s := NewSim(epoch)
	tm := s.AfterFunc(time.Second, func() {})
	s.Advance(2 * time.Second)
	if tm.Stop() {
		t.Fatal("Stop() = true on fired timer, want false")
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(epoch)
	var order []string
	s.AfterFunc(time.Second, func() {
		order = append(order, "outer")
		s.AfterFunc(time.Second, func() { order = append(order, "inner") })
	})
	n := s.Advance(5 * time.Second)
	if n != 2 {
		t.Fatalf("Advance fired %d, want 2 (nested timer within window)", n)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestSimAtClampsPast(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	s.At(epoch.Add(-time.Hour), func() { fired = true })
	s.Advance(0)
	if s.Pending() != 1 {
		// Advance(0) advances to now; a timer clamped to now is due.
	}
	s.Advance(time.Nanosecond)
	if !fired {
		t.Fatal("past-deadline At timer never fired")
	}
}

func TestSimPendingAndNextDeadline(t *testing.T) {
	s := NewSim(epoch)
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("NextDeadline ok on empty clock")
	}
	s.AfterFunc(5*time.Second, func() {})
	tm := s.AfterFunc(2*time.Second, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	d, ok := s.NextDeadline()
	if !ok || !d.Equal(epoch.Add(2*time.Second)) {
		t.Fatalf("NextDeadline = %v,%v", d, ok)
	}
	tm.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", got)
	}
	d, ok = s.NextDeadline()
	if !ok || !d.Equal(epoch.Add(5*time.Second)) {
		t.Fatalf("NextDeadline after Stop = %v,%v", d, ok)
	}
}

func TestSimRunUntilIdle(t *testing.T) {
	s := NewSim(epoch)
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count < 5 {
			s.AfterFunc(time.Minute, rearm)
		}
	}
	s.AfterFunc(time.Minute, rearm)
	fired := s.RunUntilIdle(0)
	if fired != 5 || count != 5 {
		t.Fatalf("RunUntilIdle fired=%d count=%d, want 5/5", fired, count)
	}
	if want := epoch.Add(5 * time.Minute); !s.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", s.Now(), want)
	}
}

func TestSimRunUntilIdleLimit(t *testing.T) {
	s := NewSim(epoch)
	var rearm func()
	rearm = func() { s.AfterFunc(time.Second, rearm) } // infinite chain
	s.AfterFunc(time.Second, rearm)
	if fired := s.RunUntilIdle(10); fired != 10 {
		t.Fatalf("RunUntilIdle(10) fired %d, want 10", fired)
	}
}

func TestSimConcurrentSchedule(t *testing.T) {
	s := NewSim(epoch)
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.AfterFunc(time.Duration(i)*time.Millisecond, func() {
					mu.Lock()
					total++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	if n := s.Advance(time.Second); n != 800 {
		t.Fatalf("fired %d, want 800", n)
	}
	if total != 800 {
		t.Fatalf("total %d, want 800", total)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now too far in past: %v < %v", now, before)
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
	done2 := make(chan struct{})
	c.At(c.Now().Add(-time.Hour), func() { close(done2) })
	select {
	case <-done2:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.At with past deadline never fired")
	}
}
