package clock

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Pattern is a GTRBAC calendar pattern of the form "24h:mi:ss/mm/dd/yyyy"
// (the syntax used in the paper's Rule 6: "10:00:00/*/*/*"). Each field is
// either a concrete value or a wildcard. A Pattern denotes the infinite
// set of instants whose calendar fields match every concrete field.
//
// The zero Pattern has every field wild and therefore matches every whole
// second.
type Pattern struct {
	Hour  int // 0..23, or Wild
	Min   int // 0..59, or Wild
	Sec   int // 0..59, or Wild
	Month int // 1..12, or Wild
	Day   int // 1..31, or Wild
	Year  int // e.g. 2026, or Wild
}

// Wild marks a wildcard field in a Pattern.
const Wild = -1

// ParsePattern parses the paper's "24h:mi:ss/mm/dd/yyyy" syntax, e.g.
// "10:00:00/*/*/*" (10 a.m. every day) or "00:00:00/1/1/*" (midnight every
// New Year). A missing trailing "/yyyy" (or "/dd/yyyy") is treated as
// wild.
func ParsePattern(s string) (Pattern, error) {
	p := Pattern{Hour: Wild, Min: Wild, Sec: Wild, Month: Wild, Day: Wild, Year: Wild}
	parts := strings.Split(s, "/")
	if len(parts) < 1 || len(parts) > 4 {
		return p, fmt.Errorf("clock: malformed periodic expression %q", s)
	}
	tod := strings.Split(parts[0], ":")
	if len(tod) != 3 {
		return p, fmt.Errorf("clock: malformed time-of-day in %q (want hh:mi:ss)", s)
	}
	var err error
	set := func(field string, lo, hi int) (int, error) {
		if field == "*" {
			return Wild, nil
		}
		v, convErr := strconv.Atoi(field)
		if convErr != nil || v < lo || v > hi {
			return 0, fmt.Errorf("clock: field %q out of range [%d,%d] in %q", field, lo, hi, s)
		}
		return v, nil
	}
	if p.Hour, err = set(tod[0], 0, 23); err != nil {
		return p, err
	}
	if p.Min, err = set(tod[1], 0, 59); err != nil {
		return p, err
	}
	if p.Sec, err = set(tod[2], 0, 59); err != nil {
		return p, err
	}
	if len(parts) > 1 {
		if p.Month, err = set(parts[1], 1, 12); err != nil {
			return p, err
		}
	}
	if len(parts) > 2 {
		if p.Day, err = set(parts[2], 1, 31); err != nil {
			return p, err
		}
	}
	if len(parts) > 3 {
		if p.Year, err = set(parts[3], 1, 9999); err != nil {
			return p, err
		}
	}
	return p, nil
}

// MustPattern is ParsePattern that panics on error; for literals in tests
// and examples.
func MustPattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the pattern back in "hh:mi:ss/mm/dd/yyyy" form.
func (p Pattern) String() string {
	f := func(v int, width int) string {
		if v == Wild {
			return "*"
		}
		return fmt.Sprintf("%0*d", width, v)
	}
	return fmt.Sprintf("%s:%s:%s/%s/%s/%s",
		f(p.Hour, 2), f(p.Min, 2), f(p.Sec, 2), f(p.Month, 2), f(p.Day, 2), f(p.Year, 4))
}

// Matches reports whether instant t (truncated to whole seconds) belongs
// to the pattern's instant set.
func (p Pattern) Matches(t time.Time) bool {
	match := func(pat, v int) bool { return pat == Wild || pat == v }
	return match(p.Hour, t.Hour()) &&
		match(p.Min, t.Minute()) &&
		match(p.Sec, t.Second()) &&
		match(p.Month, int(t.Month())) &&
		match(p.Day, t.Day()) &&
		match(p.Year, t.Year())
}

// errNoOccurrence is returned by Next/Prev when the pattern has no
// occurrence in the searched direction (e.g. a concrete year in the
// past, or an impossible date such as day 31 of month 2).
var errNoOccurrence = errors.New("clock: pattern has no occurrence in range")

// searchHorizonYears bounds wildcard-year searches; 8 years is enough to
// find any satisfiable month/day combination (including Feb 29).
const searchHorizonYears = 8

// Next returns the earliest instant strictly after t that matches the
// pattern, or ok=false if none exists within the search horizon.
func (p Pattern) Next(t time.Time) (time.Time, bool) {
	t = t.Truncate(time.Second)
	loc := t.Location()
	yearLo, yearHi := t.Year(), t.Year()+searchHorizonYears
	if p.Year != Wild {
		yearLo, yearHi = p.Year, p.Year
		if yearHi < t.Year() {
			return time.Time{}, false
		}
	}
	for y := max(yearLo, t.Year()); y <= yearHi; y++ {
		for m := 1; m <= 12; m++ {
			if p.Month != Wild && p.Month != m {
				continue
			}
			dim := daysIn(y, time.Month(m), loc)
			for d := 1; d <= dim; d++ {
				if p.Day != Wild && p.Day != d {
					continue
				}
				// Fast-skip days wholly before t.
				dayEnd := time.Date(y, time.Month(m), d, 23, 59, 59, 0, loc)
				if !dayEnd.After(t) {
					continue
				}
				if c, ok := p.nextInDay(y, time.Month(m), d, loc, t); ok {
					return c, true
				}
			}
		}
	}
	return time.Time{}, false
}

// nextInDay finds the earliest instant on the given calendar day that is
// strictly after t and matches the time-of-day fields.
func (p Pattern) nextInDay(y int, m time.Month, d int, loc *time.Location, t time.Time) (time.Time, bool) {
	hours := fieldRange(p.Hour, 0, 23)
	mins := fieldRange(p.Min, 0, 59)
	secs := fieldRange(p.Sec, 0, 59)
	for _, h := range hours {
		// Skip hours that end before or at t.
		if time.Date(y, m, d, h, 59, 59, 0, loc).After(t) {
			for _, mi := range mins {
				if time.Date(y, m, d, h, mi, 59, 0, loc).After(t) {
					for _, se := range secs {
						c := time.Date(y, m, d, h, mi, se, 0, loc)
						if c.After(t) {
							return c, true
						}
					}
				}
			}
		}
	}
	return time.Time{}, false
}

// Prev returns the latest instant at or before t that matches the
// pattern, or ok=false if none exists within the search horizon.
func (p Pattern) Prev(t time.Time) (time.Time, bool) {
	t = t.Truncate(time.Second)
	loc := t.Location()
	yearHi, yearLo := t.Year(), t.Year()-searchHorizonYears
	if p.Year != Wild {
		yearLo, yearHi = p.Year, p.Year
		if yearLo > t.Year() {
			return time.Time{}, false
		}
	}
	for y := min(yearHi, t.Year()); y >= yearLo; y-- {
		for m := 12; m >= 1; m-- {
			if p.Month != Wild && p.Month != m {
				continue
			}
			dim := daysIn(y, time.Month(m), loc)
			for d := dim; d >= 1; d-- {
				if p.Day != Wild && p.Day != d {
					continue
				}
				dayStart := time.Date(y, time.Month(m), d, 0, 0, 0, 0, loc)
				if dayStart.After(t) {
					continue
				}
				if c, ok := p.prevInDay(y, time.Month(m), d, loc, t); ok {
					return c, true
				}
			}
		}
	}
	return time.Time{}, false
}

func (p Pattern) prevInDay(y int, m time.Month, d int, loc *time.Location, t time.Time) (time.Time, bool) {
	hours := fieldRange(p.Hour, 0, 23)
	mins := fieldRange(p.Min, 0, 59)
	secs := fieldRange(p.Sec, 0, 59)
	for i := len(hours) - 1; i >= 0; i-- {
		h := hours[i]
		if time.Date(y, m, d, h, 0, 0, 0, loc).After(t) {
			continue
		}
		for j := len(mins) - 1; j >= 0; j-- {
			mi := mins[j]
			if time.Date(y, m, d, h, mi, 0, 0, loc).After(t) {
				continue
			}
			for k := len(secs) - 1; k >= 0; k-- {
				c := time.Date(y, m, d, h, mi, secs[k], 0, loc)
				if !c.After(t) {
					return c, true
				}
			}
		}
	}
	return time.Time{}, false
}

func fieldRange(v, lo, hi int) []int {
	if v != Wild {
		return []int{v}
	}
	r := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		r = append(r, i)
	}
	return r
}

func daysIn(year int, m time.Month, loc *time.Location) int {
	return time.Date(year, m+1, 0, 0, 0, 0, 0, loc).Day()
}

// ---------------------------------------------------------------------------
// Windows: <[begin,end], P>

// Window is a GTRBAC periodic time expression <[Begin,End], P> where P is
// described by a Start pattern and a Stop pattern (e.g. daily 10:00:00 to
// 17:00:00). The window is the union of [s, e) spans where s is a Start
// occurrence and e the first Stop occurrence after s, intersected with
// [Begin, End]. Zero Begin/End mean unbounded on that side.
type Window struct {
	Begin time.Time
	End   time.Time
	Start Pattern
	Stop  Pattern
}

// ParseWindow builds a Window from two pattern strings. Begin and End may
// be zero for an unbounded interval.
func ParseWindow(start, stop string, begin, end time.Time) (Window, error) {
	sp, err := ParsePattern(start)
	if err != nil {
		return Window{}, err
	}
	ep, err := ParsePattern(stop)
	if err != nil {
		return Window{}, err
	}
	return Window{Begin: begin, End: end, Start: sp, Stop: ep}, nil
}

// withinBounds reports whether t lies inside [Begin, End].
func (w Window) withinBounds(t time.Time) bool {
	if !w.Begin.IsZero() && t.Before(w.Begin) {
		return false
	}
	if !w.End.IsZero() && t.After(w.End) {
		return false
	}
	return true
}

// Contains reports whether instant t falls inside the periodic window.
// A point exactly on a Start occurrence is inside; a point exactly on a
// Stop occurrence is outside (half-open spans).
func (w Window) Contains(t time.Time) bool {
	if !w.withinBounds(t) {
		return false
	}
	s, okS := w.Start.Prev(t)
	if !okS {
		return false
	}
	e, okE := w.Stop.Prev(t)
	// Inside iff the most recent transition at or before t is a Start.
	// A Stop at the same instant as t closes the window (half-open).
	if okE && !e.Before(s) {
		return false
	}
	return true
}

// NextStart returns the earliest Start occurrence strictly after t that
// lies within [Begin, End].
func (w Window) NextStart(t time.Time) (time.Time, bool) {
	if !w.Begin.IsZero() && t.Before(w.Begin) {
		t = w.Begin.Add(-time.Second)
	}
	s, ok := w.Start.Next(t)
	if !ok || !w.withinBounds(s) {
		return time.Time{}, false
	}
	return s, true
}

// NextStop returns the earliest Stop occurrence strictly after t that
// lies within [Begin, End] (End itself acts as a final stop when set).
func (w Window) NextStop(t time.Time) (time.Time, bool) {
	s, ok := w.Stop.Next(t)
	if ok && w.withinBounds(s) {
		return s, true
	}
	if !w.End.IsZero() && w.End.After(t) {
		return w.End, true
	}
	return time.Time{}, false
}
