package sentinel

import "testing"

func TestEnvSetGetMatch(t *testing.T) {
	env := NewEnv()
	if _, ok := env.Get("location"); ok {
		t.Fatal("unset key present")
	}
	if env.Match("location", "ward") {
		t.Fatal("unset key matched (must fail closed)")
	}
	if prev := env.Set("location", "ward"); prev != "" {
		t.Fatalf("prev = %q", prev)
	}
	if v, ok := env.Get("location"); !ok || v != "ward" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if !env.Match("location", "ward") || env.Match("location", "lobby") {
		t.Fatal("Match wrong")
	}
	if prev := env.Set("location", "lobby"); prev != "ward" {
		t.Fatalf("prev = %q", prev)
	}
	// Empty wanted value never matches, even if stored.
	env.Set("flag", "")
	if env.Match("flag", "") {
		t.Fatal("empty value matched")
	}
}

func TestEnvKeys(t *testing.T) {
	env := NewEnv()
	env.Set("b", "1")
	env.Set("a", "2")
	keys := env.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestEngineEnvAndClock(t *testing.T) {
	e, sim := newEngine()
	if e.Env() == nil {
		t.Fatal("nil Env")
	}
	if e.Clock() != sim {
		t.Fatal("Clock accessor wrong")
	}
	e.Env().Set("k", "v")
	if v, _ := e.Env().Get("k"); v != "v" {
		t.Fatal("engine env not shared")
	}
}

func TestDecisionResult(t *testing.T) {
	d := &Decision{}
	if d.Result() != nil {
		t.Fatal("zero Decision has a result")
	}
	d.SetResult("s42")
	if d.Result() != "s42" {
		t.Fatalf("Result = %v", d.Result())
	}
	d.Allow("r")
	if d.String() != "ALLOW" {
		t.Fatalf("String = %q", d.String())
	}
	d.Deny("r2", "nope")
	if s := d.String(); s != "DENY (nope)" {
		t.Fatalf("String = %q", s)
	}
}
