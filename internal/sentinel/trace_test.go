package sentinel

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"activerbac/internal/clock"
	"activerbac/internal/core"
	"activerbac/internal/event"
	"activerbac/internal/obs"
)

// tracedEngine builds an engine with a trace ring and two chained
// rules: a scope-local activation rule on req.activate that allows and
// cascades to roleAdded, and a global cardinality rule on roleAdded
// that denies sessions named in veto. With lanes > 1 the activation
// runs on a scope lane and the cascade hops to the global lane, so the
// trace must follow the request across lanes.
func tracedEngine(t *testing.T, lanes, ring int, veto map[string]bool) (*Engine, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(t0)
	e := NewEngine(sim, WithLanes(lanes), WithObserver(obs.NewObserver(ring)))
	det := e.Detector()
	det.MustPrimitive("req.activate")
	det.MustPrimitive("roleAdded")
	e.Pool().MustAdd(core.Rule{
		Name: "AAR", On: "req.activate", Scope: core.ScopeSession,
		When: []core.Condition{core.BoolCond("session set", func(o *event.Occurrence) bool {
			s, _ := o.Params["session"].(string)
			return s != ""
		})},
		Then: []core.Action{core.Act("allow+cascade", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("AAR")
			}
			return det.RaiseFrom(o, "roleAdded", o.Params)
		})},
		Else: []core.Action{core.Act("deny", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Deny("AAR", "no session")
			}
			return nil
		})},
	})
	e.Pool().MustAdd(core.Rule{
		Name: "CC1", On: "roleAdded", // ScopeGlobal: runs on the global lane
		When: []core.Condition{core.BoolCond("cardinality", func(o *event.Occurrence) bool {
			s, _ := o.Params["session"].(string)
			return !veto[s]
		})},
		Else: []core.Action{core.Act("veto", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Deny("CC1", "maximum number of roles reached")
			}
			return nil
		})},
	})
	return e, sim
}

func kindsOf(steps []obs.Step) map[obs.StepKind]int {
	m := make(map[obs.StepKind]int)
	for _, s := range steps {
		m[s.Kind]++
	}
	return m
}

func TestDecideTraceCompleteCascade(t *testing.T) {
	e, _ := tracedEngine(t, 4, 16, nil)
	dec, err := e.Decide("req.activate", event.Params{"session": "s1", "user": "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed() {
		t.Fatalf("denied: %s", dec.Reason())
	}
	tr := dec.Trace()
	if tr == nil {
		t.Fatal("Decision.Trace() nil with tracing on")
	}
	td := tr.Snapshot()
	if !td.Complete {
		t.Fatal("trace not complete after Decide returned")
	}
	if td.Event != "req.activate" || td.Scope != "s1" {
		t.Fatalf("trace header = %+v", td)
	}
	if !td.Begin.Equal(t0) || !td.End.Equal(t0) {
		t.Fatalf("trace not engine-clock stamped: begin=%v end=%v", td.Begin, td.End)
	}

	// The full cascade: the primitive raise, AAR's condition, verdict and
	// action on a scope lane; the cascaded raise; then CC1's condition
	// and verdict on the global lane.
	k := kindsOf(td.Steps)
	if k[obs.StepRaise] != 2 || k[obs.StepCascade] != 1 {
		t.Fatalf("raise/cascade steps = %v\n%v", k, td.Steps)
	}
	if k[obs.StepCondition] != 2 || k[obs.StepRule] != 2 || k[obs.StepAction] < 1 {
		t.Fatalf("rule steps = %v\n%v", k, td.Steps)
	}
	lanes := make(map[string]bool)
	for i, s := range td.Steps {
		if s.Seq != i {
			t.Fatalf("step %d has Seq %d", i, s.Seq)
		}
		if !s.At.Equal(t0) {
			t.Fatalf("step %d not engine-clock stamped: %v", i, s.At)
		}
		if s.Lane != "" {
			lanes[s.Lane] = true
		}
	}
	// The request hopped lanes: AAR on a scope lane, CC1 on global.
	if !lanes["global"] || len(lanes) < 2 {
		t.Fatalf("lanes touched = %v, want scope lane + global", lanes)
	}

	// The same trace is retained in the ring under its id.
	got, ok := e.Observer().Traces.Get(tr.ID())
	if !ok {
		t.Fatalf("trace %d not retained", tr.ID())
	}
	if len(got.Steps) != len(td.Steps) {
		t.Fatalf("ring trace has %d steps, decision trace %d", len(got.Steps), len(td.Steps))
	}
}

func TestDecideTraceDenyBranch(t *testing.T) {
	e, _ := tracedEngine(t, 1, 8, map[string]bool{"s9": true})
	dec, err := e.Decide("req.activate", event.Params{"session": "s9"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed() {
		t.Fatal("vetoed session allowed")
	}
	td := dec.Trace().Snapshot()
	var sawElse, sawFailedCond bool
	for _, s := range td.Steps {
		if s.Kind == obs.StepRule && s.Rule == "CC1" && s.Detail == "else" && !s.OK {
			sawElse = true
		}
		if s.Kind == obs.StepCondition && s.Rule == "CC1" && !s.OK {
			sawFailedCond = true
		}
	}
	if !sawElse || !sawFailedCond {
		t.Fatalf("deny branch not traced: else=%v failedCond=%v\n%v", sawElse, sawFailedCond, td.Steps)
	}
}

func TestDecideTracingDisabled(t *testing.T) {
	// No observer at all.
	e, _ := newEngine()
	e.Detector().MustPrimitive("req")
	dec, err := e.Decide("req", nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trace() != nil {
		t.Fatal("trace present with observability off")
	}

	// Metrics on, tracing off (ring capacity 0).
	o := obs.NewObserver(0)
	e2 := NewEngine(clock.NewSim(t0), WithObserver(o))
	e2.Detector().MustPrimitive("req")
	dec2, err := e2.Decide("req", nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Trace() != nil {
		t.Fatal("trace present with ring disabled")
	}
	if o.Decisions.With("req", "deny").Value() != 1 {
		t.Fatal("decision counter not incremented in metrics-only mode")
	}
}

// TestTraceLifecycleConcurrent drives N goroutines × M scopes through a
// sharded engine under the race detector and asserts every decision
// produced a complete, ordered trace whose steps never mention another
// scope's session.
func TestTraceLifecycleConcurrent(t *testing.T) {
	const goroutines, scopes, rounds = 8, 4, 20
	e, _ := tracedEngine(t, 4, goroutines*scopes*rounds, nil)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	traces := make(chan obs.TraceData, goroutines*scopes*rounds)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := 0; m < scopes; m++ {
				sess := fmt.Sprintf("sess-%d-%d", g, m)
				for i := 0; i < rounds; i++ {
					dec, err := e.Decide("req.activate", event.Params{"session": sess})
					if err != nil {
						errs <- err
						return
					}
					tr := dec.Trace()
					if tr == nil {
						errs <- fmt.Errorf("no trace for %s", sess)
						return
					}
					traces <- tr.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(traces)
	for err := range errs {
		t.Fatal(err)
	}

	n := 0
	for td := range traces {
		n++
		if !td.Complete {
			t.Fatalf("incomplete trace %d for scope %s", td.ID, td.Scope)
		}
		k := kindsOf(td.Steps)
		if k[obs.StepCascade] != 1 || k[obs.StepRule] != 2 {
			t.Fatalf("trace %d missing cascade steps: %v", td.ID, k)
		}
		for i, s := range td.Steps {
			if s.Seq != i {
				t.Fatalf("trace %d step %d has Seq %d (mixed writers?)", td.ID, i, s.Seq)
			}
			if i > 0 && s.At.Before(td.Steps[i-1].At) {
				t.Fatalf("trace %d step %d goes back in time", td.ID, i)
			}
			// Never mixed: a step detail naming a session names ours.
			if strings.Contains(s.Detail, "sess-") && !strings.Contains(s.Detail, td.Scope) {
				t.Fatalf("trace %d (scope %s) contains foreign step: %v", td.ID, td.Scope, s)
			}
		}
	}
	if n != goroutines*scopes*rounds {
		t.Fatalf("collected %d traces, want %d", n, goroutines*scopes*rounds)
	}
	// Every one is retained (ring sized to fit) and retrievable.
	if got := e.Observer().Traces.Recent(0); len(got) != n {
		t.Fatalf("ring retained %d traces, want %d", len(got), n)
	}
}
