package sentinel

import (
	"sync"
	"sync/atomic"
)

// The decision fast path serves repeat ALLOW verdicts for cacheable
// enforcement events without re-running the rule cascade. It is an
// epoch-tagged, sharded map from the request tuple
// (event, user, session, operation, object) to the settled *Decision.
//
// Correctness rests on three guards, all enforced by the engine before
// a verdict is served or stored:
//
//   - eligibility: the event must have exactly one scope-marked
//     subscriber in the detector (no composite parents, no escalation)
//     and every enabled rule on it must be CacheSafe with no outcome
//     listeners registered — see Engine.cacheable;
//   - epoch tagging: entries carry the fast-path epoch and the
//     session's generation as observed BEFORE the cascade ran. Any
//     policy/rule/event-graph change bumps the epoch, any session
//     change bumps the session generation, so a mutation that
//     interleaves with a cascade always lands after the capture and
//     the stored entry is born stale;
//   - allow-only: denials are never cached, so the Else branch (denial
//     recording, audit) runs on every denied request.
//
// Sessions hash into a fixed array of generation slots; two sessions
// sharing a slot merely over-invalidate each other, never under.
const (
	fpShards       = 64
	fpShardCap     = 4096
	fpSessionSlots = 256
)

// fpEntry is one cached verdict with the epoch pair it was computed
// under.
type fpEntry struct {
	dec   *Decision
	epoch uint64
	sgen  uint64
}

// fpShard is one cache shard: readers load the map pointer and index it
// lock-free; writers clone-and-swap under the shard mutex. Misses are
// rare after warm-up, so the O(n) clone on insert is off the hot path.
type fpShard struct {
	mu sync.Mutex
	m  atomic.Pointer[map[string]fpEntry]
	// mapEpoch is the fast-path epoch the current map was built under;
	// an insert after an invalidation starts a fresh map instead of
	// dragging dead entries along. Guarded by mu.
	mapEpoch uint64
}

// FastPath is the sharded decision cache. All methods are safe for
// concurrent use.
type FastPath struct {
	epoch  atomic.Uint64
	sgens  [fpSessionSlots]atomic.Uint64
	shards [fpShards]fpShard

	hits          atomic.Uint64
	misses        atomic.Uint64
	bypass        atomic.Uint64
	invalidations atomic.Uint64
}

// FastPathStats is a point-in-time snapshot of the cache counters.
type FastPathStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Bypass        uint64 `json:"bypass"`
	Invalidations uint64 `json:"invalidations"`
	Epoch         uint64 `json:"epoch"`
}

func newFastPath() *FastPath {
	f := &FastPath{}
	for i := range f.shards {
		empty := make(map[string]fpEntry)
		f.shards[i].m.Store(&empty)
	}
	return f
}

// Stats snapshots the counters.
func (f *FastPath) Stats() FastPathStats {
	return FastPathStats{
		Hits:          f.hits.Load(),
		Misses:        f.misses.Load(),
		Bypass:        f.bypass.Load(),
		Invalidations: f.invalidations.Load(),
		Epoch:         f.epoch.Load(),
	}
}

// Invalidate drops every cached verdict by bumping the epoch; entries
// tagged with older epochs fail validation and are discarded lazily.
func (f *FastPath) Invalidate() {
	f.epoch.Add(1)
	f.invalidations.Add(1)
}

// InvalidateSession drops cached verdicts for one session by bumping
// its generation slot.
func (f *FastPath) InvalidateSession(sid string) {
	f.sgens[fnv1aString(sid)&(fpSessionSlots-1)].Add(1)
	f.invalidations.Add(1)
}

// sgen returns the current generation of the session's slot.
func (f *FastPath) sgen(session string) uint64 {
	return f.sgens[fnv1aString(session)&(fpSessionSlots-1)].Load()
}

// lookup returns the cached decision for key if it is still valid under
// the given epoch pair.
func (f *FastPath) lookup(key []byte, epoch, sgen uint64) (*Decision, bool) {
	sh := &f.shards[fnv1a(key)&(fpShards-1)]
	ent, ok := (*sh.m.Load())[string(key)] // no-alloc map index
	if !ok || ent.epoch != epoch || ent.sgen != sgen {
		return nil, false
	}
	return ent.dec, true
}

// store publishes a settled decision under the epoch pair captured
// before its cascade ran. A stale capture (epoch moved on) is dropped;
// an over-full or pre-invalidation shard map is restarted fresh.
func (f *FastPath) store(key []byte, dec *Decision, epoch, sgen uint64) {
	cur := f.epoch.Load()
	if epoch != cur {
		return
	}
	sh := &f.shards[fnv1a(key)&(fpShards-1)]
	sh.mu.Lock()
	old := *sh.m.Load()
	var m map[string]fpEntry
	if sh.mapEpoch != cur || len(old) >= fpShardCap {
		m = make(map[string]fpEntry, 64)
		sh.mapEpoch = cur
	} else {
		m = make(map[string]fpEntry, len(old)+1)
		for k, v := range old {
			m[k] = v
		}
	}
	m[string(key)] = fpEntry{dec: dec, epoch: epoch, sgen: sgen}
	sh.m.Store(&m)
	sh.mu.Unlock()
}

// fpKeyPool recycles key buffers so the hit path allocates nothing.
var fpKeyPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// appendFPKey encodes the request tuple as length-prefixed fields. A
// field longer than 255 bytes makes the tuple unencodable (bypass).
func appendFPKey(buf []byte, event, user, session, operation, object string) ([]byte, bool) {
	for _, s := range [...]string{event, user, session, operation, object} {
		if len(s) > 255 {
			return nil, false
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, true
}

// fpRequest extracts the cacheable request fields from params. Any
// parameter outside the known string quartet makes the request
// uncacheable: an unknown parameter could steer a rule condition and
// must not collapse into another tuple's cache line.
func fpRequest(params map[string]any) (user, session, operation, object string, ok bool) {
	for k, v := range params {
		s, isStr := v.(string)
		if !isStr {
			return "", "", "", "", false
		}
		switch k {
		case "user":
			user = s
		case "session":
			session = s
		case "operation":
			operation = s
		case "object":
			object = s
		default:
			return "", "", "", "", false
		}
	}
	return user, session, operation, object, true
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func fnv1aString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
