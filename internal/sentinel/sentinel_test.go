package sentinel

import (
	"errors"
	"sync"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/core"
	"activerbac/internal/event"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newEngine() (*Engine, *clock.Sim) {
	sim := clock.NewSim(t0)
	return NewEngine(sim), sim
}

func TestReactiveObjectInvoke(t *testing.T) {
	e, _ := newEngine()
	obj := NewReactiveObject(e.Detector(), "fileMgr")
	if err := obj.DesignateMethod("open"); err != nil {
		t.Fatal(err)
	}
	var got []*event.Occurrence
	if _, err := e.Detector().Subscribe("fileMgr.open", func(o *event.Occurrence) { got = append(got, o) }); err != nil {
		t.Fatal(err)
	}
	if err := obj.Invoke("open", event.Params{"user": "bob", "file": "patient.dat"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Params["file"] != "patient.dat" {
		t.Fatalf("occurrences %v", got)
	}
	if err := obj.Invoke("close", nil); err == nil {
		t.Fatal("non-designated method invocable")
	}
	if err := obj.DesignateMethod(""); err == nil {
		t.Fatal("empty method accepted")
	}
	if obj.Name() != "fileMgr" {
		t.Fatalf("Name = %q", obj.Name())
	}
}

func TestReactiveObjectMethods(t *testing.T) {
	e, _ := newEngine()
	obj := NewReactiveObject(e.Detector(), "o")
	for _, m := range []string{"zz", "aa"} {
		if err := obj.DesignateMethod(m); err != nil {
			t.Fatal(err)
		}
	}
	ms := obj.Methods()
	if len(ms) != 2 || ms[0] != "aa" || ms[1] != "zz" {
		t.Fatalf("Methods = %v", ms)
	}
}

func TestMethodEventNaming(t *testing.T) {
	if MethodEvent("rbac", "checkAccess") != "rbac.checkAccess" {
		t.Fatal("MethodEvent naming changed")
	}
}

type recorder struct {
	mu   sync.Mutex
	occs []*event.Occurrence
}

func (r *recorder) Notify(o *event.Occurrence) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.occs = append(r.occs, o)
}

func TestNotifiable(t *testing.T) {
	e, _ := newEngine()
	e.Detector().MustPrimitive("ping")
	rec := &recorder{}
	if _, err := NotifyOn(e.Detector(), "ping", rec); err != nil {
		t.Fatal(err)
	}
	e.Detector().MustRaise("ping", nil)
	if len(rec.occs) != 1 {
		t.Fatalf("notified %d times, want 1", len(rec.occs))
	}
}

func TestExternalMonitorInject(t *testing.T) {
	e, _ := newEngine()
	m := e.Monitor()
	if err := m.Register("sensor.location"); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := e.Detector().Subscribe("sensor.location", func(*event.Occurrence) { n++ }); err != nil {
		t.Fatal(err)
	}
	if err := m.Inject("sensor.location", event.Params{"room": "ICU"}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("injected %d, want 1", n)
	}
	if err := m.Inject("sensor.unknown", nil); err == nil {
		t.Fatal("unknown external event accepted")
	}
}

func TestExternalMonitorPump(t *testing.T) {
	e, _ := newEngine()
	m := e.Monitor()
	if err := m.Register("sensor.door"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	n := 0
	if _, err := e.Detector().Subscribe("sensor.door", func(*event.Occurrence) {
		mu.Lock()
		n++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	src, err := m.Start(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(16); err == nil {
		t.Fatal("double Start accepted")
	}
	for i := 0; i < 10; i++ {
		src <- External{Event: "sensor.door"}
	}
	src <- External{Event: "sensor.bogus"} // counted as error
	m.Stop()
	m.Stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if n != 10 {
		t.Fatalf("pumped %d, want 10", n)
	}
	if m.Errors() != 1 {
		t.Fatalf("Errors = %d, want 1", m.Errors())
	}
}

func TestDecisionAggregation(t *testing.T) {
	d := &Decision{}
	if d.Allowed() {
		t.Fatal("voteless decision allowed (must fail closed)")
	}
	if d.Reason() != "no applicable rule" {
		t.Fatalf("Reason = %q", d.Reason())
	}
	d.Allow("r1")
	if !d.Allowed() {
		t.Fatal("single allow not allowed")
	}
	if d.Err() != nil {
		t.Fatal("Err on allowed decision")
	}
	d.Deny("r2", "cardinality reached")
	if d.Allowed() {
		t.Fatal("deny did not override allow")
	}
	if d.Reason() != "cardinality reached" {
		t.Fatalf("Reason = %q", d.Reason())
	}
	if d.Err() == nil {
		t.Fatal("Err nil on denied decision")
	}
	if len(d.Votes()) != 2 {
		t.Fatalf("Votes = %v", d.Votes())
	}
	if d.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEngineDecide(t *testing.T) {
	e, _ := newEngine()
	det := e.Detector()
	det.MustPrimitive("req.activate")
	e.Pool().MustAdd(core.Rule{
		Name: "AAR", On: "req.activate",
		When: []core.Condition{core.BoolCond("user==bob", func(o *event.Occurrence) bool {
			return o.Params["user"] == "bob"
		})},
		Then: []core.Action{core.Act("allow", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("AAR")
			}
			return nil
		})},
		Else: []core.Action{core.Act("deny", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Deny("AAR", "access denied cannot activate")
			}
			return nil
		})},
	})

	dec, err := e.Decide("req.activate", event.Params{"user": "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed() {
		t.Fatalf("bob denied: %s", dec.Reason())
	}
	dec, err = e.Decide("req.activate", event.Params{"user": "mallory"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed() {
		t.Fatal("mallory allowed")
	}
	if dec.Reason() != "access denied cannot activate" {
		t.Fatalf("Reason = %q", dec.Reason())
	}
	if _, err := e.Decide("req.unknown", nil); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestDecideCascadedOverride(t *testing.T) {
	// Paper Rule 4 shape: the activation rule allows and raises a
	// follow-up event; the cardinality rule triggered by the cascade
	// vetoes. The caller must see the deny.
	e, _ := newEngine()
	det := e.Detector()
	det.MustPrimitive("req.activate")
	det.MustPrimitive("roleAdded")
	e.Pool().MustAdd(core.Rule{
		Name: "AAR", On: "req.activate",
		Then: []core.Action{core.Act("allow+cascade", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("AAR")
			}
			return det.Raise("roleAdded", o.Params)
		})},
	})
	e.Pool().MustAdd(core.Rule{
		Name: "CC1", On: "roleAdded",
		When: []core.Condition{core.BoolCond("cardinality", func(*event.Occurrence) bool { return false })},
		Else: []core.Action{core.Act("veto", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Deny("CC1", "maximum number of roles reached")
			}
			return nil
		})},
	})
	dec, err := e.Decide("req.activate", nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed() {
		t.Fatal("cascaded veto lost: decision allowed")
	}
	if dec.Reason() != "maximum number of roles reached" {
		t.Fatalf("Reason = %q", dec.Reason())
	}
}

func TestDecideConcurrent(t *testing.T) {
	e, _ := newEngine()
	det := e.Detector()
	det.MustPrimitive("req")
	e.Pool().MustAdd(core.Rule{
		Name: "r", On: "req",
		Then: []core.Action{core.Act("allow", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("r")
			}
			return nil
		})},
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				dec, err := e.Decide("req", nil)
				if err != nil {
					errs <- err
					return
				}
				if !dec.Allowed() {
					errs <- errors.New("denied")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEngineNotifyAndSummary(t *testing.T) {
	e, _ := newEngine()
	e.Detector().MustPrimitive("tick")
	n := 0
	if _, err := e.Detector().Subscribe("tick", func(*event.Occurrence) { n++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.Notify("tick", nil); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatal("Notify did not deliver")
	}
	if s := e.Summary(); s == "" {
		t.Fatal("empty Summary")
	}
}

func TestDecisionOfMissing(t *testing.T) {
	if _, ok := DecisionOf(nil); ok {
		t.Fatal("DecisionOf(nil) ok")
	}
	if _, ok := DecisionOf(&event.Occurrence{}); ok {
		t.Fatal("DecisionOf without params ok")
	}
}
