package sentinel

import (
	"sort"
	"sync"
)

// Env is the engine's environmental context: the key/value state that
// external sensors report (location of a user's terminal, network
// security classification, emergency mode). The paper's context-aware
// scenarios — "when an user tries to open a protected file in a
// pervasive computing domain, the system can check whether the network
// is secure or insecure" — read this store from rule conditions, and
// context-update events both write it and trigger reactive rules
// (activating/deactivating roles as users move).
type Env struct {
	mu   sync.RWMutex
	vals map[string]string
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{vals: make(map[string]string)}
}

// Set stores a context value and returns the previous value.
func (e *Env) Set(key, value string) (prev string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	prev = e.vals[key]
	e.vals[key] = value
	return prev
}

// Get reads a context value; ok is false for unset keys.
func (e *Env) Get(key string) (value string, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	value, ok = e.vals[key]
	return value, ok
}

// Match reports whether key currently holds want. Unset keys match
// nothing (fail closed).
func (e *Env) Match(key, want string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.vals[key] == want && want != ""
}

// Keys lists the set context keys, sorted.
func (e *Env) Keys() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.vals))
	for k := range e.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
