// Package sentinel reimplements the substrate the paper's prototype runs
// on: Sentinel+, an active object-oriented system. It provides
//
//   - reactive objects, whose designated methods are primitive event
//     generators (the "event interface" of Sentinel);
//   - notifiable objects, which are informed of event occurrences;
//   - the external monitoring module, which injects external/sensor
//     events (location changes, network state) into the detector;
//   - the Engine, which wires an event detector, an OWTE rule pool and
//     an RBAC store together and offers the synchronous decision calls
//     the enforcement layer is built on.
package sentinel

import (
	"fmt"
	"sort"
	"sync"

	"activerbac/internal/event"
)

// MethodEvent returns the canonical primitive-event name for a method
// invocation on an object: "object.method" (the paper's
// U -> F(PA1..PAn) notation, with the invoking subject carried in the
// parameters).
func MethodEvent(object, method string) string {
	return object + "." + method
}

// ReactiveObject is a Sentinel reactive object: a named object whose
// designated methods generate primitive events when invoked.
type ReactiveObject struct {
	name string
	det  *event.Detector

	mu      sync.RWMutex
	methods map[string]struct{}
}

// NewReactiveObject registers a reactive object with the detector.
func NewReactiveObject(det *event.Detector, name string) *ReactiveObject {
	return &ReactiveObject{name: name, det: det, methods: make(map[string]struct{})}
}

// Name returns the object's name.
func (o *ReactiveObject) Name() string { return o.name }

// DesignateMethod marks method as a primitive event generator and
// defines the corresponding event.
func (o *ReactiveObject) DesignateMethod(method string) error {
	if method == "" {
		return fmt.Errorf("sentinel: empty method name on %q", o.name)
	}
	if err := o.det.DefinePrimitive(MethodEvent(o.name, method)); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.methods[method] = struct{}{}
	return nil
}

// Methods lists the designated methods, sorted.
func (o *ReactiveObject) Methods() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.methods))
	for m := range o.methods {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Invoke calls a designated method: it raises the method's primitive
// event with the given parameters. Invoking a non-designated method is
// an error (the object has no event interface for it).
func (o *ReactiveObject) Invoke(method string, params event.Params) error {
	o.mu.RLock()
	_, ok := o.methods[method]
	o.mu.RUnlock()
	if !ok {
		return fmt.Errorf("sentinel: method %q not designated on object %q", method, o.name)
	}
	return o.det.Raise(MethodEvent(o.name, method), params)
}

// Notifiable is a Sentinel notifiable object: it is capable of being
// informed of event occurrences.
type Notifiable interface {
	Notify(*event.Occurrence)
}

// NotifyOn subscribes a notifiable object to an event and returns the
// subscription id.
func NotifyOn(det *event.Detector, eventName string, n Notifiable) (int, error) {
	return det.Subscribe(eventName, n.Notify)
}
