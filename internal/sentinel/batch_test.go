package sentinel

import (
	"sync"
	"testing"

	"activerbac/internal/core"
	"activerbac/internal/event"
)

// allowBobRule wires the standard test rule: allow when user=="bob",
// deny anyone else with a fixed reason.
func allowBobRule(e *Engine, on string) {
	e.Detector().MustPrimitive(on)
	e.Pool().MustAdd(core.Rule{
		Name: "R", On: on,
		When: []core.Condition{core.BoolCond("user==bob", func(o *event.Occurrence) bool {
			return o.Params["user"] == "bob"
		})},
		Then: []core.Action{core.Act("allow", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("R")
			}
			return nil
		})},
		Else: []core.Action{core.Act("deny", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Deny("R", "not bob")
			}
			return nil
		})},
	})
}

// TestDecideCheckBatchMatchesSequential: a mixed batch — several
// scopes, duplicates, a global-scope tuple — must yield exactly the
// verdicts the per-tuple path yields, in input order.
func TestDecideCheckBatchMatchesSequential(t *testing.T) {
	e, _ := newEngine()
	allowBobRule(e, "req")

	tuples := []CheckTuple{
		{User: "bob", Session: "s1", Operation: "read", Object: "a"},
		{User: "eve", Session: "s2", Operation: "read", Object: "a"},
		{User: "bob", Session: "s1", Operation: "read", Object: "a"}, // duplicate of [0]
		{User: "bob", Session: "", Operation: "write", Object: "b"},  // user-scoped
		{User: "", Session: "", Operation: "write", Object: "b"},     // global scope
		{User: "eve", Session: "s2", Operation: "read", Object: "a"}, // duplicate of [1]
	}
	want := make([]Verdict, 0, len(tuples))
	for _, tp := range tuples {
		dec, err := e.DecideCheck("req", tp.User, tp.Session, tp.Operation, tp.Object)
		if err != nil {
			t.Fatal(err)
		}
		allowed, reason := dec.Verdict()
		want = append(want, Verdict{Allowed: allowed, Reason: reason})
	}

	got, err := e.DecideCheckBatch("req", tuples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d verdicts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("verdict[%d] = %+v, want %+v (tuple %+v)", i, got[i], want[i], tuples[i])
		}
	}
}

// TestDecideCheckBatchEdgeCases: an empty batch answers empty without
// touching the engine; an undefined event fails the whole batch.
func TestDecideCheckBatchEdgeCases(t *testing.T) {
	e, _ := newEngine()
	allowBobRule(e, "req")

	got, err := e.DecideCheckBatch("req", nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: verdicts=%v err=%v", got, err)
	}
	if _, err := e.DecideCheckBatch("req.unknown", []CheckTuple{{User: "bob"}}, nil); err == nil {
		t.Fatal("undefined event accepted")
	}
	// Verdict-slice reuse: capacity is kept, contents replaced.
	buf := make([]Verdict, 0, 8)
	got, err = e.DecideCheckBatch("req", []CheckTuple{{User: "bob", Session: "s1"}}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Allowed || cap(got) != cap(buf) {
		t.Fatalf("reused-slice batch: %+v (cap %d, want %d)", got, cap(got), cap(buf))
	}
}

// TestDecideCheckBatchCascadedVeto: a cascaded rule firing on a
// follow-up event must veto the right tuple of the batch — the
// cross-lane settled-cascade guarantee, batch-wide.
func TestDecideCheckBatchCascadedVeto(t *testing.T) {
	e, _ := newEngine()
	det := e.Detector()
	det.MustPrimitive("req")
	det.MustPrimitive("roleAdded")
	e.Pool().MustAdd(core.Rule{
		Name: "AAR", On: "req",
		Then: []core.Action{core.Act("allow+cascade", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("AAR")
			}
			if o.Params["operation"] == "activate" {
				return det.RaiseFrom(o, "roleAdded", o.Params)
			}
			return nil
		})},
	})
	e.Pool().MustAdd(core.Rule{
		Name: "CC1", On: "roleAdded",
		When: []core.Condition{core.BoolCond("cardinality", func(*event.Occurrence) bool { return false })},
		Else: []core.Action{core.Act("veto", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Deny("CC1", "maximum number of roles reached")
			}
			return nil
		})},
	})

	got, err := e.DecideCheckBatch("req", []CheckTuple{
		{User: "u1", Session: "s1", Operation: "read", Object: "x"},
		{User: "u2", Session: "s2", Operation: "activate", Object: "x"},
		{User: "u3", Session: "s3", Operation: "read", Object: "x"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantAllowed := []bool{true, false, true}
	for i, w := range wantAllowed {
		if got[i].Allowed != w {
			t.Errorf("verdict[%d].Allowed = %v, want %v (%+v)", i, got[i].Allowed, w, got[i])
		}
	}
	if got[1].Reason != "maximum number of roles reached" {
		t.Errorf("cascaded veto reason = %q", got[1].Reason)
	}
}

// TestDecideCheckBatchGroupOrder pins the documented execution order:
// misses are grouped by scope in first-appearance order and each group
// delivers in input order, so on a single lane the interleaved batch
// s1,s2,s1,s2 executes as s1,s1,s2,s2.
func TestDecideCheckBatchGroupOrder(t *testing.T) {
	e, _ := newEngine()
	var mu sync.Mutex
	var order []string
	e.Detector().MustPrimitive("req")
	e.Pool().MustAdd(core.Rule{
		Name: "rec", On: "req",
		Then: []core.Action{core.Act("record", func(o *event.Occurrence) error {
			mu.Lock()
			order = append(order, o.Params["session"].(string)+"/"+o.Params["object"].(string))
			mu.Unlock()
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("rec")
			}
			return nil
		})},
	})

	_, err := e.DecideCheckBatch("req", []CheckTuple{
		{User: "u", Session: "s1", Operation: "op", Object: "o1"},
		{User: "u", Session: "s2", Operation: "op", Object: "o2"},
		{User: "u", Session: "s1", Operation: "op", Object: "o3"},
		{User: "u", Session: "s2", Operation: "op", Object: "o4"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s1/o1", "s1/o3", "s2/o2", "s2/o4"}
	if len(order) != len(want) {
		t.Fatalf("delivered %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
}

// TestDecideCheckBatchConcurrent hammers batches from several
// goroutines (overlapping scopes, pooled state reuse) — the -race proof
// for the batch scratch pooling.
func TestDecideCheckBatchConcurrent(t *testing.T) {
	e, _ := newEngine()
	allowBobRule(e, "req")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			users := [2]string{"bob", "eve"}
			for i := 0; i < 40; i++ {
				tuples := []CheckTuple{
					{User: users[i%2], Session: "shared", Operation: "op", Object: "o"},
					{User: "bob", Session: "shared", Operation: "op", Object: "o"},
					{User: users[(i+1)%2], Session: "", Operation: "op", Object: "o"},
				}
				got, err := e.DecideCheckBatch("req", tuples, nil)
				if err != nil {
					t.Error(err)
					return
				}
				for j, tp := range tuples {
					if want := tp.User == "bob"; got[j].Allowed != want {
						t.Errorf("g%d i%d verdict[%d] = %v, want %v", g, i, j, got[j].Allowed, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// cacheSafeBobRule wires the allow-bob rule in the verdict-cache-safe
// shape (session-scoped, CacheSafe, sole pool subscription, no outcome
// listeners) so the batch path takes its carrier mode: one reused
// occurrence and params map per scope group, slab-backed decisions.
func cacheSafeBobRule(e *Engine, on string) {
	e.Detector().MustPrimitive(on)
	e.Pool().MustAdd(core.Rule{
		Name: "R", On: on,
		Scope: core.ScopeSession, CacheSafe: true,
		When: []core.Condition{core.BoolCond("user==bob", func(o *event.Occurrence) bool {
			return o.Params["user"] == "bob"
		})},
		Then: []core.Action{core.Act("allow", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Allow("R")
			}
			return nil
		})},
		Else: []core.Action{core.Act("deny", func(o *event.Occurrence) error {
			if dec, ok := DecisionOf(o); ok {
				dec.Deny("R", "not bob")
			}
			return nil
		})},
	})
}

// TestDecideCheckBatchCarrierMode: under the cache-safe shape with no
// fast path the batch runs in carrier mode. Verdicts must still match
// the per-tuple path exactly, across rounds (the decision slab and
// carrier maps are reused between batches).
func TestDecideCheckBatchCarrierMode(t *testing.T) {
	e, _ := newEngine()
	cacheSafeBobRule(e, "req")
	if !e.cacheable("req") {
		t.Fatal("test rule is not in the cache-safe shape; carrier mode untested")
	}

	tuples := []CheckTuple{
		{User: "bob", Session: "s1", Operation: "read", Object: "a"},
		{User: "eve", Session: "s2", Operation: "read", Object: "a"},
		{User: "bob", Session: "s1", Operation: "read", Object: "a"}, // duplicate
		{User: "bob", Session: "", Operation: "write", Object: "b"},  // user-scoped
		{User: "eve", Session: "s2", Operation: "read", Object: "a"},
	}
	want := make([]Verdict, 0, len(tuples))
	for _, tp := range tuples {
		dec, err := e.DecideCheck("req", tp.User, tp.Session, tp.Operation, tp.Object)
		if err != nil {
			t.Fatal(err)
		}
		allowed, reason := dec.Verdict()
		want = append(want, Verdict{Allowed: allowed, Reason: reason})
	}
	var got []Verdict
	var err error
	for round := 0; round < 3; round++ {
		got, err = e.DecideCheckBatch("req", tuples, got)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: got %d verdicts, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d: verdict[%d] = %+v, want %+v (tuple %+v)", round, i, got[i], want[i], tuples[i])
			}
		}
	}
}

// TestDecideCheckBatchCarrierConcurrent hammers carrier-mode batches
// from several goroutines — the -race proof for the slab-backed
// decisions and per-group carrier reuse.
func TestDecideCheckBatchCarrierConcurrent(t *testing.T) {
	e, _ := newEngine()
	cacheSafeBobRule(e, "req")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			users := [2]string{"bob", "eve"}
			var buf []Verdict
			for i := 0; i < 40; i++ {
				tuples := []CheckTuple{
					{User: users[i%2], Session: "shared", Operation: "op", Object: "o"},
					{User: "bob", Session: "shared", Operation: "op", Object: "o"},
					{User: users[(i+1)%2], Session: "solo", Operation: "op", Object: "o"},
				}
				got, err := e.DecideCheckBatch("req", tuples, buf)
				if err != nil {
					t.Error(err)
					return
				}
				buf = got
				for j, tp := range tuples {
					if want := tp.User == "bob"; got[j].Allowed != want {
						t.Errorf("g%d i%d verdict[%d] = %v, want %v", g, i, j, got[j].Allowed, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
