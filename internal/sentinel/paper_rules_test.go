package sentinel

import (
	"testing"
	"time"

	"activerbac/internal/core"
	"activerbac/internal/event"
	"activerbac/internal/rbac"
)

// Faithful reproductions of the paper's Rule 1 and Rule 2 on the raw
// Sentinel+ substrate — reactive objects, OWTE rules, the PLUS
// operator — exactly as Section 3 presents them.

// Rule 1: "Create a rule that checks for permissions when user Bob
// tries to open a file patient.dat using the command vi(patient.dat)."
//
//	EVENT E1 = Bob -> vi(patient.dat)
//	RULE [ C1
//	       ON   E1
//	       WHEN if checkaccess(Bob, patient.dat) is TRUE ...
//	       THEN <allow opening patient.dat>
//	       ELSE raise error "insufficient privileges" ]
func TestPaperRule1(t *testing.T) {
	e, _ := newEngine()
	det := e.Detector()
	store := e.Store()

	// The underlying RBAC state: Bob holds a role with read access to
	// patient.dat.
	if err := store.AddUser("Bob"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRole("Physician"); err != nil {
		t.Fatal(err)
	}
	readChart := rbac.Permission{Operation: "open", Object: "patient.dat"}
	if err := store.GrantPermission("Physician", readChart); err != nil {
		t.Fatal(err)
	}
	if err := store.AssignUser("Bob", "Physician"); err != nil {
		t.Fatal(err)
	}
	sid, err := store.CreateSession("Bob")
	if err != nil {
		t.Fatal(err)
	}

	// The vi editor is a reactive object whose open method generates
	// the primitive event E1.
	vi := NewReactiveObject(det, "vi")
	if err := vi.DesignateMethod("open"); err != nil {
		t.Fatal(err)
	}

	var opened, denied []string
	e.Pool().MustAdd(core.Rule{
		Name: "C1", On: MethodEvent("vi", "open"),
		When: []core.Condition{
			core.BoolCond("checkaccess(Bob, patient.dat) is TRUE", func(o *event.Occurrence) bool {
				s, _ := o.Params["session"].(string)
				file, _ := o.Params["file"].(string)
				return e.Store().CheckAccess(rbac.SessionID(s), rbac.Permission{Operation: "open", Object: file})
			}),
		},
		Then: []core.Action{core.Act("allow opening patient.dat", func(o *event.Occurrence) error {
			file, _ := o.Params["file"].(string)
			opened = append(opened, file)
			return nil
		})},
		Else: []core.Action{core.Act("raise error \"insufficient privileges\"", func(o *event.Occurrence) error {
			file, _ := o.Params["file"].(string)
			denied = append(denied, file)
			return nil
		})},
	})

	// Before activating the role, the open is denied.
	if err := vi.Invoke("open", event.Params{"user": "Bob", "session": string(sid), "file": "patient.dat"}); err != nil {
		t.Fatal(err)
	}
	if len(denied) != 1 || len(opened) != 0 {
		t.Fatalf("before activation: opened=%v denied=%v", opened, denied)
	}
	// After activation, it is allowed.
	if err := store.AddActiveRole("Bob", sid, "Physician"); err != nil {
		t.Fatal(err)
	}
	if err := vi.Invoke("open", event.Params{"user": "Bob", "session": string(sid), "file": "patient.dat"}); err != nil {
		t.Fatal(err)
	}
	if len(opened) != 1 || opened[0] != "patient.dat" {
		t.Fatalf("after activation: opened=%v denied=%v", opened, denied)
	}
}

// Rule 2: "Create a rule for restricting user Bob from keeping the file
// patient.dat open for more than 2 hours. In other words, close the
// file forcefully after 2 hours."
//
//	RULE [ C1
//	       ON   PLUS(E1, 2 hours)
//	       WHEN TRUE
//	       THEN <Closefile> ]
func TestPaperRule2(t *testing.T) {
	e, sim := newEngine()
	det := e.Detector()

	vi := NewReactiveObject(det, "vi")
	if err := vi.DesignateMethod("open"); err != nil {
		t.Fatal(err)
	}
	det.MustDefine("E2", event.Plus(event.NameExpr(MethodEvent("vi", "open")), 2*time.Hour))

	var closed []string
	e.Pool().MustAdd(core.Rule{
		Name: "C1-plus", On: "E2",
		Then: []core.Action{core.Act("Closefile", func(o *event.Occurrence) error {
			file, _ := o.Params["file"].(string)
			closed = append(closed, file)
			return nil
		})},
	})

	if err := vi.Invoke("open", event.Params{"user": "Bob", "file": "patient.dat"}); err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Hour)
	if len(closed) != 0 {
		t.Fatal("file closed before the 2-hour bound")
	}
	sim.Advance(time.Hour)
	if len(closed) != 1 || closed[0] != "patient.dat" {
		t.Fatalf("closed = %v, want patient.dat at exactly +2h", closed)
	}
}
