package sentinel

import (
	"fmt"
	"sync"

	"activerbac/internal/event"
)

// ExternalMonitor is Sentinel's external monitoring module: it accepts
// events from outside the system (sensors, network probes, location
// services) and injects them into the detector as primitive events.
// Injection may be direct (Inject) or through a buffered channel pumped
// by a background goroutine (Start/Source), decoupling slow sensors
// from the detector.
type ExternalMonitor struct {
	det *event.Detector

	mu      sync.Mutex
	started bool
	src     chan External
	done    chan struct{}
	dropped uint64
	errs    uint64
}

// External is one externally observed occurrence.
type External struct {
	Event  string
	Params event.Params
}

// NewExternalMonitor returns a monitor bound to det.
func NewExternalMonitor(det *event.Detector) *ExternalMonitor {
	return &ExternalMonitor{det: det}
}

// Register defines the primitive event name for an external source.
func (m *ExternalMonitor) Register(eventName string) error {
	return m.det.DefinePrimitive(eventName)
}

// Inject raises an external event synchronously on the caller's
// goroutine.
func (m *ExternalMonitor) Inject(eventName string, p event.Params) error {
	return m.det.Raise(eventName, p)
}

// Start launches the pump goroutine and returns the channel external
// sources write to. The channel is buffered with cap buf; writes to a
// full channel block the producer (external sources should drop or
// batch themselves if that matters).
func (m *ExternalMonitor) Start(buf int) (chan<- External, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return nil, fmt.Errorf("sentinel: external monitor already started")
	}
	m.started = true
	m.src = make(chan External, buf)
	m.done = make(chan struct{})
	go m.pump(m.src, m.done)
	return m.src, nil
}

func (m *ExternalMonitor) pump(src <-chan External, done chan<- struct{}) {
	defer close(done)
	for ext := range src {
		if err := m.det.Raise(ext.Event, ext.Params); err != nil {
			m.mu.Lock()
			m.errs++
			m.mu.Unlock()
		}
	}
}

// Stop closes the source channel and waits for queued events to be
// injected.
func (m *ExternalMonitor) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	src, done := m.src, m.done
	m.started = false
	m.src = nil
	m.mu.Unlock()
	close(src)
	<-done
}

// Errors reports how many injections failed (unknown event names).
func (m *ExternalMonitor) Errors() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.errs
}
