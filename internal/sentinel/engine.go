package sentinel

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/core"
	"activerbac/internal/event"
	"activerbac/internal/obs"
	"activerbac/internal/rbac"
)

// DecisionKey is the occurrence parameter under which a Decision travels
// with an enforcement request. Rules vote on the decision from their
// Then/Else actions; the requester reads the verdict after the cascade
// settles.
const DecisionKey = "_decision"

// Vote is one rule's verdict on a decision.
type Vote struct {
	Rule   string
	Allow  bool
	Reason string
}

// Decision accumulates rule verdicts for one enforcement request. It is
// deny-biased twice over: any deny vote wins over any number of allows,
// and a request no rule voted on at all is denied (no applicable rule —
// fail closed).
type Decision struct {
	mu     sync.Mutex
	votes  []Vote
	// vbuf is inline backing for votes: Decide points votes at it so
	// the common few-vote cascade records verdicts without a second
	// allocation. Access only through votes, under mu.
	vbuf   [4]Vote
	result any
	trace  *obs.Trace
}

// Trace returns the decision's cascade trace, or nil when tracing was
// off for this request. The trace is complete (every step of the
// settled cascade recorded) by the time Decide returns the decision.
func (d *Decision) Trace() *obs.Trace {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trace
}

// SetResult attaches a payload to the decision (e.g. the session id a
// createSession rule produced).
func (d *Decision) SetResult(v any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.result = v
}

// Result returns the payload attached by SetResult, or nil.
func (d *Decision) Result() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.result
}

// Allow records an allowing vote from rule.
func (d *Decision) Allow(rule string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.votes = append(d.votes, Vote{Rule: rule, Allow: true})
}

// Deny records a denying vote from rule with a human-readable reason
// (the paper's "raise error ..." alternative actions).
func (d *Decision) Deny(rule, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.votes = append(d.votes, Vote{Rule: rule, Allow: false, Reason: reason})
}

// Allowed reports the aggregate verdict.
func (d *Decision) Allowed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.votes) == 0 {
		return false
	}
	for _, v := range d.votes {
		if !v.Allow {
			return false
		}
	}
	return true
}

// Votes returns a copy of the recorded votes in voting order.
func (d *Decision) Votes() []Vote {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Vote(nil), d.votes...)
}

// Reason returns the first deny reason, or "" when allowed. A voteless
// decision reports "no applicable rule".
func (d *Decision) Reason() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.votes) == 0 {
		return "no applicable rule"
	}
	for _, v := range d.votes {
		if !v.Allow {
			return v.Reason
		}
	}
	return ""
}

// Verdict reports the aggregate verdict and the matching deny reason
// under one lock acquisition, so a vote recorded between the two reads
// cannot produce an inconsistent pair (an allow with a deny reason, or
// vice versa). Reason is "" when allowed.
func (d *Decision) Verdict() (allowed bool, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.votes) == 0 {
		return false, "no applicable rule"
	}
	for _, v := range d.votes {
		if !v.Allow {
			return false, v.Reason
		}
	}
	return true, ""
}

// Err converts a denial into an error (nil when allowed).
func (d *Decision) Err() error {
	allowed, reason := d.Verdict()
	if allowed {
		return nil
	}
	return fmt.Errorf("sentinel: denied: %s", reason)
}

// String renders the decision for logs.
func (d *Decision) String() string {
	allowed, reason := d.Verdict()
	if allowed {
		return "ALLOW"
	}
	return "DENY (" + reason + ")"
}

// DecisionOf extracts the Decision travelling with an occurrence, if
// any. Rule actions use it to vote.
func DecisionOf(o *event.Occurrence) (*Decision, bool) {
	if o == nil || o.Params == nil {
		return nil, false
	}
	dec, ok := o.Params[DecisionKey].(*Decision)
	return dec, ok
}

// Engine is the assembled Sentinel+ system: a clock, an event detector,
// an OWTE rule pool, an RBAC store and an external monitor, wired
// together. It is the substrate everything above (rule generation,
// enforcement facade, server) runs on.
type Engine struct {
	clk     clock.Clock
	det     *event.Detector
	pool    *core.Pool
	store   *rbac.Store
	monitor *ExternalMonitor
	env     *Env
	obs     *obs.Observer // nil = observability off
	fp      *FastPath     // nil = fast path off

	// pushEpoch counts every change that can invalidate a cached
	// verdict anywhere: unlike the store's policy epoch it also bumps
	// on session-grade mutations (role drops, session deletes) and on
	// detector/rule-pool changes. It is what epoch-push subscribers and
	// embedded client caches key on.
	pushEpoch atomic.Uint64
	// pushHook, when set, is called (under the mutating component's
	// lock — it must not block) after every pushEpoch bump with the new
	// value; the wire server fans it out to subscribers.
	pushHook atomic.Pointer[func(uint64)]
}

// EngineOption configures a new Engine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	lanes    int
	observer *obs.Observer
	fastpath bool
}

// WithLanes sets the detector lane count: 1 (the default) is the
// classic fully-serialized Sentinel+ drain; n > 1 shards scope-local
// enforcement over n parallel lanes next to the global lane.
func WithLanes(n int) EngineOption {
	return func(c *engineConfig) { c.lanes = n }
}

// WithFastPath enables the read-mostly decision fast path: Decide
// serves repeat ALLOW verdicts for cacheable events from an
// epoch-tagged cache (see fastpath.go), and occurrence pooling is
// switched on while no outcome listener is registered. Traced requests
// always run the full cascade.
func WithFastPath() EngineOption {
	return func(c *engineConfig) { c.fastpath = true }
}

// WithObserver attaches an observability bundle: the engine feeds the
// observer's lane/operator instruments on the hot path, mirrors its
// counters into the registry at scrape time, and — when the observer
// carries a trace ring — records a full cascade trace per Decide. A nil
// observer (the default) keeps the zero-overhead path.
func WithObserver(o *obs.Observer) EngineOption {
	return func(c *engineConfig) { c.observer = o }
}

// NewEngine builds an empty engine on the given clock.
func NewEngine(clk clock.Clock, opts ...EngineOption) *Engine {
	cfg := engineConfig{lanes: 1}
	for _, o := range opts {
		o(&cfg)
	}
	det := event.New(clk, event.WithLanes(cfg.lanes))
	e := &Engine{
		clk:     clk,
		det:     det,
		pool:    core.NewPool(det),
		store:   rbac.NewStore(),
		monitor: NewExternalMonitor(det),
		env:     NewEnv(),
		obs:     cfg.observer,
	}
	if o := cfg.observer; o != nil {
		det.SetInstruments(&event.Instruments{
			LaneWait: func(lane string, s float64) {
				o.LaneWait.With(lane).Observe(s)
				o.StageLaneWait.Observe(s)
			},
			OperatorMatch: func(op string) { o.OperatorMatches.With(op).Inc() },
		})
		e.pool.SetRuleTiming(true)
		o.Registry.OnScrape(e.collect)
	}
	if cfg.fastpath {
		e.fp = newFastPath()
	}
	fp := e.fp
	// Change hooks. All three run under their component's writer lock
	// and only touch atomics (the push hook must honor the same
	// contract). They serve two consumers: the fast-path cache (when
	// enabled — store mutations tell us whether the whole policy or one
	// session moved; rule-pool and event-graph changes invalidate
	// wholesale) and the push epoch, which bumps on every grade of
	// change so epoch-push subscribers and embedded client caches are
	// told whenever any cached verdict may have moved. The pool hook
	// also gates occurrence pooling on the absence of outcome listeners
	// (audit retains occurrences, pooling would corrupt them); it fires
	// once at install, setting the initial state.
	e.store.SetChangeHook(func(policy bool, sid rbac.SessionID) {
		if fp != nil {
			if policy {
				fp.Invalidate()
			} else {
				fp.InvalidateSession(string(sid))
			}
		}
		e.bumpPushEpoch()
	})
	det.SetChangeHook(func() {
		if fp != nil {
			fp.Invalidate()
		}
		e.bumpPushEpoch()
	})
	e.pool.SetChangeHook(func() {
		if fp != nil {
			fp.Invalidate()
			det.SetOccurrencePooling(e.pool.ListenerCount() == 0)
		}
		e.bumpPushEpoch()
	})
	return e
}

// bumpPushEpoch advances the push epoch and notifies the hook, if any.
// Called under component writer locks: atomics and non-blocking work
// only.
func (e *Engine) bumpPushEpoch() {
	epoch := e.pushEpoch.Add(1)
	if h := e.pushHook.Load(); h != nil {
		(*h)(epoch)
	}
}

// PushEpoch reports the current push epoch: a monotonic counter over
// every policy-, session-, detector- or rule-grade change that can
// invalidate a cached verdict.
func (e *Engine) PushEpoch() uint64 { return e.pushEpoch.Load() }

// SetPushHook installs fn to be called with the new epoch after every
// push-epoch bump. fn runs under the mutating component's lock and must
// not block (atomics and non-blocking channel work only). Installing
// replaces any previous hook; nil clears it.
func (e *Engine) SetPushHook(fn func(epoch uint64)) {
	if fn == nil {
		e.pushHook.Store(nil)
		return
	}
	e.pushHook.Store(&fn)
}

// FastPath returns the decision cache, or nil when the fast path is
// off.
func (e *Engine) FastPath() *FastPath { return e.fp }

// cacheable reports whether eventName's ALLOW verdicts may be served
// from the fast-path cache: the detector must route it to exactly one
// scope-marked subscriber (no composite parents, no escalation) and the
// pool must confirm that subscriber is its own, firing only CacheSafe
// rules with no outcome listeners.
func (e *Engine) cacheable(eventName string) bool {
	sub, ok := e.det.SoleScopedSub(eventName)
	return ok && e.pool.CacheVerdictSafe(eventName, sub)
}

// CacheableEvent reports whether eventName's verdicts depend only on
// state the push epoch tags — the same classification the fast path
// uses — and so are safe for an epoch-tagged client cache. It holds
// regardless of whether the in-process fast path is enabled.
func (e *Engine) CacheableEvent(eventName string) bool { return e.cacheable(eventName) }

// Observer returns the engine's observability bundle (nil when off).
func (e *Engine) Observer() *obs.Observer { return e.obs }

// collect mirrors the engine's own atomic counters into the metric
// registry. Runs at scrape time only, so the hot path pays nothing for
// lane depth, rule-firing or store-size metrics.
func (e *Engine) collect() {
	o := e.obs
	for _, ls := range e.det.LaneStats() {
		o.LaneDepth.With(ls.Lane).Set(float64(ls.Depth))
		o.LaneMaxDepth.With(ls.Lane).Set(float64(ls.MaxDepth))
		o.LaneEnqueued.With(ls.Lane).Set(float64(ls.Enqueued))
		o.LaneProcessed.With(ls.Lane).Set(float64(ls.Processed))
	}
	st := e.det.Stats()
	o.EventsRaised.Set(float64(st.Raised))
	o.EventsDetected.Set(float64(st.Detected))
	rules := e.pool.Snapshot()
	o.Rules.Set(float64(len(rules)))
	for _, r := range rules {
		o.RuleFired.With(r.Name).Set(float64(r.Fired))
		o.RuleAllowed.With(r.Name).Set(float64(r.Allowed))
		o.RuleDenied.With(r.Name).Set(float64(r.Denied))
		o.RuleEvalSeconds.With(r.Name).Set(float64(r.EvalNanos) / 1e9)
	}
	c := e.store.Count()
	o.Users.Set(float64(c.Users))
	o.Roles.Set(float64(c.Roles))
	o.Sessions.Set(float64(c.Sessions))
	o.SnapshotEpoch.Set(float64(e.store.Epoch()))
	if e.fp != nil {
		fs := e.fp.Stats()
		o.FastPathHits.Set(float64(fs.Hits))
		o.FastPathMisses.Set(float64(fs.Misses))
		o.FastPathBypass.Set(float64(fs.Bypass))
		o.FastPathInvalidations.Set(float64(fs.Invalidations))
	}
}

// Env returns the environmental context store.
func (e *Engine) Env() *Env { return e.env }

// Clock returns the engine clock.
func (e *Engine) Clock() clock.Clock { return e.clk }

// Detector returns the event detector.
func (e *Engine) Detector() *event.Detector { return e.det }

// Pool returns the OWTE rule pool.
func (e *Engine) Pool() *core.Pool { return e.pool }

// Store returns the RBAC store.
func (e *Engine) Store() *rbac.Store { return e.store }

// Monitor returns the external monitoring module.
func (e *Engine) Monitor() *ExternalMonitor { return e.monitor }

// Decide raises an enforcement event carrying a fresh Decision and
// blocks until the rule cascade settles, returning the verdict. The
// caller's params are not mutated. The occurrence is stamped with a
// ScopeKey derived from the request — the session it concerns, else the
// user — so a sharded detector can run independent scopes in parallel.
//
// With the fast path enabled, a repeat ALLOW verdict for a cacheable
// request is served from the epoch-tagged cache, skipping the cascade
// entirely. Traced requests always cascade: a cached verdict has no
// steps to record. Which requests are traced is the observer's call:
// every one when a trace ring is configured without a sampler, the
// sampled fraction otherwise — so a sampled production engine keeps the
// fast path live for the untraced majority.
func (e *Engine) Decide(eventName string, params event.Params) (*Decision, error) {
	// Observability: the engine clock drives both the latency histogram
	// and the trace timestamps, so simulated time in tests and benches
	// stays consistent across every observable. With a nil observer both
	// branches collapse to the pre-observability path.
	o := e.obs
	var t0 time.Time
	traced := false
	if o != nil {
		t0 = e.clk.Now()
		if o.Traces != nil {
			traced = o.SampleTrace(t0)
		}
	}
	if fp := e.fp; fp != nil && !traced {
		user, session, operation, object, ok := fpRequest(params)
		if ok && e.cacheable(eventName) {
			return e.decideCached(o, t0, eventName, user, session, operation, object, params)
		}
		fp.bypass.Add(1)
	}
	return e.cascade(o, t0, eventName, params, nil, nil, 0, 0, traced, obs.TraceID{})
}

// DecideCheck is Decide for the canonical four-field enforcement tuple
// (user, session, operation, object). Callers on the CheckAccess hot
// path pass the fields as plain strings, so a cache hit never builds
// the Params map — the map and the four interface boxes it costs are
// only paid when the cascade actually runs. Behaviour is otherwise
// identical to Decide with those four params.
func (e *Engine) DecideCheck(eventName, user, session, operation, object string) (*Decision, error) {
	o := e.obs
	var t0 time.Time
	traced := false
	if o != nil {
		t0 = e.clk.Now()
		if o.Traces != nil {
			traced = o.SampleTrace(t0)
		}
	}
	if fp := e.fp; fp != nil && !traced {
		if e.cacheable(eventName) {
			return e.decideCached(o, t0, eventName, user, session, operation, object, nil)
		}
		fp.bypass.Add(1)
	}
	return e.cascade(o, t0, eventName, checkParams(user, session, operation, object), nil, nil, 0, 0, traced, obs.TraceID{})
}

// DecideCheckTraced is DecideCheck with a caller-supplied trace
// identity: the request always runs the full cascade (a cached verdict
// has no steps to record) and, when a trace ring is configured, its
// trace is retained under tid so /v1/traces/{id} resolves the id the
// client minted at the edge — regardless of the sampler's verdict.
// With tracing off entirely the id is accepted and ignored.
func (e *Engine) DecideCheckTraced(eventName, user, session, operation, object string, tid obs.TraceID) (*Decision, error) {
	o := e.obs
	var t0 time.Time
	traced := false
	if o != nil {
		t0 = e.clk.Now()
		traced = o.Traces != nil
	}
	if fp := e.fp; fp != nil && !traced {
		fp.bypass.Add(1)
	}
	return e.cascade(o, t0, eventName, checkParams(user, session, operation, object), nil, nil, 0, 0, traced, tid)
}

// checkParams builds the Params map for the four-field tuple.
func checkParams(user, session, operation, object string) event.Params {
	return event.Params{
		"user": user, "session": session,
		"operation": operation, "object": object,
	}
}

// decideCached probes the fast-path cache for an already-validated
// cacheable tuple and falls through to the cascade on a miss. The epoch
// pair is captured BEFORE lookup (and, on a miss, before the cascade),
// so any interleaved mutation — which publishes its snapshot and then
// bumps the epoch or session generation — makes the hit invalid or the
// stored entry stale. params may be nil (the DecideCheck entry); the
// map is then only built if the cascade runs.
func (e *Engine) decideCached(o *obs.Observer, t0 time.Time, eventName, user, session, operation, object string, params event.Params) (*Decision, error) {
	fp := e.fp
	buf := fpKeyPool.Get().(*[]byte)
	key, fits := appendFPKey((*buf)[:0], eventName, user, session, operation, object)
	if !fits {
		fpKeyPool.Put(buf)
		fp.bypass.Add(1)
		if params == nil {
			params = checkParams(user, session, operation, object)
		}
		return e.cascade(o, t0, eventName, params, nil, nil, 0, 0, false, obs.TraceID{})
	}
	epoch := fp.epoch.Load()
	sgen := fp.sgen(session)
	if dec, hit := fp.lookup(key, epoch, sgen); hit {
		*buf = key[:0]
		fpKeyPool.Put(buf)
		fp.hits.Add(1)
		if o != nil {
			now := e.clk.Now()
			elapsed := now.Sub(t0)
			// On a hit the whole decision IS the probe: encode + lookup.
			o.StageFastPath.Observe(elapsed.Seconds())
			o.Decisions.With(eventName, "allow").Inc()
			o.DecisionLatency.With(eventName).Observe(elapsed.Seconds())
			if sl := o.Slow; sl != nil && sl.Exceeds(elapsed) {
				o.SlowDecisions.Inc()
				sl.Record(obs.SlowRecord{
					At: t0, Event: eventName, Scope: scopeOfCheck(user, session),
					Seconds: elapsed.Seconds(), Allowed: true,
				})
			}
		}
		return dec, nil
	}
	fp.misses.Add(1)
	if o != nil {
		o.StageFastPath.Observe(e.clk.Now().Sub(t0).Seconds())
	}
	if params == nil {
		params = checkParams(user, session, operation, object)
	}
	return e.cascade(o, t0, eventName, params, buf, key, epoch, sgen, false, obs.TraceID{})
}

// cascade runs the full rule cascade for one enforcement event. fpBuf
// is non-nil only on a fast-path miss: the pooled key buffer is held
// through the cascade so an ALLOW verdict can be stored under the
// pre-captured epoch pair without re-encoding the tuple. traced asks
// for a cascade trace (already sampled or forced by the caller); tid is
// the client-supplied trace identity, zero for engine-sampled traces.
func (e *Engine) cascade(o *obs.Observer, t0 time.Time, eventName string, params event.Params, fpBuf *[]byte, fpKey []byte, fpEpoch, fpSgen uint64, traced bool, tid obs.TraceID) (*Decision, error) {
	fp := e.fp
	dec := &Decision{}
	dec.votes = dec.vbuf[:0]
	p := make(event.Params, len(params)+1)
	for k, v := range params {
		p[k] = v
	}
	p[DecisionKey] = dec
	scope := scopeOf(p)

	var tr *obs.Trace
	if traced && o != nil && o.Traces != nil {
		tr = o.Traces.StartID(tid, eventName, scope, e.clk.Now())
		dec.trace = tr // no concurrent access before the raise below
	}
	// Stage attribution: the raise-to-settle window is the cascade
	// stage — rule matching, condition evaluation and actions across
	// every lane the request touches (queue time is attributed
	// separately, to lane_wait, by the drain instrument).
	var tRaise time.Time
	if o != nil {
		tRaise = e.clk.Now()
	}
	// p was built here and is never touched again: hand ownership to the
	// detector so it skips its defensive clone.
	if err := e.det.RaiseSyncTracedOwned(eventName, p, scope, tr); err != nil {
		if fpBuf != nil {
			*fpBuf = fpKey[:0]
			fpKeyPool.Put(fpBuf)
		}
		return nil, err
	}
	allowed, reason := dec.Verdict()
	if fpBuf != nil {
		if allowed {
			fp.store(fpKey, dec, fpEpoch, fpSgen)
		}
		*fpBuf = fpKey[:0]
		fpKeyPool.Put(fpBuf)
	}
	if o != nil {
		now := e.clk.Now()
		o.StageCascade.Observe(now.Sub(tRaise).Seconds())
		if tr != nil {
			o.Traces.Finish(tr, now)
			o.TracesTotal.Inc()
		}
		verdict := "deny"
		if allowed {
			verdict = "allow"
		}
		o.Decisions.With(eventName, verdict).Inc()
		elapsed := now.Sub(t0)
		o.DecisionLatency.With(eventName).Observe(elapsed.Seconds())
		if sl := o.Slow; sl != nil && sl.Exceeds(elapsed) {
			o.SlowDecisions.Inc()
			rec := obs.SlowRecord{
				At: t0, Event: eventName, Scope: scope,
				Seconds: elapsed.Seconds(), Allowed: allowed, Reason: reason,
			}
			if tr != nil {
				// Slow decisions force full trace retention: the snapshot
				// embedded here outlives any trace-ring eviction.
				td := tr.Snapshot()
				rec.Trace = &td
				rec.TraceID = td.TraceID
				rec.TraceSeq = td.ID
			}
			sl.Record(rec)
		}
	}
	return dec, nil
}

// scopeOfCheck is scopeOf for the four-field tuple entry points: the
// session when present, else the user.
func scopeOfCheck(user, session string) string {
	if session != "" {
		return session
	}
	return user
}

// scopeOf derives the sharding key of a request from its parameters:
// the session id when present, else the user id, else "" (unscoped).
func scopeOf(p event.Params) string {
	if s, ok := p["session"].(string); ok && s != "" {
		return s
	}
	if u, ok := p["user"].(string); ok && u != "" {
		return u
	}
	return ""
}

// Quiesce blocks until every detector lane is idle — all in-flight
// occurrences, cascades and deferred work processed. Used by graceful
// shutdown and by tests that assert on cross-lane state.
func (e *Engine) Quiesce() { e.det.Quiesce() }

// LaneStats snapshots the detector's per-lane counters.
func (e *Engine) LaneStats() []event.LaneStat { return e.det.LaneStats() }

// Notify raises a fire-and-forget event (no decision expected), e.g. a
// state-change notification consumed by temporal or security rules. The
// occurrence is stamped with the same request-derived scope key Decide
// uses, so notifications about a session or user shard onto that
// scope's lane instead of serializing through the global lane.
func (e *Engine) Notify(eventName string, params event.Params) error {
	return e.det.RaiseScoped(eventName, params, scopeOf(params))
}

// Summary describes the engine's contents for tools.
func (e *Engine) Summary() string {
	st := e.det.Stats()
	c := e.store.Count()
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d rules=%d users=%d roles=%d sessions=%d",
		st.Events, e.pool.Len(), c.Users, c.Roles, c.Sessions)
	return b.String()
}
