package sentinel

import (
	"sync"
	"time"

	"activerbac/internal/event"
	"activerbac/internal/obs"
)

// CheckTuple is one enforcement request of a batch: the canonical
// four-field tuple DecideCheck takes as separate arguments.
type CheckTuple struct {
	User      string
	Session   string
	Operation string
	Object    string
}

// Verdict is one settled batch decision: the aggregate allow/deny and,
// on a denial, the first deny reason (the same pair Decision.Verdict
// reports).
type Verdict struct {
	Allowed bool
	Reason  string
}

// fpKeyNone marks a tuple with no stored cache key: a cache hit, an
// unencodable tuple, or a batch whose event is not cacheable at all.
const fpKeyNone = -1

// batchState is the pooled per-batch scratch: decision slots, the
// shared fast-path key buffer with per-tuple offsets, captured session
// generations, and the scope-group index. One Get/Put per batch
// amortizes every allocation the per-tuple path would pay N times.
type batchState struct {
	decs   []*Decision
	keys   []byte  // all fast-path keys of the batch, back to back
	keyOff []int32 // per tuple: offset into keys, or fpKeyNone
	keyEnd []int32 // per tuple: end of its key in keys
	sgens  []uint64

	scopes  []string         // distinct scope keys in first-appearance order
	groups  [][]event.Params // parallel to scopes: each scope's params, in input order
	gidx    [][]int32        // carrier mode: each scope's tuple indices, in input order
	groupOf map[string]int

	// slab backs the batch's Decisions when the engine shape proves no
	// decision outlives the verdict merge (cache-safe rules, no outcome
	// listeners, no fast path storing allows): one allocation reused
	// across batches instead of one Decision per tuple.
	slab []Decision

	// box interns string-to-any boxing for the batch's params maps:
	// sessions, users, operations and objects repeat heavily within a
	// batch, and boxing a string into an interface allocates every
	// time — four allocations per tuple the per-tuple path cannot
	// avoid but a batch can share.
	box map[string]any
}

var batchPool = sync.Pool{New: func() any {
	return &batchState{groupOf: make(map[string]int), box: make(map[string]any)}
}}

// boxed returns s as an interface value, allocating the box at most
// once per distinct string per batch.
func (bs *batchState) boxed(s string) any {
	if v, ok := bs.box[s]; ok {
		return v
	}
	v := any(s)
	bs.box[s] = v
	return v
}

// grow sizes the per-tuple arrays to n and returns the zeroed decision
// slots.
func (bs *batchState) grow(n int) []*Decision {
	if cap(bs.decs) < n {
		bs.decs = make([]*Decision, n)
		bs.keyOff = make([]int32, n)
		bs.keyEnd = make([]int32, n)
		bs.sgens = make([]uint64, n)
	} else {
		bs.decs = bs.decs[:n]
		for i := range bs.decs {
			bs.decs[i] = nil
		}
		bs.keyOff = bs.keyOff[:n]
		bs.keyEnd = bs.keyEnd[:n]
		bs.sgens = bs.sgens[:n]
	}
	return bs.decs
}

// release drops every reference the batch held (decisions, group params)
// while keeping the backing arrays for the next batch, then returns the
// state to the pool.
func (bs *batchState) release() {
	for i := range bs.decs {
		bs.decs[i] = nil
	}
	bs.decs = bs.decs[:0]
	bs.keys = bs.keys[:0]
	bs.scopes = bs.scopes[:0]
	clear(bs.box)
	for i := range bs.groups {
		g := bs.groups[i]
		for j := range g {
			g[j] = nil
		}
		bs.groups[i] = g[:0]
	}
	for i := range bs.gidx {
		bs.gidx[i] = bs.gidx[i][:0]
	}
	clear(bs.groupOf)
	batchPool.Put(bs)
}

// decSlab returns n reusable Decision slots. Callers must only hand the
// slots to cascades whose rules provably drop them at delivery end.
func (bs *batchState) decSlab(n int) []Decision {
	if cap(bs.slab) < n {
		bs.slab = make([]Decision, n)
	}
	return bs.slab[:n]
}

// DecideCheckBatch decides a whole batch of four-field enforcement
// tuples as one unit, returning verdicts in input order (verdicts[i]
// answers tuples[i]); the passed slice is reused when its capacity
// allows. Semantically each tuple is decided exactly as DecideCheck
// would — duplicates cascade independently, denials never cache — but
// the batch amortizes everything around the per-tuple rule work:
//
//   - fast-path eligibility and the cache epoch are captured ONCE per
//     batch, and the whole batch is probed up front against that
//     capture, with every key encoded into one pooled buffer;
//   - cache misses are grouped by scope key (session, else user) and
//     each group crosses its lane boundary as a single work item, in
//     first-appearance order — groups sharing a lane (notably the
//     global lane) serialize in that order, preserving the total order
//     global-scope rules, SoD oracles and temporal ticks rely on,
//     while groups on distinct lanes execute concurrently (the same
//     interleaving concurrent per-tuple callers produce);
//   - one cascade tracks every group, so a single Wait settles the
//     batch, and ALLOW verdicts are then stored under the pre-captured
//     epoch pair — the born-stale protocol applied per batch: any
//     mutation interleaving with the batch lands after the capture and
//     the affected entries are already stale when stored.
//
// Tracing interacts with batching per the observer's sampling policy
// (a batch work item records no per-decision cascade steps, so a traced
// tuple must leave the batch floor):
//
//   - trace ring without a sampler (trace-everything): the batch falls
//     back to per-tuple DecideCheck calls, each fully traced;
//   - trace ring with a sampler: a sampled batch traces exactly one
//     tuple through the full per-tuple cascade while the remainder
//     stays batch-native on the carrier fast path; an unsampled batch
//     is entirely batch-native.
//
// See DESIGN.md §5.6 and §5.7.
func (e *Engine) DecideCheckBatch(eventName string, tuples []CheckTuple, verdicts []Verdict) ([]Verdict, error) {
	verdicts = verdicts[:0]
	n := len(tuples)
	if n == 0 {
		return verdicts, nil
	}
	o := e.obs
	var t0 time.Time
	if o != nil {
		t0 = e.clk.Now()
	}
	if o != nil && o.Traces != nil {
		if o.Sampler == nil {
			for i := range tuples {
				t := &tuples[i]
				dec, err := e.DecideCheck(eventName, t.User, t.Session, t.Operation, t.Object)
				if err != nil {
					return verdicts, err
				}
				allowed, reason := dec.Verdict()
				verdicts = append(verdicts, Verdict{Allowed: allowed, Reason: reason})
			}
			return verdicts, nil
		}
		if o.Sampler.Sample(t0) {
			return e.decideBatchSplit(o, t0, eventName, tuples, verdicts, obs.TraceID{})
		}
	}
	return e.decideBatchCore(o, t0, eventName, tuples, verdicts, n)
}

// DecideCheckBatchTraced is DecideCheckBatch with a caller-supplied
// trace identity: the batch's first tuple runs the full per-tuple
// cascade traced under tid (resolvable at /v1/traces/{id}), the rest
// stays batch-native — the same one-tuple shape sampled batches take.
func (e *Engine) DecideCheckBatchTraced(eventName string, tuples []CheckTuple, verdicts []Verdict, tid obs.TraceID) ([]Verdict, error) {
	verdicts = verdicts[:0]
	n := len(tuples)
	if n == 0 {
		return verdicts, nil
	}
	o := e.obs
	var t0 time.Time
	if o != nil {
		t0 = e.clk.Now()
	}
	return e.decideBatchSplit(o, t0, eventName, tuples, verdicts, tid)
}

// decideBatchSplit decides tuples[0] through the traced per-tuple
// cascade and the remainder batch-native: the shape both sampled and
// client-traced batches take. The one-tuple detour shows up in the
// per-tuple decision metrics instead of the batch row; the batch-size
// distribution still records the full submitted size.
func (e *Engine) decideBatchSplit(o *obs.Observer, t0 time.Time, eventName string, tuples []CheckTuple, verdicts []Verdict, tid obs.TraceID) ([]Verdict, error) {
	t := &tuples[0]
	dec, err := e.DecideCheckTraced(eventName, t.User, t.Session, t.Operation, t.Object, tid)
	if err != nil {
		return verdicts, err
	}
	allowed, reason := dec.Verdict()
	verdicts = append(verdicts, Verdict{Allowed: allowed, Reason: reason})
	if len(tuples) == 1 {
		if o != nil {
			o.BatchSize.Observe(1)
		}
		return verdicts, nil
	}
	return e.decideBatchCore(o, t0, eventName, tuples[1:], verdicts, len(tuples))
}

// decideBatchCore is the batch-native evaluation floor shared by every
// entry point above: one snapshot capture, one up-front cache probe,
// scope-group lane submission, one settle. batchN is the size of the
// originally submitted batch (tuples may be a remainder after a traced
// split), recorded once into the batch-size distribution.
func (e *Engine) decideBatchCore(o *obs.Observer, t0 time.Time, eventName string, tuples []CheckTuple, verdicts []Verdict, batchN int) ([]Verdict, error) {
	n := len(tuples)

	bs := batchPool.Get().(*batchState)
	defer bs.release()
	decs := bs.grow(n)

	// The one-snapshot-per-batch capture (enforced by the batchsnap vet
	// pass): eligibility and epoch are read here and nowhere inside the
	// per-tuple loops below. Every verdict of the batch is as of this
	// instant. Session generations are per-session state, not part of
	// the snapshot; they are captured per tuple, still before any
	// cascade of the batch runs.
	fp := e.fp
	// shape is the verdict-cache-safety shape — sole scope-marked
	// subscriber firing only cache-safe rules, no outcome listeners —
	// captured once per batch. With a fast path it gates the cache
	// probe; independently it licenses the carrier cascade mode below,
	// because under this shape nothing retains an occurrence or its
	// params map beyond the synchronous delivery.
	shape := e.cacheable(eventName)
	cacheable := fp != nil && shape
	var epoch uint64
	if cacheable {
		epoch = fp.epoch.Load()
	}

	var hits, cascades int
	if cacheable {
		var encMisses int
		for i := range tuples {
			t := &tuples[i]
			start := len(bs.keys)
			keys, fits := appendFPKey(bs.keys, eventName, t.User, t.Session, t.Operation, t.Object)
			if !fits {
				bs.keyOff[i] = fpKeyNone
				cascades++
				fp.bypass.Add(1)
				continue
			}
			sgen := fp.sgen(t.Session)
			if dec, hit := fp.lookup(keys[start:], epoch, sgen); hit {
				decs[i] = dec
				bs.keyOff[i] = fpKeyNone
				hits++
				continue
			}
			bs.keys = keys
			bs.keyOff[i] = int32(start)
			bs.keyEnd[i] = int32(len(keys))
			bs.sgens[i] = sgen
			cascades++
			encMisses++
		}
		if hits > 0 {
			fp.hits.Add(uint64(hits))
		}
		if encMisses > 0 {
			fp.misses.Add(uint64(encMisses))
		}
	} else {
		if fp != nil {
			fp.bypass.Add(uint64(n))
		}
		for i := range bs.keyOff {
			bs.keyOff[i] = fpKeyNone
		}
		cascades = n
	}

	if cascades > 0 {
		batch, err := e.det.NewBatch(eventName)
		if err != nil {
			return verdicts, err
		}
		// Under the no-retention shape, decisions of a fast-path-less
		// engine die at the verdict merge below, so the whole batch can
		// vote into one reused slab; a fast path stores ALLOW decisions
		// past the batch, so they must be individually allocated.
		var slab []Decision
		if shape && fp == nil {
			slab = bs.decSlab(n)
		}
		for i := range tuples {
			if decs[i] != nil {
				continue // served from the cache
			}
			var dec *Decision
			if slab != nil {
				dec = &slab[i]
				*dec = Decision{}
			} else {
				dec = &Decision{}
			}
			dec.votes = dec.vbuf[:0]
			decs[i] = dec
			t := &tuples[i]
			scope := t.Session
			if scope == "" {
				scope = t.User
			}
			gi, ok := bs.groupOf[scope]
			if !ok {
				gi = len(bs.scopes)
				bs.groupOf[scope] = gi
				bs.scopes = append(bs.scopes, scope)
				if gi >= len(bs.groups) {
					bs.groups = append(bs.groups, nil)
					bs.gidx = append(bs.gidx, nil)
				}
			}
			if shape {
				bs.gidx[gi] = append(bs.gidx[gi], int32(i))
				continue
			}
			// One owned params map per decision, exactly as the
			// per-tuple cascade builds; ownership transfers to the
			// detector with the group.
			bs.groups[gi] = append(bs.groups[gi], event.Params{
				"user": bs.boxed(t.User), "session": bs.boxed(t.Session),
				"operation": bs.boxed(t.Operation), "object": bs.boxed(t.Object),
				DecisionKey: dec,
			})
		}
		if shape {
			// Carrier mode: each group delivers through one reused
			// occurrence and params map, rewritten per tuple — zero
			// per-tuple allocation on the cascade floor. The event layer
			// re-verifies the shape per delivery and degrades to fresh
			// storage if a mid-batch policy change breaks it.
			for gi, scope := range bs.scopes {
				idx := bs.gidx[gi]
				batch.RaiseGroupFn(scope, len(idx), func(k int, p event.Params) {
					i := idx[k]
					t := &tuples[i]
					p["user"] = bs.boxed(t.User)
					p["session"] = bs.boxed(t.Session)
					p["operation"] = bs.boxed(t.Operation)
					p["object"] = bs.boxed(t.Object)
					p[DecisionKey] = decs[i]
				})
			}
		} else {
			for gi, scope := range bs.scopes {
				batch.RaiseGroupOwned(bs.groups[gi], scope)
			}
		}
		batch.Wait()
	}

	var allows, denies int
	for i := range decs {
		allowed, reason := decs[i].Verdict()
		if allowed {
			allows++
			if off := bs.keyOff[i]; off >= 0 {
				fp.store(bs.keys[off:bs.keyEnd[i]], decs[i], epoch, bs.sgens[i])
			}
		} else {
			denies++
		}
		verdicts = append(verdicts, Verdict{Allowed: allowed, Reason: reason})
	}
	if o != nil {
		if allows > 0 {
			o.Decisions.With(eventName, "allow").Add(float64(allows))
		}
		if denies > 0 {
			o.Decisions.With(eventName, "deny").Add(float64(denies))
		}
		// The batch is one decision round trip: its latency is observed
		// once, not once per tuple.
		o.DecisionLatency.With(eventName).Observe(e.clk.Now().Sub(t0).Seconds())
		o.BatchSize.Observe(float64(batchN))
		o.BatchGroups.Add(float64(len(bs.scopes)))
		o.BatchFastPathHits.Add(float64(hits))
	}
	return verdicts, nil
}
