package policy

import (
	"strings"
	"testing"
	"time"
)

func TestParseXYZ(t *testing.T) {
	s, err := ParseFile("testdata/xyz.acp")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "enterprise-xyz" {
		t.Fatalf("Name = %q", s.Name)
	}
	if len(s.Roles) != 5 {
		t.Fatalf("Roles = %v", s.Roles)
	}
	if len(s.Hierarchy) != 4 {
		t.Fatalf("Hierarchy = %v", s.Hierarchy)
	}
	if s.Hierarchy[0] != (Edge{Senior: "PM", Junior: "PC"}) {
		t.Fatalf("first edge = %v", s.Hierarchy[0])
	}
	if len(s.SSD) != 1 || s.SSD[0].Name != "purchase-approval" || s.SSD[0].N != 2 {
		t.Fatalf("SSD = %v", s.SSD)
	}
	if len(s.Users) != 3 || s.Users[0].Name != "bob" || s.Users[0].Roles[0] != "PC" {
		t.Fatalf("Users = %v", s.Users)
	}
	if len(s.Permissions) != 3 {
		t.Fatalf("Permissions = %v", s.Permissions)
	}
	if len(s.Cardinalities) != 1 || s.Cardinalities[0] != (Cardinality{Role: "PM", N: 1}) {
		t.Fatalf("Cardinalities = %v", s.Cardinalities)
	}
	if issues := Check(s); len(issues) != 0 {
		t.Fatalf("Check(xyz) = %v", issues)
	}
}

func TestParseAllStatements(t *testing.T) {
	src := `
policy "kitchen-sink"
role A
role B
role C
hierarchy A > B
dsd act 2: B, C
user jane: A
maxroles jane 5
shift A 09:00:00-17:00:00
duration jane A 2h
duration * B 30m
timesod ward 10:00:00-17:00:00: A, B
couple A -> B
require C needs-active A
prereq C after B
purpose treatment
purpose diagnosis < treatment
bind A read chart.dat for diagnosis
consent-required chart.dat
threshold intrusions 5 in 10m: lock-user
context A requires location = ward
`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DSD) != 1 || len(s.MaxRoles) != 1 || len(s.Shifts) != 1 {
		t.Fatalf("spec %+v", s)
	}
	if s.Durations[0] != (Duration{User: "jane", Role: "A", D: 2 * time.Hour}) {
		t.Fatalf("Durations = %v", s.Durations)
	}
	if s.Durations[1].User != "*" {
		t.Fatalf("wildcard user lost: %v", s.Durations[1])
	}
	if len(s.TimeSoDs) != 1 || len(s.TimeSoDs[0].Roles) != 2 {
		t.Fatalf("TimeSoDs = %v", s.TimeSoDs)
	}
	if s.Couples[0] != (Couple{Lead: "A", Follow: "B"}) {
		t.Fatalf("Couples = %v", s.Couples)
	}
	if s.Requires[0] != (Require{Dependent: "C", Required: "A"}) {
		t.Fatalf("Requires = %v", s.Requires)
	}
	if s.Prereqs[0] != (Prereq{Role: "C", Prereq: "B"}) {
		t.Fatalf("Prereqs = %v", s.Prereqs)
	}
	if len(s.Purposes) != 2 || s.Purposes[1].Parent != "treatment" {
		t.Fatalf("Purposes = %v", s.Purposes)
	}
	if s.Bindings[0].Purpose != "diagnosis" {
		t.Fatalf("Bindings = %v", s.Bindings)
	}
	if len(s.ConsentRequired) != 1 {
		t.Fatalf("ConsentRequired = %v", s.ConsentRequired)
	}
	th := s.Thresholds[0]
	if th.Name != "intrusions" || th.Count != 5 || th.Window != 10*time.Minute || th.Action != "lock-user" {
		t.Fatalf("Thresholds = %+v", th)
	}
	if len(s.Contexts) != 1 || s.Contexts[0] != (Context{Role: "A", Key: "location", Value: "ward"}) {
		t.Fatalf("Contexts = %+v", s.Contexts)
	}
	if issues := Check(s); HasErrors(issues) {
		t.Fatalf("Check = %v", issues)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	s, err := ParseString("# header\n\nrole A # trailing\n   \n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Roles) != 1 || s.Roles[0] != "A" {
		t.Fatalf("Roles = %v", s.Roles)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`policy ""`,
		"role",
		"role A B",
		"hierarchy A",
		"hierarchy A >",
		"ssd x 2 PC, AC",      // missing colon
		"ssd x two: PC, AC",   // bad int
		"ssd x 2: PC",         // one role
		"user : A",            // empty name
		"user a b: A",         // name with space
		"permission PC write", // missing colon
		"permission PC: write",
		"cardinality PM",
		"cardinality PM zero",
		"cardinality PM 0",
		"maxroles jane",
		"shift A",
		"shift A 09:00:00",
		"shift A 25:00:00-17:00:00",
		"duration jane A",
		"duration jane A -2h",
		"duration jane A soon",
		"timesod w 10:00:00-17:00:00: A",
		"timesod w bogus: A, B",
		"couple A",
		"couple A ->",
		"require A needs B",
		"prereq A before B",
		"purpose",
		"purpose a <",
		"purpose a < b c",
		"bind A read x.dat diagnosis",
		"consent-required",
		"threshold t 5 in 10m", // missing action
		"threshold t five in 10m: alert",
		"threshold t 5 at 10m: alert",
		"threshold t 5 in never: alert",
		"context A needs location = ward",  // wrong keyword
		"context A requires location ward", // missing '='
		"context A requires location",
		"frobnicate all the things",
	}
	for _, src := range bad {
		if s, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) accepted: %+v", src, s)
		} else if !strings.Contains(err.Error(), "<inline>:1") {
			t.Errorf("ParseString(%q) error lacks position: %v", src, err)
		}
	}
}

func TestParseHierarchyChain(t *testing.T) {
	s, err := ParseString("role A\nrole B\nrole C\nhierarchy A > B > C")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Hierarchy) != 2 {
		t.Fatalf("Hierarchy = %v", s.Hierarchy)
	}
	if s.Hierarchy[1] != (Edge{Senior: "B", Junior: "C"}) {
		t.Fatalf("second edge = %v", s.Hierarchy[1])
	}
}

func TestUserWithoutRoles(t *testing.T) {
	s, err := ParseString("user bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Users) != 1 || s.Users[0].Name != "bob" || len(s.Users[0].Roles) != 0 {
		t.Fatalf("Users = %v", s.Users)
	}
}
