package policy

import (
	"reflect"
	"testing"
)

const kitchenSink = `
policy "kitchen-sink"
role A
role B
role C
hierarchy A > B
ssd s1 2: B, C
dsd d1 2: B, C
permission A: read doc.txt
user jane: A
user joe
cardinality A 2
maxroles jane 5
shift A 09:00:00-17:00:00
duration jane A 2h0m0s
duration * B 30m0s
timesod ward 10:00:00-17:00:00: A, B
couple A -> B
require C needs-active A
prereq C after B
purpose treatment
purpose diagnosis < treatment
bind A read chart.dat for diagnosis
consent-required chart.dat
threshold intrusions 5 in 10m0s: lock-user
context A requires location = ward
`

func TestFormatRoundTrip(t *testing.T) {
	orig, err := ParseString(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse of Format output failed: %v\noutput:\n%s", err, text)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip changed the spec:\norig: %#v\nback: %#v\ntext:\n%s", orig, back, text)
	}
}

func TestFormatIdempotent(t *testing.T) {
	orig, err := ParseString(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(orig)
	spec2, err := ParseString(once)
	if err != nil {
		t.Fatal(err)
	}
	twice := Format(spec2)
	if once != twice {
		t.Fatalf("Format not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

func TestFormatXYZStable(t *testing.T) {
	spec, err := ParseFile("testdata/xyz.acp")
	if err != nil {
		t.Fatal(err)
	}
	text := Format(spec)
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatal("XYZ round trip changed the spec")
	}
	if issues := Check(back); len(issues) != 0 {
		t.Fatalf("formatted XYZ inconsistent: %v", issues)
	}
}

func TestFormatEmptySpec(t *testing.T) {
	s := &Spec{}
	if got := Format(s); got != "" {
		t.Fatalf("Format(empty) = %q", got)
	}
}
