package policy

import (
	"fmt"
	"sort"
)

// The consistency checker — the paper's stated future work ("we are in
// the process of developing advanced consistency checking mechanisms").
// Check validates a parsed spec before graph instantiation and rule
// generation, reporting every problem found rather than stopping at the
// first.

// Severity classifies an issue.
type Severity int

// Issue severities.
const (
	// Warning marks suspicious but generatable policies.
	Warning Severity = iota
	// Error marks policies that must not be instantiated.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Issue is one consistency finding.
type Issue struct {
	Severity Severity
	Msg      string
}

// String renders "severity: message".
func (i Issue) String() string { return i.Severity.String() + ": " + i.Msg }

// HasErrors reports whether any issue is an Error.
func HasErrors(issues []Issue) bool {
	for _, i := range issues {
		if i.Severity == Error {
			return true
		}
	}
	return false
}

// Check validates the spec and returns all findings, errors first, each
// group in deterministic order.
func Check(s *Spec) []Issue {
	var issues []Issue
	errf := func(format string, args ...any) {
		issues = append(issues, Issue{Severity: Error, Msg: fmt.Sprintf(format, args...)})
	}
	warnf := func(format string, args ...any) {
		issues = append(issues, Issue{Severity: Warning, Msg: fmt.Sprintf(format, args...)})
	}

	roles := make(map[string]bool, len(s.Roles))
	for _, r := range s.Roles {
		if roles[r] {
			errf("role %q declared more than once", r)
		}
		roles[r] = true
	}
	needRole := func(r, where string) {
		if !roles[r] {
			errf("%s references undeclared role %q", where, r)
		}
	}

	// Hierarchy: known roles, no self-edges, no duplicates, acyclic.
	edgeSeen := make(map[Edge]bool)
	for _, e := range s.Hierarchy {
		needRole(e.Senior, "hierarchy")
		needRole(e.Junior, "hierarchy")
		if e.Senior == e.Junior {
			errf("hierarchy self-edge on %q", e.Senior)
			continue
		}
		if edgeSeen[e] {
			warnf("duplicate hierarchy edge %s > %s", e.Senior, e.Junior)
		}
		edgeSeen[e] = true
	}
	juniors := s.Juniors()
	if cyc := findCycle(s.Roles, juniors); len(cyc) > 0 {
		errf("hierarchy cycle: %v", cyc)
	}

	// juniorsClosure for SoD-vs-hierarchy conflicts.
	closure := func(r string) map[string]bool { return JuniorClosure(juniors, r) }

	// SoD sets.
	checkSoD := func(sets []SoD, kind string) {
		names := make(map[string]bool)
		for _, set := range sets {
			where := fmt.Sprintf("%s set %q", kind, set.Name)
			if set.Name == "" {
				errf("%s set with empty name", kind)
			}
			if names[set.Name] {
				errf("%s set %q declared more than once", kind, set.Name)
			}
			names[set.Name] = true
			if set.N < 2 || set.N > len(set.Roles) {
				errf("%s: cardinality %d outside [2,%d]", where, set.N, len(set.Roles))
			}
			seen := make(map[string]bool)
			for _, r := range set.Roles {
				needRole(r, where)
				if seen[r] {
					errf("%s repeats role %q", where, r)
				}
				seen[r] = true
			}
			// A role and one of its (transitive) juniors in the same
			// set make the senior unassignable: every assignment to it
			// authorizes both conflicting members.
			for _, r := range set.Roles {
				if !roles[r] {
					continue
				}
				cl := closure(r)
				hits := 0
				for _, other := range set.Roles {
					if cl[other] {
						hits++
					}
				}
				if hits >= set.N {
					errf("%s conflicts with the hierarchy: assigning %q alone authorizes %d of its members", where, r, hits)
				}
			}
		}
	}
	checkSoD(s.SSD, "ssd")
	checkSoD(s.DSD, "dsd")

	// Users: known roles, no duplicate users, assignments respect SSD
	// (over the junior closure).
	userSeen := make(map[string]bool)
	for _, u := range s.Users {
		if userSeen[u.Name] {
			errf("user %q declared more than once", u.Name)
		}
		userSeen[u.Name] = true
		auth := make(map[string]bool)
		for _, r := range u.Roles {
			needRole(r, "user "+u.Name)
			if roles[r] {
				for j := range closure(r) {
					auth[j] = true
				}
			}
		}
		for _, set := range s.SSD {
			hits := 0
			for _, r := range set.Roles {
				if auth[r] {
					hits++
				}
			}
			if hits >= set.N {
				errf("user %q violates ssd set %q: authorized for %d of %v", u.Name, set.Name, hits, set.Roles)
			}
		}
	}

	for _, p := range s.Permissions {
		needRole(p.Role, "permission")
	}
	for _, c := range s.Cardinalities {
		needRole(c.Role, "cardinality")
	}
	for _, m := range s.MaxRoles {
		if !userSeen[m.User] {
			warnf("maxroles for undeclared user %q", m.User)
		}
	}
	shiftSeen := make(map[string]bool)
	for _, sh := range s.Shifts {
		needRole(sh.Role, "shift")
		if shiftSeen[sh.Role] {
			errf("role %q has more than one shift", sh.Role)
		}
		shiftSeen[sh.Role] = true
	}
	for _, d := range s.Durations {
		needRole(d.Role, "duration")
		if d.User != "*" && !userSeen[d.User] {
			warnf("duration for undeclared user %q", d.User)
		}
	}
	tsNames := make(map[string]bool)
	for _, ts := range s.TimeSoDs {
		where := fmt.Sprintf("timesod %q", ts.Name)
		if tsNames[ts.Name] {
			errf("%s declared more than once", where)
		}
		tsNames[ts.Name] = true
		for _, r := range ts.Roles {
			needRole(r, where)
		}
	}
	coupleSeen := make(map[Couple]bool)
	for _, c := range s.Couples {
		needRole(c.Lead, "couple")
		needRole(c.Follow, "couple")
		if c.Lead == c.Follow {
			errf("couple self-loop on %q", c.Lead)
		}
		if coupleSeen[c] {
			warnf("duplicate couple %s -> %s", c.Lead, c.Follow)
		}
		coupleSeen[c] = true
	}
	depSeen := make(map[string]bool)
	for _, rq := range s.Requires {
		needRole(rq.Dependent, "require")
		needRole(rq.Required, "require")
		if rq.Dependent == rq.Required {
			errf("require self-loop on %q", rq.Dependent)
		}
		if depSeen[rq.Dependent] {
			errf("role %q has more than one require dependency", rq.Dependent)
		}
		depSeen[rq.Dependent] = true
	}
	for _, p := range s.Prereqs {
		needRole(p.Role, "prereq")
		needRole(p.Prereq, "prereq")
		if p.Role == p.Prereq {
			errf("prereq self-loop on %q", p.Role)
		}
	}

	// Purposes: unique, parents declared earlier or anywhere, acyclic by
	// construction if parents must be previously declared — enforce
	// declaration order.
	purposeSeen := make(map[string]bool)
	for _, p := range s.Purposes {
		if purposeSeen[p.Name] {
			errf("purpose %q declared more than once", p.Name)
		}
		if p.Parent != "" && !purposeSeen[p.Parent] {
			errf("purpose %q references parent %q before its declaration", p.Name, p.Parent)
		}
		purposeSeen[p.Name] = true
	}
	for _, b := range s.Bindings {
		needRole(b.Role, "bind")
		if !purposeSeen[b.Purpose] {
			errf("bind references undeclared purpose %q", b.Purpose)
		}
	}
	ctxSeen := make(map[Context]bool)
	ctxKey := make(map[[2]string]string)
	for _, c := range s.Contexts {
		needRole(c.Role, "context")
		if c.Key == "" || c.Value == "" {
			errf("context for %q has empty key or value", c.Role)
			continue
		}
		if ctxSeen[c] {
			warnf("duplicate context requirement %s/%s for %q", c.Key, c.Value, c.Role)
		}
		ctxSeen[c] = true
		rk := [2]string{c.Role, c.Key}
		if prev, dup := ctxKey[rk]; dup && prev != c.Value {
			errf("role %q requires %s = %s and %s = %s (unsatisfiable)", c.Role, c.Key, prev, c.Key, c.Value)
		}
		ctxKey[rk] = c.Value
	}

	thNames := make(map[string]bool)
	for _, th := range s.Thresholds {
		if thNames[th.Name] {
			errf("threshold %q declared more than once", th.Name)
		}
		thNames[th.Name] = true
		switch th.Action {
		case "alert", "lock-user", "disable-rules":
		default:
			errf("threshold %q: unknown action %q (want alert, lock-user or disable-rules)", th.Name, th.Action)
		}
	}

	rptNames := make(map[string]bool)
	for _, r := range s.Reports {
		if rptNames[r.Name] {
			errf("report %q declared more than once", r.Name)
		}
		rptNames[r.Name] = true
	}

	sort.SliceStable(issues, func(i, j int) bool { return issues[i].Severity > issues[j].Severity })
	return issues
}

// findCycle returns some cycle in the directed graph, or nil.
func findCycle(nodes []string, edges map[string][]string) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(nodes))
	var path []string
	var cycle []string
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		path = append(path, n)
		for _, next := range edges[n] {
			switch color[next] {
			case gray:
				// Extract the cycle from the path.
				for i, p := range path {
					if p == next {
						cycle = append([]string(nil), path[i:]...)
						return true
					}
				}
				cycle = []string{next, n}
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && visit(n) {
			return cycle
		}
	}
	return nil
}
