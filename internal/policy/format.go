package policy

import (
	"fmt"
	"strings"

	"activerbac/internal/clock"
)

// Format renders a spec as canonical .acp source. Parse(Format(s)) is
// equivalent to s (statement for statement, in order), which is what
// lets generated specs flow through every surface that consumes policy
// text (the facade, the compiler, snapshots).
func Format(s *Spec) string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "policy %q\n", s.Name)
	}
	for _, r := range s.Roles {
		fmt.Fprintf(&b, "role %s\n", r)
	}
	for _, e := range s.Hierarchy {
		fmt.Fprintf(&b, "hierarchy %s > %s\n", e.Senior, e.Junior)
	}
	for _, set := range s.SSD {
		fmt.Fprintf(&b, "ssd %s %d: %s\n", set.Name, set.N, strings.Join(set.Roles, ", "))
	}
	for _, set := range s.DSD {
		fmt.Fprintf(&b, "dsd %s %d: %s\n", set.Name, set.N, strings.Join(set.Roles, ", "))
	}
	for _, p := range s.Permissions {
		fmt.Fprintf(&b, "permission %s: %s %s\n", p.Role, p.Operation, p.Object)
	}
	for _, u := range s.Users {
		if len(u.Roles) == 0 {
			fmt.Fprintf(&b, "user %s\n", u.Name)
		} else {
			fmt.Fprintf(&b, "user %s: %s\n", u.Name, strings.Join(u.Roles, ", "))
		}
	}
	for _, c := range s.Cardinalities {
		fmt.Fprintf(&b, "cardinality %s %d\n", c.Role, c.N)
	}
	for _, m := range s.MaxRoles {
		fmt.Fprintf(&b, "maxroles %s %d\n", m.User, m.N)
	}
	for _, sh := range s.Shifts {
		fmt.Fprintf(&b, "shift %s %s-%s\n", sh.Role, timeOfDay(sh.Start), timeOfDay(sh.Stop))
	}
	for _, d := range s.Durations {
		fmt.Fprintf(&b, "duration %s %s %s\n", d.User, d.Role, d.D)
	}
	for _, ts := range s.TimeSoDs {
		fmt.Fprintf(&b, "timesod %s %s-%s: %s\n", ts.Name, timeOfDay(ts.Start), timeOfDay(ts.Stop),
			strings.Join(ts.Roles, ", "))
	}
	for _, c := range s.Couples {
		fmt.Fprintf(&b, "couple %s -> %s\n", c.Lead, c.Follow)
	}
	for _, rq := range s.Requires {
		fmt.Fprintf(&b, "require %s needs-active %s\n", rq.Dependent, rq.Required)
	}
	for _, p := range s.Prereqs {
		fmt.Fprintf(&b, "prereq %s after %s\n", p.Role, p.Prereq)
	}
	for _, p := range s.Purposes {
		if p.Parent == "" {
			fmt.Fprintf(&b, "purpose %s\n", p.Name)
		} else {
			fmt.Fprintf(&b, "purpose %s < %s\n", p.Name, p.Parent)
		}
	}
	for _, bd := range s.Bindings {
		fmt.Fprintf(&b, "bind %s %s %s for %s\n", bd.Role, bd.Operation, bd.Object, bd.Purpose)
	}
	for _, obj := range s.ConsentRequired {
		fmt.Fprintf(&b, "consent-required %s\n", obj)
	}
	for _, th := range s.Thresholds {
		fmt.Fprintf(&b, "threshold %s %d in %s: %s\n", th.Name, th.Count, th.Window, th.Action)
	}
	for _, c := range s.Contexts {
		fmt.Fprintf(&b, "context %s requires %s = %s\n", c.Role, c.Key, c.Value)
	}
	for _, r := range s.Reports {
		fmt.Fprintf(&b, "report %s every %s\n", r.Name, r.Every)
	}
	return b.String()
}

// timeOfDay renders the hh:mm:ss prefix of a pattern, the shape the
// shift/timesod statements accept.
func timeOfDay(p clock.Pattern) string {
	f := func(v int) string {
		if v < 0 {
			return "*"
		}
		return fmt.Sprintf("%02d", v)
	}
	return f(p.Hour) + ":" + f(p.Min) + ":" + f(p.Sec)
}
