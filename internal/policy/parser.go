package policy

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"activerbac/internal/clock"
)

// The .acp policy language — one statement per line, '#' comments:
//
//	policy "enterprise-xyz"
//	role PM
//	hierarchy PM > PC > Clerk
//	ssd purchase-approval 2: PC, AC
//	dsd bank 2: Teller, Auditor
//	user bob: PC, Clerk
//	permission PC: write purchase-order.dat
//	cardinality President 1
//	maxroles jane 5
//	shift DayDoctor 09:00:00-17:00:00
//	duration bob R3 2h            # per user-role; user * = any user
//	timesod ward 10:00:00-17:00:00: Nurse, Doctor
//	couple SysAdmin -> SysAudit
//	require JuniorEmp needs-active Manager
//	prereq Deployer after Developer
//	purpose diagnosis < treatment
//	bind Doctor read patient.dat for treatment
//	consent-required patient.dat
//	threshold intrusions 5 in 10m: lock-user
//
// Parse is strict: unknown statements, wrong arities and malformed
// values are errors with line numbers, so policy typos surface at
// compile time rather than as silently missing rules.

// Parse reads a policy spec from r; name is used in error messages
// (usually the file name).
func Parse(r io.Reader, name string) (*Spec, error) {
	s := &Spec{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(s, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}

// ParseFile reads a policy spec from a file.
func ParseFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, path)
}

// ParseString parses a policy from a string literal (tests, examples).
func ParseString(src string) (*Spec, error) {
	return Parse(strings.NewReader(src), "<inline>")
}

func parseLine(s *Spec, line string) error {
	fields := strings.Fields(line)
	keyword, rest := fields[0], strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	switch keyword {
	case "policy":
		name := strings.Trim(rest, `"`)
		if name == "" {
			return fmt.Errorf("policy: empty name")
		}
		s.Name = name
	case "role":
		if len(fields) != 2 {
			return fmt.Errorf("role: want `role NAME`")
		}
		s.Roles = append(s.Roles, fields[1])
	case "hierarchy":
		parts := splitTrim(rest, ">")
		if len(parts) < 2 {
			return fmt.Errorf("hierarchy: want `hierarchy A > B [> C ...]`")
		}
		for i := 0; i+1 < len(parts); i++ {
			if parts[i] == "" || parts[i+1] == "" {
				return fmt.Errorf("hierarchy: empty role name")
			}
			s.Hierarchy = append(s.Hierarchy, Edge{Senior: parts[i], Junior: parts[i+1]})
		}
	case "ssd", "dsd":
		set, err := parseSoD(keyword, rest)
		if err != nil {
			return err
		}
		if keyword == "ssd" {
			s.SSD = append(s.SSD, set)
		} else {
			s.DSD = append(s.DSD, set)
		}
	case "user":
		name, roles, err := nameColonList(rest, true)
		if err != nil {
			return fmt.Errorf("user: %w", err)
		}
		s.Users = append(s.Users, User{Name: name, Roles: roles})
	case "permission":
		head, tail, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("permission: want `permission ROLE: OP OBJ`")
		}
		role := strings.TrimSpace(head)
		opObj := strings.Fields(tail)
		if role == "" || len(opObj) != 2 {
			return fmt.Errorf("permission: want `permission ROLE: OP OBJ`")
		}
		s.Permissions = append(s.Permissions, Perm{Role: role, Operation: opObj[0], Object: opObj[1]})
	case "cardinality":
		if len(fields) != 3 {
			return fmt.Errorf("cardinality: want `cardinality ROLE N`")
		}
		n, err := positiveInt(fields[2])
		if err != nil {
			return fmt.Errorf("cardinality: %w", err)
		}
		s.Cardinalities = append(s.Cardinalities, Cardinality{Role: fields[1], N: n})
	case "maxroles":
		if len(fields) != 3 {
			return fmt.Errorf("maxroles: want `maxroles USER N`")
		}
		n, err := positiveInt(fields[2])
		if err != nil {
			return fmt.Errorf("maxroles: %w", err)
		}
		s.MaxRoles = append(s.MaxRoles, MaxRoles{User: fields[1], N: n})
	case "shift":
		if len(fields) != 3 {
			return fmt.Errorf("shift: want `shift ROLE HH:MM:SS-HH:MM:SS`")
		}
		start, stop, err := parseWindowSpec(fields[2])
		if err != nil {
			return fmt.Errorf("shift: %w", err)
		}
		s.Shifts = append(s.Shifts, Shift{Role: fields[1], Start: start, Stop: stop})
	case "duration":
		if len(fields) != 4 {
			return fmt.Errorf("duration: want `duration USER ROLE DUR` (USER may be *)")
		}
		d, err := time.ParseDuration(fields[3])
		if err != nil || d <= 0 {
			return fmt.Errorf("duration: bad duration %q", fields[3])
		}
		s.Durations = append(s.Durations, Duration{User: fields[1], Role: fields[2], D: d})
	case "timesod":
		// The window contains ':' characters, so parse by fields rather
		// than cutting at the first colon.
		parts := strings.Fields(rest)
		if len(parts) < 3 {
			return fmt.Errorf("timesod: want `timesod NAME HH:MM:SS-HH:MM:SS: R1, R2`")
		}
		name := parts[0]
		winTok := strings.TrimSuffix(parts[1], ":")
		start, stop, err := parseWindowSpec(winTok)
		if err != nil {
			return fmt.Errorf("timesod: %w", err)
		}
		roleList := strings.TrimSpace(rest[strings.Index(rest, parts[1])+len(parts[1]):])
		roles := splitTrim(roleList, ",")
		if len(roles) < 2 || roles[0] == "" {
			return fmt.Errorf("timesod: need at least 2 roles")
		}
		s.TimeSoDs = append(s.TimeSoDs, TimeSoD{Name: name, Roles: roles, Start: start, Stop: stop})
	case "couple":
		parts := splitTrim(rest, "->")
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return fmt.Errorf("couple: want `couple LEAD -> FOLLOW`")
		}
		s.Couples = append(s.Couples, Couple{Lead: parts[0], Follow: parts[1]})
	case "require":
		if len(fields) != 4 || fields[2] != "needs-active" {
			return fmt.Errorf("require: want `require DEPENDENT needs-active REQUIRED`")
		}
		s.Requires = append(s.Requires, Require{Dependent: fields[1], Required: fields[3]})
	case "prereq":
		if len(fields) != 4 || fields[2] != "after" {
			return fmt.Errorf("prereq: want `prereq ROLE after PREREQ`")
		}
		s.Prereqs = append(s.Prereqs, Prereq{Role: fields[1], Prereq: fields[3]})
	case "purpose":
		switch len(fields) {
		case 2:
			s.Purposes = append(s.Purposes, Purpose{Name: fields[1]})
		case 4:
			if fields[2] != "<" {
				return fmt.Errorf("purpose: want `purpose NAME [< PARENT]`")
			}
			s.Purposes = append(s.Purposes, Purpose{Name: fields[1], Parent: fields[3]})
		default:
			return fmt.Errorf("purpose: want `purpose NAME [< PARENT]`")
		}
	case "bind":
		if len(fields) != 6 || fields[4] != "for" {
			return fmt.Errorf("bind: want `bind ROLE OP OBJ for PURPOSE`")
		}
		s.Bindings = append(s.Bindings, Binding{
			Role: fields[1], Operation: fields[2], Object: fields[3], Purpose: fields[5],
		})
	case "context":
		if len(fields) != 6 || fields[2] != "requires" || fields[4] != "=" {
			return fmt.Errorf("context: want `context ROLE requires KEY = VALUE`")
		}
		s.Contexts = append(s.Contexts, Context{Role: fields[1], Key: fields[3], Value: fields[5]})
	case "report":
		if len(fields) != 4 || fields[2] != "every" {
			return fmt.Errorf("report: want `report NAME every DUR`")
		}
		d, err := time.ParseDuration(fields[3])
		if err != nil || d <= 0 {
			return fmt.Errorf("report: bad interval %q", fields[3])
		}
		s.Reports = append(s.Reports, ReportSpec{Name: fields[1], Every: d})
	case "consent-required":
		if len(fields) != 2 {
			return fmt.Errorf("consent-required: want `consent-required OBJECT`")
		}
		s.ConsentRequired = append(s.ConsentRequired, fields[1])
	case "threshold":
		// threshold NAME N in DUR: ACTION
		head, action, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("threshold: want `threshold NAME N in DUR: ACTION`")
		}
		hf := strings.Fields(head)
		action = strings.TrimSpace(action)
		if len(hf) != 4 || hf[2] != "in" || action == "" {
			return fmt.Errorf("threshold: want `threshold NAME N in DUR: ACTION`")
		}
		n, err := positiveInt(hf[1])
		if err != nil {
			return fmt.Errorf("threshold: %w", err)
		}
		d, err := time.ParseDuration(hf[3])
		if err != nil || d <= 0 {
			return fmt.Errorf("threshold: bad window %q", hf[3])
		}
		s.Thresholds = append(s.Thresholds, Threshold{Name: hf[0], Count: n, Window: d, Action: action})
	default:
		return fmt.Errorf("unknown statement %q", keyword)
	}
	return nil
}

// parseSoD parses `NAME N: R1, R2, ...`.
func parseSoD(kind, rest string) (SoD, error) {
	head, tail, ok := strings.Cut(rest, ":")
	if !ok {
		return SoD{}, fmt.Errorf("%s: want `%s NAME N: R1, R2, ...`", kind, kind)
	}
	hf := strings.Fields(head)
	if len(hf) != 2 {
		return SoD{}, fmt.Errorf("%s: want `%s NAME N: R1, R2, ...`", kind, kind)
	}
	n, err := positiveInt(hf[1])
	if err != nil {
		return SoD{}, fmt.Errorf("%s: %w", kind, err)
	}
	roles := splitTrim(tail, ",")
	if len(roles) < 2 || roles[0] == "" {
		return SoD{}, fmt.Errorf("%s: need at least 2 roles", kind)
	}
	return SoD{Name: hf[0], Roles: roles, N: n}, nil
}

// parseWindowSpec parses "HH:MM:SS-HH:MM:SS" (daily window shorthand).
func parseWindowSpec(tok string) (start, stop clock.Pattern, err error) {
	a, b, ok := strings.Cut(tok, "-")
	if !ok {
		return start, stop, fmt.Errorf("bad window %q (want HH:MM:SS-HH:MM:SS)", tok)
	}
	start, err = clock.ParsePattern(a)
	if err != nil {
		return start, stop, err
	}
	stop, err = clock.ParsePattern(b)
	return start, stop, err
}

// nameColonList parses "NAME: a, b, c"; with optional=true the colon and
// list may be absent.
func nameColonList(rest string, optional bool) (string, []string, error) {
	head, tail, ok := strings.Cut(rest, ":")
	name := strings.TrimSpace(head)
	if name == "" || strings.ContainsAny(name, " \t") {
		return "", nil, fmt.Errorf("want `NAME: a, b, ...`")
	}
	if !ok {
		if optional {
			return name, nil, nil
		}
		return "", nil, fmt.Errorf("want `NAME: a, b, ...`")
	}
	list := splitTrim(tail, ",")
	if len(list) == 1 && list[0] == "" {
		list = nil
	}
	return name, list, nil
}

func splitTrim(s, sep string) []string {
	parts := strings.Split(s, sep)
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func positiveInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad positive integer %q", s)
	}
	return n, nil
}
