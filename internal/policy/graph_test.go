package policy

import (
	"testing"
)

func xyzSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := ParseFile("testdata/xyz.acp")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildGraphXYZ(t *testing.T) {
	g, err := BuildGraph(xyzSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	if roles := g.Roles(); roles[0] != "PM" || roles[4] != "Clerk" {
		t.Fatalf("Roles = %v (want declaration order)", roles)
	}

	pc, _ := g.Node("PC")
	if !pc.StaticSoD || pc.InheritedStaticSoD {
		t.Fatalf("PC flags: %+v", pc)
	}
	if !pc.Hierarchy {
		t.Fatal("PC should have Hierarchy flag")
	}
	if len(pc.SoDPartners) != 1 || pc.SoDPartners[0] != "AC" {
		t.Fatalf("PC partners = %v", pc.SoDPartners)
	}
	// Parent pointer (subscriber list): PC's parent is PM.
	if len(pc.Parents) != 1 || pc.Parents[0].Role != "PM" {
		t.Fatalf("PC parents = %v", pc.Parents)
	}

	// Bottom-up propagation: PM inherits the SSD flag from PC.
	pm, _ := g.Node("PM")
	if pm.StaticSoD {
		t.Fatal("PM should not be a direct SSD member")
	}
	if !pm.InheritedStaticSoD || !pm.HasStaticSoD() {
		t.Fatal("PM must inherit the static SoD flag from PC")
	}
	if pm.Cardinality != 1 {
		t.Fatalf("PM cardinality = %d", pm.Cardinality)
	}

	// Clerk is junior to everyone and not conflicted.
	clerk, _ := g.Node("Clerk")
	if clerk.HasStaticSoD() {
		t.Fatal("Clerk should not carry SoD flags")
	}
	if len(clerk.Parents) != 2 {
		t.Fatalf("Clerk parents = %v", clerk.Parents)
	}
	if clerk.Cardinality != 0 {
		t.Fatalf("Clerk cardinality = %d", clerk.Cardinality)
	}
	if _, ok := g.Node("ghost"); ok {
		t.Fatal("ghost node exists")
	}
}

func TestGraphPropagationDeep(t *testing.T) {
	// SSD on the leaf must propagate through every ancestor level.
	s, err := ParseString(`
role top
role mid
role leaf
role other
hierarchy top > mid > leaf
ssd conflict 2: leaf, other
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"mid", "top"} {
		n, _ := g.Node(r)
		if !n.InheritedStaticSoD {
			t.Fatalf("%s did not inherit the SSD flag", r)
		}
	}
	other, _ := g.Node("other")
	if other.InheritedStaticSoD || !other.StaticSoD {
		t.Fatalf("other flags wrong: %+v", other)
	}
}

func TestGraphDynamicSoDFlags(t *testing.T) {
	s, err := ParseString(`
role boss
role teller
role auditor
hierarchy boss > teller
dsd bank 2: teller, auditor
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	teller, _ := g.Node("teller")
	if !teller.DynamicSoD || teller.StaticSoD {
		t.Fatalf("teller flags: %+v", teller)
	}
	boss, _ := g.Node("boss")
	if !boss.InheritedDynamicSoD {
		t.Fatal("boss did not inherit the DSD flag")
	}
}

func TestGraphOtherFlags(t *testing.T) {
	s, err := ParseString(`
role A
role B
role C
shift A 09:00:00-17:00:00
duration * B 1h
couple A -> B
require C needs-active A
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Node("A")
	b, _ := g.Node("B")
	c, _ := g.Node("C")
	if !a.Temporal || !b.Temporal || c.Temporal {
		t.Fatalf("temporal flags: A=%v B=%v C=%v", a.Temporal, b.Temporal, c.Temporal)
	}
	if !a.CFD || !b.CFD || !c.CFD {
		t.Fatalf("CFD flags: A=%v B=%v C=%v", a.CFD, b.CFD, c.CFD)
	}
}

func TestBuildGraphErrors(t *testing.T) {
	for _, src := range []string{
		"role A\nrole A",                    // duplicate role
		"role A\nhierarchy A > ghost",       // undeclared role in edge
		"role A\nrole B\nssd x 2: A, ghost", // undeclared role in SSD
		"role A\ncardinality ghost 2",       // undeclared role
		"role A\nshift ghost 09:00:00-17:00:00",
		"role A\nduration * ghost 1h",
		"role A\nrole B\ntimesod w 10:00:00-17:00:00: A, ghost",
		"role A\ncouple A -> ghost",
		"role A\nrequire A needs-active ghost",
		"role A\nprereq A after ghost",
	} {
		s, err := ParseString(src)
		if err != nil {
			t.Errorf("ParseString(%q): %v", src, err)
			continue
		}
		if _, err := BuildGraph(s); err == nil {
			t.Errorf("BuildGraph(%q) accepted", src)
		}
	}
}
