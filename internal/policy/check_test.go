package policy

import (
	"strings"
	"testing"
)

// checkOf parses src and runs Check, failing the test on parse errors.
func checkOf(t *testing.T, src string) []Issue {
	t.Helper()
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return Check(s)
}

// wantError asserts Check finds an Error mentioning substr.
func wantError(t *testing.T, src, substr string) {
	t.Helper()
	issues := checkOf(t, src)
	if !HasErrors(issues) {
		t.Fatalf("Check(%q) found no errors, want one mentioning %q", src, substr)
	}
	for _, i := range issues {
		if i.Severity == Error && strings.Contains(i.Msg, substr) {
			return
		}
	}
	t.Fatalf("Check(%q) = %v, want error mentioning %q", src, issues, substr)
}

func TestCheckCleanPolicy(t *testing.T) {
	if issues := checkOf(t, `
role A
role B
hierarchy A > B
user bob: A
`); len(issues) != 0 {
		t.Fatalf("issues = %v", issues)
	}
}

func TestCheckDuplicateRole(t *testing.T) {
	wantError(t, "role A\nrole A", "declared more than once")
}

func TestCheckUndeclaredReferences(t *testing.T) {
	wantError(t, "role A\nhierarchy A > ghost", "undeclared role")
	wantError(t, "role A\nrole B\nssd x 2: A, ghost", "undeclared role")
	wantError(t, "permission ghost: read x", "undeclared role")
	wantError(t, "user bob: ghost", "undeclared role")
	wantError(t, "role A\nbind A read x.dat for ghost", "undeclared purpose")
}

func TestCheckHierarchyCycle(t *testing.T) {
	wantError(t, `
role A
role B
role C
hierarchy A > B
hierarchy B > C
hierarchy C > A
`, "cycle")
	wantError(t, "role A\nhierarchy A > A", "self-edge")
}

func TestCheckDuplicateEdgeWarns(t *testing.T) {
	issues := checkOf(t, "role A\nrole B\nhierarchy A > B\nhierarchy A > B")
	if HasErrors(issues) {
		t.Fatalf("duplicate edge should warn, not error: %v", issues)
	}
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "duplicate hierarchy edge") {
		t.Fatalf("issues = %v", issues)
	}
}

func TestCheckSoDValidation(t *testing.T) {
	wantError(t, "role A\nrole B\nssd x 2: A, B\nssd x 2: A, B", "more than once")
	wantError(t, "role A\nrole B\nrole C\nssd x 4: A, B, C", "outside")
	wantError(t, "role A\nrole B\nssd x 2: A, A", "repeats")
}

func TestCheckSoDHierarchyConflict(t *testing.T) {
	// An SSD set containing a role and its junior is unsatisfiable for
	// the senior.
	wantError(t, `
role Senior
role Junior
hierarchy Senior > Junior
ssd bad 2: Senior, Junior
`, "conflicts with the hierarchy")
}

func TestCheckUserSSDViolation(t *testing.T) {
	wantError(t, `
role PC
role AC
ssd pa 2: PC, AC
user eve: PC, AC
`, "violates ssd")
	// Inherited: assigning the senior violates through the closure.
	wantError(t, `
role PM
role PC
role AC
hierarchy PM > PC
ssd pa 2: PC, AC
user eve: PM, AC
`, "violates ssd")
}

func TestCheckDuplicateUser(t *testing.T) {
	wantError(t, "user bob\nuser bob", "more than once")
}

func TestCheckShiftDuplicate(t *testing.T) {
	wantError(t, `
role A
shift A 08:00:00-16:00:00
shift A 09:00:00-17:00:00
`, "more than one shift")
}

func TestCheckCFDValidation(t *testing.T) {
	wantError(t, "role A\ncouple A -> A", "self-loop")
	wantError(t, "role A\nrequire A needs-active A", "self-loop")
	wantError(t, "role A\nprereq A after A", "self-loop")
	wantError(t, `
role A
role B
role C
require A needs-active B
require A needs-active C
`, "more than one require")
}

func TestCheckPurposeOrder(t *testing.T) {
	wantError(t, "purpose child < parent\npurpose parent", "before its declaration")
	wantError(t, "purpose a\npurpose a", "more than once")
}

func TestCheckThresholdAction(t *testing.T) {
	wantError(t, "threshold t 5 in 10m: explode", "unknown action")
	wantError(t, "threshold t 5 in 10m: alert\nthreshold t 3 in 5m: alert", "more than once")
}

func TestCheckContextValidation(t *testing.T) {
	wantError(t, "context ghost requires location = ward", "undeclared role")
	wantError(t, `
role A
context A requires location = ward
context A requires location = lobby
`, "unsatisfiable")
	issues := checkOf(t, "role A\ncontext A requires k = v\ncontext A requires k = v")
	if HasErrors(issues) || len(issues) != 1 {
		t.Fatalf("duplicate context should warn: %v", issues)
	}
}

func TestCheckWarningsOnly(t *testing.T) {
	issues := checkOf(t, "maxroles jane 5")
	if HasErrors(issues) {
		t.Fatalf("maxroles for undeclared user should be a warning: %v", issues)
	}
	if len(issues) != 1 || issues[0].Severity != Warning {
		t.Fatalf("issues = %v", issues)
	}
	if issues[0].String() == "" || Warning.String() != "warning" || Error.String() != "error" {
		t.Fatal("String methods")
	}
}

func TestCheckErrorsSortFirst(t *testing.T) {
	issues := checkOf(t, `
maxroles jane 5
role A
role A
`)
	if len(issues) < 2 {
		t.Fatalf("issues = %v", issues)
	}
	if issues[0].Severity != Error {
		t.Fatalf("errors must sort first: %v", issues)
	}
}
