// Package policy implements the paper's high-level access control policy
// specification (Section 5): the declarative form an administrator
// writes (here a text DSL in ".acp" files, standing in for the RBAC
// Manager GUI), the Entity-Relationship-like *access specification
// graph* it instantiates — role nodes carrying relationship flags and
// subscriber pointers to their parents — and the consistency checker the
// paper lists as future work.
//
// The rule generator (internal/rulegen) consumes the graph to emit OWTE
// rules; a policy edit re-parses the spec and regenerates exactly the
// affected rules.
package policy

import (
	"fmt"
	"time"

	"activerbac/internal/clock"
)

// Spec is a parsed enterprise access control policy. Field order follows
// the .acp statement forms; every slice preserves source order so rule
// generation and golden outputs are deterministic.
type Spec struct {
	// Name identifies the policy (the `policy "..."` header).
	Name string
	// Roles lists declared roles in declaration order.
	Roles []string
	// Hierarchy lists senior > junior edges.
	Hierarchy []Edge
	// SSD and DSD list separation-of-duty relations.
	SSD []SoD
	DSD []SoD
	// Users lists user declarations with their role assignments.
	Users []User
	// Permissions lists role-permission grants.
	Permissions []Perm
	// Cardinalities bounds concurrent activations per role.
	Cardinalities []Cardinality
	// MaxRoles bounds active roles per user session.
	MaxRoles []MaxRoles
	// Shifts are periodic role-enabling windows (GTRBAC).
	Shifts []Shift
	// Durations are per-activation duration bounds (Rule 7).
	Durations []Duration
	// TimeSoDs are disabling-time SoD constraints (Rule 6).
	TimeSoDs []TimeSoD
	// Couples are post-condition CFD couplings (Rule 8).
	Couples []Couple
	// Requires are transaction-based activation dependencies (Rule 9).
	Requires []Require
	// Prereqs are same-session prerequisite roles.
	Prereqs []Prereq
	// Purposes and Bindings configure privacy-aware RBAC.
	Purposes []Purpose
	Bindings []Binding
	// ConsentRequired lists consent-protected objects.
	ConsentRequired []string
	// Thresholds configure active-security monitors.
	Thresholds []Threshold
	// Contexts are context-aware activation constraints (location,
	// network state, ...).
	Contexts []Context
	// Reports schedule periodic monitoring reports (the paper's
	// PERIODIC-operator use case).
	Reports []ReportSpec
}

// ReportSpec schedules a system report every Every.
type ReportSpec struct {
	Name  string
	Every time.Duration
}

// Context requires the environmental key to hold Value for Role to be
// (and remain) active: activation is denied otherwise, and a context
// change away from Value deactivates the role everywhere.
type Context struct {
	Role  string
	Key   string
	Value string
}

// Edge is one immediate hierarchy edge: Senior inherits from Junior.
type Edge struct {
	Senior, Junior string
}

// SoD is a named separation-of-duty relation over Roles with
// cardinality N.
type SoD struct {
	Name  string
	Roles []string
	N     int
}

// User declares a user and its role assignments.
type User struct {
	Name  string
	Roles []string
}

// Perm grants (Operation, Object) to Role.
type Perm struct {
	Role      string
	Operation string
	Object    string
}

// Cardinality bounds concurrent activations of Role to N.
type Cardinality struct {
	Role string
	N    int
}

// MaxRoles bounds the active roles per session of User to N.
type MaxRoles struct {
	User string
	N    int
}

// Shift keeps Role enabled within the daily window [Start, Stop)
// (pattern syntax "hh:mm:ss", optionally full periodic expressions).
type Shift struct {
	Role  string
	Start clock.Pattern
	Stop  clock.Pattern
}

// Window converts the shift to a clock.Window.
func (s Shift) Window() clock.Window {
	return clock.Window{Start: s.Start, Stop: s.Stop}
}

// Duration bounds one activation of Role by User to D; User "*" means
// every user.
type Duration struct {
	User string
	Role string
	D    time.Duration
}

// TimeSoD forbids all of Roles being disabled at once within the daily
// window [Start, Stop).
type TimeSoD struct {
	Name  string
	Roles []string
	Start clock.Pattern
	Stop  clock.Pattern
}

// Window converts the constraint interval to a clock.Window.
func (t TimeSoD) Window() clock.Window {
	return clock.Window{Start: t.Start, Stop: t.Stop}
}

// Couple is a Rule 8 coupling: enabling Lead requires enabling Follow.
type Couple struct {
	Lead, Follow string
}

// Require is a Rule 9 dependency: Dependent may be active only while
// Required is active somewhere.
type Require struct {
	Dependent, Required string
}

// Prereq requires Prereq active in the same session before Role.
type Prereq struct {
	Role, Prereq string
}

// Purpose declares a privacy purpose; Parent may be empty.
type Purpose struct {
	Name, Parent string
}

// Binding allows Role to exercise (Operation, Object) for Purpose.
type Binding struct {
	Role      string
	Operation string
	Object    string
	Purpose   string
}

// Threshold configures an active-security monitor: Count denials within
// Window trigger Action ("alert", "lock-user", "disable-rules").
type Threshold struct {
	Name   string
	Count  int
	Window time.Duration
	Action string
}

// HasRole reports whether the spec declares role name.
func (s *Spec) HasRole(name string) bool {
	for _, r := range s.Roles {
		if r == name {
			return true
		}
	}
	return false
}

// RoleSet returns the declared roles as a set.
func (s *Spec) RoleSet() map[string]bool {
	set := make(map[string]bool, len(s.Roles))
	for _, r := range s.Roles {
		set[r] = true
	}
	return set
}

// Juniors returns the immediate senior -> juniors adjacency of the
// hierarchy (self-edges and duplicates dropped).
func (s *Spec) Juniors() map[string][]string {
	adj := make(map[string][]string, len(s.Hierarchy))
	seen := make(map[Edge]bool, len(s.Hierarchy))
	for _, e := range s.Hierarchy {
		if e.Senior == e.Junior || seen[e] {
			continue
		}
		seen[e] = true
		adj[e.Senior] = append(adj[e.Senior], e.Junior)
	}
	return adj
}

// JuniorClosure returns role plus every role it transitively inherits —
// the authorized set one assignment of role grants (NIST RBAC
// hierarchies). juniors is the adjacency from Juniors().
func JuniorClosure(juniors map[string][]string, role string) map[string]bool {
	out := map[string]bool{role: true}
	stack := []string{role}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, j := range juniors[cur] {
			if !out[j] {
				out[j] = true
				stack = append(stack, j)
			}
		}
	}
	return out
}

// String summarizes the spec.
func (s *Spec) String() string {
	return fmt.Sprintf("policy %q: %d roles, %d edges, %d SSD, %d DSD, %d users",
		s.Name, len(s.Roles), len(s.Hierarchy), len(s.SSD), len(s.DSD), len(s.Users))
}
