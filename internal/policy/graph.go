package policy

import (
	"fmt"
	"sort"
)

// Node is one role node of the access specification graph (the boxes of
// the paper's Figure 1). Flags record which relationships the role takes
// part in; Parents is the paper's "internal subscriber list ... used to
// point to the parent node", through which constraints propagate bottom
// up.
type Node struct {
	// Role is the node's role name.
	Role string
	// Parents are the immediate senior roles (subscriber list).
	Parents []*Node
	// Children are the immediate junior roles.
	Children []*Node

	// Hierarchy is set when the role has any hierarchy edge.
	Hierarchy bool
	// StaticSoD is set when the role is a *direct* member of a static
	// SoD relation (connected by the dashed line in Figure 1).
	StaticSoD bool
	// InheritedStaticSoD is set when a junior's StaticSoD flag
	// propagated up to this node (the paper: "PM inherits the static
	// SoD constraints from PC").
	InheritedStaticSoD bool
	// DynamicSoD / InheritedDynamicSoD mirror the above for dynamic SoD.
	DynamicSoD          bool
	InheritedDynamicSoD bool
	// Cardinality is the role's activation bound (0 = unlimited).
	Cardinality int
	// Temporal is set when the role has a shift or duration constraint.
	Temporal bool
	// CFD is set when the role takes part in a coupling, dependency or
	// prerequisite.
	CFD bool
	// Context is set when the role carries context-aware constraints.
	Context bool
	// SoDPartners lists the roles this node directly conflicts with.
	SoDPartners []string
}

// HasStaticSoD reports direct or inherited static SoD participation.
func (n *Node) HasStaticSoD() bool { return n.StaticSoD || n.InheritedStaticSoD }

// HasDynamicSoD reports direct or inherited dynamic SoD participation.
func (n *Node) HasDynamicSoD() bool { return n.DynamicSoD || n.InheritedDynamicSoD }

// Graph is the instantiated access specification graph.
type Graph struct {
	nodes map[string]*Node
	order []string
}

// Node returns the node for a role.
func (g *Graph) Node(role string) (*Node, bool) {
	n, ok := g.nodes[role]
	return n, ok
}

// Roles returns the declared roles in declaration order.
func (g *Graph) Roles() []string {
	return append([]string(nil), g.order...)
}

// Len reports the number of role nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// BuildGraph instantiates the access specification graph for a spec:
// nodes for every role, parent/child pointers for hierarchy edges, flags
// for each relationship kind, and bottom-up propagation of SoD flags
// along the subscriber pointers. The spec must reference only declared
// roles (run Check first for friendlier diagnostics).
func BuildGraph(s *Spec) (*Graph, error) {
	g := &Graph{nodes: make(map[string]*Node, len(s.Roles))}
	for _, r := range s.Roles {
		if _, dup := g.nodes[r]; dup {
			return nil, fmt.Errorf("policy: role %q declared twice", r)
		}
		g.nodes[r] = &Node{Role: r}
		g.order = append(g.order, r)
	}
	need := func(role, where string) (*Node, error) {
		n, ok := g.nodes[role]
		if !ok {
			return nil, fmt.Errorf("policy: %s references undeclared role %q", where, role)
		}
		return n, nil
	}

	for _, e := range s.Hierarchy {
		sr, err := need(e.Senior, "hierarchy")
		if err != nil {
			return nil, err
		}
		jr, err := need(e.Junior, "hierarchy")
		if err != nil {
			return nil, err
		}
		sr.Children = append(sr.Children, jr)
		jr.Parents = append(jr.Parents, sr)
		sr.Hierarchy, jr.Hierarchy = true, true
	}

	markSoD := func(sets []SoD, kind string, direct func(*Node, []string)) error {
		for _, set := range sets {
			for _, r := range set.Roles {
				n, err := need(r, kind+" set "+set.Name)
				if err != nil {
					return err
				}
				partners := make([]string, 0, len(set.Roles)-1)
				for _, other := range set.Roles {
					if other != r {
						partners = append(partners, other)
					}
				}
				direct(n, partners)
			}
		}
		return nil
	}
	if err := markSoD(s.SSD, "ssd", func(n *Node, partners []string) {
		n.StaticSoD = true
		n.SoDPartners = mergeSorted(n.SoDPartners, partners)
	}); err != nil {
		return nil, err
	}
	if err := markSoD(s.DSD, "dsd", func(n *Node, partners []string) {
		n.DynamicSoD = true
		n.SoDPartners = mergeSorted(n.SoDPartners, partners)
	}); err != nil {
		return nil, err
	}

	for _, c := range s.Cardinalities {
		n, err := need(c.Role, "cardinality")
		if err != nil {
			return nil, err
		}
		n.Cardinality = c.N
	}
	for _, sh := range s.Shifts {
		n, err := need(sh.Role, "shift")
		if err != nil {
			return nil, err
		}
		n.Temporal = true
	}
	for _, d := range s.Durations {
		n, err := need(d.Role, "duration")
		if err != nil {
			return nil, err
		}
		n.Temporal = true
	}
	for _, ts := range s.TimeSoDs {
		for _, r := range ts.Roles {
			n, err := need(r, "timesod "+ts.Name)
			if err != nil {
				return nil, err
			}
			n.Temporal = true
		}
	}
	for _, c := range s.Couples {
		for _, r := range []string{c.Lead, c.Follow} {
			n, err := need(r, "couple")
			if err != nil {
				return nil, err
			}
			n.CFD = true
		}
	}
	for _, rq := range s.Requires {
		for _, r := range []string{rq.Dependent, rq.Required} {
			n, err := need(r, "require")
			if err != nil {
				return nil, err
			}
			n.CFD = true
		}
	}
	for _, p := range s.Prereqs {
		for _, r := range []string{p.Role, p.Prereq} {
			n, err := need(r, "prereq")
			if err != nil {
				return nil, err
			}
			n.CFD = true
		}
	}

	for _, c := range s.Contexts {
		n, err := need(c.Role, "context")
		if err != nil {
			return nil, err
		}
		n.Context = true
	}

	g.propagateSoD()
	return g, nil
}

// propagateSoD pushes SoD flags bottom-up along the subscriber (parent)
// pointers: a senior of a conflicted role is conflicted too, because
// assignment to the senior authorizes the junior.
func (g *Graph) propagateSoD() {
	// Iterate to a fixed point; the graph is small and acyclic in valid
	// policies, and the loop is bounded even on cyclic input because
	// flags only ever flip one way.
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			for _, parent := range n.Parents {
				if n.HasStaticSoD() && !parent.HasStaticSoD() {
					parent.InheritedStaticSoD = true
					changed = true
				}
				if n.HasDynamicSoD() && !parent.HasDynamicSoD() {
					parent.InheritedDynamicSoD = true
					changed = true
				}
			}
		}
	}
}

// mergeSorted unions two string slices, sorted, without duplicates.
func mergeSorted(a, b []string) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, x := range b {
		set[x] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}
