package rulegen

import (
	"testing"

	"activerbac/internal/event"
	"activerbac/internal/rbac"
)

// Context-aware RBAC (the paper's pervasive-computing scenarios): role
// activation gated on environmental state, and automatic deactivation
// when the environment changes.

const pervasivePolicy = `
policy "pervasive"
role WardNurse
role Remote
user nina: WardNurse, Remote
permission WardNurse: read chart.dat
context WardNurse requires location = ward
context WardNurse requires network = secure
`

func setContext(t *testing.T, g *Generator, key, value string) {
	t.Helper()
	dec := decide(t, g, EvContextUpdate, event.Params{"key": key, "value": value})
	if !dec.Allowed() {
		t.Fatalf("context update %s=%s denied: %s", key, value, dec.Reason())
	}
}

func TestContextGatesActivation(t *testing.T) {
	g, _ := loadPolicy(t, pervasivePolicy)
	sid := newSession(t, g, "nina")

	// No context set: fail closed.
	if dec := activateReq(t, g, "nina", sid, "WardNurse"); dec.Allowed() {
		t.Fatal("activation allowed with unset context")
	}
	// One of two requirements satisfied: still denied.
	setContext(t, g, "location", "ward")
	if dec := activateReq(t, g, "nina", sid, "WardNurse"); dec.Allowed() {
		t.Fatal("activation allowed with network context unset")
	}
	setContext(t, g, "network", "secure")
	if dec := activateReq(t, g, "nina", sid, "WardNurse"); !dec.Allowed() {
		t.Fatalf("activation denied with context satisfied: %s", dec.Reason())
	}
	// Unconstrained roles are unaffected throughout.
	if dec := activateReq(t, g, "nina", sid, "Remote"); !dec.Allowed() {
		t.Fatalf("unconstrained role denied: %s", dec.Reason())
	}
}

func TestContextChangeDeactivates(t *testing.T) {
	g, _ := loadPolicy(t, pervasivePolicy)
	st := g.Engine().Store()
	setContext(t, g, "location", "ward")
	setContext(t, g, "network", "secure")
	sid := newSession(t, g, "nina")
	if dec := activateReq(t, g, "nina", sid, "WardNurse"); !dec.Allowed() {
		t.Fatalf("setup activation denied: %s", dec.Reason())
	}
	if dec := activateReq(t, g, "nina", sid, "Remote"); !dec.Allowed() {
		t.Fatalf("setup activation denied: %s", dec.Reason())
	}

	// Nina walks out of the ward: the sensor raises a context update
	// and the CTX.WardNurse rule revokes the activation in-cascade.
	setContext(t, g, "location", "cafeteria")
	if st.CheckSessionRole(rbac.SessionID(sid), "WardNurse") {
		t.Fatal("WardNurse survived the location change")
	}
	// The unconstrained role stays.
	if !st.CheckSessionRole(rbac.SessionID(sid), "Remote") {
		t.Fatal("unconstrained role was revoked")
	}
	// Access through the revoked role is gone.
	req := event.Params{"user": "nina", "session": sid, "operation": "read", "object": "chart.dat"}
	if dec := decide(t, g, EvCheckAccess, req); dec.Allowed() {
		t.Fatal("access allowed after context revocation")
	}
	// Walking back re-enables activation.
	setContext(t, g, "location", "ward")
	if dec := activateReq(t, g, "nina", sid, "WardNurse"); !dec.Allowed() {
		t.Fatalf("re-activation denied: %s", dec.Reason())
	}
}

func TestContextUnrelatedKeyDoesNotRevoke(t *testing.T) {
	g, _ := loadPolicy(t, pervasivePolicy)
	st := g.Engine().Store()
	setContext(t, g, "location", "ward")
	setContext(t, g, "network", "secure")
	sid := newSession(t, g, "nina")
	activateReq(t, g, "nina", sid, "WardNurse")
	setContext(t, g, "weather", "rainy")
	if !st.CheckSessionRole(rbac.SessionID(sid), "WardNurse") {
		t.Fatal("unrelated context key revoked the role")
	}
}

func TestContextRuleInventoryAndRegen(t *testing.T) {
	g, _ := loadPolicy(t, pervasivePolicy)
	names := map[string]bool{}
	for _, r := range g.Engine().Pool().Snapshot() {
		names[r.Name] = true
	}
	if !names["CTX.apply"] || !names["CTX.WardNurse"] {
		t.Fatalf("context rules missing: %v", names)
	}
	if names["CTX.Remote"] {
		t.Fatal("context rule generated for unconstrained role")
	}
	// Dropping the requirement regenerates only WardNurse and removes
	// the CTX rule.
	rep := apply(t, g, `
policy "pervasive"
role WardNurse
role Remote
user nina: WardNurse, Remote
permission WardNurse: read chart.dat
context WardNurse requires location = ward
`)
	if len(rep.RolesRegenerated) != 1 || rep.RolesRegenerated[0] != "WardNurse" {
		t.Fatalf("regenerated = %v", rep.RolesRegenerated)
	}
	setContext(t, g, "location", "ward")
	sid := newSession(t, g, "nina")
	// network requirement is gone.
	if dec := activateReq(t, g, "nina", sid, "WardNurse"); !dec.Allowed() {
		t.Fatalf("activation denied after requirement removed: %s", dec.Reason())
	}
}
