package rulegen

import (
	"strings"
	"testing"
	"time"

	"activerbac/internal/event"
	"activerbac/internal/rbac"
)

// Exhaustive Apply diffs: every statement kind transitions correctly
// between policy versions.

const diffBase = `
policy "diff"
role A
role B
role C
role D
hierarchy A > B
ssd s1 2: B, C
permission A: read doc
user u: A
user w: D
timesod t1 00:00:00-23:59:59: A, B
couple C -> D
require B needs-active C
prereq D after C
purpose base
bind A read doc for base
consent-required doc
threshold th1 5 in 10m: alert
context D requires site = hq
`

func TestApplyDiffEveryStatementKind(t *testing.T) {
	g, _ := loadPolicy(t, diffBase)
	st := g.Engine().Store()

	edited := `
policy "diff"
role A
role B
role C
role D
ssd s1 2: C, D
permission A: write doc
user u: A
user w: D
timesod t1 08:00:00-17:00:00: A, B
couple A -> B
require B needs-active D
prereq C after D
purpose base
purpose extra < base
bind A write doc for extra
consent-required ledger
threshold th1 3 in 5m: lock-user
context D requires site = lab
`
	rep := apply(t, g, edited)
	if rep.Touched() == 0 {
		t.Fatal("nothing touched")
	}

	// Hierarchy edge A > B removed.
	juniors, err := st.ImmediateJuniors("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(juniors) != 0 {
		t.Fatalf("hierarchy edge survived: %v", juniors)
	}
	// SSD membership changed.
	ssd := st.SSDSets()
	if len(ssd) != 1 || len(ssd[0].Roles) != 2 || ssd[0].Roles[0] != "C" {
		t.Fatalf("SSD sets = %v", ssd)
	}
	// Permission replaced.
	perms, err := st.RolePermissions("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(perms) != 1 || perms[0].Operation != "write" {
		t.Fatalf("permissions = %v", perms)
	}
	// Time SoD window replaced.
	if got := g.Temporal().TimeSoDs(); len(got) != 1 || got[0] != "t1" {
		t.Fatalf("time SoDs = %v", got)
	}
	// Coupling replaced.
	if got := g.CFD().Couplings(); len(got) != 1 || got[0] != "A->B" {
		t.Fatalf("couplings = %v", got)
	}
	// Dependency retargeted: B now needs D.
	if reason, ok := g.CFD().CanActivate("s0", "B"); ok || !strings.Contains(reason, `"D"`) {
		t.Fatalf("dependency not retargeted: %q %v", reason, ok)
	}
	// Prereq direction flipped: C now needs D in-session.
	if _, ok := g.CFD().CanActivate("s0", "D"); !ok {
		t.Fatal("old prereq on D survived")
	}
	// Purposes appended, bindings swapped.
	if got := g.Privacy().Purposes(); len(got) != 2 {
		t.Fatalf("purposes = %v", got)
	}
	if got := g.Privacy().AllowedPurposes("A", rbac.Permission{Operation: "write", Object: "doc"}); len(got) != 1 || got[0] != "extra" {
		t.Fatalf("bindings = %v", got)
	}
	if got := g.Privacy().AllowedPurposes("A", rbac.Permission{Operation: "read", Object: "doc"}); len(got) != 0 {
		t.Fatalf("old binding survived: %v", got)
	}
	// Threshold replaced: 3 denials now lock.
	sid := newSession(t, g, "u")
	bad := event.Params{"user": "u", "session": sid, "operation": "x", "object": "y"}
	for i := 0; i < 3; i++ {
		decide(t, g, EvCheckAccess, bad)
	}
	if !st.UserLocked("u") {
		t.Fatal("new threshold not in force")
	}
	// Context requirement retargeted.
	if err := st.SetUserLocked("u", false); err != nil {
		t.Fatal(err)
	}
	setContext(t, g, "site", "hq")
	sidW := newSession(t, g, "w")
	if dec := activateReq(t, g, "w", sidW, "D"); dec.Allowed() {
		t.Fatal("old context value still accepted")
	}
	setContext(t, g, "site", "lab")
	if dec := activateReq(t, g, "w", sidW, "D"); !dec.Allowed() {
		t.Fatalf("new context value rejected: %s", dec.Reason())
	}

	// Invariants after the whole transition.
	if errs := st.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

func TestApplyPurposeRemovalRejected(t *testing.T) {
	g, _ := loadPolicy(t, "role A\npurpose p1\n")
	spec := mustSpec(t, "role A\n")
	if _, err := g.Apply(spec); err == nil || !strings.Contains(err.Error(), "append-only") {
		t.Fatalf("purpose removal: %v", err)
	}
}

func TestApplySSDConflictWithRuntimeState(t *testing.T) {
	// A new SSD set that runtime assignments already violate must fail.
	g, _ := loadPolicy(t, "role A\nrole B\nuser u: A\n")
	if dec := decide(t, g, EvAssignUser, event.Params{"user": "u", "role": "B"}); !dec.Allowed() {
		t.Fatalf("setup assignment denied: %s", dec.Reason())
	}
	spec := mustSpec(t, "role A\nrole B\nuser u: A\nssd x 2: A, B\n")
	if _, err := g.Apply(spec); err == nil {
		t.Fatal("SSD violated by runtime assignment accepted")
	}
}

func TestApplyDurationRemovalStopsEnforcement(t *testing.T) {
	g, sim := loadPolicy(t, "role A\nuser u: A\nduration * A 1h\n")
	rep := apply(t, g, "role A\nuser u: A\n")
	if len(rep.RolesRegenerated) != 1 {
		t.Fatalf("regenerated = %v", rep.RolesRegenerated)
	}
	sid := newSession(t, g, "u")
	activateReq(t, g, "u", sid, "A")
	sim.Advance(2 * time.Hour)
	if !g.Engine().Store().CheckSessionRole(rbac.SessionID(sid), "A") {
		t.Fatal("removed duration still enforced")
	}
}

func TestApplyMaxRolesRemoval(t *testing.T) {
	g, _ := loadPolicy(t, "role A\nrole B\nuser jane: A, B\nmaxroles jane 1\n")
	sid := newSession(t, g, "jane")
	activateReq(t, g, "jane", sid, "A")
	if dec := activateReq(t, g, "jane", sid, "B"); dec.Allowed() {
		t.Fatal("maxroles not enforced before the change")
	}
	apply(t, g, "role A\nrole B\nuser jane: A, B\n")
	if dec := activateReq(t, g, "jane", sid, "B"); !dec.Allowed() {
		t.Fatalf("maxroles still enforced after removal: %s", dec.Reason())
	}
}
