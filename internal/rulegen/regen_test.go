package rulegen

import (
	"strings"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/event"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
	"activerbac/internal/sentinel"
)

func apply(t *testing.T, g *Generator, src string) Report {
	t.Helper()
	spec, err := policy.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Apply(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestApplyIdenticalSpecTouchesNothing(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	before := g.Engine().Pool().Len()
	rep := apply(t, g, xyzPolicy)
	if rep.Touched() != 0 || rep.RulesAdded != 0 || rep.RulesRemoved != 0 {
		t.Fatalf("identical spec touched things: %s", rep)
	}
	if g.Engine().Pool().Len() != before {
		t.Fatal("pool size changed")
	}
}

func TestApplyRequiresLoad(t *testing.T) {
	g, err := New(sentinel.NewEngine(clock.NewSim(t0)))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := policy.ParseString("role A")
	if _, err := g.Apply(spec); err == nil {
		t.Fatal("Apply before Load accepted")
	}
}

func TestApplyRejectsBadSpec(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	spec, _ := policy.ParseString("role A\nrole A")
	if _, err := g.Apply(spec); err == nil {
		t.Fatal("Apply accepted inconsistent spec")
	}
}

// The paper's policy-change scenario: the day-doctor shift moves from
// 8-16 to 9-17; only that role's rules regenerate.
func TestApplyShiftChange(t *testing.T) {
	base := `
policy "hospital"
role DayDoctor
role Nurse
user dana: DayDoctor
shift DayDoctor 08:00:00-16:00:00
`
	changed := `
policy "hospital"
role DayDoctor
role Nurse
user dana: DayDoctor
shift DayDoctor 09:00:00-17:00:00
`
	g, sim := loadPolicy(t, base) // engine clock starts 09:00
	st := g.Engine().Store()
	if !st.RoleEnabled("DayDoctor") {
		t.Fatal("09:00 should be inside the old 8-16 shift")
	}
	rep := apply(t, g, changed)
	if len(rep.RolesRegenerated) != 1 || rep.RolesRegenerated[0] != "DayDoctor" {
		t.Fatalf("regenerated = %v, want [DayDoctor] only", rep.RolesRegenerated)
	}
	if rep.Touched() != 1 {
		t.Fatalf("Touched = %d", rep.Touched())
	}
	// The new shift drives enabling: 16:30 is inside 9-17 (the old
	// schedule would have disabled at 16:00).
	sim.AdvanceTo(time.Date(2026, 7, 6, 16, 30, 0, 0, time.UTC))
	if !st.RoleEnabled("DayDoctor") {
		t.Fatal("16:30 should be inside the new shift")
	}
	sim.AdvanceTo(time.Date(2026, 7, 6, 17, 0, 0, 0, time.UTC))
	if st.RoleEnabled("DayDoctor") {
		t.Fatal("17:00 should end the new shift")
	}
	// Activation still flows through the regenerated rules.
	sim.AdvanceTo(time.Date(2026, 7, 7, 10, 0, 0, 0, time.UTC))
	sid := newSession(t, g, "dana")
	if dec := activateReq(t, g, "dana", sid, "DayDoctor"); !dec.Allowed() {
		t.Fatalf("activation after regen denied: %s", dec.Reason())
	}
}

func TestApplyAddRole(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	rep := apply(t, g, xyzPolicy+"\nrole Intern\nhierarchy Clerk > Intern\n")
	if len(rep.RolesAdded) != 1 || rep.RolesAdded[0] != "Intern" {
		t.Fatalf("added = %v", rep.RolesAdded)
	}
	// Clerk gained a junior: its fingerprint changed (hierarchy), so it
	// regenerates; PM/PC above it too (closure). That is still far less
	// than the whole enterprise.
	if !g.Engine().Store().RoleExists("Intern") {
		t.Fatal("Intern missing from store")
	}
	// New role's rules are live: assign and activate.
	if dec := decide(t, g, EvAssignUser, event.Params{"user": "bob", "role": "Intern"}); !dec.Allowed() {
		t.Fatalf("assign Intern denied: %s", dec.Reason())
	}
	sid := newSession(t, g, "bob")
	if dec := activateReq(t, g, "bob", sid, "Intern"); !dec.Allowed() {
		t.Fatalf("activate Intern denied: %s", dec.Reason())
	}
}

func TestApplyRemoveRole(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	pruned := `
policy "enterprise-xyz"
role PM
role PC
role AM
role AC
hierarchy PM > PC
hierarchy AM > AC
ssd purchase-approval 2: PC, AC
permission PC: write purchase-order.dat
permission AC: approve purchase-order.dat
user bob: PC
user carol: AC
user alice: PM
cardinality PM 1
`
	rep := apply(t, g, pruned)
	if len(rep.RolesRemoved) != 1 || rep.RolesRemoved[0] != "Clerk" {
		t.Fatalf("removed = %v", rep.RolesRemoved)
	}
	if g.Engine().Store().RoleExists("Clerk") {
		t.Fatal("Clerk still in store")
	}
	if rep.RulesRemoved < 4 {
		t.Fatalf("RulesRemoved = %d, want >= 4 (Clerk's localized rules)", rep.RulesRemoved)
	}
	// Clerk's request events still exist but no rule handles them: deny.
	sid := newSession(t, g, "bob")
	if dec := activateReq(t, g, "bob", sid, "Clerk"); dec.Allowed() {
		t.Fatal("removed role still activatable")
	}
}

func TestApplyCardinalityChange(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	relaxed := apply(t, g, replaceLine(t, xyzPolicy, "cardinality PM 1", "cardinality PM 2"))
	if len(relaxed.RolesRegenerated) != 1 || relaxed.RolesRegenerated[0] != "PM" {
		t.Fatalf("regenerated = %v", relaxed.RolesRegenerated)
	}
	st := g.Engine().Store()
	if err := st.AddUser("dave"); err != nil {
		t.Fatal(err)
	}
	decide(t, g, EvAssignUser, event.Params{"user": "dave", "role": "PM"})
	sidA := newSession(t, g, "alice")
	sidD := newSession(t, g, "dave")
	if dec := activateReq(t, g, "alice", sidA, "PM"); !dec.Allowed() {
		t.Fatal("first activation denied")
	}
	if dec := activateReq(t, g, "dave", sidD, "PM"); !dec.Allowed() {
		t.Fatalf("second activation denied under relaxed cardinality: %s", dec.Reason())
	}
}

// A junior gaining SoD membership must flip the senior's AAR variant
// (the bottom-up flag propagation of Figure 1).
func TestApplySoDChangeFlipsSeniorVariant(t *testing.T) {
	base := `
policy "p"
role Boss
role Teller
role Auditor
hierarchy Boss > Teller
user eve: Boss, Auditor
`
	withDSD := base + "dsd conflict 2: Teller, Auditor\n"
	g, _ := loadPolicy(t, base)
	byName := func() map[string]bool {
		m := make(map[string]bool)
		for _, r := range g.Engine().Pool().Snapshot() {
			m[r.Name] = true
		}
		return m
	}
	if !byName()["AAR2.Boss"] {
		t.Fatal("expected AAR2.Boss before the change")
	}
	rep := apply(t, g, withDSD)
	// Teller and Auditor join the DSD set directly; Boss inherits the
	// flag through the closure. All three regenerate — and nothing
	// else would in a larger enterprise.
	if len(rep.RolesRegenerated) != 3 {
		t.Fatalf("regenerated = %v, want Auditor, Boss and Teller", rep.RolesRegenerated)
	}
	names := byName()
	if !names["AAR4.Boss"] || names["AAR2.Boss"] {
		t.Fatalf("Boss variant did not flip to AAR4: %v", rep)
	}
	if !names["AAR4.Teller"] || !names["AAR3.Auditor"] {
		t.Fatal("Teller/Auditor variants did not flip")
	}
	// And the new constraint enforces: Boss (implicit Teller) + Auditor
	// in one session is denied.
	sid := newSession(t, g, "eve")
	if dec := activateReq(t, g, "eve", sid, "Boss"); !dec.Allowed() {
		t.Fatalf("Boss denied: %s", dec.Reason())
	}
	if dec := activateReq(t, g, "eve", sid, "Auditor"); dec.Allowed() {
		t.Fatal("DSD violation allowed after regen")
	}
}

func TestApplyUserChanges(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	edited := replaceLine(t, xyzPolicy, "user bob: PC", "user bob: PC, Clerk") + "user dave: AC\n"
	rep := apply(t, g, edited)
	if len(rep.UsersAdded) != 1 || rep.UsersAdded[0] != "dave" {
		t.Fatalf("UsersAdded = %v", rep.UsersAdded)
	}
	st := g.Engine().Store()
	if !st.CheckAssigned("bob", "Clerk") || !st.CheckAssigned("dave", "AC") {
		t.Fatal("assignment diffs not applied")
	}
	// Remove carol.
	removed := replaceLine(t, edited, "user carol: AC", "")
	rep = apply(t, g, removed)
	if len(rep.UsersRemoved) != 1 || rep.UsersRemoved[0] != "carol" {
		t.Fatalf("UsersRemoved = %v", rep.UsersRemoved)
	}
	if st.UserExists("carol") {
		t.Fatal("carol still exists")
	}
}

func TestApplyThresholdAndDurationChanges(t *testing.T) {
	base := `
policy "p"
role Staff
user u: Staff
duration * Staff 2h
threshold burst 5 in 10m: alert
`
	g, sim := loadPolicy(t, base)
	edited := replaceLine(t, base, "duration * Staff 2h", "duration * Staff 30m")
	edited = replaceLine(t, edited, "threshold burst 5 in 10m: alert", "threshold burst 2 in 10m: lock-user")
	if _, err := g.Apply(mustSpec(t, edited)); err != nil {
		t.Fatal(err)
	}
	// New duration bound applies.
	sid := newSession(t, g, "u")
	activateReq(t, g, "u", sid, "Staff")
	sim.Advance(31 * time.Minute)
	if g.Engine().Store().CheckSessionRole(rbac.SessionID(sid), "Staff") {
		t.Fatal("old duration still in force")
	}
	// New threshold applies.
	bad := event.Params{"user": "u", "session": sid, "operation": "x", "object": "y"}
	decide(t, g, EvCheckAccess, bad)
	decide(t, g, EvCheckAccess, bad)
	if !g.Engine().Store().UserLocked("u") {
		t.Fatal("new threshold not in force")
	}
}

func TestReportString(t *testing.T) {
	rep := Report{RolesRegenerated: []string{"a"}, RulesAdded: 4, RulesRemoved: 4}
	if rep.String() == "" || rep.Touched() != 1 {
		t.Fatal("Report accessors")
	}
}

// --------------------------------------------------------------------------
// helpers

func mustSpec(t *testing.T, src string) *policy.Spec {
	t.Helper()
	s, err := policy.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func replaceLine(t *testing.T, src, old, new string) string {
	t.Helper()
	if !strings.Contains(src, old) {
		t.Fatalf("line %q not in policy", old)
	}
	return strings.ReplaceAll(src, old, new)
}
