package rulegen

import (
	"fmt"

	"activerbac/internal/core"
	"activerbac/internal/event"
	"activerbac/internal/gtrbac"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
	"activerbac/internal/sentinel"
)

// generateGlobalRules emits the globalized rules: the administrative
// rules (user-role assignment, sessions) and the check-access rules CA1
// and CAP1, which are the same for every role (paper Rule 5).
func (g *Generator) generateGlobalRules() error {
	det := g.eng.Detector()
	pool := g.eng.Pool()
	st := g.eng.Store()

	for _, ev := range []string{
		EvCheckAccess, EvCheckPurposeAccess,
		EvAssignUser, EvDeassignUser, EvCreateSession, EvDeleteSession,
		EvContextUpdate,
	} {
		if err := det.DefinePrimitive(ev); err != nil {
			return err
		}
	}

	// CTX.apply stores context updates in the engine environment. It
	// runs at high priority so the per-role context rules (and any rule
	// conditions) observe the new value within the same cascade.
	if err := pool.Add(core.Rule{
		Name: "CTX.apply", On: EvContextUpdate, Priority: 100,
		Class: core.Administrative, Granularity: core.Globalized,
		Tags: []string{TagGlobal},
		Then: []core.Action{
			core.Act("env.set(key, value)", func(o *event.Occurrence) error {
				key, _ := o.Params["key"].(string)
				value, _ := o.Params["value"].(string)
				if key == "" {
					return fmt.Errorf("rulegen: context update without key")
				}
				g.eng.Env().Set(key, value)
				return nil
			}),
			allow("CTX.apply"),
		},
		Else: []core.Action{g.deny("CTX.apply", "Context Update Rejected")},
	}); err != nil {
		return err
	}

	// CA1 (Rule 5): allow the operation iff some role in the session's
	// active role set has the permission. CacheSafe: both conditions
	// read only the store's published view for the request tuple, the
	// Then branch just votes, and the Else branch (denial recording)
	// only runs on the never-cached deny outcome.
	if err := pool.Add(core.Rule{
		Name: "CA1", On: EvCheckAccess,
		Class: core.ActivityControl, Granularity: core.Globalized,
		Scope: core.ScopeSession, CacheSafe: true,
		Tags: []string{TagGlobal, TagCritical},
		When: []core.Condition{
			core.BoolCond("sessionId IN sessionL", func(o *event.Occurrence) bool {
				return st.SessionExists(sessionOf(o))
			}),
			core.BoolCond("ForANY role IN getSessionRoles: checkPermissions(operation, object, role)",
				func(o *event.Occurrence) bool {
					return st.CheckAccess(sessionOf(o), permOf(o))
				}),
		},
		Then: []core.Action{allow("CA1")},
		Else: []core.Action{g.deny("CA1", "Permission Denied")},
	}); err != nil {
		return err
	}

	// CAP1: privacy-aware check access — core decision plus purpose
	// binding and consent.
	if err := pool.Add(core.Rule{
		Name: "CAP1", On: EvCheckPurposeAccess,
		Class: core.ActivityControl, Granularity: core.Globalized,
		Scope: core.ScopeSession,
		Tags: []string{TagGlobal, TagCritical},
		When: []core.Condition{
			core.BoolCond("sessionId IN sessionL", func(o *event.Occurrence) bool {
				return st.SessionExists(sessionOf(o))
			}),
			core.BoolCond("checkPermissions(operation, object, role)", func(o *event.Occurrence) bool {
				return st.CheckAccess(sessionOf(o), permOf(o))
			}),
			core.BoolCond("checkPurposeBinding(role, permission, purpose) AND consent", func(o *event.Occurrence) bool {
				purpose, _ := o.Params["purpose"].(string)
				_, ok := g.pa.CheckPurposeAccess(sessionOf(o), permOf(o), purpose)
				return ok
			}),
		},
		Then: []core.Action{allow("CAP1")},
		Else: []core.Action{g.deny("CAP1", "Permission Denied For Purpose")},
	}); err != nil {
		return err
	}

	// ADM rules: the administrative rule pool (paper scenario 3 — one
	// globalized rule controls all user-role assignments).
	if err := pool.Add(core.Rule{
		Name: "ADM.assignUser", On: EvAssignUser,
		Class: core.Administrative, Granularity: core.Globalized,
		Tags: []string{TagGlobal},
		When: []core.Condition{
			core.BoolCond("user IN userL", func(o *event.Occurrence) bool {
				return st.UserExists(userOf(o))
			}),
			core.BoolCond("role IN roleL", func(o *event.Occurrence) bool {
				return st.RoleExists(roleParam(o))
			}),
			core.BoolCond("role NOT IN assignedRoles(user)", func(o *event.Occurrence) bool {
				return !st.CheckAssigned(userOf(o), roleParam(o))
			}),
			core.BoolCond("checkSSDSet(user, role)", func(o *event.Occurrence) bool {
				return st.CheckSSDAssign(userOf(o), roleParam(o))
			}),
		},
		Then: []core.Action{
			core.Act("assignUser(user, role)", func(o *event.Occurrence) error {
				return st.RawAssignUser(userOf(o), roleParam(o))
			}),
			allow("ADM.assignUser"),
		},
		Else: []core.Action{g.deny("ADM.assignUser", "Assignment Denied")},
	}); err != nil {
		return err
	}

	if err := pool.Add(core.Rule{
		Name: "ADM.deassignUser", On: EvDeassignUser,
		Class: core.Administrative, Granularity: core.Globalized,
		Tags: []string{TagGlobal},
		When: []core.Condition{
			core.BoolCond("role IN assignedRoles(user)", func(o *event.Occurrence) bool {
				return st.CheckAssigned(userOf(o), roleParam(o))
			}),
		},
		Then: []core.Action{
			core.Act("deassignUser(user, role)", func(o *event.Occurrence) error {
				return st.DeassignUser(userOf(o), roleParam(o))
			}),
			allow("ADM.deassignUser"),
		},
		Else: []core.Action{g.deny("ADM.deassignUser", "Deassignment Denied")},
	}); err != nil {
		return err
	}

	if err := pool.Add(core.Rule{
		Name: "ADM.createSession", On: EvCreateSession,
		Class: core.Administrative, Granularity: core.Globalized,
		Scope: core.ScopeUser,
		Tags: []string{TagGlobal},
		When: []core.Condition{
			core.BoolCond("user IN userL", func(o *event.Occurrence) bool {
				return st.UserExists(userOf(o))
			}),
			core.BoolCond("user NOT locked", func(o *event.Occurrence) bool {
				return !st.UserLocked(userOf(o))
			}),
		},
		Then: []core.Action{
			core.Act("createSession(user)", func(o *event.Occurrence) error {
				sid, err := st.CreateSession(userOf(o))
				if err != nil {
					return err
				}
				if dec, ok := sentinel.DecisionOf(o); ok {
					dec.SetResult(string(sid))
					dec.Allow("ADM.createSession")
				}
				return nil
			}),
		},
		Else: []core.Action{g.deny("ADM.createSession", "Session Creation Denied")},
	}); err != nil {
		return err
	}

	return pool.Add(core.Rule{
		Name: "ADM.deleteSession", On: EvDeleteSession,
		Class: core.Administrative, Granularity: core.Globalized,
		Scope: core.ScopeSession,
		Tags: []string{TagGlobal},
		When: []core.Condition{
			core.BoolCond("sessionId IN sessionL", func(o *event.Occurrence) bool {
				return st.SessionExists(sessionOf(o))
			}),
		},
		Then: []core.Action{
			core.Act("deleteSession(sessionId)", func(o *event.Occurrence) error {
				sid := sessionOf(o)
				user, err := st.SessionUser(sid)
				if err != nil {
					return err
				}
				roles, err := st.SessionRoles(sid)
				if err != nil {
					return err
				}
				if err := st.DeleteSession(sid); err != nil {
					return err
				}
				// Notify per-role listeners (duration timers, Rule 9)
				// that the activations ended.
				for _, r := range roles {
					_ = g.eng.Detector().RaiseFrom(o, gtrbac.EvSessionRoleDropped, event.Params{
						"user": string(user), "session": string(sid),
						"role": string(r), "reason": "session-deleted",
					})
				}
				return nil
			}),
			allow("ADM.deleteSession"),
		},
		Else: []core.Action{g.deny("ADM.deleteSession", "Session Deletion Denied")},
	})
}

// generateRole emits the localized rules for one role, variant-selected
// from the access specification graph flags exactly as in Section 5:
// AAR1 for plain core roles, AAR2 with hierarchies, AAR3 with dynamic
// SoD, AAR4 with both; plus the deactivation rule, the cardinality rule
// (Rule 4) when bounded, the enable/disable rules (Rule 6) and the
// periodic shift schedule.
func (g *Generator) generateRole(role rbac.RoleID) error {
	node, ok := g.graph.Node(string(role))
	if !ok {
		return fmt.Errorf("rulegen: role %q not in graph", role)
	}
	det := g.eng.Detector()
	pool := g.eng.Pool()
	st := g.eng.Store()
	tag := TagRole(role)

	for _, ev := range []string{
		EvAddActiveRole(role), EvDropActiveRole(role), EvRoleActivated(role),
		EvEnableRole(role), EvDisableRole(role),
	} {
		if err := det.DefinePrimitive(ev); err != nil {
			return err
		}
	}

	// --- Activation rule AARn.role -----------------------------------
	variant := 1
	authDesc := fmt.Sprintf("checkAssigned%s(user) IS TRUE", role)
	authCond := func(o *event.Occurrence) bool { return st.CheckAssigned(userOf(o), role) }
	if node.Hierarchy {
		variant = 2
		authDesc = fmt.Sprintf("checkAuthorization%s(user) IS TRUE", role)
		authCond = func(o *event.Occurrence) bool { return st.CheckAuthorized(userOf(o), role) }
	}
	conds := []core.Condition{
		core.BoolCond("user IN userL", func(o *event.Occurrence) bool {
			return st.UserExists(userOf(o)) && !st.UserLocked(userOf(o))
		}),
		core.BoolCond("sessionId IN sessionL", func(o *event.Occurrence) bool {
			return st.SessionExists(sessionOf(o))
		}),
		core.BoolCond("sessionId IN checkUserSessions(user)", func(o *event.Occurrence) bool {
			return st.CheckUserSession(userOf(o), sessionOf(o))
		}),
		core.BoolCond(fmt.Sprintf("%s NOT IN checkSessionRoles(sessionId)", role), func(o *event.Occurrence) bool {
			return !st.CheckSessionRole(sessionOf(o), role)
		}),
		core.BoolCond(fmt.Sprintf("roleEnabled(%s)", role), func(o *event.Occurrence) bool {
			return st.RoleEnabled(role)
		}),
		core.Cond(authDesc, func(o *event.Occurrence) (bool, error) { return authCond(o), nil }),
	}
	if node.HasDynamicSoD() {
		if node.Hierarchy {
			variant = 4
		} else {
			variant = 3
		}
		conds = append(conds, core.BoolCond(
			fmt.Sprintf("checkDynamicSoDSet(user, %s) IS TRUE", role),
			func(o *event.Occurrence) bool {
				return st.CheckDynamicSoD(sessionOf(o), role)
			}))
	}
	if node.CFD {
		conds = append(conds, core.Cond(
			fmt.Sprintf("checkCFD(%s) IS TRUE", role),
			func(o *event.Occurrence) (bool, error) {
				if reason, ok := g.cf.CanActivate(sessionOf(o), role); !ok {
					return false, fmt.Errorf("rulegen: %s", reason)
				}
				return true, nil
			}))
	}
	// Context-aware constraints (pervasive-computing scenarios): the
	// environment must match every requirement to activate.
	var ctxReqs []policy.Context
	for _, c := range g.spec.Contexts {
		if c.Role == string(role) {
			ctxReqs = append(ctxReqs, c)
		}
	}
	for _, c := range ctxReqs {
		c := c
		conds = append(conds, core.BoolCond(
			fmt.Sprintf("context(%s == %s)", c.Key, c.Value),
			func(*event.Occurrence) bool {
				return g.eng.Env().Match(c.Key, c.Value)
			}))
	}
	aarName := fmt.Sprintf("AAR%d.%s", variant, role)
	// Activation touches only the requesting session's state, so it is
	// session-scoped — unless a condition reads cross-scope state (CFD
	// activation dependencies, environmental context), which pins the
	// rule (and with it the role's activation event) to the global lane.
	aarScope := core.ScopeSession
	if node.CFD || len(ctxReqs) > 0 {
		aarScope = core.ScopeGlobal
	}
	if err := pool.Add(core.Rule{
		Name: aarName, On: EvAddActiveRole(role),
		Class: core.ActivityControl, Granularity: core.Localized,
		Scope: aarScope,
		Tags:  []string{tag},
		When: conds,
		Then: []core.Action{
			core.Act(fmt.Sprintf("addSessionRole%s(sessionId)", role), func(o *event.Occurrence) error {
				return st.RawAddSessionRole(sessionOf(o), role)
			}),
			allow(aarName),
			core.Act(fmt.Sprintf("raise %s", EvRoleActivated(role)), func(o *event.Occurrence) error {
				return det.RaiseFrom(o, EvRoleActivated(role), o.Params)
			}),
			core.Act("raise "+gtrbac.EvSessionRoleAdded, func(o *event.Occurrence) error {
				p := o.Params.Clone()
				if p == nil {
					p = event.Params{}
				}
				p["role"] = string(role)
				return det.RaiseFrom(o, gtrbac.EvSessionRoleAdded, p)
			}),
		},
		Else: []core.Action{g.deny(aarName, "Access Denied Cannot Activate")},
	}); err != nil {
		return err
	}

	// --- Cardinality rule CC1.role (Rule 4) ---------------------------
	if node.Cardinality > 0 {
		limit := node.Cardinality
		ccName := fmt.Sprintf("CC1.%s", role)
		if err := pool.Add(core.Rule{
			Name: ccName, On: EvRoleActivated(role),
			Class: core.ActivityControl, Granularity: core.Localized,
			Tags: []string{tag},
			When: []core.Condition{
				core.BoolCond(fmt.Sprintf("Cardinality%s(INCR) <= %d", role, limit), func(*event.Occurrence) bool {
					return st.RoleActiveCount(role) <= limit
				}),
			},
			// Within the limit: the activation stands.
			Else: []core.Action{
				core.Act(fmt.Sprintf("removeSessionRole%s(sessionId)", role), func(o *event.Occurrence) error {
					// Roll the activation back; ignore a concurrent drop.
					_ = st.RawDropSessionRole(sessionOf(o), role)
					p := o.Params.Clone()
					p["role"] = string(role)
					p["reason"] = "cardinality-rollback"
					return det.RaiseFrom(o, gtrbac.EvSessionRoleDropped, p)
				}),
				g.deny(ccName, "Maximum Number of Roles Reached"),
			},
		}); err != nil {
			return err
		}
	}

	// --- Deactivation rule DAR.role -----------------------------------
	darName := fmt.Sprintf("DAR.%s", role)
	if err := pool.Add(core.Rule{
		Name: darName, On: EvDropActiveRole(role),
		Class: core.ActivityControl, Granularity: core.Localized,
		Scope: core.ScopeSession,
		Tags:  []string{tag},
		When: []core.Condition{
			core.BoolCond("sessionId IN checkUserSessions(user)", func(o *event.Occurrence) bool {
				return st.CheckUserSession(userOf(o), sessionOf(o))
			}),
			core.BoolCond(fmt.Sprintf("%s IN checkSessionRoles(sessionId)", role), func(o *event.Occurrence) bool {
				return st.CheckSessionRole(sessionOf(o), role)
			}),
		},
		Then: []core.Action{
			core.Act(fmt.Sprintf("removeSessionRole%s(sessionId)", role), func(o *event.Occurrence) error {
				return st.RawDropSessionRole(sessionOf(o), role)
			}),
			allow(darName),
			core.Act("raise "+gtrbac.EvSessionRoleDropped, func(o *event.Occurrence) error {
				p := o.Params.Clone()
				if p == nil {
					p = event.Params{}
				}
				p["role"] = string(role)
				return det.RaiseFrom(o, gtrbac.EvSessionRoleDropped, p)
			}),
		},
		Else: []core.Action{g.deny(darName, "Access Denied Cannot Deactivate")},
	}); err != nil {
		return err
	}

	// --- Enable / disable rules (Rule 6 surface) ----------------------
	enbName := fmt.Sprintf("ENB.%s", role)
	if err := pool.Add(core.Rule{
		Name: enbName, On: EvEnableRole(role),
		Class: core.Administrative, Granularity: core.Localized,
		Tags: []string{tag},
		Then: []core.Action{
			core.Act(fmt.Sprintf("enableRole%s()", role), func(*event.Occurrence) error {
				return g.gt.EnableRole(role)
			}),
			allow(enbName),
		},
	}); err != nil {
		return err
	}
	tsodName := fmt.Sprintf("TSOD1.%s", role)
	if err := pool.Add(core.Rule{
		Name: tsodName, On: EvDisableRole(role),
		Class: core.ActivityControl, Granularity: core.Localized,
		Tags: []string{tag},
		When: []core.Condition{
			core.BoolCond(fmt.Sprintf("checkTimeSoD(%s) IS TRUE", role), func(*event.Occurrence) bool {
				_, ok := g.gt.CanDisable(role)
				return ok
			}),
		},
		Then: []core.Action{
			core.Act(fmt.Sprintf("disableRole%s()", role), func(*event.Occurrence) error {
				return g.gt.DisableRole(role)
			}),
			allow(tsodName),
		},
		Else: []core.Action{g.deny(tsodName, "Denied as Partner Role Already Disabled")},
	}); err != nil {
		return err
	}

	// --- Context rule: revoke activations when the environment moves
	// away from a requirement (the paper's "when a user moves from one
	// location to another, external events can trigger rules that
	// activate/deactivate roles").
	if len(ctxReqs) > 0 {
		reqs := ctxReqs
		ctxName := fmt.Sprintf("CTX.%s", role)
		if err := pool.Add(core.Rule{
			Name: ctxName, On: EvContextUpdate,
			Class: core.ActiveSecurity, Granularity: core.Localized,
			Tags: []string{tag},
			When: []core.Condition{
				core.BoolCond(fmt.Sprintf("contextViolated(%s)", role), func(o *event.Occurrence) bool {
					key, _ := o.Params["key"].(string)
					for _, c := range reqs {
						if c.Key == key && !g.eng.Env().Match(c.Key, c.Value) {
							return true
						}
					}
					return false
				}),
			},
			Then: []core.Action{
				core.Act(fmt.Sprintf("deactivate %s everywhere", role), func(o *event.Occurrence) error {
					for _, sid := range st.SessionsWithRole(role) {
						user, err := st.SessionUser(sid)
						if err != nil {
							continue
						}
						if err := st.RawDropSessionRole(sid, role); err != nil {
							continue
						}
						_ = det.RaiseFrom(o, gtrbac.EvSessionRoleDropped, event.Params{
							"user": string(user), "session": string(sid),
							"role": string(role), "reason": "context-changed",
						})
					}
					return nil
				}),
			},
		}); err != nil {
			return err
		}
	}

	// --- Periodic shift ------------------------------------------------
	for _, sh := range g.spec.Shifts {
		if sh.Role != string(role) {
			continue
		}
		id, err := g.gt.SchedulePeriodic(role, sh.Window())
		if err != nil {
			return err
		}
		g.schedules[role] = id
	}
	return nil
}

// generateSpecializedRules emits per-user rules — the paper's scenario 1
// ("user Jane should be restricted to a maximum of five active roles").
// The bound is enforced like the cardinality rule: triggered by the
// session lifecycle event, rolling the activation back when the budget
// is exceeded.
func (g *Generator) generateSpecializedRules(spec *policy.Spec) error {
	pool := g.eng.Pool()
	st := g.eng.Store()
	det := g.eng.Detector()
	for _, m := range spec.MaxRoles {
		m := m
		user := rbac.UserID(m.User)
		name := fmt.Sprintf("SPEC.maxroles.%s", m.User)
		if err := pool.Add(core.Rule{
			Name: name, On: gtrbac.EvSessionRoleAdded,
			Class: core.ActivityControl, Granularity: core.Specialized,
			Scope: core.ScopeUser,
			Tags:  []string{TagUser(user)},
			When: []core.Condition{
				core.BoolCond(fmt.Sprintf("user != %s OR activeRoles <= %d", m.User, m.N), func(o *event.Occurrence) bool {
					if userOf(o) != user {
						return true
					}
					roles, err := st.SessionRoles(sessionOf(o))
					return err == nil && len(roles) <= m.N
				}),
			},
			Else: []core.Action{
				core.Act("removeSessionRole(sessionId)", func(o *event.Occurrence) error {
					role := roleParam(o)
					_ = st.RawDropSessionRole(sessionOf(o), role)
					p := o.Params.Clone()
					p["reason"] = "maxroles-rollback"
					return det.RaiseFrom(o, gtrbac.EvSessionRoleDropped, p)
				}),
				g.deny(name, "Maximum Number of Active Roles Reached"),
			},
		}); err != nil {
			return err
		}
	}
	return nil
}

func roleParam(o *event.Occurrence) rbac.RoleID {
	s, _ := o.Params["role"].(string)
	return rbac.RoleID(s)
}
