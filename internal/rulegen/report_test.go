package rulegen

import (
	"testing"
	"time"
)

const reportPolicy = `
policy "monitored"
role Staff
user u: Staff
permission Staff: read doc
report hourly every 1h
`

func TestPeriodicReports(t *testing.T) {
	g, sim := loadPolicy(t, reportPolicy)
	var got []SystemReport
	g.OnReport(func(r SystemReport) { got = append(got, r) })

	sid := newSession(t, g, "u")
	activateReq(t, g, "u", sid, "Staff")

	sim.Advance(3*time.Hour + time.Minute)
	if len(got) != 3 {
		t.Fatalf("reports = %d, want 3 (hourly over 3h)", len(got))
	}
	for i, r := range got {
		if r.Name != "hourly" || r.Tick != i+1 {
			t.Fatalf("report %d = %+v", i, r)
		}
		if r.Rules == 0 || r.Users != 1 || r.Sessions != 1 {
			t.Fatalf("report content %+v", r)
		}
		want := t0.Add(time.Duration(i+1) * time.Hour)
		if !r.At.Equal(want) {
			t.Fatalf("report %d at %v, want %v", i, r.At, want)
		}
	}
	if got[0].String() == "" {
		t.Fatal("empty String")
	}
}

func TestReportCountsDenials(t *testing.T) {
	g, sim := loadPolicy(t, reportPolicy)
	var got []SystemReport
	g.OnReport(func(r SystemReport) { got = append(got, r) })
	sid := newSession(t, g, "u")
	// Two denied checks before the first tick.
	bad := map[string]any{"user": "u", "session": sid, "operation": "x", "object": "y"}
	decide(t, g, EvCheckAccess, bad)
	decide(t, g, EvCheckAccess, bad)
	sim.Advance(time.Hour + time.Second)
	if len(got) != 1 || got[0].Denials != 2 {
		t.Fatalf("reports = %+v, want 1 report with 2 denials", got)
	}
}

func TestReportRescheduleViaApply(t *testing.T) {
	g, sim := loadPolicy(t, reportPolicy)
	var got []SystemReport
	g.OnReport(func(r SystemReport) { got = append(got, r) })

	// Tighten the schedule to every 10 minutes.
	apply(t, g, `
policy "monitored"
role Staff
user u: Staff
permission Staff: read doc
report hourly every 10m
`)
	sim.Advance(time.Hour + time.Second)
	// New cadence: 6 ticks in the hour; the old hourly schedule is
	// stopped (not 7).
	if len(got) != 6 {
		t.Fatalf("reports = %d, want 6 after reschedule", len(got))
	}

	// Remove the report entirely.
	apply(t, g, `
policy "monitored"
role Staff
user u: Staff
permission Staff: read doc
`)
	before := len(got)
	sim.Advance(2 * time.Hour)
	if len(got) != before {
		t.Fatalf("reports kept ticking after removal: %d -> %d", before, len(got))
	}
}

func TestReportAddedViaApply(t *testing.T) {
	g, sim := loadPolicy(t, `
policy "quiet"
role Staff
user u: Staff
`)
	var got []SystemReport
	g.OnReport(func(r SystemReport) { got = append(got, r) })
	sim.Advance(time.Hour)
	if len(got) != 0 {
		t.Fatal("reports without a report statement")
	}
	apply(t, g, `
policy "quiet"
role Staff
user u: Staff
report pulse every 30m
`)
	sim.Advance(time.Hour + time.Second)
	if len(got) != 2 {
		t.Fatalf("reports = %d, want 2", len(got))
	}
}
