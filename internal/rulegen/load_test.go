package rulegen

import (
	"fmt"
	"testing"

	"activerbac/internal/event"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
	"activerbac/internal/workload"
)

// Randomized load test: every enterprise the workload generator emits
// must load, serve a mixed request stream, and come out with clean
// store invariants and a verifiable rule pool. This ties the generator,
// the policy pipeline, the rule generator and the enforcement path
// together under varied shapes.
func TestLoadGeneratedEnterprises(t *testing.T) {
	for _, shape := range []workload.Shape{workload.Flat, workload.Chain, workload.Tree, workload.XYZShape} {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", shape, seed), func(t *testing.T) {
				spec := workload.MustEnterprise(workload.EnterpriseConfig{
					Roles: 24, Shape: shape, Branch: 3,
					SSDFraction: 0.5, DSDFraction: 0.5,
					Users: 30, PermsPerRole: 2, CardinalityEvery: 5, Seed: seed,
				})
				g, _ := loadPolicy(t, policy.Format(spec))
				if errs := g.Verify(); len(errs) != 0 {
					t.Fatalf("Verify: %v", errs)
				}

				// Drive a mixed stream through the request events.
				reqs := workload.Stream(spec, workload.DefaultMix, 600, seed*13+1)
				sessions := map[rbac.UserID]string{}
				for _, r := range reqs {
					sid, ok := sessions[r.User]
					if !ok {
						dec := decide(t, g, EvCreateSession, event.Params{"user": string(r.User)})
						if !dec.Allowed() {
							t.Fatalf("createSession(%s): %s", r.User, dec.Reason())
						}
						sid, _ = dec.Result().(string)
						sessions[r.User] = sid
					}
					p := event.Params{"user": string(r.User), "session": sid}
					switch r.Kind {
					case workload.Activate:
						decide(t, g, EvAddActiveRole(r.Role), p)
					case workload.Drop:
						decide(t, g, EvDropActiveRole(r.Role), p)
					case workload.CheckAccess:
						p["operation"], p["object"] = r.Operation, r.Object
						decide(t, g, EvCheckAccess, p)
					case workload.Assign:
						decide(t, g, EvAssignUser, event.Params{"user": string(r.User), "role": string(r.Role)})
					case workload.Deassign:
						decide(t, g, EvDeassignUser, event.Params{"user": string(r.User), "role": string(r.Role)})
					}
				}

				if errs := g.Engine().Store().CheckInvariants(); len(errs) != 0 {
					t.Fatalf("invariants after stream: %v", errs)
				}
				if errs := g.Verify(); len(errs) != 0 {
					t.Fatalf("Verify after stream: %v", errs)
				}
			})
		}
	}
}
