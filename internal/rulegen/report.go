package rulegen

import (
	"fmt"
	"sync"
	"time"

	"activerbac/internal/core"
	"activerbac/internal/event"
	"activerbac/internal/policy"
)

// Periodic monitoring reports — the paper's stated use of the PERIODIC
// operator: "This event operator can be used to periodically monitor
// the underlying system and generate reports." A `report NAME every
// DUR` policy statement compiles into a PERIODIC composite event; the
// generated RPT rule fires on every tick and delivers a snapshot of
// the engine's counters to registered listeners.

// SystemReport is one periodic monitoring snapshot.
type SystemReport struct {
	// Name is the report's policy name; Tick counts deliveries since
	// the report started.
	Name string
	Tick int
	// At is the engine-clock instant of the tick.
	At time.Time
	// Rules / Users / Roles / Sessions are pool and store sizes.
	Rules, Users, Roles, Sessions int
	// Detections is the cumulative event count; Denials the cumulative
	// denial count; Alerts the active-security alerts fired so far.
	Detections uint64
	Denials    uint64
	Alerts     int
}

// String renders the report for logs.
func (r SystemReport) String() string {
	return fmt.Sprintf("[%s] report %q #%d: rules=%d sessions=%d detections=%d denials=%d alerts=%d",
		r.At.Format("15:04:05"), r.Name, r.Tick, r.Rules, r.Sessions, r.Detections, r.Denials, r.Alerts)
}

// reportState tracks one installed report schedule.
type reportState struct {
	spec    policy.ReportSpec
	version int
	ticks   int
}

// OnReport registers a listener for every periodic report tick.
// Listeners run on the detector's drain goroutine and must not block.
func (g *Generator) OnReport(fn func(SystemReport)) {
	g.repMu.Lock()
	defer g.repMu.Unlock()
	g.repListeners = append(g.repListeners, fn)
}

// reportPlumbing is embedded in Generator.
type reportPlumbing struct {
	repMu        sync.Mutex
	repListeners []func(SystemReport)
	reports      map[string]*reportState
	repVersion   int
}

// startReport wires one report schedule: a PERIODIC composite over
// per-report start/stop events, and the RPT rule on its ticks. Event
// names are versioned because composite events cannot be undefined when
// a report is rescheduled.
func (g *Generator) startReport(spec policy.ReportSpec) error {
	g.repMu.Lock()
	if g.reports == nil {
		g.reports = make(map[string]*reportState)
	}
	g.repVersion++
	st := &reportState{spec: spec, version: g.repVersion}
	g.reports[spec.Name] = st
	g.repMu.Unlock()

	det := g.eng.Detector()
	startEv := fmt.Sprintf("report.start.%s.v%d", spec.Name, st.version)
	stopEv := fmt.Sprintf("report.stop.%s.v%d", spec.Name, st.version)
	tickEv := fmt.Sprintf("report.tick.%s.v%d", spec.Name, st.version)
	if err := det.DefinePrimitive(startEv); err != nil {
		return err
	}
	if err := det.DefinePrimitive(stopEv); err != nil {
		return err
	}
	if err := det.Define(tickEv, event.Periodic(event.NameExpr(startEv), spec.Every, event.NameExpr(stopEv))); err != nil {
		return err
	}
	name := spec.Name
	if err := g.eng.Pool().Add(core.Rule{
		Name: fmt.Sprintf("RPT.%s.v%d", spec.Name, st.version), On: tickEv,
		Class: core.ActiveSecurity, Granularity: core.Globalized,
		Tags: []string{TagGlobal, "report:" + spec.Name},
		Then: []core.Action{
			core.Act("generate report "+spec.Name, func(*event.Occurrence) error {
				g.emitReport(name, st)
				return nil
			}),
		},
	}); err != nil {
		return err
	}
	return det.Raise(startEv, nil)
}

// stopReport terminates a report's PERIODIC window and removes its rule.
func (g *Generator) stopReport(name string) error {
	g.repMu.Lock()
	st, ok := g.reports[name]
	if ok {
		delete(g.reports, name)
	}
	g.repMu.Unlock()
	if !ok {
		return fmt.Errorf("rulegen: report %q not installed", name)
	}
	g.eng.Pool().RemoveByTag("report:" + name)
	stopEv := fmt.Sprintf("report.stop.%s.v%d", name, st.version)
	return g.eng.Detector().Raise(stopEv, nil)
}

// emitReport snapshots the engine and delivers to listeners.
func (g *Generator) emitReport(name string, st *reportState) {
	g.repMu.Lock()
	st.ticks++
	tick := st.ticks
	listeners := make([]func(SystemReport), len(g.repListeners))
	copy(listeners, g.repListeners)
	g.repMu.Unlock()

	es := g.eng.Detector().Stats()
	c := g.eng.Store().Count()
	rep := SystemReport{
		Name: name, Tick: tick, At: g.eng.Clock().Now(),
		Rules: g.eng.Pool().Len(), Users: c.Users, Roles: c.Roles, Sessions: c.Sessions,
		Detections: es.Detected,
		Denials:    g.mon.Denials(),
		Alerts:     len(g.mon.Alerts()),
	}
	for _, fn := range listeners {
		fn(rep)
	}
}

// applyReports installs report schedules at Load time.
func (g *Generator) applyReports(spec *policy.Spec) error {
	for _, r := range spec.Reports {
		if err := g.startReport(r); err != nil {
			return err
		}
	}
	return nil
}

// diffReports transitions report schedules during Apply.
func (g *Generator) diffReports(old, new *policy.Spec) error {
	oldM := make(map[string]policy.ReportSpec, len(old.Reports))
	for _, r := range old.Reports {
		oldM[r.Name] = r
	}
	newM := make(map[string]policy.ReportSpec, len(new.Reports))
	for _, r := range new.Reports {
		newM[r.Name] = r
	}
	for name, r := range oldM {
		if nr, ok := newM[name]; ok && nr.Every == r.Every {
			continue
		}
		if err := g.stopReport(name); err != nil {
			return err
		}
	}
	for name, r := range newM {
		if or, ok := oldM[name]; ok && or.Every == r.Every {
			continue
		}
		if err := g.startReport(r); err != nil {
			return err
		}
	}
	return nil
}
