package rulegen

import (
	"fmt"
	"sort"
	"strings"

	"activerbac/internal/policy"
	"activerbac/internal/rbac"
)

// Regeneration — the paper's Section 5 manageability claim: "when there
// is a change in the policy ... it can be easily changed in the high
// level specification and the corresponding rules can be regenerated
// ... without burdening the administrator".
//
// Apply diffs the new spec against the loaded one, edits exactly the
// affected state, removes exactly the affected rules (by tag) and
// regenerates them from the new access specification graph. RebuildAll
// is the heavyweight alternative used as the comparison point in
// experiment E4.

// Report summarizes one Apply.
type Report struct {
	// RolesAdded / RolesRemoved / RolesRegenerated list the roles whose
	// rule sets changed.
	RolesAdded, RolesRemoved, RolesRegenerated []string
	// UsersAdded / UsersRemoved list user-set changes.
	UsersAdded, UsersRemoved []string
	// RulesRemoved / RulesAdded count rule-pool mutations.
	RulesRemoved, RulesAdded int
}

// Touched reports how many roles the regeneration had to visit — the
// incremental-cost metric of experiment E4.
func (r Report) Touched() int {
	return len(r.RolesAdded) + len(r.RolesRemoved) + len(r.RolesRegenerated)
}

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf("regenerated=%d added=%d removed=%d rules(-%d/+%d)",
		len(r.RolesRegenerated), len(r.RolesAdded), len(r.RolesRemoved),
		r.RulesRemoved, r.RulesAdded)
}

// Apply transitions the engine from the loaded policy to newSpec,
// regenerating only what the diff touches. On error the engine may be
// partially transitioned; callers treat Apply errors as fatal for the
// engine instance (build a fresh one with Load).
func (g *Generator) Apply(newSpec *policy.Spec) (Report, error) {
	var rep Report
	if !g.loaded {
		return rep, fmt.Errorf("rulegen: no policy loaded; call Load first")
	}
	if issues := policy.Check(newSpec); policy.HasErrors(issues) {
		return rep, fmt.Errorf("rulegen: new policy has errors: %v", issues)
	}
	newGraph, err := policy.BuildGraph(newSpec)
	if err != nil {
		return rep, err
	}
	old := g.spec
	st := g.eng.Store()
	pool := g.eng.Pool()

	oldRoles := old.RoleSet()
	newRoles := newSpec.RoleSet()

	// ---- Role set changes -------------------------------------------
	for _, r := range old.Roles {
		if !newRoles[r] {
			rep.RolesRemoved = append(rep.RolesRemoved, r)
		}
	}
	for _, r := range newSpec.Roles {
		if !oldRoles[r] {
			rep.RolesAdded = append(rep.RolesAdded, r)
		}
	}

	// ---- Global relation diffs (state only) --------------------------
	// Hierarchy edges.
	oldEdges := edgeSet(old.Hierarchy)
	newEdges := edgeSet(newSpec.Hierarchy)
	for e := range oldEdges {
		if !newEdges[e] && newRoles[e.Senior] && newRoles[e.Junior] {
			if err := st.DeleteInheritance(rbac.RoleID(e.Senior), rbac.RoleID(e.Junior)); err != nil {
				return rep, err
			}
		}
	}
	// SoD sets: delete removed or modified ones now, while the roles
	// they reference may still exist. Creation waits until after role
	// additions — a new set may reference a role this same apply
	// introduces (the common case when a replica installs a full policy
	// over an empty bootstrap system).
	ssdCreates, err := diffSoDSets(old.SSD, newSpec.SSD, st.DeleteSSD)
	if err != nil {
		return rep, err
	}
	dsdCreates, err := diffSoDSets(old.DSD, newSpec.DSD, st.DeleteDSD)
	if err != nil {
		return rep, err
	}

	// Remove state for removed roles (also detaches their SoD and
	// hierarchy remnants) and their rules.
	for _, r := range rep.RolesRemoved {
		role := rbac.RoleID(r)
		if id, ok := g.schedules[role]; ok {
			if err := g.gt.CancelSchedule(id); err != nil {
				return rep, err
			}
			delete(g.schedules, role)
		}
		rep.RulesRemoved += pool.RemoveByTag(TagRole(role))
		if err := st.DeleteRole(role); err != nil {
			return rep, err
		}
	}
	// Add state for added roles.
	for _, r := range rep.RolesAdded {
		if err := st.AddRole(rbac.RoleID(r)); err != nil {
			return rep, err
		}
		if err := g.gt.RegisterRole(rbac.RoleID(r)); err != nil {
			return rep, err
		}
	}
	// New hierarchy edges (after role additions).
	for e := range newEdges {
		if !oldEdges[e] {
			if err := st.AddInheritance(rbac.RoleID(e.Senior), rbac.RoleID(e.Junior)); err != nil {
				return rep, err
			}
		}
	}
	// (Re)create changed SoD sets, now that added roles exist.
	for _, s := range ssdCreates {
		if err := st.CreateSSD(toSoDSet(s)); err != nil {
			return rep, err
		}
	}
	for _, s := range dsdCreates {
		if err := st.CreateDSD(toSoDSet(s)); err != nil {
			return rep, err
		}
	}

	// Permissions diff.
	oldPerms := permSet(old.Permissions)
	newPerms := permSet(newSpec.Permissions)
	for p := range oldPerms {
		if !newPerms[p] && newRoles[p.Role] {
			if err := st.RevokePermission(rbac.RoleID(p.Role), rbac.Permission{Operation: p.Operation, Object: p.Object}); err != nil {
				return rep, err
			}
		}
	}
	for p := range newPerms {
		if !oldPerms[p] {
			if err := st.GrantPermission(rbac.RoleID(p.Role), rbac.Permission{Operation: p.Operation, Object: p.Object}); err != nil {
				return rep, err
			}
		}
	}

	// Time SoDs: recreate changed.
	oldTS := timeSoDMap(old.TimeSoDs)
	newTS := timeSoDMap(newSpec.TimeSoDs)
	for name, ts := range oldTS {
		if nts, ok := newTS[name]; ok && timeSoDFp(nts) == timeSoDFp(ts) {
			continue
		}
		if err := g.gt.RemoveDisablingTimeSoD(name); err != nil {
			return rep, err
		}
	}
	for name, ts := range newTS {
		if ots, ok := oldTS[name]; ok && timeSoDFp(ots) == timeSoDFp(ts) {
			continue
		}
		roles := make([]rbac.RoleID, len(ts.Roles))
		for i, r := range ts.Roles {
			roles[i] = rbac.RoleID(r)
		}
		if err := g.gt.AddDisablingTimeSoD(name, roles, ts.Window()); err != nil {
			return rep, err
		}
	}

	// CFD diffs.
	oldCouples, newCouples := coupleSet(old.Couples), coupleSet(newSpec.Couples)
	for c := range oldCouples {
		if !newCouples[c] && newRoles[c.Lead] && newRoles[c.Follow] {
			if err := g.cf.RemoveCouple(rbac.RoleID(c.Lead), rbac.RoleID(c.Follow)); err != nil {
				return rep, err
			}
		}
	}
	for c := range newCouples {
		if !oldCouples[c] {
			if err := g.cf.CoupleEnable(rbac.RoleID(c.Lead), rbac.RoleID(c.Follow)); err != nil {
				return rep, err
			}
		}
	}
	oldReq, newReq := requireMap(old.Requires), requireMap(newSpec.Requires)
	for dep, req := range oldReq {
		if newReq[dep] != req && newRoles[dep] {
			if err := g.cf.RemoveActivationDependency(rbac.RoleID(dep)); err != nil {
				return rep, err
			}
		}
	}
	for dep, req := range newReq {
		if oldReq[dep] != req {
			if err := g.cf.AddActivationDependency(rbac.RoleID(dep), rbac.RoleID(req)); err != nil {
				return rep, err
			}
		}
	}
	oldPre, newPre := prereqSet(old.Prereqs), prereqSet(newSpec.Prereqs)
	for p := range oldPre {
		if !newPre[p] && newRoles[p.Role] && newRoles[p.Prereq] {
			if err := g.cf.RemovePrerequisite(rbac.RoleID(p.Role), rbac.RoleID(p.Prereq)); err != nil {
				return rep, err
			}
		}
	}
	for p := range newPre {
		if !oldPre[p] {
			if err := g.cf.AddPrerequisite(rbac.RoleID(p.Role), rbac.RoleID(p.Prereq)); err != nil {
				return rep, err
			}
		}
	}

	// Privacy: purposes are append-only across regenerations.
	oldPurp := purposeSet(old.Purposes)
	for _, p := range old.Purposes {
		if !purposeSet(newSpec.Purposes)[p.Name+"<"+p.Parent] {
			return rep, fmt.Errorf("rulegen: purpose %q removed or reparented; purposes are append-only, rebuild the engine", p.Name)
		}
	}
	for _, p := range newSpec.Purposes {
		if !oldPurp[p.Name+"<"+p.Parent] {
			if err := g.pa.AddPurpose(p.Name, p.Parent); err != nil {
				return rep, err
			}
		}
	}
	oldBind, newBind := bindingSet(old.Bindings), bindingSet(newSpec.Bindings)
	for b := range oldBind {
		if !newBind[b] && newRoles[b.Role] {
			if err := g.pa.UnbindPurpose(rbac.RoleID(b.Role),
				rbac.Permission{Operation: b.Operation, Object: b.Object}, b.Purpose); err != nil {
				return rep, err
			}
		}
	}
	for b := range newBind {
		if !oldBind[b] {
			if err := g.pa.BindPurpose(rbac.RoleID(b.Role),
				rbac.Permission{Operation: b.Operation, Object: b.Object}, b.Purpose); err != nil {
				return rep, err
			}
		}
	}
	oldConsent, newConsent := stringSet(old.ConsentRequired), stringSet(newSpec.ConsentRequired)
	for obj := range oldConsent {
		if !newConsent[obj] {
			g.pa.SetConsentRequired(obj, false)
		}
	}
	for obj := range newConsent {
		if !oldConsent[obj] {
			g.pa.SetConsentRequired(obj, true)
		}
	}

	// Thresholds: recreate changed.
	oldTh, newTh := thresholdMap(old.Thresholds), thresholdMap(newSpec.Thresholds)
	for name, th := range oldTh {
		if nth, ok := newTh[name]; ok && nth == th {
			continue
		}
		if err := g.mon.RemoveThreshold(name); err != nil {
			return rep, err
		}
	}
	for name, th := range newTh {
		if oth, ok := oldTh[name]; ok && oth == th {
			continue
		}
		if err := g.mon.AddThreshold(th.Name, th.Count, th.Window, th.Action); err != nil {
			return rep, err
		}
	}

	// ---- Users --------------------------------------------------------
	oldUsers := userMap(old.Users)
	newUsers := userMap(newSpec.Users)
	for name := range oldUsers {
		if _, ok := newUsers[name]; !ok {
			rep.UsersRemoved = append(rep.UsersRemoved, name)
			rep.RulesRemoved += pool.RemoveByTag(TagUser(rbac.UserID(name)))
			if err := st.DeleteUser(rbac.UserID(name)); err != nil {
				return rep, err
			}
		}
	}
	for name, u := range newUsers {
		ou, existed := oldUsers[name]
		if !existed {
			rep.UsersAdded = append(rep.UsersAdded, name)
			if err := st.AddUser(rbac.UserID(name)); err != nil {
				return rep, err
			}
		}
		oldAssigned := stringSet(ou.Roles)
		newAssigned := stringSet(u.Roles)
		for r := range oldAssigned {
			if !newAssigned[r] && newRoles[r] {
				if err := st.DeassignUser(rbac.UserID(name), rbac.RoleID(r)); err != nil {
					return rep, err
				}
			}
		}
		for r := range newAssigned {
			if !oldAssigned[r] {
				if err := st.AssignUser(rbac.UserID(name), rbac.RoleID(r)); err != nil {
					return rep, err
				}
			}
		}
	}
	// MaxRoles: regenerate specialized rules when changed.
	oldMax, newMax := maxRolesMap(old.MaxRoles), maxRolesMap(newSpec.MaxRoles)
	maxChanged := false
	for u, n := range oldMax {
		if newMax[u] != n {
			maxChanged = true
			if err := st.SetUserMaxActiveRoles(rbac.UserID(u), newMax[u]); err != nil && newMax[u] != 0 {
				return rep, err
			}
		}
	}
	for u, n := range newMax {
		if oldMax[u] != n {
			maxChanged = true
			if !st.UserExists(rbac.UserID(u)) {
				if err := st.AddUser(rbac.UserID(u)); err != nil {
					return rep, err
				}
			}
			if err := st.SetUserMaxActiveRoles(rbac.UserID(u), n); err != nil {
				return rep, err
			}
		}
	}
	// Durations feed the temporal manager directly.
	oldDur, newDur := durationMap(old.Durations), durationMap(newSpec.Durations)
	for k := range oldDur {
		if _, ok := newDur[k]; !ok && newRoles[k.Role] {
			u := rbac.UserID(k.User)
			if k.User == "*" {
				u = ""
			}
			if err := g.gt.SetActivationDuration(u, rbac.RoleID(k.Role), 0); err != nil {
				return rep, err
			}
		}
	}
	for k, d := range newDur {
		if oldDur[k] != d {
			u := rbac.UserID(k.User)
			if k.User == "*" {
				u = ""
			}
			if err := g.gt.SetActivationDuration(u, rbac.RoleID(k.Role), d.D); err != nil {
				return rep, err
			}
		}
	}

	// Reports: stop removed/changed schedules, start new ones.
	if err := g.diffReports(old, newSpec); err != nil {
		return rep, err
	}

	// ---- Regenerate rules for changed roles ---------------------------
	g.spec, g.graph = newSpec, newGraph
	oldFp := fingerprints(old)
	newFp := fingerprints(newSpec)
	for _, r := range newSpec.Roles {
		role := rbac.RoleID(r)
		if !oldRoles[r] {
			before := pool.Len()
			if err := g.generateRole(role); err != nil {
				return rep, err
			}
			rep.RulesAdded += pool.Len() - before
			continue
		}
		if oldFp[r] == newFp[r] {
			continue
		}
		rep.RolesRegenerated = append(rep.RolesRegenerated, r)
		// Update role-scoped store knobs, drop old rules and schedule,
		// regenerate from the new graph.
		if id, ok := g.schedules[role]; ok {
			if err := g.gt.CancelSchedule(id); err != nil {
				return rep, err
			}
			delete(g.schedules, role)
		}
		rep.RulesRemoved += pool.RemoveByTag(TagRole(role))
		card := 0
		for _, c := range newSpec.Cardinalities {
			if c.Role == r {
				card = c.N
			}
		}
		if err := st.SetRoleCardinality(role, card); err != nil {
			return rep, err
		}
		before := pool.Len()
		if err := g.generateRole(role); err != nil {
			return rep, err
		}
		rep.RulesAdded += pool.Len() - before
	}
	// Regenerate specialized rules if any maxroles entry changed.
	if maxChanged {
		for u := range oldMax {
			rep.RulesRemoved += pool.RemoveByTag(TagUser(rbac.UserID(u)))
		}
		for u := range newMax {
			rep.RulesRemoved += pool.RemoveByTag(TagUser(rbac.UserID(u)))
		}
		before := pool.Len()
		if err := g.generateSpecializedRules(newSpec); err != nil {
			return rep, err
		}
		rep.RulesAdded += pool.Len() - before
	}

	sort.Strings(rep.RolesAdded)
	sort.Strings(rep.RolesRemoved)
	sort.Strings(rep.RolesRegenerated)
	return rep, nil
}

// fingerprints summarizes, per role, everything that affects its
// generated rules; two specs with equal fingerprints for a role need no
// regeneration for it. Computed in one pass over the spec (plus one
// upward walk per SoD member for flag propagation), so incremental
// regeneration stays cheap on large enterprises.
//
// A role's rules depend on: its direct hierarchy edges (the Hierarchy
// flag), the SoD sets visible from it through the junior closure (the
// AAR variant — conditions consult live store state at runtime, so
// deeper structure does not change rule *content*), its cardinality,
// shift, durations, time SoDs, and CFD constraints.
func fingerprints(s *policy.Spec) map[string]string {
	parts := make(map[string][]string, len(s.Roles))
	add := func(role, item string) {
		parts[role] = append(parts[role], item)
	}

	seniors := make(map[string][]string, len(s.Hierarchy))
	for _, e := range s.Hierarchy {
		item := "h:" + e.Senior + ">" + e.Junior
		add(e.Senior, item)
		add(e.Junior, item)
		seniors[e.Junior] = append(seniors[e.Junior], e.Senior)
	}

	// SoD sets mark every member and propagate to all ancestors.
	markUp := func(start, item string) {
		seen := map[string]bool{start: true}
		stack := []string{start}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			add(cur, item)
			for _, sr := range seniors[cur] {
				if !seen[sr] {
					seen[sr] = true
					stack = append(stack, sr)
				}
			}
		}
	}
	for _, set := range s.SSD {
		item := fmt.Sprintf("ssd:%s:%d:%v", set.Name, set.N, set.Roles)
		for _, r := range set.Roles {
			markUp(r, item)
		}
	}
	for _, set := range s.DSD {
		item := fmt.Sprintf("dsd:%s:%d:%v", set.Name, set.N, set.Roles)
		for _, r := range set.Roles {
			markUp(r, item)
		}
	}

	for _, c := range s.Cardinalities {
		add(c.Role, fmt.Sprintf("card:%d", c.N))
	}
	for _, sh := range s.Shifts {
		add(sh.Role, fmt.Sprintf("shift:%s-%s", sh.Start, sh.Stop))
	}
	for _, d := range s.Durations {
		add(d.Role, fmt.Sprintf("dur:%s:%s", d.User, d.D))
	}
	for _, ts := range s.TimeSoDs {
		item := fmt.Sprintf("tsod:%s:%s-%s:%v", ts.Name, ts.Start, ts.Stop, ts.Roles)
		for _, r := range ts.Roles {
			add(r, item)
		}
	}
	for _, c := range s.Couples {
		item := "couple:" + c.Lead + ">" + c.Follow
		add(c.Lead, item)
		add(c.Follow, item)
	}
	for _, rq := range s.Requires {
		item := "req:" + rq.Dependent + ":" + rq.Required
		add(rq.Dependent, item)
		add(rq.Required, item)
	}
	for _, p := range s.Prereqs {
		item := "pre:" + p.Role + ":" + p.Prereq
		add(p.Role, item)
		add(p.Prereq, item)
	}
	for _, c := range s.Contexts {
		add(c.Role, "ctx:"+c.Key+"="+c.Value)
	}

	out := make(map[string]string, len(s.Roles))
	for _, r := range s.Roles {
		items := parts[r]
		sort.Strings(items)
		out[r] = strings.Join(items, ";")
	}
	return out
}

// diffSoDSets deletes removed or modified SoD relations and returns
// the new or modified ones still to create — the caller creates them
// only after role additions have landed, since a changed set may
// reference a role the same apply introduces.
func diffSoDSets(old, new []policy.SoD, del func(string) error) ([]policy.SoD, error) {
	fp := func(s policy.SoD) string { return fmt.Sprintf("%d|%v", s.N, s.Roles) }
	oldM := make(map[string]policy.SoD, len(old))
	for _, s := range old {
		oldM[s.Name] = s
	}
	newM := make(map[string]policy.SoD, len(new))
	for _, s := range new {
		newM[s.Name] = s
	}
	for name, s := range oldM {
		if ns, ok := newM[name]; ok && fp(ns) == fp(s) {
			continue
		}
		if err := del(name); err != nil {
			return nil, err
		}
	}
	var creates []policy.SoD
	for _, s := range new {
		if os, ok := oldM[s.Name]; ok && fp(os) == fp(s) {
			continue
		}
		creates = append(creates, s)
	}
	return creates, nil
}

// ---------------------------------------------------------------------------
// Diff-set helpers

func edgeSet(edges []policy.Edge) map[policy.Edge]bool {
	m := make(map[policy.Edge]bool, len(edges))
	for _, e := range edges {
		m[e] = true
	}
	return m
}

func permSet(perms []policy.Perm) map[policy.Perm]bool {
	m := make(map[policy.Perm]bool, len(perms))
	for _, p := range perms {
		m[p] = true
	}
	return m
}

func coupleSet(cs []policy.Couple) map[policy.Couple]bool {
	m := make(map[policy.Couple]bool, len(cs))
	for _, c := range cs {
		m[c] = true
	}
	return m
}

func requireMap(rs []policy.Require) map[string]string {
	m := make(map[string]string, len(rs))
	for _, r := range rs {
		m[r.Dependent] = r.Required
	}
	return m
}

func prereqSet(ps []policy.Prereq) map[policy.Prereq]bool {
	m := make(map[policy.Prereq]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func purposeSet(ps []policy.Purpose) map[string]bool {
	m := make(map[string]bool, len(ps))
	for _, p := range ps {
		m[p.Name+"<"+p.Parent] = true
	}
	return m
}

func bindingSet(bs []policy.Binding) map[policy.Binding]bool {
	m := make(map[policy.Binding]bool, len(bs))
	for _, b := range bs {
		m[b] = true
	}
	return m
}

func stringSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func thresholdMap(ths []policy.Threshold) map[string]policy.Threshold {
	m := make(map[string]policy.Threshold, len(ths))
	for _, t := range ths {
		m[t.Name] = t
	}
	return m
}

func userMap(us []policy.User) map[string]policy.User {
	m := make(map[string]policy.User, len(us))
	for _, u := range us {
		m[u.Name] = u
	}
	return m
}

func maxRolesMap(ms []policy.MaxRoles) map[string]int {
	m := make(map[string]int, len(ms))
	for _, x := range ms {
		m[x.User] = x.N
	}
	return m
}

func durationMap(ds []policy.Duration) map[policy.Duration]policy.Duration {
	m := make(map[policy.Duration]policy.Duration, len(ds))
	for _, d := range ds {
		key := policy.Duration{User: d.User, Role: d.Role}
		m[key] = d
	}
	return m
}

func timeSoDMap(ts []policy.TimeSoD) map[string]policy.TimeSoD {
	m := make(map[string]policy.TimeSoD, len(ts))
	for _, t := range ts {
		m[t.Name] = t
	}
	return m
}

func timeSoDFp(t policy.TimeSoD) string {
	return fmt.Sprintf("%s|%s|%v", t.Start, t.Stop, t.Roles)
}
