package rulegen

import (
	"fmt"
	"strings"

	"activerbac/internal/core"
	"activerbac/internal/rbac"
)

// Verify implements the paper's future-work item "the generated rules
// should be verified": it audits the live rule pool against the loaded
// specification and access graph, reporting every discrepancy. A
// healthy engine returns nil; a non-nil result means the pool was
// tampered with (rules removed, renamed or retagged outside the
// generator) or the generator itself has a defect.
//
// Checked invariants:
//
//  1. Every declared role has its localized rule set: exactly one AAR
//     rule — of the variant its graph flags select — plus DAR, ENB and
//     TSOD1 rules, a CC1 rule iff the role is cardinality-bounded, and
//     a CTX rule iff it carries context requirements.
//  2. The global rules exist: CA1, CAP1, the four ADM rules, CTX.apply.
//  3. Every maxroles user has its specialized rule.
//  4. Every rule's triggering event is defined in the detector.
//  5. Localized rules carry their role tag; no rule references a role
//     absent from the policy.
//  6. No unexpected rules exist (reports aside, every pool entry is
//     accounted for by the policy).
func (g *Generator) Verify() []error {
	if !g.loaded {
		return []error{fmt.Errorf("rulegen: verify before Load")}
	}
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("rulegen: verify: "+format, args...))
	}

	pool := g.eng.Pool().Snapshot()
	byName := make(map[string]core.RuleInfo, len(pool))
	for _, r := range pool {
		byName[r.Name] = r
	}
	accounted := make(map[string]bool, len(pool))
	expect := func(name, onEvent, roleTag string) {
		accounted[name] = true
		r, ok := byName[name]
		if !ok {
			fail("missing rule %q", name)
			return
		}
		if onEvent != "" && r.On != onEvent {
			fail("rule %q triggers on %q, want %q", name, r.On, onEvent)
		}
		if !g.eng.Detector().Defined(r.On) {
			fail("rule %q triggers on undefined event %q", name, r.On)
		}
		if roleTag != "" && !hasTagInfo(r, roleTag) {
			fail("rule %q lacks tag %q (has %v)", name, roleTag, r.Tags)
		}
	}

	// 1: per-role localized rules.
	for _, roleName := range g.spec.Roles {
		role := rbac.RoleID(roleName)
		node, ok := g.graph.Node(roleName)
		if !ok {
			fail("role %q missing from graph", roleName)
			continue
		}
		variant := 1
		if node.Hierarchy {
			variant = 2
		}
		if node.HasDynamicSoD() {
			if node.Hierarchy {
				variant = 4
			} else {
				variant = 3
			}
		}
		tag := TagRole(role)
		expect(fmt.Sprintf("AAR%d.%s", variant, roleName), EvAddActiveRole(role), tag)
		// No other AAR variant may coexist for the role.
		for v := 1; v <= 4; v++ {
			name := fmt.Sprintf("AAR%d.%s", v, roleName)
			if v != variant {
				if _, dup := byName[name]; dup {
					fail("stale activation rule %q (current variant is AAR%d)", name, variant)
					accounted[name] = true
				}
			}
		}
		expect(fmt.Sprintf("DAR.%s", roleName), EvDropActiveRole(role), tag)
		expect(fmt.Sprintf("ENB.%s", roleName), EvEnableRole(role), tag)
		expect(fmt.Sprintf("TSOD1.%s", roleName), EvDisableRole(role), tag)
		ccName := fmt.Sprintf("CC1.%s", roleName)
		if node.Cardinality > 0 {
			expect(ccName, EvRoleActivated(role), tag)
		} else if _, dup := byName[ccName]; dup {
			fail("cardinality rule %q exists but role has no bound", ccName)
			accounted[ccName] = true
		}
		ctxName := fmt.Sprintf("CTX.%s", roleName)
		if node.Context {
			expect(ctxName, EvContextUpdate, tag)
		} else if _, dup := byName[ctxName]; dup {
			fail("context rule %q exists but role has no context requirement", ctxName)
			accounted[ctxName] = true
		}
	}

	// 2: globals.
	expect("CA1", EvCheckAccess, TagGlobal)
	expect("CAP1", EvCheckPurposeAccess, TagGlobal)
	expect("ADM.assignUser", EvAssignUser, TagGlobal)
	expect("ADM.deassignUser", EvDeassignUser, TagGlobal)
	expect("ADM.createSession", EvCreateSession, TagGlobal)
	expect("ADM.deleteSession", EvDeleteSession, TagGlobal)
	expect("CTX.apply", EvContextUpdate, TagGlobal)

	// 3: specialized rules.
	for _, m := range g.spec.MaxRoles {
		expect(fmt.Sprintf("SPEC.maxroles.%s", m.User), "", TagUser(rbac.UserID(m.User)))
	}

	// 6: leftovers. Report rules are versioned and policy-driven;
	// account for the live ones.
	g.repMu.Lock()
	for name, st := range g.reports {
		accounted[fmt.Sprintf("RPT.%s.v%d", name, st.version)] = true
	}
	g.repMu.Unlock()
	for _, r := range pool {
		if accounted[r.Name] {
			continue
		}
		if strings.HasPrefix(r.Name, "RPT.") {
			fail("orphan report rule %q (schedule not installed)", r.Name)
			continue
		}
		fail("unexpected rule %q in pool", r.Name)
	}
	return errs
}

func hasTagInfo(r core.RuleInfo, tag string) bool {
	for _, t := range r.Tags {
		if t == tag {
			return true
		}
	}
	return false
}
