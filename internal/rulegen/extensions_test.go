package rulegen

import (
	"testing"
	"time"

	"activerbac/internal/event"
	"activerbac/internal/rbac"
)

// --------------------------------------------------------------------------
// GTRBAC: shifts (periodic enabling) and durations (Rule 7)

const hospitalPolicy = `
policy "hospital"
role Doctor
role Nurse
role DayDoctor
user dana: DayDoctor
user nick: Nurse
user dora: Doctor
shift DayDoctor 10:00:00-17:00:00
duration * Nurse 2h
timesod ward 10:00:00-17:00:00: Nurse, Doctor
`

func TestShiftGatesActivation(t *testing.T) {
	g, sim := loadPolicy(t, hospitalPolicy) // starts 09:00
	sid := newSession(t, g, "dana")
	// 09:00: outside the shift, the roleEnabled condition fails.
	if dec := activateReq(t, g, "dana", sid, "DayDoctor"); dec.Allowed() {
		t.Fatal("activation allowed outside shift")
	}
	sim.AdvanceTo(time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC))
	if dec := activateReq(t, g, "dana", sid, "DayDoctor"); !dec.Allowed() {
		t.Fatalf("activation denied inside shift: %s", dec.Reason())
	}
}

func TestDurationExpiresThroughGeneratedRules(t *testing.T) {
	g, sim := loadPolicy(t, hospitalPolicy)
	sim.AdvanceTo(time.Date(2026, 7, 6, 11, 0, 0, 0, time.UTC))
	sid := newSession(t, g, "nick")
	if dec := activateReq(t, g, "nick", sid, "Nurse"); !dec.Allowed() {
		t.Fatalf("Nurse denied: %s", dec.Reason())
	}
	st := g.Engine().Store()
	sim.Advance(time.Hour)
	if !st.CheckSessionRole(rbac.SessionID(sid), "Nurse") {
		t.Fatal("deactivated before the 2h bound")
	}
	sim.Advance(time.Hour + time.Second)
	if st.CheckSessionRole(rbac.SessionID(sid), "Nurse") {
		t.Fatal("not deactivated after the 2h bound")
	}
	if g.Temporal().Expired() != 1 {
		t.Fatalf("Expired = %d", g.Temporal().Expired())
	}
}

func TestDisablingTimeSoDThroughRules(t *testing.T) {
	g, sim := loadPolicy(t, hospitalPolicy)
	sim.AdvanceTo(time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
	// Disable Doctor: allowed (Nurse still enabled).
	if dec := decide(t, g, EvDisableRole("Doctor"), nil); !dec.Allowed() {
		t.Fatalf("disable Doctor denied: %s", dec.Reason())
	}
	// Disabling Nurse too would leave the ward empty: denied.
	dec := decide(t, g, EvDisableRole("Nurse"), nil)
	if dec.Allowed() {
		t.Fatal("both ward roles disabled inside the window")
	}
	if dec.Reason() != "Denied as Partner Role Already Disabled" {
		t.Fatalf("reason = %q", dec.Reason())
	}
	// Re-enabling Doctor frees Nurse.
	if dec := decide(t, g, EvEnableRole("Doctor"), nil); !dec.Allowed() {
		t.Fatalf("enable Doctor denied: %s", dec.Reason())
	}
	if dec := decide(t, g, EvDisableRole("Nurse"), nil); !dec.Allowed() {
		t.Fatalf("disable Nurse denied after Doctor re-enabled: %s", dec.Reason())
	}
}

// --------------------------------------------------------------------------
// CFD: coupling (Rule 8), dependency (Rule 9), prerequisites

const cfdPolicy = `
policy "ops"
role SysAdmin
role SysAudit
role Manager
role JuniorEmp
role Developer
role Deployer
user root: SysAdmin
user mia: Manager
user jr: JuniorEmp
user dev: Developer, Deployer
couple SysAdmin -> SysAudit
require JuniorEmp needs-active Manager
prereq Deployer after Developer
`

func TestCoupleThroughRules(t *testing.T) {
	g, _ := loadPolicy(t, cfdPolicy)
	st := g.Engine().Store()
	if err := st.SetRoleEnabled("SysAdmin", false); err != nil {
		t.Fatal(err)
	}
	if err := st.SetRoleEnabled("SysAudit", false); err != nil {
		t.Fatal(err)
	}
	if dec := decide(t, g, EvEnableRole("SysAdmin"), nil); !dec.Allowed() {
		t.Fatalf("enable SysAdmin denied: %s", dec.Reason())
	}
	if !st.RoleEnabled("SysAudit") {
		t.Fatal("coupled SysAudit not enabled")
	}
	// Disabling the audit role takes the admin role down.
	if dec := decide(t, g, EvDisableRole("SysAudit"), nil); !dec.Allowed() {
		t.Fatalf("disable SysAudit denied: %s", dec.Reason())
	}
	if st.RoleEnabled("SysAdmin") {
		t.Fatal("SysAdmin stayed enabled without SysAudit")
	}
}

func TestTransactionBasedActivationThroughRules(t *testing.T) {
	// Paper Rule 9: JuniorEmp only while Manager is active.
	g, _ := loadPolicy(t, cfdPolicy)
	st := g.Engine().Store()
	sidJr := newSession(t, g, "jr")
	if dec := activateReq(t, g, "jr", sidJr, "JuniorEmp"); dec.Allowed() {
		t.Fatal("JuniorEmp activated without an active Manager")
	}
	sidM := newSession(t, g, "mia")
	if dec := activateReq(t, g, "mia", sidM, "Manager"); !dec.Allowed() {
		t.Fatalf("Manager denied: %s", dec.Reason())
	}
	if dec := activateReq(t, g, "jr", sidJr, "JuniorEmp"); !dec.Allowed() {
		t.Fatalf("JuniorEmp denied with Manager active: %s", dec.Reason())
	}
	// Manager deactivates: JuniorEmp is revoked automatically.
	decide(t, g, EvDropActiveRole("Manager"), event.Params{"user": "mia", "session": sidM})
	if st.CheckSessionRole(rbac.SessionID(sidJr), "JuniorEmp") {
		t.Fatal("JuniorEmp survived Manager deactivation")
	}
	if g.CFD().Revoked() != 1 {
		t.Fatalf("Revoked = %d", g.CFD().Revoked())
	}
}

func TestPrerequisiteThroughRules(t *testing.T) {
	g, _ := loadPolicy(t, cfdPolicy)
	sid := newSession(t, g, "dev")
	if dec := activateReq(t, g, "dev", sid, "Deployer"); dec.Allowed() {
		t.Fatal("Deployer activated without Developer")
	}
	if dec := activateReq(t, g, "dev", sid, "Developer"); !dec.Allowed() {
		t.Fatalf("Developer denied: %s", dec.Reason())
	}
	if dec := activateReq(t, g, "dev", sid, "Deployer"); !dec.Allowed() {
		t.Fatalf("Deployer denied with prerequisite: %s", dec.Reason())
	}
}

// --------------------------------------------------------------------------
// Privacy-aware RBAC through CAP1

const privacyPolicy = `
policy "clinic"
role Doctor
role Marketer
user dora: Doctor
user mark: Marketer
permission Doctor: read patient.dat
permission Marketer: read patient.dat
purpose treatment
purpose diagnosis < treatment
purpose marketing
bind Doctor read patient.dat for treatment
bind Marketer read patient.dat for marketing
consent-required patient.dat
`

func TestPurposeAccessThroughRules(t *testing.T) {
	g, _ := loadPolicy(t, privacyPolicy)
	sid := newSession(t, g, "dora")
	activateReq(t, g, "dora", sid, "Doctor")
	req := func(purpose string) event.Params {
		return event.Params{"user": "dora", "session": sid,
			"operation": "read", "object": "patient.dat", "purpose": purpose}
	}
	// No consent yet.
	if dec := decide(t, g, EvCheckPurposeAccess, req("treatment")); dec.Allowed() {
		t.Fatal("consent-required object allowed without consent")
	}
	if err := g.Privacy().GrantConsent("patient.dat", "treatment"); err != nil {
		t.Fatal(err)
	}
	if dec := decide(t, g, EvCheckPurposeAccess, req("treatment")); !dec.Allowed() {
		t.Fatalf("treatment denied: %s", dec.Reason())
	}
	if dec := decide(t, g, EvCheckPurposeAccess, req("diagnosis")); !dec.Allowed() {
		t.Fatalf("descendant purpose denied: %s", dec.Reason())
	}
	// Doctor asking for marketing: bound purpose does not cover it.
	if dec := decide(t, g, EvCheckPurposeAccess, req("marketing")); dec.Allowed() {
		t.Fatal("doctor allowed marketing purpose")
	}
	// Plain CheckAccess still works without purposes.
	plain := event.Params{"user": "dora", "session": sid, "operation": "read", "object": "patient.dat"}
	if dec := decide(t, g, EvCheckAccess, plain); !dec.Allowed() {
		t.Fatalf("plain access denied: %s", dec.Reason())
	}
}

// --------------------------------------------------------------------------
// Active security (Section 4.3.3)

const securityPolicy = `
policy "fortress"
role Staff
user mallory: Staff
user good: Staff
permission Staff: read public.txt
threshold intrusions 3 in 10m: lock-user
`

func TestActiveSecurityLocksUser(t *testing.T) {
	g, _ := loadPolicy(t, securityPolicy)
	st := g.Engine().Store()
	sid := newSession(t, g, "mallory")
	activateReq(t, g, "mallory", sid, "Staff")
	secretReq := event.Params{"user": "mallory", "session": sid, "operation": "read", "object": "secret.txt"}
	// Two denials: below threshold, user still fine.
	for i := 0; i < 2; i++ {
		if dec := decide(t, g, EvCheckAccess, secretReq); dec.Allowed() {
			t.Fatal("secret.txt allowed")
		}
	}
	if st.UserLocked("mallory") {
		t.Fatal("locked below threshold")
	}
	// Third denial crosses the threshold: lock-user response fires.
	decide(t, g, EvCheckAccess, secretReq)
	if !st.UserLocked("mallory") {
		t.Fatal("threshold crossing did not lock the user")
	}
	// Locked user now fails even permitted requests.
	okReq := event.Params{"user": "mallory", "session": sid, "operation": "read", "object": "public.txt"}
	if dec := decide(t, g, EvCheckAccess, okReq); dec.Allowed() {
		t.Fatal("locked user passed CheckAccess")
	}
	if len(g.Security().Alerts()) != 1 {
		t.Fatalf("alerts = %v", g.Security().Alerts())
	}
	// Other users are unaffected.
	if st.UserLocked("good") {
		t.Fatal("innocent user locked")
	}
}

func TestActiveSecurityWindowSlides(t *testing.T) {
	g, sim := loadPolicy(t, securityPolicy)
	sid := newSession(t, g, "mallory")
	bad := event.Params{"user": "mallory", "session": sid, "operation": "x", "object": "y"}
	decide(t, g, EvCheckAccess, bad)
	decide(t, g, EvCheckAccess, bad)
	sim.Advance(11 * time.Minute) // the two age out
	decide(t, g, EvCheckAccess, bad)
	if g.Engine().Store().UserLocked("mallory") {
		t.Fatal("stale denials counted against the window")
	}
}

func TestDisableRulesResponse(t *testing.T) {
	g, _ := loadPolicy(t, `
policy "panic"
role Staff
user mallory: Staff
user good: Staff
permission Staff: read public.txt
threshold intrusions 2 in 10m: disable-rules
`)
	sidM := newSession(t, g, "mallory")
	sidG := newSession(t, g, "good")
	activateReq(t, g, "good", sidG, "Staff")
	bad := event.Params{"user": "mallory", "session": sidM, "operation": "x", "object": "y"}
	decide(t, g, EvCheckAccess, bad)
	decide(t, g, EvCheckAccess, bad)
	// The critical CA1 rule is now disabled: even good requests fail
	// closed ("no applicable rule").
	okReq := event.Params{"user": "good", "session": sidG, "operation": "read", "object": "public.txt"}
	dec := decide(t, g, EvCheckAccess, okReq)
	if dec.Allowed() {
		t.Fatal("request allowed after critical rules disabled")
	}
	if dec.Reason() != "no applicable rule" {
		t.Fatalf("reason = %q", dec.Reason())
	}
	// Re-enabling restores service.
	g.Engine().Pool().SetEnabledByTag(TagCritical, true)
	if dec := decide(t, g, EvCheckAccess, okReq); !dec.Allowed() {
		t.Fatalf("request denied after re-enable: %s", dec.Reason())
	}
}
