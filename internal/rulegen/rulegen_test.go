package rulegen

import (
	"strings"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/event"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
	"activerbac/internal/sentinel"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// xyzPolicy is the paper's enterprise XYZ (Section 5 / Figure 1).
const xyzPolicy = `
policy "enterprise-xyz"
role PM
role PC
role AM
role AC
role Clerk
hierarchy PM > PC > Clerk
hierarchy AM > AC > Clerk
ssd purchase-approval 2: PC, AC
permission PC: write purchase-order.dat
permission AC: approve purchase-order.dat
permission Clerk: read lobby.txt
user bob: PC
user carol: AC
user alice: PM
cardinality PM 1
`

// loadPolicy builds a fully generated engine from policy source.
func loadPolicy(t *testing.T, src string) (*Generator, *clock.Sim) {
	t.Helper()
	spec, err := policy.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	sim := clock.NewSim(t0)
	eng := sentinel.NewEngine(sim)
	g, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Load(spec); err != nil {
		t.Fatal(err)
	}
	return g, sim
}

// decide raises a request event and returns the verdict.
func decide(t *testing.T, g *Generator, ev string, p event.Params) *sentinel.Decision {
	t.Helper()
	dec, err := g.Engine().Decide(ev, p)
	if err != nil {
		t.Fatalf("Decide(%s): %v", ev, err)
	}
	return dec
}

// newSession creates a session for user through the administrative rule.
func newSession(t *testing.T, g *Generator, user string) string {
	t.Helper()
	dec := decide(t, g, EvCreateSession, event.Params{"user": user})
	if !dec.Allowed() {
		t.Fatalf("createSession(%s) denied: %s", user, dec.Reason())
	}
	sid, _ := dec.Result().(string)
	if sid == "" {
		t.Fatalf("createSession(%s): no session id result", user)
	}
	return sid
}

func activateReq(t *testing.T, g *Generator, user, sid, role string) *sentinel.Decision {
	t.Helper()
	return decide(t, g, EvAddActiveRole(rbac.RoleID(role)), event.Params{"user": user, "session": sid})
}

// --------------------------------------------------------------------------
// F1: rule inventory generated from the XYZ policy

func TestXYZRuleInventory(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	snap := g.Engine().Pool().Snapshot()
	byName := make(map[string]bool, len(snap))
	for _, r := range snap {
		byName[r.Name] = true
	}
	// Every role takes part in the hierarchy, so every activation rule
	// is the AAR2 variant (static SoD adds assignment-time checks, not
	// activation conditions).
	want := []string{
		"AAR2.PM", "AAR2.PC", "AAR2.AM", "AAR2.AC", "AAR2.Clerk",
		"DAR.PM", "DAR.PC", "DAR.AM", "DAR.AC", "DAR.Clerk",
		"ENB.PM", "TSOD1.PM",
		"CC1.PM", // cardinality 1
		"CA1", "CAP1",
		"ADM.assignUser", "ADM.deassignUser", "ADM.createSession", "ADM.deleteSession",
	}
	for _, name := range want {
		if !byName[name] {
			t.Errorf("missing generated rule %q", name)
		}
	}
	if byName["CC1.PC"] {
		t.Error("CC1.PC generated without a cardinality bound")
	}
	// 5 roles x 4 localized rules + CC1.PM + 7 global rules (CA1, CAP1,
	// 4x ADM, CTX.apply).
	if len(snap) != 5*4+1+7 {
		names := make([]string, 0, len(snap))
		for _, r := range snap {
			names = append(names, r.Name)
		}
		t.Errorf("rule count = %d: %s", len(snap), strings.Join(names, ", "))
	}
	// Tag discipline: localized rules carry role tags.
	for _, r := range snap {
		if strings.HasSuffix(r.Name, ".PC") && !hasTag(r.Tags, "role:PC") {
			t.Errorf("rule %s lacks role tag: %v", r.Name, r.Tags)
		}
	}
}

func hasTag(tags []string, tag string) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

func TestGeneratorAccessors(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	if g.Spec() == nil || g.Spec().Name != "enterprise-xyz" {
		t.Fatalf("Spec = %v", g.Spec())
	}
	if g.Graph() == nil || g.Graph().Len() != 5 {
		t.Fatalf("Graph = %v", g.Graph())
	}
}

func TestLoadRejectsBadPolicy(t *testing.T) {
	spec, err := policy.ParseString("role A\nrole A")
	if err != nil {
		t.Fatal(err)
	}
	eng := sentinel.NewEngine(clock.NewSim(t0))
	g, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Load(spec); err == nil {
		t.Fatal("Load accepted an inconsistent policy")
	}
}

func TestDoubleLoadRejected(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	spec, _ := policy.ParseString("role X")
	if err := g.Load(spec); err == nil {
		t.Fatal("second Load accepted")
	}
}

// --------------------------------------------------------------------------
// Enforcement through the generated rules

func TestActivationHappyPath(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	sid := newSession(t, g, "bob")
	dec := activateReq(t, g, "bob", sid, "PC")
	if !dec.Allowed() {
		t.Fatalf("bob/PC denied: %s", dec.Reason())
	}
	if !g.Engine().Store().CheckSessionRole(rbac.SessionID(sid), "PC") {
		t.Fatal("role not active after allowed activation")
	}
}

func TestActivationDeniedUnassigned(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	sid := newSession(t, g, "bob")
	dec := activateReq(t, g, "bob", sid, "AM")
	if dec.Allowed() {
		t.Fatal("bob activated AM without assignment")
	}
	if dec.Reason() != "Access Denied Cannot Activate" {
		t.Fatalf("reason = %q", dec.Reason())
	}
}

func TestActivationThroughHierarchy(t *testing.T) {
	// alice is assigned PM; AAR2's checkAuthorization admits PC and
	// Clerk.
	g, _ := loadPolicy(t, xyzPolicy)
	sid := newSession(t, g, "alice")
	for _, role := range []string{"PC", "Clerk"} {
		if dec := activateReq(t, g, "alice", sid, role); !dec.Allowed() {
			t.Fatalf("alice/%s denied: %s", role, dec.Reason())
		}
	}
	if dec := activateReq(t, g, "alice", sid, "AC"); dec.Allowed() {
		t.Fatal("alice activated AC outside her branch")
	}
}

func TestActivationDuplicateDenied(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	sid := newSession(t, g, "bob")
	activateReq(t, g, "bob", sid, "PC")
	if dec := activateReq(t, g, "bob", sid, "PC"); dec.Allowed() {
		t.Fatal("duplicate activation allowed")
	}
}

func TestActivationWrongSession(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	sidCarol := newSession(t, g, "carol")
	if dec := activateReq(t, g, "bob", sidCarol, "PC"); dec.Allowed() {
		t.Fatal("activation in another user's session allowed")
	}
	if dec := activateReq(t, g, "bob", "nosuch", "PC"); dec.Allowed() {
		t.Fatal("activation in unknown session allowed")
	}
}

func TestDeactivation(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	sid := newSession(t, g, "bob")
	activateReq(t, g, "bob", sid, "PC")
	dec := decide(t, g, EvDropActiveRole("PC"), event.Params{"user": "bob", "session": sid})
	if !dec.Allowed() {
		t.Fatalf("deactivation denied: %s", dec.Reason())
	}
	if g.Engine().Store().CheckSessionRole(rbac.SessionID(sid), "PC") {
		t.Fatal("role still active")
	}
	// Dropping again is denied.
	if dec := decide(t, g, EvDropActiveRole("PC"), event.Params{"user": "bob", "session": sid}); dec.Allowed() {
		t.Fatal("double deactivation allowed")
	}
}

func TestCheckAccess(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	sid := newSession(t, g, "bob")
	activateReq(t, g, "bob", sid, "PC")
	req := event.Params{"user": "bob", "session": sid, "operation": "write", "object": "purchase-order.dat"}
	if dec := decide(t, g, EvCheckAccess, req); !dec.Allowed() {
		t.Fatalf("direct permission denied: %s", dec.Reason())
	}
	// Inherited from Clerk.
	req2 := event.Params{"user": "bob", "session": sid, "operation": "read", "object": "lobby.txt"}
	if dec := decide(t, g, EvCheckAccess, req2); !dec.Allowed() {
		t.Fatalf("inherited permission denied: %s", dec.Reason())
	}
	// Not granted.
	req3 := event.Params{"user": "bob", "session": sid, "operation": "approve", "object": "purchase-order.dat"}
	if dec := decide(t, g, EvCheckAccess, req3); dec.Allowed() {
		t.Fatal("unauthorized operation allowed")
	}
}

func TestAssignmentRuleEnforcesSSD(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	// carol holds AC; assigning PC violates the SSD set.
	dec := decide(t, g, EvAssignUser, event.Params{"user": "carol", "role": "PC"})
	if dec.Allowed() {
		t.Fatal("SSD-violating assignment allowed")
	}
	// Inherited conflict: alice (PM) cannot take AM.
	dec = decide(t, g, EvAssignUser, event.Params{"user": "alice", "role": "AM"})
	if dec.Allowed() {
		t.Fatal("inherited SSD conflict allowed (PM + AM)")
	}
	// A clean assignment goes through and is usable.
	dec = decide(t, g, EvAssignUser, event.Params{"user": "bob", "role": "Clerk"})
	if !dec.Allowed() {
		t.Fatalf("clean assignment denied: %s", dec.Reason())
	}
	if !g.Engine().Store().CheckAssigned("bob", "Clerk") {
		t.Fatal("assignment missing after allowed request")
	}
	// Deassignment.
	dec = decide(t, g, EvDeassignUser, event.Params{"user": "bob", "role": "Clerk"})
	if !dec.Allowed() {
		t.Fatalf("deassignment denied: %s", dec.Reason())
	}
	if dec := decide(t, g, EvDeassignUser, event.Params{"user": "bob", "role": "Clerk"}); dec.Allowed() {
		t.Fatal("double deassignment allowed")
	}
}

func TestCardinalityRollback(t *testing.T) {
	// PM has cardinality 1 (the university-president scenario of Rule 4).
	g, _ := loadPolicy(t, xyzPolicy)
	st := g.Engine().Store()
	// A second PM user: assign dave to PM via the administrative rule.
	if err := st.AddUser("dave"); err != nil {
		t.Fatal(err)
	}
	if dec := decide(t, g, EvAssignUser, event.Params{"user": "dave", "role": "PM"}); !dec.Allowed() {
		t.Fatalf("assign dave/PM denied: %s", dec.Reason())
	}
	sidA := newSession(t, g, "alice")
	sidD := newSession(t, g, "dave")
	if dec := activateReq(t, g, "alice", sidA, "PM"); !dec.Allowed() {
		t.Fatalf("first PM activation denied: %s", dec.Reason())
	}
	dec := activateReq(t, g, "dave", sidD, "PM")
	if dec.Allowed() {
		t.Fatal("second PM activation allowed beyond cardinality")
	}
	if dec.Reason() != "Maximum Number of Roles Reached" {
		t.Fatalf("reason = %q", dec.Reason())
	}
	// The cascaded CC rule rolled the activation back.
	if st.CheckSessionRole(rbac.SessionID(sidD), "PM") {
		t.Fatal("over-cardinality activation not rolled back")
	}
	if n := st.RoleActiveCount("PM"); n != 1 {
		t.Fatalf("RoleActiveCount = %d", n)
	}
	// Deactivation frees the slot.
	decide(t, g, EvDropActiveRole("PM"), event.Params{"user": "alice", "session": sidA})
	if dec := activateReq(t, g, "dave", sidD, "PM"); !dec.Allowed() {
		t.Fatalf("activation after slot freed denied: %s", dec.Reason())
	}
}

func TestSessionLifecycleRules(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	if dec := decide(t, g, EvCreateSession, event.Params{"user": "ghost"}); dec.Allowed() {
		t.Fatal("session for unknown user allowed")
	}
	sid := newSession(t, g, "bob")
	activateReq(t, g, "bob", sid, "PC")
	dec := decide(t, g, EvDeleteSession, event.Params{"session": sid})
	if !dec.Allowed() {
		t.Fatalf("deleteSession denied: %s", dec.Reason())
	}
	if g.Engine().Store().SessionExists(rbac.SessionID(sid)) {
		t.Fatal("session survived deletion")
	}
	if dec := decide(t, g, EvDeleteSession, event.Params{"session": sid}); dec.Allowed() {
		t.Fatal("double delete allowed")
	}
}

// --------------------------------------------------------------------------
// DSD policies select AAR3/AAR4 and enforce at activation time

const bankPolicy = `
policy "bank"
role Boss
role Teller
role Auditor
hierarchy Boss > Teller
dsd teller-auditor 2: Teller, Auditor
user eve: Teller, Auditor
user mgr: Boss, Auditor
`

func TestDSDVariantsAndEnforcement(t *testing.T) {
	g, _ := loadPolicy(t, bankPolicy)
	byName := make(map[string]bool)
	for _, r := range g.Engine().Pool().Snapshot() {
		byName[r.Name] = true
	}
	// Teller: hierarchy (junior of Boss) + DSD -> AAR4. Auditor: DSD
	// only -> AAR3. Boss: hierarchy + inherited DSD -> AAR4.
	for _, want := range []string{"AAR4.Teller", "AAR3.Auditor", "AAR4.Boss"} {
		if !byName[want] {
			t.Errorf("missing rule %q", want)
		}
	}
	sid := newSession(t, g, "eve")
	if dec := activateReq(t, g, "eve", sid, "Teller"); !dec.Allowed() {
		t.Fatalf("Teller denied: %s", dec.Reason())
	}
	if dec := activateReq(t, g, "eve", sid, "Auditor"); dec.Allowed() {
		t.Fatal("DSD violation allowed")
	}
	// Hierarchy counts: Boss activates Teller implicitly.
	sidM := newSession(t, g, "mgr")
	if dec := activateReq(t, g, "mgr", sidM, "Boss"); !dec.Allowed() {
		t.Fatalf("Boss denied: %s", dec.Reason())
	}
	if dec := activateReq(t, g, "mgr", sidM, "Auditor"); dec.Allowed() {
		t.Fatal("DSD violation through hierarchy allowed")
	}
}

// --------------------------------------------------------------------------
// Specialized maxroles rule (scenario 1)

func TestMaxRolesSpecializedRule(t *testing.T) {
	g, _ := loadPolicy(t, `
policy "jane"
role R1
role R2
role R3
user jane: R1, R2, R3
maxroles jane 2
`)
	byName := make(map[string]bool)
	for _, r := range g.Engine().Pool().Snapshot() {
		byName[r.Name] = true
	}
	if !byName["SPEC.maxroles.jane"] {
		t.Fatal("specialized rule missing")
	}
	sid := newSession(t, g, "jane")
	activateReq(t, g, "jane", sid, "R1")
	activateReq(t, g, "jane", sid, "R2")
	dec := activateReq(t, g, "jane", sid, "R3")
	if dec.Allowed() {
		t.Fatal("third activation allowed beyond maxroles")
	}
	if g.Engine().Store().CheckSessionRole(rbac.SessionID(sid), "R3") {
		t.Fatal("over-budget activation not rolled back")
	}
}
