package rulegen

import (
	"fmt"

	"activerbac/internal/cfd"
	"activerbac/internal/core"
	"activerbac/internal/event"
	"activerbac/internal/gtrbac"
	"activerbac/internal/parbac"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
	"activerbac/internal/security"
	"activerbac/internal/sentinel"
)

// Generator compiles policy specifications into a live Sentinel+ engine:
// RBAC state into the store, OWTE rules into the pool, temporal
// schedules into the GTRBAC manager, CFD constraints, privacy bindings
// and active-security thresholds. One Generator owns one engine.
type Generator struct {
	eng *sentinel.Engine
	gt  *gtrbac.Manager
	cf  *cfd.Manager
	pa  *parbac.Manager
	mon *security.Monitor

	spec      *policy.Spec
	graph     *policy.Graph
	schedules map[rbac.RoleID]int // role -> gtrbac schedule id
	loaded    bool

	reportPlumbing
}

// New wires a Generator (and the constraint managers it drives) onto an
// engine and registers the active-security responses.
func New(eng *sentinel.Engine) (*Generator, error) {
	gt, err := gtrbac.New(eng.Detector(), eng.Store())
	if err != nil {
		return nil, err
	}
	cf, err := cfd.New(eng.Detector(), eng.Store(), gt)
	if err != nil {
		return nil, err
	}
	g := &Generator{
		eng:       eng,
		gt:        gt,
		cf:        cf,
		pa:        parbac.New(eng.Store()),
		mon:       security.NewMonitor(eng.Clock()),
		schedules: make(map[rbac.RoleID]int),
	}
	// The paper's predefined security-administrator actions.
	g.mon.RegisterResponse("lock-user", func(a security.Alert) {
		_ = eng.Store().SetUserLocked(rbac.UserID(a.Subject), true)
	})
	g.mon.RegisterResponse("disable-rules", func(security.Alert) {
		eng.Pool().SetEnabledByTag(TagCritical, false)
	})
	// "alert" needs no response beyond the alert listeners.
	return g, nil
}

// Engine returns the generator's engine.
func (g *Generator) Engine() *sentinel.Engine { return g.eng }

// Temporal returns the GTRBAC manager.
func (g *Generator) Temporal() *gtrbac.Manager { return g.gt }

// CFD returns the control-flow-dependency manager.
func (g *Generator) CFD() *cfd.Manager { return g.cf }

// Privacy returns the privacy-aware RBAC manager.
func (g *Generator) Privacy() *parbac.Manager { return g.pa }

// Security returns the active-security monitor.
func (g *Generator) Security() *security.Monitor { return g.mon }

// Spec returns the currently loaded policy spec (nil before Load).
func (g *Generator) Spec() *policy.Spec { return g.spec }

// Graph returns the instantiated access specification graph.
func (g *Generator) Graph() *policy.Graph { return g.graph }

// Load performs full generation of a policy into the engine. It may
// only be called once; use Apply for subsequent policy changes.
func (g *Generator) Load(spec *policy.Spec) error {
	if g.loaded {
		return fmt.Errorf("rulegen: engine already loaded; use Apply for policy changes")
	}
	if issues := policy.Check(spec); policy.HasErrors(issues) {
		return fmt.Errorf("rulegen: policy has errors: %v", issues)
	}
	graph, err := policy.BuildGraph(spec)
	if err != nil {
		return err
	}
	g.spec, g.graph = spec, graph

	if err := g.applyGlobalState(spec); err != nil {
		return err
	}
	if err := g.generateGlobalRules(); err != nil {
		return err
	}
	for _, role := range spec.Roles {
		if err := g.generateRole(rbac.RoleID(role)); err != nil {
			return err
		}
	}
	if err := g.applyUserState(spec); err != nil {
		return err
	}
	if err := g.generateSpecializedRules(spec); err != nil {
		return err
	}
	if err := g.applyReports(spec); err != nil {
		return err
	}
	g.loaded = true
	return nil
}

// ---------------------------------------------------------------------------
// State application

// applyGlobalState installs roles, hierarchy, SoD sets, permissions,
// purposes, CFD constraints, time SoDs and thresholds.
func (g *Generator) applyGlobalState(spec *policy.Spec) error {
	st := g.eng.Store()
	for _, r := range spec.Roles {
		if err := st.AddRole(rbac.RoleID(r)); err != nil {
			return err
		}
		if err := g.gt.RegisterRole(rbac.RoleID(r)); err != nil {
			return err
		}
	}
	for _, e := range spec.Hierarchy {
		if err := st.AddInheritance(rbac.RoleID(e.Senior), rbac.RoleID(e.Junior)); err != nil {
			return err
		}
	}
	for _, set := range spec.SSD {
		if err := st.CreateSSD(toSoDSet(set)); err != nil {
			return err
		}
	}
	for _, set := range spec.DSD {
		if err := st.CreateDSD(toSoDSet(set)); err != nil {
			return err
		}
	}
	for _, p := range spec.Permissions {
		if err := st.GrantPermission(rbac.RoleID(p.Role), rbac.Permission{Operation: p.Operation, Object: p.Object}); err != nil {
			return err
		}
	}
	for _, c := range spec.Cardinalities {
		if err := st.SetRoleCardinality(rbac.RoleID(c.Role), c.N); err != nil {
			return err
		}
	}
	for _, ts := range spec.TimeSoDs {
		roles := make([]rbac.RoleID, len(ts.Roles))
		for i, r := range ts.Roles {
			roles[i] = rbac.RoleID(r)
		}
		if err := g.gt.AddDisablingTimeSoD(ts.Name, roles, ts.Window()); err != nil {
			return err
		}
	}
	for _, c := range spec.Couples {
		if err := g.cf.CoupleEnable(rbac.RoleID(c.Lead), rbac.RoleID(c.Follow)); err != nil {
			return err
		}
	}
	for _, rq := range spec.Requires {
		if err := g.cf.AddActivationDependency(rbac.RoleID(rq.Dependent), rbac.RoleID(rq.Required)); err != nil {
			return err
		}
	}
	for _, p := range spec.Prereqs {
		if err := g.cf.AddPrerequisite(rbac.RoleID(p.Role), rbac.RoleID(p.Prereq)); err != nil {
			return err
		}
	}
	for _, p := range spec.Purposes {
		if err := g.pa.AddPurpose(p.Name, p.Parent); err != nil {
			return err
		}
	}
	for _, b := range spec.Bindings {
		perm := rbac.Permission{Operation: b.Operation, Object: b.Object}
		if err := g.pa.BindPurpose(rbac.RoleID(b.Role), perm, b.Purpose); err != nil {
			return err
		}
	}
	for _, obj := range spec.ConsentRequired {
		g.pa.SetConsentRequired(obj, true)
	}
	for _, th := range spec.Thresholds {
		if err := g.mon.AddThreshold(th.Name, th.Count, th.Window, th.Action); err != nil {
			return err
		}
	}
	return nil
}

// applyUserState installs users and assignments (after roles exist).
func (g *Generator) applyUserState(spec *policy.Spec) error {
	st := g.eng.Store()
	for _, u := range spec.Users {
		if err := st.AddUser(rbac.UserID(u.Name)); err != nil {
			return err
		}
		for _, r := range u.Roles {
			if err := st.AssignUser(rbac.UserID(u.Name), rbac.RoleID(r)); err != nil {
				return err
			}
		}
	}
	for _, m := range spec.MaxRoles {
		// The checker warns on undeclared users; create on demand so
		// warning-level policies still load.
		if !st.UserExists(rbac.UserID(m.User)) {
			if err := st.AddUser(rbac.UserID(m.User)); err != nil {
				return err
			}
		}
		if err := st.SetUserMaxActiveRoles(rbac.UserID(m.User), m.N); err != nil {
			return err
		}
	}
	for _, d := range spec.Durations {
		u := rbac.UserID(d.User)
		if d.User == "*" {
			u = ""
		}
		if err := g.gt.SetActivationDuration(u, rbac.RoleID(d.Role), d.D); err != nil {
			return err
		}
	}
	return nil
}

func toSoDSet(s policy.SoD) rbac.SoDSet {
	roles := make([]rbac.RoleID, len(s.Roles))
	for i, r := range s.Roles {
		roles[i] = rbac.RoleID(r)
	}
	return rbac.SoDSet{Name: s.Name, Roles: roles, N: s.N}
}

// ---------------------------------------------------------------------------
// Parameter helpers

func userOf(o *event.Occurrence) rbac.UserID {
	s, _ := o.Params["user"].(string)
	return rbac.UserID(s)
}

func sessionOf(o *event.Occurrence) rbac.SessionID {
	s, _ := o.Params["session"].(string)
	return rbac.SessionID(s)
}

func permOf(o *event.Occurrence) rbac.Permission {
	op, _ := o.Params["operation"].(string)
	obj, _ := o.Params["object"].(string)
	return rbac.Permission{Operation: op, Object: obj}
}

// vote helpers

func allow(name string) core.Action {
	return core.Act("allow <"+name+">", func(o *event.Occurrence) error {
		if dec, ok := sentinel.DecisionOf(o); ok {
			dec.Allow(name)
		}
		return nil
	})
}

// deny votes Deny and records the denial with the security monitor (the
// paper's active security observes denied requests).
func (g *Generator) deny(name, reason string) core.Action {
	return core.Act("raise error \""+reason+"\"", func(o *event.Occurrence) error {
		if dec, ok := sentinel.DecisionOf(o); ok {
			dec.Deny(name, reason)
		}
		g.mon.RecordDenial(string(userOf(o)))
		return nil
	})
}
