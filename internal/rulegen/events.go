// Package rulegen is the paper's Section 5 generator: it compiles a
// high-level policy specification (internal/policy) into the running
// enforcement system — primitive events, OWTE rules in the pool,
// temporal schedules, CFD couplings, privacy bindings and active
// security thresholds — and regenerates exactly the affected rules when
// the policy changes.
//
// Rule names follow the paper: AAR1..AAR4 are the role-activation
// variants chosen from the role's relationship flags, CC the cardinality
// rules, CA the check-access rule, ADM the administrative rules, TSOD
// the temporal rules, and ASEC the active-security wiring. Every
// generated rule is tagged "role:<role>" (localized), "user:<user>"
// (specialized) or "global", which is what makes incremental
// regeneration possible: a policy change for one role removes and
// re-adds only the rules carrying its tag.
package rulegen

import (
	"activerbac/internal/rbac"
)

// Request events raised by the enforcement facade. Per-role events
// mirror the paper's per-role functions (AddActiveRoleR1); globalized
// events carry the variable parts as parameters.

// EvAddActiveRole names the per-role activation request event
// (the paper's user -> AddActiveRoleR1(sessionId)).
// Parameters: "user", "session".
func EvAddActiveRole(r rbac.RoleID) string { return "req.addActiveRole." + string(r) }

// EvDropActiveRole names the per-role deactivation request event.
// Parameters: "user", "session".
func EvDropActiveRole(r rbac.RoleID) string { return "req.dropActiveRole." + string(r) }

// EvEnableRole and EvDisableRole name per-role enable/disable request
// events (administrator actions, subject to time-based SoD).
func EvEnableRole(r rbac.RoleID) string { return "req.enableRole." + string(r) }

// EvDisableRole is the disable counterpart of EvEnableRole.
func EvDisableRole(r rbac.RoleID) string { return "req.disableRole." + string(r) }

// EvRoleActivated names the per-role internal event raised after a role
// is added to a session's active set (the paper's E3 =
// addSessionRoleR1(sessionId)); cardinality rules trigger on it.
// Parameters: "user", "session".
func EvRoleActivated(r rbac.RoleID) string { return "sessionRoleAdded." + string(r) }

// Globalized request events.
const (
	// EvCheckAccess is the paper's E6 = user -> checkAccess(sessionId,
	// operation, object). Parameters: "user", "session", "operation",
	// "object".
	EvCheckAccess = "req.checkAccess"
	// EvCheckPurposeAccess is the privacy-aware variant; adds parameter
	// "purpose".
	EvCheckPurposeAccess = "req.checkPurposeAccess"
	// EvAssignUser and EvDeassignUser are administrative user-role
	// (de)assignment requests. Parameters: "user", "role".
	EvAssignUser   = "req.assignUser"
	EvDeassignUser = "req.deassignUser"
	// EvCreateSession and EvDeleteSession manage sessions.
	// Parameters: "user" (create), "session" (delete).
	EvCreateSession = "req.createSession"
	EvDeleteSession = "req.deleteSession"
	// EvContextUpdate reports an environmental change from the external
	// monitoring module (sensors, network probes). Parameters: "key",
	// "value". The CTX.apply rule stores the value; per-role CTX rules
	// deactivate roles whose context requirements no longer hold.
	EvContextUpdate = "context.update"
)

// Tags used for bulk rule operations.
const (
	// TagGlobal marks globalized rules (regenerated only when global
	// policy items change).
	TagGlobal = "global"
	// TagCritical marks rules that active security may disable under
	// attack (the check-access path).
	TagCritical = "critical"
)

// TagRole returns the tag carried by every rule localized to a role.
func TagRole(r rbac.RoleID) string { return "role:" + string(r) }

// TagUser returns the tag carried by specialized (per-user) rules.
func TagUser(u rbac.UserID) string { return "user:" + string(u) }
