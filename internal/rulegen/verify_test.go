package rulegen

import (
	"strings"
	"testing"

	"activerbac/internal/clock"
	"activerbac/internal/core"
	"activerbac/internal/sentinel"
)

func TestVerifyCleanAfterLoad(t *testing.T) {
	for _, src := range []string{xyzPolicy, bankPolicy, hospitalPolicy, cfdPolicy, privacyPolicy, securityPolicy, pervasivePolicy, reportPolicy} {
		g, _ := loadPolicy(t, src)
		if errs := g.Verify(); len(errs) != 0 {
			t.Fatalf("Verify after Load of %q: %v", strings.SplitN(src, "\n", 3)[1], errs)
		}
	}
}

func TestVerifyCleanAfterApply(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	apply(t, g, xyzPolicy+"role Intern\nhierarchy Clerk > Intern\ncontext Intern requires badge = valid\n")
	if errs := g.Verify(); len(errs) != 0 {
		t.Fatalf("Verify after Apply: %v", errs)
	}
	apply(t, g, xyzPolicy) // back to base: Intern rules must be gone
	if errs := g.Verify(); len(errs) != 0 {
		t.Fatalf("Verify after revert: %v", errs)
	}
}

func TestVerifyBeforeLoad(t *testing.T) {
	g, err := New(sentinel.NewEngine(clock.NewSim(t0)))
	if err != nil {
		t.Fatal(err)
	}
	if errs := g.Verify(); len(errs) == 0 {
		t.Fatal("Verify before Load passed")
	}
}

// coreRule builds a minimal rule for tamper tests.
func coreRule(name, on string) core.Rule {
	return core.Rule{Name: name, On: on}
}

func TestVerifyDetectsMissingRule(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	if err := g.Engine().Pool().Remove("AAR2.PC"); err != nil {
		t.Fatal(err)
	}
	errs := g.Verify()
	if len(errs) == 0 {
		t.Fatal("missing rule not detected")
	}
	if !strings.Contains(errs[0].Error(), "AAR2.PC") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestVerifyDetectsForeignRule(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	g.Engine().Pool().MustAdd(coreRule("SNEAKY", EvCheckAccess))
	errs := g.Verify()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "unexpected rule") && strings.Contains(e.Error(), "SNEAKY") {
			found = true
		}
	}
	if !found {
		t.Fatalf("foreign rule not detected: %v", errs)
	}
}

func TestVerifyDetectsStaleCardinalityRule(t *testing.T) {
	g, _ := loadPolicy(t, xyzPolicy)
	// PC has no cardinality bound, so a CC1.PC rule is stale.
	g.Engine().Pool().MustAdd(coreRule("CC1.PC", EvRoleActivated("PC")))
	errs := g.Verify()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "CC1.PC") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale cardinality rule not detected: %v", errs)
	}
}
