// Package replicate is the leader/replica policy-distribution
// subsystem: a leader serializes its policy source plus compiled state
// behind each push epoch and streams it over the wire SYNC opcode; a
// replica installs each transfer (after content-hash verification)
// and serves checks entirely from its local snapshot, resyncing
// whenever an EPOCH_PUSH reveals a gap. It replaces the in-process
// internal/cluster seed with a real over-the-wire protocol: the leader
// side is Hub (a wire.SyncBackend with a replica registry), the
// replica side is Replica (the sync state machine rbacd's replica mode
// runs).
//
// Staleness semantics: replication is asynchronous. A replica is
// always internally consistent — it serves some epoch the leader
// published — but may lag the leader by the epochs still in flight;
// the lag is observable per replica (Hub.Status, activerbac_replica_
// lag) and bounded in practice by one coalesced sync per push burst.
// On leader loss a replica keeps serving its last-applied epoch: reads
// degrade to stale, never to down.
package replicate

import (
	"crypto/sha256"
	"sort"
	"sync"
	"time"

	"activerbac/internal/wire"
)

// Exporter is the leader-side facade surface the Hub serializes:
// activerbac.System implements it.
type Exporter interface {
	// ExportSyncSnapshot returns the encoded policy + state envelope
	// and the push epoch it is valid at.
	ExportSyncSnapshot() (epoch uint64, data []byte, err error)
	// PushEpoch reports the current push epoch.
	PushEpoch() uint64
}

// HubInstruments are optional leader-side metrics hooks; any field may
// be nil. rbacd wires them to the activerbac_sync_* families.
type HubInstruments struct {
	// Sync is called once per snapshot transfer served (acks excluded).
	Sync func()
	// SyncBytes is called with the payload size of each transfer.
	SyncBytes func(n float64)
	// SyncSeconds observes the serve time (export + cache lookup) of
	// each SYNC request, acks included.
	SyncSeconds func(seconds float64)
}

// Hub is the leader side of the replication protocol: it serves SYNC
// requests (wire.SyncBackend's SyncSnapshot refinement — rbacd's
// backend embeds it) and keeps the replica registry GET /v1/replication
// reports. One encoded snapshot is cached per epoch, so a fleet of N
// replicas resyncing after one push costs one serialization, not N.
type Hub struct {
	exp Exporter
	ins *HubInstruments

	mu sync.Mutex
	// cachedEpoch/cachedData/cachedHash are the per-epoch snapshot
	// cache; invalidated by comparing cachedEpoch to the live push
	// epoch on each request.
	cachedEpoch uint64
	cachedData  []byte
	cachedHash  [wire.SyncHashSize]byte
	replicas    map[string]*replicaEntry
}

// replicaEntry is the registry's view of one replica.
type replicaEntry struct {
	applied   uint64
	lastSync  time.Time
	connected bool
}

// ReplicaStatus is one replica's registry row, as served by
// GET /v1/replication.
type ReplicaStatus struct {
	Name         string    `json:"name"`
	AppliedEpoch uint64    `json:"applied_epoch"`
	Lag          uint64    `json:"lag"`
	LastSync     time.Time `json:"last_sync"`
	Connected    bool      `json:"connected"`
}

// NewHub builds a leader hub around exp; ins may be nil.
func NewHub(exp Exporter, ins *HubInstruments) *Hub {
	return &Hub{exp: exp, ins: ins, replicas: map[string]*replicaEntry{}}
}

// SyncSnapshot serves one SYNC request. A replica that has already
// applied the current epoch gets an ack (empty data, current epoch) —
// that request doubles as the replica's progress report, which is what
// keeps the registry's applied-epoch column honest between transfers.
func (h *Hub) SyncSnapshot(replica string, applied uint64) (wire.SyncState, error) {
	start := time.Now()
	h.mu.Lock()
	e := h.replicas[replica]
	if e == nil {
		e = &replicaEntry{}
		h.replicas[replica] = e
	}
	e.applied = applied
	e.lastSync = start
	e.connected = true

	cur := h.exp.PushEpoch()
	if applied >= cur {
		h.mu.Unlock()
		if h.ins != nil && h.ins.SyncSeconds != nil {
			h.ins.SyncSeconds(time.Since(start).Seconds())
		}
		return wire.SyncState{Epoch: cur}, nil
	}
	if h.cachedData == nil || h.cachedEpoch < cur {
		epoch, data, err := h.exp.ExportSyncSnapshot()
		if err != nil {
			h.mu.Unlock()
			return wire.SyncState{}, err
		}
		h.cachedEpoch, h.cachedData = epoch, data
		h.cachedHash = sha256.Sum256(data)
	}
	st := wire.SyncState{Epoch: h.cachedEpoch, Hash: h.cachedHash, Data: h.cachedData}
	h.mu.Unlock()
	if h.ins != nil {
		if h.ins.Sync != nil {
			h.ins.Sync()
		}
		if h.ins.SyncBytes != nil {
			h.ins.SyncBytes(float64(len(st.Data)))
		}
		if h.ins.SyncSeconds != nil {
			h.ins.SyncSeconds(time.Since(start).Seconds())
		}
	}
	return st, nil
}

// ReplicaDisconnected marks a replica's connection state down; the
// wire server calls it when a connection that issued SYNC requests
// closes (wire.ReplicaTracker).
func (h *Hub) ReplicaDisconnected(replica string) {
	h.mu.Lock()
	if e := h.replicas[replica]; e != nil {
		e.connected = false
	}
	h.mu.Unlock()
}

// Status returns the registry sorted by replica name. Lag is the
// epoch distance between the leader's current push epoch and the
// replica's last-reported applied epoch.
func (h *Hub) Status() []ReplicaStatus {
	cur := h.exp.PushEpoch()
	h.mu.Lock()
	out := make([]ReplicaStatus, 0, len(h.replicas))
	for name, e := range h.replicas {
		lag := uint64(0)
		if cur > e.applied {
			lag = cur - e.applied
		}
		out = append(out, ReplicaStatus{
			Name: name, AppliedEpoch: e.applied, Lag: lag,
			LastSync: e.lastSync, Connected: e.connected,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
