package replicate

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"activerbac/internal/wire"
)

// Applier installs one verified sync snapshot into the local system.
// rbacd's replica mode injects an applier that runs the synced policy
// through its analyze/verify gates before the facade install.
type Applier interface {
	Apply(data []byte) error
}

// ReplicaInstruments are optional replica-side metrics hooks; any
// field may be nil.
type ReplicaInstruments struct {
	// Sync is called once per snapshot applied.
	Sync func()
	// SyncBytes is called with the payload size of each applied
	// snapshot.
	SyncBytes func(n float64)
	// SyncSeconds observes each transfer+apply, in seconds.
	SyncSeconds func(seconds float64)
	// Lag sets the current epoch lag (leader push epoch seen minus
	// applied epoch) whenever either side moves.
	Lag func(lag float64)
}

// ReplicaOptions configures a Replica.
type ReplicaOptions struct {
	// Name identifies this replica to the leader's registry. Required.
	Name string
	// LeaderAddr is the leader's wire listener. Required.
	LeaderAddr string
	// Applier installs verified snapshots. Required.
	Applier Applier
	// MaxFrame bounds one received frame; a sync response carries a
	// whole snapshot, so the default is MaxSyncData plus header slack,
	// not wire.DefaultMaxFrame.
	MaxFrame int
	// Timeout bounds each round trip, transfers included. Default 60s.
	Timeout time.Duration
	// Instruments hooks replica metrics; nil disables.
	Instruments *ReplicaInstruments
	// Logf logs state transitions (connects, sync failures); nil
	// discards.
	Logf func(format string, args ...any)
}

// Replica reconnect/retry backoff bounds — deliberately coarser than
// the wire client's redial backoff underneath it, which already
// protects a restarting leader from a dial storm.
const (
	replicaRetryBase = 50 * time.Millisecond
	replicaRetryCap  = 2 * time.Second
)

// Replica is the replica-side sync state machine: subscribe to the
// leader's epoch pushes, pull a snapshot whenever the observed epoch
// runs ahead of the applied one, verify, install, report progress. It
// owns one background goroutine for its whole life. On any failure —
// leader down, subscription lost, transfer corrupt — it keeps the
// last-applied state serving and retries with backoff; the applied
// epoch only ever moves forward.
type Replica struct {
	opts   ReplicaOptions
	client *wire.Client

	applied     atomic.Uint64
	leaderEpoch atomic.Uint64
	synced      atomic.Bool
	subscribed  atomic.Bool
	connected   atomic.Bool
	syncs       atomic.Uint64
	// needSync forces a sync round even when the epoch comparison says
	// "current" — set when a resubscribe reveals a leader whose epoch
	// counter regressed (a restarted leader is a new incarnation whose
	// numbering shares nothing with the old one).
	needSync atomic.Bool

	kick      chan struct{}
	done      chan struct{}
	exited    chan struct{}
	closeOnce sync.Once
}

// StartReplica validates opts and starts the sync loop. It returns
// immediately — a leader that is down at start is a retry case, not a
// construction error (the replica is simply not Synced yet, which is
// what holds rbacd's /readyz down).
func StartReplica(opts ReplicaOptions) (*Replica, error) {
	if opts.Name == "" {
		return nil, errors.New("replicate: replica needs a name")
	}
	if opts.LeaderAddr == "" {
		return nil, errors.New("replicate: replica needs a leader address")
	}
	if opts.Applier == nil {
		return nil, errors.New("replicate: replica needs an applier")
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = wire.MaxSyncData + wire.SyncHashSize + wire.HeaderSize + 64
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 60 * time.Second
	}
	r := &Replica{
		opts:   opts,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// AppliedEpoch reports the leader push epoch of the last installed
// snapshot (0 before the first sync).
func (r *Replica) AppliedEpoch() uint64 { return r.applied.Load() }

// LeaderEpoch reports the newest leader push epoch this replica has
// observed (via SUBSCRIBE, pushes, or sync responses).
func (r *Replica) LeaderEpoch() uint64 { return r.leaderEpoch.Load() }

// Lag reports the epoch distance between the observed leader epoch and
// the applied one.
func (r *Replica) Lag() uint64 {
	le, ap := r.leaderEpoch.Load(), r.applied.Load()
	if le <= ap {
		return 0
	}
	return le - ap
}

// Synced reports whether the first snapshot has been installed — the
// readiness gate.
func (r *Replica) Synced() bool { return r.synced.Load() }

// Connected reports whether the replica currently holds a live
// subscription to the leader. False means reads are serving the
// last-applied epoch with unbounded staleness.
func (r *Replica) Connected() bool { return r.connected.Load() }

// Syncs reports how many snapshots have been installed.
func (r *Replica) Syncs() uint64 { return r.syncs.Load() }

// Close stops the sync loop and closes the leader connection. The
// local system keeps whatever state was last applied.
func (r *Replica) Close() error {
	r.closeOnce.Do(func() { close(r.done) })
	<-r.exited
	if r.client != nil {
		r.client.Close()
	}
	return nil
}

func (r *Replica) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// wake nudges the run loop without ever blocking (one pending wake
// coalesces any burst).
func (r *Replica) wake() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// observeLeader records a leader epoch sighting, monotonically.
func (r *Replica) observeLeader(epoch uint64) {
	for {
		cur := r.leaderEpoch.Load()
		if epoch <= cur || r.leaderEpoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	r.reportLag()
}

func (r *Replica) reportLag() {
	if ins := r.opts.Instruments; ins != nil && ins.Lag != nil {
		ins.Lag(float64(r.Lag()))
	}
}

// sleep waits d or until Close; true means closed.
func (r *Replica) sleep(d time.Duration) bool {
	select {
	case <-r.done:
		return true
	case <-time.After(d):
		return false
	}
}

// run is the sync loop: (re)connect, (re)subscribe, sync to the
// observed epoch, then park until a push or a loss wakes it.
func (r *Replica) run() {
	defer close(r.exited)
	backoff := replicaRetryBase
	for {
		select {
		case <-r.done:
			return
		default:
		}
		if r.client == nil {
			c, err := wire.Dial(r.opts.LeaderAddr, &wire.ClientOptions{
				MaxFrame: r.opts.MaxFrame,
				Timeout:  r.opts.Timeout,
				OnEpochPush: func(epoch uint64) {
					// Read-goroutine callback: record and wake, never block.
					r.observeLeader(epoch)
					r.wake()
				},
				OnSubscriptionLost: func() {
					// Pushes may be missed from this instant: the observed
					// leader epoch can no longer be trusted as current, so
					// the loop must resubscribe (which re-reads it) before
					// trusting "no gap" again.
					r.subscribed.Store(false)
					r.connected.Store(false)
					r.wake()
				},
			})
			if err != nil {
				r.logf("replica %s: dial %s: %v", r.opts.Name, r.opts.LeaderAddr, err)
				if r.sleep(backoff) {
					return
				}
				backoff = growBackoff(backoff)
				continue
			}
			r.client = c
		}
		if !r.subscribed.Load() {
			epoch, err := r.client.Subscribe()
			if err != nil {
				r.connected.Store(false)
				r.logf("replica %s: subscribe: %v", r.opts.Name, err)
				if r.sleep(backoff) {
					return
				}
				backoff = growBackoff(backoff)
				continue
			}
			r.subscribed.Store(true)
			r.connected.Store(true)
			if r.synced.Load() && epoch < r.applied.Load() {
				// The leader's push epoch runs below what this replica has
				// applied: epochs are in-memory counters, so that means a
				// restarted leader with a reset counter — a new incarnation
				// whose numbering shares nothing with the old one. Reset
				// the observed epoch (non-monotonically) and force a full
				// resync. synced stays true: the old state keeps serving
				// (stale, not down) until the fresh snapshot lands.
				r.logf("replica %s: leader epoch %d below applied %d — leader restarted, forcing full resync",
					r.opts.Name, epoch, r.applied.Load())
				r.leaderEpoch.Store(epoch)
				r.needSync.Store(true)
				r.reportLag()
			} else {
				r.observeLeader(epoch)
			}
			r.logf("replica %s: subscribed to %s at epoch %d", r.opts.Name, r.opts.LeaderAddr, epoch)
		}
		if !r.synced.Load() || r.needSync.Load() || r.leaderEpoch.Load() > r.applied.Load() {
			if err := r.syncToCurrent(); err != nil {
				r.logf("replica %s: sync: %v", r.opts.Name, err)
				if r.sleep(backoff) {
					return
				}
				backoff = growBackoff(backoff)
				continue
			}
		}
		backoff = replicaRetryBase
		select {
		case <-r.kick:
		case <-r.done:
			return
		}
	}
}

func growBackoff(d time.Duration) time.Duration {
	if d *= 2; d > replicaRetryCap {
		return replicaRetryCap
	}
	return d
}

// syncToCurrent pulls snapshots until the leader acks that the applied
// epoch is current. Each request reports the applied epoch, so the
// final ack doubles as the progress report that settles the leader's
// registry row. When a resync was forced (leader restart), the first
// request claims epoch 0 so the new incarnation sends a full snapshot
// whatever its counter says.
func (r *Replica) syncToCurrent() error {
	for {
		start := time.Now()
		claim := r.applied.Load()
		if r.needSync.Load() {
			claim = 0
		}
		st, err := r.client.Sync(r.opts.Name, claim)
		if err != nil {
			return err
		}
		r.observeLeader(st.Epoch)
		if len(st.Data) == 0 {
			if st.Epoch > claim {
				return fmt.Errorf("leader acked epoch %d above applied %d with no data", st.Epoch, claim)
			}
			if r.needSync.Swap(false) {
				// Forced-resync ack at epoch 0: the new incarnation has
				// published nothing yet; adopt its numbering.
				r.applied.Store(st.Epoch)
			}
			return nil // up to date
		}
		if sum := sha256.Sum256(st.Data); sum != st.Hash {
			return fmt.Errorf("snapshot hash mismatch at epoch %d (%d bytes)", st.Epoch, len(st.Data))
		}
		if err := r.opts.Applier.Apply(st.Data); err != nil {
			return fmt.Errorf("apply epoch %d: %w", st.Epoch, err)
		}
		if prev := r.applied.Load(); st.Epoch < prev {
			r.logf("replica %s: applied epoch regressed %d -> %d (new leader incarnation)",
				r.opts.Name, prev, st.Epoch)
		}
		r.applied.Store(st.Epoch)
		r.needSync.Store(false)
		r.synced.Store(true)
		r.syncs.Add(1)
		r.reportLag()
		if ins := r.opts.Instruments; ins != nil {
			if ins.Sync != nil {
				ins.Sync()
			}
			if ins.SyncBytes != nil {
				ins.SyncBytes(float64(len(st.Data)))
			}
			if ins.SyncSeconds != nil {
				ins.SyncSeconds(time.Since(start).Seconds())
			}
		}
		r.logf("replica %s: applied epoch %d (%d bytes)", r.opts.Name, st.Epoch, len(st.Data))
	}
}
