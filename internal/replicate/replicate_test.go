package replicate

import (
	"crypto/sha256"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activerbac/internal/wire"
)

// fakeExporter is a controllable leader facade: one payload per epoch.
type fakeExporter struct {
	mu      sync.Mutex
	epoch   uint64
	data    []byte
	exports int
}

func (f *fakeExporter) set(epoch uint64, data []byte) {
	f.mu.Lock()
	f.epoch, f.data = epoch, data
	f.mu.Unlock()
}

func (f *fakeExporter) ExportSyncSnapshot() (uint64, []byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.exports++
	return f.epoch, append([]byte(nil), f.data...), nil
}

func (f *fakeExporter) PushEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeExporter) exportCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.exports
}

// hubBackend is the minimal leader-side wire backend: checks always
// deny (unused), sync goes to the hub.
type hubBackend struct {
	exp *fakeExporter
	hub *Hub

	// corruptHash, when set, flips a hash byte on every sync response —
	// the transfer-corruption fault injection.
	corruptHash atomic.Bool
	// truncate, when set, drops the payload's last byte after hashing —
	// a mid-transfer loss the hash check must catch.
	truncate atomic.Bool
}

func (b *hubBackend) Check(_, _, _ string) bool { return false }
func (b *hubBackend) PolicyEpoch() uint64       { return b.exp.PushEpoch() }
func (b *hubBackend) PushEpoch() uint64         { return b.exp.PushEpoch() }
func (b *hubBackend) SyncSnapshot(replica string, applied uint64) (wire.SyncState, error) {
	st, err := b.hub.SyncSnapshot(replica, applied)
	if err != nil || len(st.Data) == 0 {
		return st, err
	}
	if b.corruptHash.Load() {
		st.Hash[0] ^= 0xFF
	}
	if b.truncate.Load() {
		st.Data = st.Data[:len(st.Data)-1]
	}
	return st, err
}
func (b *hubBackend) ReplicaDisconnected(replica string) { b.hub.ReplicaDisconnected(replica) }

// recordApplier stores every installed payload.
type recordApplier struct {
	mu      sync.Mutex
	applies [][]byte
}

func (a *recordApplier) Apply(data []byte) error {
	a.mu.Lock()
	a.applies = append(a.applies, append([]byte(nil), data...))
	a.mu.Unlock()
	return nil
}

func (a *recordApplier) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.applies)
}

func (a *recordApplier) last() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.applies) == 0 {
		return nil
	}
	return a.applies[len(a.applies)-1]
}

// startLeader serves a hub over a loopback listener; the returned stop
// function closes the server but keeps the address for a restart.
func startLeader(t *testing.T, b *hubBackend) (addr string, srv *wire.Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv = wire.NewServer(b, nil)
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func startTestReplica(t *testing.T, name, addr string, ap Applier) *Replica {
	t.Helper()
	rep, err := StartReplica(ReplicaOptions{
		Name: name, LeaderAddr: addr, Applier: ap, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}

func TestReplicaSyncAndEpochGapResync(t *testing.T) {
	exp := &fakeExporter{}
	exp.set(5, []byte("state-at-5"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}
	addr, srv := startLeader(t, b)

	ap := &recordApplier{}
	rep := startTestReplica(t, "site-a", addr, ap)

	waitFor(t, "first sync", func() bool { return rep.Synced() && rep.AppliedEpoch() == 5 })
	if got := string(ap.last()); got != "state-at-5" {
		t.Fatalf("applied %q, want state-at-5", got)
	}
	if rep.Lag() != 0 || !rep.Connected() {
		t.Fatalf("lag=%d connected=%v after sync", rep.Lag(), rep.Connected())
	}

	// An epoch push announcing a gap triggers exactly one resync.
	exp.set(9, []byte("state-at-9"))
	srv.NotifyEpoch(9)
	waitFor(t, "gap resync", func() bool { return rep.AppliedEpoch() == 9 })
	if got := string(ap.last()); got != "state-at-9" {
		t.Fatalf("applied %q, want state-at-9", got)
	}

	// The leader registry settled on the acked epoch.
	waitFor(t, "registry settle", func() bool {
		sts := b.hub.Status()
		return len(sts) == 1 && sts[0].Name == "site-a" &&
			sts[0].AppliedEpoch == 9 && sts[0].Lag == 0 && sts[0].Connected
	})
}

func TestHubCachesOneEncodePerEpoch(t *testing.T) {
	exp := &fakeExporter{}
	exp.set(3, []byte("shared"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}
	addr, _ := startLeader(t, b)

	apA, apB := &recordApplier{}, &recordApplier{}
	repA := startTestReplica(t, "site-a", addr, apA)
	repB := startTestReplica(t, "site-b", addr, apB)
	waitFor(t, "both synced", func() bool {
		return repA.AppliedEpoch() == 3 && repB.AppliedEpoch() == 3
	})
	if n := exp.exportCount(); n != 1 {
		t.Fatalf("exports = %d, want 1 (per-epoch cache)", n)
	}
	if len(b.hub.Status()) != 2 {
		t.Fatalf("registry rows = %d, want 2", len(b.hub.Status()))
	}
}

func TestReplicaRejectsCorruptTransfer(t *testing.T) {
	exp := &fakeExporter{}
	exp.set(4, []byte("good-state"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}
	b.corruptHash.Store(true)
	addr, _ := startLeader(t, b)

	ap := &recordApplier{}
	rep := startTestReplica(t, "site-a", addr, ap)

	// Corrupted transfers never install: the replica stays unsynced and
	// keeps retrying with backoff.
	time.Sleep(150 * time.Millisecond)
	if rep.Synced() || ap.count() != 0 {
		t.Fatalf("corrupt transfer installed: synced=%v applies=%d", rep.Synced(), ap.count())
	}

	// The moment transfers are whole again, the retry loop converges.
	b.corruptHash.Store(false)
	waitFor(t, "recovery after corruption", func() bool { return rep.AppliedEpoch() == 4 })
	if got := string(ap.last()); got != "good-state" {
		t.Fatalf("applied %q after recovery", got)
	}
}

func TestReplicaRejectsTruncatedTransfer(t *testing.T) {
	// A transfer cut mid-stream hashes wrong — the partial state is
	// structurally un-appliable, which is the crash-mid-sync guarantee.
	exp := &fakeExporter{}
	exp.set(4, []byte("whole-state"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}
	b.truncate.Store(true)
	addr, _ := startLeader(t, b)

	ap := &recordApplier{}
	rep := startTestReplica(t, "site-a", addr, ap)
	time.Sleep(150 * time.Millisecond)
	if rep.Synced() || ap.count() != 0 {
		t.Fatalf("truncated transfer installed: synced=%v applies=%d", rep.Synced(), ap.count())
	}
	b.truncate.Store(false)
	waitFor(t, "recovery after truncation", func() bool { return rep.AppliedEpoch() == 4 })
}

func TestReplicaCrashRestartMidSync(t *testing.T) {
	// A replica process dying mid-sync loses only its in-memory state:
	// the restarted replica claims epoch 0, pulls a full snapshot, and
	// re-converges from scratch.
	exp := &fakeExporter{}
	exp.set(6, []byte("state-at-6"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}
	b.truncate.Store(true) // first incarnation only ever sees broken transfers
	addr, _ := startLeader(t, b)

	ap1 := &recordApplier{}
	rep1 := startTestReplica(t, "site-a", addr, ap1)
	time.Sleep(100 * time.Millisecond)
	rep1.Close() // crash mid-sync: nothing was ever applied
	if ap1.count() != 0 {
		t.Fatalf("partial sync applied %d snapshots", ap1.count())
	}

	b.truncate.Store(false)
	ap2 := &recordApplier{}
	rep2 := startTestReplica(t, "site-a", addr, ap2)
	waitFor(t, "restart convergence", func() bool { return rep2.AppliedEpoch() == 6 })
	if got := string(ap2.last()); got != "state-at-6" {
		t.Fatalf("applied %q after restart", got)
	}
}

func TestReplicaServesThroughLeaderLoss(t *testing.T) {
	exp := &fakeExporter{}
	exp.set(5, []byte("state-at-5"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	srv := wire.NewServer(b, nil)
	go func() { _ = srv.Serve(ln) }()

	ap := &recordApplier{}
	rep := startTestReplica(t, "site-a", addr, ap)
	waitFor(t, "first sync", func() bool { return rep.AppliedEpoch() == 5 })

	// Leader dies: the replica stays synced (stale, never down) and
	// reports the lost subscription.
	srv.Close()
	waitFor(t, "loss detection", func() bool { return !rep.Connected() })
	if !rep.Synced() || rep.AppliedEpoch() != 5 {
		t.Fatalf("replica dropped state on leader loss: synced=%v applied=%d",
			rep.Synced(), rep.AppliedEpoch())
	}

	// Same incarnation comes back (epoch moved forward): plain resync.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	exp.set(8, []byte("state-at-8"))
	srv2 := wire.NewServer(b, nil)
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { srv2.Close() })

	waitFor(t, "reconnect resync", func() bool { return rep.AppliedEpoch() == 8 })
	if !rep.Connected() {
		t.Fatal("replica not reconnected")
	}
}

func TestReplicaAdoptsRestartedLeaderNumbering(t *testing.T) {
	exp := &fakeExporter{}
	exp.set(50, []byte("old-incarnation"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	srv := wire.NewServer(b, nil)
	go func() { _ = srv.Serve(ln) }()

	ap := &recordApplier{}
	rep := startTestReplica(t, "site-a", addr, ap)
	waitFor(t, "first sync", func() bool { return rep.AppliedEpoch() == 50 })

	// The leader restarts as a new incarnation whose epoch counter is
	// far below what this replica applied. The replica must detect the
	// regression on resubscribe, force a full resync, and adopt the new
	// numbering — while serving the old state the whole time.
	srv.Close()
	waitFor(t, "loss detection", func() bool { return !rep.Connected() })

	exp2 := &fakeExporter{}
	exp2.set(2, []byte("new-incarnation"))
	b2 := &hubBackend{exp: exp2, hub: NewHub(exp2, nil)}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := wire.NewServer(b2, nil)
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { srv2.Close() })

	waitFor(t, "new incarnation adopted", func() bool {
		return rep.AppliedEpoch() == 2 && string(ap.last()) == "new-incarnation"
	})
	if !rep.Synced() {
		t.Fatal("synced flag dropped across leader restart")
	}
}

func TestHubAckDoublesAsProgressReport(t *testing.T) {
	exp := &fakeExporter{}
	exp.set(7, []byte("state"))
	hub := NewHub(exp, nil)

	// Behind: full transfer, hash matches content.
	st, err := hub.SyncSnapshot("site-a", 2)
	if err != nil || st.Epoch != 7 || len(st.Data) == 0 {
		t.Fatalf("SyncSnapshot behind = (%+v, %v)", st, err)
	}
	if sha256.Sum256(st.Data) != st.Hash {
		t.Fatal("hub hash does not match payload")
	}

	// Current: empty ack, registry row updated to the reported epoch.
	ack, err := hub.SyncSnapshot("site-a", 7)
	if err != nil || ack.Epoch != 7 || len(ack.Data) != 0 {
		t.Fatalf("SyncSnapshot current = (%+v, %v)", ack, err)
	}
	sts := hub.Status()
	if len(sts) != 1 || sts[0].AppliedEpoch != 7 || sts[0].Lag != 0 || !sts[0].Connected {
		t.Fatalf("Status after ack = %+v", sts)
	}

	hub.ReplicaDisconnected("site-a")
	if sts := hub.Status(); sts[0].Connected {
		t.Fatal("registry row still connected after disconnect")
	}

	// Status sorts by name.
	if _, err := hub.SyncSnapshot("site-b", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.SyncSnapshot("aaa", 7); err != nil {
		t.Fatal(err)
	}
	sts = hub.Status()
	if len(sts) != 3 || sts[0].Name != "aaa" || sts[1].Name != "site-a" || sts[2].Name != "site-b" {
		t.Fatalf("Status order = %+v", sts)
	}
}

func TestStartReplicaValidation(t *testing.T) {
	ap := &recordApplier{}
	for _, opts := range []ReplicaOptions{
		{LeaderAddr: "x", Applier: ap},
		{Name: "r", Applier: ap},
		{Name: "r", LeaderAddr: "x"},
	} {
		if _, err := StartReplica(opts); err == nil {
			t.Fatalf("StartReplica(%+v) accepted", opts)
		}
	}
}

func TestReplicaStartsBeforeLeader(t *testing.T) {
	// A leader that is down at replica start is a retry case: the
	// replica is simply not synced until the leader appears.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ap := &recordApplier{}
	rep := startTestReplica(t, "site-a", addr, ap)
	time.Sleep(80 * time.Millisecond)
	if rep.Synced() {
		t.Fatal("synced with no leader")
	}

	exp := &fakeExporter{}
	exp.set(3, []byte("late-leader"))
	b := &hubBackend{exp: exp, hub: NewHub(exp, nil)}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv := wire.NewServer(b, nil)
	go func() { _ = srv.Serve(ln2) }()
	t.Cleanup(func() { srv.Close() })
	waitFor(t, "late leader sync", func() bool { return rep.AppliedEpoch() == 3 })
}
