// Package conformance executes the paper's Section 6 comparison claims
// as code (experiment E9): each Feature in the matrix is a miniature
// scenario run against a freshly built engine, verifying that this
// implementation supports the capabilities the paper says contemporary
// systems (OASIS, Adage, X-GTRBAC, TRBAC, RB-RBAC) lacked.
//
// Matrix() is used both by the test suite (every feature must pass) and
// by cmd/bench, which prints it as the paper-style comparison table.
package conformance

import (
	"errors"
	"fmt"
	"time"

	"activerbac"
	"activerbac/internal/clock"
)

// Feature is one row of the comparison matrix.
type Feature struct {
	// Name is the capability, phrased as in the paper's Section 6.
	Name string
	// MissingIn names the related systems the paper says lack it.
	MissingIn string
	// Supported reports whether the scenario passed.
	Supported bool
	// Detail explains a failure (empty on success).
	Detail string
}

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// scenario builds a system from policy source and runs a check.
type scenario struct {
	name      string
	missingIn string
	policy    string
	run       func(sys *activerbac.System, sim *clock.Sim) error
}

// Matrix executes every conformance scenario and returns the matrix.
func Matrix() []Feature {
	out := make([]Feature, 0, len(scenarios))
	for _, sc := range scenarios {
		f := Feature{Name: sc.name, MissingIn: sc.missingIn, Supported: true}
		sim := clock.NewSim(epoch)
		sys, err := activerbac.Open(sc.policy, &activerbac.Options{Clock: sim})
		if err != nil {
			f.Supported = false
			f.Detail = "open: " + err.Error()
			out = append(out, f)
			continue
		}
		if err := sc.run(sys, sim); err != nil {
			f.Supported = false
			f.Detail = err.Error()
		}
		sys.Close()
		out = append(out, f)
	}
	return out
}

var scenarios = []scenario{
	{
		name:      "role hierarchies (senior inherits junior permissions)",
		missingIn: "OASIS, Adage",
		policy: `
role Senior
role Junior
hierarchy Senior > Junior
permission Junior: read doc
user u: Senior
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			sid, err := sys.CreateSession("u")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("u", sid, "Senior"); err != nil {
				return err
			}
			if !sys.CheckAccess(sid, activerbac.Permission{Operation: "read", Object: "doc"}) {
				return errors.New("senior did not inherit junior permission")
			}
			return nil
		},
	},
	{
		name:      "cardinality constraints (max concurrent activations)",
		missingIn: "OASIS, Adage",
		policy: `
role President
user a: President
user b: President
cardinality President 1
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			sa, err := sys.CreateSession("a")
			if err != nil {
				return err
			}
			sb, err := sys.CreateSession("b")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("a", sa, "President"); err != nil {
				return err
			}
			if err := sys.AddActiveRole("b", sb, "President"); err == nil {
				return errors.New("second activation allowed beyond cardinality")
			}
			return nil
		},
	},
	{
		name:      "static separation of duty with hierarchies",
		missingIn: "OASIS (no SoD+hierarchy combination)",
		policy: `
role PM
role PC
role AC
hierarchy PM > PC
ssd pa 2: PC, AC
user alice: PM
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			if err := sys.AssignUser("alice", "AC"); err == nil {
				return errors.New("inherited SSD conflict not enforced")
			}
			return nil
		},
	},
	{
		name:      "dynamic separation of duty at activation time",
		missingIn: "Adage (history-based only)",
		policy: `
role Teller
role Auditor
dsd bank 2: Teller, Auditor
user eve: Teller, Auditor
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			sid, err := sys.CreateSession("eve")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("eve", sid, "Teller"); err != nil {
				return err
			}
			if err := sys.AddActiveRole("eve", sid, "Auditor"); err == nil {
				return errors.New("DSD violation allowed")
			}
			return nil
		},
	},
	{
		name:      "time-based separation of duty (disabling-time SoD)",
		missingIn: "X-GTRBAC",
		policy: `
role Nurse
role Doctor
timesod ward 00:00:00-23:59:59: Nurse, Doctor
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			if err := sys.DisableRole("Doctor"); err != nil {
				return err
			}
			if err := sys.DisableRole("Nurse"); err == nil {
				return errors.New("both ward roles disabled inside window")
			}
			return nil
		},
	},
	{
		name:      "periodic role enabling (GTRBAC shifts)",
		missingIn: "Adage, RB-RBAC",
		policy: `
role DayDoctor
user d: DayDoctor
shift DayDoctor 10:00:00-17:00:00
`,
		run: func(sys *activerbac.System, sim *clock.Sim) error {
			sid, err := sys.CreateSession("d")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("d", sid, "DayDoctor"); err == nil {
				return errors.New("activation allowed outside shift")
			}
			sim.AdvanceTo(time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
			if err := sys.AddActiveRole("d", sid, "DayDoctor"); err != nil {
				return fmt.Errorf("activation inside shift denied: %w", err)
			}
			return nil
		},
	},
	{
		name:      "per-activation duration bounds (Rule 7)",
		missingIn: "OASIS (minimal temporal constraints)",
		policy: `
role R
user u: R
duration * R 2h
`,
		run: func(sys *activerbac.System, sim *clock.Sim) error {
			sid, err := sys.CreateSession("u")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("u", sid, "R"); err != nil {
				return err
			}
			sim.Advance(3 * time.Hour)
			roles, err := sys.SessionRoles(sid)
			if err != nil {
				return err
			}
			if len(roles) != 0 {
				return errors.New("activation survived its duration bound")
			}
			return nil
		},
	},
	{
		name:      "dynamic role deactivation via rules (Rule 9)",
		missingIn: "X-GTRBAC, RB-RBAC",
		policy: `
role Manager
role JuniorEmp
user m: Manager
user j: JuniorEmp
require JuniorEmp needs-active Manager
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			sm, err := sys.CreateSession("m")
			if err != nil {
				return err
			}
			sj, err := sys.CreateSession("j")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("m", sm, "Manager"); err != nil {
				return err
			}
			if err := sys.AddActiveRole("j", sj, "JuniorEmp"); err != nil {
				return err
			}
			if err := sys.DropActiveRole("m", sm, "Manager"); err != nil {
				return err
			}
			roles, err := sys.SessionRoles(sj)
			if err != nil {
				return err
			}
			if len(roles) != 0 {
				return errors.New("dependent activation not revoked")
			}
			return nil
		},
	},
	{
		name:      "post-condition control-flow coupling (Rule 8)",
		missingIn: "all surveyed systems",
		policy: `
role SysAdmin
role SysAudit
couple SysAdmin -> SysAudit
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			if err := sys.DisableRole("SysAudit"); err != nil {
				return err
			}
			if sys.RoleEnabled("SysAdmin") {
				return errors.New("lead stayed enabled after follow disabled")
			}
			return nil
		},
	},
	{
		name:      "privacy-aware RBAC (purposes and consent)",
		missingIn: "all surveyed systems",
		policy: `
role Doctor
user d: Doctor
permission Doctor: read chart
purpose treatment
bind Doctor read chart for treatment
consent-required chart
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			sid, err := sys.CreateSession("d")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("d", sid, "Doctor"); err != nil {
				return err
			}
			p := activerbac.Permission{Operation: "read", Object: "chart"}
			if sys.CheckAccessForPurpose(sid, p, "treatment") {
				return errors.New("access allowed without consent")
			}
			if err := sys.GrantConsent("chart", "treatment"); err != nil {
				return err
			}
			if !sys.CheckAccessForPurpose(sid, p, "treatment") {
				return errors.New("access denied despite consent")
			}
			return nil
		},
	},
	{
		name:      "active security (autonomous reaction to attacks)",
		missingIn: "Adage, X-GTRBAC, RB-RBAC",
		policy: `
role Staff
user mallory: Staff
threshold burst 3 in 10m: lock-user
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			sid, err := sys.CreateSession("mallory")
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				sys.CheckAccess(sid, activerbac.Permission{Operation: "x", Object: "y"})
			}
			if !sys.UserLocked("mallory") {
				return errors.New("threshold crossing did not lock the user")
			}
			return nil
		},
	},
	{
		name:      "context-aware constraints (location/network gating)",
		missingIn: "Adage, X-GTRBAC, RB-RBAC",
		policy: `
role WardNurse
user n: WardNurse
context WardNurse requires location = ward
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			sid, err := sys.CreateSession("n")
			if err != nil {
				return err
			}
			if err := sys.AddActiveRole("n", sid, "WardNurse"); err == nil {
				return errors.New("activation allowed outside the required context")
			}
			if err := sys.SetContext("location", "ward"); err != nil {
				return err
			}
			if err := sys.AddActiveRole("n", sid, "WardNurse"); err != nil {
				return fmt.Errorf("activation denied inside context: %w", err)
			}
			// Leaving the ward revokes the activation.
			if err := sys.SetContext("location", "lobby"); err != nil {
				return err
			}
			roles, err := sys.SessionRoles(sid)
			if err != nil {
				return err
			}
			if len(roles) != 0 {
				return errors.New("activation survived the context change")
			}
			return nil
		},
	},
	{
		name:      "automatic rule generation from high-level specification",
		missingIn: "Adage, RB-RBAC (manual rules)",
		policy: `
role PM
role PC
hierarchy PM > PC
user u: PM
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			if len(sys.Rules()) < 8 {
				return fmt.Errorf("only %d rules generated", len(sys.Rules()))
			}
			return nil
		},
	},
	{
		name:      "rule regeneration on policy change",
		missingIn: "all surveyed systems (manual low-level edits)",
		policy: `
role A
role B
user u: A
`,
		run: func(sys *activerbac.System, _ *clock.Sim) error {
			rep, err := sys.ApplyPolicy("role A\nrole B\nuser u: A\ncardinality A 1\n")
			if err != nil {
				return err
			}
			if rep.Touched() != 1 {
				return fmt.Errorf("touched %d roles, want 1", rep.Touched())
			}
			return nil
		},
	},
}
