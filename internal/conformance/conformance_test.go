package conformance

import "testing"

// TestMatrix is experiment E9: every capability the paper claims for
// OWTE rules — including the ones it says contemporary systems lack —
// must hold on this implementation.
func TestMatrix(t *testing.T) {
	matrix := Matrix()
	if len(matrix) < 12 {
		t.Fatalf("matrix has only %d rows", len(matrix))
	}
	for _, f := range matrix {
		if !f.Supported {
			t.Errorf("feature %q failed: %s", f.Name, f.Detail)
		}
	}
}

func TestMatrixIsDeterministic(t *testing.T) {
	a := Matrix()
	b := Matrix()
	if len(a) != len(b) {
		t.Fatal("matrix size varies")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Supported != b[i].Supported {
			t.Fatalf("row %d varies: %+v vs %+v", i, a[i], b[i])
		}
	}
}
