package gtrbac

import (
	"fmt"
	"sort"
	"time"

	"activerbac/internal/event"
	"activerbac/internal/rbac"
)

// Role triggers (TRBAC, Bertino et al., cited by the paper): temporal
// dependencies among role enabling/disabling actions. A trigger fires on
// any occurrence of its event and enables or disables a role, either
// immediately or after a delay — e.g. "when roleEnabled.SysAdmin occurs,
// enable SysAudit", or "when shiftEnd occurs, disable Nurse after 15m".

// TriggerAction is what a trigger does to its target role.
type TriggerAction int

// Trigger actions.
const (
	// Enable enables the target role.
	Enable TriggerAction = iota
	// Disable disables the target role (subject to disabling-time SoD;
	// a veto leaves the role enabled).
	Disable
)

// String implements fmt.Stringer.
func (a TriggerAction) String() string {
	if a == Enable {
		return "enable"
	}
	return "disable"
}

// Trigger describes one installed role trigger.
type Trigger struct {
	ID     int
	On     string
	Role   rbac.RoleID
	Action TriggerAction
	After  time.Duration
}

// String renders the trigger in TRBAC-like syntax.
func (t Trigger) String() string {
	if t.After > 0 {
		return fmt.Sprintf("%s -> %s %s after %s", t.On, t.Action, t.Role, t.After)
	}
	return fmt.Sprintf("%s -> %s %s", t.On, t.Action, t.Role)
}

// trigState is Manager-internal trigger bookkeeping.
type trigState struct {
	Trigger
	subID int
	fired uint64
}

// AddTrigger installs a role trigger and returns its id. The triggering
// event must already be defined.
func (m *Manager) AddTrigger(onEvent string, role rbac.RoleID, action TriggerAction, after time.Duration) (int, error) {
	if !m.store.RoleExists(role) {
		return 0, fmt.Errorf("gtrbac: trigger for role %q: %w", role, rbac.ErrNotFound)
	}
	if err := m.RegisterRole(role); err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.schedSeq++
	id := m.schedSeq
	m.mu.Unlock()

	st := &trigState{Trigger: Trigger{ID: id, On: onEvent, Role: role, Action: action, After: after}}
	subID, err := m.det.Subscribe(onEvent, func(*event.Occurrence) { m.fireTrigger(st) })
	if err != nil {
		return 0, err
	}
	st.subID = subID

	m.mu.Lock()
	if m.triggers == nil {
		m.triggers = make(map[int]*trigState)
	}
	m.triggers[id] = st
	m.mu.Unlock()
	return id, nil
}

// fireTrigger applies a trigger, honoring its delay.
func (m *Manager) fireTrigger(st *trigState) {
	apply := func() {
		m.mu.Lock()
		if _, live := m.triggers[st.ID]; !live {
			m.mu.Unlock()
			return
		}
		st.fired++
		m.mu.Unlock()
		switch st.Action {
		case Enable:
			_ = m.EnableRole(st.Role)
		case Disable:
			// A time-SoD veto leaves the role enabled (availability
			// first), matching disableBySchedule.
			_ = m.disableBySchedule(st.Role)
		}
	}
	if st.After > 0 {
		m.clk.AfterFunc(st.After, apply)
		return
	}
	// Run after the current cascade so trigger effects observe the
	// state the triggering event left behind.
	m.det.Defer(apply)
}

// RemoveTrigger uninstalls a trigger.
func (m *Manager) RemoveTrigger(id int) error {
	m.mu.Lock()
	st, ok := m.triggers[id]
	if ok {
		delete(m.triggers, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("gtrbac: trigger %d: %w", id, rbac.ErrNotFound)
	}
	m.det.Unsubscribe(st.On, st.subID)
	return nil
}

// Triggers lists installed triggers sorted by id.
func (m *Manager) Triggers() []Trigger {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Trigger, 0, len(m.triggers))
	for _, st := range m.triggers {
		out = append(out, st.Trigger)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TriggerFired reports how many times trigger id fired.
func (m *Manager) TriggerFired(id int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.triggers[id]; ok {
		return st.fired
	}
	return 0
}
