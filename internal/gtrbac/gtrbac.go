// Package gtrbac implements the Generalized Temporal RBAC constraints the
// paper enforces with OWTE rules (Section 4.3.2): periodic role enabling
// and disabling driven by <[begin,end], P> expressions, per-activation
// duration bounds (Rule 7), disabling-time separation of duty (Rule 6),
// and TRBAC-style role triggers.
//
// The Manager owns the temporal state machine; it raises per-role
// enable/disable events on the detector so composite events and rules
// can react, and it listens to session activation events to arm
// duration timers. All scheduling goes through the detector's clock, so
// simulated time drives everything in tests and benchmarks.
package gtrbac

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/event"
	"activerbac/internal/rbac"
)

// Event-name conventions shared with the rule generator.

// EvRoleEnabled names the per-role enabling event (the paper's
// enableRoleSysAdmin() style functions).
func EvRoleEnabled(r rbac.RoleID) string { return "roleEnabled." + string(r) }

// EvRoleDisabled names the per-role disabling event (roleDisableNurse()).
func EvRoleDisabled(r rbac.RoleID) string { return "roleDisabled." + string(r) }

// Global session lifecycle events, raised by the enforcement layer after
// successful activations/deactivations; parameters: "user", "session",
// "role", and optionally "reason".
const (
	EvSessionRoleAdded   = "session.roleAdded"
	EvSessionRoleDropped = "session.roleDropped"
)

// durKey addresses a duration constraint; empty User means any user.
type durKey struct {
	User rbac.UserID
	Role rbac.RoleID
}

// timerKey addresses a pending per-activation timer.
type timerKey struct {
	Session rbac.SessionID
	Role    rbac.RoleID
}

// timeSoD is one disabling-time SoD constraint (Rule 6): within Window,
// the roles in Roles must never be simultaneously disabled.
type timeSoD struct {
	name   string
	roles  []rbac.RoleID
	window clock.Window
}

// schedule is one periodic enable/disable registration.
type schedule struct {
	id     int
	role   rbac.RoleID
	window clock.Window
	timer  clock.Timer
	done   bool
}

// Manager is the GTRBAC constraint engine.
type Manager struct {
	det   *event.Detector
	store *rbac.Store
	clk   clock.Clock

	mu        sync.Mutex
	durations map[durKey]time.Duration
	timers    map[timerKey]clock.Timer
	sods      map[string]*timeSoD
	schedules map[int]*schedule
	triggers  map[int]*trigState
	schedSeq  int
	expired   uint64 // activations dropped by duration timers
}

// New builds a Manager, registers the session lifecycle events and
// subscribes the duration machinery to them.
func New(det *event.Detector, store *rbac.Store) (*Manager, error) {
	m := &Manager{
		det:       det,
		store:     store,
		clk:       det.Clock(),
		durations: make(map[durKey]time.Duration),
		timers:    make(map[timerKey]clock.Timer),
		sods:      make(map[string]*timeSoD),
		schedules: make(map[int]*schedule),
	}
	for _, ev := range []string{EvSessionRoleAdded, EvSessionRoleDropped} {
		if err := det.DefinePrimitive(ev); err != nil {
			return nil, err
		}
	}
	if _, err := det.Subscribe(EvSessionRoleAdded, m.onActivated); err != nil {
		return nil, err
	}
	if _, err := det.Subscribe(EvSessionRoleDropped, m.onDropped); err != nil {
		return nil, err
	}
	return m, nil
}

// RegisterRole defines the per-role enable/disable events; idempotent.
func (m *Manager) RegisterRole(r rbac.RoleID) error {
	if err := m.det.DefinePrimitive(EvRoleEnabled(r)); err != nil {
		return err
	}
	return m.det.DefinePrimitive(EvRoleDisabled(r))
}

// ---------------------------------------------------------------------------
// Role enabling / disabling with disabling-time SoD

// EnableRole enables r and raises its enabling event.
func (m *Manager) EnableRole(r rbac.RoleID) error {
	if err := m.RegisterRole(r); err != nil {
		return err
	}
	if err := m.store.SetRoleEnabled(r, true); err != nil {
		return err
	}
	return m.det.Raise(EvRoleEnabled(r), event.Params{"role": string(r)})
}

// DisableRole disables r after checking every disabling-time SoD
// constraint (Rule 6): inside a constraint's window, at least one role
// of the set must stay enabled, so disabling the last enabled member is
// denied.
func (m *Manager) DisableRole(r rbac.RoleID) error {
	if err := m.RegisterRole(r); err != nil {
		return err
	}
	if name, ok := m.CanDisable(r); !ok {
		return fmt.Errorf("gtrbac: disabling %q denied by time SoD %q: %w", r, name, rbac.ErrDenied)
	}
	if err := m.store.SetRoleEnabled(r, false); err != nil {
		return err
	}
	return m.det.Raise(EvRoleDisabled(r), event.Params{"role": string(r)})
}

// CanDisable reports whether disabling r now satisfies every
// disabling-time SoD; on denial it names the violated constraint. It is
// the predicate form used by generated rule conditions.
func (m *Manager) CanDisable(r rbac.RoleID) (string, bool) {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range m.sods {
		if !containsRole(c.roles, r) || !c.window.Contains(now) {
			continue
		}
		othersEnabled := false
		for _, other := range c.roles {
			if other != r && m.store.RoleEnabled(other) {
				othersEnabled = true
				break
			}
		}
		if !othersEnabled {
			return name, false
		}
	}
	return "", true
}

func containsRole(roles []rbac.RoleID, r rbac.RoleID) bool {
	for _, x := range roles {
		if x == r {
			return true
		}
	}
	return false
}

// AddDisablingTimeSoD installs a Rule 6 constraint: within window, the
// member roles must never all be disabled at once.
func (m *Manager) AddDisablingTimeSoD(name string, roles []rbac.RoleID, window clock.Window) error {
	if len(roles) < 2 {
		return fmt.Errorf("gtrbac: time SoD %q needs at least 2 roles", name)
	}
	for _, r := range roles {
		if !m.store.RoleExists(r) {
			return fmt.Errorf("gtrbac: time SoD %q references role %q: %w", name, r, rbac.ErrNotFound)
		}
		if err := m.RegisterRole(r); err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sods[name]; dup {
		return fmt.Errorf("gtrbac: time SoD %q: %w", name, rbac.ErrExists)
	}
	m.sods[name] = &timeSoD{name: name, roles: append([]rbac.RoleID(nil), roles...), window: window}
	return nil
}

// RemoveDisablingTimeSoD deletes a Rule 6 constraint.
func (m *Manager) RemoveDisablingTimeSoD(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sods[name]; !ok {
		return fmt.Errorf("gtrbac: time SoD %q: %w", name, rbac.ErrNotFound)
	}
	delete(m.sods, name)
	return nil
}

// TimeSoDs lists the installed disabling-time SoD constraint names.
func (m *Manager) TimeSoDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sods))
	for n := range m.sods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Periodic enabling: <[begin,end], P>

// SchedulePeriodic keeps role r enabled exactly within window: it
// enables/disables immediately according to the current instant and
// re-arms a timer for every subsequent window transition. It returns a
// schedule id for Cancel.
func (m *Manager) SchedulePeriodic(r rbac.RoleID, window clock.Window) (int, error) {
	if !m.store.RoleExists(r) {
		return 0, fmt.Errorf("gtrbac: schedule for role %q: %w", r, rbac.ErrNotFound)
	}
	if err := m.RegisterRole(r); err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.schedSeq++
	sc := &schedule{id: m.schedSeq, role: r, window: window}
	m.schedules[sc.id] = sc
	m.mu.Unlock()

	m.applySchedule(sc)
	return sc.id, nil
}

// applySchedule sets the role state for "now" and arms the next
// transition timer.
func (m *Manager) applySchedule(sc *schedule) {
	m.mu.Lock()
	if sc.done {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	now := m.clk.Now()
	inWindow := sc.window.Contains(now)
	var next time.Time
	var ok bool
	if inWindow {
		next, ok = sc.window.NextStop(now)
	} else {
		next, ok = sc.window.NextStart(now)
	}

	// Apply the state transition outside m.mu (raises events).
	if inWindow {
		_ = m.EnableRole(sc.role)
	} else {
		_ = m.disableBySchedule(sc.role)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if sc.done || !ok {
		return
	}
	sc.timer = m.clk.At(next, func() { m.applySchedule(sc) })
}

// disableBySchedule disables without the time-SoD veto being fatal: if
// the veto denies, the role simply stays enabled until re-checked at the
// next transition (availability wins, per the paper's Rule 6 rationale).
func (m *Manager) disableBySchedule(r rbac.RoleID) error {
	if _, ok := m.CanDisable(r); !ok {
		return nil
	}
	if err := m.store.SetRoleEnabled(r, false); err != nil {
		return err
	}
	return m.det.Raise(EvRoleDisabled(r), event.Params{"role": string(r)})
}

// CancelSchedule stops a periodic schedule; the role keeps its current
// enabled state.
func (m *Manager) CancelSchedule(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sc, ok := m.schedules[id]
	if !ok {
		return fmt.Errorf("gtrbac: schedule %d: %w", id, rbac.ErrNotFound)
	}
	sc.done = true
	if sc.timer != nil {
		sc.timer.Stop()
	}
	delete(m.schedules, id)
	return nil
}

// ---------------------------------------------------------------------------
// Per-activation duration constraints (Rule 7)

// SetActivationDuration bounds every activation of role r to d,
// optionally restricted to one user (the paper's per user-role duration;
// empty user means the bound applies to all users). d <= 0 removes the
// constraint.
func (m *Manager) SetActivationDuration(u rbac.UserID, r rbac.RoleID, d time.Duration) error {
	if !m.store.RoleExists(r) {
		return fmt.Errorf("gtrbac: duration for role %q: %w", r, rbac.ErrNotFound)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := durKey{User: u, Role: r}
	if d <= 0 {
		delete(m.durations, k)
		return nil
	}
	m.durations[k] = d
	return nil
}

// durationFor resolves the tightest duration bound for (u, r): a
// user-specific bound wins over the role-wide one.
func (m *Manager) durationFor(u rbac.UserID, r rbac.RoleID) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.durations[durKey{User: u, Role: r}]; ok {
		return d, true
	}
	d, ok := m.durations[durKey{Role: r}]
	return d, ok
}

// onActivated arms a deactivation timer when a bounded role is
// activated (the PLUS event of Rule 7, started only after the role is
// actually active).
func (m *Manager) onActivated(o *event.Occurrence) {
	u := rbac.UserID(stringParam(o, "user"))
	sid := rbac.SessionID(stringParam(o, "session"))
	r := rbac.RoleID(stringParam(o, "role"))
	if sid == "" || r == "" {
		return
	}
	d, ok := m.durationFor(u, r)
	if !ok {
		return
	}
	k := timerKey{Session: sid, Role: r}
	m.mu.Lock()
	if old, ok := m.timers[k]; ok {
		old.Stop()
	}
	m.timers[k] = m.clk.AfterFunc(d, func() { m.expire(k, u) })
	m.mu.Unlock()
}

// expire force-deactivates a role whose duration elapsed and raises the
// drop event with reason "duration-expired".
func (m *Manager) expire(k timerKey, u rbac.UserID) {
	m.mu.Lock()
	if _, ok := m.timers[k]; !ok {
		m.mu.Unlock()
		return // dropped manually in the meantime
	}
	delete(m.timers, k)
	m.mu.Unlock()

	if !m.store.CheckSessionRole(k.Session, k.Role) {
		return
	}
	if err := m.store.RawDropSessionRole(k.Session, k.Role); err != nil {
		return
	}
	m.mu.Lock()
	m.expired++
	m.mu.Unlock()
	_ = m.det.Raise(EvSessionRoleDropped, event.Params{
		"user":    string(u),
		"session": string(k.Session),
		"role":    string(k.Role),
		"reason":  "duration-expired",
	})
}

// onDropped cancels the pending timer when a bounded role is dropped
// before its deadline.
func (m *Manager) onDropped(o *event.Occurrence) {
	if stringParam(o, "reason") == "duration-expired" {
		return // our own notification
	}
	k := timerKey{
		Session: rbac.SessionID(stringParam(o, "session")),
		Role:    rbac.RoleID(stringParam(o, "role")),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.timers[k]; ok {
		t.Stop()
		delete(m.timers, k)
	}
}

// Expired reports how many activations were force-deactivated by
// duration timers.
func (m *Manager) Expired() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.expired
}

// PendingTimers reports how many duration timers are armed.
func (m *Manager) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.timers)
}

func stringParam(o *event.Occurrence, key string) string {
	if o == nil || o.Params == nil {
		return ""
	}
	s, _ := o.Params[key].(string)
	return s
}
