package gtrbac

import (
	"errors"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/event"
	"activerbac/internal/rbac"
)

// Fixtures start at 09:00 so the 10:00-17:00 hospital window opens an
// hour in.
var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newFixture(t *testing.T) (*Manager, *rbac.Store, *event.Detector, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(t0)
	det := event.New(sim)
	store := rbac.NewStore()
	m, err := New(det, store)
	if err != nil {
		t.Fatal(err)
	}
	return m, store, det, sim
}

func addRole(t *testing.T, store *rbac.Store, r rbac.RoleID) {
	t.Helper()
	if err := store.AddRole(r); err != nil {
		t.Fatal(err)
	}
}

func hospitalWindow(t *testing.T) clock.Window {
	t.Helper()
	w, err := clock.ParseWindow("10:00:00/*/*/*", "17:00:00/*/*/*", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEnableDisableRaisesEvents(t *testing.T) {
	m, store, det, _ := newFixture(t)
	addRole(t, store, "Nurse")
	if err := m.RegisterRole("Nurse"); err != nil {
		t.Fatal(err)
	}
	var enabled, disabled int
	if _, err := det.Subscribe(EvRoleEnabled("Nurse"), func(*event.Occurrence) { enabled++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Subscribe(EvRoleDisabled("Nurse"), func(*event.Occurrence) { disabled++ }); err != nil {
		t.Fatal(err)
	}
	if err := m.DisableRole("Nurse"); err != nil {
		t.Fatal(err)
	}
	if store.RoleEnabled("Nurse") {
		t.Fatal("role enabled after DisableRole")
	}
	if err := m.EnableRole("Nurse"); err != nil {
		t.Fatal(err)
	}
	if !store.RoleEnabled("Nurse") {
		t.Fatal("role disabled after EnableRole")
	}
	if enabled != 1 || disabled != 1 {
		t.Fatalf("events enabled=%d disabled=%d", enabled, disabled)
	}
}

// --------------------------------------------------------------------------
// Rule 6: disabling-time SoD

func TestDisablingTimeSoD(t *testing.T) {
	m, store, _, sim := newFixture(t)
	addRole(t, store, "Nurse")
	addRole(t, store, "Doctor")
	if err := m.AddDisablingTimeSoD("ward", []rbac.RoleID{"Nurse", "Doctor"}, hospitalWindow(t)); err != nil {
		t.Fatal(err)
	}

	// 09:00, outside the window: both may be disabled.
	if err := m.DisableRole("Nurse"); err != nil {
		t.Fatal(err)
	}
	if err := m.DisableRole("Doctor"); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableRole("Nurse"); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableRole("Doctor"); err != nil {
		t.Fatal(err)
	}

	// Inside the window: disabling one is fine, disabling the second is
	// vetoed while the first is still disabled.
	sim.AdvanceTo(time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
	if err := m.DisableRole("Doctor"); err != nil {
		t.Fatal(err)
	}
	err := m.DisableRole("Nurse")
	if !errors.Is(err, rbac.ErrDenied) {
		t.Fatalf("second disable inside window: %v, want ErrDenied", err)
	}
	if name, ok := m.CanDisable("Nurse"); ok || name != "ward" {
		t.Fatalf("CanDisable = %q,%v", name, ok)
	}
	// Re-enabling Doctor frees Nurse.
	if err := m.EnableRole("Doctor"); err != nil {
		t.Fatal(err)
	}
	if err := m.DisableRole("Nurse"); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSoDValidation(t *testing.T) {
	m, store, _, _ := newFixture(t)
	addRole(t, store, "a")
	addRole(t, store, "b")
	w := hospitalWindow(t)
	if err := m.AddDisablingTimeSoD("x", []rbac.RoleID{"a"}, w); err == nil {
		t.Fatal("single-role set accepted")
	}
	if err := m.AddDisablingTimeSoD("x", []rbac.RoleID{"a", "ghost"}, w); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown role: %v", err)
	}
	if err := m.AddDisablingTimeSoD("x", []rbac.RoleID{"a", "b"}, w); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDisablingTimeSoD("x", []rbac.RoleID{"a", "b"}, w); !errors.Is(err, rbac.ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if got := m.TimeSoDs(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("TimeSoDs = %v", got)
	}
	if err := m.RemoveDisablingTimeSoD("x"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveDisablingTimeSoD("x"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

// --------------------------------------------------------------------------
// Periodic enabling

func TestSchedulePeriodic(t *testing.T) {
	m, store, _, sim := newFixture(t)
	addRole(t, store, "DayDoctor")
	if _, err := m.SchedulePeriodic("DayDoctor", hospitalWindow(t)); err != nil {
		t.Fatal(err)
	}
	// 09:00: outside the window, the schedule disables immediately.
	if store.RoleEnabled("DayDoctor") {
		t.Fatal("role enabled outside window at schedule time")
	}
	// Crossing 10:00 enables.
	sim.AdvanceTo(time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC))
	if !store.RoleEnabled("DayDoctor") {
		t.Fatal("role not enabled at window start")
	}
	// Crossing 17:00 disables.
	sim.AdvanceTo(time.Date(2026, 7, 6, 17, 0, 0, 0, time.UTC))
	if store.RoleEnabled("DayDoctor") {
		t.Fatal("role not disabled at window stop")
	}
	// Next day re-enables.
	sim.AdvanceTo(time.Date(2026, 7, 7, 10, 0, 0, 0, time.UTC))
	if !store.RoleEnabled("DayDoctor") {
		t.Fatal("role not re-enabled next day")
	}
}

func TestSchedulePeriodicShiftChange(t *testing.T) {
	// The paper's policy-change scenario: shift moves from 8-16 to 9-17.
	// Cancel the old schedule, install the new one.
	m, store, _, sim := newFixture(t)
	addRole(t, store, "DayDoctor")
	w1, err := clock.ParseWindow("08:00:00/*/*/*", "16:00:00/*/*/*", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.SchedulePeriodic("DayDoctor", w1)
	if err != nil {
		t.Fatal(err)
	}
	// 09:00 is inside 8-16.
	if !store.RoleEnabled("DayDoctor") {
		t.Fatal("role not enabled under old shift")
	}
	if err := m.CancelSchedule(id); err != nil {
		t.Fatal(err)
	}
	if err := m.CancelSchedule(id); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("double cancel: %v", err)
	}
	w2, err := clock.ParseWindow("09:00:00/*/*/*", "17:00:00/*/*/*", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SchedulePeriodic("DayDoctor", w2); err != nil {
		t.Fatal(err)
	}
	sim.AdvanceTo(time.Date(2026, 7, 6, 16, 30, 0, 0, time.UTC))
	if !store.RoleEnabled("DayDoctor") {
		t.Fatal("16:30 should be inside the new shift")
	}
	sim.AdvanceTo(time.Date(2026, 7, 6, 17, 0, 0, 0, time.UTC))
	if store.RoleEnabled("DayDoctor") {
		t.Fatal("17:00 should end the new shift")
	}
}

func TestScheduleNightShift(t *testing.T) {
	// The night-nurse shift wraps midnight: 22:00-06:00.
	m, store, _, sim := newFixture(t) // starts 09:00
	addRole(t, store, "NightNurse")
	w, err := clock.ParseWindow("22:00:00/*/*/*", "06:00:00/*/*/*", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SchedulePeriodic("NightNurse", w); err != nil {
		t.Fatal(err)
	}
	if store.RoleEnabled("NightNurse") {
		t.Fatal("night shift enabled at 09:00")
	}
	sim.AdvanceTo(time.Date(2026, 7, 6, 22, 0, 0, 0, time.UTC))
	if !store.RoleEnabled("NightNurse") {
		t.Fatal("night shift not enabled at 22:00")
	}
	sim.AdvanceTo(time.Date(2026, 7, 7, 1, 0, 0, 0, time.UTC))
	if !store.RoleEnabled("NightNurse") {
		t.Fatal("night shift disabled across midnight")
	}
	sim.AdvanceTo(time.Date(2026, 7, 7, 6, 0, 0, 0, time.UTC))
	if store.RoleEnabled("NightNurse") {
		t.Fatal("night shift still enabled at 06:00")
	}
	sim.AdvanceTo(time.Date(2026, 7, 7, 22, 0, 0, 0, time.UTC))
	if !store.RoleEnabled("NightNurse") {
		t.Fatal("night shift not re-enabled the next evening")
	}
}

func TestScheduleUnknownRole(t *testing.T) {
	m, _, _, _ := newFixture(t)
	if _, err := m.SchedulePeriodic("ghost", hospitalWindow(t)); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

// --------------------------------------------------------------------------
// Rule 7: per-activation duration

func activationFixture(t *testing.T) (*Manager, *rbac.Store, *event.Detector, *clock.Sim, rbac.SessionID) {
	t.Helper()
	m, store, det, sim := newFixture(t)
	addRole(t, store, "R3")
	if err := store.AddUser("bob"); err != nil {
		t.Fatal(err)
	}
	if err := store.AssignUser("bob", "R3"); err != nil {
		t.Fatal(err)
	}
	sid, err := store.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	return m, store, det, sim, sid
}

// activate mimics the enforcement layer: mutate state then raise the
// lifecycle event.
func activate(t *testing.T, store *rbac.Store, det *event.Detector, sid rbac.SessionID, r rbac.RoleID) {
	t.Helper()
	if err := store.AddActiveRole("bob", sid, r); err != nil {
		t.Fatal(err)
	}
	if err := det.Raise(EvSessionRoleAdded, event.Params{
		"user": "bob", "session": string(sid), "role": string(r),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationDeactivates(t *testing.T) {
	m, store, det, sim, sid := activationFixture(t)
	if err := m.SetActivationDuration("bob", "R3", 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	activate(t, store, det, sid, "R3")
	if m.PendingTimers() != 1 {
		t.Fatalf("PendingTimers = %d", m.PendingTimers())
	}
	sim.Advance(time.Hour)
	if !store.CheckSessionRole(sid, "R3") {
		t.Fatal("deactivated early")
	}
	sim.Advance(time.Hour)
	if store.CheckSessionRole(sid, "R3") {
		t.Fatal("not deactivated after duration")
	}
	if m.Expired() != 1 {
		t.Fatalf("Expired = %d", m.Expired())
	}
	if m.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d after expiry", m.PendingTimers())
	}
}

func TestDurationExpiredEventCarriesReason(t *testing.T) {
	m, store, det, sim, sid := activationFixture(t)
	if err := m.SetActivationDuration("", "R3", time.Minute); err != nil {
		t.Fatal(err)
	}
	var drops []*event.Occurrence
	if _, err := det.Subscribe(EvSessionRoleDropped, func(o *event.Occurrence) { drops = append(drops, o) }); err != nil {
		t.Fatal(err)
	}
	activate(t, store, det, sid, "R3")
	sim.Advance(2 * time.Minute)
	if len(drops) != 1 || drops[0].Params["reason"] != "duration-expired" {
		t.Fatalf("drops = %v", drops)
	}
	_ = m
}

func TestManualDropCancelsTimer(t *testing.T) {
	m, store, det, sim, sid := activationFixture(t)
	if err := m.SetActivationDuration("bob", "R3", time.Hour); err != nil {
		t.Fatal(err)
	}
	activate(t, store, det, sid, "R3")
	// Manual deactivation before the deadline.
	if err := store.DropActiveRole("bob", sid, "R3"); err != nil {
		t.Fatal(err)
	}
	if err := det.Raise(EvSessionRoleDropped, event.Params{
		"user": "bob", "session": string(sid), "role": "R3",
	}); err != nil {
		t.Fatal(err)
	}
	if m.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d after manual drop", m.PendingTimers())
	}
	sim.Advance(2 * time.Hour)
	if m.Expired() != 0 {
		t.Fatalf("Expired = %d, want 0", m.Expired())
	}
}

func TestUserSpecificDurationWins(t *testing.T) {
	m, store, det, sim, sid := activationFixture(t)
	if err := m.SetActivationDuration("", "R3", 10*time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := m.SetActivationDuration("bob", "R3", time.Minute); err != nil {
		t.Fatal(err)
	}
	activate(t, store, det, sid, "R3")
	sim.Advance(2 * time.Minute)
	if store.CheckSessionRole(sid, "R3") {
		t.Fatal("user-specific bound not applied")
	}
}

func TestDurationRemoval(t *testing.T) {
	m, store, det, sim, sid := activationFixture(t)
	if err := m.SetActivationDuration("bob", "R3", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := m.SetActivationDuration("bob", "R3", 0); err != nil {
		t.Fatal(err)
	}
	activate(t, store, det, sid, "R3")
	sim.Advance(time.Hour)
	if !store.CheckSessionRole(sid, "R3") {
		t.Fatal("removed duration still enforced")
	}
	if err := m.SetActivationDuration("bob", "ghost", time.Minute); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown role: %v", err)
	}
}

// --------------------------------------------------------------------------
// Triggers

func TestTriggerEnable(t *testing.T) {
	// Rule 8 shape via triggers: enabling SysAdmin enables SysAudit.
	m, store, _, _ := newFixture(t)
	addRole(t, store, "SysAdmin")
	addRole(t, store, "SysAudit")
	if err := store.SetRoleEnabled("SysAudit", false); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterRole("SysAdmin"); err != nil {
		t.Fatal(err)
	}
	id, err := m.AddTrigger(EvRoleEnabled("SysAdmin"), "SysAudit", Enable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableRole("SysAdmin"); err != nil {
		t.Fatal(err)
	}
	if !store.RoleEnabled("SysAudit") {
		t.Fatal("trigger did not enable SysAudit")
	}
	if m.TriggerFired(id) != 1 {
		t.Fatalf("TriggerFired = %d", m.TriggerFired(id))
	}
}

func TestTriggerDisableWithDelay(t *testing.T) {
	m, store, det, sim := newFixture(t)
	addRole(t, store, "Nurse")
	if err := det.DefinePrimitive("shiftEnd"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddTrigger("shiftEnd", "Nurse", Disable, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := det.Raise("shiftEnd", nil); err != nil {
		t.Fatal(err)
	}
	if !store.RoleEnabled("Nurse") {
		t.Fatal("delayed trigger fired immediately")
	}
	sim.Advance(15 * time.Minute)
	if store.RoleEnabled("Nurse") {
		t.Fatal("delayed trigger never fired")
	}
}

func TestTriggerRemove(t *testing.T) {
	m, store, det, _ := newFixture(t)
	addRole(t, store, "r")
	if err := det.DefinePrimitive("x"); err != nil {
		t.Fatal(err)
	}
	id, err := m.AddTrigger("x", "r", Disable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Triggers(); len(got) != 1 || got[0].ID != id {
		t.Fatalf("Triggers = %v", got)
	}
	if err := m.RemoveTrigger(id); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveTrigger(id); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	if err := det.Raise("x", nil); err != nil {
		t.Fatal(err)
	}
	if !store.RoleEnabled("r") {
		t.Fatal("removed trigger fired")
	}
}

func TestTriggerValidation(t *testing.T) {
	m, store, _, _ := newFixture(t)
	addRole(t, store, "r")
	if _, err := m.AddTrigger("nosuch", "r", Enable, 0); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := m.AddTrigger("x", "ghost", Enable, 0); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown role: %v", err)
	}
	if Enable.String() != "enable" || Disable.String() != "disable" {
		t.Fatal("TriggerAction strings")
	}
	tr := Trigger{On: "e", Role: "r", Action: Disable, After: time.Minute}
	if tr.String() == "" {
		t.Fatal("Trigger.String empty")
	}
}

func TestTriggerChain(t *testing.T) {
	// Cascading triggers: enabling A enables B, which enables C.
	m, store, _, _ := newFixture(t)
	for _, r := range []rbac.RoleID{"A", "B", "C"} {
		addRole(t, store, r)
		if err := store.SetRoleEnabled(r, false); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AddTrigger(EvRoleEnabled("A"), "B", Enable, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddTrigger(EvRoleEnabled("B"), "C", Enable, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableRole("A"); err != nil {
		t.Fatal(err)
	}
	if !store.RoleEnabled("B") || !store.RoleEnabled("C") {
		t.Fatalf("chain: B=%v C=%v", store.RoleEnabled("B"), store.RoleEnabled("C"))
	}
}
