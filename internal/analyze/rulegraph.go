package analyze

import (
	"fmt"
	"sort"
	"strings"

	"activerbac/internal/core"
)

// Rule-graph analysis over the generated OWTE inventory. The pool's
// snapshot exposes each rule's triggering event, priority and the
// human-readable descriptions of its conditions and actions; "raise X"
// action descriptions are the cascade edges (an action raising X feeds
// every rule whose On is X — the Snoop propagation the engine performs
// at runtime, walked here statically).

func analyzeRuleGraph(rules []core.RuleInfo, events []string) []Finding {
	if len(rules) == 0 {
		return nil
	}
	var fs []Finding
	fs = append(fs, findUnreachable(rules, events)...)
	fs = append(fs, findShadowed(rules)...)
	fs = append(fs, findCascadeCycles(rules)...)
	return fs
}

// findUnreachable flags rules listening on events the detector never
// registered (RV007): with no primitive or composite definition behind
// the name, nothing can ever raise it and the rule is dead. Skipped
// when the caller has no event registry to check against.
func findUnreachable(rules []core.RuleInfo, events []string) []Finding {
	if len(events) == 0 {
		return nil
	}
	defined := make(map[string]bool, len(events))
	for _, e := range events {
		defined[e] = true
	}
	var fs []Finding
	for _, r := range rules {
		if !defined[r.On] {
			fs = append(fs, Finding{
				Code: "RV007", Severity: Error, Subject: "rule:" + r.Name,
				Msg: fmt.Sprintf("listens on event %q, which is not registered with the detector; the rule can never fire", r.On),
			})
		}
	}
	return fs
}

// findShadowed flags RV006: rule low is shadowed by rule high when both
// trigger on the same event, high fires first (higher priority, or equal
// priority with an earlier pool position approximated by name order),
// high's conditions are a subset of low's (so whenever low's Then runs,
// high's already ran) and high's actions cover low's — the lower rule
// contributes nothing to any decision.
func findShadowed(rules []core.RuleInfo) []Finding {
	byEvent := make(map[string][]core.RuleInfo)
	for _, r := range rules {
		byEvent[r.On] = append(byEvent[r.On], r)
	}
	var fs []Finding
	for _, group := range byEvent {
		for _, low := range group {
			for _, high := range group {
				if high.Name == low.Name || high.Priority < low.Priority {
					continue
				}
				if high.Priority == low.Priority && high.Name >= low.Name {
					continue
				}
				if stringsSubset(high.Conditions, low.Conditions) &&
					stringsSubset(low.Then, high.Then) &&
					stringsSubset(low.Else, high.Else) {
					fs = append(fs, Finding{
						Code: "RV006", Severity: Warn, Subject: "rule:" + low.Name,
						Msg: fmt.Sprintf("shadowed by higher-priority rule %q on %q: its conditions subsume this rule's and its actions cover them", high.Name, low.On),
					})
				}
			}
		}
	}
	return fs
}

// stringsSubset reports whether every element of sub appears in super.
// An empty sub is a subset of anything (an unconditional rule subsumes
// every condition set).
func stringsSubset(sub, super []string) bool {
	if len(sub) > len(super) {
		return false
	}
	set := make(map[string]bool, len(super))
	for _, s := range super {
		set[s] = true
	}
	for _, s := range sub {
		if !set[s] {
			return false
		}
	}
	return true
}

// raiseTargets extracts the event names a rule's actions raise, from
// the "raise X" action description convention the generator emits.
func raiseTargets(r core.RuleInfo) []string {
	var out []string
	collect := func(descs []string) {
		for _, d := range descs {
			if rest, ok := strings.CutPrefix(d, "raise "); ok {
				if ev, _, _ := strings.Cut(rest, " "); ev != "" {
					out = append(out, ev)
				}
			}
		}
	}
	collect(r.Then)
	collect(r.Else)
	return out
}

// findCascadeCycles flags RV008: a cycle in the rule/event graph means
// one firing re-raises an event that (transitively) fires the same rule
// again — an unbounded cascade only the engine's runaway safety valve
// would stop. The search is depth-first with the path kept as the
// bounded-depth proof; each cycle is reported once, anchored at its
// lexicographically smallest rule.
func findCascadeCycles(rules []core.RuleInfo) []Finding {
	byEvent := make(map[string][]int)
	for i, r := range rules {
		if !r.Enabled {
			continue
		}
		byEvent[r.On] = append(byEvent[r.On], i)
	}
	// succ[i] = rules fired by events rule i raises, with the edge label.
	type edge struct {
		to    int
		event string
	}
	succ := make([][]edge, len(rules))
	for i, r := range rules {
		if !r.Enabled {
			continue
		}
		for _, ev := range raiseTargets(r) {
			for _, j := range byEvent[ev] {
				succ[i] = append(succ[i], edge{to: j, event: ev})
			}
		}
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(rules))
	var path []cascadeStep
	seen := make(map[string]bool) // canonical cycle keys already reported
	var fs []Finding

	var visit func(i int)
	visit = func(i int) {
		color[i] = gray
		for _, e := range succ[i] {
			if color[e.to] == gray {
				// Extract the cycle from the path.
				var cyc []cascadeStep
				for k, p := range path {
					if p.rule == e.to {
						cyc = append([]cascadeStep(nil), path[k:]...)
						break
					}
				}
				if cyc == nil { // self-loop not yet on path tail
					cyc = []cascadeStep{{rule: e.to}}
				}
				cyc = append(cyc, cascadeStep{rule: e.to, event: e.event})
				fs = append(fs, cycleFinding(rules, cyc, seen))
			} else if color[e.to] == white {
				path = append(path, cascadeStep{rule: e.to, event: e.event})
				visit(e.to)
				path = path[:len(path)-1]
			}
		}
		color[i] = black
	}
	for i := range rules {
		if color[i] == white && rules[i].Enabled {
			path = path[:0]
			path = append(path, cascadeStep{rule: i})
			visit(i)
		}
	}
	// Drop the zero-value placeholders from duplicate cycles.
	out := fs[:0]
	for _, f := range fs {
		if f.Code != "" {
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}

// cascadeStep is one hop of a cascade proof path: the rule reached and
// the raised event that led to it ("" for the path root).
type cascadeStep struct {
	rule  int
	event string
}

// cycleFinding renders one cycle as a proof path, deduplicating on the
// sorted member set; a duplicate returns the zero Finding.
func cycleFinding(rules []core.RuleInfo, cyc []cascadeStep, seen map[string]bool) Finding {
	names := make([]string, 0, len(cyc)-1)
	for _, s := range cyc[:len(cyc)-1] {
		names = append(names, rules[s.rule].Name)
	}
	key := canonicalKey(names)
	if seen[key] {
		return Finding{}
	}
	seen[key] = true

	var proof strings.Builder
	for i, s := range cyc {
		if i > 0 {
			fmt.Fprintf(&proof, " -raise %s-> ", s.event)
		}
		proof.WriteString(rules[s.rule].Name)
	}
	subject := names[0]
	for _, n := range names {
		if n < subject {
			subject = n
		}
	}
	return Finding{
		Code: "RV008", Severity: Error, Subject: "rule:" + subject,
		Msg: fmt.Sprintf("cascade cycle of depth %d: %s", len(names), proof.String()),
	}
}

func canonicalKey(names []string) string {
	cp := append([]string(nil), names...)
	sort.Strings(cp)
	return strings.Join(cp, "|")
}
