// Package reach is the bounded symbolic verifier over compiled
// policies: it compiles the policy's constraint system — role
// hierarchy, SSoD/DSoD sets, cardinality counters, GTRBAC enabling
// windows, CFD activation dependencies and prerequisites — into a
// finite transition system over abstract sessions, explores every
// reachable state breadth-first within configurable bounds, and
// refutes safety properties with concrete, replayable event-sequence
// counterexamples.
//
// The abstraction (DESIGN §5.8 has the full treatment):
//
//   - Agents: the first MaxUsers users declared in the policy, each
//     with MaxSessions pre-creatable sessions. A state is one role
//     bitset per session (direct activations only) plus a time phase.
//   - Time: GTRBAC shift windows are abstracted to the finite sequence
//     of window-boundary instants within a two-day horizon from the
//     anchor; a "tick" transition crosses one boundary. Role
//     enabledness is a pure function of the phase, mirroring the
//     engine's stop-wins half-open windows.
//   - Transitions: activate (guarded exactly as the engine's
//     AddActiveRole: enabled, authorized via the junior closure,
//     not already active, session-scoped DSoD over active closures,
//     global direct-activation cardinality, per-session maxroles,
//     same-session prerequisites, Rule 9 required-active), drop (with
//     the Rule 9 revocation cascade run to a fixpoint), and tick.
//
// Deliberate approximations, each documented and each caught by the
// differential replay harness if it ever produces a false witness:
// durations are subsumed by voluntary drops (sound for safety),
// context-gated roles are treated as never activatable and excluded
// from liveness, Rule 8 couples and Rule 6 disabling-time SoD vetoes
// are not modelled, and delegation does not exist in the engine.
//
// Finding codes are stable and greppable, continuing the analyzer's
// RV-series in the RV1xx block:
//
//	RV100 warn   Search truncated: the state budget, role width (64),
//	             or user bound cut the exploration short. Reachability
//	             findings remain valid (under-approximation); liveness
//	             findings are suppressed.
//	RV101 error  Cross-session DSoD bypass: a user can hold N or more
//	             members of a dynamic SoD set by activating them in
//	             different sessions — the per-session check never sees
//	             the union. Counterexample replayable.
//	RV102 error  Cardinality bypass via the hierarchy: more than N
//	             sessions can act with a role's permissions while the
//	             direct-activation counter stays within bound, because
//	             seniors inherit without counting. Counterexample
//	             replayable.
//	RV103 warn   Window escape: an activation survives its role's
//	             enabling-window close (disabling does not revoke live
//	             activations), so the role's permissions remain
//	             exercisable outside the window. Counterexample
//	             replayable via a tick step.
//	RV104 warn   Dead grant: a permission's role never enters any
//	             session's active closure in any reachable state, so
//	             the grant can never be exercised within bounds.
//	RV105 warn   Dead role: a role some user is authorized for is never
//	             activatable in any reachable state (for example a
//	             mutual Rule 9 dependency). Suppresses RV104 for the
//	             role's own grants.
//	RV106 error  Cascade divergence: a drop's revocation cascade failed
//	             to reach a fixpoint within the iteration budget, or
//	             reached different fixpoints under different processing
//	             orders — termination/confluence cannot be proven.
//	RV199 error  Verifier self-check failed: a counterexample did not
//	             reproduce its violation when replayed against a real
//	             engine. Always a verifier bug; reported instead of the
//	             original finding. (Emitted by the replay harness in
//	             the root package, never by this package.)
package reach

import (
	"sort"
	"time"

	"activerbac/internal/analyze"
	"activerbac/internal/policy"
)

// Config bounds the search. The zero value selects the defaults.
type Config struct {
	// MaxUsers is the number of declared users modelled (first K by
	// declaration order). Default 3.
	MaxUsers int
	// MaxSessions is the number of sessions modelled per user.
	// Default 2.
	MaxSessions int
	// MaxStates is the explored-state budget; hitting it truncates the
	// search (RV100). Default 200000.
	MaxStates int
	// MaxTicks caps the number of window-boundary instants modelled
	// within the two-day horizon. Default 8.
	MaxTicks int
	// CascadeBudget bounds the Rule 9 revocation-cascade fixpoint
	// iterations per drop; exceeding it is RV106. Default 64.
	CascadeBudget int
	// Anchor is the instant exploration starts from; zero selects the
	// analyzer's fixed deterministic epoch.
	Anchor time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxUsers <= 0 {
		c.MaxUsers = 3
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 2
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 200000
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 8
	}
	if c.CascadeBudget <= 0 {
		c.CascadeBudget = 64
	}
	if c.Anchor.IsZero() {
		c.Anchor = time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// Step is one event in a counterexample trace. Op is one of
// "session" (create Session for User), "activate"/"drop" (User's
// Session and Role), "tick" (advance the clock to At, a window
// boundary), or "check" (an access check on Session proving the
// violated permission is live).
type Step struct {
	Op        string `json:"op"`
	User      string `json:"user,omitempty"`
	Session   string `json:"session,omitempty"`
	Role      string `json:"role,omitempty"`
	Operation string `json:"operation,omitempty"`
	Object    string `json:"object,omitempty"`
	At        string `json:"at,omitempty"`
}

// Violation is the machine-checkable claim a counterexample's final
// state must satisfy; the replay harness asserts it against a real
// engine. Kind is "dsd-cross-session", "cardinality-overrun" or
// "window-escape".
type Violation struct {
	Kind     string   `json:"kind"`
	Set      string   `json:"set,omitempty"`
	Roles    []string `json:"roles,omitempty"`
	Role     string   `json:"role,omitempty"`
	User     string   `json:"user,omitempty"`
	Sessions []string `json:"sessions,omitempty"`
	Limit    int      `json:"limit,omitempty"`
	Count    int      `json:"count,omitempty"`
}

// Counterexample is a concrete event sequence driving a freshly loaded
// engine from its initial state into the violating state.
type Counterexample struct {
	Steps     []Step    `json:"steps"`
	Violation Violation `json:"violation"`
}

// Finding is one verification result: the analyzer's stable
// code/severity/subject/message quadruple, plus the replayable
// counterexample for reachability findings.
type Finding struct {
	analyze.Finding
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// HasErrors reports whether any finding is error severity — the gate
// policyc -verify and rbacd -verify=strict fail on.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == analyze.Error {
			return true
		}
	}
	return false
}

// Result is the outcome of one bounded exploration.
type Result struct {
	// Findings, errors first, then by code, then by subject.
	Findings []Finding `json:"findings"`
	// States is the number of distinct reachable states visited.
	States int `json:"states"`
	// Transitions is the number of transitions taken (including ones
	// reaching already-visited states).
	Transitions int `json:"transitions"`
	// Truncated reports whether any bound cut the search short.
	Truncated bool `json:"truncated"`
}

// Verify compiles spec into the bounded transition system and explores
// it exhaustively. It never touches a live engine; counterexample
// replay is the caller's job (the root package's VerifyPolicy).
func Verify(spec *policy.Spec, cfg Config) Result {
	cfg = cfg.withDefaults()
	m, notes := compile(spec, cfg)
	res := m.explore()
	for _, n := range notes {
		res.Truncated = true
		res.Findings = append(res.Findings, Finding{Finding: analyze.Finding{
			Code: "RV100", Severity: analyze.Warn, Subject: "search", Msg: n,
		}})
	}
	SortFindings(res.Findings)
	return res
}

// SortFindings puts findings in the analyzer's deterministic order:
// severity descending (errors first), then code, then subject. Exposed
// for the replay harness, which splices RV199 findings in.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Code != fs[j].Code {
			return fs[i].Code < fs[j].Code
		}
		return fs[i].Subject < fs[j].Subject
	})
}
