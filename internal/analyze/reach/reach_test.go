package reach

import (
	"reflect"
	"strings"
	"testing"

	"activerbac/internal/policy"
)

func mustSpec(t *testing.T, src string) *policy.Spec {
	t.Helper()
	spec, err := policy.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if issues := policy.Check(spec); policy.HasErrors(issues) {
		t.Fatalf("check: %v", issues)
	}
	return spec
}

func codes(res Result) []string {
	var out []string
	for _, f := range res.Findings {
		out = append(out, f.Code)
	}
	return out
}

func findByCode(t *testing.T, res Result, code string) Finding {
	t.Helper()
	for _, f := range res.Findings {
		if f.Code == code {
			return f
		}
	}
	t.Fatalf("no %s finding; got %v", code, codes(res))
	return Finding{}
}

// RV101: a DSoD set is bypassable by splitting the members across two
// sessions of the same user.
const dsdBypassPolicy = `
policy "dsd-bypass"
role Teller
role Auditor
dsd bank 2: Teller, Auditor
permission Teller: write ledger.dat
permission Auditor: audit ledger.dat
user bob: Teller, Auditor
`

func TestRV101CrossSessionDSoD(t *testing.T) {
	res := Verify(mustSpec(t, dsdBypassPolicy), Config{})
	f := findByCode(t, res, "RV101")
	if f.Severity.String() != "error" || f.Subject != "dsd:bank" {
		t.Fatalf("bad finding: %s", f.String())
	}
	cex := f.Counterexample
	if cex == nil {
		t.Fatal("RV101 without counterexample")
	}
	if cex.Violation.Kind != "dsd-cross-session" || cex.Violation.User != "bob" || cex.Violation.Limit != 2 {
		t.Fatalf("bad violation: %+v", cex.Violation)
	}
	// Shortest witness: two sessions, two activations.
	var ops []string
	for _, s := range cex.Steps {
		ops = append(ops, s.Op)
	}
	want := []string{"session", "session", "activate", "activate"}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("steps = %v, want %v", ops, want)
	}
}

// RV102: cardinality on a junior role is bypassable because seniors
// inherit its permissions without counting against the bound.
const cardBypassPolicy = `
policy "card-bypass"
role Director
role PM
hierarchy Director > PM
cardinality PM 1
permission PM: approve po.dat
user ann: Director
user ben: PM
`

func TestRV102CardinalityBypass(t *testing.T) {
	res := Verify(mustSpec(t, cardBypassPolicy), Config{})
	f := findByCode(t, res, "RV102")
	if f.Subject != "cardinality:PM" || f.Severity.String() != "error" {
		t.Fatalf("bad finding: %s", f.String())
	}
	cex := f.Counterexample
	if cex == nil || cex.Violation.Kind != "cardinality-overrun" || cex.Violation.Count <= cex.Violation.Limit {
		t.Fatalf("bad counterexample: %+v", cex)
	}
}

// RV103: an activation made inside the window survives the window
// close (disabling does not revoke).
const windowEscapePolicy = `
policy "window-escape"
role DayDoctor
shift DayDoctor 09:00:00-17:00:00
permission DayDoctor: read chart.dat
user dora: DayDoctor
`

func TestRV103WindowEscape(t *testing.T) {
	res := Verify(mustSpec(t, windowEscapePolicy), Config{})
	f := findByCode(t, res, "RV103")
	if f.Subject != "shift:DayDoctor" || f.Severity.String() != "warn" {
		t.Fatalf("bad finding: %s", f.String())
	}
	cex := f.Counterexample
	if cex == nil || cex.Violation.Kind != "window-escape" {
		t.Fatalf("bad counterexample: %+v", cex)
	}
	last := cex.Steps[len(cex.Steps)-1]
	if last.Op != "check" || last.Operation != "read" || last.Object != "chart.dat" {
		t.Fatalf("missing proving check step: %+v", last)
	}
	var ticks int
	for _, s := range cex.Steps {
		if s.Op == "tick" {
			ticks++
			if !strings.Contains(s.At, "T") {
				t.Fatalf("tick without RFC3339 instant: %+v", s)
			}
		}
	}
	if ticks == 0 {
		t.Fatal("window escape without a tick step")
	}
}

// RV104: a grant on a role nobody is authorized for is dead.
const deadGrantPolicy = `
policy "dead-grant"
role Orphan
role Clerk
permission Orphan: read secrets.dat
permission Clerk: read files.dat
user cleo: Clerk
`

func TestRV104DeadGrant(t *testing.T) {
	res := Verify(mustSpec(t, deadGrantPolicy), Config{})
	f := findByCode(t, res, "RV104")
	if f.Subject != "grant:Orphan:read:secrets.dat" {
		t.Fatalf("bad subject: %s", f.Subject)
	}
	for _, g := range res.Findings {
		if g.Code == "RV104" && strings.Contains(g.Subject, "Clerk") {
			t.Fatalf("live grant flagged dead: %s", g.String())
		}
	}
}

// RV105: mutually dependent roles deadlock — neither is ever
// activatable; their grants are suppressed from RV104.
const deadRolePolicy = `
policy "dead-role"
role Opener
role Closer
require Opener needs-active Closer
require Closer needs-active Opener
permission Opener: open vault.dat
user vic: Opener, Closer
`

func TestRV105DeadRole(t *testing.T) {
	res := Verify(mustSpec(t, deadRolePolicy), Config{})
	var dead []string
	for _, f := range res.Findings {
		switch f.Code {
		case "RV105":
			dead = append(dead, f.Subject)
		case "RV104":
			t.Fatalf("RV104 not suppressed for dead role's grant: %s", f.String())
		}
	}
	if !reflect.DeepEqual(dead, []string{"role:Closer", "role:Opener"}) {
		t.Fatalf("dead roles = %v", dead)
	}
}

// RV106: a deep require-chain with a tiny cascade budget cannot be
// proven terminating.
const cascadePolicy = `
policy "cascade"
role A1
role A2
role A3
role A4
role A5
require A2 needs-active A1
require A3 needs-active A2
require A4 needs-active A3
require A5 needs-active A4
user ada: A1, A2, A3, A4, A5
`

func TestRV106CascadeBudget(t *testing.T) {
	res := Verify(mustSpec(t, cascadePolicy), Config{CascadeBudget: 2, MaxSessions: 1})
	f := findByCode(t, res, "RV106")
	if f.Severity.String() != "error" || !strings.HasPrefix(f.Subject, "cascade:") {
		t.Fatalf("bad finding: %s", f.String())
	}
	// With the default budget the same policy proves out clean.
	res = Verify(mustSpec(t, cascadePolicy), Config{MaxSessions: 1})
	for _, g := range res.Findings {
		if g.Code == "RV106" {
			t.Fatalf("default budget still diverges: %s", g.String())
		}
	}
}

// RV100: exhausting the state budget truncates the search and
// suppresses liveness.
func TestRV100Truncation(t *testing.T) {
	res := Verify(mustSpec(t, cardBypassPolicy), Config{MaxStates: 3})
	if !res.Truncated {
		t.Fatal("budget of 3 did not truncate")
	}
	findByCode(t, res, "RV100")
	for _, f := range res.Findings {
		if f.Code == "RV104" || f.Code == "RV105" {
			t.Fatalf("liveness finding on a truncated search: %s", f.String())
		}
	}
}

// A clean policy produces zero findings.
const cleanPolicy = `
policy "clean"
role Manager
role Clerk
role Auditor
hierarchy Manager > Clerk
ssd audit-sep 2: Manager, Auditor
permission Manager: approve po.dat
permission Clerk: write po.dat
permission Auditor: audit po.dat
user meg: Manager
user carl: Clerk
user abe: Auditor
`

func TestCleanPolicyNoFindings(t *testing.T) {
	res := Verify(mustSpec(t, cleanPolicy), Config{})
	if len(res.Findings) != 0 {
		t.Fatalf("clean policy has findings: %v", res.Findings)
	}
	if res.States == 0 || res.Transitions == 0 {
		t.Fatalf("no exploration happened: %+v", res)
	}
}

// Verification is deterministic: identical runs produce identical
// findings, messages and counterexamples.
func TestDeterminism(t *testing.T) {
	for _, src := range []string{dsdBypassPolicy, cardBypassPolicy, windowEscapePolicy, deadRolePolicy} {
		a := Verify(mustSpec(t, src), Config{})
		b := Verify(mustSpec(t, src), Config{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("nondeterministic verification for %q:\n%+v\nvs\n%+v", src, a, b)
		}
	}
}
