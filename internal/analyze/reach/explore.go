package reach

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
	"time"

	"activerbac/internal/analyze"
)

// trans is one transition along an exploration path.
type trans struct {
	kind  byte // 'a' activate, 'd' drop, 't' tick
	agent int
	role  int
	tick  int // boundary index, for 't'
}

// node is the BFS parent pointer: how a state was first reached.
// The initial state's parent is the empty key.
type node struct {
	parent string
	step   trans
}

// encode renders a state as its canonical key: phase byte followed by
// one little-endian bitset per agent.
func (m *model) encode(phase int, active []uint64) string {
	buf := make([]byte, 1+8*len(active))
	buf[0] = byte(phase)
	for i, a := range active {
		binary.LittleEndian.PutUint64(buf[1+8*i:], a)
	}
	return string(buf)
}

func cloneActive(active []uint64) []uint64 {
	na := make([]uint64, len(active))
	copy(na, active)
	return na
}

func equalActive(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// explore runs the breadth-first search. BFS guarantees every
// counterexample is a shortest witness, which together with the
// deterministic transition order makes the output stable across runs.
func (m *model) explore() Result {
	res := Result{}
	active0 := make([]uint64, m.nAgents)
	key0 := m.encode(0, active0)
	seen := map[string]node{key0: {}}

	type qitem struct {
		key    string
		phase  int
		active []uint64
	}
	queue := []qitem{{key0, 0, active0}}

	reported := map[string]bool{}
	// report dedupes per (code, subject) and builds the counterexample
	// lazily, so already-witnessed violations cost nothing per state.
	report := func(code string, sev analyze.Severity, subject, msg string, mk func() *Counterexample) {
		k := code + "|" + subject
		if reported[k] {
			return
		}
		reported[k] = true
		var cex *Counterexample
		if mk != nil {
			cex = mk()
		}
		res.Findings = append(res.Findings, Finding{
			Finding:        analyze.Finding{Code: code, Severity: sev, Subject: subject, Msg: msg},
			Counterexample: cex,
		})
	}

	var directEver, closureEver uint64
	budgetHit := false

	push := func(parentKey string, step trans, phase int, active []uint64) {
		res.Transitions++
		key := m.encode(phase, active)
		if _, ok := seen[key]; ok {
			return
		}
		if len(seen) >= m.cfg.MaxStates {
			budgetHit = true
			return
		}
		seen[key] = node{parent: parentKey, step: step}
		queue = append(queue, qitem{key, phase, active})
		for _, a := range active {
			directEver |= a
			closureEver |= m.closureOf(a)
		}
		m.checkState(key, phase, active, seen, report)
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for a := 0; a < m.nAgents; a++ {
			u := m.userOf[a]
			for r := 0; r < len(m.roles); r++ {
				if !m.canActivate(cur.phase, cur.active, a, u, r) {
					continue
				}
				na := cloneActive(cur.active)
				na[a] |= 1 << r
				push(cur.key, trans{kind: 'a', agent: a, role: r}, cur.phase, na)
			}
			for b := cur.active[a]; b != 0; b &= b - 1 {
				r := bits.TrailingZeros64(b)
				na, ok, msg := m.applyDrop(cur.active, a, r)
				if !ok {
					report("RV106", analyze.Error, "cascade:"+m.roles[r], msg, nil)
					continue
				}
				push(cur.key, trans{kind: 'd', agent: a, role: r}, cur.phase, na)
			}
		}
		if cur.phase < len(m.boundaries) {
			push(cur.key, trans{kind: 't', tick: cur.phase}, cur.phase+1, cloneActive(cur.active))
		}
	}

	res.States = len(seen)
	if budgetHit {
		res.Truncated = true
		report("RV100", analyze.Warn, "search", fmt.Sprintf(
			"state budget %d exhausted before the search completed — liveness findings suppressed, reachability findings remain valid", m.cfg.MaxStates), nil)
	}
	if m.liveOK && !budgetHit {
		m.checkLiveness(directEver, closureEver, report)
	}
	return res
}

// canActivate mirrors the engine's AddActiveRole guard chain exactly;
// any divergence here is caught by the differential replay harness.
func (m *model) canActivate(phase int, active []uint64, a, u, r int) bool {
	bit := uint64(1) << r
	if active[a]&bit != 0 {
		return false
	}
	if m.contextGated&bit != 0 {
		return false
	}
	if m.enabled[phase]&bit == 0 {
		return false
	}
	if m.userAuth[u]&bit == 0 {
		return false
	}
	if lim := m.userMax[u]; lim >= 0 && bits.OnesCount64(active[a]) >= lim {
		return false
	}
	if lim := m.card[r]; lim >= 0 {
		count := 0
		for _, s := range active {
			if s&bit != 0 {
				count++
			}
		}
		if count >= lim {
			return false
		}
	}
	newCl := m.closureOf(active[a]) | m.closure[r]
	for _, set := range m.dsd {
		if bits.OnesCount64(newCl&set.mask) >= set.n {
			return false
		}
	}
	if m.prereq[r]&^active[a] != 0 {
		return false
	}
	for _, q := range m.requires[r] {
		if !directActive(active, q) {
			return false
		}
	}
	return true
}

func directActive(active []uint64, r int) bool {
	bit := uint64(1) << r
	for _, s := range active {
		if s&bit != 0 {
			return true
		}
	}
	return false
}

// applyDrop removes the activation and runs the Rule 9 revocation
// cascade to a fixpoint, proving termination (iteration budget) and
// confluence (two processing orders reach the same fixpoint) as it
// goes. ok=false carries the RV106 message.
func (m *model) applyDrop(active []uint64, agent, role int) ([]uint64, bool, string) {
	na := cloneActive(active)
	na[agent] &^= 1 << role
	fwd, okF := m.cascade(na, false)
	bwd, okB := m.cascade(na, true)
	if !okF || !okB {
		return nil, false, fmt.Sprintf(
			"revocation cascade after dropping %q did not reach a fixpoint within %d iterations — termination unproven", m.roles[role], m.cfg.CascadeBudget)
	}
	if !equalActive(fwd, bwd) {
		return nil, false, fmt.Sprintf(
			"revocation cascade after dropping %q reaches different fixpoints under different processing orders — not confluent", m.roles[role])
	}
	return fwd, true, ""
}

// cascade revokes dependents of roles whose last direct activation is
// gone, repeating until nothing changes. One dependency edge is
// processed per iteration round, so a require-chain of depth d needs d
// rounds; the budget bounds pathological (or unprovable) cascades.
func (m *model) cascade(active []uint64, reverse bool) ([]uint64, bool) {
	na := cloneActive(active)
	for iter := 0; ; iter++ {
		if iter >= m.cfg.CascadeBudget {
			return nil, false
		}
		changed := false
		for i := 0; i < len(m.roles); i++ {
			q := i
			if reverse {
				q = len(m.roles) - 1 - i
			}
			if len(m.dependents[q]) == 0 || directActive(na, q) {
				continue
			}
			for _, d := range m.dependents[q] {
				bit := uint64(1) << d
				for ai := range na {
					if na[ai]&bit != 0 {
						na[ai] &^= bit
						changed = true
					}
				}
			}
		}
		if !changed {
			return na, true
		}
	}
}

// checkState evaluates the safety properties on a newly discovered
// state and reports violations with shortest-path counterexamples.
func (m *model) checkState(key string, phase int, active []uint64, seen map[string]node, report func(string, analyze.Severity, string, string, func() *Counterexample)) {
	// RV101: cross-session DSoD bypass. The engine checks each session
	// in isolation; the union of one user's sessions is unchecked.
	for ui, uname := range m.users {
		var union uint64
		for a := 0; a < m.nAgents; a++ {
			if m.userOf[a] == ui && active[a] != 0 {
				union |= m.closureOf(active[a])
			}
		}
		for _, set := range m.dsd {
			hits := union & set.mask
			if bits.OnesCount64(hits) < set.n {
				continue
			}
			roles := m.roleNames(hits)
			var sess []string
			for a := 0; a < m.nAgents; a++ {
				if m.userOf[a] == ui && m.closureOf(active[a])&set.mask != 0 {
					sess = append(sess, m.sessName[a])
				}
			}
			uname, set := uname, set
			v := Violation{Kind: "dsd-cross-session", Set: set.name, User: uname,
				Roles: roles, Sessions: sess, Limit: set.n, Count: len(roles)}
			report("RV101", analyze.Error, "dsd:"+set.name, fmt.Sprintf(
				"user %q can hold %d of dsd set %q {%s} concurrently by splitting them across sessions (limit %d); the per-session check never sees the union",
				uname, len(roles), set.name, strings.Join(roles, ", "), set.n),
				func() *Counterexample { return m.buildCex(seen, key, v, nil) })
		}
	}

	// RV102: cardinality bypass via the hierarchy. The counter bounds
	// direct activations; seniors inherit the role's permissions
	// without counting against it.
	for r, lim := range m.card {
		if lim < 0 {
			continue
		}
		bit := uint64(1) << r
		var sess []string
		for a := 0; a < m.nAgents; a++ {
			if m.closureOf(active[a])&bit != 0 {
				sess = append(sess, m.sessName[a])
			}
		}
		if len(sess) <= lim {
			continue
		}
		r, lim, sess := r, lim, sess
		v := Violation{Kind: "cardinality-overrun", Role: m.roles[r],
			Sessions: sess, Limit: lim, Count: len(sess)}
		report("RV102", analyze.Error, "cardinality:"+m.roles[r], fmt.Sprintf(
			"%d sessions can act with role %q (cardinality %d): seniors inherit its permissions without counting against the direct-activation bound",
			len(sess), m.roles[r], lim),
			func() *Counterexample { return m.buildCex(seen, key, v, nil) })
	}

	// RV103: window escape — an activation of a shift-bound role
	// survives the window close, because disabling does not revoke.
	escaped := m.shifted &^ m.enabled[phase]
	if escaped == 0 {
		return
	}
	for a := 0; a < m.nAgents; a++ {
		for b := active[a] & escaped; b != 0; b &= b - 1 {
			r := bits.TrailingZeros64(b)
			a, r := a, r
			v := Violation{Kind: "window-escape", Role: m.roles[r],
				User: m.users[m.userOf[a]], Sessions: []string{m.sessName[a]}}
			check := m.checkStepFor(a, r)
			report("RV103", analyze.Warn, "shift:"+m.roles[r], fmt.Sprintf(
				"an activation of %q in session %s survives the enabling-window close: disabling does not revoke live activations, so the role's permissions stay exercisable outside the window",
				m.roles[r], m.sessName[a]),
				func() *Counterexample { return m.buildCex(seen, key, v, check) })
		}
	}
}

// checkStepFor finds a permission reachable from role r (its own grant
// or an inherited one) to append as the proving "check" step of a
// window-escape counterexample; nil when the role grants nothing.
func (m *model) checkStepFor(agent, r int) *Step {
	for b := m.closure[r]; b != 0; b &= b - 1 {
		j := bits.TrailingZeros64(b)
		if len(m.permsOf[j]) > 0 {
			p := m.permsOf[j][0]
			return &Step{Op: "check", User: m.users[m.userOf[agent]],
				Session: m.sessName[agent], Operation: p.Operation, Object: p.Object}
		}
	}
	return nil
}

// checkLiveness reports dead roles (RV105) and dead grants (RV104)
// once the search has provably covered every reachable state.
func (m *model) checkLiveness(directEver, closureEver uint64, report func(string, analyze.Severity, string, string, func() *Counterexample)) {
	dead := make(map[int]bool)
	for r := range m.roles {
		bit := uint64(1) << r
		if m.contextGated&bit != 0 || directEver&bit != 0 {
			continue
		}
		authorized := false
		for ui := range m.users {
			if m.userAuth[ui]&bit != 0 {
				authorized = true
				break
			}
		}
		if !authorized {
			continue
		}
		dead[r] = true
		report("RV105", analyze.Warn, "role:"+m.roles[r], fmt.Sprintf(
			"role %q is authorized but never activatable in any reachable state within bounds (check enabling windows, prerequisites and Rule 9 dependencies)", m.roles[r]), nil)
	}
	for r, perms := range m.permsOf {
		bit := uint64(1) << r
		if len(perms) == 0 || m.contextGated&bit != 0 || dead[r] || closureEver&bit != 0 {
			continue
		}
		for _, p := range perms {
			report("RV104", analyze.Warn,
				fmt.Sprintf("grant:%s:%s:%s", p.Role, p.Operation, p.Object), fmt.Sprintf(
					"permission (%s %s) on role %q can never be exercised: the role never enters any session's active closure within bounds", p.Operation, p.Object, p.Role), nil)
		}
	}
}

// roleNames renders a role bitset as declaration-ordered names.
func (m *model) roleNames(bitset uint64) []string {
	var out []string
	for b := bitset; b != 0; b &= b - 1 {
		out = append(out, m.roles[bits.TrailingZeros64(b)])
	}
	return out
}

// buildCex reconstructs the shortest event sequence to the violating
// state by walking the BFS parent pointers, then renders it as
// replayable steps: session creations first (in order of first use),
// then the activate/drop/tick sequence, then the optional proving
// check.
func (m *model) buildCex(seen map[string]node, key string, v Violation, check *Step) *Counterexample {
	var path []trans
	for cur := key; ; {
		nd := seen[cur]
		if nd.parent == "" {
			break
		}
		path = append(path, nd.step)
		cur = nd.parent
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}

	var steps []Step
	usedSet := map[int]bool{}
	for _, tr := range path {
		if (tr.kind == 'a' || tr.kind == 'd') && !usedSet[tr.agent] {
			usedSet[tr.agent] = true
			steps = append(steps, Step{Op: "session",
				User: m.users[m.userOf[tr.agent]], Session: m.sessName[tr.agent]})
		}
	}
	for _, tr := range path {
		switch tr.kind {
		case 'a':
			steps = append(steps, Step{Op: "activate",
				User: m.users[m.userOf[tr.agent]], Session: m.sessName[tr.agent], Role: m.roles[tr.role]})
		case 'd':
			steps = append(steps, Step{Op: "drop",
				User: m.users[m.userOf[tr.agent]], Session: m.sessName[tr.agent], Role: m.roles[tr.role]})
		case 't':
			steps = append(steps, Step{Op: "tick",
				At: m.boundaries[tr.tick].UTC().Format(time.RFC3339)})
		}
	}
	if check != nil {
		steps = append(steps, *check)
	}
	return &Counterexample{Steps: steps, Violation: v}
}
