package reach

import (
	"fmt"
	"math/bits"
	"time"

	"activerbac/internal/policy"
)

// maxRoleBits is the role-width cap: a session's direct activations are
// one uint64 bitset.
const maxRoleBits = 64

// sodSet is a compiled SoD relation: member bitset plus cardinality.
type sodSet struct {
	name string
	mask uint64
	n    int
}

// model is the compiled finite transition system.
type model struct {
	spec *policy.Spec
	cfg  Config

	// Roles, declaration order; index is the bit position.
	roles   []string
	roleIdx map[string]int
	// closure[i] is i's junior closure including i itself.
	closure []uint64
	// contextGated marks roles with context constraints: treated as
	// never activatable and excluded from liveness findings.
	contextGated uint64
	// shifted marks roles with a GTRBAC shift (only these can be
	// disabled by a phase, so only these can window-escape).
	shifted uint64

	dsd []sodSet
	// card[i] is role i's activation cardinality, or -1.
	card []int
	// prereq[i] is the bitset of roles that must be active in the same
	// session before activating i.
	prereq []uint64
	// requires[i] lists roles that must be directly active somewhere
	// before activating i (Rule 9); dependents is the reverse edge.
	requires   [][]int
	dependents [][]int

	// Modelled users (first MaxUsers declared) and their derived sets.
	users    []string
	userAuth []uint64 // activatable roles: union of assigned closures
	userMax  []int    // per-session maxroles bound, or -1

	// Agents: users × sessions, flattened. userOf[a] indexes users;
	// sessName[a] is the stable label used in counterexample steps.
	nAgents  int
	userOf   []int
	sessName []string

	// Timeline: boundaries[k] is the instant of tick k; enabled[p] is
	// the role-enabled bitset during phase p (phase 0 starts at the
	// anchor, phase k+1 at boundaries[k]).
	boundaries []time.Time
	enabled    []uint64

	// liveOK gates RV104/RV105: false when any truncation means the
	// exploration cannot prove absence of an activation.
	liveOK bool

	// permsOf[i] collects role i's direct grants, for "check" steps.
	permsOf [][]policy.Perm
}

// compile lowers spec into the transition system. The returned notes
// describe truncations (roles beyond the 64-bit width, users beyond
// MaxUsers); each becomes an RV100 finding.
func compile(spec *policy.Spec, cfg Config) (*model, []string) {
	m := &model{spec: spec, cfg: cfg, liveOK: true}
	var notes []string

	nr := len(spec.Roles)
	if nr > maxRoleBits {
		notes = append(notes, fmt.Sprintf(
			"policy has %d roles; only the first %d are modelled (bitset width) — liveness findings suppressed", nr, maxRoleBits))
		nr = maxRoleBits
		m.liveOK = false
	}
	m.roles = spec.Roles[:nr]
	m.roleIdx = make(map[string]int, nr)
	for i, r := range m.roles {
		m.roleIdx[r] = i
	}

	juniors := spec.Juniors()
	m.closure = make([]uint64, nr)
	for i, r := range m.roles {
		cl := policy.JuniorClosure(juniors, r)
		var bitset uint64
		for j := range cl {
			if idx, ok := m.roleIdx[j]; ok {
				bitset |= 1 << idx
			}
		}
		m.closure[i] = bitset | 1<<i
	}

	for _, c := range spec.Contexts {
		if i, ok := m.roleIdx[c.Role]; ok {
			m.contextGated |= 1 << i
		}
	}

	for _, set := range spec.DSD {
		var mask uint64
		for _, r := range set.Roles {
			if i, ok := m.roleIdx[r]; ok {
				mask |= 1 << i
			}
		}
		m.dsd = append(m.dsd, sodSet{name: set.Name, mask: mask, n: set.N})
	}

	m.card = make([]int, nr)
	for i := range m.card {
		m.card[i] = -1
	}
	for _, c := range spec.Cardinalities {
		if i, ok := m.roleIdx[c.Role]; ok {
			m.card[i] = c.N
		}
	}

	m.prereq = make([]uint64, nr)
	for _, p := range spec.Prereqs {
		ri, ok1 := m.roleIdx[p.Role]
		pi, ok2 := m.roleIdx[p.Prereq]
		if ok1 && ok2 {
			m.prereq[ri] |= 1 << pi
		}
	}

	m.requires = make([][]int, nr)
	m.dependents = make([][]int, nr)
	for _, rq := range spec.Requires {
		di, ok1 := m.roleIdx[rq.Dependent]
		qi, ok2 := m.roleIdx[rq.Required]
		if ok1 && ok2 {
			m.requires[di] = append(m.requires[di], qi)
			m.dependents[qi] = append(m.dependents[qi], di)
		}
	}

	m.permsOf = make([][]policy.Perm, nr)
	for _, p := range spec.Permissions {
		if i, ok := m.roleIdx[p.Role]; ok {
			m.permsOf[i] = append(m.permsOf[i], p)
		}
	}

	// Users: the first MaxUsers declared. Policies with no users have
	// no agents — only the initial state exists, and liveness would
	// flag everything, so it is suppressed.
	userSpecs := spec.Users
	if len(userSpecs) > cfg.MaxUsers {
		notes = append(notes, fmt.Sprintf(
			"policy declares %d users; only the first %d are modelled — liveness findings suppressed", len(userSpecs), cfg.MaxUsers))
		userSpecs = userSpecs[:cfg.MaxUsers]
		m.liveOK = false
	}
	maxByUser := make(map[string]int, len(spec.MaxRoles))
	for _, mr := range spec.MaxRoles {
		maxByUser[mr.User] = mr.N
	}
	for _, u := range userSpecs {
		var auth uint64
		for _, r := range u.Roles {
			if i, ok := m.roleIdx[r]; ok {
				auth |= m.closure[i]
			}
		}
		m.users = append(m.users, u.Name)
		m.userAuth = append(m.userAuth, auth)
		if n, ok := maxByUser[u.Name]; ok {
			m.userMax = append(m.userMax, n)
		} else {
			m.userMax = append(m.userMax, -1)
		}
	}
	if len(m.users) == 0 {
		m.liveOK = false
	}

	for ui := range m.users {
		for s := 1; s <= cfg.MaxSessions; s++ {
			m.userOf = append(m.userOf, ui)
			m.sessName = append(m.sessName, fmt.Sprintf("%s#%d", m.users[ui], s))
		}
	}
	m.nAgents = len(m.userOf)

	m.compileTimeline()
	return m, notes
}

// compileTimeline abstracts the shift windows to the ordered sequence
// of boundary instants within a two-day horizon from the anchor, and
// precomputes the enabled bitset for every phase. Two days cover two
// full cycles of the daily patterns the shift statement produces, so a
// window escape reachable at all is reachable within the horizon.
func (m *model) compileTimeline() {
	type shiftw struct {
		bit int
		w   interface {
			Contains(time.Time) bool
			NextStart(time.Time) (time.Time, bool)
			NextStop(time.Time) (time.Time, bool)
		}
	}
	var shifts []shiftw
	for _, sh := range m.spec.Shifts {
		if i, ok := m.roleIdx[sh.Role]; ok {
			m.shifted |= 1 << i
			shifts = append(shifts, shiftw{bit: i, w: sh.Window()})
		}
	}

	enabledAt := func(t time.Time) uint64 {
		all := ^uint64(0)
		if n := len(m.roles); n < maxRoleBits {
			all = 1<<n - 1
		}
		for _, sw := range shifts {
			if !sw.w.Contains(t) {
				all &^= 1 << sw.bit
			}
		}
		return all
	}

	m.enabled = []uint64{enabledAt(m.cfg.Anchor)}
	if len(shifts) == 0 {
		return
	}
	horizon := m.cfg.Anchor.Add(48 * time.Hour)
	t := m.cfg.Anchor
	for len(m.boundaries) < m.cfg.MaxTicks {
		next := time.Time{}
		for _, sw := range shifts {
			for _, cand := range nextTransitions(sw.w, t) {
				if cand.After(t) && !cand.After(horizon) && (next.IsZero() || cand.Before(next)) {
					next = cand
				}
			}
		}
		if next.IsZero() {
			break
		}
		m.boundaries = append(m.boundaries, next)
		m.enabled = append(m.enabled, enabledAt(next))
		t = next
	}
}

// nextTransitions returns the candidate boundary instants of w strictly
// relevant after t (the next start and next stop).
func nextTransitions(w interface {
	NextStart(time.Time) (time.Time, bool)
	NextStop(time.Time) (time.Time, bool)
}, t time.Time) []time.Time {
	var out []time.Time
	if s, ok := w.NextStart(t); ok {
		out = append(out, s)
	}
	if e, ok := w.NextStop(t); ok {
		out = append(out, e)
	}
	return out
}

// closureOf expands a direct-activation bitset to its active closure
// (every activated role plus all its juniors).
func (m *model) closureOf(active uint64) uint64 {
	var cl uint64
	for b := active; b != 0; b &= b - 1 {
		cl |= m.closure[bits.TrailingZeros64(b)]
	}
	return cl
}
