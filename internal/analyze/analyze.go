// Package analyze is the static analyzer over compiled policies and
// generated OWTE rule sets. It runs *before installation* — on the
// policy compiler's output, on rbacd's startup and hot-reload path —
// and reports conflicts that the per-statement consistency checker
// (policy.Check) cannot see because they span layers: the role
// hierarchy versus separation-of-duty sets, GTRBAC periodic expressions
// versus each other, and the generated rule graph versus the event
// registry it will run on.
//
// Finding codes are stable and greppable:
//
//	RV001 error  SSoD set conflicts with the role hierarchy: some role's
//	             assignment path authorizes N or more of the set's
//	             members (NIST SSD semantics over the junior closure).
//	RV002 error  DSoD set makes a role unactivatable: activating the
//	             role alone brings N or more members into the session's
//	             active closure, so every activation is denied.
//	RV003 warn   DSoD set can never be violated: a static SoD set
//	             already prevents any user from being authorized for
//	             enough members (the dynamic constraint is vacuous).
//	RV004 error  Dead temporal window: the enable pattern never occurs,
//	             or every enable instant coincides with a disable
//	             instant, so the window contains no time at all.
//	RV005 warn   Temporal ambiguity: the enable and disable patterns can
//	             fire at the same instant (the engine resolves stop-wins,
//	             but the policy is underspecified at those instants).
//	RV006 warn   Shadowed rule: a higher-priority rule on the same event
//	             has a condition set subsuming a lower-priority rule's
//	             and actions covering it — the lower rule adds nothing.
//	RV007 error  Unreachable rule: the rule listens on an event that is
//	             not registered with the detector, so it can never fire.
//	RV008 error  Cascade cycle: following "raise" actions from rule to
//	             rule returns to the starting rule — an unbounded event
//	             cascade; the finding carries the full proof path.
//	RV009 warn   Temporal SoD conflict: within a disabling-time SoD
//	             window the periodic shift schedules leave every member
//	             role disabled, so the schedules alone drive the system
//	             into the forbidden state.
//	RV000 error  The policy failed the consistency checker; one finding
//	             per checker error (rule-level analyses are skipped).
package analyze

import (
	"sort"
	"time"

	"activerbac/internal/core"
	"activerbac/internal/policy"
)

// Severity classifies a finding.
type Severity int

// Finding severities. Error-severity findings fail `policyc -analyze`
// and, under `-analyze=strict`, rbacd startup and policy hot reloads.
const (
	Warn Severity = iota
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// MarshalJSON renders the severity as its string form, so API clients
// see "error"/"warn" instead of enum ordinals.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding is one analysis result.
type Finding struct {
	// Code is the stable finding code ("RV001", ...).
	Code string `json:"code"`
	// Severity is Error or Warn.
	Severity Severity `json:"severity"`
	// Subject identifies the offending constraint or rule, e.g.
	// "ssd:purchase-approval", "shift:DayDoctor", "rule:AAR1.PC".
	Subject string `json:"subject"`
	// Msg explains the conflict.
	Msg string `json:"msg"`
}

// String renders the stable one-line form "CODE severity subject: msg".
func (f Finding) String() string {
	return f.Code + " " + f.Severity.String() + " " + f.Subject + ": " + f.Msg
}

// HasErrors reports whether any finding is Error severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Input is everything the analyzer inspects. Spec is required; Rules
// and Events are optional (without them the rule-graph analyses are
// skipped — policyc and rbacd always provide them).
type Input struct {
	// Spec is the parsed policy.
	Spec *policy.Spec
	// Rules is the generated rule inventory (pool snapshot).
	Rules []core.RuleInfo
	// Events lists every event name registered with the detector; when
	// empty the reachability analysis (RV007) is skipped.
	Events []string
	// Anchor is the instant temporal searches start from; zero selects
	// a fixed epoch so analysis output is deterministic.
	Anchor time.Time
}

// defaultAnchor keeps temporal analysis deterministic when the caller
// does not supply an instant (patterns with wild years are periodic, so
// any anchor sees the same structure).
var defaultAnchor = time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)

// Analyze runs every analysis and returns the findings, errors first,
// then by code, then by subject — a deterministic order for golden
// tests and greppable output.
func Analyze(in Input) []Finding {
	if in.Spec == nil {
		return nil
	}
	if in.Anchor.IsZero() {
		in.Anchor = defaultAnchor
	}
	var fs []Finding
	fs = append(fs, analyzeSoD(in.Spec)...)
	fs = append(fs, analyzeTemporal(in.Spec, in.Anchor)...)
	fs = append(fs, analyzeRuleGraph(in.Rules, in.Events)...)
	sortFindings(fs)
	return fs
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Code != fs[j].Code {
			return fs[i].Code < fs[j].Code
		}
		return fs[i].Subject < fs[j].Subject
	})
}
