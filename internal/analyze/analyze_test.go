package analyze

import (
	"strings"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/core"
	"activerbac/internal/policy"
)

// parse is a helper: the golden policies below must be syntactically
// valid AND pass the statement-level consistency checker, so every
// conflict the analyzer reports is one the checker could not see.
func parse(t *testing.T, src string) *policy.Spec {
	t.Helper()
	spec, err := policy.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if issues := policy.Check(spec); policy.HasErrors(issues) {
		t.Fatalf("golden policy must pass policy.Check, got %v", issues)
	}
	return spec
}

// codes extracts the finding codes, preserving analyzer order.
func codes(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Code
	}
	return out
}

func wantFinding(t *testing.T, fs []Finding, code string, sev Severity, subject string) Finding {
	t.Helper()
	for _, f := range fs {
		if f.Code == code && f.Subject == subject {
			if f.Severity != sev {
				t.Errorf("%s %s: severity = %v, want %v", code, subject, f.Severity, sev)
			}
			return f
		}
	}
	t.Fatalf("no %s finding for %s in %v", code, subject, fs)
	return Finding{}
}

// TestGoldenPolicies runs one golden policy per spec-level finding code.
// Each policy is loadable (parses and passes policy.Check) so the
// conflict is visible only to the cross-statement analyzer.
func TestGoldenPolicies(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		code    string
		sev     Severity
		subject string
	}{
		{
			// CEO is a common ancestor of both SSoD members: assigning it
			// authorizes the whole set, which NIST SSD forbids. The
			// statement checker only examines in-set roles, so this loads.
			name: "RV001 ssd vs hierarchy",
			src: `
policy "g1"
role CEO
role PC
role AC
hierarchy CEO > PC
hierarchy CEO > AC
ssd purchase 2: PC, AC
`,
			code: "RV001", sev: Error, subject: "ssd:purchase",
		},
		{
			// Activating Supervisor alone brings both DSD members into the
			// active junior closure, so the role is unactivatable.
			name: "RV002 dsd dead role",
			src: `
policy "g2"
role Supervisor
role Teller
role Auditor
hierarchy Supervisor > Teller
hierarchy Supervisor > Auditor
dsd till 2: Teller, Auditor
`,
			code: "RV002", sev: Error, subject: "dsd:till",
		},
		{
			// The SSD set already forbids holding both roles, so the DSD
			// bound can never be reached at runtime: the constraint is
			// vacuous.
			name: "RV003 dsd vacuous under ssd",
			src: `
policy "g3"
role Initiator
role Approver
ssd origination 2: Initiator, Approver
dsd origination-live 2: Initiator, Approver
`,
			code: "RV003", sev: Warn, subject: "dsd:origination-live",
		},
		{
			// Enable and disable patterns coincide: with stop-wins
			// semantics the window never contains any instant.
			name: "RV004 dead shift window",
			src: `
policy "g4"
role NightAudit
shift NightAudit 02:00:00-02:00:00
`,
			code: "RV004", sev: Error, subject: "shift:NightAudit",
		},
		{
			// Both member roles are schedule-driven and both schedules are
			// disjoint from the protected window, so the shifts alone put
			// the system into the forbidden all-disabled state.
			name: "RV009 timesod starved by shifts",
			src: `
policy "g9"
role DayNurse
role DayDoctor
shift DayNurse 01:00:00-02:00:00
shift DayDoctor 01:00:00-02:00:00
timesod ward-coverage 10:00:00-17:00:00: DayNurse, DayDoctor
`,
			code: "RV009", sev: Warn, subject: "timesod:ward-coverage",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fs := Analyze(Input{Spec: parse(t, tc.src)})
			wantFinding(t, fs, tc.code, tc.sev, tc.subject)
		})
	}
}

// TestCleanPolicy asserts a policy exercising most constraint kinds
// produces zero findings of any severity.
func TestCleanPolicy(t *testing.T) {
	src := `
policy "clean"
role Manager
role Clerk
role Auditor
hierarchy Manager > Clerk
user ann: Manager
user bob: Clerk
user cas: Auditor
ssd books 2: Clerk, Auditor
cardinality Manager 2
shift Auditor 09:00:00-17:00:00
permission Clerk: read ledger
`
	if fs := Analyze(Input{Spec: parse(t, src)}); len(fs) != 0 {
		t.Fatalf("clean policy produced findings: %v", fs)
	}
}

// TestTemporalAmbiguity builds the spec directly: the .acp shift syntax
// only takes concrete hh:mm:ss endpoints, but full periodic expressions
// can intersect without either subsuming the other (RV005).
func TestTemporalAmbiguity(t *testing.T) {
	spec := &policy.Spec{
		Name:  "amb",
		Roles: []string{"R"},
		Shifts: []policy.Shift{{
			Role:  "R",
			Start: clock.MustPattern("09:*:00"),
			Stop:  clock.MustPattern("*:00:00"),
		}},
	}
	fs := Analyze(Input{Spec: spec})
	f := wantFinding(t, fs, "RV005", Warn, "shift:R")
	// The message must materialize a concrete shared instant.
	if !strings.Contains(f.Msg, "09:00:00") {
		t.Errorf("RV005 message should show the 09:00:00 intersection, got %q", f.Msg)
	}
}

// TestDeadWindowNoOccurrence covers the other RV004 arm: an enable
// pattern that names a calendar date that never exists (Feb 30).
func TestDeadWindowNoOccurrence(t *testing.T) {
	spec := &policy.Spec{
		Name:  "dead",
		Roles: []string{"R"},
		Shifts: []policy.Shift{{
			Role:  "R",
			Start: clock.MustPattern("09:00:00/2/30"),
			Stop:  clock.MustPattern("17:00:00/2/30"),
		}},
	}
	fs := Analyze(Input{Spec: spec})
	f := wantFinding(t, fs, "RV004", Error, "shift:R")
	if !strings.Contains(f.Msg, "no occurrence") {
		t.Errorf("RV004 message should say the pattern never occurs, got %q", f.Msg)
	}
}

// rule is a shorthand constructor for synthetic rule-graph inputs.
func rule(name, on string, prio int, conds, then []string) core.RuleInfo {
	return core.RuleInfo{
		Name: name, On: on, Priority: prio, Enabled: true,
		Conditions: conds, Then: then,
	}
}

// TestRuleGraphShadowed covers RV006: an unconditional higher-priority
// rule on the same event whose actions cover the lower rule's.
func TestRuleGraphShadowed(t *testing.T) {
	rules := []core.RuleInfo{
		rule("deny-all", "op.read", 10, nil, []string{"deny"}),
		rule("deny-guest", "op.read", 1, []string{"subject is guest"}, []string{"deny"}),
	}
	fs := analyzeRuleGraph(rules, []string{"op.read"})
	f := wantFinding(t, fs, "RV006", Warn, "rule:deny-guest")
	if !strings.Contains(f.Msg, "deny-all") {
		t.Errorf("RV006 message should name the shadowing rule, got %q", f.Msg)
	}
	// The shadowing rule itself must not be reported.
	for _, f := range fs {
		if f.Code == "RV006" && f.Subject == "rule:deny-all" {
			t.Errorf("shadowing rule reported as shadowed: %v", f)
		}
	}
}

// TestRuleGraphUnreachable covers RV007: a rule listening on an event
// the detector never registered.
func TestRuleGraphUnreachable(t *testing.T) {
	rules := []core.RuleInfo{
		rule("ok", "op.read", 1, nil, []string{"allow"}),
		rule("orphan", "op.ghost", 1, nil, []string{"deny"}),
	}
	fs := analyzeRuleGraph(rules, []string{"op.read"})
	wantFinding(t, fs, "RV007", Error, "rule:orphan")
	if got := codes(fs); len(got) != 1 {
		t.Fatalf("want exactly one finding, got %v", fs)
	}
	// With no event registry supplied the reachability pass is skipped.
	if fs := analyzeRuleGraph(rules, nil); len(fs) != 0 {
		t.Fatalf("RV007 must be skipped without an event registry, got %v", fs)
	}
}

// TestRuleGraphCascadeCycle covers RV008: raise edges forming a loop,
// reported once with the full proof path.
func TestRuleGraphCascadeCycle(t *testing.T) {
	rules := []core.RuleInfo{
		rule("ping", "ev.a", 1, nil, []string{"raise ev.b"}),
		rule("pong", "ev.b", 1, nil, []string{"raise ev.a"}),
		rule("leaf", "ev.b", 1, nil, []string{"log"}),
	}
	fs := analyzeRuleGraph(rules, []string{"ev.a", "ev.b"})
	f := wantFinding(t, fs, "RV008", Error, "rule:ping")
	for _, frag := range []string{"ping", "pong", "-raise ev.a->", "-raise ev.b->"} {
		if !strings.Contains(f.Msg, frag) {
			t.Errorf("RV008 proof path missing %q: %q", frag, f.Msg)
		}
	}
	n := 0
	for _, f := range fs {
		if f.Code == "RV008" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("cycle reported %d times, want once: %v", n, fs)
	}
}

// TestRuleGraphCycleIgnoresDisabled: a disabled rule cannot sustain a
// cascade, so disabling either endpoint clears the finding.
func TestRuleGraphCycleIgnoresDisabled(t *testing.T) {
	off := rule("ping", "ev.a", 1, nil, []string{"raise ev.b"})
	off.Enabled = false
	rules := []core.RuleInfo{
		off,
		rule("pong", "ev.b", 1, nil, []string{"raise ev.a"}),
	}
	for _, f := range analyzeRuleGraph(rules, []string{"ev.a", "ev.b"}) {
		if f.Code == "RV008" {
			t.Fatalf("cycle through a disabled rule reported: %v", f)
		}
	}
}

// TestSelfLoop: a rule that re-raises its own triggering event is the
// depth-1 cascade cycle.
func TestSelfLoop(t *testing.T) {
	rules := []core.RuleInfo{rule("echo", "ev.a", 1, nil, []string{"raise ev.a"})}
	fs := analyzeRuleGraph(rules, []string{"ev.a"})
	f := wantFinding(t, fs, "RV008", Error, "rule:echo")
	if !strings.Contains(f.Msg, "depth 1") {
		t.Errorf("self-loop should be depth 1, got %q", f.Msg)
	}
}

// TestFindingOrderAndFormat pins the stable output contract: errors
// before warnings, then by code, and the one-line greppable rendering.
func TestFindingOrderAndFormat(t *testing.T) {
	fs := []Finding{
		{Code: "RV006", Severity: Warn, Subject: "rule:x", Msg: "m1"},
		{Code: "RV008", Severity: Error, Subject: "rule:y", Msg: "m2"},
		{Code: "RV003", Severity: Warn, Subject: "dsd:z", Msg: "m3"},
	}
	sortFindings(fs)
	if got := codes(fs); got[0] != "RV008" || got[1] != "RV003" || got[2] != "RV006" {
		t.Fatalf("sort order = %v, want [RV008 RV003 RV006]", got)
	}
	if s := fs[0].String(); s != "RV008 error rule:y: m2" {
		t.Fatalf("String() = %q", s)
	}
	if !HasErrors(fs) {
		t.Fatal("HasErrors = false with an error finding present")
	}
	if HasErrors(fs[1:]) {
		t.Fatal("HasErrors = true with only warnings")
	}
}

// TestAnalyzeDeterministic: identical input yields identical findings —
// the property the hot-reload gate and golden tests rely on.
func TestAnalyzeDeterministic(t *testing.T) {
	src := `
policy "det"
role CEO
role PC
role AC
hierarchy CEO > PC
hierarchy CEO > AC
ssd purchase 2: PC, AC
dsd purchase-live 2: PC, AC
shift PC 02:00:00-02:00:00
`
	spec := parse(t, src)
	anchor := time.Date(2025, time.June, 1, 0, 0, 0, 0, time.UTC)
	a := Analyze(Input{Spec: spec, Anchor: anchor})
	b := Analyze(Input{Spec: spec, Anchor: anchor})
	if len(a) == 0 {
		t.Fatal("expected findings")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
