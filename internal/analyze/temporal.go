package analyze

import (
	"fmt"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/policy"
)

// GT-RBAC temporal analysis. Shifts and disabling-time SoD windows are
// <[begin,end], P> periodic expressions described by an enable (Start)
// and a disable (Stop) pattern; both are finite field-wise structures,
// so emptiness and same-instant conflicts are decidable directly on the
// patterns, without simulating the calendar.

func analyzeTemporal(s *policy.Spec, anchor time.Time) []Finding {
	var fs []Finding
	for _, sh := range s.Shifts {
		fs = append(fs, analyzeWindow("shift:"+sh.Role, sh.Window(), anchor)...)
	}
	for _, ts := range s.TimeSoDs {
		fs = append(fs, analyzeWindow("timesod:"+ts.Name, ts.Window(), anchor)...)
	}
	fs = append(fs, analyzeTimeSoDConflicts(s, anchor)...)
	return fs
}

// analyzeWindow flags dead (RV004) and ambiguous (RV005) windows.
func analyzeWindow(subject string, w clock.Window, anchor time.Time) []Finding {
	var fs []Finding
	start, okStart := w.NextStart(anchor)
	switch {
	case !okStart:
		fs = append(fs, Finding{
			Code: "RV004", Severity: Error, Subject: subject,
			Msg: fmt.Sprintf("dead window: enable pattern %s has no occurrence after %s",
				w.Start, anchor.Format(time.RFC3339)),
		})
	case patternSubsumes(w.Stop, w.Start):
		// Every enable instant is also a disable instant; with the
		// engine's half-open (stop-wins) semantics the window never
		// contains any time at all.
		fs = append(fs, Finding{
			Code: "RV004", Severity: Error, Subject: subject,
			Msg: fmt.Sprintf("dead window: every occurrence of enable pattern %s is also a disable instant of %s, so the window is always empty",
				w.Start, w.Stop),
		})
	case patternsIntersect(w.Start, w.Stop):
		fs = append(fs, Finding{
			Code: "RV005", Severity: Warn, Subject: subject,
			Msg: fmt.Sprintf("enable pattern %s and disable pattern %s can fire at the same instant (e.g. %s); the engine resolves disable-wins, but the policy is ambiguous there",
				w.Start, w.Stop, exampleIntersection(w.Start, w.Stop, anchor)),
		})
	}
	_ = start
	return fs
}

// analyzeTimeSoDConflicts flags RV009: a disabling-time SoD forbids all
// member roles being disabled inside its window, yet every member's
// shift schedule leaves it disabled at an instant inside that window —
// the periodic schedules alone force the forbidden state.
func analyzeTimeSoDConflicts(s *policy.Spec, anchor time.Time) []Finding {
	shifts := make(map[string]clock.Window, len(s.Shifts))
	for _, sh := range s.Shifts {
		shifts[sh.Role] = sh.Window()
	}
	var fs []Finding
	for _, ts := range s.TimeSoDs {
		// Only decidable when every member is schedule-driven; roles
		// without shifts are enabled/disabled by the administrator.
		allScheduled := len(ts.Roles) > 0
		for _, r := range ts.Roles {
			if _, ok := shifts[r]; !ok {
				allScheduled = false
				break
			}
		}
		if !allScheduled {
			continue
		}
		w := ts.Window()
		startAt, ok := w.NextStart(anchor)
		if !ok {
			continue // RV004 already reported the dead window
		}
		probe := startAt.Add(time.Second)
		if !w.Contains(probe) {
			continue
		}
		anyEnabled := false
		for _, r := range ts.Roles {
			if shifts[r].Contains(probe) {
				anyEnabled = true
				break
			}
		}
		if !anyEnabled {
			fs = append(fs, Finding{
				Code: "RV009", Severity: Warn, Subject: "timesod:" + ts.Name,
				Msg: fmt.Sprintf("the shift schedules leave every member role (%s) disabled at %s, inside the protected window — the periodic schedules alone violate the constraint",
					quoteList(ts.Roles), probe.Format(time.RFC3339)),
			})
		}
	}
	return fs
}

// patternsIntersect reports whether two patterns share at least one
// instant: field-wise, each position must be wild on either side or
// equal. (Calendar validity of the shared instant is checked by the
// caller's occurrence search; field compatibility is what makes the
// conflict reachable.)
func patternsIntersect(a, b clock.Pattern) bool {
	comp := func(x, y int) bool { return x == clock.Wild || y == clock.Wild || x == y }
	return comp(a.Hour, b.Hour) && comp(a.Min, b.Min) && comp(a.Sec, b.Sec) &&
		comp(a.Month, b.Month) && comp(a.Day, b.Day) && comp(a.Year, b.Year)
}

// patternSubsumes reports whether every instant of sub is also an
// instant of super: each super field is wild or equals sub's concrete
// value.
func patternSubsumes(super, sub clock.Pattern) bool {
	cover := func(sup, s int) bool { return sup == clock.Wild || (s != clock.Wild && sup == s) }
	return cover(super.Hour, sub.Hour) && cover(super.Min, sub.Min) && cover(super.Sec, sub.Sec) &&
		cover(super.Month, sub.Month) && cover(super.Day, sub.Day) && cover(super.Year, sub.Year)
}

// exampleIntersection materializes one shared instant of two
// intersecting patterns for the finding message.
func exampleIntersection(a, b clock.Pattern, anchor time.Time) string {
	merged := clock.Pattern{
		Hour: pick(a.Hour, b.Hour), Min: pick(a.Min, b.Min), Sec: pick(a.Sec, b.Sec),
		Month: pick(a.Month, b.Month), Day: pick(a.Day, b.Day), Year: pick(a.Year, b.Year),
	}
	if t, ok := merged.Next(anchor); ok {
		return t.Format(time.RFC3339)
	}
	return merged.String()
}

func pick(x, y int) int {
	if x != clock.Wild {
		return x
	}
	return y
}
