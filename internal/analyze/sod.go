package analyze

import (
	"fmt"
	"sort"
	"strings"

	"activerbac/internal/policy"
)

// Separation-of-duty versus hierarchy analysis. policy.Check already
// rejects a set whose *own member* subsumes N co-members; the analyses
// here look across the whole role graph and across constraint kinds:
// a common ancestor outside the set (RV001), the activation closure the
// dynamic checker counts at runtime (RV002), and static sets that make
// a dynamic set unreachable (RV003).

func analyzeSoD(s *policy.Spec) []Finding {
	var fs []Finding
	juniors := s.Juniors()

	// RV001: NIST SSD semantics count the junior closure of every
	// assignment, so ANY declared role whose closure covers >= N members
	// of an SSoD set is unassignable — a conflict between the hierarchy
	// and the constraint, invisible statement-by-statement when the role
	// is a common ancestor outside the set.
	for _, set := range s.SSD {
		for _, role := range s.Roles {
			cl := policy.JuniorClosure(juniors, role)
			hits := membersIn(cl, set.Roles)
			if len(hits) >= set.N && set.N >= 2 {
				fs = append(fs, Finding{
					Code: "RV001", Severity: Error, Subject: "ssd:" + set.Name,
					Msg: fmt.Sprintf("conflicts with the role hierarchy: assigning %q authorizes %s — %d of the set's %d members (cardinality %d); the role is unassignable",
						role, quoteList(hits), len(hits), len(set.Roles), set.N),
				})
			}
		}
	}

	// RV002: the dynamic checker counts the junior closure of the
	// session's active roles, so a single role whose closure covers >= N
	// members of a DSD set can never be activated anywhere.
	for _, set := range s.DSD {
		for _, role := range s.Roles {
			cl := policy.JuniorClosure(juniors, role)
			hits := membersIn(cl, set.Roles)
			if len(hits) >= set.N && set.N >= 2 {
				fs = append(fs, Finding{
					Code: "RV002", Severity: Error, Subject: "dsd:" + set.Name,
					Msg: fmt.Sprintf("role %q can never be activated: one activation brings %s into the active closure — %d of %d members (cardinality %d)",
						role, quoteList(hits), len(hits), len(set.Roles), set.N),
				})
			}
		}
	}

	// RV003: a DSD set is vacuous when a static set already caps how
	// many of its members any user can be authorized for. If an SSD set
	// T ⊆ D satisfies D.N + |T| - |D| >= T.N, then holding D.N members
	// of D necessarily includes T.N members of T, which SSD forbids — so
	// no session can ever reach the dynamic bound.
	for _, d := range s.DSD {
		dset := toSet(d.Roles)
		for _, t := range s.SSD {
			if !subset(t.Roles, dset) {
				continue
			}
			if d.N+len(t.Roles)-len(d.Roles) >= t.N {
				fs = append(fs, Finding{
					Code: "RV003", Severity: Warn, Subject: "dsd:" + d.Name,
					Msg: fmt.Sprintf("can never be violated: ssd set %q already forbids any user from being authorized for %d of %s",
						t.Name, t.N, quoteList(t.Roles)),
				})
				break
			}
		}
	}
	return fs
}

// membersIn returns the members of roles present in cl, in set order.
func membersIn(cl map[string]bool, roles []string) []string {
	var hits []string
	for _, r := range roles {
		if cl[r] {
			hits = append(hits, r)
		}
	}
	return hits
}

func toSet(roles []string) map[string]bool {
	out := make(map[string]bool, len(roles))
	for _, r := range roles {
		out[r] = true
	}
	return out
}

func subset(roles []string, of map[string]bool) bool {
	for _, r := range roles {
		if !of[r] {
			return false
		}
	}
	return len(roles) > 0
}

func quoteList(roles []string) string {
	qs := make([]string, len(roles))
	for i, r := range roles {
		qs[i] = fmt.Sprintf("%q", r)
	}
	sort.Strings(qs)
	return strings.Join(qs, ", ")
}
