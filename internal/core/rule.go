// Package core implements the paper's primary contribution: OWTE
// (On-When-Then-Else) active authorization rules — ECA rules extended
// with alternative actions — and the rule pool that classifies, orders,
// enables, disables and fires them.
//
// A rule binds to a named event in an event.Detector ("On"). When the
// event is detected the rule's conditions are evaluated in order
// ("When"); if every condition holds, the actions run ("Then"),
// otherwise the alternative actions run ("Else"). Rules carry the
// paper's classification (administrative, activity-control,
// active-security) and granularity (specialized, localized, globalized),
// plus priorities and tags used by the rule generator for regeneration.
package core

import (
	"fmt"
	"time"

	"activerbac/internal/event"
)

// Condition is one "When" predicate. Conditions are conjunctive and
// evaluated in order with short-circuiting. A returned error counts as
// FALSE (the paper routes every non-TRUE evaluation to the Else branch)
// and is surfaced in the rule outcome.
type Condition struct {
	// Desc describes the predicate for rule listings and audit trails,
	// e.g. "user IN userL" or "checkDynamicSoDSet(user, R1)".
	Desc string
	// Eval evaluates the predicate against the triggering occurrence.
	Eval func(*event.Occurrence) (bool, error)
}

// Action is one "Then" or "Else" step. Actions may raise further events
// on the detector (cascaded rules); failures abort the remaining steps
// of the same branch and are surfaced in the outcome.
type Action struct {
	// Desc describes the step, e.g. "addSessionRoleR1(sessionId)".
	Desc string
	// Run performs the step.
	Run func(*event.Occurrence) error
}

// Cond is shorthand for building a Condition.
func Cond(desc string, eval func(*event.Occurrence) (bool, error)) Condition {
	return Condition{Desc: desc, Eval: eval}
}

// BoolCond builds a Condition from a plain predicate.
func BoolCond(desc string, eval func(*event.Occurrence) bool) Condition {
	return Condition{Desc: desc, Eval: func(o *event.Occurrence) (bool, error) {
		return eval(o), nil
	}}
}

// Act is shorthand for building an Action.
func Act(desc string, run func(*event.Occurrence) error) Action {
	return Action{Desc: desc, Run: run}
}

// Class is the paper's rule classification (Section 4.3).
type Class int

// Rule classes.
const (
	// Administrative rules implement high-level policy operations such
	// as user-role assignment.
	Administrative Class = iota
	// ActivityControl rules gate the activities instances of U may
	// perform (activations, accesses, cardinality, ...).
	ActivityControl
	// ActiveSecurity rules monitor state changes and take preventive
	// measures.
	ActiveSecurity
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Administrative:
		return "administrative"
	case ActivityControl:
		return "activity-control"
	case ActiveSecurity:
		return "active-security"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Granularity is the paper's rule granularity (Section 4.3): specialized
// rules bind to one user, localized rules to one role, globalized rules
// to no particular role.
type Granularity int

// Rule granularities.
const (
	// Specialized rules are specific to one instance of U (one user).
	Specialized Granularity = iota
	// Localized rules are specific to one role, created from the role's
	// properties.
	Localized
	// Globalized rules are generic and invoked with different
	// parameters.
	Globalized
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case Specialized:
		return "specialized"
	case Localized:
		return "localized"
	case Globalized:
		return "globalized"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Scope declares which partition of enforcement state a rule's
// conditions and actions may observe, and therefore where occurrences
// of its On event may execute. It refines Granularity for the event
// router: a scope-local rule (session- or user-scoped) only reads and
// writes state of the single scope named by the triggering occurrence's
// ScopeKey, so its firings for different scopes may run concurrently on
// scope lanes. A global rule (SoD oracles, cardinality counters,
// security monitors, anything condition-dependent on other users) pins
// its event to the global lane.
type Scope int

// Rule scopes.
const (
	// ScopeGlobal (the zero value, so unannotated rules stay safe) may
	// observe cross-scope state and requires global-lane ordering.
	ScopeGlobal Scope = iota
	// ScopeSession rules touch only the triggering session's state.
	ScopeSession
	// ScopeUser rules touch only the triggering user's state.
	ScopeUser
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeGlobal:
		return "global"
	case ScopeSession:
		return "session"
	case ScopeUser:
		return "user"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Local reports whether the rule scope permits scope-lane execution.
func (s Scope) Local() bool { return s != ScopeGlobal }

// Rule is one OWTE authorization rule:
//
//	RULE [ Name
//	       ON    Event
//	       WHEN  <C1 ... Cn>
//	       THEN  <A1 ... An>
//	       ELSE  <AA1 ... AAn> ]
type Rule struct {
	// Name identifies the rule uniquely within a pool (the paper's
	// R-name, e.g. "AAR1.PC").
	Name string
	// On names the triggering event (primitive or composite) in the
	// detector.
	On string
	// When holds the conjunctive conditions; an empty list means TRUE.
	When []Condition
	// Then holds the actions run when all conditions hold.
	Then []Action
	// Else holds the alternative actions run otherwise.
	Else []Action
	// Class and Granularity classify the rule per Section 4.3.
	Class       Class
	Granularity Granularity
	// Scope declares the state partition the rule touches; it drives
	// lane routing. The zero value (ScopeGlobal) is the conservative
	// default: such rules always execute with global ordering.
	Scope Scope
	// Priority orders rules triggered by the same event; higher runs
	// first (ties break by insertion order).
	Priority int
	// Tags label the rule for bulk operations; the rule generator tags
	// rules with the role and constraint they came from so regeneration
	// can replace exactly the affected rules.
	Tags []string
	// Disabled marks the rule inactive at insertion time.
	Disabled bool
	// CacheSafe declares that the rule's verdict is a pure function of
	// RBAC store state for a given parameter tuple: no condition or
	// action reads temporal/GTRBAC windows, DSoD activation history,
	// consent, environment context or monitor counters, and the Else
	// branch's side effects (denial recording) are the only
	// history-dependent part. The decision fast path may serve repeat
	// ALLOW verdicts for an event from its cache only when every enabled
	// rule on the event is CacheSafe; denials always run the cascade.
	// Mark a rule cache-safe only after auditing every closure it holds.
	CacheSafe bool
}

// HasTag reports whether the rule carries tag.
func (r *Rule) HasTag(tag string) bool {
	for _, t := range r.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Outcome records one firing of a rule, for audit trails and active
// security monitors.
type Outcome struct {
	// Rule is the fired rule's name; Event the triggering occurrence.
	Rule  string
	Event *event.Occurrence
	// Allowed reports whether the When branch held (Then ran).
	Allowed bool
	// FailedCond is the description of the first condition that did not
	// hold (empty when Allowed).
	FailedCond string
	// CondErr is the error from a condition evaluation, if any.
	CondErr error
	// ActionErr is the first error from the branch that ran, if any.
	ActionErr error
	// At is the detector-clock instant of the firing.
	At time.Time
}

// String renders the outcome for logs.
func (o Outcome) String() string {
	verdict := "ALLOW"
	if !o.Allowed {
		verdict = "DENY"
	}
	s := fmt.Sprintf("%s %s on %s", verdict, o.Rule, o.Event)
	if o.FailedCond != "" {
		s += fmt.Sprintf(" (failed: %s)", o.FailedCond)
	}
	return s
}
