package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/event"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newTestPool() (*Pool, *event.Detector, *clock.Sim) {
	sim := clock.NewSim(t0)
	det := event.New(sim)
	return NewPool(det), det, sim
}

func trueCond() Condition  { return BoolCond("TRUE", func(*event.Occurrence) bool { return true }) }
func falseCond() Condition { return BoolCond("FALSE", func(*event.Occurrence) bool { return false }) }

func counterAct(desc string, n *int) Action {
	return Act(desc, func(*event.Occurrence) error { *n++; return nil })
}

func TestRuleThenBranch(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	thenN, elseN := 0, 0
	p.MustAdd(Rule{
		Name: "r1", On: "e",
		When: []Condition{trueCond()},
		Then: []Action{counterAct("then", &thenN)},
		Else: []Action{counterAct("else", &elseN)},
	})
	det.MustRaise("e", nil)
	if thenN != 1 || elseN != 0 {
		t.Fatalf("then=%d else=%d, want 1/0", thenN, elseN)
	}
}

func TestRuleElseBranch(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	thenN, elseN := 0, 0
	p.MustAdd(Rule{
		Name: "r1", On: "e",
		When: []Condition{trueCond(), falseCond()},
		Then: []Action{counterAct("then", &thenN)},
		Else: []Action{counterAct("else", &elseN)},
	})
	det.MustRaise("e", nil)
	if thenN != 0 || elseN != 1 {
		t.Fatalf("then=%d else=%d, want 0/1 (alternative actions on FALSE)", thenN, elseN)
	}
}

func TestEmptyWhenMeansTrue(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	n := 0
	p.MustAdd(Rule{Name: "r", On: "e", Then: []Action{counterAct("a", &n)}})
	det.MustRaise("e", nil)
	if n != 1 {
		t.Fatalf("then ran %d times, want 1", n)
	}
}

func TestConditionShortCircuit(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	evals := 0
	counting := Cond("count", func(*event.Occurrence) (bool, error) { evals++; return true, nil })
	p.MustAdd(Rule{
		Name: "r", On: "e",
		When: []Condition{counting, falseCond(), counting},
	})
	det.MustRaise("e", nil)
	if evals != 1 {
		t.Fatalf("conditions evaluated %d times, want 1 (short circuit after FALSE)", evals)
	}
}

func TestConditionErrorRoutesToElse(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	boom := errors.New("boom")
	elseN := 0
	var outs []Outcome
	p.OnOutcome(func(o Outcome) { outs = append(outs, o) })
	p.MustAdd(Rule{
		Name: "r", On: "e",
		When: []Condition{Cond("explodes", func(*event.Occurrence) (bool, error) { return true, boom })},
		Else: []Action{counterAct("else", &elseN)},
	})
	det.MustRaise("e", nil)
	if elseN != 1 {
		t.Fatalf("else ran %d times, want 1", elseN)
	}
	if len(outs) != 1 || outs[0].Allowed || !errors.Is(outs[0].CondErr, boom) || outs[0].FailedCond != "explodes" {
		t.Fatalf("outcome %+v", outs)
	}
}

func TestActionErrorAbortsBranch(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	ran := 0
	var outs []Outcome
	p.OnOutcome(func(o Outcome) { outs = append(outs, o) })
	p.MustAdd(Rule{
		Name: "r", On: "e",
		Then: []Action{
			Act("fails", func(*event.Occurrence) error { return errors.New("nope") }),
			counterAct("after", &ran),
		},
	})
	det.MustRaise("e", nil)
	if ran != 0 {
		t.Fatal("action after failing action still ran")
	}
	if outs[0].ActionErr == nil {
		t.Fatal("ActionErr not recorded")
	}
}

func TestPriorityOrdering(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	var order []string
	mk := func(name string, prio int) Rule {
		return Rule{Name: name, On: "e", Priority: prio,
			Then: []Action{Act("t", func(*event.Occurrence) error { order = append(order, name); return nil })}}
	}
	p.MustAdd(mk("low", 1))
	p.MustAdd(mk("high", 10))
	p.MustAdd(mk("mid", 5))
	p.MustAdd(mk("mid2", 5)) // same priority: insertion order
	det.MustRaise("e", nil)
	want := []string{"high", "mid", "mid2", "low"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("firing order %v, want %v", order, want)
	}
}

func TestAddValidation(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	if err := p.Add(Rule{Name: "", On: "e"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := p.Add(Rule{Name: "r", On: ""}); err == nil {
		t.Fatal("empty event accepted")
	}
	if err := p.Add(Rule{Name: "r", On: "undefined"}); err == nil {
		t.Fatal("undefined event accepted")
	}
	p.MustAdd(Rule{Name: "r", On: "e"})
	if err := p.Add(Rule{Name: "r", On: "e"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestRemove(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	n := 0
	p.MustAdd(Rule{Name: "r", On: "e", Then: []Action{counterAct("a", &n)}})
	if err := p.Remove("r"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("r"); err == nil {
		t.Fatal("double remove accepted")
	}
	det.MustRaise("e", nil)
	if n != 0 {
		t.Fatal("removed rule fired")
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
}

func TestRemoveByTag(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	for i := 0; i < 5; i++ {
		tag := "role:PC"
		if i >= 3 {
			tag = "role:AC"
		}
		p.MustAdd(Rule{Name: fmt.Sprintf("r%d", i), On: "e", Tags: []string{tag}})
	}
	if n := p.RemoveByTag("role:PC"); n != 3 {
		t.Fatalf("removed %d, want 3", n)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if n := p.RemoveByTag("role:none"); n != 0 {
		t.Fatalf("removed %d for unknown tag, want 0", n)
	}
}

func TestEnableDisable(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	n := 0
	p.MustAdd(Rule{Name: "r", On: "e", Then: []Action{counterAct("a", &n)}})
	if err := p.SetEnabled("r", false); err != nil {
		t.Fatal(err)
	}
	det.MustRaise("e", nil)
	if n != 0 {
		t.Fatal("disabled rule fired")
	}
	if err := p.SetEnabled("r", true); err != nil {
		t.Fatal(err)
	}
	det.MustRaise("e", nil)
	if n != 1 {
		t.Fatal("re-enabled rule did not fire")
	}
	if err := p.SetEnabled("zzz", true); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

func TestSetEnabledByTag(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	n := 0
	p.MustAdd(Rule{Name: "a", On: "e", Tags: []string{"critical"}, Then: []Action{counterAct("x", &n)}})
	p.MustAdd(Rule{Name: "b", On: "e", Tags: []string{"critical"}, Then: []Action{counterAct("x", &n)}})
	p.MustAdd(Rule{Name: "c", On: "e", Then: []Action{counterAct("x", &n)}})
	if got := p.SetEnabledByTag("critical", false); got != 2 {
		t.Fatalf("affected %d, want 2", got)
	}
	det.MustRaise("e", nil)
	if n != 1 {
		t.Fatalf("fired %d, want 1 (only untagged rule)", n)
	}
}

func TestDisabledAtInsertion(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	n := 0
	p.MustAdd(Rule{Name: "r", On: "e", Disabled: true, Then: []Action{counterAct("a", &n)}})
	det.MustRaise("e", nil)
	if n != 0 {
		t.Fatal("rule inserted disabled fired")
	}
	info, _ := p.Get("r")
	if info.Enabled {
		t.Fatal("info.Enabled = true")
	}
}

func TestOutcomeCounters(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	allow := true
	p.MustAdd(Rule{Name: "r", On: "e",
		When: []Condition{BoolCond("flag", func(*event.Occurrence) bool { return allow })}})
	det.MustRaise("e", nil)
	det.MustRaise("e", nil)
	allow = false
	det.MustRaise("e", nil)
	info, ok := p.Get("r")
	if !ok {
		t.Fatal("rule missing")
	}
	if info.Fired != 3 || info.Allowed != 2 || info.Denied != 1 {
		t.Fatalf("counters fired=%d allowed=%d denied=%d", info.Fired, info.Allowed, info.Denied)
	}
}

func TestCascadedRuleViaAction(t *testing.T) {
	// Paper Rule 8 shape: rule on e1 raises e2, which triggers another
	// rule.
	p, det, _ := newTestPool()
	det.MustPrimitive("enableSysAdmin")
	det.MustPrimitive("enableSysAudit")
	var trace []string
	p.MustAdd(Rule{
		Name: "CFD1", On: "enableSysAdmin",
		Then: []Action{Act("enable audit too", func(o *event.Occurrence) error {
			trace = append(trace, "sysadmin-enabled")
			return det.Raise("enableSysAudit", o.Params)
		})},
	})
	p.MustAdd(Rule{
		Name: "CFD2", On: "enableSysAudit",
		Then: []Action{Act("enable", func(*event.Occurrence) error {
			trace = append(trace, "sysaudit-enabled")
			return nil
		})},
	})
	det.MustRaise("enableSysAdmin", event.Params{"user": "root"})
	if len(trace) != 2 || trace[0] != "sysadmin-enabled" || trace[1] != "sysaudit-enabled" {
		t.Fatalf("trace %v", trace)
	}
}

func TestRuleOnCompositeEvent(t *testing.T) {
	p, det, sim := newTestPool()
	det.MustPrimitive("open")
	det.MustDefine("timeout", event.Plus(event.NameExpr("open"), 2*time.Hour))
	closed := 0
	p.MustAdd(Rule{
		Name: "C1", On: "timeout",
		Then: []Action{counterAct("closeFile", &closed)},
	})
	det.MustRaise("open", event.Params{"file": "patient.dat"})
	sim.Advance(3 * time.Hour)
	if closed != 1 {
		t.Fatalf("closeFile ran %d times, want 1", closed)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	p.MustAdd(Rule{Name: "zz", On: "e", Class: ActiveSecurity, Granularity: Globalized,
		When: []Condition{trueCond()}, Then: []Action{Act("t", nil)}, Else: []Action{Act("e", nil)},
		Tags: []string{"x"}})
	p.MustAdd(Rule{Name: "aa", On: "e", Class: Administrative, Granularity: Specialized})
	snap := p.Snapshot()
	if len(snap) != 2 || snap[0].Name != "aa" || snap[1].Name != "zz" {
		t.Fatalf("snapshot %v", snap)
	}
	zz := snap[1]
	if zz.Class != ActiveSecurity || zz.Granularity != Globalized ||
		len(zz.Conditions) != 1 || len(zz.Then) != 1 || len(zz.Else) != 1 || len(zz.Tags) != 1 {
		t.Fatalf("snapshot detail %+v", zz)
	}
}

func TestClassGranularityStrings(t *testing.T) {
	if Administrative.String() != "administrative" ||
		ActivityControl.String() != "activity-control" ||
		ActiveSecurity.String() != "active-security" {
		t.Fatal("Class strings wrong")
	}
	if Specialized.String() != "specialized" || Localized.String() != "localized" ||
		Globalized.String() != "globalized" {
		t.Fatal("Granularity strings wrong")
	}
	if Class(99).String() == "" || Granularity(99).String() == "" {
		t.Fatal("unknown enum Strings empty")
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Rule: "r", Event: &event.Occurrence{Event: "e", Start: t0, End: t0}, Allowed: true}
	if s := o.String(); s == "" || s[:5] != "ALLOW" {
		t.Fatalf("String = %q", s)
	}
	o.Allowed = false
	o.FailedCond = "cond"
	if s := o.String(); s[:4] != "DENY" {
		t.Fatalf("String = %q", s)
	}
}

func TestMultipleRulesSameEvent(t *testing.T) {
	p, det, _ := newTestPool()
	det.MustPrimitive("e")
	n := 0
	for i := 0; i < 10; i++ {
		p.MustAdd(Rule{Name: fmt.Sprintf("r%d", i), On: "e", Then: []Action{counterAct("a", &n)}})
	}
	det.MustRaise("e", nil)
	if n != 10 {
		t.Fatalf("fired %d, want 10", n)
	}
}
