package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"activerbac/internal/event"
	"activerbac/internal/obs"
)

// OutcomeListener observes every rule firing; used by the audit trail
// and by active-security monitors. Listeners run on the detector's
// drain goroutine and must not block.
type OutcomeListener func(Outcome)

// ruleState wraps a Rule with pool-managed runtime state. The firing
// counters are atomic because rules on different scope lanes fire
// concurrently.
type ruleState struct {
	rule    Rule
	enabled bool
	order   int // insertion order, tie-break after priority
	fired   atomic.Uint64
	allowed atomic.Uint64
	denied  atomic.Uint64
	// evalNanos accumulates engine-clock time spent inside this rule
	// (conditions + branch actions); only advanced when timing is on.
	evalNanos atomic.Uint64
}

// RuleInfo is a read-only snapshot of one rule's state.
type RuleInfo struct {
	Name        string
	On          string
	Class       Class
	Granularity Granularity
	Scope       Scope
	Priority    int
	Tags        []string
	Enabled     bool
	Fired       uint64
	Allowed     uint64
	Denied      uint64
	EvalNanos   uint64 // cumulative evaluation time; 0 unless rule timing is on
	Conditions  []string
	Then        []string
	Else        []string
}

// fireTable is the published per-event firing plan: the enabled rules
// in priority order plus the facts lane routing and the decision fast
// path need. Fields are written only by the builder (publishLocked) and
// are immutable once published.
type fireTable struct {
	states []*ruleState // enabled rules only, (priority desc, order asc)
	// local reports whether every rule bound to the event (enabled or
	// not) is scope-local — the detector's routing advisor answer.
	local bool
	// cacheSafe reports whether the event's decisions may be served
	// from the fast-path cache: at least one enabled rule, and every
	// enabled rule marked Rule.CacheSafe.
	cacheSafe bool
	// subID is the pool's detector subscription id for the event.
	subID int
}

// fireView is the immutable read-side projection of the rule pool,
// republished by every mutation and read lock-free (one atomic load,
// zero allocation) by the firing hot path.
//
// rbacvet:snapshot
type fireView struct {
	byEvent   map[string]*fireTable
	listeners []OutcomeListener
}

// Pool holds the active authorization rules of one system — the paper's
// "rule pool" — and wires them to an event detector. Mutations are
// guarded by one mutex and republish an immutable fireView; rule firing
// happens on detector lanes, concurrently across scopes when the
// detector is sharded, reading only the published view.
type Pool struct {
	det *event.Detector

	mu        sync.RWMutex
	rules     map[string]*ruleState
	byEvent   map[string][]*ruleState
	subIDs    map[string]int // event name -> detector subscription id
	listeners []OutcomeListener
	nextOrder int

	// view is the published projection above; never nil after NewPool.
	view atomic.Pointer[fireView]
	// chook, when set, runs after every view publication.
	chook func()
	// timed turns on per-rule evaluation timing (one extra clock read
	// per firing); set once by the engine when an observer is attached.
	timed atomic.Bool
}

// SetRuleTiming switches per-rule cumulative evaluation timing on or
// off. Off (the default) keeps rule firing at one clock read.
func (p *Pool) SetRuleTiming(on bool) { p.timed.Store(on) }

// NewPool returns an empty rule pool bound to det and installs the pool
// as the detector's scope advisor, so lane routing follows the
// granularity of the registered rules.
func NewPool(det *event.Detector) *Pool {
	p := &Pool{
		det:     det,
		rules:   make(map[string]*ruleState),
		byEvent: make(map[string][]*ruleState),
		subIDs:  make(map[string]int),
	}
	p.view.Store(&fireView{byEvent: map[string]*fireTable{}})
	det.SetScopeAdvisor(p.EventScopeLocal)
	return p
}

// publishLocked rebuilds the read-side fireView from the canonical rule
// maps and publishes it. Caller holds p.mu (write side).
func (p *Pool) publishLocked() {
	v := &fireView{
		byEvent:   make(map[string]*fireTable, len(p.byEvent)),
		listeners: append([]OutcomeListener(nil), p.listeners...),
	}
	for evt, states := range p.byEvent {
		t := &fireTable{local: true, cacheSafe: true, subID: p.subIDs[evt]}
		for _, st := range states {
			if !st.rule.Scope.Local() {
				t.local = false
			}
			if !st.enabled {
				continue
			}
			t.states = append(t.states, st)
			if !st.rule.CacheSafe {
				t.cacheSafe = false
			}
		}
		if len(t.states) == 0 {
			t.cacheSafe = false
		}
		v.byEvent[evt] = t
	}
	p.view.Store(v)
	if h := p.chook; h != nil {
		h()
	}
}

// SetChangeHook installs a callback run after every rule-set or
// listener change publishes a new fire view. The hook runs under the
// pool mutex and must not block or call back into the pool; the
// decision fast path uses it to bump its invalidation epoch. Install
// once during engine assembly.
func (p *Pool) SetChangeHook(fn func()) {
	p.mu.Lock()
	p.chook = fn
	p.publishLocked()
	p.mu.Unlock()
}

// EventScopeLocal reports whether every rule currently bound to evt is
// scope-local (no ScopeGlobal rule), i.e. whether occurrences of evt
// may execute on a scope lane as far as the rule pool is concerned.
func (p *Pool) EventScopeLocal(evt string) bool {
	t := p.view.Load().byEvent[evt]
	return t == nil || t.local
}

// CacheVerdictSafe reports whether evt's ALLOW decisions may be served
// from the fast-path cache: the pool's own subscription (confirmed by
// subID, which the caller obtained from the detector as the event's
// sole subscriber) fires at least one rule, every enabled rule is
// CacheSafe, and no outcome listener (audit trail) observes firings.
func (p *Pool) CacheVerdictSafe(evt string, subID int) bool {
	v := p.view.Load()
	if len(v.listeners) != 0 {
		return false
	}
	t := v.byEvent[evt]
	return t != nil && t.cacheSafe && t.subID == subID
}

// ListenerCount reports the number of registered outcome listeners.
func (p *Pool) ListenerCount() int {
	return len(p.view.Load().listeners)
}

// Detector returns the event detector the pool fires on.
func (p *Pool) Detector() *event.Detector { return p.det }

// OnOutcome registers a listener for every rule firing.
func (p *Pool) OnOutcome(l OutcomeListener) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.listeners = append(p.listeners, l)
	p.publishLocked()
}

// Add inserts a rule. The rule's On event must be defined in the
// detector and the rule name must be unused.
func (p *Pool) Add(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("core: rule with empty name")
	}
	if r.On == "" {
		return fmt.Errorf("core: rule %q has no On event", r.Name)
	}
	if !p.det.Defined(r.On) {
		return fmt.Errorf("core: rule %q triggers on undefined event %q", r.Name, r.On)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.rules[r.Name]; dup {
		return fmt.Errorf("core: duplicate rule name %q", r.Name)
	}
	st := &ruleState{rule: r, enabled: !r.Disabled, order: p.nextOrder}
	p.nextOrder++
	p.rules[r.Name] = st
	p.byEvent[r.On] = insertOrdered(p.byEvent[r.On], st)

	if _, subscribed := p.subIDs[r.On]; !subscribed {
		evt := r.On
		// The pool subscription is scope-marked: whether the event may
		// actually leave the global lane is decided per event by the
		// EventScopeLocal advisor above.
		id, err := p.det.SubscribeScoped(evt, func(o *event.Occurrence) { p.fire(evt, o) })
		if err != nil {
			// Undo the insert; Defined was checked above so this is
			// unexpected, but keep the pool consistent.
			delete(p.rules, r.Name)
			p.byEvent[r.On] = removeRule(p.byEvent[r.On], st)
			return err
		}
		p.subIDs[evt] = id
	}
	p.publishLocked()
	return nil
}

// MustAdd is Add that panics on error.
func (p *Pool) MustAdd(r Rule) {
	if err := p.Add(r); err != nil {
		panic(err)
	}
}

// insertOrdered keeps the slice sorted by (priority desc, order asc).
func insertOrdered(rules []*ruleState, st *ruleState) []*ruleState {
	i := sort.Search(len(rules), func(i int) bool {
		if rules[i].rule.Priority != st.rule.Priority {
			return rules[i].rule.Priority < st.rule.Priority
		}
		return rules[i].order > st.order
	})
	rules = append(rules, nil)
	copy(rules[i+1:], rules[i:])
	rules[i] = st
	return rules
}

func removeRule(rules []*ruleState, st *ruleState) []*ruleState {
	for i, r := range rules {
		if r == st {
			return append(rules[:i], rules[i+1:]...)
		}
	}
	return rules
}

// Remove deletes a rule by name. Removing an unknown rule is an error.
func (p *Pool) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.rules[name]
	if !ok {
		return fmt.Errorf("core: remove of unknown rule %q", name)
	}
	delete(p.rules, name)
	p.byEvent[st.rule.On] = removeRule(p.byEvent[st.rule.On], st)
	p.publishLocked()
	return nil
}

// RemoveByTag deletes every rule carrying tag and returns how many were
// removed. This is the regeneration primitive: the generator tags each
// rule with its originating role, so a policy change for one role
// removes and re-adds only that role's rules.
func (p *Pool) RemoveByTag(tag string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for name, st := range p.rules {
		if st.rule.HasTag(tag) {
			delete(p.rules, name)
			p.byEvent[st.rule.On] = removeRule(p.byEvent[st.rule.On], st)
			n++
		}
	}
	if n > 0 {
		p.publishLocked()
	}
	return n
}

// SetEnabled enables or disables a rule in place (the paper's active
// security disables critical rules under attack).
func (p *Pool) SetEnabled(name string, enabled bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.rules[name]
	if !ok {
		return fmt.Errorf("core: enable/disable of unknown rule %q", name)
	}
	st.enabled = enabled
	p.publishLocked()
	return nil
}

// SetEnabledByTag enables or disables every rule carrying tag; returns
// the number of rules affected.
func (p *Pool) SetEnabledByTag(tag string, enabled bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, st := range p.rules {
		if st.rule.HasTag(tag) {
			st.enabled = enabled
			n++
		}
	}
	if n > 0 {
		p.publishLocked()
	}
	return n
}

// Len reports the number of rules in the pool.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rules)
}

// Get returns a snapshot of one rule.
func (p *Pool) Get(name string) (RuleInfo, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.rules[name]
	if !ok {
		return RuleInfo{}, false
	}
	return st.info(), true
}

// Snapshot returns read-only info for every rule, sorted by name.
func (p *Pool) Snapshot() []RuleInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]RuleInfo, 0, len(p.rules))
	for _, st := range p.rules {
		out = append(out, st.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (st *ruleState) info() RuleInfo {
	r := st.rule
	conds := make([]string, len(r.When))
	for i, c := range r.When {
		conds[i] = c.Desc
	}
	then := make([]string, len(r.Then))
	for i, a := range r.Then {
		then[i] = a.Desc
	}
	els := make([]string, len(r.Else))
	for i, a := range r.Else {
		els[i] = a.Desc
	}
	return RuleInfo{
		Name: r.Name, On: r.On, Class: r.Class, Granularity: r.Granularity,
		Scope: r.Scope, Priority: r.Priority, Tags: append([]string(nil), r.Tags...),
		Enabled: st.enabled,
		Fired:   st.fired.Load(), Allowed: st.allowed.Load(), Denied: st.denied.Load(),
		EvalNanos:  st.evalNanos.Load(),
		Conditions: conds, Then: then, Else: els,
	}
}

// fire runs every enabled rule bound to evt against occurrence o, in
// priority order. Runs on a detector lane; the published fire view
// makes it one atomic load with no locking and no per-firing
// allocation.
func (p *Pool) fire(evt string, o *event.Occurrence) {
	v := p.view.Load()
	t := v.byEvent[evt]
	if t == nil {
		return
	}
	if len(v.listeners) == 0 {
		for _, st := range t.states {
			p.runRule(st, o)
		}
		return
	}
	for _, st := range t.states {
		out := p.runRule(st, o)
		for _, l := range v.listeners {
			l(out)
		}
	}
}

// runRule evaluates one rule against an occurrence. When the
// occurrence carries a decision trace, every condition evaluation, the
// branch verdict and every action record a step into it (the nil check
// is the entire untraced path).
func (p *Pool) runRule(st *ruleState, o *event.Occurrence) Outcome {
	r := &st.rule
	tr := o.Trace()
	out := Outcome{Rule: r.Name, Event: o, Allowed: true, At: p.det.Clock().Now()}
	for _, c := range r.When {
		ok, err := c.Eval(o)
		if tr != nil {
			detail := c.Desc
			if err != nil {
				detail += ": " + err.Error()
			}
			tr.Add(out.At, o.Lane(), obs.StepCondition, o.Event, r.Name, detail, ok && err == nil)
		}
		if err != nil {
			out.Allowed = false
			out.FailedCond = c.Desc
			out.CondErr = err
			break
		}
		if !ok {
			out.Allowed = false
			out.FailedCond = c.Desc
			break
		}
	}
	branch, branchName := r.Then, "then"
	if !out.Allowed {
		branch, branchName = r.Else, "else"
	}
	if tr != nil {
		tr.Add(out.At, o.Lane(), obs.StepRule, o.Event, r.Name, branchName, out.Allowed)
	}
	for _, a := range branch {
		err := a.Run(o)
		if tr != nil {
			detail := a.Desc
			if err != nil {
				detail += ": " + err.Error()
			}
			tr.Add(out.At, o.Lane(), obs.StepAction, o.Event, r.Name, detail, err == nil)
		}
		if err != nil {
			out.ActionErr = err
			break
		}
	}

	st.fired.Add(1)
	if out.Allowed {
		st.allowed.Add(1)
	} else {
		st.denied.Add(1)
	}
	if p.timed.Load() {
		// out.At was stamped from the same clock before the conditions
		// ran, so the delta is this firing's full evaluation window.
		st.evalNanos.Add(uint64(p.det.Clock().Now().Sub(out.At)))
	}
	return out
}
