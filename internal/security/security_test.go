package security

import (
	"testing"
	"time"

	"activerbac/internal/clock"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newMonitor() (*Monitor, *clock.Sim) {
	sim := clock.NewSim(t0)
	return NewMonitor(sim), sim
}

func TestThresholdValidation(t *testing.T) {
	m, _ := newMonitor()
	if err := m.AddThreshold("", 5, time.Minute, "alert"); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := m.AddThreshold("t", 0, time.Minute, "alert"); err == nil {
		t.Fatal("zero count accepted")
	}
	if err := m.AddThreshold("t", 5, 0, "alert"); err == nil {
		t.Fatal("zero window accepted")
	}
	if err := m.AddThreshold("t", 5, time.Minute, "alert"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddThreshold("t", 5, time.Minute, "alert"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if got := m.Thresholds(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Thresholds = %v", got)
	}
	if err := m.RemoveThreshold("t"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveThreshold("t"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestFiresExactlyAtThreshold(t *testing.T) {
	m, _ := newMonitor()
	if err := m.AddThreshold("burst", 5, 10*time.Minute, "alert"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if fired := m.RecordDenial("mallory"); len(fired) != 0 {
			t.Fatalf("fired at %d denials, want 5", i+1)
		}
	}
	fired := m.RecordDenial("mallory")
	if len(fired) != 1 {
		t.Fatalf("fired = %v at threshold", fired)
	}
	a := fired[0]
	if a.Threshold != "burst" || a.Subject != "mallory" || a.Count != 5 || a.Action != "alert" {
		t.Fatalf("alert = %+v", a)
	}
	if m.Denials() != 5 {
		t.Fatalf("Denials = %d", m.Denials())
	}
}

func TestWindowSlides(t *testing.T) {
	m, sim := newMonitor()
	if err := m.AddThreshold("burst", 3, 10*time.Minute, "alert"); err != nil {
		t.Fatal(err)
	}
	m.RecordDenial("u")
	m.RecordDenial("u")
	// The first two age out of the window.
	sim.Advance(11 * time.Minute)
	if fired := m.RecordDenial("u"); len(fired) != 0 {
		t.Fatal("fired on stale window")
	}
	sim.Advance(time.Minute)
	m.RecordDenial("u")
	if fired := m.RecordDenial("u"); len(fired) != 1 {
		t.Fatal("did not fire on fresh burst")
	}
}

func TestBurstResetsAfterFire(t *testing.T) {
	m, _ := newMonitor()
	if err := m.AddThreshold("burst", 2, time.Hour, "alert"); err != nil {
		t.Fatal(err)
	}
	m.RecordDenial("u")
	if fired := m.RecordDenial("u"); len(fired) != 1 {
		t.Fatal("no fire")
	}
	// The window cleared: the next denial alone must not re-fire.
	if fired := m.RecordDenial("u"); len(fired) != 0 {
		t.Fatal("re-fired immediately after alert")
	}
	if fired := m.RecordDenial("u"); len(fired) != 1 {
		t.Fatal("second burst did not fire")
	}
	if got := len(m.Alerts()); got != 2 {
		t.Fatalf("Alerts = %d", got)
	}
}

func TestSubjectsIndependent(t *testing.T) {
	m, _ := newMonitor()
	if err := m.AddThreshold("burst", 3, time.Hour, "alert"); err != nil {
		t.Fatal(err)
	}
	m.RecordDenial("a")
	m.RecordDenial("a")
	m.RecordDenial("b")
	if fired := m.RecordDenial("b"); len(fired) != 0 {
		t.Fatal("subjects shared a window")
	}
	if fired := m.RecordDenial("a"); len(fired) != 1 {
		t.Fatal("subject a did not fire at 3")
	}
}

func TestMultipleThresholds(t *testing.T) {
	m, _ := newMonitor()
	if err := m.AddThreshold("fast", 2, time.Minute, "alert"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddThreshold("slow", 3, time.Hour, "lock-user"); err != nil {
		t.Fatal(err)
	}
	m.RecordDenial("u")
	fired := m.RecordDenial("u") // fast fires
	if len(fired) != 1 || fired[0].Threshold != "fast" {
		t.Fatalf("fired = %v", fired)
	}
	fired = m.RecordDenial("u") // slow fires at 3
	if len(fired) != 1 || fired[0].Threshold != "slow" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestResponsesAndListeners(t *testing.T) {
	m, _ := newMonitor()
	if err := m.AddThreshold("burst", 1, time.Minute, "lock-user"); err != nil {
		t.Fatal(err)
	}
	var locked []string
	m.RegisterResponse("lock-user", func(a Alert) { locked = append(locked, a.Subject) })
	var heard []Alert
	m.OnAlert(func(a Alert) { heard = append(heard, a) })
	m.RecordDenial("mallory")
	if len(locked) != 1 || locked[0] != "mallory" {
		t.Fatalf("locked = %v", locked)
	}
	if len(heard) != 1 {
		t.Fatalf("heard = %v", heard)
	}
	if heard[0].String() == "" {
		t.Fatal("empty Alert.String")
	}
}

func TestUnknownActionStillAlerts(t *testing.T) {
	m, _ := newMonitor()
	if err := m.AddThreshold("burst", 1, time.Minute, "page-oncall"); err != nil {
		t.Fatal(err)
	}
	if fired := m.RecordDenial("u"); len(fired) != 1 {
		t.Fatal("no alert for unregistered action")
	}
}
