// Package security implements the paper's *active security* (Section
// 4.3.3): monitoring the stream of authorization outcomes for malicious
// patterns — e.g. repeated denied access requests within a time window —
// and reacting without human intervention by alerting administrators,
// locking users, or disabling critical rules.
//
// The Monitor keeps one sliding window per (threshold, subject); when a
// subject accumulates Count denials within Window, the threshold fires:
// an Alert is recorded, every alert listener runs, and the response
// registered for the threshold's action executes. The window is cleared
// on firing so one burst produces one alert.
package security

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"activerbac/internal/clock"
)

// Alert is one fired threshold.
type Alert struct {
	// Threshold names the configuration that fired.
	Threshold string
	// Subject is the entity the denials accumulated against (a user).
	Subject string
	// Count is the number of denials in the window at firing time.
	Count int
	// Window is the configured window.
	Window time.Duration
	// Action is the configured response name.
	Action string
	// At is the firing instant.
	At time.Time
}

// String renders the alert for logs.
func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s: %d denials within %s -> %s",
		a.At.Format("15:04:05"), a.Subject, a.Count, a.Window, a.Action)
}

// Response executes a configured reaction (lock the user, disable
// rules, page the administrator). Responses run synchronously on the
// goroutine that recorded the crossing denial and must not block.
type Response func(Alert)

// threshold is one configured detection rule.
type threshold struct {
	name   string
	count  int
	window time.Duration
	action string
	// hits holds per-subject denial timestamps, pruned to the window.
	hits map[string][]time.Time
}

// Monitor watches denial streams against configured thresholds.
type Monitor struct {
	clk clock.Clock

	mu         sync.Mutex
	thresholds map[string]*threshold
	responses  map[string]Response
	listeners  []func(Alert)
	alerts     []Alert
	denials    uint64
}

// NewMonitor returns an empty monitor on clk.
func NewMonitor(clk clock.Clock) *Monitor {
	return &Monitor{
		clk:        clk,
		thresholds: make(map[string]*threshold),
		responses:  make(map[string]Response),
	}
}

// AddThreshold installs a detection rule: count denials within window
// trigger the named action.
func (m *Monitor) AddThreshold(name string, count int, window time.Duration, action string) error {
	if name == "" {
		return fmt.Errorf("security: threshold with empty name")
	}
	if count < 1 {
		return fmt.Errorf("security: threshold %q: count %d < 1", name, count)
	}
	if window <= 0 {
		return fmt.Errorf("security: threshold %q: window %v <= 0", name, window)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.thresholds[name]; dup {
		return fmt.Errorf("security: threshold %q already exists", name)
	}
	m.thresholds[name] = &threshold{
		name: name, count: count, window: window, action: action,
		hits: make(map[string][]time.Time),
	}
	return nil
}

// RemoveThreshold uninstalls a detection rule.
func (m *Monitor) RemoveThreshold(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.thresholds[name]; !ok {
		return fmt.Errorf("security: threshold %q not found", name)
	}
	delete(m.thresholds, name)
	return nil
}

// Thresholds lists installed threshold names, sorted.
func (m *Monitor) Thresholds() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.thresholds))
	for n := range m.thresholds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterResponse binds an action name (as used in AddThreshold) to a
// response. Unknown actions fire alerts but run no response.
func (m *Monitor) RegisterResponse(action string, r Response) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.responses[action] = r
}

// OnAlert registers a listener invoked for every fired alert.
func (m *Monitor) OnAlert(fn func(Alert)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// RecordDenial feeds one denied request by subject into every threshold
// and fires the ones whose windows fill. It returns the alerts fired
// (usually none).
func (m *Monitor) RecordDenial(subject string) []Alert {
	now := m.clk.Now()
	var fired []Alert

	m.mu.Lock()
	m.denials++
	for _, th := range m.thresholds {
		hits := append(th.hits[subject], now)
		// Prune to the window.
		cut := now.Add(-th.window)
		for len(hits) > 0 && hits[0].Before(cut) {
			hits = hits[1:]
		}
		if len(hits) >= th.count {
			fired = append(fired, Alert{
				Threshold: th.name, Subject: subject, Count: len(hits),
				Window: th.window, Action: th.action, At: now,
			})
			delete(th.hits, subject) // one alert per burst
		} else {
			th.hits[subject] = hits
		}
	}
	var listeners []func(Alert)
	responses := make([]Response, 0, len(fired))
	if len(fired) > 0 {
		m.alerts = append(m.alerts, fired...)
		listeners = append(listeners, m.listeners...)
		for _, a := range fired {
			responses = append(responses, m.responses[a.Action])
		}
	}
	m.mu.Unlock()

	for i, a := range fired {
		for _, l := range listeners {
			l(a)
		}
		if responses[i] != nil {
			responses[i](a)
		}
	}
	return fired
}

// Alerts returns a copy of every fired alert in firing order.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Denials reports the total denial count recorded.
func (m *Monitor) Denials() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.denials
}
