package baseline

import (
	"errors"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

const benchPolicy = `
policy "baseline-test"
role PM
role PC
role AC
role Clerk
hierarchy PM > PC > Clerk
ssd pa 2: PC, AC
permission PC: write po.dat
permission Clerk: read lobby.txt
user bob: PC
user alice: PM
cardinality PM 1
`

func newEngine(t *testing.T, src string) (*Engine, *clock.Sim) {
	t.Helper()
	spec, err := policy.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	sim := clock.NewSim(t0)
	e, err := New(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	return e, sim
}

func TestNewRejectsBadPolicy(t *testing.T) {
	spec, _ := policy.ParseString("role A\nrole A")
	if _, err := New(clock.NewSim(t0), spec); err == nil {
		t.Fatal("inconsistent policy accepted")
	}
}

func TestBaselineCoreFlow(t *testing.T) {
	e, _ := newEngine(t, benchPolicy)
	sid, err := e.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	if !e.CheckAccess(sid, rbac.Permission{Operation: "write", Object: "po.dat"}) {
		t.Fatal("direct permission denied")
	}
	if !e.CheckAccess(sid, rbac.Permission{Operation: "read", Object: "lobby.txt"}) {
		t.Fatal("inherited permission denied")
	}
	if e.CheckAccess(sid, rbac.Permission{Operation: "approve", Object: "po.dat"}) {
		t.Fatal("unauthorized op allowed")
	}
	if err := e.DropActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}
	if e.CheckAccess(sid, rbac.Permission{Operation: "write", Object: "po.dat"}) {
		t.Fatal("access after deactivation")
	}
	if err := e.DeleteSession(sid); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSSD(t *testing.T) {
	e, _ := newEngine(t, benchPolicy)
	if err := e.AssignUser("bob", "AC"); !errors.Is(err, rbac.ErrSSD) {
		t.Fatalf("SSD assignment: %v", err)
	}
	if err := e.Store().AddUser("x"); err != nil {
		t.Fatal(err)
	}
	if err := e.AssignUser("x", "AC"); err != nil {
		t.Fatal(err)
	}
	if err := e.DeassignUser("x", "AC"); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineCardinality(t *testing.T) {
	e, _ := newEngine(t, benchPolicy)
	if err := e.Store().AddUser("dave"); err != nil {
		t.Fatal(err)
	}
	if err := e.AssignUser("dave", "PM"); err != nil {
		t.Fatal(err)
	}
	s1, _ := e.CreateSession("alice")
	s2, _ := e.CreateSession("dave")
	if err := e.AddActiveRole("alice", s1, "PM"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddActiveRole("dave", s2, "PM"); !errors.Is(err, rbac.ErrCardinality) {
		t.Fatalf("cardinality: %v", err)
	}
}

func TestBaselineShift(t *testing.T) {
	e, sim := newEngine(t, `
policy "p"
role DayDoctor
user dana: DayDoctor
shift DayDoctor 10:00:00-17:00:00
`)
	sid, _ := e.CreateSession("dana")
	if err := e.AddActiveRole("dana", sid, "DayDoctor"); !errors.Is(err, rbac.ErrRoleDisabled) {
		t.Fatalf("outside shift: %v", err)
	}
	sim.AdvanceTo(time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
	if err := e.AddActiveRole("dana", sid, "DayDoctor"); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineDuration(t *testing.T) {
	e, sim := newEngine(t, `
policy "p"
role Nurse
user nick: Nurse
duration * Nurse 2h
`)
	sid, _ := e.CreateSession("nick")
	if err := e.AddActiveRole("nick", sid, "Nurse"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Hour)
	if !e.CheckAccess(sid, rbac.Permission{}) && !e.Store().CheckSessionRole(sid, "Nurse") {
		t.Fatal("expired early")
	}
	sim.Advance(time.Hour + time.Second)
	// The lazy sweep runs on the next request.
	e.CheckAccess(sid, rbac.Permission{Operation: "x", Object: "y"})
	if e.Store().CheckSessionRole(sid, "Nurse") {
		t.Fatal("duration not enforced")
	}
}

func TestBaselineRequireAndPrereq(t *testing.T) {
	e, _ := newEngine(t, `
policy "p"
role Manager
role JuniorEmp
role Developer
role Deployer
user mia: Manager
user jr: JuniorEmp
user dev: Developer, Deployer
require JuniorEmp needs-active Manager
prereq Deployer after Developer
`)
	jrSid, _ := e.CreateSession("jr")
	if err := e.AddActiveRole("jr", jrSid, "JuniorEmp"); !errors.Is(err, rbac.ErrDenied) {
		t.Fatalf("dependency: %v", err)
	}
	mSid, _ := e.CreateSession("mia")
	if err := e.AddActiveRole("mia", mSid, "Manager"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddActiveRole("jr", jrSid, "JuniorEmp"); err != nil {
		t.Fatal(err)
	}
	// Dropping the last Manager revokes JuniorEmp.
	if err := e.DropActiveRole("mia", mSid, "Manager"); err != nil {
		t.Fatal(err)
	}
	if e.Store().CheckSessionRole(jrSid, "JuniorEmp") {
		t.Fatal("dependent survived")
	}
	// Prerequisites.
	dSid, _ := e.CreateSession("dev")
	if err := e.AddActiveRole("dev", dSid, "Deployer"); !errors.Is(err, rbac.ErrDenied) {
		t.Fatalf("prereq: %v", err)
	}
	if err := e.AddActiveRole("dev", dSid, "Developer"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddActiveRole("dev", dSid, "Deployer"); err != nil {
		t.Fatal(err)
	}
}
