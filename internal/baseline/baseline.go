// Package baseline implements the comparison engine for the benchmarks:
// a direct-check RBAC enforcer in the style of conventional policy
// engines (Casbin, the systems of the paper's Section 6). It evaluates
// every request imperatively against the same rbac.Store — no events,
// no rules, no regeneration — so measuring it against the OWTE engine
// on identical workloads isolates the cost and the benefit of the
// active-rule layer.
//
// The two engines share request semantics through the Enforcer
// interface; the facade exposes the OWTE implementation, benchmarks run
// both.
package baseline

import (
	"fmt"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/policy"
	"activerbac/internal/rbac"
)

// Enforcer is the request surface shared by the baseline and the OWTE
// engine, mirroring the ANSI supporting system functions.
type Enforcer interface {
	CreateSession(user rbac.UserID) (rbac.SessionID, error)
	DeleteSession(sid rbac.SessionID) error
	AddActiveRole(user rbac.UserID, sid rbac.SessionID, role rbac.RoleID) error
	DropActiveRole(user rbac.UserID, sid rbac.SessionID, role rbac.RoleID) error
	CheckAccess(sid rbac.SessionID, p rbac.Permission) bool
	AssignUser(user rbac.UserID, role rbac.RoleID) error
	DeassignUser(user rbac.UserID, role rbac.RoleID) error
}

// Engine is the direct-check enforcer. It supports the same policy
// features as the generated rule pool — hierarchies, SSD/DSD,
// cardinality, role enabling, activation dependencies and prerequisites,
// per-activation durations — implemented as inline checks. Adaptation
// is the weak point by design: any policy change requires building a
// fresh Engine from the new spec (the "manual low-level edit" cost the
// paper contrasts against).
type Engine struct {
	store *rbac.Store
	clk   clock.Clock

	shifts   map[rbac.RoleID]clock.Window
	requires map[rbac.RoleID]rbac.RoleID
	prereqs  map[rbac.RoleID][]rbac.RoleID

	// durations for manual timer management (the baseline polls
	// expirations on request boundaries rather than using rules).
	durations map[durKey]time.Duration
	deadlines map[actKey]time.Time
}

type durKey struct {
	User rbac.UserID
	Role rbac.RoleID
}

type actKey struct {
	Session rbac.SessionID
	Role    rbac.RoleID
}

// New builds a baseline engine from a policy spec. The spec must be
// consistent (policy.Check).
func New(clk clock.Clock, spec *policy.Spec) (*Engine, error) {
	if issues := policy.Check(spec); policy.HasErrors(issues) {
		return nil, fmt.Errorf("baseline: policy has errors: %v", issues)
	}
	e := &Engine{
		store:     rbac.NewStore(),
		clk:       clk,
		durations: make(map[durKey]time.Duration),
		deadlines: make(map[actKey]time.Time),
	}
	st := e.store
	for _, r := range spec.Roles {
		if err := st.AddRole(rbac.RoleID(r)); err != nil {
			return nil, err
		}
	}
	for _, edge := range spec.Hierarchy {
		if err := st.AddInheritance(rbac.RoleID(edge.Senior), rbac.RoleID(edge.Junior)); err != nil {
			return nil, err
		}
	}
	for _, set := range spec.SSD {
		if err := st.CreateSSD(toSoDSet(set)); err != nil {
			return nil, err
		}
	}
	for _, set := range spec.DSD {
		if err := st.CreateDSD(toSoDSet(set)); err != nil {
			return nil, err
		}
	}
	for _, p := range spec.Permissions {
		if err := st.GrantPermission(rbac.RoleID(p.Role), rbac.Permission{Operation: p.Operation, Object: p.Object}); err != nil {
			return nil, err
		}
	}
	for _, c := range spec.Cardinalities {
		if err := st.SetRoleCardinality(rbac.RoleID(c.Role), c.N); err != nil {
			return nil, err
		}
	}
	for _, u := range spec.Users {
		if err := st.AddUser(rbac.UserID(u.Name)); err != nil {
			return nil, err
		}
		for _, r := range u.Roles {
			if err := st.AssignUser(rbac.UserID(u.Name), rbac.RoleID(r)); err != nil {
				return nil, err
			}
		}
	}
	for _, m := range spec.MaxRoles {
		if !st.UserExists(rbac.UserID(m.User)) {
			if err := st.AddUser(rbac.UserID(m.User)); err != nil {
				return nil, err
			}
		}
		if err := st.SetUserMaxActiveRoles(rbac.UserID(m.User), m.N); err != nil {
			return nil, err
		}
	}
	for _, d := range spec.Durations {
		u := rbac.UserID(d.User)
		if d.User == "*" {
			u = ""
		}
		e.durations[durKey{User: u, Role: rbac.RoleID(d.Role)}] = d.D
	}
	// Temporal shifts and CFD constraints are checked inline at request
	// time (no timers, no events) — the conventional-engine approach.
	e.shifts = make(map[rbac.RoleID]clock.Window, len(spec.Shifts))
	for _, sh := range spec.Shifts {
		e.shifts[rbac.RoleID(sh.Role)] = sh.Window()
	}
	e.requires = make(map[rbac.RoleID]rbac.RoleID, len(spec.Requires))
	for _, rq := range spec.Requires {
		e.requires[rbac.RoleID(rq.Dependent)] = rbac.RoleID(rq.Required)
	}
	e.prereqs = make(map[rbac.RoleID][]rbac.RoleID, len(spec.Prereqs))
	for _, p := range spec.Prereqs {
		e.prereqs[rbac.RoleID(p.Role)] = append(e.prereqs[rbac.RoleID(p.Role)], rbac.RoleID(p.Prereq))
	}
	return e, nil
}

func toSoDSet(s policy.SoD) rbac.SoDSet {
	roles := make([]rbac.RoleID, len(s.Roles))
	for i, r := range s.Roles {
		roles[i] = rbac.RoleID(r)
	}
	return rbac.SoDSet{Name: s.Name, Roles: roles, N: s.N}
}

// Store exposes the underlying state for assertions in tests.
func (e *Engine) Store() *rbac.Store { return e.store }

// expireDue drops activations whose duration elapsed; the baseline has
// no timers, so it sweeps lazily at request boundaries.
func (e *Engine) expireDue() {
	now := e.clk.Now()
	for k, deadline := range e.deadlines {
		if now.Before(deadline) {
			continue
		}
		delete(e.deadlines, k)
		if e.store.CheckSessionRole(k.Session, k.Role) {
			_ = e.store.RawDropSessionRole(k.Session, k.Role)
		}
	}
}

// roleInShift reports whether the role is inside its shift window (or
// has none).
func (e *Engine) roleInShift(r rbac.RoleID) bool {
	w, ok := e.shifts[r]
	if !ok {
		return true
	}
	return w.Contains(e.clk.Now())
}

// CreateSession implements Enforcer.
func (e *Engine) CreateSession(user rbac.UserID) (rbac.SessionID, error) {
	e.expireDue()
	return e.store.CreateSession(user)
}

// DeleteSession implements Enforcer.
func (e *Engine) DeleteSession(sid rbac.SessionID) error {
	e.expireDue()
	return e.store.DeleteSession(sid)
}

// AddActiveRole implements Enforcer with the full constraint pipeline.
func (e *Engine) AddActiveRole(user rbac.UserID, sid rbac.SessionID, role rbac.RoleID) error {
	e.expireDue()
	if !e.roleInShift(role) {
		return fmt.Errorf("baseline: role %q outside shift: %w", role, rbac.ErrRoleDisabled)
	}
	if required, ok := e.requires[role]; ok && e.store.RoleActiveCount(required) == 0 {
		return fmt.Errorf("baseline: role %q requires %q active: %w", role, required, rbac.ErrDenied)
	}
	for _, p := range e.prereqs[role] {
		if !e.store.CheckSessionRole(sid, p) {
			return fmt.Errorf("baseline: role %q requires prerequisite %q: %w", role, p, rbac.ErrDenied)
		}
	}
	if err := e.store.AddActiveRole(user, sid, role); err != nil {
		return err
	}
	if d, ok := e.durationFor(user, role); ok {
		e.deadlines[actKey{Session: sid, Role: role}] = e.clk.Now().Add(d)
	}
	return nil
}

func (e *Engine) durationFor(u rbac.UserID, r rbac.RoleID) (time.Duration, bool) {
	if d, ok := e.durations[durKey{User: u, Role: r}]; ok {
		return d, true
	}
	d, ok := e.durations[durKey{Role: r}]
	return d, ok
}

// DropActiveRole implements Enforcer.
func (e *Engine) DropActiveRole(user rbac.UserID, sid rbac.SessionID, role rbac.RoleID) error {
	e.expireDue()
	delete(e.deadlines, actKey{Session: sid, Role: role})
	if err := e.store.DropActiveRole(user, sid, role); err != nil {
		return err
	}
	// Rule 9 half: revoke dependents when the last activation ends.
	if e.store.RoleActiveCount(role) == 0 {
		for dep, req := range e.requires {
			if req != role {
				continue
			}
			for _, depSid := range e.store.SessionsWithRole(dep) {
				_ = e.store.RawDropSessionRole(depSid, dep)
			}
		}
	}
	return nil
}

// CheckAccess implements Enforcer.
func (e *Engine) CheckAccess(sid rbac.SessionID, p rbac.Permission) bool {
	e.expireDue()
	return e.store.CheckAccess(sid, p)
}

// AssignUser implements Enforcer (SSD enforced by the store).
func (e *Engine) AssignUser(user rbac.UserID, role rbac.RoleID) error {
	return e.store.AssignUser(user, role)
}

// DeassignUser implements Enforcer.
func (e *Engine) DeassignUser(user rbac.UserID, role rbac.RoleID) error {
	return e.store.DeassignUser(user, role)
}
