package event

import (
	"testing"
	"time"
)

// sec returns t0 + n seconds; shorthand used throughout the operator
// tests so timestamps are readable.
func sec(n int) time.Time { return t0.Add(time.Duration(n) * time.Second) }

func defineBinary(t *testing.T, kind OpKind, mode Mode) (*Detector, *[]*Occurrence, func(int, string)) {
	t.Helper()
	d, sim := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	d.MustPrimitive("x") // noise event, never part of the composite
	expr := OpExpr{Kind: kind, Mode: mode, Args: []Expr{NameExpr("a"), NameExpr("b")}}
	d.MustDefine("c", expr)
	got := collect(t, d, "c")
	raise := func(atSec int, name string) {
		raiseAt(d, sim, sec(atSec), name, Params{"at": atSec})
	}
	return d, got, raise
}

// --------------------------------------------------------------------------
// SEQ

func TestSeqRecent(t *testing.T) {
	_, got, raise := defineBinary(t, OpSeq, Recent)
	raise(1, "a")
	raise(2, "a") // replaces initiator
	raise(3, "b") // detects with a@2
	raise(4, "b") // recent initiator persists -> detects again with a@2
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
	if (*got)[0].Constituents[0].Params["at"] != 2 {
		t.Fatalf("first detection paired with %v, want a@2", (*got)[0].Constituents[0])
	}
	if (*got)[1].Constituents[0].Params["at"] != 2 {
		t.Fatalf("second detection paired with %v, want a@2 (recent initiator persists)", (*got)[1].Constituents[0])
	}
}

func TestSeqRequiresOrder(t *testing.T) {
	_, got, raise := defineBinary(t, OpSeq, Recent)
	raise(5, "b") // terminator with no initiator: nothing
	raise(6, "a")
	if len(*got) != 0 {
		t.Fatalf("detections = %d, want 0", len(*got))
	}
	raise(7, "b")
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	o := (*got)[0]
	if !o.Start.Equal(sec(6)) || !o.End.Equal(sec(7)) {
		t.Fatalf("interval [%v,%v], want [a.start, b.end]", o.Start, o.End)
	}
}

func TestSeqSimultaneousNotDetected(t *testing.T) {
	// SnoopIB requires end(E1) < start(E2): equal timestamps don't pair.
	_, got, raise := defineBinary(t, OpSeq, Recent)
	raise(1, "a")
	raise(1, "b")
	if len(*got) != 0 {
		t.Fatalf("detections = %d, want 0 for simultaneous events", len(*got))
	}
}

func TestSeqChronicle(t *testing.T) {
	_, got, raise := defineBinary(t, OpSeq, Chronicle)
	raise(1, "a")
	raise(2, "a")
	raise(3, "b") // pairs oldest a@1, consumes both
	raise(4, "b") // pairs a@2
	raise(5, "b") // nothing left
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
	if (*got)[0].Constituents[0].Params["at"] != 1 || (*got)[1].Constituents[0].Params["at"] != 2 {
		t.Fatalf("chronicle pairing wrong: %v", *got)
	}
}

func TestSeqContinuous(t *testing.T) {
	_, got, raise := defineBinary(t, OpSeq, Continuous)
	raise(1, "a")
	raise(2, "a")
	raise(3, "b") // detects with both initiators, consumes both
	raise(4, "b") // nothing left
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
	ats := []any{(*got)[0].Constituents[0].Params["at"], (*got)[1].Constituents[0].Params["at"]}
	if ats[0] != 1 || ats[1] != 2 {
		t.Fatalf("continuous pairing order %v", ats)
	}
}

func TestSeqCumulative(t *testing.T) {
	_, got, raise := defineBinary(t, OpSeq, Cumulative)
	raise(1, "a")
	raise(2, "a")
	raise(3, "b")
	raise(4, "b")
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1 (single cumulative)", len(*got))
	}
	o := (*got)[0]
	if len(o.Constituents) != 3 {
		t.Fatalf("constituents = %d, want 3 (a,a,b)", len(o.Constituents))
	}
	if !o.Start.Equal(sec(1)) || !o.End.Equal(sec(3)) {
		t.Fatalf("cumulative interval [%v,%v]", o.Start, o.End)
	}
}

func TestSeqSameChild(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("e")
	d.MustDefine("twice", OpExpr{Kind: OpSeq, Mode: Chronicle, Args: []Expr{NameExpr("e"), NameExpr("e")}})
	got := collect(t, d, "twice")
	for i := 1; i <= 4; i++ {
		raiseAt(d, sim, sec(i), "e", Params{"at": i})
	}
	// Chronicle SEQ(E,E) pairs (1,2) and (3,4).
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
	if (*got)[0].Constituents[0].Params["at"] != 1 || (*got)[0].Constituents[1].Params["at"] != 2 {
		t.Fatalf("pairing %v", (*got)[0])
	}
	if (*got)[1].Constituents[0].Params["at"] != 3 || (*got)[1].Constituents[1].Params["at"] != 4 {
		t.Fatalf("pairing %v", (*got)[1])
	}
}

func TestSeqParamsMerge(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	d.MustDefine("c", Seq(NameExpr("a"), NameExpr("b")))
	got := collect(t, d, "c")
	raiseAt(d, sim, sec(1), "a", Params{"user": "bob", "role": "r1"})
	raiseAt(d, sim, sec(2), "b", Params{"role": "r2"})
	if len(*got) != 1 {
		t.Fatalf("detections = %d", len(*got))
	}
	p := (*got)[0].Params
	if p["user"] != "bob" || p["role"] != "r2" {
		t.Fatalf("merged params %v (terminator should win conflicts)", p)
	}
}

// --------------------------------------------------------------------------
// AND

func TestAndEitherOrder(t *testing.T) {
	_, got, raise := defineBinary(t, OpAnd, Chronicle)
	raise(1, "b")
	raise(2, "a") // detects (b@1, a@2)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1 (AND must accept either order)", len(*got))
	}
	o := (*got)[0]
	if !o.Start.Equal(sec(1)) || !o.End.Equal(sec(2)) {
		t.Fatalf("interval [%v,%v]", o.Start, o.End)
	}
}

func TestAndRecent(t *testing.T) {
	_, got, raise := defineBinary(t, OpAnd, Recent)
	raise(1, "a")
	raise(2, "b") // detect (a1,b2); a1 persists
	raise(3, "b") // detect (a1,b3)
	raise(4, "a") // detect with latest stored b? b was never stored (consumed as terminator)
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
}

func TestAndChronicleFIFO(t *testing.T) {
	_, got, raise := defineBinary(t, OpAnd, Chronicle)
	raise(1, "a")
	raise(2, "a")
	raise(3, "b") // pairs a@1
	raise(4, "b") // pairs a@2
	raise(5, "b") // stored (no a left)
	raise(6, "a") // pairs b@5
	if len(*got) != 3 {
		t.Fatalf("detections = %d, want 3", len(*got))
	}
	if (*got)[0].Constituents[0].Params["at"] != 1 || (*got)[1].Constituents[0].Params["at"] != 2 {
		t.Fatalf("chronicle FIFO broken: %v", *got)
	}
}

func TestAndContinuous(t *testing.T) {
	_, got, raise := defineBinary(t, OpAnd, Continuous)
	raise(1, "a")
	raise(2, "a")
	raise(3, "b") // two detections, consumes both a's
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
	raise(4, "b") // stored
	raise(5, "b") // stored
	raise(6, "a") // two detections, consumes both b's
	if len(*got) != 4 {
		t.Fatalf("detections = %d, want 4", len(*got))
	}
}

func TestAndCumulative(t *testing.T) {
	_, got, raise := defineBinary(t, OpAnd, Cumulative)
	raise(1, "a")
	raise(2, "a")
	raise(3, "b")
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if len((*got)[0].Constituents) != 3 {
		t.Fatalf("constituents = %d, want 3", len((*got)[0].Constituents))
	}
}

func TestAndSameChild(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("e")
	d.MustDefine("pair", OpExpr{Kind: OpAnd, Mode: Chronicle, Args: []Expr{NameExpr("e"), NameExpr("e")}})
	got := collect(t, d, "pair")
	for i := 1; i <= 5; i++ {
		raiseAt(d, sim, sec(i), "e", nil)
	}
	// Pairs (1,2), (3,4); 5 pending.
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
}

// --------------------------------------------------------------------------
// OR

func TestOrDetectsEach(t *testing.T) {
	_, got, raise := defineBinary(t, OpOr, Recent)
	raise(1, "a")
	raise(2, "b")
	raise(3, "a")
	raise(4, "x") // not part of the OR
	if len(*got) != 3 {
		t.Fatalf("detections = %d, want 3", len(*got))
	}
	for i, want := range []int{1, 2, 3} {
		if (*got)[i].Params["at"] != want {
			t.Fatalf("OR occurrence %d = %v", i, (*got)[i])
		}
	}
}

func TestOrMultiWay(t *testing.T) {
	d, sim := newTestDetector()
	for _, n := range []string{"e1", "e2", "e3"} {
		d.MustPrimitive(n)
	}
	d.MustDefine("any3", Or(NameExpr("e1"), NameExpr("e2"), NameExpr("e3")))
	got := collect(t, d, "any3")
	raiseAt(d, sim, sec(1), "e3", nil)
	raiseAt(d, sim, sec(2), "e1", nil)
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
}

// --------------------------------------------------------------------------
// NOT

func defineNot(t *testing.T, mode Mode) (*[]*Occurrence, func(int, string)) {
	t.Helper()
	d, sim := newTestDetector()
	for _, n := range []string{"a", "b", "c"} {
		d.MustPrimitive(n)
	}
	d.MustDefine("n", OpExpr{Kind: OpNot, Mode: mode, Args: []Expr{NameExpr("a"), NameExpr("b"), NameExpr("c")}})
	got := collect(t, d, "n")
	return got, func(atSec int, name string) { raiseAt(d, sim, sec(atSec), name, Params{"at": atSec}) }
}

func TestNotDetectsWithoutMiddle(t *testing.T) {
	got, raise := defineNot(t, Recent)
	raise(1, "a")
	raise(2, "c")
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
}

func TestNotSuppressedByMiddle(t *testing.T) {
	got, raise := defineNot(t, Recent)
	raise(1, "a")
	raise(2, "b") // invalidates a@1
	raise(3, "c")
	if len(*got) != 0 {
		t.Fatalf("detections = %d, want 0 (middle occurred)", len(*got))
	}
	raise(4, "a")
	raise(5, "c")
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1 after fresh initiator", len(*got))
	}
}

func TestNotChronicleConsumes(t *testing.T) {
	got, raise := defineNot(t, Chronicle)
	raise(1, "a")
	raise(2, "a")
	raise(3, "c") // pairs a@1
	raise(4, "c") // pairs a@2
	raise(5, "c") // nothing
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
}

// --------------------------------------------------------------------------
// ANY

func TestAnyThreshold(t *testing.T) {
	d, sim := newTestDetector()
	for _, n := range []string{"e1", "e2", "e3"} {
		d.MustPrimitive(n)
	}
	d.MustDefine("two", Any(2, NameExpr("e1"), NameExpr("e2"), NameExpr("e3")))
	got := collect(t, d, "two")
	raiseAt(d, sim, sec(1), "e1", nil)
	raiseAt(d, sim, sec(2), "e1", nil) // same event: still 1 distinct
	if len(*got) != 0 {
		t.Fatalf("premature detection with 1 distinct event")
	}
	raiseAt(d, sim, sec(3), "e3", nil) // 2 distinct -> detect
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if len((*got)[0].Constituents) != 2 {
		t.Fatalf("constituents = %d, want 2", len((*got)[0].Constituents))
	}
	// State was consumed: needs two more distinct events.
	raiseAt(d, sim, sec(4), "e2", nil)
	if len(*got) != 1 {
		t.Fatalf("ANY state not consumed on detection")
	}
	raiseAt(d, sim, sec(5), "e1", nil)
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
}

func TestAnyRecentKeepsLatest(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("e1")
	d.MustPrimitive("e2")
	d.MustDefine("both", OpExpr{Kind: OpAny, Mode: Recent, Count: 2, Args: []Expr{NameExpr("e1"), NameExpr("e2")}})
	got := collect(t, d, "both")
	raiseAt(d, sim, sec(1), "e1", Params{"at": 1})
	raiseAt(d, sim, sec(2), "e1", Params{"at": 2})
	raiseAt(d, sim, sec(3), "e2", Params{"at": 3})
	if len(*got) != 1 {
		t.Fatalf("detections = %d", len(*got))
	}
	if (*got)[0].Constituents[0].Params["at"] != 2 {
		t.Fatalf("recent ANY should keep latest e1: %v", (*got)[0].Constituents[0])
	}
}

func TestAnyChronicleKeepsFirst(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("e1")
	d.MustPrimitive("e2")
	d.MustDefine("both", OpExpr{Kind: OpAny, Mode: Chronicle, Count: 2, Args: []Expr{NameExpr("e1"), NameExpr("e2")}})
	got := collect(t, d, "both")
	raiseAt(d, sim, sec(1), "e1", Params{"at": 1})
	raiseAt(d, sim, sec(2), "e1", Params{"at": 2})
	raiseAt(d, sim, sec(3), "e2", Params{"at": 3})
	if (*got)[0].Constituents[0].Params["at"] != 1 {
		t.Fatalf("chronicle ANY should keep first e1: %v", (*got)[0].Constituents[0])
	}
}

// --------------------------------------------------------------------------
// Nesting

func TestNestedComposite(t *testing.T) {
	d, sim := newTestDetector()
	for _, n := range []string{"a", "b", "c"} {
		d.MustPrimitive(n)
	}
	// SEQ(OR(a,b), c): any of a/b then c.
	d.MustDefine("nested", Seq(Or(NameExpr("a"), NameExpr("b")), NameExpr("c")))
	got := collect(t, d, "nested")
	raiseAt(d, sim, sec(1), "b", nil)
	raiseAt(d, sim, sec(2), "c", nil)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	o := (*got)[0]
	if !o.Start.Equal(sec(1)) || !o.End.Equal(sec(2)) {
		t.Fatalf("nested interval [%v,%v]", o.Start, o.End)
	}
}

func TestCompositeFeedsComposite(t *testing.T) {
	d, sim := newTestDetector()
	for _, n := range []string{"a", "b", "c"} {
		d.MustPrimitive(n)
	}
	d.MustDefine("ab", Seq(NameExpr("a"), NameExpr("b")))
	d.MustDefine("abc", Seq(NameExpr("ab"), NameExpr("c")))
	got := collect(t, d, "abc")
	raiseAt(d, sim, sec(1), "a", nil)
	raiseAt(d, sim, sec(2), "b", nil)
	raiseAt(d, sim, sec(3), "c", nil)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if !(*got)[0].Start.Equal(sec(1)) || !(*got)[0].End.Equal(sec(3)) {
		t.Fatalf("interval [%v,%v]", (*got)[0].Start, (*got)[0].End)
	}
}
