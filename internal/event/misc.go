package event

// Disjunctive and counting Snoop operators: OR, NOT and ANY.

// orNode detects OR(e1, ..., en): any occurrence of any child detects.
// Consumption modes are irrelevant (nothing is buffered).
type orNode struct {
	baseNode
	children []node
}

func (n *orNode) kind() string { return "OR" }

func (n *orNode) process(_ node, occ *Occurrence, ex exec) {
	ex.d.deliver(ex, n, compose(n.nm, 0, occ))
}

// notNode detects NOT(a, b, c): an occurrence of a followed by an
// occurrence of c with no occurrence of b strictly in between. The a
// occurrence initiates, b invalidates pending initiators, c terminates
// (pairing per the consumption mode, as in SEQ).
type notNode struct {
	baseNode
	a, b, c node
	mode    Mode
	inits   []*Occurrence
}

func (n *notNode) kind() string { return "NOT" }

func (n *notNode) process(src node, occ *Occurrence, ex exec) {
	// Role priority for shared children: invalidator, then terminator,
	// then initiator. A single occurrence may act in several roles when
	// children alias (e.g. NOT(A, B, A)).
	if src == n.b {
		n.invalidate(occ)
		if n.b != n.c && n.b != n.a {
			return
		}
	}
	if src == n.c {
		n.terminate(occ, ex)
		if n.c != n.a {
			return
		}
	}
	if src == n.a {
		if n.mode == Recent {
			n.inits = n.inits[:0]
		}
		n.inits = append(n.inits, occ)
	}
}

// invalidate drops initiators whose window [init.End, ...] now contains a
// b occurrence.
func (n *notNode) invalidate(b *Occurrence) {
	keep := n.inits[:0]
	for _, init := range n.inits {
		if !init.End.Before(b.Start) {
			keep = append(keep, init)
		}
	}
	n.inits = keep
}

func (n *notNode) terminate(occ *Occurrence, ex exec) {
	eligible := func(init *Occurrence) bool { return init.End.Before(occ.Start) }
	switch n.mode {
	case Recent:
		if len(n.inits) > 0 && eligible(n.inits[len(n.inits)-1]) {
			ex.d.deliver(ex, n, compose(n.nm, 0, n.inits[len(n.inits)-1], occ))
		}
	case Chronicle:
		for i, init := range n.inits {
			if eligible(init) {
				if i == 0 {
					n.inits = n.inits[1:] // FIFO head: O(1) pop
				} else {
					n.inits = append(n.inits[:i], n.inits[i+1:]...)
				}
				ex.d.deliver(ex, n, compose(n.nm, 0, init, occ))
				return
			}
		}
	case Continuous:
		var keep, matched []*Occurrence
		for _, init := range n.inits {
			if eligible(init) {
				matched = append(matched, init)
			} else {
				keep = append(keep, init)
			}
		}
		n.inits = keep
		for _, init := range matched {
			ex.d.deliver(ex, n, compose(n.nm, 0, init, occ))
		}
	case Cumulative:
		var keep, matched []*Occurrence
		for _, init := range n.inits {
			if eligible(init) {
				matched = append(matched, init)
			} else {
				keep = append(keep, init)
			}
		}
		if len(matched) > 0 {
			n.inits = keep
			ex.d.deliver(ex, n, compose(n.nm, 0, append(matched, occ)...))
		}
	}
}

// anyNode detects ANY(m, e1, ..., en): m distinct events out of the n
// children have occurred. On detection the collected occurrences are
// consumed. In Recent mode a repeat occurrence of an already-collected
// child replaces the stored one; in the other modes the first stays.
type anyNode struct {
	baseNode
	m        int
	modeVal  Mode
	children []node
	got      map[node]*Occurrence
	order    []node
}

func (n *anyNode) kind() string { return "ANY" }

func (n *anyNode) process(src node, occ *Occurrence, ex exec) {
	if n.got == nil {
		n.got = make(map[node]*Occurrence, len(n.children))
	}
	if _, seen := n.got[src]; seen {
		if n.mode() == Recent {
			n.got[src] = occ
		}
	} else {
		n.got[src] = occ
		n.order = append(n.order, src)
	}
	if len(n.got) >= n.m {
		parts := make([]*Occurrence, 0, len(n.order))
		for _, c := range n.order {
			parts = append(parts, n.got[c])
		}
		n.got = nil
		n.order = nil
		ex.d.deliver(ex, n, compose(n.nm, 0, parts...))
	}
}

func (n *anyNode) mode() Mode { return n.modeVal }
