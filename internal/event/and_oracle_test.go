package event

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"activerbac/internal/clock"
)

// Oracle property: Chronicle AND(a, b) against a two-queue reference —
// each arrival pairs FIFO with the oldest pending occurrence of the
// other side, else queues on its own side.
func TestAndChronicleOracle(t *testing.T) {
	f := func(seed int64) bool {
		sim := clock.NewSim(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
		det := New(sim)
		det.MustPrimitive("a")
		det.MustPrimitive("b")
		det.MustDefine("x", WithMode(And(NameExpr("a"), NameExpr("b")), Chronicle))
		var got [][2]int
		if _, err := det.Subscribe("x", func(o *Occurrence) {
			i0, _ := o.Constituents[0].Params["i"].(int)
			i1, _ := o.Constituents[1].Params["i"].(int)
			got = append(got, [2]int{i0, i1})
		}); err != nil {
			t.Fatal(err)
		}

		var qa, qb []int
		var want [][2]int
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			sim.Advance(time.Second)
			if rng.Intn(2) == 0 {
				det.MustRaise("a", Params{"i": i})
				if len(qb) > 0 {
					want = append(want, [2]int{qb[0], i})
					qb = qb[1:]
				} else {
					qa = append(qa, i)
				}
			} else {
				det.MustRaise("b", Params{"i": i})
				if len(qa) > 0 {
					want = append(want, [2]int{qa[0], i})
					qa = qa[1:]
				} else {
					qb = append(qb, i)
				}
			}
		}
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: composite occurrence intervals always cover their
// constituents — Start is the minimum constituent Start, End the
// maximum End — across a random stream and every operator in the graph.
func TestIntervalCoverageProperty(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		mode := Mode(int(modeRaw) % 4)
		sim := clock.NewSim(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
		det := New(sim)
		for _, n := range []string{"a", "b", "c"} {
			det.MustPrimitive(n)
		}
		det.MustDefine("seq", WithMode(Seq(NameExpr("a"), NameExpr("b")), mode))
		det.MustDefine("and", WithMode(And(NameExpr("b"), NameExpr("c")), mode))
		det.MustDefine("ap", WithMode(Aperiodic(NameExpr("a"), NameExpr("b"), NameExpr("c")), mode))
		ok := true
		check := func(o *Occurrence) {
			if len(o.Constituents) == 0 {
				return
			}
			lo, hi := o.Constituents[0].Start, o.Constituents[0].End
			for _, k := range o.Constituents {
				if k.Start.Before(lo) {
					lo = k.Start
				}
				if k.End.After(hi) {
					hi = k.End
				}
			}
			if !o.Start.Equal(lo) || !o.End.Equal(hi) {
				ok = false
			}
		}
		for _, name := range []string{"seq", "and", "ap"} {
			if _, err := det.Subscribe(name, check); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c"}
		for i := 0; i < 200; i++ {
			sim.Advance(time.Second)
			det.MustRaise(names[rng.Intn(3)], nil)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
