package event

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"activerbac/internal/clock"
	"activerbac/internal/obs"
)

// Instruments carries the detector's optional metric hooks. A nil
// *Instruments on the detector disables them all behind one pointer
// check; individual fields may also be nil.
type Instruments struct {
	// LaneWait observes the queued time, in seconds, of each drained
	// work item, labelled by lane name.
	LaneWait func(lane string, seconds float64)
	// OperatorMatch counts composite detections by operator kind.
	OperatorMatch func(operator string)
}

// Handler is invoked for every detected occurrence of a subscribed event.
// Handlers run on a detector lane and must not block; they may call
// Raise, RaiseFrom, Defer, Define, or Subscribe (cascaded events are
// queued and processed after the current propagation completes).
type Handler func(*Occurrence)

// node is a vertex in the event graph. Node *state* (pending occurrence
// buffers) is only touched by the global lane's drain; node *structure*
// (parent lists) is guarded by the detector's structure lock.
type node interface {
	name() string
	// kind names the node's operator for traces and metrics
	// ("primitive", "SEQ", "AND", ...).
	kind() string
	// process handles an occurrence delivered from src (one of the
	// node's declared children). Runs on the global lane only.
	process(src node, occ *Occurrence, ex exec)
	// addParent subscribes an operator node to this node's detections.
	// Caller holds the detector's structure lock.
	addParent(p node)
	// parentsOf snapshots the parent list. Caller holds the structure
	// lock (read side suffices).
	parentsOf() []node
}

// baseNode carries the name and parent list shared by all node kinds.
type baseNode struct {
	nm      string
	parents []node
}

func (b *baseNode) name() string { return b.nm }

func (b *baseNode) addParent(p node) {
	for _, q := range b.parents {
		if q == p {
			return
		}
	}
	b.parents = append(b.parents, p)
}

func (b *baseNode) parentsOf() []node {
	out := make([]node, len(b.parents))
	copy(out, b.parents)
	return out
}

// primitiveNode is a leaf raised directly via Detector.Raise.
type primitiveNode struct {
	baseNode
}

func (n *primitiveNode) kind() string { return "primitive" }

func (n *primitiveNode) process(node, *Occurrence, exec) {
	// Primitives have no children; nothing delivers to them.
}

// subEntry is one subscription. scoped marks handlers whose state is
// partitioned by ScopeKey (rule-pool subscriptions); an event with any
// unscoped subscriber always runs on the global lane.
type subEntry struct {
	h      Handler
	scoped bool
}

// graphView is the immutable read-side projection of the event graph.
// Every structural mutation (define, subscribe, advisor install)
// rebuilds one under smu and publishes it through an atomic pointer, so
// the raise/deliver hot path — handler fanout, parent propagation, lane
// routing — is a single pointer load with zero lock traffic and zero
// per-delivery allocation. Fields must never be written after Store;
// the builder is publishLocked.
//
// rbacvet:snapshot
type graphView struct {
	nodes    map[string]node
	handlers map[string][]Handler // per event, subscription order
	parents  map[string][]node    // per event; absent = no parents
	info     map[string]eventInfo
	advisor  func(eventName string) bool
}

// eventInfo carries the per-event facts lane routing and the decision
// fast path need: the primitive node (nil for composites), whether the
// node feeds composite operators, whether every subscriber is
// scope-marked, and — when the event has exactly one subscriber and it
// is scope-marked — that subscription's id (else -1).
type eventInfo struct {
	prim          *primitiveNode
	hasParents    bool
	allScoped     bool
	soleScopedSub int
}

// Detector owns an event graph and propagates occurrences through drain
// lanes. In the default single-lane configuration every occurrence is
// serialized through one global lane — the single event-detector thread
// of the paper's Sentinel+ system, and the mode the deterministic tests
// pin. With WithLanes(n>1) the detector adds n scope lanes: an
// occurrence carrying a ScopeKey whose event is entirely scope-local
// (no composite parents, every subscriber scope-marked, and the scope
// advisor — fed by rule granularity — approves) runs on the lane its
// key hashes to, concurrently with other scopes, while everything else
// (composite operators, SoD oracles, cardinality counters, security
// monitors, temporal ticks) keeps global-lane ordering.
type Detector struct {
	clk clock.Clock

	// smu guards graph structure: the name maps, subscriber maps, node
	// parent lists, and the scope advisor. It is never held while user
	// code runs.
	smu     sync.RWMutex
	nodes   map[string]node
	subs    map[string]map[int]subEntry
	anon    int
	subSeq  int
	advisor func(eventName string) bool

	// view is the published read-side snapshot of the structure above;
	// never nil after New. Readers load it once and never take smu.
	view atomic.Pointer[graphView]
	// chook, when set, runs after every view publication (the decision
	// fast path invalidates its cache through it).
	chook func()
	// occPoolOK gates occurrence recycling. The engine enables it only
	// when every subscriber is known not to retain occurrences past the
	// callback (see SetOccurrencePooling).
	occPoolOK atomic.Bool

	// global serializes cross-scope propagation; scoped (empty in
	// single-lane mode) partitions scope-local propagation by key hash.
	global *lane
	scoped []*lane
	lanes  int // configured lane count (1 = classic single drain)

	seq      atomic.Uint64
	raised   atomic.Uint64
	detected atomic.Uint64
	maxCade  int // cascade safety bound per drain

	// ins holds the optional metric hooks; nil (the default) is the
	// zero-overhead path. Set before traffic starts (SetInstruments).
	ins *Instruments
}

// Option configures a Detector.
type Option func(*Detector)

// WithLanes sets the lane count. n <= 1 (the default) selects the
// classic fully-serialized single drain; n > 1 adds n scope lanes next
// to the global lane.
func WithLanes(n int) Option {
	return func(d *Detector) {
		if n < 1 {
			n = 1
		}
		d.lanes = n
	}
}

// New returns a Detector whose temporal operators schedule on clk.
func New(clk clock.Clock, opts ...Option) *Detector {
	d := &Detector{
		clk:     clk,
		nodes:   make(map[string]node),
		subs:    make(map[string]map[int]subEntry),
		lanes:   1,
		maxCade: 1 << 20,
	}
	for _, o := range opts {
		o(d)
	}
	d.global = newLane(d, "global")
	if d.lanes > 1 {
		d.scoped = make([]*lane, d.lanes)
		for i := range d.scoped {
			d.scoped[i] = newLane(d, fmt.Sprintf("scope-%d", i))
		}
	}
	d.publishLocked()
	return d
}

// publishLocked rebuilds the read-side graphView from the canonical
// structure and publishes it. Caller holds smu (write side); New calls
// it before the detector escapes.
func (d *Detector) publishLocked() {
	v := &graphView{
		nodes:    make(map[string]node, len(d.nodes)),
		handlers: make(map[string][]Handler, len(d.subs)),
		parents:  make(map[string][]node, len(d.nodes)),
		info:     make(map[string]eventInfo, len(d.nodes)),
		advisor:  d.advisor,
	}
	for name, n := range d.nodes {
		v.nodes[name] = n
		ps := n.parentsOf()
		if len(ps) > 0 {
			v.parents[name] = ps
		}
		inf := eventInfo{hasParents: len(ps) > 0, allScoped: true, soleScopedSub: -1}
		inf.prim, _ = n.(*primitiveNode)
		subs := d.subs[name]
		ids := make([]int, 0, len(subs))
		for id, e := range subs {
			ids = append(ids, id)
			if !e.scoped {
				inf.allScoped = false
			}
		}
		sort.Ints(ids)
		if len(ids) > 0 {
			hs := make([]Handler, len(ids))
			for i, id := range ids {
				hs[i] = subs[id].h
			}
			v.handlers[name] = hs
		}
		if len(ids) == 1 && subs[ids[0]].scoped {
			inf.soleScopedSub = ids[0]
		}
		v.info[name] = inf
	}
	d.view.Store(v)
	if h := d.chook; h != nil {
		h()
	}
}

// SetChangeHook installs a callback run after every structural change
// (event definition, subscription, advisor install) publishes a new
// graph view. The hook runs under the structure lock and must not block
// or call back into the detector; the decision fast path uses it to
// bump its invalidation epoch. Install once during engine assembly.
func (d *Detector) SetChangeHook(fn func()) {
	d.smu.Lock()
	d.chook = fn
	d.smu.Unlock()
}

// SetOccurrencePooling enables recycling of primitive occurrences whose
// event has no composite parents and exactly one scope-marked
// subscriber. The caller asserts that subscriber (and any outcome
// consumers behind it) extracts what it needs during the callback and
// never retains the *Occurrence; the engine turns this on only for
// fast-path systems whose sole subscriber is the rule pool with no
// outcome listeners registered.
func (d *Detector) SetOccurrencePooling(ok bool) { d.occPoolOK.Store(ok) }

// Clock returns the clock the detector schedules temporal events on.
func (d *Detector) Clock() clock.Clock { return d.clk }

// SetInstruments installs the metric hooks. Call once during engine
// assembly, before traffic: lanes read the pointer without
// synchronization.
func (d *Detector) SetInstruments(ins *Instruments) { d.ins = ins }

// Lanes returns the configured lane count (1 in single-drain mode).
func (d *Detector) Lanes() int { return d.lanes }

// SetScopeAdvisor installs the routing oracle consulted for scope-keyed
// occurrences: it reports whether every rule on the named event is
// scope-local. A nil advisor (the default) lets subscriber marking alone
// decide. The rule pool installs one derived from rule granularity.
func (d *Detector) SetScopeAdvisor(f func(eventName string) bool) {
	d.smu.Lock()
	d.advisor = f
	d.publishLocked()
	d.smu.Unlock()
}

// DefinePrimitive registers a primitive (simple) event name. It is
// idempotent for primitives but fails if the name is already bound to a
// composite event.
func (d *Detector) DefinePrimitive(name string) error {
	d.smu.Lock()
	defer d.smu.Unlock()
	if err := d.definePrimitiveLocked(name); err != nil {
		return err
	}
	d.publishLocked()
	return nil
}

func (d *Detector) definePrimitiveLocked(name string) error {
	if name == "" {
		return fmt.Errorf("event: empty event name")
	}
	if n, ok := d.nodes[name]; ok {
		if _, isPrim := n.(*primitiveNode); isPrim {
			return nil
		}
		return fmt.Errorf("event: %q already defined as a composite event", name)
	}
	d.nodes[name] = &primitiveNode{baseNode{nm: name}}
	return nil
}

// MustPrimitive is DefinePrimitive that panics on error.
func (d *Detector) MustPrimitive(name string) {
	if err := d.DefinePrimitive(name); err != nil {
		panic(err)
	}
}

// Defined reports whether name is a registered event (primitive or
// composite).
func (d *Detector) Defined(name string) bool {
	_, ok := d.view.Load().info[name]
	return ok
}

// Events returns the names of all defined events, sorted.
func (d *Detector) Events() []string {
	v := d.view.Load()
	out := make([]string, 0, len(v.nodes))
	for n := range v.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SoleScopedSub reports whether name is a primitive event with no
// composite parents and exactly one scope-marked subscriber — the shape
// the decision fast path can cache — and, when so, that subscription's
// id (so the caller can confirm the subscriber's identity with its
// owner).
func (d *Detector) SoleScopedSub(name string) (id int, ok bool) {
	inf, defined := d.view.Load().info[name]
	if !defined || inf.prim == nil || inf.hasParents || inf.soleScopedSub < 0 {
		return 0, false
	}
	return inf.soleScopedSub, true
}

// Subscribe registers h to run on every detection of the named event and
// returns a subscription id for Unsubscribe. The event must already be
// defined. A plain subscription pins the event to the global lane; use
// SubscribeScoped for handlers safe to run on scope lanes.
func (d *Detector) Subscribe(name string, h Handler) (int, error) {
	return d.subscribe(name, h, false)
}

// SubscribeScoped registers h like Subscribe but marks the handler
// scope-safe: its observable state is partitioned by the occurrence
// ScopeKey, so it may run on a scope lane concurrently with other
// scopes. Only subscribe rule machinery that is per-user/per-session
// this way.
func (d *Detector) SubscribeScoped(name string, h Handler) (int, error) {
	return d.subscribe(name, h, true)
}

func (d *Detector) subscribe(name string, h Handler, scoped bool) (int, error) {
	d.smu.Lock()
	defer d.smu.Unlock()
	if _, ok := d.nodes[name]; !ok {
		return 0, fmt.Errorf("event: subscribe to undefined event %q", name)
	}
	d.subSeq++
	id := d.subSeq
	m := d.subs[name]
	if m == nil {
		m = make(map[int]subEntry)
		d.subs[name] = m
	}
	m[id] = subEntry{h: h, scoped: scoped}
	d.publishLocked()
	return id, nil
}

// Unsubscribe removes a subscription made with Subscribe. Unknown ids are
// ignored.
func (d *Detector) Unsubscribe(name string, id int) {
	d.smu.Lock()
	defer d.smu.Unlock()
	if m, ok := d.subs[name]; ok {
		delete(m, id)
		d.publishLocked()
	}
}

// resolvePrimitive looks up name and checks it is raisable.
func (d *Detector) resolvePrimitive(name string) (*primitiveNode, error) {
	inf, ok := d.view.Load().info[name]
	if !ok {
		return nil, fmt.Errorf("event: raise of undefined event %q", name)
	}
	if inf.prim == nil {
		return nil, fmt.Errorf("event: cannot raise composite event %q directly", name)
	}
	return inf.prim, nil
}

// laneFor picks the lane an occurrence of prim with the given scope key
// runs on. Everything routes to the global lane except scope-keyed
// occurrences of events that are provably scope-local: the node has no
// composite parents, every subscriber is scope-marked, and the scope
// advisor (rule granularity) approves.
func (d *Detector) laneFor(prim node, scope string) *lane {
	if len(d.scoped) == 0 || scope == "" {
		return d.global
	}
	v := d.view.Load()
	inf := v.info[prim.name()]
	if inf.hasParents || !inf.allScoped || (v.advisor != nil && !v.advisor(prim.name())) {
		return d.global
	}
	return d.scoped[fnv1a(scope)%uint32(len(d.scoped))]
}

// fnv1a is the 32-bit FNV-1a hash, used to shard scope keys over lanes.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Raise injects an occurrence of a primitive event stamped with the
// detector clock's current instant and the given parameters, then
// propagates it (and any cascaded events) to completion, unless a drain
// is already in progress on its lane — in that case the occurrence is
// queued behind it.
func (d *Detector) Raise(name string, p Params) error {
	return d.raise(name, p, "", nil, nil)
}

// RaiseScoped is Raise with an explicit scope key, allowing the
// occurrence to run on a scope lane when its event is scope-local.
func (d *Detector) RaiseScoped(name string, p Params, scope string) error {
	return d.raise(name, p, scope, nil, nil)
}

// RaiseFrom raises a cascaded event from inside a handler processing
// parent: the new occurrence inherits parent's scope key and joins
// parent's request cascade, so a RaiseSync waiting on that request does
// not return until the cascaded occurrence — possibly on another lane —
// has been fully processed. Rule actions that re-enter the event system
// (role-activation fan-out, cardinality rollbacks) must use this instead
// of Raise to keep synchronous enforcement exact across lanes.
//
// The cascaded occurrence also inherits parent's decision trace (if
// any) and records a cascade step into it, so a trace follows the
// request across lanes.
func (d *Detector) RaiseFrom(parent *Occurrence, name string, p Params) error {
	if parent == nil {
		return d.raise(name, p, "", nil, nil)
	}
	if tr := parent.trace; tr != nil {
		tr.Add(d.clk.Now(), parent.lane, obs.StepCascade, name, "",
			"raised from "+parent.Event, true)
	}
	return d.raise(name, p, parent.Scope, parent.casc, parent.trace)
}

func (d *Detector) raise(name string, p Params, scope string, casc *cascade, tr *obs.Trace) error {
	return d.raiseWith(name, p, scope, casc, tr, false)
}

// occPool recycles primitive occurrences on the gated hot path (no
// composite parents, sole scope-marked subscriber, pooling enabled, no
// trace); everything else allocates as before.
var occPool = sync.Pool{New: func() any { return new(Occurrence) }}

// raiseWith is the shared raise implementation. owned marks params the
// caller hands over (already private to this raise), skipping the
// defensive clone on the lane.
func (d *Detector) raiseWith(name string, p Params, scope string, casc *cascade, tr *obs.Trace, owned bool) error {
	prim, err := d.resolvePrimitive(name)
	if err != nil {
		return err
	}
	d.postRaise(d.laneFor(prim, scope), prim, name, p, scope, casc, tr, owned)
	return nil
}

// postRaise queues the occurrence-building closure on ln. Split from
// raiseWith so the synchronous path can pin the lane it will await.
func (d *Detector) postRaise(ln *lane, prim *primitiveNode, name string, p Params, scope string, casc *cascade, tr *obs.Trace, owned bool) {
	now := d.clk.Now()
	ln.post(casc, func(ex exec) {
		ex.d.raised.Add(1)
		params := p
		if !owned {
			params = p.Clone()
		}
		pooled := tr == nil && ex.d.occPoolOK.Load()
		var occ *Occurrence
		if pooled {
			occ = occPool.Get().(*Occurrence)
			*occ = Occurrence{Event: name, Start: now, End: now, Params: params, Scope: scope}
		} else {
			occ = &Occurrence{Event: name, Start: now, End: now, Params: params, Scope: scope, trace: tr}
		}
		recyclable := ex.d.deliver(ex, prim, occ)
		if pooled && recyclable {
			*occ = Occurrence{}
			occPool.Put(occ)
		}
	})
}

// MustRaise is Raise that panics on error.
func (d *Detector) MustRaise(name string, p Params) {
	if err := d.Raise(name, p); err != nil {
		panic(err)
	}
}

// Defer queues fn to run on the global lane after the current
// propagation step; handlers use it to sequence work after the cascade
// in flight.
func (d *Detector) Defer(fn func()) {
	d.global.post(nil, func(exec) { fn() })
}

// RaiseSync raises a primitive event like Raise and then blocks until
// the occurrence *and every cascade it triggered* have been fully
// processed (its lane reached a quiescent point after the item and all
// cross-lane RaiseFrom descendants ran). It is how synchronous
// request/response enforcement (CheckAccess, AddActiveRole) is built on
// the asynchronous rule machinery.
//
// RaiseSync must not be called from inside a handler — a handler runs on
// a drain, and waiting there for the drain to finish would deadlock.
// Handlers cascade with RaiseFrom (or Raise) instead.
func (d *Detector) RaiseSync(name string, p Params) error {
	return d.RaiseSyncScoped(name, p, "")
}

// RaiseSyncScoped is RaiseSync with an explicit scope key; enforcement
// engines stamp the requesting session/user here so independent scopes
// proceed in parallel.
func (d *Detector) RaiseSyncScoped(name string, p Params, scope string) error {
	return d.RaiseSyncTraced(name, p, scope, nil)
}

// RaiseSyncTraced is RaiseSyncScoped with a decision trace attached to
// the occurrence: every delivery, operator match, rule firing and
// cascaded raise of the request records a step into tr. A nil tr is
// exactly RaiseSyncScoped.
func (d *Detector) RaiseSyncTraced(name string, p Params, scope string, tr *obs.Trace) error {
	return d.raiseSync(name, p, scope, tr, false)
}

// RaiseSyncTracedOwned is RaiseSyncTraced for callers that hand over
// ownership of p: the detector uses the map directly instead of cloning
// it on the lane. The caller must not read or write p after the call —
// the enforcement engine builds a private param map per decision and
// passes it here, eliminating the second per-request map allocation.
func (d *Detector) RaiseSyncTracedOwned(name string, p Params, scope string, tr *obs.Trace) error {
	return d.raiseSync(name, p, scope, tr, true)
}

func (d *Detector) raiseSync(name string, p Params, scope string, tr *obs.Trace, owned bool) error {
	prim, err := d.resolvePrimitive(name)
	if err != nil {
		return err
	}
	ln := d.laneFor(prim, scope)
	casc := newCascade()
	d.postRaise(ln, prim, name, p, scope, casc, tr, owned)
	// First wait for the request's own cascade (which may hop lanes via
	// RaiseFrom), then for the lane that ran it to go quiet — the latter
	// preserves the seed's guarantee that same-lane work batched behind
	// the request (plain Raise from handlers, Defer) also completed.
	casc.wait()
	ln.awaitQuiet()
	return nil
}

// Quiesce blocks until every lane is idle: no queued work and no drain
// in progress anywhere. Because a draining lane can post to another
// lane (scope → global escalation, cascaded raises), it re-checks until
// a full pass observes no new work.
func (d *Detector) Quiesce() {
	all := d.allLanes()
	for {
		before := d.totalEnqueued(all)
		for _, ln := range all {
			ln.awaitQuiet()
		}
		if d.totalEnqueued(all) == before {
			return
		}
	}
}

func (d *Detector) allLanes() []*lane {
	out := make([]*lane, 0, len(d.scoped)+1)
	out = append(out, d.global)
	out = append(out, d.scoped...)
	return out
}

func (d *Detector) totalEnqueued(lanes []*lane) uint64 {
	var n uint64
	for _, ln := range lanes {
		n += ln.enqueued.Load()
	}
	return n
}

// LaneStats snapshots per-lane counters (global lane first) for status
// endpoints and benchmarks.
func (d *Detector) LaneStats() []LaneStat {
	all := d.allLanes()
	out := make([]LaneStat, 0, len(all))
	for _, ln := range all {
		out = append(out, ln.stat())
	}
	return out
}

// deliver assigns a sequence number to occ, runs subscribers of the
// source node's event, and propagates to parent operator nodes. Runs on
// a lane drain only. It reports whether the occurrence is provably dead
// after delivery — no composite parent buffered it and its sole
// subscriber is scope-marked (the rule pool's firing handler) — so the
// gated raise path can recycle it.
func (d *Detector) deliver(ex exec, src node, occ *Occurrence) bool {
	occ.Seq = d.seq.Add(1)
	d.detected.Add(1)
	occ.casc = ex.casc
	occ.lane = ex.ln.name

	if occ.Constituents != nil {
		if ins := d.ins; ins != nil && ins.OperatorMatch != nil {
			ins.OperatorMatch(src.kind())
		}
	}
	if tr := occ.trace; tr != nil {
		kind, detail := obs.StepRaise, traceDetail(occ.Params)
		if occ.Constituents != nil {
			kind = obs.StepOperator
			detail = fmt.Sprintf("%s(%d constituents) %s", src.kind(), len(occ.Constituents), detail)
		}
		tr.Add(occ.End, ex.ln.name, kind, occ.Event, "", detail, true)
	}

	v := d.view.Load()
	nm := src.name()
	handlers := v.handlers[nm]
	parents := v.parents[nm]

	for _, h := range handlers {
		h(occ)
	}
	if len(parents) == 0 {
		return v.info[nm].soleScopedSub >= 0
	}
	if ex.ln != d.global {
		// The node gained a composite parent after routing (a policy
		// change mid-flight): operator state lives on the global lane,
		// so escalate the propagation there, keeping the cascade.
		d.global.post(ex.casc, func(gex exec) {
			for _, p := range parents {
				p.process(src, occ, gex)
			}
		})
		return false
	}
	for _, p := range parents {
		p.process(src, occ, ex)
	}
	return false
}

// traceDetail renders an occurrence's parameters for a trace step,
// skipping internal carrier keys (leading underscore, e.g. the
// travelling Decision) whose values are pointers with no stable
// rendering.
func traceDetail(p Params) string {
	if len(p) == 0 {
		return "{}"
	}
	vis := make(Params, len(p))
	for k, v := range p {
		if len(k) > 0 && k[0] == '_' {
			continue
		}
		vis[k] = v
	}
	return vis.String()
}

// Stats reports cumulative detector counters.
type Stats struct {
	Raised   uint64 // primitive occurrences injected via Raise
	Detected uint64 // all occurrences, primitive and composite
	Events   int    // defined event count
}

// Stats returns a snapshot of the detector's counters. Counter reads are
// not synchronized with in-flight drains; call it when the system is
// quiescent (tests, benchmarks) for exact values.
func (d *Detector) Stats() Stats {
	events := len(d.view.Load().nodes)
	return Stats{Raised: d.raised.Load(), Detected: d.detected.Load(), Events: events}
}

// anonName synthesizes a unique name for an unnamed operator node; caller
// holds smu.
func (d *Detector) anonName(kind string) string {
	d.anon++
	return fmt.Sprintf("%s#%d", kind, d.anon)
}

// lookupLocked returns the named node; caller holds smu.
func (d *Detector) lookupLocked(name string) (node, error) {
	n, ok := d.nodes[name]
	if !ok {
		return nil, fmt.Errorf("event: undefined event %q", name)
	}
	return n, nil
}
