package event

import (
	"fmt"
	"sort"
	"sync"

	"activerbac/internal/clock"
)

// Handler is invoked for every detected occurrence of a subscribed event.
// Handlers run on the detector's drain goroutine and must not block; they
// may call Raise, Defer, Define, or Subscribe (cascaded events are queued
// and processed after the current propagation completes).
type Handler func(*Occurrence)

// node is a vertex in the event graph. Node *state* (pending occurrence
// buffers) is only touched by the drain goroutine; node *structure*
// (parent lists) is guarded by the detector's structure lock.
type node interface {
	name() string
	// process handles an occurrence delivered from src (one of the
	// node's declared children). Runs on the drain goroutine only.
	process(src node, occ *Occurrence, d *Detector)
	// addParent subscribes an operator node to this node's detections.
	// Caller holds the detector's structure lock.
	addParent(p node)
	// parentsOf snapshots the parent list. Caller holds the structure
	// lock (read side suffices).
	parentsOf() []node
}

// baseNode carries the name and parent list shared by all node kinds.
type baseNode struct {
	nm      string
	parents []node
}

func (b *baseNode) name() string { return b.nm }

func (b *baseNode) addParent(p node) {
	for _, q := range b.parents {
		if q == p {
			return
		}
	}
	b.parents = append(b.parents, p)
}

func (b *baseNode) parentsOf() []node {
	out := make([]node, len(b.parents))
	copy(out, b.parents)
	return out
}

// primitiveNode is a leaf raised directly via Detector.Raise.
type primitiveNode struct {
	baseNode
}

func (n *primitiveNode) process(node, *Occurrence, *Detector) {
	// Primitives have no children; nothing delivers to them.
}

// Detector owns an event graph and serializes all occurrence propagation
// through an internal queue: Raise may be called from any goroutine —
// including from handlers and from clock timer callbacks — and exactly
// one goroutine at a time drains the queue, so operator-node state needs
// no locking. This mirrors the single event-detector thread of the
// paper's Sentinel+ system.
type Detector struct {
	clk clock.Clock

	// smu guards graph structure: the name maps, subscriber maps, and
	// node parent lists. It is never held while user code runs.
	smu    sync.RWMutex
	nodes  map[string]node
	subs   map[string]map[int]Handler
	anon   int
	subSeq int

	// emu serializes drain execution (operator-node state).
	emu sync.Mutex

	// qmu guards the delivery queue and drain ownership; quiet is
	// signalled (broadcast) whenever a drain completes.
	qmu      sync.Mutex
	quiet    *sync.Cond
	queue    []func(*Detector)
	draining bool

	// counters below are touched only on the drain goroutine.
	seq      uint64
	raised   uint64
	detected uint64
	maxCade  int // cascade safety bound per drain
}

// New returns a Detector whose temporal operators schedule on clk.
func New(clk clock.Clock) *Detector {
	d := &Detector{
		clk:     clk,
		nodes:   make(map[string]node),
		subs:    make(map[string]map[int]Handler),
		maxCade: 1 << 20,
	}
	d.quiet = sync.NewCond(&d.qmu)
	return d
}

// Clock returns the clock the detector schedules temporal events on.
func (d *Detector) Clock() clock.Clock { return d.clk }

// DefinePrimitive registers a primitive (simple) event name. It is
// idempotent for primitives but fails if the name is already bound to a
// composite event.
func (d *Detector) DefinePrimitive(name string) error {
	d.smu.Lock()
	defer d.smu.Unlock()
	return d.definePrimitiveLocked(name)
}

func (d *Detector) definePrimitiveLocked(name string) error {
	if name == "" {
		return fmt.Errorf("event: empty event name")
	}
	if n, ok := d.nodes[name]; ok {
		if _, isPrim := n.(*primitiveNode); isPrim {
			return nil
		}
		return fmt.Errorf("event: %q already defined as a composite event", name)
	}
	d.nodes[name] = &primitiveNode{baseNode{nm: name}}
	return nil
}

// MustPrimitive is DefinePrimitive that panics on error.
func (d *Detector) MustPrimitive(name string) {
	if err := d.DefinePrimitive(name); err != nil {
		panic(err)
	}
}

// Defined reports whether name is a registered event (primitive or
// composite).
func (d *Detector) Defined(name string) bool {
	d.smu.RLock()
	defer d.smu.RUnlock()
	_, ok := d.nodes[name]
	return ok
}

// Events returns the names of all defined events, sorted.
func (d *Detector) Events() []string {
	d.smu.RLock()
	defer d.smu.RUnlock()
	out := make([]string, 0, len(d.nodes))
	for n := range d.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Subscribe registers h to run on every detection of the named event and
// returns a subscription id for Unsubscribe. The event must already be
// defined.
func (d *Detector) Subscribe(name string, h Handler) (int, error) {
	d.smu.Lock()
	defer d.smu.Unlock()
	if _, ok := d.nodes[name]; !ok {
		return 0, fmt.Errorf("event: subscribe to undefined event %q", name)
	}
	d.subSeq++
	id := d.subSeq
	m := d.subs[name]
	if m == nil {
		m = make(map[int]Handler)
		d.subs[name] = m
	}
	m[id] = h
	return id, nil
}

// Unsubscribe removes a subscription made with Subscribe. Unknown ids are
// ignored.
func (d *Detector) Unsubscribe(name string, id int) {
	d.smu.Lock()
	defer d.smu.Unlock()
	if m, ok := d.subs[name]; ok {
		delete(m, id)
	}
}

// Raise injects an occurrence of a primitive event stamped with the
// detector clock's current instant and the given parameters, then
// propagates it (and any cascaded events) to completion, unless a drain
// is already in progress on another goroutine — in that case the
// occurrence is queued behind it.
func (d *Detector) Raise(name string, p Params) error {
	d.smu.RLock()
	n, ok := d.nodes[name]
	d.smu.RUnlock()
	if !ok {
		return fmt.Errorf("event: raise of undefined event %q", name)
	}
	prim, ok := n.(*primitiveNode)
	if !ok {
		return fmt.Errorf("event: cannot raise composite event %q directly", name)
	}

	now := d.clk.Now()
	d.enqueue(func(det *Detector) {
		det.raised++
		occ := &Occurrence{Event: name, Start: now, End: now, Params: p.Clone()}
		det.deliver(prim, occ)
	})
	return nil
}

// MustRaise is Raise that panics on error.
func (d *Detector) MustRaise(name string, p Params) {
	if err := d.Raise(name, p); err != nil {
		panic(err)
	}
}

// Defer queues fn to run on the drain goroutine after the current
// propagation step; handlers use it to sequence work after the cascade
// in flight.
func (d *Detector) Defer(fn func()) {
	d.enqueue(func(*Detector) { fn() })
}

// RaiseSync raises a primitive event like Raise and then blocks until
// the occurrence *and every cascade it triggered* have been fully
// processed (the detector reached a quiescent point after the item ran).
// It is how synchronous request/response enforcement (CheckAccess,
// AddActiveRole) is built on the asynchronous rule machinery.
//
// RaiseSync must not be called from inside a handler — a handler runs on
// the drain goroutine, and waiting there for the drain to finish would
// deadlock. Handlers cascade with plain Raise instead.
func (d *Detector) RaiseSync(name string, p Params) error {
	d.smu.RLock()
	n, ok := d.nodes[name]
	d.smu.RUnlock()
	if !ok {
		return fmt.Errorf("event: raise of undefined event %q", name)
	}
	prim, ok := n.(*primitiveNode)
	if !ok {
		return fmt.Errorf("event: cannot raise composite event %q directly", name)
	}

	now := d.clk.Now()
	processed := make(chan struct{})
	d.enqueue(func(det *Detector) {
		det.raised++
		occ := &Occurrence{Event: name, Start: now, End: now, Params: p.Clone()}
		det.deliver(prim, occ)
		close(processed)
	})
	<-processed
	// The item ran; now wait for the drain that ran it (or a later one)
	// to go quiet, which guarantees the item's cascades completed.
	d.qmu.Lock()
	for d.draining {
		d.quiet.Wait()
	}
	d.qmu.Unlock()
	return nil
}

// enqueue appends a work item and drains the queue unless another
// goroutine is already draining (that goroutine will pick the item up).
func (d *Detector) enqueue(fn func(*Detector)) {
	d.qmu.Lock()
	d.queue = append(d.queue, fn)
	if d.draining {
		d.qmu.Unlock()
		return
	}
	d.draining = true
	d.qmu.Unlock()

	d.emu.Lock()
	steps := 0
	for {
		d.qmu.Lock()
		if len(d.queue) == 0 || steps >= d.maxCade {
			d.queue = d.queue[:0]
			d.draining = false
			d.quiet.Broadcast()
			d.qmu.Unlock()
			break
		}
		next := d.queue[0]
		d.queue = d.queue[1:]
		d.qmu.Unlock()
		steps++
		next(d)
	}
	d.emu.Unlock()
}

// deliver assigns a sequence number to occ, runs subscribers of the
// source node's event, and propagates to parent operator nodes. Runs on
// the drain goroutine only.
func (d *Detector) deliver(src node, occ *Occurrence) {
	d.seq++
	occ.Seq = d.seq
	d.detected++

	d.smu.RLock()
	handlers := d.snapshotHandlers(src.name())
	parents := src.parentsOf()
	d.smu.RUnlock()

	for _, h := range handlers {
		h(occ)
	}
	for _, p := range parents {
		p.process(src, occ, d)
	}
}

// snapshotHandlers copies the handler set in subscription order; caller
// holds smu (read side).
func (d *Detector) snapshotHandlers(name string) []Handler {
	m := d.subs[name]
	if len(m) == 0 {
		return nil
	}
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	hs := make([]Handler, 0, len(ids))
	for _, id := range ids {
		hs = append(hs, m[id])
	}
	return hs
}

// Stats reports cumulative detector counters.
type Stats struct {
	Raised   uint64 // primitive occurrences injected via Raise
	Detected uint64 // all occurrences, primitive and composite
	Events   int    // defined event count
}

// Stats returns a snapshot of the detector's counters. Counter reads are
// not synchronized with in-flight drains; call it when the system is
// quiescent (tests, benchmarks) for exact values.
func (d *Detector) Stats() Stats {
	d.smu.RLock()
	events := len(d.nodes)
	d.smu.RUnlock()
	return Stats{Raised: d.raised, Detected: d.detected, Events: events}
}

// anonName synthesizes a unique name for an unnamed operator node; caller
// holds smu.
func (d *Detector) anonName(kind string) string {
	d.anon++
	return fmt.Sprintf("%s#%d", kind, d.anon)
}

// lookupLocked returns the named node; caller holds smu.
func (d *Detector) lookupLocked(name string) (node, error) {
	n, ok := d.nodes[name]
	if !ok {
		return nil, fmt.Errorf("event: undefined event %q", name)
	}
	return n, nil
}
