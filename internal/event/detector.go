package event

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"activerbac/internal/clock"
	"activerbac/internal/obs"
)

// Instruments carries the detector's optional metric hooks. A nil
// *Instruments on the detector disables them all behind one pointer
// check; individual fields may also be nil.
type Instruments struct {
	// LaneWait observes the queued time, in seconds, of each drained
	// work item, labelled by lane name.
	LaneWait func(lane string, seconds float64)
	// OperatorMatch counts composite detections by operator kind.
	OperatorMatch func(operator string)
}

// Handler is invoked for every detected occurrence of a subscribed event.
// Handlers run on a detector lane and must not block; they may call
// Raise, RaiseFrom, Defer, Define, or Subscribe (cascaded events are
// queued and processed after the current propagation completes).
type Handler func(*Occurrence)

// node is a vertex in the event graph. Node *state* (pending occurrence
// buffers) is only touched by the global lane's drain; node *structure*
// (parent lists) is guarded by the detector's structure lock.
type node interface {
	name() string
	// kind names the node's operator for traces and metrics
	// ("primitive", "SEQ", "AND", ...).
	kind() string
	// process handles an occurrence delivered from src (one of the
	// node's declared children). Runs on the global lane only.
	process(src node, occ *Occurrence, ex exec)
	// addParent subscribes an operator node to this node's detections.
	// Caller holds the detector's structure lock.
	addParent(p node)
	// parentsOf snapshots the parent list. Caller holds the structure
	// lock (read side suffices).
	parentsOf() []node
}

// baseNode carries the name and parent list shared by all node kinds.
type baseNode struct {
	nm      string
	parents []node
}

func (b *baseNode) name() string { return b.nm }

func (b *baseNode) addParent(p node) {
	for _, q := range b.parents {
		if q == p {
			return
		}
	}
	b.parents = append(b.parents, p)
}

func (b *baseNode) parentsOf() []node {
	out := make([]node, len(b.parents))
	copy(out, b.parents)
	return out
}

// primitiveNode is a leaf raised directly via Detector.Raise.
type primitiveNode struct {
	baseNode
}

func (n *primitiveNode) kind() string { return "primitive" }

func (n *primitiveNode) process(node, *Occurrence, exec) {
	// Primitives have no children; nothing delivers to them.
}

// subEntry is one subscription. scoped marks handlers whose state is
// partitioned by ScopeKey (rule-pool subscriptions); an event with any
// unscoped subscriber always runs on the global lane.
type subEntry struct {
	h      Handler
	scoped bool
}

// Detector owns an event graph and propagates occurrences through drain
// lanes. In the default single-lane configuration every occurrence is
// serialized through one global lane — the single event-detector thread
// of the paper's Sentinel+ system, and the mode the deterministic tests
// pin. With WithLanes(n>1) the detector adds n scope lanes: an
// occurrence carrying a ScopeKey whose event is entirely scope-local
// (no composite parents, every subscriber scope-marked, and the scope
// advisor — fed by rule granularity — approves) runs on the lane its
// key hashes to, concurrently with other scopes, while everything else
// (composite operators, SoD oracles, cardinality counters, security
// monitors, temporal ticks) keeps global-lane ordering.
type Detector struct {
	clk clock.Clock

	// smu guards graph structure: the name maps, subscriber maps, node
	// parent lists, and the scope advisor. It is never held while user
	// code runs.
	smu     sync.RWMutex
	nodes   map[string]node
	subs    map[string]map[int]subEntry
	anon    int
	subSeq  int
	advisor func(eventName string) bool

	// global serializes cross-scope propagation; scoped (empty in
	// single-lane mode) partitions scope-local propagation by key hash.
	global *lane
	scoped []*lane
	lanes  int // configured lane count (1 = classic single drain)

	seq      atomic.Uint64
	raised   atomic.Uint64
	detected atomic.Uint64
	maxCade  int // cascade safety bound per drain

	// ins holds the optional metric hooks; nil (the default) is the
	// zero-overhead path. Set before traffic starts (SetInstruments).
	ins *Instruments
}

// Option configures a Detector.
type Option func(*Detector)

// WithLanes sets the lane count. n <= 1 (the default) selects the
// classic fully-serialized single drain; n > 1 adds n scope lanes next
// to the global lane.
func WithLanes(n int) Option {
	return func(d *Detector) {
		if n < 1 {
			n = 1
		}
		d.lanes = n
	}
}

// New returns a Detector whose temporal operators schedule on clk.
func New(clk clock.Clock, opts ...Option) *Detector {
	d := &Detector{
		clk:     clk,
		nodes:   make(map[string]node),
		subs:    make(map[string]map[int]subEntry),
		lanes:   1,
		maxCade: 1 << 20,
	}
	for _, o := range opts {
		o(d)
	}
	d.global = newLane(d, "global")
	if d.lanes > 1 {
		d.scoped = make([]*lane, d.lanes)
		for i := range d.scoped {
			d.scoped[i] = newLane(d, fmt.Sprintf("scope-%d", i))
		}
	}
	return d
}

// Clock returns the clock the detector schedules temporal events on.
func (d *Detector) Clock() clock.Clock { return d.clk }

// SetInstruments installs the metric hooks. Call once during engine
// assembly, before traffic: lanes read the pointer without
// synchronization.
func (d *Detector) SetInstruments(ins *Instruments) { d.ins = ins }

// Lanes returns the configured lane count (1 in single-drain mode).
func (d *Detector) Lanes() int { return d.lanes }

// SetScopeAdvisor installs the routing oracle consulted for scope-keyed
// occurrences: it reports whether every rule on the named event is
// scope-local. A nil advisor (the default) lets subscriber marking alone
// decide. The rule pool installs one derived from rule granularity.
func (d *Detector) SetScopeAdvisor(f func(eventName string) bool) {
	d.smu.Lock()
	d.advisor = f
	d.smu.Unlock()
}

// DefinePrimitive registers a primitive (simple) event name. It is
// idempotent for primitives but fails if the name is already bound to a
// composite event.
func (d *Detector) DefinePrimitive(name string) error {
	d.smu.Lock()
	defer d.smu.Unlock()
	return d.definePrimitiveLocked(name)
}

func (d *Detector) definePrimitiveLocked(name string) error {
	if name == "" {
		return fmt.Errorf("event: empty event name")
	}
	if n, ok := d.nodes[name]; ok {
		if _, isPrim := n.(*primitiveNode); isPrim {
			return nil
		}
		return fmt.Errorf("event: %q already defined as a composite event", name)
	}
	d.nodes[name] = &primitiveNode{baseNode{nm: name}}
	return nil
}

// MustPrimitive is DefinePrimitive that panics on error.
func (d *Detector) MustPrimitive(name string) {
	if err := d.DefinePrimitive(name); err != nil {
		panic(err)
	}
}

// Defined reports whether name is a registered event (primitive or
// composite).
func (d *Detector) Defined(name string) bool {
	d.smu.RLock()
	defer d.smu.RUnlock()
	_, ok := d.nodes[name]
	return ok
}

// Events returns the names of all defined events, sorted.
func (d *Detector) Events() []string {
	d.smu.RLock()
	defer d.smu.RUnlock()
	out := make([]string, 0, len(d.nodes))
	for n := range d.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Subscribe registers h to run on every detection of the named event and
// returns a subscription id for Unsubscribe. The event must already be
// defined. A plain subscription pins the event to the global lane; use
// SubscribeScoped for handlers safe to run on scope lanes.
func (d *Detector) Subscribe(name string, h Handler) (int, error) {
	return d.subscribe(name, h, false)
}

// SubscribeScoped registers h like Subscribe but marks the handler
// scope-safe: its observable state is partitioned by the occurrence
// ScopeKey, so it may run on a scope lane concurrently with other
// scopes. Only subscribe rule machinery that is per-user/per-session
// this way.
func (d *Detector) SubscribeScoped(name string, h Handler) (int, error) {
	return d.subscribe(name, h, true)
}

func (d *Detector) subscribe(name string, h Handler, scoped bool) (int, error) {
	d.smu.Lock()
	defer d.smu.Unlock()
	if _, ok := d.nodes[name]; !ok {
		return 0, fmt.Errorf("event: subscribe to undefined event %q", name)
	}
	d.subSeq++
	id := d.subSeq
	m := d.subs[name]
	if m == nil {
		m = make(map[int]subEntry)
		d.subs[name] = m
	}
	m[id] = subEntry{h: h, scoped: scoped}
	return id, nil
}

// Unsubscribe removes a subscription made with Subscribe. Unknown ids are
// ignored.
func (d *Detector) Unsubscribe(name string, id int) {
	d.smu.Lock()
	defer d.smu.Unlock()
	if m, ok := d.subs[name]; ok {
		delete(m, id)
	}
}

// resolvePrimitive looks up name and checks it is raisable.
func (d *Detector) resolvePrimitive(name string) (*primitiveNode, error) {
	d.smu.RLock()
	n, ok := d.nodes[name]
	d.smu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("event: raise of undefined event %q", name)
	}
	prim, ok := n.(*primitiveNode)
	if !ok {
		return nil, fmt.Errorf("event: cannot raise composite event %q directly", name)
	}
	return prim, nil
}

// laneFor picks the lane an occurrence of prim with the given scope key
// runs on. Everything routes to the global lane except scope-keyed
// occurrences of events that are provably scope-local: the node has no
// composite parents, every subscriber is scope-marked, and the scope
// advisor (rule granularity) approves.
func (d *Detector) laneFor(prim node, scope string) *lane {
	if len(d.scoped) == 0 || scope == "" {
		return d.global
	}
	d.smu.RLock()
	local := len(prim.parentsOf()) == 0
	if local {
		for _, e := range d.subs[prim.name()] {
			if !e.scoped {
				local = false
				break
			}
		}
	}
	adv := d.advisor
	d.smu.RUnlock()
	if !local || (adv != nil && !adv(prim.name())) {
		return d.global
	}
	return d.scoped[fnv1a(scope)%uint32(len(d.scoped))]
}

// fnv1a is the 32-bit FNV-1a hash, used to shard scope keys over lanes.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Raise injects an occurrence of a primitive event stamped with the
// detector clock's current instant and the given parameters, then
// propagates it (and any cascaded events) to completion, unless a drain
// is already in progress on its lane — in that case the occurrence is
// queued behind it.
func (d *Detector) Raise(name string, p Params) error {
	return d.raise(name, p, "", nil, nil)
}

// RaiseScoped is Raise with an explicit scope key, allowing the
// occurrence to run on a scope lane when its event is scope-local.
func (d *Detector) RaiseScoped(name string, p Params, scope string) error {
	return d.raise(name, p, scope, nil, nil)
}

// RaiseFrom raises a cascaded event from inside a handler processing
// parent: the new occurrence inherits parent's scope key and joins
// parent's request cascade, so a RaiseSync waiting on that request does
// not return until the cascaded occurrence — possibly on another lane —
// has been fully processed. Rule actions that re-enter the event system
// (role-activation fan-out, cardinality rollbacks) must use this instead
// of Raise to keep synchronous enforcement exact across lanes.
//
// The cascaded occurrence also inherits parent's decision trace (if
// any) and records a cascade step into it, so a trace follows the
// request across lanes.
func (d *Detector) RaiseFrom(parent *Occurrence, name string, p Params) error {
	if parent == nil {
		return d.raise(name, p, "", nil, nil)
	}
	if tr := parent.trace; tr != nil {
		tr.Add(d.clk.Now(), parent.lane, obs.StepCascade, name, "",
			"raised from "+parent.Event, true)
	}
	return d.raise(name, p, parent.Scope, parent.casc, parent.trace)
}

func (d *Detector) raise(name string, p Params, scope string, casc *cascade, tr *obs.Trace) error {
	prim, err := d.resolvePrimitive(name)
	if err != nil {
		return err
	}
	now := d.clk.Now()
	ln := d.laneFor(prim, scope)
	ln.post(casc, func(ex exec) {
		ex.d.raised.Add(1)
		occ := &Occurrence{Event: name, Start: now, End: now, Params: p.Clone(), Scope: scope, trace: tr}
		ex.d.deliver(ex, prim, occ)
	})
	return nil
}

// MustRaise is Raise that panics on error.
func (d *Detector) MustRaise(name string, p Params) {
	if err := d.Raise(name, p); err != nil {
		panic(err)
	}
}

// Defer queues fn to run on the global lane after the current
// propagation step; handlers use it to sequence work after the cascade
// in flight.
func (d *Detector) Defer(fn func()) {
	d.global.post(nil, func(exec) { fn() })
}

// RaiseSync raises a primitive event like Raise and then blocks until
// the occurrence *and every cascade it triggered* have been fully
// processed (its lane reached a quiescent point after the item and all
// cross-lane RaiseFrom descendants ran). It is how synchronous
// request/response enforcement (CheckAccess, AddActiveRole) is built on
// the asynchronous rule machinery.
//
// RaiseSync must not be called from inside a handler — a handler runs on
// a drain, and waiting there for the drain to finish would deadlock.
// Handlers cascade with RaiseFrom (or Raise) instead.
func (d *Detector) RaiseSync(name string, p Params) error {
	return d.RaiseSyncScoped(name, p, "")
}

// RaiseSyncScoped is RaiseSync with an explicit scope key; enforcement
// engines stamp the requesting session/user here so independent scopes
// proceed in parallel.
func (d *Detector) RaiseSyncScoped(name string, p Params, scope string) error {
	return d.RaiseSyncTraced(name, p, scope, nil)
}

// RaiseSyncTraced is RaiseSyncScoped with a decision trace attached to
// the occurrence: every delivery, operator match, rule firing and
// cascaded raise of the request records a step into tr. A nil tr is
// exactly RaiseSyncScoped.
func (d *Detector) RaiseSyncTraced(name string, p Params, scope string, tr *obs.Trace) error {
	prim, err := d.resolvePrimitive(name)
	if err != nil {
		return err
	}
	now := d.clk.Now()
	ln := d.laneFor(prim, scope)
	casc := newCascade()
	ln.post(casc, func(ex exec) {
		ex.d.raised.Add(1)
		occ := &Occurrence{Event: name, Start: now, End: now, Params: p.Clone(), Scope: scope, trace: tr}
		ex.d.deliver(ex, prim, occ)
	})
	// First wait for the request's own cascade (which may hop lanes via
	// RaiseFrom), then for the lane that ran it to go quiet — the latter
	// preserves the seed's guarantee that same-lane work batched behind
	// the request (plain Raise from handlers, Defer) also completed.
	casc.wait()
	ln.awaitQuiet()
	return nil
}

// Quiesce blocks until every lane is idle: no queued work and no drain
// in progress anywhere. Because a draining lane can post to another
// lane (scope → global escalation, cascaded raises), it re-checks until
// a full pass observes no new work.
func (d *Detector) Quiesce() {
	all := d.allLanes()
	for {
		before := d.totalEnqueued(all)
		for _, ln := range all {
			ln.awaitQuiet()
		}
		if d.totalEnqueued(all) == before {
			return
		}
	}
}

func (d *Detector) allLanes() []*lane {
	out := make([]*lane, 0, len(d.scoped)+1)
	out = append(out, d.global)
	out = append(out, d.scoped...)
	return out
}

func (d *Detector) totalEnqueued(lanes []*lane) uint64 {
	var n uint64
	for _, ln := range lanes {
		n += ln.enqueued.Load()
	}
	return n
}

// LaneStats snapshots per-lane counters (global lane first) for status
// endpoints and benchmarks.
func (d *Detector) LaneStats() []LaneStat {
	all := d.allLanes()
	out := make([]LaneStat, 0, len(all))
	for _, ln := range all {
		out = append(out, ln.stat())
	}
	return out
}

// deliver assigns a sequence number to occ, runs subscribers of the
// source node's event, and propagates to parent operator nodes. Runs on
// a lane drain only.
func (d *Detector) deliver(ex exec, src node, occ *Occurrence) {
	occ.Seq = d.seq.Add(1)
	d.detected.Add(1)
	occ.casc = ex.casc
	occ.lane = ex.ln.name

	if occ.Constituents != nil {
		if ins := d.ins; ins != nil && ins.OperatorMatch != nil {
			ins.OperatorMatch(src.kind())
		}
	}
	if tr := occ.trace; tr != nil {
		kind, detail := obs.StepRaise, traceDetail(occ.Params)
		if occ.Constituents != nil {
			kind = obs.StepOperator
			detail = fmt.Sprintf("%s(%d constituents) %s", src.kind(), len(occ.Constituents), detail)
		}
		tr.Add(occ.End, ex.ln.name, kind, occ.Event, "", detail, true)
	}

	d.smu.RLock()
	handlers := d.snapshotHandlers(src.name())
	parents := src.parentsOf()
	d.smu.RUnlock()

	for _, h := range handlers {
		h(occ)
	}
	if len(parents) == 0 {
		return
	}
	if ex.ln != d.global {
		// The node gained a composite parent after routing (a policy
		// change mid-flight): operator state lives on the global lane,
		// so escalate the propagation there, keeping the cascade.
		d.global.post(ex.casc, func(gex exec) {
			for _, p := range parents {
				p.process(src, occ, gex)
			}
		})
		return
	}
	for _, p := range parents {
		p.process(src, occ, ex)
	}
}

// traceDetail renders an occurrence's parameters for a trace step,
// skipping internal carrier keys (leading underscore, e.g. the
// travelling Decision) whose values are pointers with no stable
// rendering.
func traceDetail(p Params) string {
	if len(p) == 0 {
		return "{}"
	}
	vis := make(Params, len(p))
	for k, v := range p {
		if len(k) > 0 && k[0] == '_' {
			continue
		}
		vis[k] = v
	}
	return vis.String()
}

// snapshotHandlers copies the handler set in subscription order; caller
// holds smu (read side).
func (d *Detector) snapshotHandlers(name string) []Handler {
	m := d.subs[name]
	if len(m) == 0 {
		return nil
	}
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	hs := make([]Handler, 0, len(ids))
	for _, id := range ids {
		hs = append(hs, m[id].h)
	}
	return hs
}

// Stats reports cumulative detector counters.
type Stats struct {
	Raised   uint64 // primitive occurrences injected via Raise
	Detected uint64 // all occurrences, primitive and composite
	Events   int    // defined event count
}

// Stats returns a snapshot of the detector's counters. Counter reads are
// not synchronized with in-flight drains; call it when the system is
// quiescent (tests, benchmarks) for exact values.
func (d *Detector) Stats() Stats {
	d.smu.RLock()
	events := len(d.nodes)
	d.smu.RUnlock()
	return Stats{Raised: d.raised.Load(), Detected: d.detected.Load(), Events: events}
}

// anonName synthesizes a unique name for an unnamed operator node; caller
// holds smu.
func (d *Detector) anonName(kind string) string {
	d.anon++
	return fmt.Sprintf("%s#%d", kind, d.anon)
}

// lookupLocked returns the named node; caller holds smu.
func (d *Detector) lookupLocked(name string) (node, error) {
	n, ok := d.nodes[name]
	if !ok {
		return nil, fmt.Errorf("event: undefined event %q", name)
	}
	return n, nil
}
