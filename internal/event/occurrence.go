// Package event implements the Snoop(IB) composite event detection engine
// that underlies Sentinel+ in the paper: primitive events raised by
// reactive objects, composite events built from the operators OR, AND,
// SEQ, NOT, ANY, PLUS, APERIODIC (and its cumulative variant A*) and
// PERIODIC (and P*), interval-based occurrence timestamps, and the four
// Snoop parameter-consumption contexts (Recent, Chronicle, Continuous,
// Cumulative).
//
// Events form a graph: primitive event nodes at the leaves, operator
// nodes above them. The Detector owns the graph, serializes occurrence
// propagation through an internal queue (so rule actions may raise
// further events without re-entrancy hazards — the paper's cascaded
// rules), and invokes subscriber callbacks when any named event is
// detected.
package event

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"activerbac/internal/obs"
)

// Params carries the named parameters of an event occurrence (the
// <PA1 ... PAn> of the paper's E = U -> F(PA1 ... PAn) notation).
// Values are compared with == in conditions, so keep them to basic types.
type Params map[string]any

// Clone returns a shallow copy of p (nil-safe).
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Merge returns a new Params holding p's entries overlaid with q's
// (q wins on conflicts). Either may be nil.
func (p Params) Merge(q Params) Params {
	if len(p) == 0 {
		return q.Clone()
	}
	m := p.Clone()
	for k, v := range q {
		m[k] = v
	}
	return m
}

// String renders parameters deterministically (sorted by key) for logs
// and golden tests.
func (p Params) String() string {
	if len(p) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", k, p[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Occurrence is one detected instance of an event. Following SnoopIB,
// every occurrence carries an interval [Start, End]: for a primitive
// event the interval is a point (Start == End); for a composite event it
// spans from the initiator's Start to the terminator's End.
type Occurrence struct {
	// Event is the name of the event that occurred (primitive or the
	// registered name of a composite event).
	Event string
	// Start and End bound the occurrence interval.
	Start, End time.Time
	// Params holds the merged parameters visible to rule conditions and
	// actions.
	Params Params
	// Constituents lists the child occurrences a composite occurrence
	// was built from, in detection order. Nil for primitive events.
	Constituents []*Occurrence
	// Seq is a detector-assigned sequence number; total order of
	// detection within one Detector (per-lane order only when the
	// detector runs multiple lanes).
	Seq uint64
	// Scope is the sharding key the occurrence was raised under (the
	// requesting session or user), empty for unscoped events. It is
	// carried outside Params so parameter rendering and golden logs are
	// unchanged by routing.
	Scope string

	// casc links the occurrence to the synchronous request cascade it
	// belongs to, so RaiseFrom can attribute cascaded raises.
	casc *cascade
	// trace, when non-nil, is the decision trace this occurrence belongs
	// to; cascaded occurrences and composites built from this one
	// inherit it, so the whole cross-lane cascade records into one
	// trace. lane names the drain pipeline that delivered the
	// occurrence, for trace steps and rule firings.
	trace *obs.Trace
	lane  string
}

// Trace returns the decision trace the occurrence records into, or nil
// when tracing is off — the nil check is the entire disabled path.
func (o *Occurrence) Trace() *obs.Trace { return o.trace }

// Lane names the lane that delivered the occurrence ("global",
// "scope-0", ...); empty before delivery.
func (o *Occurrence) Lane() string { return o.lane }

// At reports the point timestamp for point occurrences and the interval
// end otherwise; used where legacy point semantics are needed.
func (o *Occurrence) At() time.Time { return o.End }

// String renders the occurrence compactly for logs and tests.
func (o *Occurrence) String() string {
	if o.Start.Equal(o.End) {
		return fmt.Sprintf("%s@%s%s", o.Event, o.End.Format("15:04:05"), o.Params)
	}
	return fmt.Sprintf("%s[%s..%s]%s", o.Event,
		o.Start.Format("15:04:05"), o.End.Format("15:04:05"), o.Params)
}

// compose builds a composite occurrence for event name from constituent
// occurrences, computing the SnoopIB interval and merging parameters in
// constituent order.
func compose(name string, seq uint64, parts ...*Occurrence) *Occurrence {
	if len(parts) == 0 {
		return &Occurrence{Event: name, Seq: seq}
	}
	start, end := parts[0].Start, parts[0].End
	scope := parts[0].Scope
	trace := parts[0].trace
	var params Params
	for _, p := range parts {
		if p.Start.Before(start) {
			start = p.Start
		}
		if p.End.After(end) {
			end = p.End
		}
		if p.Scope != scope {
			scope = "" // constituents span scopes: composite is unscoped
		}
		if trace == nil {
			trace = p.trace // any traced constituent attributes the match
		}
		params = params.Merge(p.Params)
	}
	kids := make([]*Occurrence, len(parts))
	copy(kids, parts)
	return &Occurrence{
		Event:        name,
		Start:        start,
		End:          end,
		Params:       params,
		Constituents: kids,
		Seq:          seq,
		Scope:        scope,
		trace:        trace,
	}
}

// Mode is a Snoop parameter-consumption context. It governs which
// initiator occurrences pair with a terminator occurrence in binary
// operators and which histories are consumed on detection.
type Mode int

const (
	// Recent keeps only the most recent initiator; it continues to
	// initiate detections until a newer initiator replaces it.
	Recent Mode = iota
	// Chronicle pairs initiators and terminators in FIFO order,
	// consuming both on detection.
	Chronicle
	// Continuous lets every pending initiator pair with the terminator,
	// yielding one detection per initiator and consuming all of them.
	Continuous
	// Cumulative folds every pending initiator into a single detection
	// at the terminator, consuming all of them.
	Cumulative
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Recent:
		return "recent"
	case Chronicle:
		return "chronicle"
	case Continuous:
		return "continuous"
	case Cumulative:
		return "cumulative"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode converts a mode name as used in event expressions.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "recent":
		return Recent, nil
	case "chronicle":
		return Chronicle, nil
	case "continuous":
		return Continuous, nil
	case "cumulative":
		return Cumulative, nil
	}
	return 0, fmt.Errorf("event: unknown consumption mode %q", s)
}
