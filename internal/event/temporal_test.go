package event

import (
	"testing"
	"time"
)

// --------------------------------------------------------------------------
// PLUS

func TestPlusFiresAfterDelta(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("open")
	// Paper Rule 2: close the file 2 hours after it was opened.
	d.MustDefine("timeout", Plus(NameExpr("open"), 2*time.Hour))
	got := collect(t, d, "timeout")
	d.MustRaise("open", Params{"file": "patient.dat"})
	sim.Advance(time.Hour)
	if len(*got) != 0 {
		t.Fatalf("PLUS fired early")
	}
	sim.Advance(time.Hour)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	o := (*got)[0]
	if o.Params["file"] != "patient.dat" {
		t.Fatalf("PLUS lost initiator params: %v", o)
	}
	if !o.Start.Equal(t0) || !o.End.Equal(t0.Add(2*time.Hour)) {
		t.Fatalf("PLUS interval [%v,%v]", o.Start, o.End)
	}
}

func TestPlusRecentSupersedes(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("e")
	d.MustDefine("p", Plus(NameExpr("e"), 10*time.Minute))
	got := collect(t, d, "p")
	d.MustRaise("e", Params{"n": 1})
	sim.Advance(5 * time.Minute)
	d.MustRaise("e", Params{"n": 2}) // supersedes the first timer
	sim.Advance(time.Hour)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1 (recent supersedes)", len(*got))
	}
	if (*got)[0].Params["n"] != 2 {
		t.Fatalf("fired for wrong initiator: %v", (*got)[0])
	}
}

func TestPlusChronicleIndependentTimers(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("e")
	d.MustDefine("p", WithMode(Plus(NameExpr("e"), 10*time.Minute), Chronicle))
	got := collect(t, d, "p")
	d.MustRaise("e", Params{"n": 1})
	sim.Advance(5 * time.Minute)
	d.MustRaise("e", Params{"n": 2})
	sim.Advance(time.Hour)
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2 (independent timers)", len(*got))
	}
	if (*got)[0].Params["n"] != 1 || (*got)[1].Params["n"] != 2 {
		t.Fatalf("order wrong: %v", *got)
	}
}

func TestPlusOnComposite(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	d.MustDefine("ab", Seq(NameExpr("a"), NameExpr("b")))
	d.MustDefine("later", Plus(NameExpr("ab"), time.Minute))
	got := collect(t, d, "later")
	raiseAt(d, sim, sec(1), "a", nil)
	raiseAt(d, sim, sec(2), "b", nil)
	sim.Advance(2 * time.Minute)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
}

// --------------------------------------------------------------------------
// APERIODIC

func defineAperiodic(t *testing.T, mode Mode, cumulative bool) (*Detector, interface {
	AdvanceTo(time.Time) int
}, *[]*Occurrence) {
	t.Helper()
	d, sim := newTestDetector()
	for _, n := range []string{"s", "m", "e"} {
		d.MustPrimitive(n)
	}
	kind := OpAperiodic
	if cumulative {
		kind = OpAStar
	}
	d.MustDefine("ap", OpExpr{Kind: kind, Mode: mode, Args: []Expr{NameExpr("s"), NameExpr("m"), NameExpr("e")}})
	got := collect(t, d, "ap")
	return d, sim, got
}

func TestAperiodicBasic(t *testing.T) {
	d, sim, got := defineAperiodic(t, Recent, false)
	sim.AdvanceTo(sec(1))
	d.MustRaise("m", nil) // before window: nothing
	sim.AdvanceTo(sec(2))
	d.MustRaise("s", nil) // open window
	sim.AdvanceTo(sec(3))
	d.MustRaise("m", Params{"k": 1}) // detect
	sim.AdvanceTo(sec(4))
	d.MustRaise("m", Params{"k": 2}) // detect
	sim.AdvanceTo(sec(5))
	d.MustRaise("e", nil) // close window
	sim.AdvanceTo(sec(6))
	d.MustRaise("m", nil) // after window: nothing
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
	if (*got)[0].Params["k"] != 1 || (*got)[1].Params["k"] != 2 {
		t.Fatalf("wrong detections: %v", *got)
	}
}

func TestAperiodicReopens(t *testing.T) {
	d, sim, got := defineAperiodic(t, Recent, false)
	seq := []struct {
		at   int
		name string
	}{
		{1, "s"}, {2, "m"}, {3, "e"}, {4, "m"}, {5, "s"}, {6, "m"},
	}
	for _, step := range seq {
		sim.AdvanceTo(sec(step.at))
		d.MustRaise(step.name, nil)
	}
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2 (one per open window)", len(*got))
	}
}

func TestAperiodicContinuousMultipleWindows(t *testing.T) {
	d, sim, got := defineAperiodic(t, Continuous, false)
	sim.AdvanceTo(sec(1))
	d.MustRaise("s", Params{"w": 1})
	sim.AdvanceTo(sec(2))
	d.MustRaise("s", Params{"w": 2})
	sim.AdvanceTo(sec(3))
	d.MustRaise("m", nil) // detects once per open window
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2 (both windows)", len(*got))
	}
	sim.AdvanceTo(sec(4))
	d.MustRaise("e", nil) // closes both
	sim.AdvanceTo(sec(5))
	d.MustRaise("m", nil)
	if len(*got) != 2 {
		t.Fatalf("window not closed: %d detections", len(*got))
	}
}

func TestAperiodicRecentKeepsLatestWindow(t *testing.T) {
	d, sim, got := defineAperiodic(t, Recent, false)
	sim.AdvanceTo(sec(1))
	d.MustRaise("s", Params{"w": 1})
	sim.AdvanceTo(sec(2))
	d.MustRaise("s", Params{"w": 2}) // replaces window 1
	sim.AdvanceTo(sec(3))
	d.MustRaise("m", nil)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if (*got)[0].Constituents[0].Params["w"] != 2 {
		t.Fatalf("recent window wrong: %v", (*got)[0])
	}
}

func TestAStarCumulative(t *testing.T) {
	d, sim, got := defineAperiodic(t, Cumulative, true)
	sim.AdvanceTo(sec(1))
	d.MustRaise("s", nil)
	for i := 2; i <= 4; i++ {
		sim.AdvanceTo(sec(i))
		d.MustRaise("m", Params{"k": i})
	}
	if len(*got) != 0 {
		t.Fatalf("A* fired before terminator")
	}
	sim.AdvanceTo(sec(5))
	d.MustRaise("e", nil)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	// starter + 3 middles + terminator
	if n := len((*got)[0].Constituents); n != 5 {
		t.Fatalf("constituents = %d, want 5", n)
	}
}

func TestAStarEmptyWindowSilent(t *testing.T) {
	d, sim, got := defineAperiodic(t, Cumulative, true)
	sim.AdvanceTo(sec(1))
	d.MustRaise("s", nil)
	sim.AdvanceTo(sec(2))
	d.MustRaise("e", nil)
	if len(*got) != 0 {
		t.Fatalf("A* fired with no middle occurrences")
	}
}

// --------------------------------------------------------------------------
// PERIODIC

func TestPeriodicTicks(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("s")
	d.MustPrimitive("e")
	d.MustDefine("mon", Periodic(NameExpr("s"), 10*time.Minute, NameExpr("e")))
	got := collect(t, d, "mon")
	d.MustRaise("s", Params{"job": "report"})
	sim.Advance(35 * time.Minute) // ticks at 10, 20, 30
	if len(*got) != 3 {
		t.Fatalf("ticks = %d, want 3", len(*got))
	}
	if (*got)[0].Params["job"] != "report" || (*got)[0].Params["tick"] != 1 {
		t.Fatalf("tick params: %v", (*got)[0].Params)
	}
	if (*got)[2].Params["tick"] != 3 {
		t.Fatalf("tick numbering: %v", (*got)[2].Params)
	}
	d.MustRaise("e", nil) // terminate
	sim.Advance(time.Hour)
	if len(*got) != 3 {
		t.Fatalf("periodic kept ticking after terminator: %d", len(*got))
	}
}

func TestPeriodicTickTimes(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("s")
	d.MustPrimitive("e")
	d.MustDefine("mon", Periodic(NameExpr("s"), time.Minute, NameExpr("e")))
	got := collect(t, d, "mon")
	d.MustRaise("s", nil)
	sim.Advance(3 * time.Minute)
	for i, o := range *got {
		want := t0.Add(time.Duration(i+1) * time.Minute)
		if !o.End.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, o.End, want)
		}
	}
}

func TestPeriodicRecentRestart(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("s")
	d.MustPrimitive("e")
	d.MustDefine("mon", Periodic(NameExpr("s"), 10*time.Minute, NameExpr("e")))
	got := collect(t, d, "mon")
	d.MustRaise("s", nil)
	sim.Advance(5 * time.Minute)
	d.MustRaise("s", nil) // restart: old window discarded in Recent mode
	sim.Advance(10 * time.Minute)
	// Ticks only from the second start: at +15m (one tick), none from the first.
	if len(*got) != 1 {
		t.Fatalf("ticks = %d, want 1", len(*got))
	}
	if want := t0.Add(15 * time.Minute); !(*got)[0].End.Equal(want) {
		t.Fatalf("tick at %v, want %v", (*got)[0].End, want)
	}
}

func TestPStarCumulative(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("s")
	d.MustPrimitive("e")
	d.MustDefine("mon", PStar(NameExpr("s"), 10*time.Minute, NameExpr("e")))
	got := collect(t, d, "mon")
	d.MustRaise("s", nil)
	sim.Advance(45 * time.Minute) // 4 ticks accumulate silently
	if len(*got) != 0 {
		t.Fatalf("P* emitted before terminator")
	}
	d.MustRaise("e", nil)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if (*got)[0].Params["ticks"] != 4 {
		t.Fatalf("tick count = %v, want 4", (*got)[0].Params["ticks"])
	}
	sim.Advance(time.Hour)
	if len(*got) != 1 {
		t.Fatalf("P* kept ticking after terminator")
	}
}

func TestPeriodicTerminatorBeforeFirstTick(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("s")
	d.MustPrimitive("e")
	d.MustDefine("mon", Periodic(NameExpr("s"), 10*time.Minute, NameExpr("e")))
	got := collect(t, d, "mon")
	d.MustRaise("s", nil)
	sim.Advance(5 * time.Minute)
	d.MustRaise("e", nil)
	sim.Advance(time.Hour)
	if len(*got) != 0 {
		t.Fatalf("ticks = %d, want 0", len(*got))
	}
}

// --------------------------------------------------------------------------
// Paper Rule 9 shape: APERIODIC window driven by activation events.

func TestTransactionBoundedActivationShape(t *testing.T) {
	d, sim := newTestDetector()
	for _, n := range []string{"managerOn", "juniorReq", "managerOff"} {
		d.MustPrimitive(n)
	}
	d.MustDefine("juniorAllowed",
		Aperiodic(NameExpr("managerOn"), NameExpr("juniorReq"), NameExpr("managerOff")))
	got := collect(t, d, "juniorAllowed")

	sim.AdvanceTo(sec(1))
	d.MustRaise("juniorReq", nil) // manager not active: no detection
	sim.AdvanceTo(sec(2))
	d.MustRaise("managerOn", nil)
	sim.AdvanceTo(sec(3))
	d.MustRaise("juniorReq", Params{"user": "jane"}) // allowed
	sim.AdvanceTo(sec(4))
	d.MustRaise("managerOff", nil)
	sim.AdvanceTo(sec(5))
	d.MustRaise("juniorReq", nil) // manager gone: no detection

	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if (*got)[0].Params["user"] != "jane" {
		t.Fatalf("params %v", (*got)[0].Params)
	}
}
